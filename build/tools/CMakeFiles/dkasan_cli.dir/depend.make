# Empty dependencies file for dkasan_cli.
# This may be replaced when dependencies are built.
