file(REMOVE_RECURSE
  "CMakeFiles/dkasan_cli.dir/dkasan_cli.cpp.o"
  "CMakeFiles/dkasan_cli.dir/dkasan_cli.cpp.o.d"
  "dkasan"
  "dkasan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkasan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
