file(REMOVE_RECURSE
  "CMakeFiles/spade_cli.dir/spade_cli.cpp.o"
  "CMakeFiles/spade_cli.dir/spade_cli.cpp.o.d"
  "spade"
  "spade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
