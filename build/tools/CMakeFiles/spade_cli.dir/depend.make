# Empty dependencies file for spade_cli.
# This may be replaced when dependencies are built.
