file(REMOVE_RECURSE
  "CMakeFiles/spv_base.dir/log.cc.o"
  "CMakeFiles/spv_base.dir/log.cc.o.d"
  "CMakeFiles/spv_base.dir/status.cc.o"
  "CMakeFiles/spv_base.dir/status.cc.o.d"
  "libspv_base.a"
  "libspv_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
