file(REMOVE_RECURSE
  "libspv_base.a"
)
