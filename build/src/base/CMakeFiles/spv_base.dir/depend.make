# Empty dependencies file for spv_base.
# This may be replaced when dependencies are built.
