file(REMOVE_RECURSE
  "libspv_net.a"
)
