file(REMOVE_RECURSE
  "CMakeFiles/spv_net.dir/gro.cc.o"
  "CMakeFiles/spv_net.dir/gro.cc.o.d"
  "CMakeFiles/spv_net.dir/layouts.cc.o"
  "CMakeFiles/spv_net.dir/layouts.cc.o.d"
  "CMakeFiles/spv_net.dir/nic_driver.cc.o"
  "CMakeFiles/spv_net.dir/nic_driver.cc.o.d"
  "CMakeFiles/spv_net.dir/skbuff.cc.o"
  "CMakeFiles/spv_net.dir/skbuff.cc.o.d"
  "CMakeFiles/spv_net.dir/stack.cc.o"
  "CMakeFiles/spv_net.dir/stack.cc.o.d"
  "libspv_net.a"
  "libspv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
