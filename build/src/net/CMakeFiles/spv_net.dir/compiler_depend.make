# Empty compiler generated dependencies file for spv_net.
# This may be replaced when dependencies are built.
