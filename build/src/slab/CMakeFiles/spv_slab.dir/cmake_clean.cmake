file(REMOVE_RECURSE
  "CMakeFiles/spv_slab.dir/page_frag.cc.o"
  "CMakeFiles/spv_slab.dir/page_frag.cc.o.d"
  "CMakeFiles/spv_slab.dir/slab_allocator.cc.o"
  "CMakeFiles/spv_slab.dir/slab_allocator.cc.o.d"
  "libspv_slab.a"
  "libspv_slab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_slab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
