file(REMOVE_RECURSE
  "libspv_slab.a"
)
