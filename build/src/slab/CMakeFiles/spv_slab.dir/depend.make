# Empty dependencies file for spv_slab.
# This may be replaced when dependencies are built.
