# Empty dependencies file for spv_iommu.
# This may be replaced when dependencies are built.
