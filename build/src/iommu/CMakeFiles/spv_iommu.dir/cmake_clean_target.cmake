file(REMOVE_RECURSE
  "libspv_iommu.a"
)
