file(REMOVE_RECURSE
  "CMakeFiles/spv_iommu.dir/io_page_table.cc.o"
  "CMakeFiles/spv_iommu.dir/io_page_table.cc.o.d"
  "CMakeFiles/spv_iommu.dir/iommu.cc.o"
  "CMakeFiles/spv_iommu.dir/iommu.cc.o.d"
  "CMakeFiles/spv_iommu.dir/iotlb.cc.o"
  "CMakeFiles/spv_iommu.dir/iotlb.cc.o.d"
  "CMakeFiles/spv_iommu.dir/iova_allocator.cc.o"
  "CMakeFiles/spv_iommu.dir/iova_allocator.cc.o.d"
  "libspv_iommu.a"
  "libspv_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
