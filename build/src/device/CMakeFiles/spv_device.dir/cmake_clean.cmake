file(REMOVE_RECURSE
  "CMakeFiles/spv_device.dir/malicious_nic.cc.o"
  "CMakeFiles/spv_device.dir/malicious_nic.cc.o.d"
  "libspv_device.a"
  "libspv_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
