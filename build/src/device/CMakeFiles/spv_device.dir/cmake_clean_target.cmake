file(REMOVE_RECURSE
  "libspv_device.a"
)
