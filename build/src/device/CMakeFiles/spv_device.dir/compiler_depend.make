# Empty compiler generated dependencies file for spv_device.
# This may be replaced when dependencies are built.
