file(REMOVE_RECURSE
  "libspv_dma.a"
)
