
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dma/bounce.cc" "src/dma/CMakeFiles/spv_dma.dir/bounce.cc.o" "gcc" "src/dma/CMakeFiles/spv_dma.dir/bounce.cc.o.d"
  "/root/repo/src/dma/dma_api.cc" "src/dma/CMakeFiles/spv_dma.dir/dma_api.cc.o" "gcc" "src/dma/CMakeFiles/spv_dma.dir/dma_api.cc.o.d"
  "/root/repo/src/dma/kernel_memory.cc" "src/dma/CMakeFiles/spv_dma.dir/kernel_memory.cc.o" "gcc" "src/dma/CMakeFiles/spv_dma.dir/kernel_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iommu/CMakeFiles/spv_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/spv_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/spv_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
