file(REMOVE_RECURSE
  "CMakeFiles/spv_dma.dir/bounce.cc.o"
  "CMakeFiles/spv_dma.dir/bounce.cc.o.d"
  "CMakeFiles/spv_dma.dir/dma_api.cc.o"
  "CMakeFiles/spv_dma.dir/dma_api.cc.o.d"
  "CMakeFiles/spv_dma.dir/kernel_memory.cc.o"
  "CMakeFiles/spv_dma.dir/kernel_memory.cc.o.d"
  "libspv_dma.a"
  "libspv_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
