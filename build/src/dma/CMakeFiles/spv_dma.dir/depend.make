# Empty dependencies file for spv_dma.
# This may be replaced when dependencies are built.
