# Empty compiler generated dependencies file for spv_core.
# This may be replaced when dependencies are built.
