file(REMOVE_RECURSE
  "CMakeFiles/spv_core.dir/machine.cc.o"
  "CMakeFiles/spv_core.dir/machine.cc.o.d"
  "libspv_core.a"
  "libspv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
