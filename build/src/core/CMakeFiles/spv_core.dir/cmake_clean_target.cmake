file(REMOVE_RECURSE
  "libspv_core.a"
)
