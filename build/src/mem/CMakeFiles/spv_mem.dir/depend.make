# Empty dependencies file for spv_mem.
# This may be replaced when dependencies are built.
