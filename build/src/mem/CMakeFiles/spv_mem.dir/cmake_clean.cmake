file(REMOVE_RECURSE
  "CMakeFiles/spv_mem.dir/kernel_layout.cc.o"
  "CMakeFiles/spv_mem.dir/kernel_layout.cc.o.d"
  "CMakeFiles/spv_mem.dir/page_allocator.cc.o"
  "CMakeFiles/spv_mem.dir/page_allocator.cc.o.d"
  "CMakeFiles/spv_mem.dir/page_db.cc.o"
  "CMakeFiles/spv_mem.dir/page_db.cc.o.d"
  "CMakeFiles/spv_mem.dir/phys_memory.cc.o"
  "CMakeFiles/spv_mem.dir/phys_memory.cc.o.d"
  "libspv_mem.a"
  "libspv_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
