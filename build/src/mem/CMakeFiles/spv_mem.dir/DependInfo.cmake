
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/kernel_layout.cc" "src/mem/CMakeFiles/spv_mem.dir/kernel_layout.cc.o" "gcc" "src/mem/CMakeFiles/spv_mem.dir/kernel_layout.cc.o.d"
  "/root/repo/src/mem/page_allocator.cc" "src/mem/CMakeFiles/spv_mem.dir/page_allocator.cc.o" "gcc" "src/mem/CMakeFiles/spv_mem.dir/page_allocator.cc.o.d"
  "/root/repo/src/mem/page_db.cc" "src/mem/CMakeFiles/spv_mem.dir/page_db.cc.o" "gcc" "src/mem/CMakeFiles/spv_mem.dir/page_db.cc.o.d"
  "/root/repo/src/mem/phys_memory.cc" "src/mem/CMakeFiles/spv_mem.dir/phys_memory.cc.o" "gcc" "src/mem/CMakeFiles/spv_mem.dir/phys_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/spv_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
