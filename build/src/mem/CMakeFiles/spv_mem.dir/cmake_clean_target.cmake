file(REMOVE_RECURSE
  "libspv_mem.a"
)
