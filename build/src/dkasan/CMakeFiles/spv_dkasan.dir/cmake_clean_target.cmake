file(REMOVE_RECURSE
  "libspv_dkasan.a"
)
