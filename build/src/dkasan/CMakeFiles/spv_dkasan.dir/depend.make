# Empty dependencies file for spv_dkasan.
# This may be replaced when dependencies are built.
