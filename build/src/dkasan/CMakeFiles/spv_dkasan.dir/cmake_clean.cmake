file(REMOVE_RECURSE
  "CMakeFiles/spv_dkasan.dir/dkasan.cc.o"
  "CMakeFiles/spv_dkasan.dir/dkasan.cc.o.d"
  "CMakeFiles/spv_dkasan.dir/workload.cc.o"
  "CMakeFiles/spv_dkasan.dir/workload.cc.o.d"
  "libspv_dkasan.a"
  "libspv_dkasan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_dkasan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
