# Empty compiler generated dependencies file for spv_attack.
# This may be replaced when dependencies are built.
