file(REMOVE_RECURSE
  "CMakeFiles/spv_attack.dir/attacks.cc.o"
  "CMakeFiles/spv_attack.dir/attacks.cc.o.d"
  "CMakeFiles/spv_attack.dir/gadgets.cc.o"
  "CMakeFiles/spv_attack.dir/gadgets.cc.o.d"
  "CMakeFiles/spv_attack.dir/kaslr_break.cc.o"
  "CMakeFiles/spv_attack.dir/kaslr_break.cc.o.d"
  "CMakeFiles/spv_attack.dir/mini_cpu.cc.o"
  "CMakeFiles/spv_attack.dir/mini_cpu.cc.o.d"
  "CMakeFiles/spv_attack.dir/poison.cc.o"
  "CMakeFiles/spv_attack.dir/poison.cc.o.d"
  "libspv_attack.a"
  "libspv_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
