file(REMOVE_RECURSE
  "libspv_attack.a"
)
