
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attacks.cc" "src/attack/CMakeFiles/spv_attack.dir/attacks.cc.o" "gcc" "src/attack/CMakeFiles/spv_attack.dir/attacks.cc.o.d"
  "/root/repo/src/attack/gadgets.cc" "src/attack/CMakeFiles/spv_attack.dir/gadgets.cc.o" "gcc" "src/attack/CMakeFiles/spv_attack.dir/gadgets.cc.o.d"
  "/root/repo/src/attack/kaslr_break.cc" "src/attack/CMakeFiles/spv_attack.dir/kaslr_break.cc.o" "gcc" "src/attack/CMakeFiles/spv_attack.dir/kaslr_break.cc.o.d"
  "/root/repo/src/attack/mini_cpu.cc" "src/attack/CMakeFiles/spv_attack.dir/mini_cpu.cc.o" "gcc" "src/attack/CMakeFiles/spv_attack.dir/mini_cpu.cc.o.d"
  "/root/repo/src/attack/poison.cc" "src/attack/CMakeFiles/spv_attack.dir/poison.cc.o" "gcc" "src/attack/CMakeFiles/spv_attack.dir/poison.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/spv_device.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/spv_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/spv_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/spv_base.dir/DependInfo.cmake"
  "/root/repo/build/src/slab/CMakeFiles/spv_slab.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/spv_iommu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
