file(REMOVE_RECURSE
  "CMakeFiles/spv_spade.dir/analyzer.cc.o"
  "CMakeFiles/spv_spade.dir/analyzer.cc.o.d"
  "CMakeFiles/spv_spade.dir/corpus.cc.o"
  "CMakeFiles/spv_spade.dir/corpus.cc.o.d"
  "CMakeFiles/spv_spade.dir/layout_db.cc.o"
  "CMakeFiles/spv_spade.dir/layout_db.cc.o.d"
  "CMakeFiles/spv_spade.dir/lexer.cc.o"
  "CMakeFiles/spv_spade.dir/lexer.cc.o.d"
  "CMakeFiles/spv_spade.dir/parser.cc.o"
  "CMakeFiles/spv_spade.dir/parser.cc.o.d"
  "libspv_spade.a"
  "libspv_spade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spv_spade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
