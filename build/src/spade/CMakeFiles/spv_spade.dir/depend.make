# Empty dependencies file for spv_spade.
# This may be replaced when dependencies are built.
