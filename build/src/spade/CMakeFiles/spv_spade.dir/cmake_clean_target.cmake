file(REMOVE_RECURSE
  "libspv_spade.a"
)
