
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spade/analyzer.cc" "src/spade/CMakeFiles/spv_spade.dir/analyzer.cc.o" "gcc" "src/spade/CMakeFiles/spv_spade.dir/analyzer.cc.o.d"
  "/root/repo/src/spade/corpus.cc" "src/spade/CMakeFiles/spv_spade.dir/corpus.cc.o" "gcc" "src/spade/CMakeFiles/spv_spade.dir/corpus.cc.o.d"
  "/root/repo/src/spade/layout_db.cc" "src/spade/CMakeFiles/spv_spade.dir/layout_db.cc.o" "gcc" "src/spade/CMakeFiles/spv_spade.dir/layout_db.cc.o.d"
  "/root/repo/src/spade/lexer.cc" "src/spade/CMakeFiles/spv_spade.dir/lexer.cc.o" "gcc" "src/spade/CMakeFiles/spv_spade.dir/lexer.cc.o.d"
  "/root/repo/src/spade/parser.cc" "src/spade/CMakeFiles/spv_spade.dir/parser.cc.o" "gcc" "src/spade/CMakeFiles/spv_spade.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/spv_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
