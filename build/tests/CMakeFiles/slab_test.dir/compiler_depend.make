# Empty compiler generated dependencies file for slab_test.
# This may be replaced when dependencies are built.
