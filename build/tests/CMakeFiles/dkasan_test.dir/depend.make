# Empty dependencies file for dkasan_test.
# This may be replaced when dependencies are built.
