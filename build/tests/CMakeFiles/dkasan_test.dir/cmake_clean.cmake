file(REMOVE_RECURSE
  "CMakeFiles/dkasan_test.dir/dkasan_test.cc.o"
  "CMakeFiles/dkasan_test.dir/dkasan_test.cc.o.d"
  "dkasan_test"
  "dkasan_test.pdb"
  "dkasan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkasan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
