# Empty compiler generated dependencies file for spade_test.
# This may be replaced when dependencies are built.
