# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/slab_test[1]_include.cmake")
include("/root/repo/build/tests/iommu_test[1]_include.cmake")
include("/root/repo/build/tests/dma_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/spade_test[1]_include.cmake")
include("/root/repo/build/tests/dkasan_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/defense_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
