file(REMOVE_RECURSE
  "CMakeFiles/spade_scan.dir/spade_scan.cpp.o"
  "CMakeFiles/spade_scan.dir/spade_scan.cpp.o.d"
  "spade_scan"
  "spade_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spade_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
