# Empty dependencies file for spade_scan.
# This may be replaced when dependencies are built.
