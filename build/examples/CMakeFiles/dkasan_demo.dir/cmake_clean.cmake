file(REMOVE_RECURSE
  "CMakeFiles/dkasan_demo.dir/dkasan_demo.cpp.o"
  "CMakeFiles/dkasan_demo.dir/dkasan_demo.cpp.o.d"
  "dkasan_demo"
  "dkasan_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dkasan_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
