
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dkasan_demo.cpp" "examples/CMakeFiles/dkasan_demo.dir/dkasan_demo.cpp.o" "gcc" "examples/CMakeFiles/dkasan_demo.dir/dkasan_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/spv_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/dkasan/CMakeFiles/spv_dkasan.dir/DependInfo.cmake"
  "/root/repo/build/src/spade/CMakeFiles/spv_spade.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/spv_device.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/spv_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/spv_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/slab/CMakeFiles/spv_slab.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/spv_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/spv_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
