# Empty compiler generated dependencies file for dkasan_demo.
# This may be replaced when dependencies are built.
