file(REMOVE_RECURSE
  "CMakeFiles/poisoned_tx_attack.dir/poisoned_tx_attack.cpp.o"
  "CMakeFiles/poisoned_tx_attack.dir/poisoned_tx_attack.cpp.o.d"
  "poisoned_tx_attack"
  "poisoned_tx_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisoned_tx_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
