# Empty dependencies file for poisoned_tx_attack.
# This may be replaced when dependencies are built.
