file(REMOVE_RECURSE
  "CMakeFiles/forwarding_surveillance.dir/forwarding_surveillance.cpp.o"
  "CMakeFiles/forwarding_surveillance.dir/forwarding_surveillance.cpp.o.d"
  "forwarding_surveillance"
  "forwarding_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forwarding_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
