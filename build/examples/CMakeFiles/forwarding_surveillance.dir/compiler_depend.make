# Empty compiler generated dependencies file for forwarding_surveillance.
# This may be replaced when dependencies are built.
