# Empty compiler generated dependencies file for ringflood_attack.
# This may be replaced when dependencies are built.
