file(REMOVE_RECURSE
  "CMakeFiles/ringflood_attack.dir/ringflood_attack.cpp.o"
  "CMakeFiles/ringflood_attack.dir/ringflood_attack.cpp.o.d"
  "ringflood_attack"
  "ringflood_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ringflood_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
