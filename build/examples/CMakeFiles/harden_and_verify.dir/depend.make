# Empty dependencies file for harden_and_verify.
# This may be replaced when dependencies are built.
