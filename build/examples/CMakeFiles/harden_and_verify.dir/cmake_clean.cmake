file(REMOVE_RECURSE
  "CMakeFiles/harden_and_verify.dir/harden_and_verify.cpp.o"
  "CMakeFiles/harden_and_verify.dir/harden_and_verify.cpp.o.d"
  "harden_and_verify"
  "harden_and_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harden_and_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
