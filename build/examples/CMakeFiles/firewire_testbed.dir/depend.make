# Empty dependencies file for firewire_testbed.
# This may be replaced when dependencies are built.
