file(REMOVE_RECURSE
  "CMakeFiles/firewire_testbed.dir/firewire_testbed.cpp.o"
  "CMakeFiles/firewire_testbed.dir/firewire_testbed.cpp.o.d"
  "firewire_testbed"
  "firewire_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewire_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
