# Empty dependencies file for bench_table1_layout.
# This may be replaced when dependencies are built.
