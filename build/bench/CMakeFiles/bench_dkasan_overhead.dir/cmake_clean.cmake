file(REMOVE_RECURSE
  "CMakeFiles/bench_dkasan_overhead.dir/bench_dkasan_overhead.cpp.o"
  "CMakeFiles/bench_dkasan_overhead.dir/bench_dkasan_overhead.cpp.o.d"
  "bench_dkasan_overhead"
  "bench_dkasan_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dkasan_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
