# Empty compiler generated dependencies file for bench_dkasan_overhead.
# This may be replaced when dependencies are built.
