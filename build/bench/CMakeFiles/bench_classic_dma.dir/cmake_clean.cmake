file(REMOVE_RECURSE
  "CMakeFiles/bench_classic_dma.dir/bench_classic_dma.cpp.o"
  "CMakeFiles/bench_classic_dma.dir/bench_classic_dma.cpp.o.d"
  "bench_classic_dma"
  "bench_classic_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classic_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
