# Empty dependencies file for bench_classic_dma.
# This may be replaced when dependencies are built.
