file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_poisoned_tx.dir/bench_fig8_poisoned_tx.cpp.o"
  "CMakeFiles/bench_fig8_poisoned_tx.dir/bench_fig8_poisoned_tx.cpp.o.d"
  "bench_fig8_poisoned_tx"
  "bench_fig8_poisoned_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_poisoned_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
