# Empty compiler generated dependencies file for bench_fig8_poisoned_tx.
# This may be replaced when dependencies are built.
