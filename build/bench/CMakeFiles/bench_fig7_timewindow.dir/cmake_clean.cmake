file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_timewindow.dir/bench_fig7_timewindow.cpp.o"
  "CMakeFiles/bench_fig7_timewindow.dir/bench_fig7_timewindow.cpp.o.d"
  "bench_fig7_timewindow"
  "bench_fig7_timewindow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_timewindow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
