# Empty compiler generated dependencies file for bench_ringflood.
# This may be replaced when dependencies are built.
