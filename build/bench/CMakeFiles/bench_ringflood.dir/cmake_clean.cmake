file(REMOVE_RECURSE
  "CMakeFiles/bench_ringflood.dir/bench_ringflood.cpp.o"
  "CMakeFiles/bench_ringflood.dir/bench_ringflood.cpp.o.d"
  "bench_ringflood"
  "bench_ringflood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ringflood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
