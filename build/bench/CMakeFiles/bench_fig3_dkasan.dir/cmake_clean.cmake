file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_dkasan.dir/bench_fig3_dkasan.cpp.o"
  "CMakeFiles/bench_fig3_dkasan.dir/bench_fig3_dkasan.cpp.o.d"
  "bench_fig3_dkasan"
  "bench_fig3_dkasan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dkasan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
