file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_forward.dir/bench_fig9_forward.cpp.o"
  "CMakeFiles/bench_fig9_forward.dir/bench_fig9_forward.cpp.o.d"
  "bench_fig9_forward"
  "bench_fig9_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
