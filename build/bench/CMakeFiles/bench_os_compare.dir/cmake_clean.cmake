file(REMOVE_RECURSE
  "CMakeFiles/bench_os_compare.dir/bench_os_compare.cpp.o"
  "CMakeFiles/bench_os_compare.dir/bench_os_compare.cpp.o.d"
  "bench_os_compare"
  "bench_os_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_os_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
