# Empty compiler generated dependencies file for bench_os_compare.
# This may be replaced when dependencies are built.
