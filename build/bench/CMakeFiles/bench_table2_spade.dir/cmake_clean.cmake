file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_spade.dir/bench_table2_spade.cpp.o"
  "CMakeFiles/bench_table2_spade.dir/bench_table2_spade.cpp.o.d"
  "bench_table2_spade"
  "bench_table2_spade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_spade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
