# Empty dependencies file for bench_table2_spade.
# This may be replaced when dependencies are built.
