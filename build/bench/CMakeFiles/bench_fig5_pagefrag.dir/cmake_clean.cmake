file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_pagefrag.dir/bench_fig5_pagefrag.cpp.o"
  "CMakeFiles/bench_fig5_pagefrag.dir/bench_fig5_pagefrag.cpp.o.d"
  "bench_fig5_pagefrag"
  "bench_fig5_pagefrag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pagefrag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
