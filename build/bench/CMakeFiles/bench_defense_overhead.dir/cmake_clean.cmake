file(REMOVE_RECURSE
  "CMakeFiles/bench_defense_overhead.dir/bench_defense_overhead.cpp.o"
  "CMakeFiles/bench_defense_overhead.dir/bench_defense_overhead.cpp.o.d"
  "bench_defense_overhead"
  "bench_defense_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defense_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
