# Empty dependencies file for bench_defense_overhead.
# This may be replaced when dependencies are built.
