file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sharedinfo.dir/bench_fig4_sharedinfo.cpp.o"
  "CMakeFiles/bench_fig4_sharedinfo.dir/bench_fig4_sharedinfo.cpp.o.d"
  "bench_fig4_sharedinfo"
  "bench_fig4_sharedinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sharedinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
