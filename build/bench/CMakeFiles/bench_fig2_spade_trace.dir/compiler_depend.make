# Empty compiler generated dependencies file for bench_fig2_spade_trace.
# This may be replaced when dependencies are built.
