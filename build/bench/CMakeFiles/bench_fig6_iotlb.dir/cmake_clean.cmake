file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_iotlb.dir/bench_fig6_iotlb.cpp.o"
  "CMakeFiles/bench_fig6_iotlb.dir/bench_fig6_iotlb.cpp.o.d"
  "bench_fig6_iotlb"
  "bench_fig6_iotlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_iotlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
