file(REMOVE_RECURSE
  "CMakeFiles/bench_kaslr.dir/bench_kaslr.cpp.o"
  "CMakeFiles/bench_kaslr.dir/bench_kaslr.cpp.o.d"
  "bench_kaslr"
  "bench_kaslr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kaslr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
