# Empty dependencies file for bench_kaslr.
# This may be replaced when dependencies are built.
