// The storage-side attack battery: every vulnerability class the paper
// demonstrated on NIC rings (§5.2), reproduced against the NVMe stack.
//
//   (a) sub-page corruption of a callback embedded next to a mapped IO
//       buffer — the storage analogue of the skb_shared_info destructor;
//   (b) PRP-list frag segments leaking co-resident kernel data;
//   (c) one frag page mapped under two IOVAs — the surviving alias keeps
//       the whole page device-readable after its neighbour is unmapped;
//   (d) slab co-location exfiltration through a kmalloc'd data buffer;
//   plus Poisoned Completion (the storage Poisoned TX): complete before
//   transfer, let the driver unmap + free, then replay the withheld data
//   phase through the stale IOTLB entry — with the resulting vulnerability
//   windows and detection latencies measured by trace::WindowTracker, and
//   the hostile controller finally quarantined leak-free by spv::recovery.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "attack/gadgets.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/device_port.h"
#include "dkasan/dkasan.h"
#include "fault/fault.h"
#include "nvme/malicious_nvme.h"
#include "nvme/nvme_driver.h"
#include "trace/window_tracker.h"

namespace spv::nvme {
namespace {

using attack::MiniCpu;

core::MachineConfig BaseConfig(uint64_t seed, iommu::InvalidationMode mode) {
  core::MachineConfig config;
  config.seed = seed;
  config.phys_pages = 4096;
  config.iommu.mode = mode;
  return config;
}

// A machine with one NVMe driver fronting a MaliciousNvme controller.
struct EvilRig {
  explicit EvilRig(core::MachineConfig mc,
                   NvmeDriver::Config dc = NvmeDriver::Config{})
      : machine(mc),
        driver(machine.AddNvmeDriver(dc)),
        controller(device::DevicePort{machine.iommu(), driver.device_id()}) {
    controller.set_fault_engine(&machine.fault());
    controller.set_tracer(machine.tracer());
    driver.AttachDevice(&controller);
  }

  core::Machine machine;
  NvmeDriver& driver;
  MaliciousNvme controller;
};

std::vector<uint8_t> Pattern(uint64_t bytes, uint8_t salt) {
  std::vector<uint8_t> data(bytes);
  for (uint64_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<uint8_t>((i * 131 + salt) & 0xff);
  }
  return data;
}

// ---- (a) embedded-callback corruption ------------------------------------------

// The IO buffer is the first half of a struct whose second half holds a
// function pointer. Mapping the buffer for a 1-block read exposes the whole
// page device-writable; the controller, having completed the command without
// transferring, still holds the translation and rewrites the callback.
TEST(NvmeAttackA, SubPageWriteCorruptsEmbeddedCallback) {
  EvilRig rig(BaseConfig(101, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());
  MiniCpu cpu(rig.machine.kmem(), rig.machine.layout());

  // struct { char data[512]; void (*done)(void*); } — kmalloc-1024.
  auto obj = rig.machine.slab().Kmalloc(1024, "nvme_req_with_cb");
  ASSERT_TRUE(obj.ok());
  const Kva cb_slot{obj->value + 512};
  const uint64_t benign =
      rig.machine.layout().text_base() + attack::kSymBenignUbufDestructor;
  ASSERT_TRUE(rig.machine.kmem().WriteU64(cb_slot, benign).ok());

  rig.controller.set_complete_before_transfer(true);
  auto cid = rig.driver.SubmitRead(0, 1, *obj);
  ASSERT_TRUE(cid.ok());

  // The command "completed", but the buffer is still mapped (the driver has
  // not consumed the CQE yet) and the firmware kept the chunk address.
  ASSERT_EQ(rig.controller.pending_transfers().size(), 1u);
  const PrpChunk chunk = rig.controller.pending_transfers().front().chunks[0];
  EXPECT_EQ(chunk.len, kLbaSize);

  // Page-granular IOMMU: +512 is past the mapped buffer but on its page.
  const uint64_t wild = rig.machine.layout().text_base() + 0x31337;
  ASSERT_TRUE(rig.controller.port().WriteU64(Iova{chunk.iova.value + 512}, wild).ok());

  auto corrupted = rig.machine.kmem().ReadU64(cb_slot);
  ASSERT_TRUE(corrupted.ok());
  EXPECT_EQ(*corrupted, wild);

  // The kernel fires the completion callback: control flow is now steered by
  // the device (here into a wild text address — an oops, not an escalation,
  // but the primitive is the paper's type (a)).
  EXPECT_FALSE(cpu.InvokeCallback(Kva{*corrupted}, *obj).ok());
  EXPECT_EQ(cpu.wild_jumps(), 1u);

  EXPECT_TRUE(rig.driver.WaitFor(*cid).ok());
  rig.controller.ClearPendingTransfers();
  ASSERT_TRUE(rig.machine.slab().Kfree(*obj).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// ---- (b) PRP-list frag harvest -------------------------------------------------

// A 128-byte PRP-list segment is carved from the same page_frag page as
// unrelated kernel metadata; mapping the segment exposes the neighbours.
TEST(NvmeAttackB, PrpSegmentHarvestLeaksCoResidentFrag) {
  EvilRig rig(BaseConfig(102, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());

  // The victim: kernel metadata carved from the frag pool the driver's PRP
  // segments share (same CPU, same pool).
  constexpr uint64_t kSecret = 0x5ec0de5ec0de0000ull;
  slab::PageFragPool& pool = rig.machine.frag_pool(CpuId{0});
  auto victim = pool.Alloc(128, 8, "victim_meta");
  ASSERT_TRUE(victim.ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        rig.machine.kmem().WriteU64(Kva{victim->value + 8u * i}, kSecret + i).ok());
  }

  // 24 blocks = 3 pages -> PRP2 is a list: one frag-carved segment, mapped
  // while the command is in flight.
  auto buf = rig.machine.slab().Kmalloc(24 * kLbaSize, "io_buf");
  ASSERT_TRUE(buf.ok());
  auto cid = rig.driver.SubmitRead(0, 24, *buf);
  ASSERT_TRUE(cid.ok());
  ASSERT_FALSE(rig.controller.prp_segments_seen().empty());

  auto harvest = rig.controller.HarvestPrpQwords();
  ASSERT_TRUE(harvest.ok());
  bool leaked = false;
  for (uint64_t qword : *harvest) {
    leaked = leaked || qword == kSecret;
  }
  EXPECT_TRUE(leaked) << "victim frag not visible behind the PRP segment";

  EXPECT_TRUE(rig.driver.WaitFor(*cid).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  ASSERT_TRUE(pool.Free(*victim).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// ---- (c) multi-IOVA aliasing ---------------------------------------------------

// Two commands' PRP segments are carved from one frag page and mapped under
// distinct IOVAs. Completing the first unmaps its IOVA (strict mode: fenced
// immediately) — but the second command's alias keeps the WHOLE page
// device-readable, including the freed neighbour's bytes.
TEST(NvmeAttackC, SurvivingIovaAliasOutlivesNeighbourUnmap) {
  core::MachineConfig mc = BaseConfig(103, iommu::InvalidationMode::kStrict);
  mc.telemetry.enabled = true;
  EvilRig rig(mc);
  ASSERT_TRUE(rig.driver.Init().ok());

  dkasan::DKasan dkasan(rig.machine.layout());
  dkasan.Attach(rig.machine.dma());

  // Drop the SECOND IO completion so its command stays in flight while the
  // first completes and unmaps.
  fault::FaultPlan plan;
  plan.OneShot(fault::FaultSite::kNvmeCompletionDrop, 2);
  rig.machine.fault().Arm(plan, 103);

  auto buf1 = rig.machine.slab().Kmalloc(24 * kLbaSize, "io_buf1");
  auto buf2 = rig.machine.slab().Kmalloc(24 * kLbaSize, "io_buf2");
  ASSERT_TRUE(buf1.ok() && buf2.ok());
  auto cid1 = rig.driver.SubmitRead(0, 24, *buf1);
  auto cid2 = rig.driver.SubmitRead(24, 24, *buf2);
  ASSERT_TRUE(cid1.ok() && cid2.ok());

  ASSERT_GE(rig.controller.prp_segments_seen().size(), 2u);
  const Iova seg1 = rig.controller.prp_segments_seen()[0];
  const Iova seg2 = rig.controller.prp_segments_seen()[1];
  EXPECT_NE(seg1.PageBase().value, seg2.PageBase().value);

  // Same physical frag page behind both IOVAs.
  auto m1 = rig.machine.dma().FindMapping(rig.driver.device_id(), seg1);
  auto m2 = rig.machine.dma().FindMapping(rig.driver.device_id(), seg2);
  ASSERT_TRUE(m1.has_value() && m2.has_value());
  ASSERT_EQ(m1->kva.PageBase().value, m2->kva.PageBase().value);
  // D-KASAN sees the double mapping (type (c) detector).
  EXPECT_GE(dkasan.count(dkasan::ReportKind::kMultipleMap), 1u);

  // Complete command 1: its segment is unmapped and its frag freed.
  ASSERT_TRUE(rig.driver.WaitFor(*cid1).ok());
  EXPECT_EQ(rig.driver.outstanding(), 1u);
  EXPECT_FALSE(rig.controller.port().ReadPageQwords(seg1).ok());

  // The alias survives: the full page — freed carve included — is still
  // readable through command 2's segment IOVA.
  auto page = rig.controller.port().ReadPageQwords(seg2);
  EXPECT_TRUE(page.ok());

  // Let the watchdog reclaim the command whose completion was dropped.
  rig.machine.fault().Disarm();
  rig.machine.clock().Advance(SimClock::MsToCycles(6000));
  EXPECT_EQ(rig.driver.CheckTimeouts(), 1u);
  EXPECT_EQ(rig.driver.queue_resets(), 1u);
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf1).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf2).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// ---- (d) slab co-location exfiltration -----------------------------------------

TEST(NvmeAttackD, SlabNeighbourExfiltratedThroughIoBufferMapping) {
  EvilRig rig(BaseConfig(104, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());

  constexpr uint64_t kSecret = 0xfeedfacecafebeefull;
  auto victim = rig.machine.slab().Kmalloc(512, "victim_cred");
  auto buf = rig.machine.slab().Kmalloc(512, "io_buf");
  ASSERT_TRUE(victim.ok() && buf.ok());
  ASSERT_EQ(victim->PageBase().value, buf->PageBase().value)
      << "kmalloc-512 neighbours expected on one slab page";
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        rig.machine.kmem().WriteU64(Kva{victim->value + 8u * i}, kSecret + i).ok());
  }

  rig.controller.set_complete_before_transfer(true);
  auto cid = rig.driver.SubmitWrite(0, 1, *buf);
  ASSERT_TRUE(cid.ok());
  ASSERT_EQ(rig.controller.pending_transfers().size(), 1u);
  const PrpChunk chunk = rig.controller.pending_transfers().front().chunks[0];

  // Page-granular read through the data buffer's IOVA: the victim's slab
  // slot rides along.
  auto page = rig.controller.port().ReadPageQwords(chunk.iova);
  ASSERT_TRUE(page.ok());
  bool leaked = false;
  for (uint64_t qword : *page) {
    leaked = leaked || qword == kSecret;
  }
  EXPECT_TRUE(leaked) << "victim slab object not visible on the buffer page";

  EXPECT_TRUE(rig.driver.WaitFor(*cid).ok());
  rig.controller.ClearPendingTransfers();
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*victim).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// ---- Poisoned Completion: the storage Poisoned TX ------------------------------

// Deferred invalidation + a warm IOTLB: the forged "transfer done" CQE makes
// the driver unmap and free the buffer; the withheld data phase then replays
// through the stale translation into whatever recycled the memory. The
// WindowTracker measures the stale window, the device hit inside it, and the
// D-KASAN detection latency; an IOTLB flush closes the window and the next
// replay dies at the fence.
TEST(NvmePoisonedCompletion, StaleReplayLandsInRecycledMemoryUntilFlush) {
  core::MachineConfig mc = BaseConfig(105, iommu::InvalidationMode::kDeferred);
  mc.telemetry.enabled = true;
  mc.trace.enabled = true;
  EvilRig rig(mc);
  ASSERT_TRUE(rig.driver.Init().ok());
  rig.controller.set_warm_iotlb(true);

  // Seed the media honestly so the replay has known bytes to deliver.
  const std::vector<uint8_t> media_pattern = Pattern(kLbaSize, 0x5a);
  {
    auto seed_buf = rig.machine.slab().Kmalloc(kLbaSize, "seed_buf");
    ASSERT_TRUE(seed_buf.ok());
    ASSERT_TRUE(rig.machine.kmem()
                    .Write(*seed_buf, std::span<const uint8_t>(media_pattern))
                    .ok());
    ASSERT_TRUE(rig.driver.WriteBlocks(8, 1, *seed_buf).ok());
    ASSERT_TRUE(rig.machine.slab().Kfree(*seed_buf).ok());
  }
  // Close the setup phase's own stale windows before the measured attack.
  rig.machine.iommu().FlushNow();

  dkasan::DKasan dkasan(rig.machine.layout());
  dkasan.Attach(rig.machine.slab());
  dkasan.Attach(rig.machine.dma());
  dkasan.set_telemetry(&rig.machine.telemetry());

  // A sentinel neighbour on the kmalloc-512 page makes later maps of that
  // page D-KASAN map-after-alloc reports — the detector we time.
  auto sentinel = rig.machine.slab().Kmalloc(512, "sentinel");
  auto buf = rig.machine.slab().Kmalloc(512, "posted_read_buf");
  ASSERT_TRUE(sentinel.ok() && buf.ok());
  const Kva old_buf = *buf;

  rig.controller.set_complete_before_transfer(true);

  // The poisoned read: "succeeds" with zero bytes actually moved. Believing
  // the device done, the driver unmaps (deferred: stale window opens) and we
  // free the buffer.
  auto moved = rig.driver.ReadBlocks(8, 1, *buf);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, kLbaSize);
  EXPECT_EQ(rig.driver.outstanding(), 0u);
  ASSERT_EQ(rig.controller.pending_transfers().size(), 1u);
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());

  // The slab recycles the slot immediately.
  auto recycled = rig.machine.slab().Kmalloc(512, "recycled_victim");
  ASSERT_TRUE(recycled.ok());
  EXPECT_EQ(recycled->value, old_buf.value) << "slab did not recycle the slot";
  const std::vector<uint8_t> zeros(kLbaSize, 0);
  ASSERT_TRUE(
      rig.machine.kmem().Write(*recycled, std::span<const uint8_t>(zeros)).ok());

  rig.machine.clock().AdvanceUs(5);

  // Replay the withheld data phase: the stale IOTLB entry still translates
  // the old IOVA, so the media bytes land in the recycled object.
  const uint64_t stale_before = rig.machine.iommu().stats().stale_iotlb_accesses;
  ASSERT_TRUE(rig.controller.ReplayPendingTransfer().ok());
  EXPECT_GE(rig.machine.iommu().stats().stale_iotlb_accesses, stale_before + 1);

  std::vector<uint8_t> readback(kLbaSize);
  ASSERT_TRUE(
      rig.machine.kmem().Read(*recycled, std::span<uint8_t>(readback)).ok());
  EXPECT_EQ(readback, media_pattern) << "replay did not corrupt recycled memory";

  // While the window is still open, a second IO maps the sentinel's page and
  // D-KASAN fires — the WindowTracker stamps the detection latency.
  auto buf2 = rig.machine.slab().Kmalloc(512, "second_io_buf");
  ASSERT_TRUE(buf2.ok());
  ASSERT_TRUE(rig.driver.WriteBlocks(0, 1, *buf2).ok());
  EXPECT_GE(dkasan.count(dkasan::ReportKind::kMapAfterAlloc), 1u);

  // The flush closes every stale window; the second withheld transfer (from
  // the poisoned WriteBlocks) now dies at the fence.
  rig.machine.iommu().FlushNow();
  ASSERT_EQ(rig.controller.pending_transfers().size(), 1u);
  EXPECT_FALSE(rig.controller.ReplayPendingTransfer().ok());

  // The numbers the paper's Fig. 6 argument needs, from the WindowTracker.
  trace::WindowTracker* windows = rig.machine.windows();
  ASSERT_NE(windows, nullptr);
  bool hit_window = false;
  bool detected_window = false;
  for (const trace::Window& w : windows->windows()) {
    if (w.kind != trace::WindowKind::kStaleIotlb || w.open) {
      continue;
    }
    if (w.device_hits >= 1 && w.duration() > 0) {
      hit_window = true;
    }
    detected_window = detected_window || w.detected;
  }
  EXPECT_TRUE(hit_window) << "no closed stale window recorded a device hit";
  EXPECT_TRUE(detected_window) << "no stale window was marked detected";
  EXPECT_GE(windows->stale_open_summary().count, 2u);
  EXPECT_GE(windows->stale_open_summary().max, 1u);
  EXPECT_GE(windows->dkasan_latency_summary().count, 1u);

  rig.controller.ClearPendingTransfers();
  ASSERT_TRUE(rig.machine.slab().Kfree(*recycled).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf2).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*sentinel).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  rig.machine.iommu().FlushNow();
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// ---- Hostile controller quarantined leak-free ----------------------------------

// A firmware that floods the CQ with forged completions trips the health
// scorer (weight 2.0 per rejected CQE, threshold 24) and is quarantined;
// teardown afterwards leaks nothing even though the device never cooperated.
TEST(NvmeQuarantine, ForgedCompletionFloodQuarantinesControllerLeakFree) {
  core::MachineConfig mc = BaseConfig(106, iommu::InvalidationMode::kDeferred);
  mc.telemetry.enabled = true;
  mc.recovery.enabled = true;
  EvilRig rig(mc);
  ASSERT_TRUE(rig.driver.Init().ok());

  recovery::RecoveryManager& recovery = rig.machine.recovery();
  for (int burst = 0; burst < 20; ++burst) {
    if (recovery.state(rig.driver.device_id()) !=
        recovery::DeviceState::kHealthy) {
      break;
    }
    // A plausible-looking CQE for a CID that was never issued.
    (void)rig.controller.ForgePoisonedCompletion(
        kIoQid, static_cast<uint16_t>(0x6000 + burst), kScSuccess, 512);
    (void)rig.driver.PollCompletions();
    recovery.Poll();
  }

  EXPECT_EQ(recovery.state(rig.driver.device_id()),
            recovery::DeviceState::kQuarantined);
  EXPECT_GE(recovery.total_quarantines(), 1u);
  EXPECT_GE(rig.driver.completion_errors(), 10u);

  // The fenced device can forge nothing further...
  EXPECT_FALSE(rig.controller
                   .ForgePoisonedCompletion(kIoQid, 0x7000, kScSuccess, 512)
                   .ok());
  // ...and driver IO fails cleanly instead of touching revoked mappings.
  auto buf = rig.machine.slab().Kmalloc(kLbaSize, "post_quarantine");
  ASSERT_TRUE(buf.ok());
  EXPECT_FALSE(rig.driver.WriteBlocks(0, 1, *buf).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());

  // Best-effort teardown against the unresponsive device must be leak-free.
  (void)rig.driver.Shutdown();
  rig.machine.iommu().FlushNow();
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_EQ(rig.machine.frag_pool(CpuId{0}).live_frags(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

}  // namespace
}  // namespace spv::nvme
