// Integration tests for the attack framework: NX-enforcing MiniCpu, KASLR
// subversion, poison images, window probing, and the three compound attacks
// of §5.3–§5.5 end to end.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "attack/attacks.h"
#include "attack/kaslr_break.h"
#include "attack/mini_cpu.h"
#include "attack/poison.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "mem/kernel_symbols.h"
#include "net/layouts.h"

namespace spv::attack {
namespace {

// i40e-style half-page RX buffers: truesize exactly 2048, so buffers pack two
// per page and skb_shared_info never straddles a page boundary.
constexpr uint32_t kHalfPageBufLen = 1728;

core::MachineConfig VictimConfig(uint64_t seed, bool forwarding,
                                 iommu::InvalidationMode mode) {
  core::MachineConfig config;
  config.seed = seed;
  config.iommu.mode = mode;
  config.net.forwarding_enabled = forwarding;
  return config;
}

net::NicDriver::Config DriverConfig(bool unmap_before_build = true) {
  net::NicDriver::Config config;
  config.name = "victim_nic";
  config.rx_ring_size = 32;
  config.rx_buf_len = kHalfPageBufLen;
  config.unmap_before_build = unmap_before_build;
  return config;
}

// Full victim + attacker rig.
struct Rig {
  explicit Rig(core::MachineConfig machine_config,
               net::NicDriver::Config driver_config = DriverConfig())
      : machine(machine_config),
        nic(machine.AddNicDriver(driver_config)),
        device(device::DevicePort{machine.iommu(), nic.device_id()}),
        cpu(machine.kmem(), machine.layout()) {
    device.set_warm_iotlb_on_post(true);
    nic.AttachDevice(&device);
    machine.stack().set_egress(&nic);
    machine.stack().set_callback_invoker(&cpu);
  }

  AttackEnv env() { return AttackEnv{machine, nic, device, cpu}; }

  core::Machine machine;
  net::NicDriver& nic;
  device::MaliciousNic device;
  MiniCpu cpu;
};

// ---- MiniCpu ------------------------------------------------------------------

class MiniCpuTest : public ::testing::Test {
 protected:
  MiniCpuTest()
      : machine_(VictimConfig(11, false, iommu::InvalidationMode::kStrict)),
        cpu_(machine_.kmem(), machine_.layout()) {}

  void TearDown() override {
    Status invariants = machine_.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.message();
  }

  core::Machine machine_;
  MiniCpu cpu_;
};

TEST_F(MiniCpuTest, NxBlocksDirectCodeInjection) {
  // Pointing the callback at data (the classic naive injection) must fault.
  auto buf = machine_.slab().Kmalloc(256, "shellcode");
  ASSERT_TRUE(buf.ok());
  Status s = cpu_.InvokeCallback(*buf, Kva{0});
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(cpu_.nx_faults(), 1u);
  EXPECT_FALSE(cpu_.privilege_escalated());
}

TEST_F(MiniCpuTest, NullCallbackIsAnOops) {
  EXPECT_FALSE(cpu_.InvokeCallback(Kva{0}, Kva{0}).ok());
  EXPECT_EQ(cpu_.wild_jumps(), 1u);
}

TEST_F(MiniCpuTest, WildTextJumpIsAnOops) {
  const Kva somewhere_in_text = Kva{machine_.layout().text_base() + 0x777};
  EXPECT_FALSE(cpu_.InvokeCallback(somewhere_in_text, Kva{0}).ok());
  EXPECT_EQ(cpu_.wild_jumps(), 1u);
}

TEST_F(MiniCpuTest, BenignDestructorRunsCleanly) {
  const Kva benign = Kva{machine_.layout().text_base() + kSymBenignUbufDestructor};
  EXPECT_TRUE(cpu_.InvokeCallback(benign, Kva{0x1234}).ok());
  EXPECT_EQ(cpu_.benign_callbacks(), 1u);
  EXPECT_FALSE(cpu_.privilege_escalated());
}

TEST_F(MiniCpuTest, JopPivotIntoRopChainEscalates) {
  // Hand-build the poison in kernel memory and fire the callback the way
  // FreeSkb would (§6).
  auto buf = machine_.slab().Kmalloc(PoisonLayout::kImageBytes, "poison");
  ASSERT_TRUE(buf.ok());
  KaslrKnowledge knowledge;
  knowledge.text_base = machine_.layout().text_base();
  auto image = BuildPoisonImage(knowledge, buf->value);
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(machine_.kmem().Write(*buf, *image).ok());

  const Kva pivot = Kva{machine_.layout().text_base() + mem::kSymJopStackPivot};
  ASSERT_TRUE(cpu_.InvokeCallback(pivot, *buf).ok());
  EXPECT_TRUE(cpu_.privilege_escalated());
  // Trace shows the full chain.
  ASSERT_GE(cpu_.trace().size(), 4u);
  EXPECT_EQ(cpu_.trace()[0].what, "jop: rsp = rdi + const");
}

TEST_F(MiniCpuTest, CommitCredsWithoutPreparedCredDoesNotEscalate) {
  auto buf = machine_.slab().Kmalloc(128, "chain");
  ASSERT_TRUE(buf.ok());
  // Chain: commit_creds directly (rdi is the ubuf pointer, not a cred).
  const uint64_t commit = machine_.layout().text_base() + mem::kSymCommitCreds;
  ASSERT_TRUE(machine_.kmem().WriteU64(*buf + 64, commit).ok());
  ASSERT_TRUE(machine_.kmem().WriteU64(*buf + 72, 0).ok());
  const Kva pivot = Kva{machine_.layout().text_base() + mem::kSymJopStackPivot};
  ASSERT_TRUE(cpu_.InvokeCallback(pivot, *buf).ok());
  EXPECT_FALSE(cpu_.privilege_escalated());
}

TEST_F(MiniCpuTest, CetBlocksJopPivotButAllowsLegitCallbacks) {
  // §8: CET's shadow stack + ENDBR marking kill ROP/JOP at the first gadget.
  cpu_.set_cet_enabled(true);
  auto buf = machine_.slab().Kmalloc(PoisonLayout::kImageBytes, "poison");
  ASSERT_TRUE(buf.ok());
  KaslrKnowledge knowledge;
  knowledge.text_base = machine_.layout().text_base();
  auto image = BuildPoisonImage(knowledge, buf->value);
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(machine_.kmem().Write(*buf, *image).ok());

  const Kva pivot = Kva{machine_.layout().text_base() + mem::kSymJopStackPivot};
  EXPECT_FALSE(cpu_.InvokeCallback(pivot, *buf).ok());
  EXPECT_FALSE(cpu_.privilege_escalated());
  EXPECT_EQ(cpu_.cet_violations(), 1u);

  // Legitimate whole-function callbacks still run (they carry ENDBR).
  const Kva benign = Kva{machine_.layout().text_base() + kSymBenignUbufDestructor};
  EXPECT_TRUE(cpu_.InvokeCallback(benign, Kva{0x1}).ok());
  EXPECT_EQ(cpu_.benign_callbacks(), 1u);
}

TEST(CetEndToEndTest, PoisonedTxBlockedByCet) {
  Rig rig{VictimConfig(45, false, iommu::InvalidationMode::kDeferred)};
  rig.cpu.set_cet_enabled(true);
  ASSERT_TRUE(rig.machine.stack().CreateSocket(7, true).ok());
  ASSERT_TRUE(rig.nic.FillRxRing().ok());
  auto report = PoisonedTxAttack::Run(rig.env(), {});
  ASSERT_TRUE(report.ok());
  // The attacker completes all three attributes, but the payload dies on the
  // first indirect branch.
  EXPECT_TRUE(report->attributes.complete());
  EXPECT_FALSE(report->success);
  EXPECT_GE(rig.cpu.cet_violations(), 1u);
}

TEST_F(MiniCpuTest, RunawayChainHitsStepBudget) {
  auto buf = machine_.slab().Kmalloc(1024, "loop");
  ASSERT_TRUE(buf.ok());
  const uint64_t ret = machine_.layout().text_base() + mem::kSymGadgetRet;
  for (uint64_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(machine_.kmem().WriteU64(*buf + 64 + i * 8, ret).ok());
  }
  const Kva pivot = Kva{machine_.layout().text_base() + mem::kSymJopStackPivot};
  EXPECT_FALSE(cpu_.InvokeCallback(pivot, *buf).ok());
}

// ---- KaslrBreaker ----------------------------------------------------------------

TEST(KaslrBreakerTest, RecoversAllBasesFromLeakedPointers) {
  Xoshiro256 rng{77};
  mem::KernelLayout layout = mem::KernelLayout::Create(16384, /*kaslr=*/true, rng);
  KaslrBreaker breaker;
  const uint64_t leaked[] = {
      0x1234,                                                // noise
      layout.SymbolKva(mem::kSymInitNet).value,              // text leak
      layout.StructPageKva(Pfn{555}).value,                  // vmemmap leak
      layout.PhysToDirectMapKva(PhysAddr{0x3000}).value,     // direct-map leak
      0xffffffffffffffffULL,                                 // noise
  };
  breaker.Consume(leaked);
  ASSERT_TRUE(breaker.knowledge().complete());
  EXPECT_EQ(*breaker.knowledge().text_base, layout.text_base());
  EXPECT_EQ(*breaker.knowledge().vmemmap_base, layout.vmemmap_base());
  EXPECT_EQ(*breaker.knowledge().page_offset_base, layout.page_offset_base());
  EXPECT_EQ(breaker.stats().init_net_hits, 1u);
}

TEST(KaslrBreakerTest, TextPointerWithWrongLowBitsIsNotInitNet) {
  Xoshiro256 rng{78};
  mem::KernelLayout layout = mem::KernelLayout::Create(16384, true, rng);
  KaslrBreaker breaker;
  const uint64_t leaked[] = {layout.SymbolKva(mem::kSymCommitCreds).value};
  breaker.Consume(leaked);
  EXPECT_FALSE(breaker.knowledge().text_base.has_value());
  EXPECT_EQ(breaker.stats().text_pointers, 1u);
}

TEST(KaslrBreakerTest, TranslationsRequireKnownBases) {
  KaslrKnowledge knowledge;
  EXPECT_FALSE(knowledge.SymbolAddress(0x100).ok());
  EXPECT_FALSE(knowledge.StructPageToPfn(0xffffea0000001000ULL).ok());
  EXPECT_FALSE(knowledge.PfnToKva(5).ok());
  knowledge.vmemmap_base = 0xffffea0000000000ULL;
  auto pfn = knowledge.StructPageToPfn(0xffffea0000000000ULL + 42 * 64);
  ASSERT_TRUE(pfn.ok());
  EXPECT_EQ(*pfn, 42u);
}

TEST(KaslrBreakerTest, StructPageRoundTripThroughKnowledge) {
  Xoshiro256 rng{79};
  mem::KernelLayout layout = mem::KernelLayout::Create(16384, true, rng);
  KaslrKnowledge knowledge;
  knowledge.vmemmap_base = layout.vmemmap_base();
  knowledge.page_offset_base = layout.page_offset_base();
  const Pfn pfn{1234};
  auto kva = knowledge.StructPageToDataKva(layout.StructPageKva(pfn).value, 0x20);
  ASSERT_TRUE(kva.ok());
  EXPECT_EQ(*kva, layout.PhysToDirectMapKva(PhysAddr::FromPfn(pfn, 0x20)).value);
}

// ---- Poison image ------------------------------------------------------------------

TEST(PoisonTest, ImageLayout) {
  KaslrKnowledge knowledge;
  knowledge.text_base = mem::LayoutRanges::kTextStart + (5ull << 21);
  auto image = BuildPoisonImage(knowledge, 0xffff888000123000ULL);
  ASSERT_TRUE(image.ok());
  ASSERT_EQ(image->size(), PoisonLayout::kImageBytes);
  uint64_t callback;
  std::memcpy(&callback, image->data(), 8);
  EXPECT_EQ(callback, *knowledge.text_base + mem::kSymJopStackPivot);
  uint64_t marker;
  std::memcpy(&marker, image->data() + PoisonLayout::kMarkerOffset, 8);
  EXPECT_EQ(marker, PoisonLayout::kMarker);
}

TEST(PoisonTest, RequiresTextBase) {
  KaslrKnowledge knowledge;
  EXPECT_FALSE(BuildPoisonImage(knowledge, 0).ok());
}

// ---- Residual seeding ----------------------------------------------------------------

TEST(ResidualTest, ResidualPointersSurviveIntoFragPages) {
  core::Machine machine{VictimConfig(21, false, iommu::InvalidationMode::kDeferred)};
  ASSERT_TRUE(SeedResidualKernelData(machine, 64).ok());
  // A page_frag region allocated afterwards sits on recycled pages; scan its
  // raw contents for the planted pointers.
  auto& pool = machine.frag_pool(CpuId{0});
  int residual_hits = 0;
  for (int i = 0; i < 64; ++i) {
    auto frag = pool.Alloc(2048, 64, "rx");
    ASSERT_TRUE(frag.ok());
    auto phys = machine.layout().DirectMapKvaToPhys(*frag);
    auto page = machine.pm().PageSpan(phys->pfn());
    for (size_t off = 0; off + 8 <= page.size(); off += 8) {
      uint64_t value;
      std::memcpy(&value, page.data() + off, 8);
      if (mem::KernelLayout::ClassifyByRange(Kva{value}) == mem::Region::kKernelText ||
          mem::KernelLayout::ClassifyByRange(Kva{value}) == mem::Region::kDirectMap) {
        ++residual_hits;
      }
    }
  }
  EXPECT_GT(residual_hits, 0) << "no kernel pointers lingered on recycled I/O pages";
}

// ---- Window probing (TryPokeDestructorArg) ----------------------------------------------

class PokeTest : public ::testing::TestWithParam<iommu::InvalidationMode> {};

TEST_P(PokeTest, WindowMatchesModeAndLayout) {
  Rig rig{VictimConfig(31, false, GetParam())};
  ASSERT_TRUE(rig.nic.FillRxRing().ok());
  ASSERT_FALSE(rig.device.rx_posted().empty());
  const net::RxPostedDescriptor consumed = rig.device.rx_posted().front();

  net::PacketHeader header{.dst_ip = 1, .dst_port = 9, .proto = net::kProtoUdp};
  std::vector<uint8_t> payload(32, 1);
  auto index = rig.device.InjectRx(header, payload);
  ASSERT_TRUE(index.ok());
  auto skb = rig.nic.CompleteRx(*index, net::PacketHeader::kSize + 32);
  ASSERT_TRUE(skb.ok());

  PokeResult poke = TryPokeDestructorArg(rig.device, consumed, rig.nic.rx_buffer_bytes(),
                                         0xdeadbeefcafe0000ULL);
  ASSERT_TRUE(poke.success) << "no window in mode " << static_cast<int>(GetParam());
  if (GetParam() == iommu::InvalidationMode::kDeferred) {
    // Fig 7 (ii): the stale IOTLB entry translates the dead IOVA.
    EXPECT_TRUE(poke.own_iova_write);
  } else {
    // Fig 7 (iii): strict mode killed the own-IOVA translation of *this*
    // buffer; the type (c) neighbour mapping is the path that matters.
    EXPECT_TRUE(poke.neighbor_write);
  }
  // Ground truth: the write really landed in the skb's shared_info (in
  // strict mode the own-IOVA shot goes into the recycled mapping instead,
  // which is why the neighbour path is load-bearing).
  net::SharedInfoView shinfo{rig.machine.kmem(), (*skb)->shared_info()};
  EXPECT_EQ(*shinfo.destructor_arg(), 0xdeadbeefcafe0000ULL);
}

INSTANTIATE_TEST_SUITE_P(Modes, PokeTest,
                         ::testing::Values(iommu::InvalidationMode::kDeferred,
                                           iommu::InvalidationMode::kStrict));

TEST(PokeTestNegative, StrictModeWithPageAlignedBuffersFails) {
  // Strict mode + page-aligned dedicated buffers (LRO-style 64 KiB regions):
  // no stale IOTLB, no page shared with any other mapping — every window is
  // closed and the attack cannot reach the shared_info.
  core::MachineConfig config = VictimConfig(32, false, iommu::InvalidationMode::kStrict);
  net::NicDriver::Config driver_config = DriverConfig();
  driver_config.rx_ring_size = 1;
  driver_config.hw_lro = true;  // dedicated, page-aligned regions
  Rig rig{config, driver_config};
  ASSERT_TRUE(rig.nic.FillRxRing().ok());
  const net::RxPostedDescriptor consumed = rig.device.rx_posted().front();

  net::PacketHeader header{.dst_ip = 1, .dst_port = 9, .proto = net::kProtoUdp};
  std::vector<uint8_t> payload(16, 1);
  auto index = rig.device.InjectRx(header, payload);
  ASSERT_TRUE(index.ok());
  auto skb = rig.nic.CompleteRx(*index, net::PacketHeader::kSize + 16);
  ASSERT_TRUE(skb.ok());

  // The refilled slot's buffer may land on our page; drop it from the posted
  // list to model a driver whose ring entries never share pages.
  rig.device.rx_posted().clear();
  PokeResult poke =
      TryPokeDestructorArg(rig.device, consumed, rig.nic.rx_buffer_bytes(), 0x1234);
  // The blind own-IOVA shot may "succeed" (the IOVA was recycled), but the
  // skb's shared_info must be untouched: the attack has no real window.
  EXPECT_FALSE(poke.neighbor_write);
  net::SharedInfoView shinfo{rig.machine.kmem(), (*skb)->shared_info()};
  EXPECT_EQ(*shinfo.destructor_arg(), 0u);
}

// ---- Compound attacks end-to-end ------------------------------------------------------

TEST(PoisonedTxTest, EscalatesInDeferredMode) {
  Rig rig{VictimConfig(41, false, iommu::InvalidationMode::kDeferred)};
  ASSERT_TRUE(rig.machine.stack().CreateSocket(7, /*echo=*/true).ok());
  ASSERT_TRUE(rig.nic.FillRxRing().ok());

  auto report = PoisonedTxAttack::Run(rig.env(), {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->kaslr.complete()) << report->kaslr.ToString();
  EXPECT_TRUE(report->attributes.complete()) << report->attributes.ToString();
  EXPECT_TRUE(report->success);
  EXPECT_NE(report->window_path.find("own-iova"), std::string::npos);
  EXPECT_TRUE(rig.cpu.privilege_escalated());
}

TEST(PoisonedTxTest, EscalatesInStrictModeViaNeighborIova) {
  // §5.2.2 (iii): strict mode does not save the kernel — the type (c) alias
  // provides the window instead.
  Rig rig{VictimConfig(42, false, iommu::InvalidationMode::kStrict)};
  ASSERT_TRUE(rig.machine.stack().CreateSocket(7, true).ok());
  ASSERT_TRUE(rig.nic.FillRxRing().ok());

  auto report = PoisonedTxAttack::Run(rig.env(), {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->success);
  EXPECT_NE(report->window_path.find("neighbor-iova"), std::string::npos);
}

TEST(PoisonedTxTest, FailsWithoutEchoService) {
  Rig rig{VictimConfig(43, false, iommu::InvalidationMode::kDeferred)};
  ASSERT_TRUE(rig.nic.FillRxRing().ok());
  auto report = PoisonedTxAttack::Run(rig.env(), {});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);  // nothing echoed, no KVA leak
}

TEST(RingFloodTest, ProfilingFindsRepeatingPfns) {
  RingFloodAttack::ProfileOptions options;
  options.machine = VictimConfig(0, false, iommu::InvalidationMode::kDeferred);
  options.driver = DriverConfig();
  options.boots = 16;
  auto histogram = RingFloodAttack::ProfileRxPfns(options);
  ASSERT_FALSE(histogram.empty());
  const uint64_t best = RingFloodAttack::MostCommonPfn(histogram);
  // The most common PFN repeats in a majority of boots (§5.3).
  EXPECT_GT(histogram.at(best), options.boots / 2);
}

TEST(RingFloodTest, EscalatesWithProfiledGuess) {
  RingFloodAttack::ProfileOptions profile;
  profile.machine = VictimConfig(0, false, iommu::InvalidationMode::kDeferred);
  profile.driver = DriverConfig();
  profile.boots = 16;
  auto histogram = RingFloodAttack::ProfileRxPfns(profile);
  const uint64_t guess = RingFloodAttack::MostCommonPfn(histogram);

  // Victim boots with a seed the attacker has NOT profiled.
  core::MachineConfig victim_config = profile.machine;
  victim_config.seed = profile.base_seed + 999;
  Rig rig{victim_config, profile.driver};
  // Replay the same boot-noise procedure the profiler models.
  RingFloodAttack::ReplayBootNoise(rig.machine, victim_config.seed,
                                   profile.boot_noise_allocs);
  ASSERT_TRUE(rig.nic.FillRxRing().ok());

  RingFloodAttack::Options options;
  options.pfn_guess = guess;
  auto report = RingFloodAttack::Run(rig.env(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->success) << "guess pfn=" << guess;
}

TEST(RingFloodTest, WrongGuessDoesNotEscalate) {
  Rig rig{VictimConfig(55, false, iommu::InvalidationMode::kDeferred)};
  ASSERT_TRUE(rig.nic.FillRxRing().ok());
  RingFloodAttack::Options options;
  options.pfn_guess = 3;  // kernel image page: certainly not an RX buffer
  auto report = RingFloodAttack::Run(rig.env(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);
  EXPECT_FALSE(rig.cpu.privilege_escalated());
}

TEST(ForwardThinkingTest, EscalatesViaGroForwarding) {
  Rig rig{VictimConfig(61, true, iommu::InvalidationMode::kDeferred)};
  ASSERT_TRUE(SeedResidualKernelData(rig.machine, 200).ok());
  ASSERT_TRUE(rig.nic.FillRxRing().ok());

  auto report = ForwardThinkingAttack::Run(rig.env(), {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->kaslr.complete()) << report->kaslr.ToString();
  EXPECT_TRUE(report->success);
}

TEST(ForwardThinkingTest, RefusedWhenForwardingDisabled) {
  Rig rig{VictimConfig(62, false, iommu::InvalidationMode::kDeferred)};
  ASSERT_TRUE(rig.nic.FillRxRing().ok());
  auto report = ForwardThinkingAttack::Run(rig.env(), {});
  EXPECT_FALSE(report.ok());
}

TEST(RandstructTest, LayoutRandomizationBreaksFixedOffsetButNotSpraying) {
  // Footnote 2: __randomize_layout moves destructor_arg per boot. A fixed-
  // offset write misses — but a DMA attacker can simply spray every
  // pointer-sized candidate slot, so the annotation is weak against sub-page
  // write access.
  core::MachineConfig config = VictimConfig(91, false, iommu::InvalidationMode::kDeferred);
  config.randomize_struct_layout = true;
  Rig rig{config};
  ASSERT_TRUE(rig.nic.FillRxRing().ok());
  const uint64_t real_offset = rig.machine.layout().shinfo_destructor_offset();
  ASSERT_NE(real_offset, 32u) << "pick a seed whose shuffle moves the field";

  auto complete_one = [&]() -> std::pair<net::RxPostedDescriptor, net::SkBuffPtr> {
    const net::RxPostedDescriptor consumed = rig.device.rx_posted().front();
    net::PacketHeader header{.dst_ip = 1, .dst_port = 9, .proto = net::kProtoUdp};
    std::vector<uint8_t> payload(32, 1);
    auto index = rig.device.InjectRx(header, payload);
    EXPECT_TRUE(index.ok());
    auto skb = rig.nic.CompleteRx(*index, net::PacketHeader::kSize + 32);
    EXPECT_TRUE(skb.ok());
    return {consumed, std::move(*skb)};
  };

  // Fixed-offset attack: writes the compile-time slot, kernel reads another.
  {
    auto [consumed, skb] = complete_one();
    PokeResult poke = TryPokeDestructorArg(rig.device, consumed,
                                           rig.nic.rx_buffer_bytes(), 0xabcd);
    ASSERT_TRUE(poke.success);
    net::SharedInfoView shinfo{rig.machine.kmem(), skb->shared_info()};
    EXPECT_EQ(*shinfo.destructor_arg(), 0u) << "fixed-offset write must miss";
    ASSERT_TRUE(rig.machine.skb_alloc().FreeSkb(std::move(skb), &rig.cpu).ok());
    EXPECT_FALSE(rig.cpu.privilege_escalated());
  }

  // Spray attack: hit all three candidate slots; the real one takes.
  {
    auto [consumed, skb] = complete_one();
    const uint64_t shinfo_base = SharedInfoOffset(rig.nic.rx_buffer_bytes());
    for (uint64_t slot : {8u, 16u, 32u}) {
      (void)TryPokeQword(rig.device, consumed, shinfo_base + slot, 0xabcd);
    }
    net::SharedInfoView shinfo{rig.machine.kmem(), skb->shared_info()};
    EXPECT_EQ(*shinfo.destructor_arg(), 0xabcdu) << "spray must hit the shuffled slot";
    ASSERT_TRUE(rig.machine.skb_alloc().FreeSkb(std::move(skb), nullptr).ok());
  }
}

TEST(NoKaslrTest, AttackerNeedsNoLeakWhenKaslrIsOff) {
  // nokaslr boot: every base is the Table-1 compile-time default, so the
  // attacker skips the §2.4 bootstrap entirely.
  core::MachineConfig config = VictimConfig(70, false, iommu::InvalidationMode::kDeferred);
  config.kaslr = false;
  Rig rig{config};
  ASSERT_TRUE(rig.nic.FillRxRing().ok());

  KaslrKnowledge knowledge;  // filled from architectural constants, no leak
  knowledge.text_base = mem::LayoutRanges::kTextStart;
  knowledge.vmemmap_base = mem::LayoutRanges::kVmemmapStart;
  knowledge.page_offset_base = mem::LayoutRanges::kDirectMapStart;
  EXPECT_EQ(*knowledge.text_base, rig.machine.layout().text_base());
  EXPECT_EQ(*knowledge.page_offset_base, rig.machine.layout().page_offset_base());

  // Plant poison at a *computed* KVA (no observation needed) and hijack.
  const net::RxPostedDescriptor descriptor = rig.device.rx_posted().front();
  const Kva buf_kva = *rig.nic.RxSlotKva(descriptor.index);
  auto phys = rig.machine.layout().DirectMapKvaToPhys(buf_kva);
  const uint64_t attacker_kva =
      *knowledge.PfnToKva(phys->pfn().value, phys->page_offset()) + 512;
  EXPECT_EQ(attacker_kva, (buf_kva + 512).value);  // attacker math is exact

  auto image = BuildPoisonImage(knowledge, attacker_kva);
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(rig.device.port().Write(descriptor.iova + 512, *image).ok());

  net::PacketHeader header{.dst_ip = rig.machine.stack().config().local_ip,
                           .dst_port = 60000, .proto = net::kProtoUdp};
  std::vector<uint8_t> payload(32, 1);
  auto index = rig.device.InjectRx(header, payload);
  ASSERT_TRUE(index.ok());
  auto skb = rig.nic.CompleteRx(*index, net::PacketHeader::kSize + 32);
  ASSERT_TRUE(skb.ok());
  PokeResult poke = TryPokeDestructorArg(rig.device, descriptor,
                                         rig.nic.rx_buffer_bytes(), attacker_kva);
  ASSERT_TRUE(poke.success);
  ASSERT_TRUE(rig.machine.stack().NapiGroReceive(std::move(*skb)).ok());
  EXPECT_TRUE(rig.cpu.privilege_escalated());
}

TEST(XdpLeakTest, XdpBidirectionalMappingLeaksResidualsWithoutTxTraffic) {
  // With XDP attached, RX buffers are READ|WRITE (§5.1) — the device can
  // scan residual kernel pointers off its own RX pages without waiting for
  // any TX traffic.
  core::MachineConfig config = VictimConfig(71, false, iommu::InvalidationMode::kDeferred);
  core::Machine machine{config};
  ASSERT_TRUE(SeedResidualKernelData(machine, 64).ok());
  net::NicDriver::Config driver_config = DriverConfig();
  driver_config.xdp = true;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  ASSERT_TRUE(nic.FillRxRing().ok());

  KaslrBreaker breaker;
  for (const net::RxPostedDescriptor& descriptor : device.rx_posted()) {
    auto page = device.port().ReadPageQwords(descriptor.iova);
    ASSERT_TRUE(page.ok()) << "XDP RX page not readable";
    breaker.Consume(*page);
  }
  EXPECT_TRUE(breaker.knowledge().text_base.has_value());
  EXPECT_TRUE(breaker.knowledge().page_offset_base.has_value());
  EXPECT_EQ(*breaker.knowledge().text_base, machine.layout().text_base());
}

TEST(XdpLeakTest, NonXdpRxPagesAreNotReadable) {
  core::MachineConfig config = VictimConfig(72, false, iommu::InvalidationMode::kDeferred);
  core::Machine machine{config};
  net::NicDriver& nic = machine.AddNicDriver(DriverConfig());
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  ASSERT_TRUE(nic.FillRxRing().ok());
  const auto& descriptor = device.rx_posted().front();
  EXPECT_FALSE(device.port().ReadPageQwords(descriptor.iova).ok());
}

TEST(IotlbPressureTest, EvictedStaleEntryClosesOwnIovaWindow) {
  // The stale-IOTLB window (path ii) depends on the entry surviving in the
  // cache. A tiny IOTLB under mapping pressure evicts it; the neighbour
  // alias (path iii) is what still works.
  core::MachineConfig config = VictimConfig(73, false, iommu::InvalidationMode::kDeferred);
  config.iommu.iotlb_capacity = 4;  // pathological pressure
  Rig rig{config};
  ASSERT_TRUE(rig.nic.FillRxRing().ok());
  const net::RxPostedDescriptor consumed = rig.device.rx_posted().front();

  net::PacketHeader header{.dst_ip = 1, .dst_port = 9, .proto = net::kProtoUdp};
  std::vector<uint8_t> payload(32, 1);
  auto index = rig.device.InjectRx(header, payload);
  ASSERT_TRUE(index.ok());
  auto skb = rig.nic.CompleteRx(*index, net::PacketHeader::kSize + 32);
  ASSERT_TRUE(skb.ok());
  // Thrash the IOTLB: touch many other posted buffers.
  std::vector<uint8_t> touch(1);
  for (const auto& other : rig.device.rx_posted()) {
    (void)rig.device.port().Write(other.iova, touch);
  }
  PokeOptions own_only{.try_own_iova = true, .try_neighbor = false};
  PokeResult own = TryPokeDestructorArg(rig.device, consumed, rig.nic.rx_buffer_bytes(),
                                        0x1234, own_only);
  EXPECT_FALSE(own.success) << "stale entry should have been evicted";
  PokeOptions neighbor_only{.try_own_iova = false, .try_neighbor = true};
  PokeResult neighbor = TryPokeDestructorArg(rig.device, consumed,
                                             rig.nic.rx_buffer_bytes(), 0x1234,
                                             neighbor_only);
  EXPECT_TRUE(neighbor.success) << "type (c) alias survives IOTLB pressure";
}

TEST(ForwardThinkingTest, SurveillanceReadsArbitraryPage) {
  Rig rig{VictimConfig(63, true, iommu::InvalidationMode::kDeferred)};
  ASSERT_TRUE(rig.nic.FillRxRing().ok());

  // A secret in kernel memory the device was never given access to.
  auto secret_buf = rig.machine.slab().Kmalloc(64, "crypto_key");
  ASSERT_TRUE(secret_buf.ok());
  const char secret[] = "hunter2-master-key";
  ASSERT_TRUE(rig.machine.kmem()
                  .Write(*secret_buf, std::span<const uint8_t>(
                                          reinterpret_cast<const uint8_t*>(secret),
                                          sizeof(secret)))
                  .ok());
  auto phys = rig.machine.layout().DirectMapKvaToPhys(*secret_buf);

  KaslrKnowledge knowledge;
  knowledge.vmemmap_base = rig.machine.layout().vmemmap_base();

  auto leaked = ForwardThinkingAttack::SurveillanceRead(
      rig.env(), knowledge, phys->pfn().value,
      static_cast<uint32_t>(phys->page_offset()), sizeof(secret), 0x0a000099);
  ASSERT_TRUE(leaked.ok()) << leaked.status().ToString();
  EXPECT_EQ(std::memcmp(leaked->data(), secret, sizeof(secret)), 0);
}

}  // namespace
}  // namespace spv::attack
