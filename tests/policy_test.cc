// spv::policy — the device trust & DMA-protection policy engine: the trust
// ladder, quirks-table matching, bounce routing in DmaApi, the hysteresis
// cooldown, the fast-path gate, probation service limits, pool exhaustion,
// leak-free hot-unplug, and posture-report determinism.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/machine.h"
#include "device/device_port.h"
#include "device/malicious_nic.h"
#include "dma/bounce_pool.h"
#include "net/layouts.h"
#include "policy/policy.h"
#include "recovery/recovery.h"

namespace spv {
namespace {

core::MachineConfig PolicyConfig(uint64_t seed = 7) {
  core::MachineConfig config;
  config.seed = seed;
  config.telemetry.enabled = true;
  config.recovery.enabled = true;
  config.recovery.reattach_backoff_cycles = SimClock::UsToCycles(10);
  config.recovery.probation_cycles = SimClock::UsToCycles(10);
  config.policy.enabled = true;
  return config;
}

// A driverless device registered straight with the engine.
DeviceId Plug(core::Machine& machine, uint32_t id, const std::string& model,
              const std::string& device_class) {
  const DeviceId dev{id};
  machine.iommu().AttachDevice(dev);
  EXPECT_TRUE(machine.policy()
                  ->RegisterDevice(dev, policy::DeviceIdentity{model, device_class})
                  .ok());
  return dev;
}

// ---- The trust ladder ----------------------------------------------------------

TEST(PolicyLadder, ClimbsOneRungAtATime) {
  core::Machine machine{PolicyConfig()};
  policy::PolicyEngine* engine = machine.policy();
  ASSERT_NE(engine, nullptr);
  const DeviceId dev = Plug(machine, 50, "usb-nic", "nic");

  EXPECT_EQ(engine->state(dev), policy::TrustState::kUntrusted);
  EXPECT_TRUE(engine->ShouldBounce(dev));

  ASSERT_TRUE(engine->Promote(dev).ok());
  EXPECT_EQ(engine->state(dev), policy::TrustState::kProbation);
  EXPECT_FALSE(engine->ShouldBounce(dev));

  ASSERT_TRUE(engine->Promote(dev).ok());
  EXPECT_EQ(engine->state(dev), policy::TrustState::kTrusted);

  // Top of the ladder: another promotion is a caller error.
  EXPECT_EQ(engine->Promote(dev).code(), StatusCode::kFailedPrecondition);

  // Demotion goes straight back to the bottom.
  ASSERT_TRUE(engine->Demote(dev, "test").ok());
  EXPECT_EQ(engine->state(dev), policy::TrustState::kUntrusted);
  EXPECT_TRUE(engine->ShouldBounce(dev));
}

TEST(PolicyLadder, UnregisteredDevicesAreOutsidePolicy) {
  core::Machine machine{PolicyConfig()};
  const DeviceId dev{51};
  machine.iommu().AttachDevice(dev);
  // Never registered: treated as trusted (pre-policy setups unchanged) and
  // never bounced.
  EXPECT_EQ(machine.policy()->state(dev), policy::TrustState::kTrusted);
  EXPECT_FALSE(machine.policy()->ShouldBounce(dev));
  EXPECT_EQ(machine.policy()->Promote(dev).code(), StatusCode::kNotFound);
}

// ---- Quirks table --------------------------------------------------------------

TEST(PolicyQuirks, FirstMatchWinsAndWildcardsApply) {
  core::MachineConfig config = PolicyConfig();
  policy::Quirk pinned;
  pinned.match_model = "evil-nic";
  pinned.bounce_pages = 4;
  config.policy.quirks.push_back(pinned);
  policy::Quirk inbox;
  inbox.match_class = "nic";
  inbox.initial_trust = policy::TrustState::kTrusted;
  config.policy.quirks.push_back(inbox);
  core::Machine machine{config};
  policy::PolicyEngine* engine = machine.policy();

  // "evil-nic" is class nic too, but the pinned row comes first.
  const DeviceId evil = Plug(machine, 60, "evil-nic", "nic");
  EXPECT_EQ(engine->state(evil), policy::TrustState::kUntrusted);
  EXPECT_EQ(machine.bounce_pool()->pool_pages(evil), 4u);

  const DeviceId inbox_dev = Plug(machine, 61, "i40e", "nic");
  EXPECT_EQ(engine->state(inbox_dev), policy::TrustState::kTrusted);

  // No row matches: the config default applies.
  const DeviceId stranger = Plug(machine, 62, "mystery", "scanner");
  EXPECT_EQ(engine->state(stranger), policy::TrustState::kUntrusted);
  EXPECT_EQ(machine.bounce_pool()->pool_pages(stranger),
            dma::BouncePool::kDefaultPoolPages);
}

// ---- Bounce routing through DmaApi ---------------------------------------------

TEST(PolicyRouting, UntrustedMapsDivertThroughThePool) {
  core::Machine machine{PolicyConfig()};
  const DeviceId dev = Plug(machine, 70, "usb-nic", "nic");
  device::DevicePort port{machine.iommu(), dev};

  Kva buf = *machine.slab().Kmalloc(512, "bounce_buf");
  std::vector<uint8_t> out(16, 0x5c);
  ASSERT_TRUE(machine.kmem().Write(buf, out).ok());

  const uint64_t live_before = machine.dma().live_mappings();
  const uint64_t iommu_unmaps_before = machine.iommu().stats().unmaps.load();
  Result<Iova> iova = machine.dma().MapSingle(dev, buf, 512,
                                              dma::DmaDirection::kBidirectional, "t");
  ASSERT_TRUE(iova.ok());
  // The mapping lives in the pool, not the zero-copy tracker; its sub-page
  // offset is preserved for driver arithmetic.
  EXPECT_TRUE(machine.bounce_pool()->Owns(dev, *iova));
  EXPECT_EQ(machine.dma().live_mappings(), live_before);
  EXPECT_EQ(iova->page_offset(), buf.page_offset());
  EXPECT_EQ(machine.bounce_pool()->active_bounces(dev), 1u);

  // Copy-in gave the device the CPU's bytes; a device write comes back on
  // unmap (copy-out).
  std::vector<uint8_t> seen(16, 0);
  ASSERT_TRUE(machine.iommu().DeviceRead(dev, *iova, seen).ok());
  EXPECT_EQ(seen, out);
  ASSERT_TRUE(port.WriteU64(*iova, 0x1122334455667788ull).ok());
  ASSERT_TRUE(machine.dma()
                  .UnmapSingle(dev, *iova, 512, dma::DmaDirection::kBidirectional)
                  .ok());
  std::vector<uint8_t> got(8, 0);
  ASSERT_TRUE(machine.kmem().Read(buf, got).ok());
  uint64_t value = 0;
  std::memcpy(&value, got.data(), 8);
  EXPECT_EQ(value, 0x1122334455667788ull);

  // Static-mapping path: the whole round trip queued zero IOMMU unmaps, so
  // there is no deferred-invalidation window to exploit.
  EXPECT_EQ(machine.iommu().stats().unmaps.load(), iommu_unmaps_before);
  EXPECT_EQ(machine.bounce_pool()->active_bounces(dev), 0u);
  ASSERT_TRUE(machine.slab().Kfree(buf).ok());
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

TEST(PolicyRouting, TrustedMapsStayZeroCopy) {
  core::Machine machine{PolicyConfig()};
  const DeviceId dev = Plug(machine, 71, "usb-nic", "nic");
  ASSERT_TRUE(machine.policy()->Promote(dev).ok());
  ASSERT_TRUE(machine.policy()->Promote(dev).ok());

  Kva buf = *machine.slab().Kmalloc(512, "direct_buf");
  const uint64_t live_before = machine.dma().live_mappings();
  Result<Iova> iova = machine.dma().MapSingle(dev, buf, 512,
                                              dma::DmaDirection::kFromDevice, "t");
  ASSERT_TRUE(iova.ok());
  EXPECT_FALSE(machine.bounce_pool()->Owns(dev, *iova));
  EXPECT_EQ(machine.dma().live_mappings(), live_before + 1);
  ASSERT_TRUE(
      machine.dma().UnmapSingle(dev, *iova, 512, dma::DmaDirection::kFromDevice).ok());
  ASSERT_TRUE(machine.slab().Kfree(buf).ok());
}

TEST(PolicyRouting, InFlightBounceSurvivesPromotion) {
  core::Machine machine{PolicyConfig()};
  const DeviceId dev = Plug(machine, 72, "usb-nic", "nic");
  Kva buf = *machine.slab().Kmalloc(256, "promoted_buf");
  Result<Iova> iova = machine.dma().MapSingle(dev, buf, 256,
                                              dma::DmaDirection::kFromDevice, "t");
  ASSERT_TRUE(iova.ok());
  ASSERT_TRUE(machine.bounce_pool()->Owns(dev, *iova));

  // Trust changes mid-flight; the unmap must still find the bounce.
  ASSERT_TRUE(machine.policy()->Promote(dev).ok());
  ASSERT_TRUE(machine.policy()->Promote(dev).ok());
  EXPECT_TRUE(
      machine.dma().UnmapSingle(dev, *iova, 256, dma::DmaDirection::kFromDevice).ok());
  EXPECT_EQ(machine.bounce_pool()->active_bounces(dev), 0u);
  ASSERT_TRUE(machine.slab().Kfree(buf).ok());
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

TEST(PolicyRouting, PoolExhaustionFailsCleanlyAndRecovers) {
  core::MachineConfig config = PolicyConfig();
  policy::Quirk tiny;
  tiny.match_model = "tiny";
  tiny.bounce_pages = 2;
  config.policy.quirks.push_back(tiny);
  core::Machine machine{config};
  const DeviceId dev = Plug(machine, 73, "tiny", "nic");

  Kva a = *machine.slab().Kmalloc(kPageSize, "a");
  Kva b = *machine.slab().Kmalloc(kPageSize, "b");
  Kva c = *machine.slab().Kmalloc(kPageSize, "c");
  Result<Iova> ia =
      machine.dma().MapSingle(dev, a, kPageSize, dma::DmaDirection::kFromDevice, "a");
  Result<Iova> ib =
      machine.dma().MapSingle(dev, b, kPageSize, dma::DmaDirection::kFromDevice, "b");
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  // Both slots taken: the third map must fail loudly, not fall back to a
  // direct (unprotected) mapping.
  Result<Iova> ic =
      machine.dma().MapSingle(dev, c, kPageSize, dma::DmaDirection::kFromDevice, "c");
  EXPECT_FALSE(ic.ok());
  EXPECT_EQ(machine.dma().live_mappings(), 0u);

  // Releasing a slot makes the pool serviceable again.
  ASSERT_TRUE(
      machine.dma().UnmapSingle(dev, *ia, kPageSize, dma::DmaDirection::kFromDevice).ok());
  ic = machine.dma().MapSingle(dev, c, kPageSize, dma::DmaDirection::kFromDevice, "c");
  EXPECT_TRUE(ic.ok());
  ASSERT_TRUE(
      machine.dma().UnmapSingle(dev, *ib, kPageSize, dma::DmaDirection::kFromDevice).ok());
  ASSERT_TRUE(
      machine.dma().UnmapSingle(dev, *ic, kPageSize, dma::DmaDirection::kFromDevice).ok());
  for (Kva kva : {a, b, c}) {
    ASSERT_TRUE(machine.slab().Kfree(kva).ok());
  }
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

// ---- Fast-path gate ------------------------------------------------------------

TEST(PolicyFastPath, GateFollowsTrust) {
  core::MachineConfig config = PolicyConfig();
  config.iommu.fast_path.rcache_enabled = true;
  config.iommu.fast_path.hash_index_enabled = true;
  core::Machine machine{config};
  const DeviceId dev = Plug(machine, 80, "usb-nic", "nic");

  EXPECT_FALSE(machine.iommu().device_fast_path(dev));
  ASSERT_TRUE(machine.policy()->Promote(dev).ok());
  EXPECT_FALSE(machine.iommu().device_fast_path(dev));  // probation: still gated
  ASSERT_TRUE(machine.policy()->Promote(dev).ok());
  EXPECT_TRUE(machine.iommu().device_fast_path(dev));  // trusted: rcache back on
  ASSERT_TRUE(machine.policy()->Demote(dev, "test").ok());
  EXPECT_FALSE(machine.iommu().device_fast_path(dev));
}

// ---- Demotion triggers + hysteresis --------------------------------------------

TEST(PolicyHysteresis, QuarantineDemotesAndCooldownBlocksRepromotion) {
  core::MachineConfig config = PolicyConfig();
  config.policy.promotion_cooldown_cycles = SimClock::UsToCycles(100);
  policy::Quirk inbox;
  inbox.match_class = "nic";
  inbox.initial_trust = policy::TrustState::kTrusted;
  config.policy.quirks.push_back(inbox);
  core::Machine machine{config};
  policy::PolicyEngine* engine = machine.policy();

  net::NicDriver::Config nic_config;
  nic_config.rx_ring_size = 8;
  net::NicDriver& nic = machine.AddNicDriver(nic_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  ASSERT_TRUE(nic.FillRxRing().ok());
  EXPECT_EQ(engine->state(nic.device_id()), policy::TrustState::kTrusted);

  // Health breach -> quarantine (recovery) -> latched trigger -> demotion.
  for (int i = 0; i < 30; ++i) {
    EXPECT_FALSE(
        device.port().WriteU64(Iova{(1ull << 40) + (uint64_t{kPageSize} * i)}, 0xbad).ok());
  }
  ASSERT_GT(machine.recovery().Poll(), 0u);
  EXPECT_EQ(engine->state(nic.device_id()), policy::TrustState::kTrusted);
  EXPECT_GT(engine->Poll(), 0u);
  EXPECT_EQ(engine->state(nic.device_id()), policy::TrustState::kUntrusted);

  // Inside the cooldown every promotion is refused and counted.
  EXPECT_EQ(engine->Promote(nic.device_id()).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine->Promote(nic.device_id()).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine->device_status(nic.device_id()).promotions_blocked, 2u);
  EXPECT_GT(engine->device_status(nic.device_id()).cooldown_remaining, 0u);

  // Past the cooldown the ladder opens again.
  machine.clock().AdvanceUs(101);
  EXPECT_TRUE(engine->Promote(nic.device_id()).ok());
  EXPECT_EQ(engine->state(nic.device_id()), policy::TrustState::kProbation);
}

TEST(PolicyHysteresis, RepeatTriggerWhileUntrustedRefreshesCooldown) {
  core::MachineConfig config = PolicyConfig();
  config.policy.promotion_cooldown_cycles = SimClock::UsToCycles(100);
  core::Machine machine{config};
  policy::PolicyEngine* engine = machine.policy();
  const DeviceId dev = Plug(machine, 81, "usb-nic", "nic");

  ASSERT_TRUE(engine->Demote(dev, "first").ok());
  machine.clock().AdvanceUs(60);
  // A second trigger while already untrusted performs no transition but
  // re-arms the cooldown: the flap clock starts over.
  ASSERT_TRUE(engine->Demote(dev, "second").ok());
  machine.clock().AdvanceUs(60);  // 120us after the first, 60 after the second
  EXPECT_EQ(engine->Promote(dev).code(), StatusCode::kFailedPrecondition);
  machine.clock().AdvanceUs(41);
  EXPECT_TRUE(engine->Promote(dev).ok());
}

// ---- Probation service limits --------------------------------------------------

TEST(PolicyProbation, LimitsClampTheNicDriver) {
  core::MachineConfig config = PolicyConfig();
  policy::Quirk probation;
  probation.match_class = "nic";
  probation.initial_trust = policy::TrustState::kUntrusted;
  probation.probation_limits.ring_limit = 3;
  probation.probation_limits.poll_deadline_cycles = SimClock::UsToCycles(5);
  config.policy.quirks.push_back(probation);
  core::Machine machine{config};

  net::NicDriver::Config nic_config;
  nic_config.rx_ring_size = 8;
  net::NicDriver& nic = machine.AddNicDriver(nic_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);

  // Probation: the quirk's clamps reach the driver through ApplyDmaPolicy.
  ASSERT_TRUE(machine.policy()->Promote(nic.device_id()).ok());
  EXPECT_EQ(nic.policy_limits().ring_limit, 3u);
  ASSERT_TRUE(nic.FillRxRing().ok());
  EXPECT_EQ(device.rx_posted().size(), 3u);  // 8-slot ring, probation cap 3

  // Full trust restores the driver's own config.
  ASSERT_TRUE(machine.policy()->Promote(nic.device_id()).ok());
  EXPECT_EQ(nic.policy_limits().ring_limit, 0u);
  ASSERT_TRUE(nic.FillRxRing().ok());
  EXPECT_EQ(device.rx_posted().size(), 8u);
  ASSERT_TRUE(nic.Shutdown().ok());
}

// ---- Hot-unplug ----------------------------------------------------------------

TEST(PolicyUnplug, UnregisterDropsBouncesAndFreesThePool) {
  core::Machine machine{PolicyConfig()};
  const DeviceId dev = Plug(machine, 90, "evil-nic", "nic");
  Kva buf = *machine.slab().Kmalloc(512, "unplug_buf");
  Result<Iova> iova = machine.dma().MapSingle(dev, buf, 512,
                                              dma::DmaDirection::kFromDevice, "t");
  ASSERT_TRUE(iova.ok());
  ASSERT_EQ(machine.bounce_pool()->active_bounces(dev), 1u);

  // Surprise removal mid-flight: in-flight device writes are discarded, the
  // pool comes down, nothing leaks.
  ASSERT_TRUE(machine.policy()->UnregisterDevice(dev).ok());
  EXPECT_FALSE(machine.bounce_pool()->HasPool(dev));
  EXPECT_EQ(machine.policy()->state(dev), policy::TrustState::kTrusted);  // off-policy now
  ASSERT_TRUE(machine.iommu().DetachDevice(dev).ok());
  ASSERT_TRUE(machine.slab().Kfree(buf).ok());
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

// ---- Posture report ------------------------------------------------------------

TEST(PolicyPosture, JsonIsDeterministic) {
  auto run = [] {
    core::MachineConfig config = PolicyConfig(11);
    policy::Quirk inbox;
    inbox.match_class = "nic";
    inbox.initial_trust = policy::TrustState::kTrusted;
    config.policy.quirks.push_back(inbox);
    core::Machine machine{config};
    Plug(machine, 95, "i40e", "nic");
    const DeviceId scanner = Plug(machine, 96, "scanner", "usb");
    (void)machine.policy()->Promote(scanner);
    (void)machine.policy()->Demote(scanner, "drill");
    (void)machine.policy()->Promote(scanner);  // refused: cooldown
    machine.clock().AdvanceUs(3);
    return machine.policy()->PostureJson();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  // Spot-check the HSI-style surface.
  EXPECT_NE(first.find("\"policy_enabled\": true"), std::string::npos);
  EXPECT_NE(first.find("\"model\": \"scanner\""), std::string::npos);
  EXPECT_NE(first.find("\"trust\": \"untrusted\""), std::string::npos);
  EXPECT_NE(first.find("\"promotions_blocked\": 1"), std::string::npos);
}

TEST(PolicyPosture, DisabledEngineRefusesRegistration) {
  core::MachineConfig config;
  config.seed = 3;
  core::Machine machine{config};
  EXPECT_EQ(machine.policy(), nullptr);
  EXPECT_EQ(machine.bounce_pool(), nullptr);
}

}  // namespace
}  // namespace spv
