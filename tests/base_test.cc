// Unit tests for the base module: strong types, status, rng, align, clock.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "base/align.h"
#include "base/clock.h"
#include "base/log.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/types.h"

namespace spv {
namespace {

// ---- types ------------------------------------------------------------------

TEST(TypesTest, PfnToPhysBase) {
  EXPECT_EQ(Pfn{0}.PhysBase(), 0u);
  EXPECT_EQ(Pfn{1}.PhysBase(), 4096u);
  EXPECT_EQ(Pfn{256}.PhysBase(), 256u * 4096u);
}

TEST(TypesTest, PhysAddrDecomposition) {
  PhysAddr addr{(5ull << kPageShift) | 0x123};
  EXPECT_EQ(addr.pfn().value, 5u);
  EXPECT_EQ(addr.page_offset(), 0x123u);
}

TEST(TypesTest, PhysAddrFromPfnMasksOffset) {
  PhysAddr addr = PhysAddr::FromPfn(Pfn{7}, kPageSize + 5);  // offset wraps into page
  EXPECT_EQ(addr.pfn().value, 7u);
  EXPECT_EQ(addr.page_offset(), 5u);
}

TEST(TypesTest, KvaArithmetic) {
  Kva a{0x1000};
  Kva b = a + 0x234;
  EXPECT_EQ(b.value, 0x1234u);
  EXPECT_EQ(b - a, 0x234u);
  EXPECT_EQ(b.page_offset(), 0x234u);
  EXPECT_EQ(b.PageBase(), a);
}

TEST(TypesTest, IovaPageDecomposition) {
  Iova iova{0xdead000 | 0x7c};
  EXPECT_EQ(iova.page_offset(), 0x7cu);
  EXPECT_EQ(iova.PageBase().value, 0xdead000u);
}

TEST(TypesTest, StrongTypesAreOrdered) {
  EXPECT_LT(Kva{1}, Kva{2});
  EXPECT_LT(Pfn{1}, Pfn{2});
  EXPECT_LT(Iova{1}, Iova{2});
  EXPECT_EQ(DeviceId{3}, DeviceId{3});
}

TEST(TypesTest, HashableInUnorderedContainers) {
  std::unordered_set<Kva> kvas{Kva{1}, Kva{2}, Kva{1}};
  EXPECT_EQ(kvas.size(), 2u);
  std::unordered_set<Pfn> pfns{Pfn{9}, Pfn{9}};
  EXPECT_EQ(pfns.size(), 1u);
}

// ---- status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = PermissionDenied("iommu fault");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(s.ToString(), "PERMISSION_DENIED: iommu fault");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code : {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
                    StatusCode::kAlreadyExists, StatusCode::kPermissionDenied,
                    StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
                    StatusCode::kOutOfRange, StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_NE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r{NotFound("nope")};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r{std::string("payload")};
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// ---- rng --------------------------------------------------------------------

TEST(RngTest, SplitMixIsDeterministic) {
  SplitMix64 a{123}, b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, XoshiroIsDeterministicPerSeed) {
  Xoshiro256 a{7}, b{7}, c{8};
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowStaysInBound) {
  Xoshiro256 rng{99};
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowZeroBoundIsZero) {
  Xoshiro256 rng{1};
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Xoshiro256 rng{5};
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextInRange(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng{17};
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbabilityRoughly) {
  Xoshiro256 rng{23};
  int hits = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.03);
}

// ---- align ------------------------------------------------------------------

TEST(AlignTest, AlignUpDown) {
  EXPECT_EQ(AlignUp(0, 8), 0u);
  EXPECT_EQ(AlignUp(1, 8), 8u);
  EXPECT_EQ(AlignUp(8, 8), 8u);
  EXPECT_EQ(AlignDown(15, 8), 8u);
  EXPECT_EQ(AlignDown(16, 8), 16u);
}

TEST(AlignTest, IsAligned) {
  EXPECT_TRUE(IsAligned(4096, 4096));
  EXPECT_FALSE(IsAligned(4097, 4096));
  EXPECT_TRUE(IsAligned(0, 64));
}

TEST(AlignTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
  EXPECT_EQ(RoundUpPowerOfTwo(5), 8u);
  EXPECT_EQ(RoundUpPowerOfTwo(8), 8u);
}

TEST(AlignTest, Log2Helpers) {
  EXPECT_EQ(Log2Floor(1), 0u);
  EXPECT_EQ(Log2Floor(2), 1u);
  EXPECT_EQ(Log2Floor(3), 1u);
  EXPECT_EQ(Log2Floor(4096), 12u);
  EXPECT_EQ(Log2Ceil(1), 0u);
  EXPECT_EQ(Log2Ceil(3), 2u);
  EXPECT_EQ(Log2Ceil(4096), 12u);
  EXPECT_EQ(Log2Ceil(4097), 13u);
}

// ---- log --------------------------------------------------------------------

TEST(LogTest, LevelGateRoundTrip) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SPV_LOG(kDebug) << "suppressed";  // must not crash; below the gate
  SPV_LOG(kError) << "visible";
  SetLogLevel(old_level);
}

// ---- clock ------------------------------------------------------------------

TEST(ClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.AdvanceUs(1);
  EXPECT_EQ(clock.now(), 100u + SimClock::kCyclesPerUs);
}

TEST(ClockTest, UnitConversionsRoundTrip) {
  EXPECT_EQ(SimClock::MsToCycles(10), 10u * 1000u * SimClock::kCyclesPerUs);
  EXPECT_DOUBLE_EQ(SimClock::CyclesToUs(SimClock::UsToCycles(250)), 250.0);
}

}  // namespace
}  // namespace spv
