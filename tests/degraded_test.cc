// Degraded-mode queue protocols: untrusted devices served on swiotlb-style
// sync bounce rings instead of starving behind per-transfer bounces.
//
// The battery proves the two halves of the tentpole claim:
//
//   * availability — a freshly-attached (or freshly-demoted) untrusted NVMe
//     controller and NIC keep completing real I/O through persistent sync'd
//     bounce slots, including across a LIVE service-mode switch with commands
//     in flight, and a promotion drains the sync rings leak-free;
//
//   * containment — the paper's attack classes (a)-(d) and Poisoned
//     Completion, re-run against the sync rings, stay structurally blocked:
//     every device-visible address is a dedicated pool page, sub-page shots
//     land in bounce padding, PRP segments carry no co-resident frags, and
//     stale replays write recycled pool slots with zero queued invalidations.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/machine.h"
#include "device/device_port.h"
#include "device/malicious_nic.h"
#include "dma/bounce_pool.h"
#include "fault/fault.h"
#include "forensics/flight_recorder.h"
#include "net/layouts.h"
#include "net/nic_driver.h"
#include "nvme/malicious_nvme.h"
#include "nvme/nvme_driver.h"
#include "policy/policy.h"
#include "soak/soak.h"

namespace spv {
namespace {

constexpr uint64_t kSecret = 0x5ec0de5ec0de0000ull;
constexpr uint64_t kBenignCb = 0x1122334455667788ull;

// Policy on, no quirks: every registered device starts kUntrusted, which the
// engine services as kBounceSync by default.
core::MachineConfig DegradedConfig(uint64_t seed, iommu::InvalidationMode mode) {
  core::MachineConfig config;
  config.seed = seed;
  config.phys_pages = 4096;
  config.iommu.mode = mode;
  config.telemetry.enabled = true;
  config.policy.enabled = true;
  return config;
}

// Same machine but the resident driver classes enter kTrusted — the subject
// for the demotion-mid-I/O scenarios.
core::MachineConfig TrustedConfig(uint64_t seed, iommu::InvalidationMode mode) {
  core::MachineConfig config = DegradedConfig(seed, mode);
  policy::Quirk inbox_nvme;
  inbox_nvme.match_class = "nvme";
  inbox_nvme.initial_trust = policy::TrustState::kTrusted;
  config.policy.quirks.push_back(inbox_nvme);
  policy::Quirk inbox_nic;
  inbox_nic.match_class = "nic";
  inbox_nic.initial_trust = policy::TrustState::kTrusted;
  config.policy.quirks.push_back(inbox_nic);
  return config;
}

// A machine with one NVMe driver fronting a MaliciousNvme controller.
struct NvmeRig {
  explicit NvmeRig(core::MachineConfig mc,
                   nvme::NvmeDriver::Config dc = nvme::NvmeDriver::Config{})
      : machine(mc),
        driver(machine.AddNvmeDriver(dc)),
        controller(device::DevicePort{machine.iommu(), driver.device_id()}) {
    controller.set_fault_engine(&machine.fault());
    controller.set_tracer(machine.tracer());
    driver.AttachDevice(&controller);
  }

  core::Machine machine;
  nvme::NvmeDriver& driver;
  nvme::MaliciousNvme controller;
};

// And the NIC-side twin.
struct NicRig {
  explicit NicRig(core::MachineConfig mc,
                  net::NicDriver::Config nc = net::NicDriver::Config{})
      : machine(mc),
        driver(machine.AddNicDriver(nc)),
        device(device::DevicePort{machine.iommu(), driver.device_id()}) {
    driver.AttachDevice(&device);
  }

  core::Machine machine;
  net::NicDriver& driver;
  device::MaliciousNic device;
};

std::vector<uint8_t> Pattern(uint64_t bytes, uint8_t salt) {
  std::vector<uint8_t> data(bytes);
  for (uint64_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<uint8_t>((i * 131 + salt) & 0xff);
  }
  return data;
}

// ---- Availability: untrusted devices serve -------------------------------------

TEST(DegradedNvme, UntrustedControllerServesOnSyncRings) {
  NvmeRig rig(DegradedConfig(9001, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());
  EXPECT_EQ(rig.driver.service_mode(), dma::ServiceMode::kBounceSync);

  dma::BouncePool* pool = rig.machine.bounce_pool();
  ASSERT_NE(pool, nullptr);
  const DeviceId dev = rig.driver.device_id();
  // The rings themselves live on persistent bounce slots.
  EXPECT_TRUE(pool->Owns(dev, rig.driver.io_sq_iova()));
  EXPECT_TRUE(pool->Owns(dev, rig.driver.io_cq_iova()));
  EXPECT_GT(pool->persistent_bounces(dev), 0u);

  // Real block I/O round-trips through the degraded rings, data intact.
  const uint64_t bytes = 8 * nvme::kLbaSize;
  auto buf = rig.machine.slab().Kmalloc(bytes, "degraded_io");
  ASSERT_TRUE(buf.ok());
  const std::vector<uint8_t> pattern = Pattern(bytes, 0x21);
  ASSERT_TRUE(rig.machine.kmem().Write(*buf, pattern).ok());
  auto wrote = rig.driver.WriteBlocks(16, 8, *buf);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, bytes);
  std::vector<uint8_t> zero(bytes, 0);
  ASSERT_TRUE(rig.machine.kmem().Write(*buf, zero).ok());
  ASSERT_TRUE(rig.driver.ReadBlocks(16, 8, *buf).ok());
  std::vector<uint8_t> got(bytes);
  ASSERT_TRUE(rig.machine.kmem().Read(*buf, got).ok());
  EXPECT_EQ(got, pattern);

  // The protocol really ran on sync edges: SQE pushes and CQE pulls.
  EXPECT_GT(pool->syncs_for_device(dev), 0u);
  EXPECT_GT(pool->syncs_for_cpu(dev), 0u);

  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_EQ(pool->total_active(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

TEST(DegradedNvme, MidIoDemotionSwitchesModeLiveAndPreservesCommands) {
  NvmeRig rig(TrustedConfig(9002, iommu::InvalidationMode::kDeferred));
  ASSERT_TRUE(rig.driver.Init().ok());
  EXPECT_EQ(rig.driver.service_mode(), dma::ServiceMode::kZeroCopy);
  dma::BouncePool* pool = rig.machine.bounce_pool();
  const DeviceId dev = rig.driver.device_id();
  EXPECT_FALSE(pool->Owns(dev, rig.driver.io_sq_iova()));

  // A write is in flight (completion not yet consumed) when the evidence
  // lands and the controller is demoted to kUntrusted.
  const uint64_t bytes = 4 * nvme::kLbaSize;
  auto buf = rig.machine.slab().Kmalloc(bytes, "demote_io");
  ASSERT_TRUE(buf.ok());
  const std::vector<uint8_t> pattern = Pattern(bytes, 0x4d);
  ASSERT_TRUE(rig.machine.kmem().Write(*buf, pattern).ok());
  auto cid = rig.driver.SubmitWrite(40, 4, *buf);
  ASSERT_TRUE(cid.ok());
  ASSERT_EQ(rig.driver.outstanding(), 1u);
  ASSERT_TRUE(rig.machine.policy()->Demote(dev, "test evidence").ok());

  // The next poll notices the routing change, re-homes both queue pairs onto
  // sync'd bounce slots and re-issues the command under its original CID —
  // the waiter never sees the rings move.
  auto done = rig.driver.WaitFor(*cid);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(*done, bytes);
  EXPECT_EQ(rig.driver.mode_switches(), 1u);
  EXPECT_EQ(rig.driver.service_mode(), dma::ServiceMode::kBounceSync);
  EXPECT_TRUE(pool->Owns(dev, rig.driver.io_sq_iova()));
  EXPECT_TRUE(pool->Owns(dev, rig.driver.io_cq_iova()));

  // Data integrity across the switch: the write is readable on the degraded
  // rings.
  std::vector<uint8_t> zero(bytes, 0);
  ASSERT_TRUE(rig.machine.kmem().Write(*buf, zero).ok());
  ASSERT_TRUE(rig.driver.ReadBlocks(40, 4, *buf).ok());
  std::vector<uint8_t> got(bytes);
  ASSERT_TRUE(rig.machine.kmem().Read(*buf, got).ok());
  EXPECT_EQ(got, pattern);

  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_EQ(pool->total_active(), 0u);
}

TEST(DegradedNvme, PromotionDrainsSyncRingsLeakFree) {
  core::MachineConfig mc = DegradedConfig(9003, iommu::InvalidationMode::kStrict);
  mc.forensics.enabled = true;
  NvmeRig rig(mc);
  ASSERT_TRUE(rig.driver.Init().ok());
  ASSERT_EQ(rig.driver.service_mode(), dma::ServiceMode::kBounceSync);
  dma::BouncePool* pool = rig.machine.bounce_pool();
  const DeviceId dev = rig.driver.device_id();

  // Serve some degraded traffic first, so there is ring state to drain.
  const uint64_t bytes = 2 * nvme::kLbaSize;
  auto buf = rig.machine.slab().Kmalloc(bytes, "promo_io");
  ASSERT_TRUE(buf.ok());
  ASSERT_TRUE(rig.machine.kmem().Write(*buf, Pattern(bytes, 0x77)).ok());
  ASSERT_TRUE(rig.driver.WriteBlocks(8, 2, *buf).ok());
  EXPECT_GT(pool->persistent_bounces(dev), 0u);

  // Operator allowlists the device: kUntrusted -> kProbation = direct
  // service. The next submission triggers the live switch back.
  ASSERT_TRUE(rig.machine.policy()->Promote(dev, "operator allowlist").ok());
  ASSERT_TRUE(rig.driver.ReadBlocks(8, 2, *buf).ok());
  EXPECT_EQ(rig.driver.mode_switches(), 1u);
  EXPECT_EQ(rig.driver.service_mode(), dma::ServiceMode::kZeroCopy);

  // Every sync-ring bounce was released: nothing parked, nothing leaked.
  EXPECT_EQ(pool->persistent_bounces(dev), 0u);
  EXPECT_EQ(pool->active_bounces(dev), 0u);
  EXPECT_FALSE(pool->Owns(dev, rig.driver.io_sq_iova()));

  // Forensics cross-check: the ledger saw the whole degraded phase — sync'd
  // bounce lives exist and every one of them is closed (unmap edge recorded).
  ASSERT_NE(rig.machine.flight_recorder(), nullptr);
  bool saw_bounced_life = false;
  for (const forensics::MappingLife& life :
       rig.machine.flight_recorder()->SnapshotLedger(dev)) {
    if (!life.bounced) {
      continue;
    }
    saw_bounced_life = true;
    EXPECT_NE(life.unmap_cycle, 0u)
        << "bounce life at iova 0x" << std::hex << life.iova
        << " still open after promotion";
  }
  EXPECT_TRUE(saw_bounced_life);

  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_EQ(pool->total_active(), 0u);
}

// ---- Containment: the attack battery against sync rings ------------------------

// (a) sub-page shot past the mapped buffer: on sync rings the chunk address
// is a dedicated pool slot, so the +512 write lands in bounce padding and
// the callback qword embedded next to the kernel buffer never changes.
TEST(DegradedNvmeAttackA, SubPageWriteLandsInBouncePadding) {
  NvmeRig rig(DegradedConfig(9004, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());
  dma::BouncePool* pool = rig.machine.bounce_pool();
  const DeviceId dev = rig.driver.device_id();

  // struct { char data[512]; void (*done)(void*); } — kmalloc-1024.
  auto obj = rig.machine.slab().Kmalloc(1024, "nvme_req_with_cb");
  ASSERT_TRUE(obj.ok());
  const Kva cb_slot{obj->value + 512};
  ASSERT_TRUE(rig.machine.kmem().WriteU64(cb_slot, kBenignCb).ok());

  rig.controller.set_complete_before_transfer(true);
  auto cid = rig.driver.SubmitRead(0, 1, *obj);
  ASSERT_TRUE(cid.ok());
  ASSERT_EQ(rig.controller.pending_transfers().size(), 1u);
  const nvme::PrpChunk chunk = rig.controller.pending_transfers().front().chunks[0];
  EXPECT_TRUE(pool->Owns(dev, chunk.iova));

  // The type (a) shot that corrupted the callback on the zero-copy path.
  ASSERT_TRUE(rig.controller.port()
                  .WriteU64(Iova{chunk.iova.value + 512}, 0xbad0c0de)
                  .ok());
  auto after = rig.machine.kmem().ReadU64(cb_slot);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, kBenignCb) << "sub-page write reached kernel memory";

  // Completion copy-out is bounded to the 512 mapped bytes: still intact.
  EXPECT_TRUE(rig.driver.WaitFor(*cid).ok());
  after = rig.machine.kmem().ReadU64(cb_slot);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, kBenignCb);

  rig.controller.ClearPendingTransfers();
  ASSERT_TRUE(rig.machine.slab().Kfree(*obj).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// (b) PRP-list harvest: the segments themselves are bounced, so the page
// behind a segment IOVA holds only that segment — the co-resident frag-pool
// victim is not device-visible.
TEST(DegradedNvmeAttackB, PrpSegmentHarvestFindsNoCoResidentFrags) {
  NvmeRig rig(DegradedConfig(9005, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());

  slab::PageFragPool& frags = rig.machine.frag_pool(CpuId{0});
  auto victim = frags.Alloc(128, 8, "victim_meta");
  ASSERT_TRUE(victim.ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        rig.machine.kmem().WriteU64(Kva{victim->value + 8u * i}, kSecret + i).ok());
  }

  // 24 blocks = 3 pages -> PRP2 is a list segment carved from the same pool.
  auto buf = rig.machine.slab().Kmalloc(24 * nvme::kLbaSize, "io_buf");
  ASSERT_TRUE(buf.ok());
  auto cid = rig.driver.SubmitRead(0, 24, *buf);
  ASSERT_TRUE(cid.ok());
  ASSERT_FALSE(rig.controller.prp_segments_seen().empty());
  EXPECT_TRUE(rig.machine.bounce_pool()->Owns(
      rig.driver.device_id(), rig.controller.prp_segments_seen()[0]));

  auto harvest = rig.controller.HarvestPrpQwords();
  ASSERT_TRUE(harvest.ok());
  for (uint64_t qword : *harvest) {
    EXPECT_FALSE(qword >= kSecret && qword < kSecret + 16)
        << "victim frag leaked through PRP page";
  }

  EXPECT_TRUE(rig.driver.WaitFor(*cid).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  ASSERT_TRUE(frags.Free(*victim).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// (c) multi-IOVA aliasing: two commands' PRP segments share one kernel frag
// page, but each maps to its own pool slots — the surviving alias exposes
// only its own 128 bytes, never the neighbour's.
TEST(DegradedNvmeAttackC, SurvivingAliasExposesOnlyOwnBytes) {
  NvmeRig rig(DegradedConfig(9006, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());

  slab::PageFragPool& frags = rig.machine.frag_pool(CpuId{0});
  auto victim = frags.Alloc(128, 8, "victim_meta");
  ASSERT_TRUE(victim.ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        rig.machine.kmem().WriteU64(Kva{victim->value + 8u * i}, kSecret + i).ok());
  }

  // Drop the SECOND IO completion so its segment stays mapped while the
  // first command completes and releases its slots.
  fault::FaultPlan plan;
  plan.OneShot(fault::FaultSite::kNvmeCompletionDrop, 2);
  rig.machine.fault().Arm(plan, 9006);

  auto buf1 = rig.machine.slab().Kmalloc(24 * nvme::kLbaSize, "io_buf1");
  auto buf2 = rig.machine.slab().Kmalloc(24 * nvme::kLbaSize, "io_buf2");
  ASSERT_TRUE(buf1.ok() && buf2.ok());
  auto cid1 = rig.driver.SubmitRead(0, 24, *buf1);
  auto cid2 = rig.driver.SubmitRead(24, 24, *buf2);
  ASSERT_TRUE(cid1.ok() && cid2.ok());
  ASSERT_GE(rig.controller.prp_segments_seen().size(), 2u);
  const Iova seg2 = rig.controller.prp_segments_seen()[1];

  ASSERT_TRUE(rig.driver.WaitFor(*cid1).ok());
  EXPECT_EQ(rig.driver.outstanding(), 1u);

  // The surviving alias still translates (pool block is static), but the
  // page behind it is pool memory: no frag neighbours, no victim bytes.
  auto page = rig.controller.port().ReadPageQwords(seg2);
  ASSERT_TRUE(page.ok());
  for (uint64_t qword : *page) {
    EXPECT_FALSE(qword >= kSecret && qword < kSecret + 16)
        << "frag neighbour visible through surviving alias";
  }

  // Watchdog reclaims the command whose completion was dropped.
  rig.machine.fault().Disarm();
  rig.machine.clock().Advance(SimClock::MsToCycles(6000));
  EXPECT_EQ(rig.driver.CheckTimeouts(), 1u);
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf1).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf2).ok());
  ASSERT_TRUE(frags.Free(*victim).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// (d) slab co-location exfiltration + Poisoned Completion replay: the page
// behind the data chunk is a pool page (victim slab neighbour invisible),
// and the withheld data phase replayed after completion lands in recycled
// pool slots — zero queued invalidations, kernel memory untouched.
TEST(DegradedNvmeAttackD, ExfilAndStaleReplayConfinedToPool) {
  NvmeRig rig(DegradedConfig(9007, iommu::InvalidationMode::kDeferred));
  ASSERT_TRUE(rig.driver.Init().ok());
  const DeviceId dev = rig.driver.device_id();

  auto victim = rig.machine.slab().Kmalloc(512, "victim_cred");
  auto buf = rig.machine.slab().Kmalloc(512, "io_buf");
  ASSERT_TRUE(victim.ok() && buf.ok());
  ASSERT_EQ(victim->PageBase().value, buf->PageBase().value)
      << "kmalloc-512 neighbours expected on one slab page";
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        rig.machine.kmem().WriteU64(Kva{victim->value + 8u * i}, kSecret + i).ok());
  }
  const std::vector<uint8_t> payload = Pattern(512, 0x11);
  ASSERT_TRUE(rig.machine.kmem().Write(*buf, payload).ok());

  rig.controller.set_complete_before_transfer(true);
  auto cid = rig.driver.SubmitWrite(0, 1, *buf);
  ASSERT_TRUE(cid.ok());
  ASSERT_EQ(rig.controller.pending_transfers().size(), 1u);
  const nvme::PrpChunk chunk = rig.controller.pending_transfers().front().chunks[0];
  ASSERT_TRUE(rig.machine.bounce_pool()->Owns(dev, chunk.iova));

  // Page-wide read through the data chunk: only the bounce page. The copy-in
  // put the probe's own bytes there (the scan works), but the slab victim
  // sharing the kernel page never appears.
  auto page = rig.controller.port().ReadPageQwords(chunk.iova);
  ASSERT_TRUE(page.ok());
  uint64_t own_bytes_seen = 0;
  for (uint64_t qword : *page) {
    ASSERT_FALSE(qword >= kSecret && qword < kSecret + 8)
        << "slab neighbour exfiltrated through sync-mode data chunk";
    uint64_t probe_word = 0;
    std::memcpy(&probe_word, payload.data(), 8);
    if (qword == probe_word) {
      ++own_bytes_seen;
    }
  }
  EXPECT_GT(own_bytes_seen, 0u) << "copy-in missing: scan proves nothing";

  // Consume the poisoned completion; the driver releases the bounce run.
  ASSERT_TRUE(rig.driver.WaitFor(*cid).ok());
  const uint64_t pending_before = rig.machine.iommu().pending_invalidation_count();

  // The stale replay: the firmware performs the data phase it withheld. The
  // pool's static block still translates, so it "lands" — in a recycled pool
  // slot. No deferred-invalidation window exists (nothing was queued) and
  // the kernel buffer keeps its bytes.
  ASSERT_TRUE(rig.controller.ReplayPendingTransfer().ok());
  EXPECT_EQ(rig.machine.iommu().pending_invalidation_count(), pending_before);
  std::vector<uint8_t> after(512);
  ASSERT_TRUE(rig.machine.kmem().Read(*buf, after).ok());
  EXPECT_EQ(after, payload) << "stale replay reached the kernel buffer";
  std::vector<uint8_t> neighbour(8);
  ASSERT_TRUE(rig.machine.kmem().Read(*victim, neighbour).ok());
  uint64_t neighbour_word = 0;
  std::memcpy(&neighbour_word, neighbour.data(), 8);
  EXPECT_EQ(neighbour_word, kSecret);

  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*victim).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// ---- NIC: sync-mode RX -----------------------------------------------------------

TEST(DegradedNic, UntrustedNicServesCopybreakRx) {
  net::NicDriver::Config nc;
  nc.name = "nic0";
  nc.rx_ring_size = 16;
  NicRig rig(DegradedConfig(9008, iommu::InvalidationMode::kStrict), nc);
  ASSERT_TRUE(rig.driver.FillRxRing().ok());

  // Sync mode clamps the ring: only sync_ring_limit slots are armed, every
  // one a persistent bounce slot.
  ASSERT_GT(rig.device.rx_posted().size(), 0u);
  EXPECT_LE(rig.device.rx_posted().size(), nc.sync_ring_limit);
  const size_t armed = rig.device.rx_posted().size();
  EXPECT_TRUE(rig.machine.bounce_pool()->Owns(
      rig.driver.device_id(), rig.device.rx_posted().front().iova));

  net::PacketHeader header{.src_ip = 0x0a000002,
                           .dst_ip = 0x0a000001,
                           .src_port = 9999,
                           .dst_port = 7,
                           .proto = net::kProtoUdp};
  const std::vector<uint8_t> payload(96, 0x5c);
  auto index = rig.device.InjectRx(header, payload);
  ASSERT_TRUE(index.ok());
  auto skb = rig.driver.CompleteRx(
      *index, static_cast<uint32_t>(net::PacketHeader::kSize + payload.size()));
  ASSERT_TRUE(skb.ok());
  ASSERT_NE(*skb, nullptr);

  // Copybreak delivered the bytes into a fresh kernel buffer.
  std::vector<uint8_t> got(payload.size());
  ASSERT_TRUE(rig.machine.kmem()
                  .Read(Kva{(*skb)->data.value + net::PacketHeader::kSize}, got)
                  .ok());
  EXPECT_EQ(got, payload);
  EXPECT_EQ(rig.driver.rx_sync_frames(), 1u);
  // The slot was scrubbed and re-armed in place: the ring did not shrink.
  EXPECT_EQ(rig.device.rx_posted().size(), armed);

  skb->reset();
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_EQ(rig.machine.bounce_pool()->total_active(), 0u);
}

TEST(DegradedNic, MidTrafficDemotionShrinksRingToSyncSlots) {
  net::NicDriver::Config nc;
  nc.name = "nic0";
  nc.rx_ring_size = 16;
  NicRig rig(TrustedConfig(9009, iommu::InvalidationMode::kStrict), nc);
  ASSERT_TRUE(rig.driver.FillRxRing().ok());
  ASSERT_EQ(rig.device.rx_posted().size(), 16u);

  ASSERT_TRUE(
      rig.machine.policy()->Demote(rig.driver.device_id(), "test evidence").ok());

  // Keep serving: each completion retires a direct slot; refills land on
  // persistent sync slots below the clamp, indices above shrink away. The
  // device keeps getting packets through the whole transition.
  uint64_t delivered = 0;
  for (int i = 0; i < 32 && !rig.device.rx_posted().empty(); ++i) {
    net::PacketHeader header{.src_ip = 0x0a000002,
                             .dst_ip = 0x0a000001,
                             .src_port = static_cast<uint16_t>(20000 + i),
                             .dst_port = 7,
                             .proto = net::kProtoUdp};
    const std::vector<uint8_t> payload(64, static_cast<uint8_t>(i));
    auto index = rig.device.InjectRx(header, payload);
    if (!index.ok()) {
      continue;
    }
    auto skb = rig.driver.CompleteRx(
        *index, static_cast<uint32_t>(net::PacketHeader::kSize + payload.size()));
    if (skb.ok() && *skb != nullptr) {
      ++delivered;
      skb->reset();
    }
  }

  // Availability stayed above zero and the tail of the run served from sync
  // slots on the shrunken ring.
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(rig.driver.rx_sync_frames(), 0u);
  EXPECT_LE(rig.device.rx_posted().size(), nc.sync_ring_limit);
  EXPECT_GT(rig.device.rx_posted().size(), 0u);

  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_EQ(rig.machine.bounce_pool()->total_active(), 0u);
}

// ---- Soak: the degraded drill under full chaos -----------------------------------

// Mid-run, the trust engine demotes the serving NIC and NVMe controller; the
// rest of the soak (faults, storms, hostile replays, quarantine drills) runs
// against sync bounce rings. Availability must stay above the floor and the
// report must stay byte-deterministic.
TEST(DegradedSoak, MidRunDemotionKeepsServiceAboveFloor) {
  soak::SoakConfig config;
  config.seed = 4242;
  config.target_cycles = 400'000;
  config.policy = true;
  config.degraded_drill = true;
  config.degraded_floor = 0.05;
  const soak::SoakReport report = soak::RunSoak(config);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_GT(report.degraded_probes, 0u);
  EXPECT_GT(report.degraded_ok, 0u);
  EXPECT_GE(report.availability_degraded, config.degraded_floor);
  // The demoted drivers really run the degraded protocol, and the posture
  // document the run ends on says so.
  EXPECT_NE(report.posture_json.find("\"bounce_sync\""), std::string::npos)
      << report.posture_json;
  // Byte-identical for the same seed, degraded fields included.
  const soak::SoakReport again = soak::RunSoak(config);
  EXPECT_EQ(report.ToJson(), again.ToJson());
}

TEST(DegradedSoak, HostileHotplugStormsDuringDegradedPhaseStayContained) {
  soak::SoakConfig config;
  config.seed = 777;
  // Long enough for several hotplug_interval-epoch storm cadences to land
  // inside the degraded phase (one epoch is ~40k cycles of idle advance).
  config.target_cycles = 2'000'000;
  config.policy = true;
  config.hostile_hotplug = true;
  config.degraded_drill = true;
  config.degraded_floor = 0.02;
  const soak::SoakReport report = soak::RunSoak(config);
  EXPECT_TRUE(report.ok) << report.failure;
  // The storms ran their sub-page probes against the pool and found nothing,
  // while the demoted residents kept serving through the same pool.
  EXPECT_GT(report.policy.hotplug_attaches, 0u);
  EXPECT_EQ(report.policy.secret_leaks, 0u);
  EXPECT_EQ(report.policy.neighbour_corruptions, 0u);
  EXPECT_GT(report.degraded_probes, 0u);
  EXPECT_GT(report.degraded_ok, 0u);
}

// A run without the drill keeps the degraded fields at their identity
// values: the new JSON fields never perturb existing baselines' meaning.
TEST(DegradedSoak, NoDrillReportsIdentityDegradedAvailability) {
  soak::SoakConfig config;
  config.seed = 4242;
  config.target_cycles = 200'000;
  config.policy = true;
  const soak::SoakReport report = soak::RunSoak(config);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.degraded_probes, 0u);
  EXPECT_EQ(report.degraded_ok, 0u);
  EXPECT_EQ(report.availability_degraded, 1.0);
  EXPECT_NE(report.ToJson().find("\"availability_degraded\":1.000000"),
            std::string::npos);
}

}  // namespace
}  // namespace spv
