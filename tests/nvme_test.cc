// spv::nvme functional tests: queue bring-up through real admin commands,
// block IO round trips, and every PRP shape the protocol model produces —
// PRP1-only, PRP2-as-page, PRP2-as-list, chained list segments, zero-length
// and max-transfer edges — plus the driver's completion plausibility checks,
// the watchdog reset path, and the sub-page frag co-location surface under
// both invalidation modes.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <span>
#include <vector>

#include "core/machine.h"
#include "device/device_port.h"
#include "nvme/malicious_nvme.h"
#include "nvme/nvme_controller.h"
#include "nvme/nvme_defs.h"
#include "nvme/nvme_driver.h"
#include "trace/window_tracker.h"

namespace spv::nvme {
namespace {

core::MachineConfig BaseConfig(uint64_t seed,
                               iommu::InvalidationMode mode =
                                   iommu::InvalidationMode::kStrict) {
  core::MachineConfig config;
  config.phys_pages = 4096;
  config.seed = seed;
  config.iommu.mode = mode;
  return config;
}

// Victim machine + driver + controller, parameterized on the controller type
// so the same rig serves honest and malicious devices.
template <typename Controller>
struct RigT {
  explicit RigT(core::MachineConfig machine_config,
                NvmeDriver::Config driver_config = NvmeDriver::Config{},
                NvmeController::Config controller_config =
                    NvmeController::Config{})
      : machine(machine_config),
        driver(machine.AddNvmeDriver(driver_config)),
        controller(device::DevicePort{machine.iommu(), driver.device_id()},
                   controller_config) {
    controller.set_fault_engine(&machine.fault());
    controller.set_tracer(machine.tracer());
    driver.AttachDevice(&controller);
  }

  core::Machine machine;
  NvmeDriver& driver;
  Controller controller;
};

using Rig = RigT<NvmeController>;
using EvilRig = RigT<MaliciousNvme>;

std::vector<uint8_t> Pattern(uint64_t bytes, uint8_t salt) {
  std::vector<uint8_t> data(bytes);
  for (uint64_t i = 0; i < bytes; ++i) {
    data[i] = static_cast<uint8_t>(salt + i * 7);
  }
  return data;
}

// Writes `pattern` to `slba` through the driver, zeroes the buffer, reads it
// back, and returns the read-back bytes.
Result<std::vector<uint8_t>> RoundTrip(Rig& rig, uint64_t slba,
                                       uint16_t nblocks,
                                       const std::vector<uint8_t>& pattern) {
  const uint64_t bytes = static_cast<uint64_t>(nblocks) * kLbaSize;
  Result<Kva> buf = rig.machine.slab().Kmalloc(bytes, "nvme_rt");
  if (!buf.ok()) {
    return buf.status();
  }
  SPV_RETURN_IF_ERROR(rig.machine.kmem().Write(*buf, pattern));
  SPV_RETURN_IF_ERROR(rig.driver.WriteBlocks(slba, nblocks, *buf).status());
  const std::vector<uint8_t> zero(bytes, 0);
  SPV_RETURN_IF_ERROR(rig.machine.kmem().Write(*buf, zero));
  SPV_RETURN_IF_ERROR(rig.driver.ReadBlocks(slba, nblocks, *buf).status());
  std::vector<uint8_t> got(bytes);
  SPV_RETURN_IF_ERROR(rig.machine.kmem().Read(*buf, got));
  SPV_RETURN_IF_ERROR(rig.machine.slab().Kfree(*buf));
  return got;
}

// ---- Bring-up -----------------------------------------------------------------

TEST(NvmeInitTest, BringsUpQueuesThroughAdminCommands) {
  Rig rig{BaseConfig(1)};
  ASSERT_TRUE(rig.driver.Init().ok());
  EXPECT_TRUE(rig.driver.io_queue_live());
  // Identify reported the media geometry.
  EXPECT_EQ(rig.driver.capacity_blocks(), rig.controller.capacity_blocks());
  // Identify + CreateCq + CreateSq were all FETCHED from host memory by DMA.
  EXPECT_GE(rig.controller.stats().sqes_fetched, 3u);
  EXPECT_EQ(rig.controller.stats().fetch_errors, 0u);
  ASSERT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

TEST(NvmeInitTest, InitWithoutDeviceFailsCleanly) {
  core::Machine machine{BaseConfig(2)};
  NvmeDriver& driver = machine.AddNvmeDriver(NvmeDriver::Config{});
  EXPECT_EQ(driver.Init().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(driver.io_queue_live());
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

// ---- PRP shapes ----------------------------------------------------------------

class NvmePrpTest : public ::testing::Test {
 protected:
  NvmePrpTest() : rig_(BaseConfig(3)) { EXPECT_TRUE(rig_.driver.Init().ok()); }

  void TearDown() override {
    EXPECT_TRUE(rig_.driver.Shutdown().ok());
    EXPECT_EQ(rig_.machine.dma().live_mappings(), 0u);
    EXPECT_EQ(rig_.machine.frag_pool(CpuId{0}).live_frags(), 0u);
    Status invariants = rig_.machine.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.message();
  }

  Rig rig_;
};

TEST_F(NvmePrpTest, SingleBlockUsesPrp1Only) {
  const auto pattern = Pattern(kLbaSize, 0x11);
  auto got = RoundTrip(rig_, 7, 1, pattern);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, pattern);
  EXPECT_EQ(rig_.driver.prp_segments_built(), 0u);
  EXPECT_TRUE(rig_.controller.prp_segments_seen().empty());
  // Oracle: the media really holds the data (the CQE was not just friendly).
  auto media = rig_.controller.PeekMedia(7, 1);
  ASSERT_TRUE(media.ok());
  EXPECT_EQ(*media, pattern);
}

TEST_F(NvmePrpTest, TwoPageTransferUsesPrp2AsPage) {
  // 16 blocks = 8 KiB = exactly two pages from a page-backed kmalloc: the
  // second page travels directly in PRP2, no list.
  const auto pattern = Pattern(16 * kLbaSize, 0x22);
  auto got = RoundTrip(rig_, 16, 16, pattern);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, pattern);
  EXPECT_EQ(rig_.driver.prp_segments_built(), 0u);
  EXPECT_TRUE(rig_.controller.prp_segments_seen().empty());
}

TEST_F(NvmePrpTest, ThreePageTransferBuildsPrpList) {
  // 24 blocks = 12 KiB = three pages: two extra data pointers, one segment.
  const auto pattern = Pattern(24 * kLbaSize, 0x33);
  auto got = RoundTrip(rig_, 64, 24, pattern);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, pattern);
  // Write + read built one segment each; the controller walked both.
  EXPECT_EQ(rig_.driver.prp_segments_built(), 2u);
  EXPECT_EQ(rig_.controller.prp_segments_seen().size(), 2u);
  EXPECT_GE(rig_.controller.stats().prp_segments_walked, 2u);
}

TEST_F(NvmePrpTest, LargeTransferChainsListSegments) {
  // 144 blocks = 72 KiB = 18 pages: 17 extra data pointers overflow one
  // 16-entry segment (15 data + chain), so the list chains into a second.
  const auto pattern = Pattern(144 * kLbaSize, 0x44);
  auto got = RoundTrip(rig_, 256, 144, pattern);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, pattern);
  EXPECT_EQ(rig_.driver.prp_segments_built(), 4u);  // 2 per direction
  EXPECT_EQ(rig_.controller.prp_segments_seen().size(), 4u);
}

TEST_F(NvmePrpTest, MaxTransferBoundary) {
  // MDTS analogue: 256 blocks goes through, 257 is rejected client-side.
  const auto pattern = Pattern(256 * kLbaSize, 0x55);
  auto got = RoundTrip(rig_, 512, 256, pattern);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, pattern);

  auto buf = rig_.machine.slab().Kmalloc(257 * kLbaSize, "nvme_overmax");
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(rig_.driver.WriteBlocks(0, 257, *buf).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(rig_.machine.slab().Kfree(*buf).ok());
}

TEST_F(NvmePrpTest, ZeroLengthTransferRejected) {
  auto buf = rig_.machine.slab().Kmalloc(kLbaSize, "nvme_zero");
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(rig_.driver.WriteBlocks(0, 0, *buf).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rig_.driver.SubmitRead(0, 0, *buf).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(rig_.machine.slab().Kfree(*buf).ok());
  EXPECT_EQ(rig_.driver.outstanding(), 0u);
}

TEST_F(NvmePrpTest, CapacityBoundsEnforced) {
  auto buf = rig_.machine.slab().Kmalloc(2 * kLbaSize, "nvme_oob");
  ASSERT_TRUE(buf.ok());
  const uint64_t last = rig_.driver.capacity_blocks() - 1;
  EXPECT_FALSE(rig_.driver.WriteBlocks(last, 2, *buf).ok());
  EXPECT_FALSE(rig_.driver.ReadBlocks(rig_.driver.capacity_blocks(), 1, *buf).ok());
  ASSERT_TRUE(rig_.machine.slab().Kfree(*buf).ok());
}

// ---- Sub-page PRP segment placement (the co-location surface) -------------------

TEST(NvmePrpPlacementTest, FragSegmentsShareAPageUnderDistinctIovas) {
  // Default config: PRP-list segments are 128-byte page_frag carves. Two
  // in-flight commands place their segments on the same frag page, each
  // mapped under its own IOVA — the paper's type (c) aliasing, storage side.
  Rig rig{BaseConfig(4)};
  ASSERT_TRUE(rig.driver.Init().ok());

  auto buf1 = rig.machine.slab().Kmalloc(24 * kLbaSize, "nvme_aliased1");
  auto buf2 = rig.machine.slab().Kmalloc(24 * kLbaSize, "nvme_aliased2");
  ASSERT_TRUE(buf1.ok() && buf2.ok());
  auto cid1 = rig.driver.SubmitRead(0, 24, *buf1);
  auto cid2 = rig.driver.SubmitRead(24, 24, *buf2);
  ASSERT_TRUE(cid1.ok() && cid2.ok());

  ASSERT_EQ(rig.controller.prp_segments_seen().size(), 2u);
  const Iova seg1 = rig.controller.prp_segments_seen()[0];
  const Iova seg2 = rig.controller.prp_segments_seen()[1];
  EXPECT_NE(seg1.PageBase().value, seg2.PageBase().value)
      << "distinct IOVA pages per mapping";
  // Sub-page carves: at least one segment sits off the page start.
  EXPECT_TRUE(seg1.page_offset() != 0 || seg2.page_offset() != 0);
  // ...yet both translate to the same physical frag page.
  auto m1 = rig.machine.dma().FindMapping(rig.driver.device_id(), seg1);
  auto m2 = rig.machine.dma().FindMapping(rig.driver.device_id(), seg2);
  ASSERT_TRUE(m1.has_value() && m2.has_value());
  EXPECT_EQ(m1->kva.PageBase().value, m2->kva.PageBase().value);

  ASSERT_TRUE(rig.driver.WaitFor(*cid1).ok());
  ASSERT_TRUE(rig.driver.WaitFor(*cid2).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf1).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf2).ok());
  ASSERT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.frag_pool(CpuId{0}).live_frags(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

TEST(NvmePrpPlacementTest, KmallocSegmentsArePageExclusive) {
  // prp_lists_from_frags=false: each segment owns a whole kmalloc page, the
  // safe layout the paper recommends for DMA metadata.
  NvmeDriver::Config driver_config;
  driver_config.prp_lists_from_frags = false;
  Rig rig{BaseConfig(5), driver_config};
  ASSERT_TRUE(rig.driver.Init().ok());

  const auto pattern = Pattern(24 * kLbaSize, 0x66);
  auto got = RoundTrip(rig, 0, 24, pattern);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, pattern);
  for (const Iova seg : rig.controller.prp_segments_seen()) {
    EXPECT_EQ(seg.page_offset(), 0u) << "kmalloc segments start page-aligned";
  }
  ASSERT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// Sub-page co-location of device-writable data buffers opens kSubPage windows
// in both invalidation modes; stale-IOTLB windows only exist under deferred.
TEST(NvmeWindowTest, SubPageAndStaleWindowsUnderBothModes) {
  for (const iommu::InvalidationMode mode :
       {iommu::InvalidationMode::kStrict, iommu::InvalidationMode::kDeferred}) {
    core::MachineConfig config = BaseConfig(6, mode);
    config.telemetry.enabled = true;
    config.trace.enabled = true;  // Machine wires the WindowTracker sink
    Rig rig{config};
    ASSERT_TRUE(rig.driver.Init().ok());

    // A 512-byte read: the data mapping is device-writable and fills 1/8 of
    // its page — a sub-page window over the co-resident slab bytes.
    const auto pattern = Pattern(kLbaSize, 0x77);
    auto got = RoundTrip(rig, 3, 1, pattern);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(rig.driver.Shutdown().ok());
    rig.machine.iommu().FlushNow();

    trace::WindowTracker* windows = rig.machine.windows();
    ASSERT_NE(windows, nullptr);
    uint64_t subpage = 0;
    uint64_t stale = 0;
    for (const trace::Window& window : windows->windows()) {
      if (window.kind == trace::WindowKind::kSubPage &&
          window.exposed_bytes >= kPageSize - kLbaSize) {
        ++subpage;
      }
      if (window.kind == trace::WindowKind::kStaleIotlb && window.duration() > 0) {
        ++stale;
      }
    }
    EXPECT_GE(subpage, 1u) << "mode " << static_cast<int>(mode);
    if (mode == iommu::InvalidationMode::kDeferred) {
      EXPECT_GE(stale, 1u) << "deferred unmaps must leave measurable windows";
      EXPECT_GT(windows->stale_open_summary().max, 0u);
    }
    EXPECT_TRUE(rig.machine.CheckInvariants().ok());
  }
}

// ---- Completion plausibility and the watchdog ----------------------------------

TEST(NvmeCompletionTest, ForgedUnknownCidIsRejected) {
  EvilRig rig{BaseConfig(7)};
  ASSERT_TRUE(rig.driver.Init().ok());
  // A CQE for a CID that was never issued: correct phase, correct slot —
  // only the outstanding-command table catches it.
  ASSERT_TRUE(
      rig.controller.ForgePoisonedCompletion(kIoQid, 0x7777, kScSuccess, 512).ok());
  EXPECT_EQ(rig.driver.PollCompletions(), 0u);
  EXPECT_EQ(rig.driver.completion_errors(), 1u);
  ASSERT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

TEST(NvmeCompletionTest, ShortTransferDemotedByDw0Check) {
  core::MachineConfig config = BaseConfig(8);
  config.fault_plan.OneShot(fault::FaultSite::kNvmeShortTransfer, 1);
  Rig rig{config};
  ASSERT_TRUE(rig.driver.Init().ok());
  auto buf = rig.machine.slab().Kmalloc(16 * kLbaSize, "nvme_short");
  ASSERT_TRUE(buf.ok());
  // The device stops half way but reports success; the driver's DW0
  // plausibility check demotes the CQE to a data-transfer error.
  auto result = rig.driver.WriteBlocks(0, 16, *buf);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(rig.driver.io_errors(), 1u);
  EXPECT_EQ(rig.driver.completion_errors(), 1u);
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  ASSERT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

TEST(NvmeCompletionTest, WatchdogResetsQueueAfterLostCompletion) {
  core::MachineConfig config = BaseConfig(9);
  // Bring-up posts three admin CQEs (Identify, CreateCq, CreateSq); arm 4 is
  // the first IO completion.
  config.fault_plan.OneShot(fault::FaultSite::kNvmeCompletionDrop, 4);
  NvmeDriver::Config driver_config;
  driver_config.completion_timeout_cycles = SimClock::MsToCycles(5);
  driver_config.poll_deadline_cycles = SimClock::UsToCycles(100);
  Rig rig{config, driver_config};
  ASSERT_TRUE(rig.driver.Init().ok());

  auto buf = rig.machine.slab().Kmalloc(kLbaSize, "nvme_lost");
  ASSERT_TRUE(buf.ok());
  // The CQE never lands: the bounded wait gives up...
  EXPECT_EQ(rig.driver.WriteBlocks(0, 1, *buf).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(rig.driver.outstanding(), 1u);
  EXPECT_GE(rig.driver.poll_deadline_hits(), 1u);
  // ...and the watchdog fails the command and rebuilds the IO queue.
  rig.machine.clock().Advance(SimClock::MsToCycles(6));
  EXPECT_EQ(rig.driver.CheckTimeouts(), 1u);
  EXPECT_EQ(rig.driver.queue_resets(), 1u);
  EXPECT_EQ(rig.driver.outstanding(), 0u);
  EXPECT_TRUE(rig.driver.io_queue_live());

  // The reset queue carries traffic again.
  const auto pattern = Pattern(kLbaSize, 0x88);
  ASSERT_TRUE(rig.machine.kmem().Write(*buf, pattern).ok());
  EXPECT_TRUE(rig.driver.WriteBlocks(1, 1, *buf).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  ASSERT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

TEST(NvmeShutdownTest, ShutdownWithCommandsInFlightIsLeakFree) {
  EvilRig rig{BaseConfig(10)};
  ASSERT_TRUE(rig.driver.Init().ok());
  // Park data phases so the commands stay outstanding from the driver's
  // point of view... then never complete them.
  rig.controller.set_complete_before_transfer(false);
  auto buf = rig.machine.slab().Kmalloc(24 * kLbaSize, "nvme_inflight");
  ASSERT_TRUE(buf.ok());
  // Drop the completion so the command stays outstanding.
  fault::FaultPlan plan;
  plan.OneShot(fault::FaultSite::kNvmeCompletionDrop, 1);
  rig.machine.fault().Arm(plan, 99);
  auto cid = rig.driver.SubmitRead(0, 24, *buf);
  ASSERT_TRUE(cid.ok());
  EXPECT_EQ(rig.driver.outstanding(), 1u);

  // Shutdown without device cooperation: everything unmapped and freed.
  ASSERT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_EQ(rig.driver.outstanding(), 0u);
  EXPECT_EQ(rig.machine.dma().live_mappings(), 0u);
  EXPECT_EQ(rig.machine.frag_pool(CpuId{0}).live_frags(), 0u);
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

// ---- Supervised re-attach -------------------------------------------------------

TEST(NvmeRecoveryTest, ResumeRebuildsAfterQuarantine) {
  core::MachineConfig config = BaseConfig(11);
  config.recovery.enabled = true;
  Rig rig{config};
  ASSERT_TRUE(rig.driver.Init().ok());

  ASSERT_TRUE(rig.machine.recovery()
                  .Quarantine(rig.driver.device_id(), "nvme drill")
                  .ok());
  // Fenced: the device cannot fetch, the driver cannot map.
  auto buf = rig.machine.slab().Kmalloc(kLbaSize, "nvme_fenced");
  ASSERT_TRUE(buf.ok());
  EXPECT_FALSE(rig.driver.WriteBlocks(0, 1, *buf).ok());

  // Supervised re-attach runs the driver's Resume() -> full re-init.
  rig.machine.clock().Advance(SimClock::MsToCycles(50));
  for (int i = 0; i < 10 && !rig.driver.io_queue_live(); ++i) {
    (void)rig.machine.recovery().Poll();
    rig.machine.clock().Advance(SimClock::MsToCycles(20));
  }
  ASSERT_TRUE(rig.driver.io_queue_live()) << "re-attach must resume the driver";
  EXPECT_TRUE(rig.driver.WriteBlocks(0, 1, *buf).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  ASSERT_TRUE(rig.driver.Shutdown().ok());
  EXPECT_TRUE(rig.machine.CheckInvariants().ok());
}

}  // namespace
}  // namespace spv::nvme
