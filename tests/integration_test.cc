// Cross-module integration tests: the detection tools against the live
// simulator (static findings confirmed dynamically, and the type (d) blind
// spot D-KASAN exists to cover), boot determinism, GRO multi-flow behaviour,
// and IOTLB statistics sanity.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/machine.h"
#include "device/device_port.h"
#include "dkasan/dkasan.h"
#include "net/gro.h"
#include "spade/analyzer.h"
#include "spade/corpus.h"
#include "test_device.h"

namespace spv {
namespace {

using spv::testing::TestNicDevice;

// ---- SPADE finding confirmed live ---------------------------------------------------

TEST(ToolValidationTest, SpadeTypeAFindingReproducesInSimulator) {
  // SPADE statically flags nvme_fc's &op->rsp_iu mapping as exposing the op
  // struct's callback. Construct the equivalent situation in the simulator
  // and verify the callback really is device-writable.
  spade::SpadeAnalyzer analyzer;
  auto stats = spade::LoadCorpusDirectory(analyzer, spade::DefaultCorpusDir());
  ASSERT_TRUE(stats.ok());
  auto findings = analyzer.Analyze();
  ASSERT_TRUE(findings.ok());
  const spade::SiteFinding* nvme = nullptr;
  for (const auto& finding : *findings) {
    if (finding.file == "nvme_fc.c" && finding.callbacks_exposed) {
      nvme = &finding;
      break;
    }
  }
  ASSERT_NE(nvme, nullptr);
  const spade::StructLayout* layout = analyzer.layout_db().Find(nvme->exposed_struct);
  ASSERT_NE(layout, nullptr);

  // Find the rsp_iu and done-callback offsets from the layout DB (pahole).
  uint64_t rsp_iu_off = 0;
  bool found_rsp = false;
  for (const auto& field : layout->fields) {
    if (field.name == "rsp_iu") {
      rsp_iu_off = field.offset;
      found_rsp = true;
    }
  }
  ASSERT_TRUE(found_rsp);
  const spade::StructLayout* req = analyzer.layout_db().Find("nvmefc_fcp_req");
  ASSERT_NE(req, nullptr);
  uint64_t done_off = 0;
  for (const auto& field : req->fields) {
    if (field.name == "done") {
      done_off = field.offset;  // fcp_req is at offset 0 of the op struct
    }
  }
  ASSERT_GT(done_off, 0u);

  // Live machine: allocate the "op struct", map only its rsp_iu, and let the
  // device overwrite the done callback — the exact type (a) exploit.
  core::MachineConfig config;
  config.seed = 3030;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  device::DevicePort port{machine.iommu(), dev};
  Kva op = *machine.slab().Kmalloc(layout->size, "nvme_fc_fcp_op");
  auto iova = machine.dma().MapSingle(dev, op + rsp_iu_off, 96,
                                      dma::DmaDirection::kFromDevice, "nvme_fc_map_op");
  ASSERT_TRUE(iova.ok());
  const int64_t delta = static_cast<int64_t>(done_off) - static_cast<int64_t>(rsp_iu_off);
  std::vector<uint8_t> poison(8, 0x66);
  ASSERT_TRUE(port.Write(Iova{static_cast<uint64_t>(
                             static_cast<int64_t>(iova->value) + delta)},
                         poison)
                  .ok())
      << "SPADE flagged it; the simulator must expose it";
  EXPECT_EQ(*machine.kmem().ReadU64(op + done_off), 0x6666666666666666ULL);
}

TEST(ToolValidationTest, DkasanCoversSpadesTypeDBlindSpot) {
  // §4.2: kmalloc co-location is invisible to static analysis — SPADE sees a
  // clean heap mapping, D-KASAN reports the exposure at run time.
  auto findings = [] {
    spade::SpadeAnalyzer analyzer;
    auto stats = spade::LoadCorpusDirectory(analyzer, spade::DefaultCorpusDir());
    EXPECT_TRUE(stats.ok());
    auto result = analyzer.Analyze();
    EXPECT_TRUE(result.ok());
    return std::move(*result);
  }();
  // SPADE: the clean_nvme_pci sites carry no static flags.
  for (const auto& finding : findings) {
    if (finding.file == "clean_nvme_pci.c") {
      EXPECT_FALSE(finding.callbacks_exposed);
      EXPECT_FALSE(finding.shared_info_mapped);
      EXPECT_FALSE(finding.unresolved);
    }
  }

  // D-KASAN: the same pattern at run time (kmalloc buffer mapped, another
  // object on its page) is reported.
  core::MachineConfig config;
  config.seed = 3131;
  core::Machine machine{config};
  dkasan::DKasan dkasan{machine.layout()};
  dkasan.Attach(machine.slab());
  dkasan.Attach(machine.dma());
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva prp_list = *machine.slab().Kmalloc(1024, "nvme_pci_setup_prps");
  Kva inode = *machine.slab().Kmalloc(1024, "sock_alloc_inode+0x4f/0x120");
  (void)inode;
  auto iova = machine.dma().MapSingle(dev, prp_list, 1024, dma::DmaDirection::kToDevice,
                                      "nvme_pci_map");
  ASSERT_TRUE(iova.ok());
  EXPECT_GE(dkasan.count(dkasan::ReportKind::kMapAfterAlloc), 1u);
}

// ---- Boot determinism across the whole machine ---------------------------------------

TEST(DeterminismTest, IdenticalSeedsYieldIdenticalMachines) {
  auto run = [](uint64_t seed) {
    core::MachineConfig config;
    config.seed = seed;
    core::Machine machine{config};
    std::vector<uint64_t> observations;
    observations.push_back(machine.layout().text_base());
    observations.push_back(machine.layout().page_offset_base());
    auto& pool = machine.frag_pool(CpuId{0});
    for (int i = 0; i < 32; ++i) {
      observations.push_back(machine.slab().Kmalloc(512 + i * 8, "det")->value);
      observations.push_back(pool.Alloc(1024, 64, "det")->value);
    }
    return observations;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// ---- GRO multi-flow isolation ----------------------------------------------------------

class GroFlowFixture : public ::testing::Test {
 protected:
  GroFlowFixture() : machine_(MakeConfig()) {
    net::NicDriver::Config config;
    config.rx_ring_size = 64;
    config.rx_buf_len = 1728;
    nic_ = &machine_.AddNicDriver(config);
    device_ = std::make_unique<TestNicDevice>(nic_->device_id(), machine_.iommu());
    nic_->AttachDevice(device_.get());
    EXPECT_TRUE(nic_->FillRxRing().ok());
  }

  static core::MachineConfig MakeConfig() {
    core::MachineConfig config;
    config.seed = 808;
    return config;
  }

  net::SkBuffPtr Rx(uint16_t src_port, uint8_t fill) {
    net::PacketHeader header{.src_ip = 9, .dst_ip = 10, .src_port = src_port,
                             .dst_port = 443, .proto = net::kProtoTcp};
    std::vector<uint8_t> payload(100, fill);
    auto index = device_->InjectRx(machine_.kmem(), header, payload);
    EXPECT_TRUE(index.ok());
    auto skb = nic_->CompleteRx(*index, net::PacketHeader::kSize + 100);
    EXPECT_TRUE(skb.ok());
    return std::move(*skb);
  }

  void TearDown() override {
    Status invariants = machine_.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.message();
  }

  core::Machine machine_;
  net::NicDriver* nic_ = nullptr;
  std::unique_ptr<TestNicDevice> device_;
};

TEST_F(GroFlowFixture, ConcurrentFlowsStaySeparate) {
  net::GroEngine gro{machine_.kmem(), machine_.skb_alloc()};
  // Interleave two flows; each must aggregate independently.
  for (int round = 0; round < 3; ++round) {
    for (uint16_t port : {uint16_t{1000}, uint16_t{2000}}) {
      auto out = gro.Receive(Rx(port, port == 1000 ? 0x11 : 0x22));
      ASSERT_TRUE(out.ok());
      EXPECT_EQ(out->get(), nullptr);
    }
  }
  EXPECT_EQ(gro.held_flows(), 2u);
  auto flushed = gro.FlushAll();
  ASSERT_EQ(flushed.size(), 2u);
  for (auto& skb : flushed) {
    net::SharedInfoView shinfo{machine_.kmem(), skb->shared_info()};
    EXPECT_EQ(*shinfo.nr_frags(), 2);  // 3 segments: head + 2 frags
    auto payload = machine_.stack().ReadPayload(*skb);
    ASSERT_TRUE(payload.ok());
    ASSERT_EQ(payload->size(), 300u);
    // Homogeneous fill proves no cross-flow contamination.
    for (uint8_t b : *payload) {
      ASSERT_TRUE(b == 0x11 || b == 0x22);
      ASSERT_EQ(b, (*payload)[0]);
    }
    ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(skb), nullptr).ok());
  }
}

// ---- IOTLB statistics sanity -----------------------------------------------------------

TEST(IotlbStatsTest, RepeatedAccessHitsCache) {
  core::MachineConfig config;
  config.seed = 909;
  config.iommu.mode = iommu::InvalidationMode::kStrict;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(4096, "hot");
  auto iova = machine.dma().MapSingle(dev, buf, 4096, dma::DmaDirection::kBidirectional,
                                      "hot_map");
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> data(64, 1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(machine.iommu().DeviceWrite(dev, *iova, data).ok());
  }
  // First access misses (page walk), the other 99 hit.
  EXPECT_EQ(machine.iommu().iotlb().misses(), 1u);
  EXPECT_EQ(machine.iommu().iotlb().hits(), 99u);
}

}  // namespace
}  // namespace spv
