// Attack-class equivalence under bounce-buffer DMA: the paper's sub-page
// classes (a)/(d) — and frag co-residence (b) — reproduce against a trusted
// (zero-copy) device and are structurally defeated when the same device is
// untrusted, while the stale-IOTLB classes stay visible to the existing
// detectors on the direct path the bounce pool does not touch.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/machine.h"
#include "device/device_port.h"
#include "dma/bounce_pool.h"
#include "policy/policy.h"
#include "slab/page_frag.h"

namespace spv {
namespace {

constexpr uint64_t kSecret = 0x534543'52455421ull;    // "SECRET!"
constexpr uint64_t kEvil = 0xbadbadbadbadbadull;
constexpr uint64_t kLegit = 0x600dda7a600dda7aull;

core::MachineConfig AttackConfig(iommu::InvalidationMode mode) {
  core::MachineConfig config;
  config.seed = 21;
  config.iommu.mode = mode;
  config.telemetry.enabled = true;
  config.policy.enabled = true;
  return config;
}

// Registers a fresh driverless device and walks it to `trust`.
DeviceId PlugAt(core::Machine& machine, uint32_t id, policy::TrustState trust) {
  const DeviceId dev{id};
  machine.iommu().AttachDevice(dev);
  EXPECT_TRUE(machine.policy()
                  ->RegisterDevice(dev, policy::DeviceIdentity{"probe-nic", "nic"})
                  .ok());
  while (machine.policy()->state(dev) != trust) {
    EXPECT_TRUE(machine.policy()->Promote(dev, "test").ok());
  }
  return dev;
}

// Two same-class slab objects allocated back-to-back: the paper's type
// (a)/(d) co-location setup. Returns (victim, probe); asserts they share a
// page so the direct-mapping exposure is real, not hypothetical.
struct CoLocated {
  Kva victim;
  Kva probe;
};
CoLocated AllocNeighbours(core::Machine& machine, uint64_t len) {
  CoLocated pair{*machine.slab().Kmalloc(len, "victim"),
                 *machine.slab().Kmalloc(len, "probe")};
  EXPECT_EQ(pair.victim.PageBase(), pair.probe.PageBase())
      << "slab stopped co-locating; the probes below test nothing";
  return pair;
}

uint64_t ReadU64At(core::Machine& machine, Kva kva) {
  std::vector<uint8_t> bytes(8, 0);
  EXPECT_TRUE(machine.kmem().Read(kva, bytes).ok());
  uint64_t value = 0;
  std::memcpy(&value, bytes.data(), 8);
  return value;
}

void WriteU64At(core::Machine& machine, Kva kva, uint64_t value) {
  std::vector<uint8_t> bytes(8);
  std::memcpy(bytes.data(), &value, 8);
  EXPECT_TRUE(machine.kmem().Write(kva, bytes).ok());
}

// ---- Type (d): slab-neighbour exfiltration -------------------------------------

TEST(AttackEquivalence, TypeDReadLeaksDirectButNotBounced) {
  for (const policy::TrustState trust :
       {policy::TrustState::kTrusted, policy::TrustState::kUntrusted}) {
    core::Machine machine{AttackConfig(iommu::InvalidationMode::kStrict)};
    const DeviceId dev = PlugAt(machine, 40, trust);
    device::DevicePort port{machine.iommu(), dev};
    const CoLocated pair = AllocNeighbours(machine, 192);
    WriteU64At(machine, pair.victim, kSecret);

    Result<Iova> iova = machine.dma().MapSingle(
        dev, pair.probe, 192, dma::DmaDirection::kToDevice, "type_d_probe");
    ASSERT_TRUE(iova.ok());
    // The paper's read primitive: scan the whole device-visible page through
    // the probe buffer's translation.
    bool leaked = false;
    const Iova page = iova->PageBase();
    for (uint64_t off = 0; off + 8 <= kPageSize; off += 8) {
      Result<uint64_t> word = port.ReadU64(page + off);
      if (word.ok() && *word == kSecret) {
        leaked = true;
        break;
      }
    }
    if (trust == policy::TrustState::kTrusted) {
      // Zero-copy mapping covers the whole slab page: the neighbour's secret
      // is device-readable — the vulnerability the paper characterizes.
      EXPECT_TRUE(leaked);
    } else {
      // Bounce: the device sees a dedicated page holding only the probe's
      // own bytes over scrubbed zeros.
      EXPECT_FALSE(leaked);
      EXPECT_TRUE(machine.bounce_pool()->Owns(dev, *iova));
    }
    ASSERT_TRUE(
        machine.dma().UnmapSingle(dev, *iova, 192, dma::DmaDirection::kToDevice).ok());
    ASSERT_TRUE(machine.slab().Kfree(pair.probe).ok());
    ASSERT_TRUE(machine.slab().Kfree(pair.victim).ok());
    EXPECT_TRUE(machine.CheckInvariants().ok());
  }
}

// ---- Type (a): sub-page neighbour corruption -----------------------------------

TEST(AttackEquivalence, TypeAWriteCorruptsDirectButNotBounced) {
  for (const policy::TrustState trust :
       {policy::TrustState::kTrusted, policy::TrustState::kUntrusted}) {
    core::Machine machine{AttackConfig(iommu::InvalidationMode::kStrict)};
    const DeviceId dev = PlugAt(machine, 41, trust);
    device::DevicePort port{machine.iommu(), dev};
    const CoLocated pair = AllocNeighbours(machine, 192);
    WriteU64At(machine, pair.victim, kSecret);

    Result<Iova> iova = machine.dma().MapSingle(
        dev, pair.probe, 192, dma::DmaDirection::kFromDevice, "type_a_probe");
    ASSERT_TRUE(iova.ok());
    // One legit in-bounds write, then the overflow at the victim's offset
    // within the same device-visible page.
    ASSERT_TRUE(port.WriteU64(*iova, kLegit).ok());
    const Iova victim_iova = iova->PageBase() + pair.victim.page_offset();
    ASSERT_TRUE(port.WriteU64(victim_iova, kEvil).ok());
    ASSERT_TRUE(
        machine.dma().UnmapSingle(dev, *iova, 192, dma::DmaDirection::kFromDevice).ok());

    // The in-bounds write must arrive either way; the victim's fate is what
    // distinguishes the paths.
    EXPECT_EQ(ReadU64At(machine, pair.probe), kLegit);
    if (trust == policy::TrustState::kTrusted) {
      EXPECT_EQ(ReadU64At(machine, pair.victim), kEvil);  // paper type (a)
    } else {
      EXPECT_EQ(ReadU64At(machine, pair.victim), kSecret);  // copy-out clipped it
    }
    ASSERT_TRUE(machine.slab().Kfree(pair.probe).ok());
    ASSERT_TRUE(machine.slab().Kfree(pair.victim).ok());
    EXPECT_TRUE(machine.CheckInvariants().ok());
  }
}

// ---- Type (b): page_frag co-residence ------------------------------------------

TEST(AttackEquivalence, TypeBFragHarvestComesBackEmptyWhenBounced) {
  core::Machine machine{AttackConfig(iommu::InvalidationMode::kStrict)};
  const DeviceId dev = PlugAt(machine, 42, policy::TrustState::kUntrusted);
  device::DevicePort port{machine.iommu(), dev};
  slab::PageFragPool& frags = machine.frag_pool(CpuId{0});

  // Two carves off the same frag region: classic co-residence.
  Kva mine = *frags.Alloc(128, 1, "probe_frag");
  Kva theirs = *frags.Alloc(128, 1, "victim_frag");
  ASSERT_EQ(mine.PageBase(), theirs.PageBase());
  WriteU64At(machine, theirs, kSecret);

  Result<Iova> iova = machine.dma().MapSingle(dev, mine, 128,
                                              dma::DmaDirection::kToDevice, "b_probe");
  ASSERT_TRUE(iova.ok());
  bool harvested = false;
  const Iova page = iova->PageBase();
  for (uint64_t off = 0; off + 8 <= kPageSize; off += 8) {
    Result<uint64_t> word = port.ReadU64(page + off);
    if (word.ok() && *word == kSecret) {
      harvested = true;
      break;
    }
  }
  EXPECT_FALSE(harvested);
  ASSERT_TRUE(
      machine.dma().UnmapSingle(dev, *iova, 128, dma::DmaDirection::kToDevice).ok());
  ASSERT_TRUE(frags.Free(mine).ok());
  ASSERT_TRUE(frags.Free(theirs).ok());
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

// ---- Stale-IOTLB classes stay caught -------------------------------------------

TEST(AttackEquivalence, StaleIotlbStillDetectedOnDirectPath) {
  core::Machine machine{AttackConfig(iommu::InvalidationMode::kDeferred)};
  const DeviceId dev = PlugAt(machine, 43, policy::TrustState::kTrusted);
  device::DevicePort port{machine.iommu(), dev};

  Kva buf = *machine.slab().Kmalloc(512, "stale_buf");
  Result<Iova> iova = machine.dma().MapSingle(dev, buf, 512,
                                              dma::DmaDirection::kFromDevice, "stale");
  ASSERT_TRUE(iova.ok());
  ASSERT_TRUE(port.WriteU64(*iova, 1).ok());  // warms the IOTLB
  ASSERT_TRUE(
      machine.dma().UnmapSingle(dev, *iova, 512, dma::DmaDirection::kFromDevice).ok());

  // Deferred mode: the translation still works until the flush, and the
  // IOMMU's stale-access accounting flags it the moment it is used — the
  // policy engine changed nothing on the trusted path.
  const uint64_t stale_before = machine.iommu().stats().stale_iotlb_accesses.load();
  ASSERT_TRUE(port.WriteU64(*iova, kEvil).ok());
  EXPECT_GT(machine.iommu().stats().stale_iotlb_accesses.load(), stale_before);
  machine.iommu().FlushNow();
  ASSERT_TRUE(machine.slab().Kfree(buf).ok());
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

TEST(AttackEquivalence, BouncePathQueuesNoInvalidations) {
  core::Machine machine{AttackConfig(iommu::InvalidationMode::kDeferred)};
  const DeviceId dev = PlugAt(machine, 44, policy::TrustState::kUntrusted);
  device::DevicePort port{machine.iommu(), dev};

  Kva buf = *machine.slab().Kmalloc(512, "bounce_stale_buf");
  const uint64_t pending_before = machine.iommu().pending_invalidation_count();
  Result<Iova> iova = machine.dma().MapSingle(dev, buf, 512,
                                              dma::DmaDirection::kFromDevice, "stale");
  ASSERT_TRUE(iova.ok());
  ASSERT_TRUE(port.WriteU64(*iova, 1).ok());
  ASSERT_TRUE(
      machine.dma().UnmapSingle(dev, *iova, 512, dma::DmaDirection::kFromDevice).ok());

  // The pool's mappings are static: the unmap queued nothing, so there is no
  // Fig 6 window on this path — the class is eliminated, not just detected.
  EXPECT_EQ(machine.iommu().pending_invalidation_count(), pending_before);
  // And the old bounce IOVA now reads as *free pool padding*, not the freed
  // kernel buffer: a replay writes scrubbed pool memory, never the kernel's.
  ASSERT_TRUE(machine.slab().Kfree(buf).ok());
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

}  // namespace
}  // namespace spv
