// Tests for the multi-queue leg: RSS Toeplitz hashing against the published
// verification vectors, per-queue RX/TX rings and their NAPI poll budgets,
// Machine exec modes (RunOnCpus in kSequential and kThreads), quarantine
// fencing across sibling queues, and the soak harness's cross-CPU race
// scenarios (stale-IOTLB replay steered to another CPU's queue, quarantine
// racing an in-flight sibling completion).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "base/exec.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "net/nic_driver.h"
#include "net/rss.h"
#include "soak/soak.h"

namespace spv::net {
namespace {

// ---- RSS / Toeplitz --------------------------------------------------------------

// The NDIS RSS verification suite key (also the library's default key).
constexpr std::array<uint8_t, Rss::kKeyBytes> kVerificationKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

struct RssVector {
  FlowTuple tuple;
  uint32_t tcp_hash;  // hash over (src ip, dst ip, src port, dst port)
  uint32_t ip_hash;   // hash over (src ip, dst ip)
};

// The five IPv4 rows of the Microsoft RSS verification suite.
constexpr RssVector kVectors[] = {
    {{0x420995bb, 0xa18e6450, 2794, 1766}, 0x51ccc178, 0x323e8fc2},
    {{0xc75c6f02, 0x41458c53, 14230, 4739}, 0xc626b0ea, 0xd718262a},
    {{0x1813c65f, 0x0c16cfb8, 12898, 38024}, 0x5c2b394a, 0xd2d0a5de},
    {{0x261bcd1e, 0xd18ea306, 48228, 2217}, 0xafc7327f, 0x82989176},
    {{0x9927a3bf, 0xcabc7f02, 44251, 1303}, 0x10e828a2, 0x5d1809c5},
};

TEST(RssTest, ToeplitzMatchesVerificationVectors) {
  const Rss rss{4};  // default key = verification key
  for (const RssVector& v : kVectors) {
    EXPECT_EQ(rss.Hash(v.tuple), v.tcp_hash)
        << "src=" << std::hex << v.tuple.src_ip << " dst=" << v.tuple.dst_ip;
    // IPv4-only variant: the same hash over just the 8 address bytes.
    const std::array<uint8_t, 8> addrs = {
        static_cast<uint8_t>(v.tuple.src_ip >> 24),
        static_cast<uint8_t>(v.tuple.src_ip >> 16),
        static_cast<uint8_t>(v.tuple.src_ip >> 8),
        static_cast<uint8_t>(v.tuple.src_ip),
        static_cast<uint8_t>(v.tuple.dst_ip >> 24),
        static_cast<uint8_t>(v.tuple.dst_ip >> 16),
        static_cast<uint8_t>(v.tuple.dst_ip >> 8),
        static_cast<uint8_t>(v.tuple.dst_ip),
    };
    EXPECT_EQ(Rss::Toeplitz(addrs, kVerificationKey), v.ip_hash);
  }
}

TEST(RssTest, IndirectionTableSeededRoundRobin) {
  const Rss rss{4};
  EXPECT_EQ(rss.num_queues(), 4u);
  for (size_t i = 0; i < Rss::kTableSize; ++i) {
    EXPECT_EQ(rss.indirection_table()[i], i % 4);
  }
}

TEST(RssTest, SteeringCoversAndBalancesQueues) {
  const Rss rss{4};
  std::map<uint32_t, uint32_t> counts;
  for (uint16_t port = 0; port < 512; ++port) {
    const uint32_t queue =
        rss.QueueFor(FlowTuple{0x0a000002, 0x0a000001, static_cast<uint16_t>(20000 + port), 7});
    ASSERT_LT(queue, 4u);
    ++counts[queue];
  }
  // Toeplitz spreads sequential ports well; every queue takes a real share
  // (perfectly fair would be 128 each — require at least half of that).
  for (uint32_t q = 0; q < 4; ++q) {
    EXPECT_GE(counts[q], 64u) << "queue " << q;
  }
}

TEST(RssTest, SameFlowAlwaysSameQueue) {
  const Rss rss{8};
  const FlowTuple tuple{0xc0a80101, 0xc0a80102, 40000, 443};
  const uint32_t first = rss.QueueFor(tuple);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rss.QueueFor(tuple), first);
  }
}

// ---- Multi-queue driver ----------------------------------------------------------

class MqFixture : public ::testing::Test {
 protected:
  static core::MachineConfig MakeConfig(uint32_t num_cpus, ExecMode exec) {
    core::MachineConfig config;
    config.seed = 2026;
    config.exec = exec;
    config.iommu.mode = iommu::InvalidationMode::kStrict;
    config.iommu.fast_path.num_cpus = num_cpus;
    return config;
  }

  net::NicDriver& MakeDriver(core::Machine& machine, uint32_t num_queues,
                             uint32_t ring = 8, uint64_t poll_deadline_cycles = 0) {
    NicDriver::Config config;
    config.name = "mqnic";
    config.num_queues = num_queues;
    config.rx_ring_size = ring;
    if (poll_deadline_cycles != 0) {
      config.poll_deadline_cycles = poll_deadline_cycles;
    }
    NicDriver& driver = machine.AddNicDriver(config);
    device_ = std::make_unique<device::MaliciousNic>(
        device::DevicePort{machine.iommu(), driver.device_id()});
    driver.AttachDevice(device_.get());
    return driver;
  }

  std::unique_ptr<device::MaliciousNic> device_;
};

TEST_F(MqFixture, FillAllRxRingsPostsEveryQueue) {
  core::Machine machine{MakeConfig(4, ExecMode::kSequential)};
  NicDriver& driver = MakeDriver(machine, 4);
  ASSERT_TRUE(driver.FillAllRxRings().ok());
  EXPECT_EQ(driver.num_queues(), 4u);
  EXPECT_EQ(device_->rx_posted().size(), 32u);  // 4 queues x 8 slots
  // Descriptors carry their queue; each queue contributed its full ring.
  std::map<uint32_t, uint32_t> per_queue;
  for (const RxPostedDescriptor& descriptor : device_->rx_posted()) {
    ++per_queue[descriptor.queue];
  }
  for (uint32_t q = 0; q < 4; ++q) {
    EXPECT_EQ(per_queue[q], 8u) << "queue " << q;
    EXPECT_EQ(driver.queue_cpu(q).value, q);  // default spread: cpu + q
  }
  EXPECT_TRUE(driver.AuditQueues().ok());
  EXPECT_TRUE(machine.CheckInvariants().ok());
  ASSERT_TRUE(driver.Shutdown().ok());
}

TEST_F(MqFixture, RssSteeredCompletionLandsOnItsQueue) {
  core::Machine machine{MakeConfig(4, ExecMode::kSequential)};
  NicDriver& driver = MakeDriver(machine, 4);
  ASSERT_TRUE(driver.FillAllRxRings().ok());

  for (uint16_t port = 1000; port < 1016; ++port) {
    const PacketHeader header{.src_ip = 0x0a000002,
                              .dst_ip = 0x0a000001,
                              .src_port = port,
                              .dst_port = 7,
                              .proto = kProtoUdp};
    const uint32_t queue = driver.QueueForFlow(
        FlowTuple{header.src_ip, header.dst_ip, header.src_port, header.dst_port});
    std::vector<uint8_t> payload(32, 0x5a);
    const uint64_t before = driver.rx_packets(queue);
    Result<RxPostedDescriptor> descriptor = device_->InjectRxOn(queue, header, payload);
    ASSERT_TRUE(descriptor.ok());
    EXPECT_EQ(descriptor->queue, queue);
    Result<SkBuffPtr> skb = driver.CompleteRx(
        queue, descriptor->index,
        static_cast<uint32_t>(PacketHeader::kSize + payload.size()));
    ASSERT_TRUE(skb.ok());
    ASSERT_NE(*skb, nullptr);
    EXPECT_EQ((*skb)->header.src_port, port);
    EXPECT_EQ(driver.rx_packets(queue), before + 1);
    ASSERT_TRUE(machine.skb_alloc().FreeSkb(std::move(*skb), nullptr).ok());
  }
  // Aggregate accessor sums what the per-queue counters recorded.
  uint64_t total = 0;
  for (uint32_t q = 0; q < 4; ++q) {
    total += driver.rx_packets(q);
  }
  EXPECT_EQ(driver.rx_packets(), total);
  EXPECT_EQ(driver.rx_packets(), 16u);
  EXPECT_TRUE(machine.CheckInvariants().ok());
  ASSERT_TRUE(driver.Shutdown().ok());
}

TEST_F(MqFixture, LegacySingleQueueApiDelegatesToQueueZero) {
  core::Machine machine{MakeConfig(1, ExecMode::kSequential)};
  NicDriver& driver = MakeDriver(machine, 1);
  ASSERT_TRUE(driver.FillRxRing().ok());
  EXPECT_EQ(driver.num_queues(), 1u);
  EXPECT_EQ(driver.queue_cpu(0).value, 0u);
  ASSERT_TRUE(driver.RxSlotKva(0).has_value());
  EXPECT_EQ(driver.RxSlotKva(0), driver.RxSlotKva(0, 0));
  EXPECT_EQ(driver.RxSlotIova(3), driver.RxSlotIova(0, 3));
  EXPECT_EQ(driver.rx_packets(), driver.rx_packets(0));
  ASSERT_TRUE(driver.Shutdown().ok());
}

// The satellite-4 regression: the NAPI poll deadline is a PER-QUEUE budget.
// With the old per-device accounting, queue 0 exhausting the budget during a
// device-wide fill pass left every sibling queue with zero posted slots.
TEST_F(MqFixture, PollDeadlineIsPerQueueNotPerDevice) {
  core::Machine machine{MakeConfig(2, ExecMode::kSequential)};
  // A 1-cycle budget: the first slot's map cost alone exceeds it, so each
  // queue can post exactly one slot per fill pass — but only if each queue's
  // budget restarts when its own fill starts.
  NicDriver& driver = MakeDriver(machine, 2, /*ring=*/8, /*poll_deadline_cycles=*/1);
  ASSERT_TRUE(driver.FillAllRxRings().ok());
  for (uint32_t q = 0; q < 2; ++q) {
    EXPECT_TRUE(driver.RxSlotIova(q, 0).has_value()) << "queue " << q << " starved";
    EXPECT_GE(driver.poll_deadline_hits(q), 1u) << "queue " << q;
  }
  EXPECT_EQ(driver.poll_deadline_hits(),
            driver.poll_deadline_hits(0) + driver.poll_deadline_hits(1));
  ASSERT_TRUE(driver.Shutdown().ok());
}

TEST_F(MqFixture, QuarantineFencesAllQueues) {
  core::MachineConfig config = MakeConfig(2, ExecMode::kSequential);
  config.recovery.enabled = true;
  core::Machine machine{config};
  NicDriver& driver = MakeDriver(machine, 2);
  ASSERT_TRUE(driver.FillAllRxRings().ok());

  // A flow is in flight on queue 1 when the fence comes down.
  const PacketHeader header{.src_ip = 0x0a000002, .dst_ip = 0x0a000001,
                            .src_port = 31337, .dst_port = 7, .proto = kProtoUdp};
  std::vector<uint8_t> payload(48, 0x33);
  Result<RxPostedDescriptor> descriptor = device_->InjectRxOn(1, header, payload);
  ASSERT_TRUE(descriptor.ok());

  ASSERT_TRUE(machine.recovery().Quarantine(driver.device_id(), "test").ok());
  // Every queue's rings are down, not just queue 0's.
  for (uint32_t q = 0; q < 2; ++q) {
    for (uint32_t i = 0; i < 8; ++i) {
      EXPECT_FALSE(driver.RxSlotIova(q, i).has_value());
    }
  }
  // The sibling completion loses cleanly: no buffer reaches the stack.
  Result<SkBuffPtr> skb = driver.CompleteRx(
      1, descriptor->index,
      static_cast<uint32_t>(PacketHeader::kSize + payload.size()));
  EXPECT_FALSE(skb.ok());
  EXPECT_TRUE(driver.AuditQueues().ok());
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

// ---- Machine exec modes ----------------------------------------------------------

TEST(ExecModeTest, RunOnCpusSequentialVisitsCpusInOrder) {
  core::MachineConfig config;
  config.seed = 7;
  config.iommu.fast_path.num_cpus = 4;
  core::Machine machine{config};
  std::vector<uint32_t> visited;
  machine.RunOnCpus(4, [&](CpuId cpu) {
    EXPECT_EQ(CurrentCpu().value, cpu.value);
    visited.push_back(cpu.value);
  });
  EXPECT_EQ(visited, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(CurrentCpu().value, 0u);  // restored after the sweep
}

TEST(ExecModeTest, RunOnCpusThreadsChurnKeepsInvariants) {
  core::MachineConfig config;
  config.seed = 7;
  config.exec = ExecMode::kThreads;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  config.iommu.fast_path.num_cpus = 4;
  core::Machine machine{config};
  for (uint32_t c = 0; c < 4; ++c) {
    machine.iommu().AttachDevice(DeviceId{700 + c});
  }
  std::array<uint32_t, 4> failures = {0, 0, 0, 0};
  for (int round = 0; round < 8; ++round) {
    machine.RunOnCpus(4, [&](CpuId cpu) {
      const DeviceId dev{700 + cpu.value};
      for (int i = 0; i < 16; ++i) {
        Result<Kva> buf = machine.slab().Kmalloc(1024, "mq_churn");
        if (!buf.ok()) {
          ++failures[cpu.value];
          continue;
        }
        Result<Iova> iova = machine.dma().MapSingle(dev, *buf, 1024,
                                                    dma::DmaDirection::kFromDevice, "mq_churn");
        if (iova.ok() &&
            !machine.dma().UnmapSingle(dev, *iova, 1024, dma::DmaDirection::kFromDevice).ok()) {
          ++failures[cpu.value];
        }
        if (!iova.ok()) {
          ++failures[cpu.value];
        }
        (void)machine.slab().Kfree(*buf);
      }
    });
    ASSERT_TRUE(machine.CheckInvariants().ok()) << "round " << round;
  }
  for (uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(failures[c], 0u) << "cpu " << c;
  }
  machine.iommu().FlushNow();
  EXPECT_EQ(machine.dma().live_mappings(), 0u);
}

// ---- Soak cross-CPU scenarios ----------------------------------------------------

soak::SoakConfig MqSoakConfig(bool threads) {
  soak::SoakConfig config;
  config.seed = 42;
  config.target_cycles = 4'000'000;
  config.max_epochs = 120;
  config.storage = false;  // keep the multi-queue runs fast
  config.num_cpus = 2;
  config.nic_queues = 2;
  config.threads = threads;
  return config;
}

TEST(MqSoakTest, CrossCpuStaleReplayReproducesAndIsDetected) {
  const soak::SoakReport report = soak::RunSoak(MqSoakConfig(false));
  EXPECT_TRUE(report.ok) << report.failure;
  // The stale-IOTLB race fired, breached (deferred mode leaves the window
  // open), and the IOMMU's stale-access accounting flagged every breach.
  ASSERT_GE(report.cross_cpu_race_probes, 1u);
  EXPECT_GE(report.cross_cpu_stale_hits, 1u);
  EXPECT_EQ(report.cross_cpu_detected, report.cross_cpu_stale_hits);
  // The sibling-quarantine race fired and every fenced-off completion lost.
  ASSERT_GE(report.sibling_quarantine_probes, 1u);
  EXPECT_EQ(report.sibling_completions_fenced, report.sibling_quarantine_probes);
  // Per-CPU breakdown covers every sim CPU and the churn actually ran.
  ASSERT_EQ(report.cpus.size(), 2u);
  for (const auto& cpu : report.cpus) {
    EXPECT_GT(cpu.churn_ops, 0u) << "cpu " << cpu.cpu;
  }
}

TEST(MqSoakTest, StrictModeClosesTheCrossCpuWindow) {
  soak::SoakConfig config = MqSoakConfig(false);
  config.deferred = false;
  const soak::SoakReport report = soak::RunSoak(config);
  EXPECT_TRUE(report.ok) << report.failure;
  ASSERT_GE(report.cross_cpu_race_probes, 1u);
  // Strict invalidation tears the translation down inside the unmap: the
  // replay from the other CPU's context has nothing stale to ride.
  EXPECT_EQ(report.cross_cpu_stale_hits, 0u);
  EXPECT_EQ(report.cross_cpu_stale_blocked, report.cross_cpu_race_probes);
}

TEST(MqSoakTest, SequentialMultiCpuRunsAreByteIdentical) {
  const soak::SoakReport report = soak::RunSoak(MqSoakConfig(false));
  const soak::SoakReport again = soak::RunSoak(MqSoakConfig(false));
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.ToJson(), again.ToJson());
}

// ---- Degraded-mode sync RX under kThreads (the TSan leg) -------------------------

// CPU 1 serves sync-mode (bounced, copybreak) RX on its pinned queue while
// CPU 0 pushes map/unmap churn through an unrelated direct-mapped device:
// the bounce pool's sync edges and the clamped per-queue ring state must
// hold up under real threads.
TEST(MqDegradedTest, ThreadsSyncModeRxOnPinnedQueueStaysClean) {
  core::MachineConfig config;
  config.seed = 77;
  config.phys_pages = 4096;
  config.exec = ExecMode::kThreads;
  config.iommu.fast_path.num_cpus = 2;
  config.telemetry.enabled = true;
  config.policy.enabled = true;
  core::Machine machine{config};

  NicDriver::Config nic_config;
  nic_config.name = "nic0";
  nic_config.num_queues = 2;
  nic_config.rx_ring_size = 16;
  nic_config.queue_cpus = {CpuId{0}, CpuId{1}};
  NicDriver& nic = machine.AddNicDriver(nic_config);
  device::MaliciousNic dev{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&dev);
  ASSERT_TRUE(nic.FillAllRxRings().ok());

  // Not under trust policy: maps direct, sharing nothing with the pool.
  const DeviceId churn_dev{4242};
  machine.iommu().AttachDevice(churn_dev);

  machine.RunOnCpus(2, [&](CpuId cpu) {
    if (cpu.value == 1) {
      for (int i = 0; i < 24; ++i) {
        PacketHeader header{.src_ip = 0x0a000002,
                            .dst_ip = 0x0a000001,
                            .src_port = static_cast<uint16_t>(30000 + i),
                            .dst_port = 7,
                            .proto = kProtoUdp};
        const std::vector<uint8_t> payload(64, static_cast<uint8_t>(i));
        auto descriptor = dev.InjectRxOn(1, header, payload);
        if (!descriptor.ok()) {
          continue;
        }
        auto skb = nic.CompleteRx(
            1, descriptor->index,
            static_cast<uint32_t>(PacketHeader::kSize + payload.size()));
        if (skb.ok() && *skb != nullptr) {
          skb->reset();
        }
      }
      return;
    }
    for (int i = 0; i < 64; ++i) {
      Result<Kva> buf = machine.slab().Kmalloc(1024, "mq_degraded_churn");
      if (!buf.ok()) {
        continue;
      }
      Result<Iova> iova = machine.dma().MapSingle(
          churn_dev, *buf, 1024, dma::DmaDirection::kFromDevice, "mq_degraded_churn");
      if (iova.ok()) {
        (void)machine.dma().UnmapSingle(churn_dev, *iova, 1024,
                                        dma::DmaDirection::kFromDevice);
      }
      (void)machine.slab().Kfree(*buf);
    }
  });

  EXPECT_GT(nic.rx_sync_frames(), 0u);
  EXPECT_TRUE(machine.CheckInvariants().ok());
  EXPECT_TRUE(nic.Shutdown().ok());
  EXPECT_EQ(machine.dma().live_mappings(), 0u);
  ASSERT_NE(machine.bounce_pool(), nullptr);
  EXPECT_EQ(machine.bounce_pool()->total_active(), 0u);
}

TEST(MqSoakTest, ThreadsModeSoakStaysClean) {
  soak::SoakConfig config = MqSoakConfig(true);
  config.num_cpus = 4;
  config.nic_queues = 4;
  const soak::SoakReport report = soak::RunSoak(config);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.cpus.size(), 4u);
}

}  // namespace
}  // namespace spv::net
