// spv::forensics — flight recorder + incident engine (ISSUE 9 satellite 3).
//
// Three layers of coverage:
//   * unit — ring overflow accounting (dropped_critical parity with the
//     telemetry trace ring) and the mapping ledger's lifecycle edges;
//   * classifier — every paper attack class replayed against a real machine
//     (the nvme_attack_test recipes) and labeled correctly from recorded
//     evidence alone: (a)–(d) in strict mode via manual OpenIncident,
//     Poisoned Completion in deferred mode via the automatic
//     kStaleIotlbHit trigger;
//   * system — same-seed kSequential runs freeze byte-identical reports,
//     kThreads churn records TSan-clean, a disabled machine pays one null
//     branch, and the soak harness embeds a deterministic forensics block.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/clock.h"
#include "core/machine.h"
#include "device/device_port.h"
#include "fault/fault.h"
#include "forensics/flight_recorder.h"
#include "forensics/incident.h"
#include "nvme/malicious_nvme.h"
#include "nvme/nvme_driver.h"
#include "soak/soak.h"

namespace spv::forensics {
namespace {

core::MachineConfig BaseConfig(uint64_t seed, iommu::InvalidationMode mode) {
  core::MachineConfig config;
  config.seed = seed;
  config.phys_pages = 4096;
  config.iommu.mode = mode;
  config.forensics.enabled = true;
  return config;
}

struct EvilRig {
  explicit EvilRig(core::MachineConfig mc,
                   nvme::NvmeDriver::Config dc = nvme::NvmeDriver::Config{})
      : machine(mc),
        driver(machine.AddNvmeDriver(dc)),
        controller(device::DevicePort{machine.iommu(), driver.device_id()}) {
    controller.set_fault_engine(&machine.fault());
    controller.set_tracer(machine.tracer());
    driver.AttachDevice(&controller);
  }

  core::Machine machine;
  nvme::NvmeDriver& driver;
  nvme::MaliciousNvme controller;
};

AttackClass Classify(core::Machine& machine, DeviceId device,
                     size_t* implicated = nullptr) {
  FlightRecorder* recorder = machine.flight_recorder();
  EXPECT_NE(recorder, nullptr);
  return ClassifyEvidence(recorder->SnapshotTimeline(device),
                          recorder->SnapshotLedger(device), implicated);
}

// ---- Unit: ring overflow accounting --------------------------------------------

TEST(FlightRecorderUnit, OverflowAccountsDropsByClassOfLostRecord) {
  ForensicsConfig config;
  config.enabled = true;
  config.ring_capacity = 4;
  SimClock clock;
  FlightRecorder recorder(&clock, config);
  const DeviceId dev{9};

  for (int i = 0; i < 4; ++i) {
    recorder.RecordAccess(dev, Iova{0x1000u + 8u * i}, 0x5000, 8, false);
  }
  EXPECT_EQ(recorder.total_recorded(), 4u);
  EXPECT_EQ(recorder.total_dropped(), 0u);

  // Two faults overwrite the two oldest accesses: info-class losses.
  recorder.RecordFault(dev, Iova{0x2000}, kPageSize, true);
  recorder.RecordFault(dev, Iova{0x3000}, kPageSize, true);
  EXPECT_EQ(recorder.total_dropped(), 2u);
  EXPECT_EQ(recorder.total_dropped_critical(), 0u);

  // Four more accesses overwrite the remaining accesses AND both faults:
  // losing a fault record is a critical drop, same fail-loud parity the
  // telemetry trace ring keeps for Severity::kCritical.
  for (int i = 0; i < 4; ++i) {
    recorder.RecordAccess(dev, Iova{0x4000u + 8u * i}, 0x6000, 8, true);
  }
  EXPECT_EQ(recorder.total_recorded(), 10u);
  EXPECT_EQ(recorder.total_dropped(), 6u);
  EXPECT_EQ(recorder.total_dropped_critical(), 2u);

  const std::string json = recorder.AccountingJson();
  EXPECT_NE(json.find("\"dropped_critical\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recorded\":10"), std::string::npos) << json;

  // The snapshot keeps the most recent history: all four surviving records
  // are the newest accesses.
  const std::vector<FlightRecord> survivors = recorder.SnapshotTimeline(dev);
  ASSERT_EQ(survivors.size(), 4u);
  for (const FlightRecord& r : survivors) {
    EXPECT_EQ(r.op, RecordOp::kDeviceWrite);
  }
}

TEST(FlightRecorderUnit, LedgerTracksFullLifecycleAndEvictsOldest) {
  ForensicsConfig config;
  config.enabled = true;
  config.ledger_capacity = 2;
  SimClock clock;
  FlightRecorder recorder(&clock, config);
  const DeviceId dev{3};

  clock.Advance(10);
  recorder.RecordMap(dev, Iova{0x10000}, Kva{0xffff800000001080}, 256, 1, false,
                     "unit_map");
  clock.Advance(5);
  recorder.RecordAccess(dev, Iova{0x10010}, 0x5010, 16, true);
  clock.Advance(5);
  recorder.RecordUnmap(dev, Iova{0x10000}, 256, 1, false);
  clock.Advance(5);
  recorder.RecordStaleHit(dev, Iova{0x10000}, 0x5000);
  clock.Advance(5);
  recorder.RecordFlush(dev, Iova{0x10000}, 1);

  std::vector<MappingLife> ledger = recorder.SnapshotLedger(dev);
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].generation, 1u);
  EXPECT_EQ(ledger[0].map_cycle, 10u);
  EXPECT_EQ(ledger[0].accesses, 1u);
  EXPECT_EQ(ledger[0].unmap_cycle, 20u);
  EXPECT_EQ(ledger[0].stale_hits, 1u);
  EXPECT_EQ(ledger[0].flush_cycle, 30u);

  // The access record was attributed to generation 1 while the life was live.
  bool saw_attributed_access = false;
  for (const FlightRecord& r : recorder.SnapshotTimeline(dev)) {
    if (r.op == RecordOp::kDeviceWrite) {
      EXPECT_EQ(r.generation, 1u);
      saw_attributed_access = true;
    }
  }
  EXPECT_TRUE(saw_attributed_access);

  // A bounded ledger evicts its oldest life, loudly.
  recorder.RecordMap(dev, Iova{0x20000}, Kva{0xffff800000002000}, 64, 0, false,
                     "unit_map2");
  recorder.RecordMap(dev, Iova{0x30000}, Kva{0xffff800000003000}, 64, 0, false,
                     "unit_map3");
  EXPECT_EQ(recorder.SnapshotLedger(dev).size(), 2u);
  EXPECT_EQ(recorder.ledger_dropped(), 1u);
}

// ---- Classifier: the paper's attack classes from evidence alone ----------------

// (a) sub-page off-the-end write: the controller completes without
// transferring, keeps the translation, and rewrites the callback slot 512
// bytes past the mapped IO buffer.
TEST(ForensicsClassify, SubPageWildWriteIsClassA) {
  EvilRig rig(BaseConfig(201, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());
  const DeviceId dev = rig.driver.device_id();

  auto obj = rig.machine.slab().Kmalloc(1024, "nvme_req_with_cb");
  ASSERT_TRUE(obj.ok());
  rig.controller.set_complete_before_transfer(true);
  auto cid = rig.driver.SubmitRead(0, 1, *obj);
  ASSERT_TRUE(cid.ok());
  ASSERT_EQ(rig.controller.pending_transfers().size(), 1u);
  const nvme::PrpChunk chunk = rig.controller.pending_transfers().front().chunks[0];
  ASSERT_TRUE(
      rig.controller.port().WriteU64(Iova{chunk.iova.value + 512}, 0xdead).ok());

  size_t implicated = SIZE_MAX;
  EXPECT_EQ(Classify(rig.machine, dev, &implicated), AttackClass::kClassA);
  const std::vector<MappingLife> ledger =
      rig.machine.flight_recorder()->SnapshotLedger(dev);
  ASSERT_LT(implicated, ledger.size());
  EXPECT_NE(ledger[implicated].site.find("_map_data"), std::string::npos);

  // A manual freeze (no automatic detector fires for a silent wild write)
  // seals the same verdict into the report document.
  IncidentEngine* incidents = rig.machine.incidents();
  ASSERT_NE(incidents, nullptr);
  incidents->OpenIncident(dev, "unit: wild write past mapped buffer");
  EXPECT_EQ(incidents->incident_count(), 1u);
  const std::string report = incidents->ReportsJson();
  EXPECT_NE(report.find("\"inferred_class\":\"class_a\""), std::string::npos);
  EXPECT_NE(report.find("\"trigger\":\"manual\""), std::string::npos);

  EXPECT_TRUE(rig.driver.WaitFor(*cid).ok());
  rig.controller.ClearPendingTransfers();
  ASSERT_TRUE(rig.machine.slab().Kfree(*obj).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
}

// (b) PRP-list frag harvest: the page-wide read through the PRP segment's
// IOVA reaches the co-resident victim frag.
TEST(ForensicsClassify, PrpSegmentHarvestIsClassB) {
  EvilRig rig(BaseConfig(202, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());
  const DeviceId dev = rig.driver.device_id();

  slab::PageFragPool& pool = rig.machine.frag_pool(CpuId{0});
  auto victim = pool.Alloc(128, 8, "victim_meta");
  ASSERT_TRUE(victim.ok());
  auto buf = rig.machine.slab().Kmalloc(24 * nvme::kLbaSize, "io_buf");
  ASSERT_TRUE(buf.ok());
  auto cid = rig.driver.SubmitRead(0, 24, *buf);
  ASSERT_TRUE(cid.ok());
  ASSERT_TRUE(rig.controller.HarvestPrpQwords().ok());

  size_t implicated = SIZE_MAX;
  EXPECT_EQ(Classify(rig.machine, dev, &implicated), AttackClass::kClassB);
  const std::vector<MappingLife> ledger =
      rig.machine.flight_recorder()->SnapshotLedger(dev);
  ASSERT_LT(implicated, ledger.size());
  EXPECT_NE(ledger[implicated].site.find("prp"), std::string::npos);

  EXPECT_TRUE(rig.driver.WaitFor(*cid).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  ASSERT_TRUE(pool.Free(*victim).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
}

// (c) multi-IOVA aliasing: after one PRP segment's unmap, the surviving
// alias keeps the shared frag page readable — the recorded evidence holds
// both lives (same KVA page, distinct IOVA pages) and the post-unmap reach.
TEST(ForensicsClassify, SurvivingAliasReadIsClassC) {
  EvilRig rig(BaseConfig(203, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());
  const DeviceId dev = rig.driver.device_id();

  fault::FaultPlan plan;
  plan.OneShot(fault::FaultSite::kNvmeCompletionDrop, 2);
  rig.machine.fault().Arm(plan, 203);

  auto buf1 = rig.machine.slab().Kmalloc(24 * nvme::kLbaSize, "io_buf1");
  auto buf2 = rig.machine.slab().Kmalloc(24 * nvme::kLbaSize, "io_buf2");
  ASSERT_TRUE(buf1.ok() && buf2.ok());
  auto cid1 = rig.driver.SubmitRead(0, 24, *buf1);
  auto cid2 = rig.driver.SubmitRead(24, 24, *buf2);
  ASSERT_TRUE(cid1.ok() && cid2.ok());
  ASSERT_GE(rig.controller.prp_segments_seen().size(), 2u);
  const Iova seg2 = rig.controller.prp_segments_seen()[1];

  // Completing command 1 unmaps its segment; the alias read then reaches the
  // dead segment's bytes through command 2's still-live IOVA.
  ASSERT_TRUE(rig.driver.WaitFor(*cid1).ok());
  ASSERT_TRUE(rig.controller.port().ReadPageQwords(seg2).ok());

  EXPECT_EQ(Classify(rig.machine, dev), AttackClass::kClassC);

  rig.machine.fault().Disarm();
  rig.machine.clock().Advance(SimClock::MsToCycles(6000));
  EXPECT_EQ(rig.driver.CheckTimeouts(), 1u);
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf1).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf2).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
}

// (d) slab co-location exfiltration: the page-wide read through the data
// buffer's IOVA — a non-metadata mapping — rides over the victim slab slot.
TEST(ForensicsClassify, SlabNeighbourExfilReadIsClassD) {
  EvilRig rig(BaseConfig(204, iommu::InvalidationMode::kStrict));
  ASSERT_TRUE(rig.driver.Init().ok());
  const DeviceId dev = rig.driver.device_id();

  auto victim = rig.machine.slab().Kmalloc(512, "victim_cred");
  auto buf = rig.machine.slab().Kmalloc(512, "io_buf");
  ASSERT_TRUE(victim.ok() && buf.ok());
  ASSERT_EQ(victim->PageBase().value, buf->PageBase().value);

  rig.controller.set_complete_before_transfer(true);
  auto cid = rig.driver.SubmitWrite(0, 1, *buf);
  ASSERT_TRUE(cid.ok());
  ASSERT_EQ(rig.controller.pending_transfers().size(), 1u);
  const nvme::PrpChunk chunk = rig.controller.pending_transfers().front().chunks[0];
  ASSERT_TRUE(rig.controller.port().ReadPageQwords(chunk.iova).ok());

  size_t implicated = SIZE_MAX;
  EXPECT_EQ(Classify(rig.machine, dev, &implicated), AttackClass::kClassD);
  const std::vector<MappingLife> ledger =
      rig.machine.flight_recorder()->SnapshotLedger(dev);
  ASSERT_LT(implicated, ledger.size());
  EXPECT_NE(ledger[implicated].site.find("_map_data"), std::string::npos);

  EXPECT_TRUE(rig.driver.WaitFor(*cid).ok());
  rig.controller.ClearPendingTransfers();
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  ASSERT_TRUE(rig.machine.slab().Kfree(*victim).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
}

// Poisoned Completion in deferred mode: the stale replay trips the
// kStaleIotlbHit trigger, so the incident freezes AUTOMATICALLY and the
// stale-hit record names the class without any operator involvement.
TEST(ForensicsClassify, PoisonedCompletionAutoFreezesIncident) {
  core::MachineConfig mc = BaseConfig(205, iommu::InvalidationMode::kDeferred);
  mc.telemetry.enabled = true;
  EvilRig rig(mc);
  ASSERT_TRUE(rig.driver.Init().ok());
  const DeviceId dev = rig.driver.device_id();
  rig.controller.set_warm_iotlb(true);

  auto buf = rig.machine.slab().Kmalloc(512, "posted_read_buf");
  ASSERT_TRUE(buf.ok());
  const Kva old_buf = *buf;
  rig.controller.set_complete_before_transfer(true);

  // The forged CQE makes the driver unmap (deferred: stale window opens) and
  // the buffer is freed + recycled before the withheld data phase lands.
  auto moved = rig.driver.ReadBlocks(8, 1, *buf);
  ASSERT_TRUE(moved.ok());
  ASSERT_EQ(rig.controller.pending_transfers().size(), 1u);
  ASSERT_TRUE(rig.machine.slab().Kfree(*buf).ok());
  auto recycled = rig.machine.slab().Kmalloc(512, "recycled_victim");
  ASSERT_TRUE(recycled.ok());
  ASSERT_EQ(recycled->value, old_buf.value);
  rig.machine.clock().AdvanceUs(5);

  const uint64_t stale_before = rig.machine.iommu().stats().stale_iotlb_accesses;
  ASSERT_TRUE(rig.controller.ReplayPendingTransfer().ok());
  ASSERT_GE(rig.machine.iommu().stats().stale_iotlb_accesses, stale_before + 1);

  EXPECT_EQ(Classify(rig.machine, dev), AttackClass::kPoisonedCompletion);

  IncidentEngine* incidents = rig.machine.incidents();
  ASSERT_NE(incidents, nullptr);
  ASSERT_GE(incidents->incident_count(), 1u);
  const std::string report = incidents->ReportsJson();
  EXPECT_NE(report.find("\"trigger\":\"stale_iotlb_hit\""), std::string::npos);
  EXPECT_NE(report.find("\"inferred_class\":\"poisoned_completion\""),
            std::string::npos);
  const std::string summary = incidents->SummaryJson();
  EXPECT_NE(summary.find("\"poisoned_completion\":"), std::string::npos);

  rig.controller.ClearPendingTransfers();
  rig.machine.iommu().FlushNow();
  ASSERT_TRUE(rig.machine.slab().Kfree(*recycled).ok());
  EXPECT_TRUE(rig.driver.Shutdown().ok());
}

// ---- System: determinism, threads, disabled, soak ------------------------------

namespace {
std::string RunClassDScenario(uint64_t seed) {
  EvilRig rig(BaseConfig(seed, iommu::InvalidationMode::kStrict));
  EXPECT_TRUE(rig.driver.Init().ok());
  const DeviceId dev = rig.driver.device_id();
  auto victim = rig.machine.slab().Kmalloc(512, "victim_cred");
  auto buf = rig.machine.slab().Kmalloc(512, "io_buf");
  EXPECT_TRUE(victim.ok() && buf.ok());
  rig.controller.set_complete_before_transfer(true);
  auto cid = rig.driver.SubmitWrite(0, 1, *buf);
  EXPECT_TRUE(cid.ok());
  const nvme::PrpChunk chunk = rig.controller.pending_transfers().front().chunks[0];
  EXPECT_TRUE(rig.controller.port().ReadPageQwords(chunk.iova).ok());
  rig.machine.incidents()->OpenIncident(dev, "determinism probe");
  EXPECT_TRUE(rig.driver.WaitFor(*cid).ok());
  rig.controller.ClearPendingTransfers();
  return rig.machine.incidents()->ReportsJson();
}
}  // namespace

TEST(ForensicsDeterminism, SameSeedFreezesByteIdenticalReports) {
  const std::string first = RunClassDScenario(301);
  const std::string second = RunClassDScenario(301);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"inferred_class\":\"class_d\""), std::string::npos);
}

TEST(ForensicsThreads, ConcurrentChurnRecordsAndFreezesClean) {
  core::MachineConfig config;
  config.seed = 7;
  config.exec = ExecMode::kThreads;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  config.iommu.fast_path.num_cpus = 4;
  config.forensics.enabled = true;
  core::Machine machine{config};
  for (uint32_t c = 0; c < 4; ++c) {
    machine.iommu().AttachDevice(DeviceId{700 + c});
  }
  for (int round = 0; round < 4; ++round) {
    machine.RunOnCpus(4, [&](CpuId cpu) {
      const DeviceId dev{700 + cpu.value};
      for (int i = 0; i < 16; ++i) {
        Result<Kva> buf = machine.slab().Kmalloc(1024, "forensics_churn");
        if (!buf.ok()) {
          continue;
        }
        Result<Iova> iova = machine.dma().MapSingle(
            dev, *buf, 1024, dma::DmaDirection::kFromDevice, "forensics_churn");
        if (iova.ok()) {
          // A worker-side freeze while siblings churn: snapshot vs record.
          if (cpu.value == 0 && i == 8) {
            machine.incidents()->OpenIncident(dev, "mid-churn freeze");
          }
          (void)machine.dma().UnmapSingle(dev, *iova, 1024,
                                          dma::DmaDirection::kFromDevice);
        }
        (void)machine.slab().Kfree(*buf);
      }
    });
    ASSERT_TRUE(machine.CheckInvariants().ok()) << "round " << round;
  }
  FlightRecorder* recorder = machine.flight_recorder();
  ASSERT_NE(recorder, nullptr);
  EXPECT_GT(recorder->total_recorded(), 0u);
  for (uint32_t c = 0; c < 4; ++c) {
    EXPECT_FALSE(recorder->SnapshotLedger(DeviceId{700 + c}).empty()) << c;
  }
  EXPECT_GE(machine.incidents()->incident_count(), 1u);
  const std::string report = machine.incidents()->ReportsJson();
  EXPECT_NE(report.find("\"incidents\":["), std::string::npos);
  machine.iommu().FlushNow();
  EXPECT_EQ(machine.dma().live_mappings(), 0u);
}

TEST(ForensicsDisabled, DefaultMachineHasNullRecorderAndEngine) {
  core::MachineConfig config;
  config.seed = 5;
  config.phys_pages = 4096;
  core::Machine machine{config};
  EXPECT_EQ(machine.flight_recorder(), nullptr);
  EXPECT_EQ(machine.incidents(), nullptr);

  // The hooks are one null branch: mapping traffic behaves as before.
  machine.iommu().AttachDevice(DeviceId{42});
  auto buf = machine.slab().Kmalloc(1024, "plain");
  ASSERT_TRUE(buf.ok());
  auto iova = machine.dma().MapSingle(DeviceId{42}, *buf, 1024,
                                      dma::DmaDirection::kFromDevice, "plain");
  ASSERT_TRUE(iova.ok());
  EXPECT_TRUE(machine.dma()
                  .UnmapSingle(DeviceId{42}, *iova, 1024,
                               dma::DmaDirection::kFromDevice)
                  .ok());
  ASSERT_TRUE(machine.slab().Kfree(*buf).ok());
}

TEST(ForensicsSoak, SoakEmbedsDeterministicForensicsBlock) {
  soak::SoakConfig config;
  config.seed = 11;
  config.target_cycles = 2'000'000;
  config.max_epochs = 60;
  config.storage = false;  // keep the round-trip fast
  const soak::SoakReport first = soak::RunSoak(config);
  EXPECT_TRUE(first.ok) << first.failure;
  EXPECT_GT(first.flight_records, 0u);
  EXPECT_FALSE(first.incidents_json.empty());
  EXPECT_NE(first.ToJson().find("\"forensics\""), std::string::npos);
  EXPECT_NE(first.incidents_json.find("\"recorder\""), std::string::npos);

  const soak::SoakReport second = soak::RunSoak(config);
  EXPECT_EQ(first.ToJson(), second.ToJson());
  EXPECT_EQ(first.incidents_json, second.incidents_json);

  // Opting out must not change the workload's outcome: the recorder is a
  // pure observer, so every non-forensics field stays identical.
  soak::SoakConfig no_forensics = config;
  no_forensics.forensics = false;
  const soak::SoakReport off = soak::RunSoak(no_forensics);
  EXPECT_TRUE(off.ok) << off.failure;
  EXPECT_EQ(off.flight_records, 0u);
  EXPECT_TRUE(off.incidents_json.empty());
  EXPECT_EQ(off.sim_cycles, first.sim_cycles);
  EXPECT_EQ(off.epochs, first.epochs);
  EXPECT_EQ(off.echo_ok, first.echo_ok);
}

}  // namespace
}  // namespace spv::forensics
