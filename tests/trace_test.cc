// Tests for spv::trace — span lifecycle, profile exporters, and
// vulnerability-window accounting (ISSUE 4 tentpole).

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "core/machine.h"
#include "dkasan/dkasan.h"
#include "spade/analyzer.h"
#include "spade/parser.h"
#include "telemetry/telemetry.h"
#include "trace/profile.h"
#include "trace/tracer.h"
#include "trace/window_tracker.h"

namespace spv::trace {
namespace {

TracerConfig EnabledConfig() {
  TracerConfig config;
  config.enabled = true;
  return config;
}

// ---- Span lifecycle ---------------------------------------------------------

TEST(TracerTest, NestingAndSequentialIdsWithDurations) {
  SimClock clock;
  telemetry::Hub hub;
  Tracer tracer{hub, clock, EnabledConfig()};

  const SpanId a = tracer.Open("rx");
  clock.Advance(10);
  const SpanId b = tracer.Open("rx.map");
  EXPECT_EQ(tracer.current(), b);
  clock.Advance(25);
  tracer.Close(b);
  clock.Advance(5);
  const SpanId c = tracer.Open("rx.unmap");
  clock.Advance(15);
  tracer.Close(c);
  tracer.Close(a);

  EXPECT_EQ(a.value, 1u);
  EXPECT_EQ(b.value, 2u);
  EXPECT_EQ(c.value, 3u);
  ASSERT_EQ(tracer.records().size(), 3u);
  const SpanRecord& ra = tracer.records()[0];
  const SpanRecord& rb = tracer.records()[1];
  const SpanRecord& rc = tracer.records()[2];
  EXPECT_EQ(ra.parent, kNoSpan);
  EXPECT_EQ(rb.parent, a);
  EXPECT_EQ(rc.parent, a);
  EXPECT_TRUE(ra.closed);
  EXPECT_EQ(ra.duration(), 55u);
  EXPECT_EQ(rb.duration(), 25u);
  EXPECT_EQ(rc.duration(), 15u);
  EXPECT_EQ(tracer.current(), kNoSpan);
  EXPECT_EQ(tracer.orphan_closes(), 0u);
}

TEST(TracerTest, ClosingAnOuterSpanImplicitlyClosesInnerOnes) {
  SimClock clock;
  telemetry::Hub hub;
  Tracer tracer{hub, clock, EnabledConfig()};

  const SpanId a = tracer.Open("outer");
  tracer.Open("mid");
  tracer.Open("leaf");
  clock.Advance(100);
  tracer.Close(a);  // stack self-heals: leaf and mid close first

  EXPECT_EQ(tracer.current(), kNoSpan);
  for (const SpanRecord& record : tracer.records()) {
    EXPECT_TRUE(record.closed) << record.name;
    EXPECT_EQ(record.close_cycle, 100u) << record.name;
  }
}

TEST(TracerTest, OrphanClosesAreCountedNotFatal) {
  SimClock clock;
  telemetry::Hub hub;
  Tracer tracer{hub, clock, EnabledConfig()};

  tracer.Close(kNoSpan);  // no-op, not an orphan
  EXPECT_EQ(tracer.orphan_closes(), 0u);
  tracer.Close(SpanId{42});  // never opened
  EXPECT_EQ(tracer.orphan_closes(), 1u);

  const SpanId a = tracer.Open("a");
  tracer.Close(a);
  tracer.Close(a);  // double close
  EXPECT_EQ(tracer.orphan_closes(), 2u);
}

TEST(TracerTest, DisabledTracerHandsOutNoSpanAndStaysSilent) {
  SimClock clock;
  telemetry::Hub::Config hub_config;
  hub_config.enabled = true;
  telemetry::Hub hub{hub_config};
  Tracer tracer{hub, clock, TracerConfig{}};  // enabled = false

  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.Open("ignored"), kNoSpan);
  tracer.Close(kNoSpan);
  EXPECT_TRUE(tracer.records().empty());
  // No span events leaked into the ring.
  const std::vector<telemetry::Event> events =
      telemetry::ParseTraceCsv(hub.ExportTraceCsv());
  for (const telemetry::Event& event : events) {
    EXPECT_NE(event.kind, telemetry::EventKind::kSpanOpen);
    EXPECT_NE(event.kind, telemetry::EventKind::kSpanClose);
  }
}

TEST(TracerTest, ScopedSpanToleratesNullAndDisabledTracers) {
  {
    ScopedSpan span{nullptr, "null"};
    EXPECT_EQ(span.id(), kNoSpan);
  }
  SimClock clock;
  telemetry::Hub hub;
  Tracer disabled{hub, clock, TracerConfig{}};
  {
    ScopedSpan span{&disabled, "disabled"};
    EXPECT_EQ(span.id(), kNoSpan);
  }
  Tracer enabled{hub, clock, EnabledConfig()};
  {
    ScopedSpan span{&enabled, "live"};
    EXPECT_TRUE(span.id().valid());
    EXPECT_EQ(enabled.current(), span.id());
  }
  EXPECT_EQ(enabled.current(), kNoSpan);
}

TEST(TracerTest, HubStampsCurrentSpanOnEventsPublishedInsideASpan) {
  SimClock clock;
  telemetry::Hub::Config hub_config;
  hub_config.enabled = true;
  telemetry::Hub hub{hub_config};
  hub.BindClock(&clock);
  Tracer tracer{hub, clock, EnabledConfig()};

  const SpanId span = tracer.Open("op");
  telemetry::Event inside;
  inside.kind = telemetry::EventKind::kDmaMap;
  inside.severity = telemetry::Severity::kInfo;
  hub.Publish(std::move(inside));
  tracer.Close(span);
  telemetry::Event outside;
  outside.kind = telemetry::EventKind::kDmaUnmap;
  outside.severity = telemetry::Severity::kInfo;
  hub.Publish(std::move(outside));

  const std::vector<telemetry::Event> events =
      telemetry::ParseTraceCsv(hub.ExportTraceCsv());
  bool saw_inside = false;
  bool saw_outside = false;
  for (const telemetry::Event& event : events) {
    if (event.kind == telemetry::EventKind::kDmaMap) {
      EXPECT_EQ(event.span, span.value);
      saw_inside = true;
    }
    if (event.kind == telemetry::EventKind::kDmaUnmap) {
      EXPECT_EQ(event.span, 0u);
      saw_outside = true;
    }
  }
  EXPECT_TRUE(saw_inside);
  EXPECT_TRUE(saw_outside);
}

TEST(TracerTest, MaxRecordsExhaustionCountsDroppedSpans) {
  SimClock clock;
  telemetry::Hub hub;
  TracerConfig config = EnabledConfig();
  config.max_records = 2;
  Tracer tracer{hub, clock, config};

  EXPECT_TRUE(tracer.Open("a").valid());
  EXPECT_TRUE(tracer.Open("b").valid());
  EXPECT_EQ(tracer.Open("c"), kNoSpan);
  EXPECT_EQ(tracer.dropped_spans(), 1u);
}

// ---- Determinism across same-seed runs --------------------------------------

std::string TraceOneRun(uint64_t seed) {
  core::MachineConfig config;
  config.seed = seed;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  config.telemetry.enabled = true;
  config.trace.enabled = true;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "trace_det_buf");
  std::vector<uint8_t> touch(8);
  for (int i = 0; i < 16; ++i) {
    auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                        "trace_det_map");
    EXPECT_TRUE(iova.ok());
    (void)machine.iommu().DeviceWrite(dev, *iova, touch);
    (void)machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice);
  }
  machine.iommu().FlushNow();
  return machine.tracer()->ChromeTraceJson();
}

TEST(TracerTest, SpanTreeIsDeterministicAcrossSameSeedRuns) {
  const std::string first = TraceOneRun(1234);
  const std::string second = TraceOneRun(1234);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ---- Profile exporters ------------------------------------------------------

TEST(ProfileTest, CollapsedStacksAttributeSelfCycles) {
  SimClock clock;
  telemetry::Hub hub;
  Tracer tracer{hub, clock, EnabledConfig()};

  const SpanId root = tracer.Open("root");
  clock.Advance(60);
  const SpanId child = tracer.Open("child");
  clock.Advance(40);
  tracer.Close(child);
  tracer.Close(root);

  const std::string stacks = tracer.CollapsedStacks();
  EXPECT_NE(stacks.find("root 60"), std::string::npos) << stacks;
  EXPECT_NE(stacks.find("root;child 40"), std::string::npos) << stacks;
}

TEST(ProfileTest, CollapsedStacksExcludeDetachedSpans) {
  SimClock clock;
  telemetry::Hub hub;
  Tracer tracer{hub, clock, EnabledConfig()};

  const SpanId root = tracer.Open("root");
  const SpanId window = tracer.OpenDetached("window.stale", root);
  clock.Advance(100);
  tracer.Close(window);
  tracer.Close(root);

  const std::string stacks = tracer.CollapsedStacks();
  EXPECT_EQ(stacks.find("window.stale"), std::string::npos) << stacks;
  EXPECT_NE(stacks.find("root 100"), std::string::npos) << stacks;
}

TEST(ProfileTest, ChromeTraceJsonIsStructurallySane) {
  SimClock clock;
  telemetry::Hub hub;
  Tracer tracer{hub, clock, EnabledConfig()};

  const SpanId root = tracer.Open("iommu.flush");
  const SpanId window = tracer.OpenDetached("window.stale", root);
  clock.Advance(50);
  tracer.Close(window);
  tracer.Close(root);

  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);   // stack span
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);   // async window open
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);   // async window close
  EXPECT_NE(json.find("iommu.flush"), std::string::npos);
  EXPECT_NE(json.find("window.stale"), std::string::npos);
}

TEST(ProfileTest, SubtreeMaskSelectsOnlyDescendants) {
  SimClock clock;
  telemetry::Hub hub;
  Tracer tracer{hub, clock, EnabledConfig()};

  const SpanId a = tracer.Open("a");        // id 1
  const SpanId a1 = tracer.Open("a.1");     // id 2
  tracer.Close(a1);
  tracer.Close(a);
  const SpanId b = tracer.Open("b");        // id 3
  tracer.Close(b);

  SpanForest forest;
  forest.records = tracer.records();
  forest.total_cycles = clock.now();
  const std::unordered_set<uint64_t> mask = SubtreeMask(forest, a);
  EXPECT_EQ(mask.size(), 2u);
  EXPECT_TRUE(mask.count(a.value));
  EXPECT_TRUE(mask.count(a1.value));
  EXPECT_FALSE(mask.count(b.value));
}

TEST(ProfileTest, BuildSpanForestRecoversOverwrittenOpens) {
  // A kSpanClose whose kSpanOpen was evicted from the ring: the close record
  // carries the duration in aux, so the open cycle is recoverable.
  std::vector<telemetry::Event> events;
  telemetry::Event close;
  close.kind = telemetry::EventKind::kSpanClose;
  close.cycle = 500;
  close.span = 7;
  close.aux = 120;  // duration
  close.site = "orphaned.op";
  events.push_back(close);

  const SpanForest forest = BuildSpanForest(events);
  ASSERT_EQ(forest.records.size(), 1u);
  const SpanRecord& record = forest.records[0];
  EXPECT_EQ(record.id.value, 7u);
  EXPECT_EQ(record.name, "orphaned.op");
  EXPECT_TRUE(record.closed);
  EXPECT_EQ(record.open_cycle, 380u);
  EXPECT_EQ(record.close_cycle, 500u);
}

TEST(ProfileTest, Fig6StyleRunAttributesAtLeast95PercentOfCycles) {
  core::MachineConfig config;
  config.seed = 6;
  config.iommu.mode = iommu::InvalidationMode::kStrict;
  config.telemetry.enabled = true;
  config.telemetry.ring_capacity = 1 << 14;  // keep every span event
  config.trace.enabled = true;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "attr_buf");
  std::vector<uint8_t> touch(8);
  for (int i = 0; i < 50; ++i) {
    auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                        "attr_map");
    ASSERT_TRUE(iova.ok());
    (void)machine.iommu().DeviceWrite(dev, *iova, touch);
    (void)machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice);
  }

  // Round-trip through the CSV exporter, as trace_cli consumes it.
  const std::vector<telemetry::Event> events =
      telemetry::ParseTraceCsv(machine.telemetry().ExportTraceCsv());
  const SpanForest forest = BuildSpanForest(events);
  EXPECT_FALSE(forest.records.empty());
  const Attribution attribution = AttributedCycles(forest);
  EXPECT_GT(attribution.total_cycles, 0u);
  EXPECT_GE(attribution.fraction, 0.95)
      << "attributed " << attribution.attributed_cycles << " of "
      << attribution.total_cycles << " cycles";
}

// ---- Vulnerability windows --------------------------------------------------

core::MachineConfig WindowConfig(iommu::InvalidationMode mode) {
  core::MachineConfig config;
  config.seed = 9;
  config.iommu.mode = mode;
  config.telemetry.enabled = true;
  config.trace.enabled = true;
  return config;
}

// Maps, lets the device touch the buffer (warming the IOTLB), unmaps.
Iova OpenStaleWindow(core::Machine& machine, DeviceId dev, Kva buf) {
  std::vector<uint8_t> touch(8);
  auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                      "window_map");
  EXPECT_TRUE(iova.ok());
  (void)machine.iommu().DeviceWrite(dev, *iova, touch);
  (void)machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice);
  return *iova;
}

TEST(WindowTest, DeferredWindowClosesOnManualFlush) {
  core::Machine machine{WindowConfig(iommu::InvalidationMode::kDeferred)};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "w_buf");
  OpenStaleWindow(machine, dev, buf);
  ASSERT_EQ(machine.windows()->open_stale_count(), 1u);

  machine.clock().Advance(5000);
  machine.iommu().FlushNow();

  EXPECT_EQ(machine.windows()->open_stale_count(), 0u);
  bool found = false;
  for (const Window& window : machine.windows()->windows()) {
    if (window.kind != WindowKind::kStaleIotlb) {
      continue;
    }
    found = true;
    EXPECT_FALSE(window.open);
    EXPECT_EQ(window.close_reason, "flush:manual");
    EXPECT_GE(window.duration(), 5000u);
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(machine.windows()->stale_open_summary().count, 1u);
}

TEST(WindowTest, DeferredWindowClosesOnDeadlineDrain) {
  core::Machine machine{WindowConfig(iommu::InvalidationMode::kDeferred)};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "w_buf");
  OpenStaleWindow(machine, dev, buf);

  machine.clock().AdvanceUs(10001);  // past the 10 ms deferred deadline
  machine.iommu().ProcessDeferredTimer();

  EXPECT_EQ(machine.windows()->open_stale_count(), 0u);
  bool found = false;
  for (const Window& window : machine.windows()->windows()) {
    if (window.kind == WindowKind::kStaleIotlb && !window.open) {
      EXPECT_EQ(window.close_reason, "flush:deadline");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WindowTest, DeferredWindowClosesOnCapacityDrain) {
  core::Machine machine{WindowConfig(iommu::InvalidationMode::kDeferred)};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "w_buf");
  // The flush queue holds 256 pending invalidations; the 257th unmap forces
  // a capacity drain that closes every window opened so far.
  for (int i = 0; i < 257; ++i) {
    OpenStaleWindow(machine, dev, buf);
  }

  bool capacity_close = false;
  for (const Window& window : machine.windows()->windows()) {
    if (window.kind == WindowKind::kStaleIotlb && !window.open &&
        window.close_reason == "flush:capacity") {
      capacity_close = true;
    }
  }
  EXPECT_TRUE(capacity_close);
}

TEST(WindowTest, StrictWindowSpansOnlyTheSynchronousInvalidation) {
  core::Machine machine{WindowConfig(iommu::InvalidationMode::kStrict)};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "w_buf");
  OpenStaleWindow(machine, dev, buf);

  EXPECT_EQ(machine.windows()->open_stale_count(), 0u);
  bool found = false;
  for (const Window& window : machine.windows()->windows()) {
    if (window.kind != WindowKind::kStaleIotlb) {
      continue;
    }
    found = true;
    EXPECT_FALSE(window.open);
    EXPECT_EQ(window.close_reason, "strict");
    // One page at kIotlbInvalidationCycles each (the clock advance is
    // published in the invalidate event's aux and backdated here).
    EXPECT_EQ(window.duration(), 2000u);
  }
  EXPECT_TRUE(found);
}

TEST(WindowTest, SubPageWindowOpensOnWritableMapAndClosesOnUnmap) {
  core::Machine machine{WindowConfig(iommu::InvalidationMode::kDeferred)};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  // 2048-byte buffer in a 4 KiB page: 2048 bytes of neighbouring memory are
  // exposed to a device-writable mapping.
  Kva buf = *machine.slab().Kmalloc(2048, "w_buf");
  auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                      "subpage_map");
  ASSERT_TRUE(iova.ok());
  EXPECT_EQ(machine.windows()->open_subpage_count(), 1u);

  (void)machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice);
  EXPECT_EQ(machine.windows()->open_subpage_count(), 0u);

  bool found = false;
  for (const Window& window : machine.windows()->windows()) {
    if (window.kind != WindowKind::kSubPage) {
      continue;
    }
    found = true;
    EXPECT_FALSE(window.open);
    EXPECT_EQ(window.close_reason, "unmap");
    EXPECT_EQ(window.exposed_bytes, 2048u);
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(machine.windows()->subpage_open_summary().count, 1u);
}

TEST(WindowTest, StaleHitsAreAttributedToTheOpenWindow) {
  core::Machine machine{WindowConfig(iommu::InvalidationMode::kDeferred)};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "w_buf");
  const Iova iova = OpenStaleWindow(machine, dev, buf);

  // The translation is dead but still cached: this write is the Fig-6 stale
  // access, and the tracker pins it to the window it landed in.
  std::vector<uint8_t> touch(8);
  ASSERT_TRUE(machine.iommu().DeviceWrite(dev, iova, touch).ok());

  ASSERT_EQ(machine.windows()->open_stale_count(), 1u);
  bool found = false;
  for (const Window& window : machine.windows()->windows()) {
    if (window.kind == WindowKind::kStaleIotlb && window.open) {
      EXPECT_GE(window.device_hits, 1u);
      EXPECT_GT(window.first_hit_cycle, 0u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WindowTest, DkasanReportClosesTheWindowAndRecordsLatency) {
  core::Machine machine{WindowConfig(iommu::InvalidationMode::kDeferred)};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  dkasan::DKasan detector{machine.layout()};
  detector.set_telemetry(&machine.telemetry());
  detector.Attach(machine.dma());

  Kva buf = *machine.slab().Kmalloc(2048, "w_buf");
  OpenStaleWindow(machine, dev, buf);
  ASSERT_EQ(machine.windows()->open_stale_count(), 1u);
  machine.clock().Advance(3000);

  // A CPU access to a still-mapped buffer: D-KASAN reports it, and the report
  // (a runtime detection) ends the exploitable interval.
  auto live = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                      "dkasan_live_map");
  ASSERT_TRUE(live.ok());
  (void)machine.dma().SyncSingleForCpu(dev, *live, 2048, dma::DmaDirection::kFromDevice);

  const telemetry::Histogram::Summary latency =
      machine.windows()->dkasan_latency_summary();
  ASSERT_GE(latency.count, 1u);
  EXPECT_GE(latency.max, 3000u);
  EXPECT_EQ(machine.windows()->open_stale_count(), 0u);
  bool detected = false;
  for (const Window& window : machine.windows()->windows()) {
    if (window.kind == WindowKind::kStaleIotlb && window.detected) {
      EXPECT_EQ(window.close_reason, "detected:dkasan");
      detected = true;
    }
  }
  EXPECT_TRUE(detected);
}

TEST(WindowTest, SpadeFindingRecordsLatencyButLeavesTheWindowOpen) {
  core::Machine machine{WindowConfig(iommu::InvalidationMode::kDeferred)};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "w_buf");
  OpenStaleWindow(machine, dev, buf);
  ASSERT_EQ(machine.windows()->open_stale_count(), 1u);
  machine.clock().Advance(5000);

  // Static scan while the window is open: a finding measures how quickly the
  // analyzer could have flagged the site, but cannot invalidate a live
  // translation, so the window stays open.
  spade::SpadeAnalyzer analyzer;
  analyzer.set_telemetry(&machine.telemetry());
  analyzer.set_tracer(machine.tracer());
  auto file = spade::ParseSource("inline.c", R"(
    struct my_op {
      u8 buf[64];
      void (*done)(struct my_op *op);
    };
    int f(struct dev *d, struct my_op *op) {
      dma_addr_t a;
      a = dma_map_single(d, &op->buf, 64, DMA_FROM_DEVICE);
      return 0;
    }
  )");
  ASSERT_TRUE(file.ok());
  analyzer.AddFile(std::move(*file));
  auto findings = analyzer.Analyze();
  ASSERT_TRUE(findings.ok());
  ASSERT_FALSE(findings->empty());

  const telemetry::Histogram::Summary latency =
      machine.windows()->spade_latency_summary();
  ASSERT_GE(latency.count, 1u);
  EXPECT_GE(latency.max, 5000u);
  EXPECT_EQ(machine.windows()->open_stale_count(), 1u);  // still open
  for (const Window& window : machine.windows()->windows()) {
    if (window.kind == WindowKind::kStaleIotlb) {
      EXPECT_TRUE(window.open);
      EXPECT_TRUE(window.detected);
    }
  }
}

}  // namespace
}  // namespace spv::trace
