// Tests for D-KASAN: the four report classes (§4.2), event plumbing from the
// allocators and DMA API, and the Figure-3 workload.

#include <gtest/gtest.h>

#include <vector>

#include "core/machine.h"
#include "device/malicious_nic.h"
#include "dkasan/dkasan.h"
#include "dkasan/workload.h"
#include "net/nic_driver.h"

namespace spv::dkasan {
namespace {

class DkasanFixture : public ::testing::Test {
 protected:
  DkasanFixture() : machine_(MakeConfig()), dkasan_(machine_.layout()) {
    dkasan_.Attach(machine_.slab());
    dkasan_.Attach(machine_.dma());
    dkasan_.set_dedup(false);
  }

  static core::MachineConfig MakeConfig() {
    core::MachineConfig config;
    config.seed = 99;
    config.iommu.mode = iommu::InvalidationMode::kStrict;
    return config;
  }

  DeviceId AttachDevice() {
    const DeviceId device{42};
    machine_.iommu().AttachDevice(device);
    return device;
  }

  void TearDown() override {
    Status invariants = machine_.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.message();
  }

  core::Machine machine_;
  DKasan dkasan_;
};

TEST_F(DkasanFixture, CleanAllocationsProduceNoReports) {
  auto a = machine_.slab().Kmalloc(512, "clean_a");
  auto b = machine_.slab().Kmalloc(512, "clean_b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(machine_.slab().Kfree(*a).ok());
  ASSERT_TRUE(machine_.slab().Kfree(*b).ok());
  EXPECT_TRUE(dkasan_.reports().empty());
}

TEST_F(DkasanFixture, MapAfterAllocDetected) {
  // An I/O buffer and an unrelated object share a page; mapping the I/O
  // buffer exposes the object.
  const DeviceId device = AttachDevice();
  auto io_buf = machine_.slab().Kmalloc(512, "driver_io_buf");
  auto secret = machine_.slab().Kmalloc(512, "sock_alloc_inode+0x4f/0x120");
  ASSERT_TRUE(io_buf.ok());
  ASSERT_TRUE(secret.ok());
  auto iova = machine_.dma().MapSingle(device, *io_buf, 512,
                                       dma::DmaDirection::kFromDevice, "drv_map");
  ASSERT_TRUE(iova.ok());

  auto reports = dkasan_.ReportsOfKind(ReportKind::kMapAfterAlloc);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kva, *secret);
  EXPECT_EQ(reports[0].site, "sock_alloc_inode+0x4f/0x120");
  EXPECT_EQ(reports[0].rights, iommu::AccessRights::kWrite);
}

TEST_F(DkasanFixture, AllocAfterMapDetected) {
  const DeviceId device = AttachDevice();
  auto io_buf = machine_.slab().Kmalloc(1024, "driver_io_buf");
  ASSERT_TRUE(io_buf.ok());
  auto iova = machine_.dma().MapSingle(device, *io_buf, 1024,
                                       dma::DmaDirection::kBidirectional, "drv_map");
  ASSERT_TRUE(iova.ok());
  // New object lands on the same (mapped) page: same size class.
  auto late = machine_.slab().Kmalloc(1024, "assoc_array_insert+0xa9/0x7e0");
  ASSERT_TRUE(late.ok());

  auto reports = dkasan_.ReportsOfKind(ReportKind::kAllocAfterMap);
  ASSERT_GE(reports.size(), 1u);
  EXPECT_EQ(reports[0].kva, *late);
  EXPECT_EQ(reports[0].rights, iommu::AccessRights::kBidirectional);
}

TEST_F(DkasanFixture, AccessAfterMapDetected) {
  const DeviceId device = AttachDevice();
  auto io_buf = machine_.slab().Kmalloc(2048, "driver_io_buf");
  ASSERT_TRUE(io_buf.ok());
  auto iova = machine_.dma().MapSingle(device, *io_buf, 2048,
                                       dma::DmaDirection::kFromDevice, "drv_map");
  ASSERT_TRUE(iova.ok());
  ASSERT_TRUE(machine_.kmem().WriteU64(*io_buf, 1).ok());

  auto reports = dkasan_.ReportsOfKind(ReportKind::kAccessAfterMap);
  ASSERT_GE(reports.size(), 1u);
  EXPECT_EQ(reports[0].kva, *io_buf);
}

TEST_F(DkasanFixture, MultipleMapDetected) {
  // Figure 3 line 1: a buffer mapped twice — READ and WRITE — merges to
  // [READ, WRITE].
  const DeviceId device = AttachDevice();
  auto buf = machine_.slab().Kmalloc(2048, "__alloc_skb+0xe0/0x3f0");
  ASSERT_TRUE(buf.ok());
  auto a = machine_.dma().MapSingle(device, *buf, 512, dma::DmaDirection::kFromDevice,
                                    "rx_map");
  auto b = machine_.dma().MapSingle(device, *buf + 512, 512, dma::DmaDirection::kToDevice,
                                    "tx_map");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto reports = dkasan_.ReportsOfKind(ReportKind::kMultipleMap);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rights, iommu::AccessRights::kBidirectional);
}

TEST_F(DkasanFixture, UnmapClearsShadow) {
  const DeviceId device = AttachDevice();
  auto buf = machine_.slab().Kmalloc(4096, "driver_io_buf");
  ASSERT_TRUE(buf.ok());
  auto iova = machine_.dma().MapSingle(device, *buf, 4096,
                                       dma::DmaDirection::kFromDevice, "drv_map");
  ASSERT_TRUE(iova.ok());
  ASSERT_TRUE(machine_.dma()
                  .UnmapSingle(device, *iova, 4096, dma::DmaDirection::kFromDevice)
                  .ok());
  dkasan_.ClearReports();
  ASSERT_TRUE(machine_.kmem().WriteU64(*buf, 1).ok());
  auto late = machine_.slab().Kmalloc(4096, "late");
  ASSERT_TRUE(late.ok());
  EXPECT_TRUE(dkasan_.reports().empty());
}

TEST_F(DkasanFixture, ReportLineMatchesFigure3Format) {
  Report report;
  report.kind = ReportKind::kAllocAfterMap;
  report.size = 512;
  report.rights = iommu::AccessRights::kBidirectional;
  report.site = "__alloc_skb+0xe0/0x3f0";
  EXPECT_EQ(report.ToLine(1).substr(0, 45),
            "[1] size 512 [READ, WRITE] __alloc_skb+0xe0/0");
}

TEST_F(DkasanFixture, DedupSuppressesRepeats) {
  dkasan_.set_dedup(true);
  const DeviceId device = AttachDevice();
  for (int i = 0; i < 5; ++i) {
    auto buf = machine_.slab().Kmalloc(2048, "dup_site");
    ASSERT_TRUE(buf.ok());
    auto a = machine_.dma().MapSingle(device, *buf, 256, dma::DmaDirection::kFromDevice,
                                      "map_site");
    auto b = machine_.dma().MapSingle(device, *buf + 1024, 256,
                                      dma::DmaDirection::kFromDevice, "map_site");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
  }
  EXPECT_EQ(dkasan_.count(ReportKind::kMultipleMap), 1u);
}

TEST(DkasanWorkloadTest, RouterWorkloadSurfacesForwardingExposures) {
  core::MachineConfig config;
  config.seed = 17;
  config.net.forwarding_enabled = true;
  core::Machine machine{config};
  DKasan dkasan{machine.layout()};
  dkasan.Attach(machine.slab());
  dkasan.Attach(machine.dma());
  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 16;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  dkasan.Attach(machine.frag_pool(CpuId{0}));

  auto stats = RunRouterWorkload(machine, nic, device, {.iterations = 200});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->rx_packets, 100u);
  EXPECT_GT(stats->tx_packets, 50u);
  // Forwarded frags re-map RX pages for TX: multiple-map findings.
  EXPECT_GT(dkasan.count(ReportKind::kMultipleMap), 0u);
}

TEST(DkasanWorkloadTest, RouterWorkloadRequiresForwarding) {
  core::MachineConfig config;
  config.seed = 18;
  core::Machine machine{config};
  net::NicDriver& nic = machine.AddNicDriver({});
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  EXPECT_FALSE(RunRouterWorkload(machine, nic, device, {}).ok());
}

TEST(DkasanWorkloadTest, StorageWorkloadSurfacesTypeDExposures) {
  core::MachineConfig config;
  config.seed = 19;
  core::Machine machine{config};
  DKasan dkasan{machine.layout()};
  dkasan.Attach(machine.slab());
  dkasan.Attach(machine.dma());

  auto stats = RunStorageWorkload(machine, DeviceId{30}, {.iterations = 300});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->rx_packets, 100u);  // I/Os submitted
  // Filesystem metadata co-located with BIDIRECTIONAL I/O buffers.
  const uint64_t exposures = dkasan.count(ReportKind::kMapAfterAlloc) +
                             dkasan.count(ReportKind::kAllocAfterMap);
  EXPECT_GT(exposures, 0u);
  // The exposed sites include real filesystem metadata.
  bool fs_site = false;
  for (const Report& report : dkasan.reports()) {
    if (report.site.find("inode") != std::string::npos ||
        report.site.find("jbd2") != std::string::npos ||
        report.site.find("d_alloc") != std::string::npos ||
        report.site.find("ext4") != std::string::npos) {
      fs_site = true;
    }
  }
  EXPECT_TRUE(fs_site) << dkasan.FormatReport();
}

TEST(DkasanWorkloadTest, BuildAndPingWorkloadReproducesFigure3) {
  core::MachineConfig config;
  config.seed = 7;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;  // Linux default
  core::Machine machine{config};
  DKasan dkasan{machine.layout()};
  dkasan.Attach(machine.slab());
  dkasan.Attach(machine.dma());

  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 16;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  dkasan.Attach(machine.frag_pool(CpuId{0}));

  auto stats = RunBuildAndPingWorkload(machine, nic, device, {});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->allocs, 100u);
  EXPECT_GT(stats->rx_packets, 10u);
  EXPECT_GT(stats->tx_packets, 5u);

  // The workload must surface random exposures: at minimum access-after-map
  // (drivers parse mapped RX pages) and multiple-map (page_frag co-location).
  EXPECT_GT(dkasan.count(ReportKind::kAccessAfterMap), 0u);
  EXPECT_GT(dkasan.count(ReportKind::kMultipleMap), 0u);
  EXPECT_GT(dkasan.count(ReportKind::kMapAfterAlloc) +
                dkasan.count(ReportKind::kAllocAfterMap),
            0u);

  const std::string text = dkasan.FormatReport();
  EXPECT_NE(text.find("D-KASAN report"), std::string::npos);
  EXPECT_NE(text.find("size"), std::string::npos);
}

}  // namespace
}  // namespace spv::dkasan
