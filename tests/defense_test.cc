// Tests for the defense implementations: the bounce-buffer DMA backend
// (Markuze et al. [47]) and DAMN-style segregated network allocation [49],
// including the §9 caveat that DAMN does not remove skb_shared_info.

#include <gtest/gtest.h>

#include <vector>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "dma/bounce.h"
#include "slab/page_frag.h"

namespace spv {
namespace {

constexpr DeviceId kDev{5};

class BounceFixture : public ::testing::Test {
 protected:
  BounceFixture()
      : machine_(MakeConfig()),
        bounce_(machine_.iommu(), machine_.layout(), machine_.pm(), machine_.page_alloc(),
                machine_.clock()) {
    machine_.iommu().AttachDevice(kDev);
    EXPECT_TRUE(bounce_.AttachDevice(kDev, 8).ok());
  }

  static core::MachineConfig MakeConfig() {
    core::MachineConfig config;
    config.seed = 5150;
    config.iommu.mode = iommu::InvalidationMode::kDeferred;  // worst case for zero-copy
    return config;
  }

  void TearDown() override {
    Status invariants = machine_.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.message();
  }

  core::Machine machine_;
  dma::BounceDma bounce_;
};

TEST_F(BounceFixture, ToDeviceCopiesDataIn) {
  Kva buf = *machine_.slab().Kmalloc(512, "tx");
  ASSERT_TRUE(machine_.kmem().Fill(buf, 512, 0x5a).ok());
  auto iova = bounce_.MapSingle(kDev, buf, 512, dma::DmaDirection::kToDevice);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> read(512);
  ASSERT_TRUE(machine_.iommu().DeviceRead(kDev, *iova, std::span<uint8_t>(read)).ok());
  for (uint8_t b : read) {
    EXPECT_EQ(b, 0x5a);
  }
  EXPECT_GE(bounce_.copies(), 1u);
}

TEST_F(BounceFixture, FromDeviceCopiesBackOnUnmap) {
  Kva buf = *machine_.slab().Kmalloc(256, "rx");
  auto iova = bounce_.MapSingle(kDev, buf, 256, dma::DmaDirection::kFromDevice);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> packet(256, 0x77);
  ASSERT_TRUE(machine_.iommu().DeviceWrite(kDev, *iova, packet).ok());
  // Not visible in the real buffer until ownership returns at unmap.
  EXPECT_EQ(*machine_.kmem().ReadU8(buf), 0x00);
  ASSERT_TRUE(bounce_.UnmapSingle(kDev, *iova, 256, dma::DmaDirection::kFromDevice).ok());
  EXPECT_EQ(*machine_.kmem().ReadU8(buf), 0x77);
  EXPECT_EQ(*machine_.kmem().ReadU8(buf + 255), 0x77);
}

TEST_F(BounceFixture, SubPageVulnerabilityEliminated) {
  // A secret shares the page with the mapped buffer — through the bounce
  // backend the device sees only the buffer bytes, never the neighbours.
  Kva buf = *machine_.slab().Kmalloc(512, "io");
  Kva secret = *machine_.slab().Kmalloc(512, "keys");
  ASSERT_EQ(buf.PageBase(), secret.PageBase());
  ASSERT_TRUE(machine_.kmem().WriteU64(secret, 0x5ec2e7).ok());
  ASSERT_TRUE(machine_.kmem().Fill(buf, 512, 0x11).ok());

  auto iova = bounce_.MapSingle(kDev, buf, 512, dma::DmaDirection::kBidirectional);
  ASSERT_TRUE(iova.ok());
  // Scan the whole device-visible page: buffer bytes + zeros, nothing else.
  std::vector<uint8_t> page(kPageSize);
  ASSERT_TRUE(
      machine_.iommu().DeviceRead(kDev, iova->PageBase(), std::span<uint8_t>(page)).ok());
  for (uint64_t off = 0; off < kPageSize; ++off) {
    if (off < 512) {
      EXPECT_EQ(page[off], 0x11);
    } else {
      ASSERT_EQ(page[off], 0x00) << "leak at bounce page offset " << off;
    }
  }
}

TEST_F(BounceFixture, NoStaleWindowOnKernelData) {
  // After unmap the device can still write the (statically mapped) bounce
  // page — but the kernel buffer is untouched: containment, not revocation.
  Kva buf = *machine_.slab().Kmalloc(128, "io");
  auto iova = bounce_.MapSingle(kDev, buf, 128, dma::DmaDirection::kFromDevice);
  ASSERT_TRUE(iova.ok());
  ASSERT_TRUE(bounce_.UnmapSingle(kDev, *iova, 128, dma::DmaDirection::kFromDevice).ok());
  std::vector<uint8_t> garbage(64, 0xff);
  EXPECT_TRUE(machine_.iommu().DeviceWrite(kDev, *iova, garbage).ok());
  EXPECT_EQ(*machine_.kmem().ReadU8(buf), 0x00);  // kernel data unaffected
}

TEST_F(BounceFixture, NoInvalidationTrafficOnIoPath) {
  Kva buf = *machine_.slab().Kmalloc(256, "io");
  const uint64_t inval_before = machine_.iommu().stats().invalidation_cycles;
  for (int i = 0; i < 50; ++i) {
    auto iova = bounce_.MapSingle(kDev, buf, 256, dma::DmaDirection::kBidirectional);
    ASSERT_TRUE(iova.ok());
    ASSERT_TRUE(
        bounce_.UnmapSingle(kDev, *iova, 256, dma::DmaDirection::kBidirectional).ok());
  }
  EXPECT_EQ(machine_.iommu().stats().invalidation_cycles, inval_before);
}

TEST_F(BounceFixture, PoolExhaustionAndValidation) {
  Kva buf = *machine_.slab().Kmalloc(64, "io");
  std::vector<Iova> held;
  for (int i = 0; i < 8; ++i) {
    auto iova = bounce_.MapSingle(kDev, buf, 64, dma::DmaDirection::kToDevice);
    ASSERT_TRUE(iova.ok());
    held.push_back(*iova);
  }
  EXPECT_EQ(bounce_.MapSingle(kDev, buf, 64, dma::DmaDirection::kToDevice).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(bounce_.MapSingle(kDev, buf, 8192, dma::DmaDirection::kToDevice).ok());
  EXPECT_FALSE(bounce_.UnmapSingle(kDev, held[0], 99, dma::DmaDirection::kToDevice).ok());
  ASSERT_TRUE(bounce_.UnmapSingle(kDev, held[0], 64, dma::DmaDirection::kToDevice).ok());
}

// ---- DAMN ------------------------------------------------------------------------

class DamnFixture : public ::testing::Test {
 protected:
  DamnFixture() : machine_(MakeConfig()) {
    damn_pool_ = std::make_unique<slab::PageFragPool>(
        machine_.page_db(), machine_.page_alloc(), machine_.layout(),
        net::SkbAllocator::kDamnPoolCpu);
    machine_.skb_alloc().set_damn_pool(damn_pool_.get());
  }

  static core::MachineConfig MakeConfig() {
    core::MachineConfig config;
    config.seed = 4949;
    config.iommu.mode = iommu::InvalidationMode::kDeferred;
    return config;
  }

  void TearDown() override {
    Status invariants = machine_.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.message();
  }

  core::Machine machine_;
  std::unique_ptr<slab::PageFragPool> damn_pool_;
};

TEST_F(DamnFixture, TxBuffersComeFromDedicatedRegion) {
  auto skb = machine_.skb_alloc().AllocSkb(300, "tcp_sendmsg");
  ASSERT_TRUE(skb.ok());
  EXPECT_EQ((*skb)->linear.source, net::BufSource::kPageFrag);
  EXPECT_EQ((*skb)->linear.cpu, net::SkbAllocator::kDamnPoolCpu);
  // The page holds no kmalloc objects — nothing to leak.
  auto pfn = machine_.layout().DirectMapKvaToPhys((*skb)->head)->pfn();
  EXPECT_TRUE(machine_.slab().ObjectsOnPage(pfn).empty());
  EXPECT_EQ(machine_.page_db().Get(pfn).owner, mem::PageOwner::kPageFrag);
  ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(*skb), nullptr).ok());
}

TEST_F(DamnFixture, PoisonedTxBlockedAtKaslrBootstrap) {
  // With sockets and TX buffers segregated, the echo leaks no init_net
  // pointer: attribute (1) is unobtainable and the attack dies early.
  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 32;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine_.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine_.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  machine_.stack().set_egress(&nic);
  attack::MiniCpu cpu{machine_.kmem(), machine_.layout()};
  machine_.stack().set_callback_invoker(&cpu);
  ASSERT_TRUE(machine_.stack().CreateSocket(7, true).ok());
  ASSERT_TRUE(nic.FillRxRing().ok());

  attack::AttackEnv env{machine_, nic, device, cpu};
  auto report = attack::PoisonedTxAttack::Run(env, {});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->success);
  EXPECT_FALSE(report->kaslr.text_base.has_value()) << report->kaslr.ToString();
  EXPECT_FALSE(cpu.privilege_escalated());
}

TEST_F(DamnFixture, SharedInfoStillExposedDespiteDamn) {
  // §9: DAMN segregates memory but skb_shared_info is still built inside the
  // I/O buffer — the type (b) exposure survives.
  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 4;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine_.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine_.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  ASSERT_TRUE(nic.FillRxRing().ok());
  const auto descriptor = device.rx_posted().front();
  const uint64_t shinfo_off = attack::SharedInfoOffset(nic.rx_buffer_bytes());
  std::vector<uint8_t> poison(8, 0xee);
  EXPECT_TRUE(device.port()
                  .Write(descriptor.iova + shinfo_off + net::SharedInfoLayout::kDestructorArg,
                         poison)
                  .ok());
}

}  // namespace
}  // namespace spv
