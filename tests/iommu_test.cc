// Tests for the IOMMU module: page tables, IOTLB, IOVA allocation, and the
// strict/deferred invalidation semantics at the heart of §5.2.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "base/clock.h"
#include "base/rng.h"
#include "iommu/access_rights.h"
#include "iommu/io_page_table.h"
#include "iommu/iommu.h"
#include "iommu/iotlb.h"
#include "iommu/iova_allocator.h"
#include "mem/phys_memory.h"

namespace spv::iommu {
namespace {

constexpr DeviceId kNic{1};
constexpr DeviceId kFirewire{2};

// ---- AccessRights -------------------------------------------------------------

TEST(AccessRightsTest, WriteDoesNotImplyRead) {
  EXPECT_TRUE(Permits(AccessRights::kWrite, AccessOp::kWrite));
  EXPECT_FALSE(Permits(AccessRights::kWrite, AccessOp::kRead));
  EXPECT_TRUE(Permits(AccessRights::kRead, AccessOp::kRead));
  EXPECT_FALSE(Permits(AccessRights::kRead, AccessOp::kWrite));
  EXPECT_TRUE(Permits(AccessRights::kBidirectional, AccessOp::kRead));
  EXPECT_TRUE(Permits(AccessRights::kBidirectional, AccessOp::kWrite));
  EXPECT_FALSE(Permits(AccessRights::kNone, AccessOp::kRead));
}

TEST(AccessRightsTest, OrComposes) {
  EXPECT_EQ(AccessRights::kRead | AccessRights::kWrite, AccessRights::kBidirectional);
}

// ---- IoPageTable ----------------------------------------------------------------

TEST(IoPageTableTest, MapLookupUnmap) {
  IoPageTable table;
  Iova iova{0xfffff000};
  ASSERT_TRUE(table.Map(iova, Pfn{42}, AccessRights::kRead).ok());
  auto entry = table.Lookup(iova);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->pfn.value, 42u);
  EXPECT_EQ(entry->rights, AccessRights::kRead);
  auto removed = table.Unmap(iova);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->pfn.value, 42u);
  EXPECT_FALSE(table.Lookup(iova).has_value());
}

TEST(IoPageTableTest, DoubleMapRejected) {
  IoPageTable table;
  Iova iova{0x1000};
  ASSERT_TRUE(table.Map(iova, Pfn{1}, AccessRights::kWrite).ok());
  EXPECT_EQ(table.Map(iova, Pfn{2}, AccessRights::kWrite).code(), StatusCode::kAlreadyExists);
}

TEST(IoPageTableTest, UnmapOfUnmappedRejected) {
  IoPageTable table;
  EXPECT_FALSE(table.Unmap(Iova{0x1000}).ok());
  ASSERT_TRUE(table.Map(Iova{0x1000}, Pfn{1}, AccessRights::kRead).ok());
  EXPECT_FALSE(table.Unmap(Iova{0x2000}).ok());
}

TEST(IoPageTableTest, MapWithNoRightsRejected) {
  IoPageTable table;
  EXPECT_FALSE(table.Map(Iova{0x1000}, Pfn{1}, AccessRights::kNone).ok());
}

TEST(IoPageTableTest, DistantIovasDoNotCollide) {
  IoPageTable table;
  // Same level-0 index, different upper levels.
  Iova a{0x1000};
  Iova b{0x1000 + (1ull << 21)};
  Iova c{0x1000 + (1ull << 30)};
  Iova d{0x1000 + (1ull << 39)};
  for (auto [iova, pfn] : {std::pair{a, 1ull}, {b, 2ull}, {c, 3ull}, {d, 4ull}}) {
    ASSERT_TRUE(table.Map(iova, Pfn{pfn}, AccessRights::kRead).ok());
  }
  EXPECT_EQ(table.Lookup(a)->pfn.value, 1u);
  EXPECT_EQ(table.Lookup(b)->pfn.value, 2u);
  EXPECT_EQ(table.Lookup(c)->pfn.value, 3u);
  EXPECT_EQ(table.Lookup(d)->pfn.value, 4u);
  EXPECT_EQ(table.mapped_pages(), 4u);
}

TEST(IoPageTableTest, FindIovasForPfnFindsAllAliases) {
  IoPageTable table;
  ASSERT_TRUE(table.Map(Iova{0x10000}, Pfn{7}, AccessRights::kRead).ok());
  ASSERT_TRUE(table.Map(Iova{0x20000}, Pfn{7}, AccessRights::kWrite).ok());
  ASSERT_TRUE(table.Map(Iova{0x30000}, Pfn{8}, AccessRights::kRead).ok());
  auto aliases = table.FindIovasForPfn(Pfn{7});
  std::set<uint64_t> values;
  for (Iova iova : aliases) {
    values.insert(iova.value);
  }
  EXPECT_EQ(values, (std::set<uint64_t>{0x10000, 0x20000}));
}

TEST(IoPageTableTest, LookupReportsWalkDepth) {
  IoPageTable table;
  ASSERT_TRUE(table.Map(Iova{0x5000}, Pfn{1}, AccessRights::kRead).ok());
  int levels = 0;
  ASSERT_TRUE(table.Lookup(Iova{0x5000}, &levels).has_value());
  EXPECT_EQ(levels, IoPageTable::kLevels);
}

// ---- Iotlb -----------------------------------------------------------------------

TEST(IotlbTest, InsertLookupInvalidate) {
  Iotlb tlb{16};
  EXPECT_FALSE(tlb.Lookup(kNic, Iova{0x1000}).has_value());
  tlb.Insert(kNic, Iova{0x1000}, PteEntry{Pfn{5}, AccessRights::kWrite});
  auto hit = tlb.Lookup(kNic, Iova{0x1000});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pfn.value, 5u);
  tlb.InvalidatePage(kNic, Iova{0x1000});
  EXPECT_FALSE(tlb.Lookup(kNic, Iova{0x1000}).has_value());
}

TEST(IotlbTest, EntriesAreDeviceScoped) {
  Iotlb tlb{16};
  tlb.Insert(kNic, Iova{0x1000}, PteEntry{Pfn{5}, AccessRights::kWrite});
  EXPECT_FALSE(tlb.Lookup(kFirewire, Iova{0x1000}).has_value());
}

TEST(IotlbTest, SubPageOffsetsShareEntry) {
  Iotlb tlb{16};
  tlb.Insert(kNic, Iova{0x1000}, PteEntry{Pfn{5}, AccessRights::kRead});
  EXPECT_TRUE(tlb.Lookup(kNic, Iova{0x1abc}).has_value());
}

TEST(IotlbTest, LruEvictionAtCapacity) {
  Iotlb tlb{4};
  for (uint64_t i = 0; i < 4; ++i) {
    tlb.Insert(kNic, Iova{i << kPageShift}, PteEntry{Pfn{i}, AccessRights::kRead});
  }
  // Touch entry 0 so entry 1 is the LRU victim.
  EXPECT_TRUE(tlb.Lookup(kNic, Iova{0}).has_value());
  tlb.Insert(kNic, Iova{4ull << kPageShift}, PteEntry{Pfn{4}, AccessRights::kRead});
  EXPECT_TRUE(tlb.Lookup(kNic, Iova{0}).has_value());
  EXPECT_FALSE(tlb.Lookup(kNic, Iova{1ull << kPageShift}).has_value());
  EXPECT_EQ(tlb.size(), 4u);
}

TEST(IotlbTest, InvalidateDeviceLeavesOthers) {
  Iotlb tlb{16};
  tlb.Insert(kNic, Iova{0x1000}, PteEntry{Pfn{1}, AccessRights::kRead});
  tlb.Insert(kFirewire, Iova{0x2000}, PteEntry{Pfn{2}, AccessRights::kRead});
  tlb.InvalidateDevice(kNic);
  EXPECT_FALSE(tlb.Lookup(kNic, Iova{0x1000}).has_value());
  EXPECT_TRUE(tlb.Lookup(kFirewire, Iova{0x2000}).has_value());
}

TEST(IotlbTest, InvalidateAllEmptiesCache) {
  Iotlb tlb{16};
  tlb.Insert(kNic, Iova{0x1000}, PteEntry{Pfn{1}, AccessRights::kRead});
  tlb.Insert(kFirewire, Iova{0x2000}, PteEntry{Pfn{2}, AccessRights::kRead});
  tlb.InvalidateAll();
  EXPECT_EQ(tlb.size(), 0u);
}

TEST(IotlbTest, StatsTrackHitsAndMisses) {
  Iotlb tlb{16};
  (void)tlb.Lookup(kNic, Iova{0x1000});
  tlb.Insert(kNic, Iova{0x1000}, PteEntry{Pfn{1}, AccessRights::kRead});
  (void)tlb.Lookup(kNic, Iova{0x1000});
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

// ---- IovaAllocator ------------------------------------------------------------------

TEST(IovaAllocatorTest, AllocatesTopDownPageAligned) {
  IovaAllocator alloc;
  auto a = alloc.Alloc(1);
  auto b = alloc.Alloc(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->page_offset(), 0u);
  EXPECT_LT(b->value, a->value);
  EXPECT_EQ(*a - *b, kPageSize);
}

TEST(IovaAllocatorTest, RangesAreContiguousAndDisjoint) {
  IovaAllocator alloc;
  auto a = alloc.Alloc(4);
  auto b = alloc.Alloc(4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a - *b, 4 * kPageSize);
}

TEST(IovaAllocatorTest, FreedRangeIsReused) {
  IovaAllocator alloc;
  auto a = alloc.Alloc(2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc.Free(*a, 2).ok());
  auto b = alloc.Alloc(2);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->value, a->value);
}

TEST(IovaAllocatorTest, DoubleFreeRejected) {
  IovaAllocator alloc;
  auto a = alloc.Alloc(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc.Free(*a, 1).ok());
  EXPECT_FALSE(alloc.Free(*a, 1).ok());
}

TEST(IovaAllocatorTest, ExhaustionReported) {
  IovaAllocator alloc{0, 4 * kPageSize};
  ASSERT_TRUE(alloc.Alloc(4).ok());
  EXPECT_EQ(alloc.Alloc(1).status().code(), StatusCode::kResourceExhausted);
}

TEST(IovaAllocatorTest, ZeroPagesRejected) {
  IovaAllocator alloc;
  EXPECT_FALSE(alloc.Alloc(0).ok());
  EXPECT_FALSE(alloc.Free(Iova{0x100000}, 0).ok());
}

// ---- Iommu end-to-end -----------------------------------------------------------------

class IommuTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kPages = 256;

  IommuTest() : pm_(kPages) {}

  // Iommu is pinned in place (it owns engageable mutexes), so the fixture
  // keeps each instance alive and hands out references.
  Iommu& MakeIommu(InvalidationMode mode, Iommu::Config extra = {}) {
    Iommu::Config config = extra;
    config.mode = mode;
    iommus_.push_back(std::make_unique<Iommu>(pm_, clock_, config));
    Iommu& iommu = *iommus_.back();
    iommu.AttachDevice(kNic);
    iommu.AttachDevice(kFirewire);
    return iommu;
  }

  std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> list) { return {list}; }

  mem::PhysicalMemory pm_;
  SimClock clock_;
  std::vector<std::unique_ptr<Iommu>> iommus_;
};

TEST_F(IommuTest, MappedPageIsAccessible) {
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  auto iova = iommu.MapPage(kNic, Pfn{10}, AccessRights::kBidirectional);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> data{1, 2, 3, 4};
  ASSERT_TRUE(iommu.DeviceWrite(kNic, *iova + 100, data).ok());
  std::vector<uint8_t> back(4);
  ASSERT_TRUE(iommu.DeviceRead(kNic, *iova + 100, std::span<uint8_t>(back)).ok());
  EXPECT_EQ(back, data);
  // The bytes really landed in simulated physical memory.
  EXPECT_EQ(*pm_.ReadU8(PhysAddr::FromPfn(Pfn{10}, 100)), 1);
}

TEST_F(IommuTest, UnmappedIovaFaults) {
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  std::vector<uint8_t> buf(8);
  Status s = iommu.DeviceRead(kNic, Iova{0x7000}, std::span<uint8_t>(buf));
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  ASSERT_EQ(iommu.faults().size(), 1u);
  EXPECT_EQ(iommu.faults()[0].reason, "translation not present");
}

TEST_F(IommuTest, RightsEnforced) {
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  auto ro = iommu.MapPage(kNic, Pfn{11}, AccessRights::kRead);
  auto wo = iommu.MapPage(kNic, Pfn{12}, AccessRights::kWrite);
  ASSERT_TRUE(ro.ok());
  ASSERT_TRUE(wo.ok());
  std::vector<uint8_t> buf(4);
  EXPECT_TRUE(iommu.DeviceRead(kNic, *ro, std::span<uint8_t>(buf)).ok());
  EXPECT_FALSE(iommu.DeviceWrite(kNic, *ro, buf).ok());
  EXPECT_TRUE(iommu.DeviceWrite(kNic, *wo, buf).ok());
  EXPECT_FALSE(iommu.DeviceRead(kNic, *wo, std::span<uint8_t>(buf)).ok());
}

TEST_F(IommuTest, SubPageExposure) {
  // The defining flaw: mapping a 100-byte buffer exposes the whole page.
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  ASSERT_TRUE(pm_.WriteU64(PhysAddr::FromPfn(Pfn{13}, 3000), 0xfeedface).ok());
  auto iova = iommu.MapPage(kNic, Pfn{13}, AccessRights::kBidirectional);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> buf(8);
  ASSERT_TRUE(iommu.DeviceRead(kNic, *iova + 3000, std::span<uint8_t>(buf)).ok());
  uint64_t leaked;
  std::memcpy(&leaked, buf.data(), 8);
  EXPECT_EQ(leaked, 0xfeedfaceu);
}

TEST_F(IommuTest, DevicesAreIsolated) {
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  auto iova = iommu.MapPage(kNic, Pfn{14}, AccessRights::kBidirectional);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> buf(4);
  EXPECT_FALSE(iommu.DeviceRead(kFirewire, *iova, std::span<uint8_t>(buf)).ok());
}

TEST_F(IommuTest, UnattachedDeviceRejected) {
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  EXPECT_FALSE(iommu.MapPage(DeviceId{99}, Pfn{1}, AccessRights::kRead).ok());
}

TEST_F(IommuTest, MultiPageAccessCrossesBoundaries) {
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  const Pfn pfns[] = {Pfn{20}, Pfn{30}};  // discontiguous physical pages
  auto iova = iommu.MapRange(kNic, pfns, AccessRights::kBidirectional);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> data(100, 0x5a);
  ASSERT_TRUE(iommu.DeviceWrite(kNic, *iova + kPageSize - 50, data).ok());
  EXPECT_EQ(*pm_.ReadU8(PhysAddr::FromPfn(Pfn{20}, kPageSize - 1)), 0x5a);
  EXPECT_EQ(*pm_.ReadU8(PhysAddr::FromPfn(Pfn{30}, 49)), 0x5a);
  EXPECT_EQ(*pm_.ReadU8(PhysAddr::FromPfn(Pfn{30}, 50)), 0x00);
}

TEST_F(IommuTest, StrictUnmapRevokesImmediately) {
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  auto iova = iommu.MapPage(kNic, Pfn{15}, AccessRights::kBidirectional);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> buf(4);
  ASSERT_TRUE(iommu.DeviceRead(kNic, *iova, std::span<uint8_t>(buf)).ok());  // warm the IOTLB
  ASSERT_TRUE(iommu.UnmapPage(kNic, *iova).ok());
  EXPECT_FALSE(iommu.DeviceRead(kNic, *iova, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(iommu.stats().stale_iotlb_accesses, 0u);
}

TEST_F(IommuTest, DeferredUnmapLeavesStaleWindow) {
  // Figure 6: after a deferred unmap, a device with a warm IOTLB entry keeps
  // access until the periodic flush.
  Iommu& iommu = MakeIommu(InvalidationMode::kDeferred);
  auto iova = iommu.MapPage(kNic, Pfn{16}, AccessRights::kBidirectional);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> buf(4, 0xaa);
  ASSERT_TRUE(iommu.DeviceWrite(kNic, *iova, buf).ok());  // warm the IOTLB
  ASSERT_TRUE(iommu.UnmapPage(kNic, *iova).ok());

  // PTE is gone...
  EXPECT_FALSE(iommu.Peek(kNic, *iova).has_value());
  // ...but the device can still write through the stale IOTLB entry.
  EXPECT_TRUE(iommu.DeviceWrite(kNic, *iova, buf).ok());
  EXPECT_GE(iommu.stats().stale_iotlb_accesses, 1u);

  // After the 10 ms deadline passes, the flush closes the window.
  clock_.AdvanceUs(10 * 1000 + 1);
  iommu.ProcessDeferredTimer();
  EXPECT_FALSE(iommu.DeviceWrite(kNic, *iova, buf).ok());
}

TEST_F(IommuTest, DeferredWindowClosedForColdIotlb) {
  // No stale entry -> no window: a device that never touched the buffer
  // cannot exploit deferral.
  Iommu& iommu = MakeIommu(InvalidationMode::kDeferred);
  auto iova = iommu.MapPage(kNic, Pfn{17}, AccessRights::kBidirectional);
  ASSERT_TRUE(iova.ok());
  ASSERT_TRUE(iommu.UnmapPage(kNic, *iova).ok());
  std::vector<uint8_t> buf(4);
  EXPECT_FALSE(iommu.DeviceRead(kNic, *iova, std::span<uint8_t>(buf)).ok());
}

TEST_F(IommuTest, FlushQueueCapacityForcesFlush) {
  Iommu::Config config;
  config.flush_queue_capacity = 4;
  Iommu& iommu = MakeIommu(InvalidationMode::kDeferred, config);
  std::vector<Iova> iovas;
  std::vector<uint8_t> buf(1);
  for (int i = 0; i < 4; ++i) {
    auto iova = iommu.MapPage(kNic, Pfn{static_cast<uint64_t>(40 + i)},
                              AccessRights::kBidirectional);
    ASSERT_TRUE(iova.ok());
    ASSERT_TRUE(iommu.DeviceRead(kNic, *iova, std::span<uint8_t>(buf)).ok());
    iovas.push_back(*iova);
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(iommu.UnmapPage(kNic, iovas[i]).ok());
  }
  // Window still open on the third unmapped page.
  EXPECT_TRUE(iommu.DeviceRead(kNic, iovas[2], std::span<uint8_t>(buf)).ok());
  // Fourth unmap fills the queue -> global flush -> all windows closed.
  ASSERT_TRUE(iommu.UnmapPage(kNic, iovas[3]).ok());
  EXPECT_EQ(iommu.pending_invalidation_count(), 0u);
  for (const Iova iova : iovas) {
    EXPECT_FALSE(iommu.DeviceRead(kNic, iova, std::span<uint8_t>(buf)).ok());
  }
  EXPECT_EQ(iommu.stats().flushes, 1u);
}

TEST_F(IommuTest, StrictCostsMoreInvalidationCyclesPerUnmap) {
  Iommu& strict = MakeIommu(InvalidationMode::kStrict);
  Iommu& deferred = MakeIommu(InvalidationMode::kDeferred);
  constexpr int kOps = 100;
  for (auto* iommu : {&strict, &deferred}) {
    for (int i = 0; i < kOps; ++i) {
      auto iova = iommu->MapPage(kNic, Pfn{static_cast<uint64_t>(i % 64)},
                                 AccessRights::kRead);
      ASSERT_TRUE(iova.ok());
      ASSERT_TRUE(iommu->UnmapPage(kNic, *iova).ok());
    }
  }
  EXPECT_EQ(strict.stats().invalidation_cycles,
            kOps * kIotlbInvalidationCycles);
  // Deferred amortizes: nothing flushed yet within the window.
  EXPECT_LT(deferred.stats().invalidation_cycles, strict.stats().invalidation_cycles / 10);
}

TEST_F(IommuTest, DeferredIovaNotReusedBeforeFlush) {
  // The parked IOVA must not be handed to a new mapping while a stale IOTLB
  // entry could still translate it.
  Iommu& iommu = MakeIommu(InvalidationMode::kDeferred);
  auto a = iommu.MapPage(kNic, Pfn{50}, AccessRights::kRead);
  ASSERT_TRUE(a.ok());
  std::vector<uint8_t> buf(1);
  ASSERT_TRUE(iommu.DeviceRead(kNic, *a, std::span<uint8_t>(buf)).ok());
  ASSERT_TRUE(iommu.UnmapPage(kNic, *a).ok());
  auto b = iommu.MapPage(kNic, Pfn{51}, AccessRights::kRead);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(b->value, a->value);
  // After the flush the IOVA may be recycled.
  iommu.FlushNow();
  auto c = iommu.MapPage(kNic, Pfn{52}, AccessRights::kRead);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->value, a->value);
}

TEST_F(IommuTest, TypeCAliasProbe) {
  // Two mappings of the same PFN -> two live IOVAs (type (c)); unmapping one
  // leaves the device full access through the other.
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  auto a = iommu.MapPage(kNic, Pfn{60}, AccessRights::kWrite);
  auto b = iommu.MapPage(kNic, Pfn{60}, AccessRights::kWrite);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(iommu.IovasForPfn(kNic, Pfn{60}).size(), 2u);
  ASSERT_TRUE(iommu.UnmapPage(kNic, *a).ok());
  std::vector<uint8_t> buf(4, 0x42);
  EXPECT_FALSE(iommu.DeviceWrite(kNic, *a, buf).ok());
  EXPECT_TRUE(iommu.DeviceWrite(kNic, *b, buf).ok());  // alias still valid (strict mode!)
  EXPECT_EQ(iommu.IovasForPfn(kNic, Pfn{60}).size(), 1u);
}

TEST_F(IommuTest, PeekHasNoSideEffects) {
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  auto iova = iommu.MapPage(kNic, Pfn{61}, AccessRights::kRead);
  ASSERT_TRUE(iova.ok());
  const uint64_t misses_before = iommu.iotlb().misses();
  auto pte = iommu.Peek(kNic, *iova);
  ASSERT_TRUE(pte.has_value());
  EXPECT_EQ(pte->pfn.value, 61u);
  EXPECT_EQ(iommu.iotlb().misses(), misses_before);
  EXPECT_TRUE(iommu.faults().empty());
}

// Parameterized: the stale window exists in deferred mode and not in strict
// mode, across a sweep of flush intervals.
struct WindowParam {
  InvalidationMode mode;
  uint64_t interval_ms;
  bool expect_window;
};

class StaleWindowTest : public ::testing::TestWithParam<WindowParam> {};

TEST_P(StaleWindowTest, WindowMatchesMode) {
  const WindowParam param = GetParam();
  mem::PhysicalMemory pm{64};
  SimClock clock;
  Iommu::Config config;
  config.mode = param.mode;
  config.flush_interval_cycles = SimClock::MsToCycles(param.interval_ms);
  Iommu iommu{pm, clock, config};
  iommu.AttachDevice(kNic);

  auto iova = iommu.MapPage(kNic, Pfn{5}, AccessRights::kBidirectional);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> buf(4);
  ASSERT_TRUE(iommu.DeviceRead(kNic, *iova, std::span<uint8_t>(buf)).ok());
  ASSERT_TRUE(iommu.UnmapPage(kNic, *iova).ok());

  const bool window_open = iommu.DeviceRead(kNic, *iova, std::span<uint8_t>(buf)).ok();
  EXPECT_EQ(window_open, param.expect_window);

  if (param.expect_window) {
    clock.AdvanceUs(param.interval_ms * 1000 + 1);
    iommu.ProcessDeferredTimer();
    EXPECT_FALSE(iommu.DeviceRead(kNic, *iova, std::span<uint8_t>(buf)).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndIntervals, StaleWindowTest,
    ::testing::Values(WindowParam{InvalidationMode::kStrict, 10, false},
                      WindowParam{InvalidationMode::kDeferred, 1, true},
                      WindowParam{InvalidationMode::kDeferred, 10, true},
                      WindowParam{InvalidationMode::kDeferred, 100, true}));

// ---- IOMMU domains: the §6 shared-page-table testbed ----------------------------

TEST_F(IommuTest, SharedDomainGrantsCrossDeviceAccess) {
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  ASSERT_TRUE(iommu.AttachDeviceToDomainOf(kFirewire, kNic).code() ==
              StatusCode::kAlreadyExists);  // kFirewire already has its own domain
  const DeviceId firewire2{7};
  ASSERT_TRUE(iommu.AttachDeviceToDomainOf(firewire2, kNic).ok());
  EXPECT_TRUE(iommu.SameDomain(firewire2, kNic));
  EXPECT_FALSE(iommu.SameDomain(kFirewire, kNic));

  // A mapping created for the NIC is usable by its domain-mate...
  auto iova = iommu.MapPage(kNic, Pfn{21}, AccessRights::kBidirectional);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> data(8, 0x42);
  EXPECT_TRUE(iommu.DeviceWrite(firewire2, *iova, data).ok());
  // ...but not by a device in a different domain.
  EXPECT_FALSE(iommu.DeviceWrite(kFirewire, *iova, data).ok());
}

TEST_F(IommuTest, SharedDomainSharesStaleIotlbWindow) {
  // Deferred mode: the NIC warms the translation; after unmap, the FireWire
  // device in the same domain rides the same stale entry (domain-tagged
  // IOTLB, as on VT-d).
  Iommu& iommu = MakeIommu(InvalidationMode::kDeferred);
  const DeviceId firewire2{7};
  ASSERT_TRUE(iommu.AttachDeviceToDomainOf(firewire2, kNic).ok());
  auto iova = iommu.MapPage(kNic, Pfn{22}, AccessRights::kBidirectional);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> data(8, 1);
  ASSERT_TRUE(iommu.DeviceWrite(kNic, *iova, data).ok());  // NIC warms the IOTLB
  ASSERT_TRUE(iommu.UnmapPage(kNic, *iova).ok());
  EXPECT_TRUE(iommu.DeviceWrite(firewire2, *iova, data).ok());  // FW uses the window
}

TEST_F(IommuTest, UnattachedDomainOwnerRejected) {
  Iommu& iommu = MakeIommu(InvalidationMode::kStrict);
  EXPECT_FALSE(iommu.AttachDeviceToDomainOf(DeviceId{50}, DeviceId{51}).ok());
}

// ---- Bypass (no-IOMMU) mode: the §2.1 classic-DMA-attack baseline --------------

class BypassTest : public ::testing::Test {
 protected:
  BypassTest() : pm_(64), iommu_(pm_, clock_, {.enabled = false}) {
    iommu_.AttachDevice(kNic);
  }
  mem::PhysicalMemory pm_;
  SimClock clock_;
  Iommu iommu_;
};

TEST_F(BypassTest, MapReturnsPhysicalAddressIdentity) {
  auto iova = iommu_.MapPage(kNic, Pfn{7}, AccessRights::kRead);
  ASSERT_TRUE(iova.ok());
  EXPECT_EQ(iova->value, 7ull << kPageShift);
}

TEST_F(BypassTest, DeviceReadsArbitraryPhysicalMemory) {
  // The Inception/FinFireWire scenario: no mapping exists, yet the device
  // dumps any page it names.
  ASSERT_TRUE(pm_.WriteU64(PhysAddr::FromPfn(Pfn{3}, 0x10), 0x5ec2e7).ok());
  std::vector<uint8_t> buf(8);
  ASSERT_TRUE(iommu_.DeviceRead(kNic, Iova{(3ull << kPageShift) + 0x10},
                                std::span<uint8_t>(buf))
                  .ok());
  uint64_t value;
  std::memcpy(&value, buf.data(), 8);
  EXPECT_EQ(value, 0x5ec2e7u);
  EXPECT_TRUE(iommu_.faults().empty());
}

TEST_F(BypassTest, DeviceWritesKernelMemoryUnchecked) {
  std::vector<uint8_t> patch(8, 0x90);  // "patch the OS code" (§2.1)
  EXPECT_TRUE(iommu_.DeviceWrite(kNic, Iova{0x1000}, patch).ok());
  EXPECT_EQ(*pm_.ReadU8(PhysAddr{0x1000}), 0x90);
}

TEST_F(BypassTest, UnmapIsANoop) {
  auto iova = iommu_.MapPage(kNic, Pfn{5}, AccessRights::kWrite);
  ASSERT_TRUE(iova.ok());
  ASSERT_TRUE(iommu_.UnmapPage(kNic, *iova).ok());
  std::vector<uint8_t> buf(4, 1);
  EXPECT_TRUE(iommu_.DeviceWrite(kNic, *iova, buf).ok());  // access never revoked
}

// ---- Randomized differential test vs a trivial reference model -------------------

TEST(IommuFuzzTest, MatchesReferenceModelUnderRandomOps) {
  mem::PhysicalMemory pm{512};
  SimClock clock;
  Iommu iommu{pm, clock, {.mode = InvalidationMode::kStrict}};
  iommu.AttachDevice(kNic);
  Xoshiro256 rng{20210426};

  struct Ref {
    Pfn pfn;
    AccessRights rights;
  };
  std::map<uint64_t, Ref> reference;  // iova page -> entry
  std::vector<Iova> live;

  for (int step = 0; step < 3000; ++step) {
    const uint64_t dice = rng.NextBelow(10);
    if (dice < 4) {  // map
      const Pfn pfn{rng.NextBelow(512)};
      const AccessRights rights = static_cast<AccessRights>(1 + rng.NextBelow(3));
      auto iova = iommu.MapPage(kNic, pfn, rights);
      ASSERT_TRUE(iova.ok());
      reference[iova->PageBase().value] = Ref{pfn, rights};
      live.push_back(*iova);
    } else if (dice < 7 && !live.empty()) {  // unmap
      const size_t victim = rng.NextBelow(live.size());
      ASSERT_TRUE(iommu.UnmapPage(kNic, live[victim]).ok());
      reference.erase(live[victim].PageBase().value);
      live[victim] = live.back();
      live.pop_back();
    } else {  // random access, compare against the model
      uint64_t raw;
      if (live.empty()) {
        raw = rng.Next() % (1ull << 32);
      } else {
        raw = (live[rng.NextBelow(live.size())] + rng.NextBelow(kPageSize - 8)).value;
      }
      const Iova iova{raw};
      const bool want_write = rng.NextBool(0.5);
      std::vector<uint8_t> buf(8, 0x7f);
      const Status status = want_write
                                ? iommu.DeviceWrite(kNic, iova, buf)
                                : iommu.DeviceRead(kNic, iova, std::span<uint8_t>(buf));
      auto it = reference.find(iova.PageBase().value);
      const bool model_ok =
          it != reference.end() &&
          Permits(it->second.rights, want_write ? AccessOp::kWrite : AccessOp::kRead) &&
          iova.page_offset() + 8 <= kPageSize;
      ASSERT_EQ(status.ok(), model_ok)
          << "step " << step << " iova 0x" << std::hex << iova.value;
    }
  }
}

}  // namespace
}  // namespace spv::iommu
