// Edge-case coverage across modules: boundary inputs, error paths, and
// invariants that the main suites do not reach.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "attack/gadgets.h"
#include "attack/poison.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "dkasan/dkasan.h"
#include "iommu/io_page_table.h"
#include "iommu/iova_allocator.h"
#include "net/layouts.h"
#include "spade/layout_db.h"
#include "spade/parser.h"

namespace spv {
namespace {

// ---- IoPageTable ---------------------------------------------------------------

TEST(IoPageTableEdgeTest, FullLeafNodeFillAndDrain) {
  iommu::IoPageTable table;
  // Fill an entire 512-entry leaf.
  for (uint64_t i = 0; i < 512; ++i) {
    ASSERT_TRUE(table.Map(Iova{i << kPageShift}, Pfn{i + 1},
                          iommu::AccessRights::kRead).ok());
  }
  EXPECT_EQ(table.mapped_pages(), 512u);
  // Unmap the odd entries; even entries survive.
  for (uint64_t i = 1; i < 512; i += 2) {
    ASSERT_TRUE(table.Unmap(Iova{i << kPageShift}).ok());
  }
  for (uint64_t i = 0; i < 512; ++i) {
    EXPECT_EQ(table.Lookup(Iova{i << kPageShift}).has_value(), i % 2 == 0) << i;
  }
  EXPECT_EQ(table.mapped_pages(), 256u);
}

TEST(IoPageTableEdgeTest, IovaZeroAndHighCanonical) {
  iommu::IoPageTable table;
  ASSERT_TRUE(table.Map(Iova{0}, Pfn{1}, iommu::AccessRights::kWrite).ok());
  const Iova high{(1ull << 48) - kPageSize};  // top of the 4-level space
  ASSERT_TRUE(table.Map(high, Pfn{2}, iommu::AccessRights::kWrite).ok());
  EXPECT_EQ(table.Lookup(Iova{0})->pfn.value, 1u);
  EXPECT_EQ(table.Lookup(high)->pfn.value, 2u);
}

// ---- IovaAllocator ----------------------------------------------------------------

TEST(IovaAllocatorEdgeTest, ReuseRequiresExactFit) {
  iommu::IovaAllocator alloc;
  auto a = alloc.Alloc(4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc.Free(*a, 4).ok());
  // A 2-page request does not carve the cached 4-page range; fresh range.
  auto b = alloc.Alloc(2);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(b->value, a->value);
  // A 4-page request reuses it exactly.
  auto c = alloc.Alloc(4);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->value, a->value);
}

TEST(IovaAllocatorEdgeTest, FreeValidation) {
  iommu::IovaAllocator alloc;
  EXPECT_FALSE(alloc.Free(Iova{0x123}, 1).ok());           // unaligned
  EXPECT_FALSE(alloc.Free(Iova{1ull << 40}, 1).ok());      // outside window
}

// ---- PageAllocator -----------------------------------------------------------------

TEST(PageAllocatorEdgeTest, InvalidFreesRejected) {
  mem::PageDb db{256};
  mem::PageAllocator alloc{db, Pfn{16}, 240};
  EXPECT_FALSE(alloc.FreePages(Pfn{0}).ok());      // below range
  EXPECT_FALSE(alloc.FreePages(Pfn{1000}).ok());   // above range
  EXPECT_FALSE(alloc.AllocPages(11, mem::PageOwner::kAnon).ok());  // order > max
}

// ---- LayoutDb ----------------------------------------------------------------------

TEST(LayoutDbEdgeTest, ArrayOfFunctionPointers) {
  spade::LayoutDb db;
  auto file = spade::ParseSource("t.c", R"(
struct vtable {
    void (*slots[16])(void *p);
};
)");
  // Note: C declarator arrays-of-fn-ptrs are beyond the subset; the parser
  // rejects them cleanly rather than mis-parsing.
  EXPECT_FALSE(file.ok());
}

TEST(LayoutDbEdgeTest, SelfRecursiveViaPointerTerminates) {
  spade::LayoutDb db;
  auto file = spade::ParseSource("t.c", R"(
struct node {
    struct node *next;
    void (*visit)(struct node *n);
};
)");
  ASSERT_TRUE(file.ok());
  db.AddStruct(file->structs[0]);
  ASSERT_TRUE(db.Finalize().ok());
  const spade::StructLayout* node = db.Find("node");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->size, 16u);
  EXPECT_EQ(node->direct_callbacks, 1u);
  EXPECT_EQ(node->spoofable_callbacks, 1u);  // next -> one visit, cycle stops
}

TEST(LayoutDbEdgeTest, RecursiveEmbeddingIsAnError) {
  spade::LayoutDb db;
  auto file = spade::ParseSource("t.c", R"(
struct a {
    struct b inner;
};
struct b {
    struct a inner;
};
)");
  ASSERT_TRUE(file.ok());
  for (const auto& def : file->structs) {
    db.AddStruct(def);
  }
  EXPECT_FALSE(db.Finalize().ok());
}

// ---- KernelMemory / machine edges -----------------------------------------------------

class MachineEdgeTest : public ::testing::Test {
 protected:
  MachineEdgeTest() : machine_(MakeConfig()) {}
  static core::MachineConfig MakeConfig() {
    core::MachineConfig config;
    config.seed = 606;
    return config;
  }
  void TearDown() override {
    Status invariants = machine_.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.message();
  }
  core::Machine machine_;
};

TEST_F(MachineEdgeTest, PageCrossingKernelAccess) {
  Kva big = *machine_.slab().Kmalloc(8192, "two_pages");
  const Kva split = big + (kPageSize - 4);
  ASSERT_TRUE(machine_.kmem().WriteU64(split, 0x1122334455667788ULL).ok());
  EXPECT_EQ(*machine_.kmem().ReadU64(split), 0x1122334455667788ULL);
  std::vector<uint8_t> buf(256);
  ASSERT_TRUE(machine_.kmem().Read(big + kPageSize - 128, std::span<uint8_t>(buf)).ok());
}

TEST_F(MachineEdgeTest, SkbWithoutFragPoolFails) {
  EXPECT_FALSE(machine_.skb_alloc().NetdevAllocSkb(CpuId{9}, 1500, "no_pool").ok());
}

TEST_F(MachineEdgeTest, TruesizeForMatchesLinuxFormula) {
  EXPECT_EQ(net::SkbAllocator::TruesizeFor(0),
            net::SkbDataAlign(net::kNetSkbPad) + net::SkbDataAlign(net::SharedInfoLayout::kSize));
  EXPECT_EQ(net::SkbAllocator::TruesizeFor(1500),
            net::SkbDataAlign(64 + 1500) + 320);
  // The driver build_skb path (no NET_SKB_PAD headroom) is what packs two
  // 1728-byte buffers per page; the netdev_alloc_skb path adds the pad.
  EXPECT_EQ(net::SkbAllocator::TruesizeFor(1728), 2112u);
  EXPECT_EQ(net::SkbDataAlign(1728) + net::SkbDataAlign(net::SharedInfoLayout::kSize), 2048u);
}

TEST_F(MachineEdgeTest, FreeSkbNullIsNoop) {
  EXPECT_TRUE(machine_.skb_alloc().FreeSkb(net::SkBuffPtr{}, nullptr).ok());
}

TEST_F(MachineEdgeTest, SendPacketWithoutEgressFails) {
  net::PacketHeader header{.proto = net::kProtoUdp};
  std::vector<uint8_t> payload(16, 1);
  EXPECT_FALSE(machine_.stack().SendPacket(header, payload).ok());
  EXPECT_FALSE(machine_.stack().OnTxCompleted(0).ok());
}

TEST_F(MachineEdgeTest, MappingsForPfnCoversMultiPageBuffers) {
  const DeviceId dev{1};
  machine_.iommu().AttachDevice(dev);
  Kva big = *machine_.slab().Kmalloc(3 * kPageSize, "big_io");
  auto iova = machine_.dma().MapSingle(dev, big, 3 * kPageSize,
                                       dma::DmaDirection::kToDevice, "big_map");
  ASSERT_TRUE(iova.ok());
  const Pfn first = machine_.layout().DirectMapKvaToPhys(big)->pfn();
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(machine_.dma().MappingsForPfn(Pfn{first.value + i}).size(), 1u) << i;
  }
  EXPECT_TRUE(machine_.dma().MappingsForPfn(Pfn{first.value + 3}).empty());
}

// ---- Device model edges -----------------------------------------------------------------

TEST_F(MachineEdgeTest, MaliciousNicWithNoTrafficIsHarmless) {
  const DeviceId dev{1};
  machine_.iommu().AttachDevice(dev);
  device::MaliciousNic nic{device::DevicePort{machine_.iommu(), dev}};
  net::PacketHeader header{};
  std::vector<uint8_t> payload(8, 0);
  EXPECT_FALSE(nic.InjectRx(header, payload).ok());  // no posted descriptors
  auto harvest = nic.HarvestReadableQwords();
  ASSERT_TRUE(harvest.ok());
  EXPECT_TRUE(harvest->empty());  // nothing mapped for READ
}

// ---- Poison / gadget edges ----------------------------------------------------------------

TEST(PoisonEdgeTest, MarkerImageHasNoCallback) {
  auto image = attack::BuildMarkerImage();
  ASSERT_EQ(image.size(), attack::PoisonLayout::kImageBytes);
  uint64_t callback;
  std::memcpy(&callback, image.data(), 8);
  EXPECT_EQ(callback, 0u);
  uint64_t marker;
  std::memcpy(&marker, image.data() + attack::PoisonLayout::kMarkerOffset, 8);
  EXPECT_EQ(marker, attack::PoisonLayout::kMarker);
}

TEST(GadgetEdgeTest, DefaultCatalogComplete) {
  attack::GadgetCatalog catalog = attack::GadgetCatalog::Default();
  EXPECT_EQ(catalog.size(), 8u);
  EXPECT_TRUE(catalog.Find(mem::kSymJopStackPivot).has_value());
  EXPECT_FALSE(catalog.Find(0xdeadbeef).has_value());
  for (auto kind : {attack::GadgetKind::kJopStackPivot, attack::GadgetKind::kCommitCreds,
                    attack::GadgetKind::kBenignDestructor}) {
    EXPECT_FALSE(attack::GadgetKindName(kind).empty());
  }
}

// ---- D-KASAN: page recycled while still mapped ----------------------------------------------

TEST_F(MachineEdgeTest, DkasanFlagsPageRecycledWhileMapped) {
  // §5.2.1 point 2: a freed page is immediately reused ("hot" pages) while a
  // mapping — or a stale IOTLB entry — still covers it. The reuse shows up
  // as alloc-after-map.
  dkasan::DKasan sanitizer{machine_.layout()};
  sanitizer.Attach(machine_.slab());
  sanitizer.Attach(machine_.dma());
  const DeviceId dev{1};
  machine_.iommu().AttachDevice(dev);

  Kva buf = *machine_.slab().Kmalloc(4096, "driver_leaky_map");
  auto iova = machine_.dma().MapSingle(dev, buf, 4096, dma::DmaDirection::kFromDevice,
                                       "leaky_map");
  ASSERT_TRUE(iova.ok());
  // Driver bug: buffer freed without unmapping.
  ASSERT_TRUE(machine_.slab().Kfree(buf).ok());
  // Hot-page reuse hands the same page to an unrelated allocation.
  Kva reused = *machine_.slab().Kmalloc(4096, "crypto_tfm_ctx");
  EXPECT_EQ(reused.PageBase(), buf.PageBase());
  auto reports = sanitizer.ReportsOfKind(dkasan::ReportKind::kAllocAfterMap);
  ASSERT_GE(reports.size(), 1u);
  EXPECT_EQ(reports.back().site, "crypto_tfm_ctx");
}

}  // namespace
}  // namespace spv
