// Tests for the DMA API layer: Linux dma_map semantics, sub-page exposure,
// mapping tracking, observers, and the KernelMemory CPU-access path.

#include <gtest/gtest.h>

#include <vector>

#include "base/clock.h"
#include "base/rng.h"
#include "dma/dma_api.h"
#include "dma/kernel_memory.h"
#include "iommu/iommu.h"
#include "mem/kernel_layout.h"
#include "mem/phys_memory.h"

namespace spv::dma {
namespace {

constexpr DeviceId kNic{1};
constexpr uint64_t kPages = 512;

class DmaFixture : public ::testing::Test {
 protected:
  DmaFixture()
      : pm_(kPages),
        layout_(MakeLayout()),
        iommu_(pm_, clock_, {.mode = iommu::InvalidationMode::kStrict}),
        dma_(iommu_, layout_),
        kmem_(pm_, layout_, dma_) {
    iommu_.AttachDevice(kNic);
  }

  static mem::KernelLayout MakeLayout() {
    Xoshiro256 rng{55};
    return mem::KernelLayout::Create(kPages, /*kaslr=*/true, rng);
  }

  Kva KvaOf(Pfn pfn, uint64_t offset = 0) {
    return layout_.PhysToDirectMapKva(PhysAddr::FromPfn(pfn, offset));
  }

  mem::PhysicalMemory pm_;
  SimClock clock_;
  mem::KernelLayout layout_;
  iommu::Iommu iommu_;
  DmaApi dma_;
  KernelMemory kmem_;
};

TEST_F(DmaFixture, DirectionToRightsMapping) {
  EXPECT_EQ(RightsFor(DmaDirection::kToDevice), iommu::AccessRights::kRead);
  EXPECT_EQ(RightsFor(DmaDirection::kFromDevice), iommu::AccessRights::kWrite);
  EXPECT_EQ(RightsFor(DmaDirection::kBidirectional), iommu::AccessRights::kBidirectional);
}

TEST_F(DmaFixture, MapPreservesSubPageOffset) {
  const Kva kva = KvaOf(Pfn{100}, 0x2c0);
  auto iova = dma_.MapSingle(kNic, kva, 64, DmaDirection::kFromDevice);
  ASSERT_TRUE(iova.ok());
  // Footnote 5: the low 12 bits of the IOVA equal the KVA's page offset.
  EXPECT_EQ(iova->page_offset(), 0x2c0u);
}

TEST_F(DmaFixture, MappedBufferIsDeviceAccessible) {
  const Kva kva = KvaOf(Pfn{100}, 128);
  auto iova = dma_.MapSingle(kNic, kva, 256, DmaDirection::kFromDevice);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> data(256, 0x77);
  ASSERT_TRUE(iommu_.DeviceWrite(kNic, *iova, data).ok());
  EXPECT_EQ(*kmem_.ReadU8(kva), 0x77);
  EXPECT_EQ(*kmem_.ReadU8(kva + 255), 0x77);
}

TEST_F(DmaFixture, WholePageExposedBeyondBufferBounds) {
  // §9.1: dma_map_single(ptr, len) actually exposes the whole page.
  const Kva buffer = KvaOf(Pfn{101}, 1024);
  ASSERT_TRUE(kmem_.WriteU64(KvaOf(Pfn{101}, 3072), 0x5ec2e7).ok());  // secret elsewhere on page
  auto iova = dma_.MapSingle(kNic, buffer, 100, DmaDirection::kBidirectional);
  ASSERT_TRUE(iova.ok());
  std::vector<uint8_t> leak(8);
  // Device reads 2 KiB past the mapped buffer, still on the same page.
  ASSERT_TRUE(iommu_.DeviceRead(kNic, iova->PageBase() + 3072, std::span<uint8_t>(leak)).ok());
  uint64_t value;
  std::memcpy(&value, leak.data(), 8);
  EXPECT_EQ(value, 0x5ec2e7u);
}

TEST_F(DmaFixture, BufferSpanningPagesMapsAllOfThem) {
  const Kva kva = KvaOf(Pfn{102}, kPageSize - 100);
  auto iova = dma_.MapSingle(kNic, kva, 300, DmaDirection::kFromDevice);
  ASSERT_TRUE(iova.ok());
  auto mapping = dma_.FindMapping(kNic, *iova);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(mapping->pages(), 2u);
  EXPECT_EQ(mapping->exposed_bytes(), 2 * kPageSize);
  std::vector<uint8_t> data(300, 1);
  EXPECT_TRUE(iommu_.DeviceWrite(kNic, *iova, data).ok());
  EXPECT_EQ(*kmem_.ReadU8(KvaOf(Pfn{103}, 199)), 1);
}

TEST_F(DmaFixture, UnmapRevokes) {
  const Kva kva = KvaOf(Pfn{104});
  auto iova = dma_.MapSingle(kNic, kva, 512, DmaDirection::kFromDevice);
  ASSERT_TRUE(iova.ok());
  ASSERT_TRUE(dma_.UnmapSingle(kNic, *iova, 512, DmaDirection::kFromDevice).ok());
  std::vector<uint8_t> data(8, 1);
  EXPECT_FALSE(iommu_.DeviceWrite(kNic, *iova, data).ok());
  EXPECT_EQ(dma_.live_mappings(), 0u);
}

TEST_F(DmaFixture, UnmapValidatesArguments) {
  const Kva kva = KvaOf(Pfn{105});
  auto iova = dma_.MapSingle(kNic, kva, 512, DmaDirection::kFromDevice);
  ASSERT_TRUE(iova.ok());
  EXPECT_FALSE(dma_.UnmapSingle(kNic, *iova, 256, DmaDirection::kFromDevice).ok());
  EXPECT_FALSE(dma_.UnmapSingle(kNic, *iova, 512, DmaDirection::kToDevice).ok());
  EXPECT_FALSE(dma_.UnmapSingle(kNic, *iova + kPageSize, 512, DmaDirection::kFromDevice).ok());
  EXPECT_TRUE(dma_.UnmapSingle(kNic, *iova, 512, DmaDirection::kFromDevice).ok());
  EXPECT_FALSE(dma_.UnmapSingle(kNic, *iova, 512, DmaDirection::kFromDevice).ok());
}

TEST_F(DmaFixture, ZeroLengthRejected) {
  EXPECT_FALSE(dma_.MapSingle(kNic, KvaOf(Pfn{106}), 0, DmaDirection::kToDevice).ok());
}

TEST_F(DmaFixture, NonDirectMapKvaRejected) {
  EXPECT_FALSE(dma_.MapSingle(kNic, Kva{0xffffffff81000000ULL}, 64,
                              DmaDirection::kToDevice).ok());
}

TEST_F(DmaFixture, CoLocatedBuffersCreateIovaAliases) {
  // Two sub-page buffers on one page, mapped separately: the page is now
  // reachable through two IOVAs (type (c)).
  const Kva a = KvaOf(Pfn{107}, 0);
  const Kva b = KvaOf(Pfn{107}, 2048);
  auto iova_a = dma_.MapSingle(kNic, a, 2048, DmaDirection::kFromDevice);
  auto iova_b = dma_.MapSingle(kNic, b, 2048, DmaDirection::kFromDevice);
  ASSERT_TRUE(iova_a.ok());
  ASSERT_TRUE(iova_b.ok());
  EXPECT_EQ(iommu_.IovasForPfn(kNic, Pfn{107}).size(), 2u);
  EXPECT_EQ(dma_.MappingsForPfn(Pfn{107}).size(), 2u);

  // Unmapping `a` does not stop the device from reaching a's bytes: it
  // simply writes through b's IOVA at a's offset.
  ASSERT_TRUE(dma_.UnmapSingle(kNic, *iova_a, 2048, DmaDirection::kFromDevice).ok());
  std::vector<uint8_t> data(4, 0x66);
  ASSERT_TRUE(iommu_.DeviceWrite(kNic, iova_b->PageBase(), data).ok());
  EXPECT_EQ(*kmem_.ReadU8(a), 0x66);
}

TEST_F(DmaFixture, SgListMapsEachEntry) {
  std::vector<SgEntry> sg{{KvaOf(Pfn{108}, 0), 1000},
                          {KvaOf(Pfn{109}, 512), 1000},
                          {KvaOf(Pfn{110}, 100), 64}};
  auto iovas = dma_.MapSg(kNic, sg, DmaDirection::kToDevice);
  ASSERT_TRUE(iovas.ok());
  ASSERT_EQ(iovas->size(), 3u);
  EXPECT_EQ(dma_.live_mappings(), 3u);
  for (size_t i = 0; i < sg.size(); ++i) {
    EXPECT_EQ((*iovas)[i].page_offset(), sg[i].kva.page_offset());
  }
  ASSERT_TRUE(dma_.UnmapSg(kNic, *iovas, sg, DmaDirection::kToDevice).ok());
  EXPECT_EQ(dma_.live_mappings(), 0u);
}

class RecordingDmaObserver : public DmaObserver {
 public:
  struct MapEvent {
    Kva kva;
    uint64_t len;
    Iova iova;
    iommu::AccessRights rights;
    std::string site;
  };
  struct AccessEvent {
    Kva kva;
    uint64_t len;
    bool is_write;
  };

  void OnMap(DeviceId, Kva kva, uint64_t len, Iova iova, iommu::AccessRights rights,
             std::string_view site) override {
    maps.push_back({kva, len, iova, rights, std::string(site)});
  }
  void OnUnmap(DeviceId, Kva kva, uint64_t len) override { unmaps.push_back({kva, len}); }
  void OnCpuAccess(Kva kva, uint64_t len, bool is_write) override {
    accesses.push_back({kva, len, is_write});
  }

  std::vector<MapEvent> maps;
  std::vector<std::pair<Kva, uint64_t>> unmaps;
  std::vector<AccessEvent> accesses;
};

TEST_F(DmaFixture, ObserverSeesMapUnmapWithSite) {
  RecordingDmaObserver obs;
  dma_.AddObserver(&obs);
  const Kva kva = KvaOf(Pfn{111}, 64);
  auto iova = dma_.MapSingle(kNic, kva, 128, DmaDirection::kFromDevice, "e1000_alloc_rx_buf");
  ASSERT_TRUE(iova.ok());
  ASSERT_TRUE(dma_.UnmapSingle(kNic, *iova, 128, DmaDirection::kFromDevice).ok());
  dma_.RemoveObserver(&obs);
  ASSERT_EQ(obs.maps.size(), 1u);
  EXPECT_EQ(obs.maps[0].kva, kva);
  EXPECT_EQ(obs.maps[0].rights, iommu::AccessRights::kWrite);
  EXPECT_EQ(obs.maps[0].site, "e1000_alloc_rx_buf");
  ASSERT_EQ(obs.unmaps.size(), 1u);
  EXPECT_EQ(obs.unmaps[0].first, kva);
}

TEST_F(DmaFixture, KernelMemoryFiresCpuAccessHook) {
  RecordingDmaObserver obs;
  dma_.AddObserver(&obs);
  const Kva kva = KvaOf(Pfn{112}, 8);
  ASSERT_TRUE(kmem_.WriteU64(kva, 42).ok());
  EXPECT_EQ(*kmem_.ReadU64(kva), 42u);
  dma_.RemoveObserver(&obs);
  ASSERT_EQ(obs.accesses.size(), 2u);
  EXPECT_TRUE(obs.accesses[0].is_write);
  EXPECT_FALSE(obs.accesses[1].is_write);
  EXPECT_EQ(obs.accesses[0].kva, kva);
  EXPECT_EQ(obs.accesses[0].len, 8u);
}

TEST_F(DmaFixture, KernelMemoryScalarAndBulkRoundTrip) {
  const Kva kva = KvaOf(Pfn{113}, 100);
  ASSERT_TRUE(kmem_.WriteU32(kva, 0xabcd1234).ok());
  EXPECT_EQ(*kmem_.ReadU32(kva), 0xabcd1234u);
  ASSERT_TRUE(kmem_.WriteU16(kva + 4, 0xbeef).ok());
  EXPECT_EQ(*kmem_.ReadU16(kva + 4), 0xbeef);
  ASSERT_TRUE(kmem_.Fill(kva + 8, 16, 0x11).ok());
  std::vector<uint8_t> buf(16);
  ASSERT_TRUE(kmem_.Read(kva + 8, std::span<uint8_t>(buf)).ok());
  for (uint8_t b : buf) {
    EXPECT_EQ(b, 0x11);
  }
  ASSERT_TRUE(kmem_.Copy(kva + 64, kva, 8).ok());
  EXPECT_EQ(*kmem_.ReadU32(kva + 64), 0xabcd1234u);
}

TEST_F(DmaFixture, KernelMemoryRejectsNonDirectMapKva) {
  EXPECT_FALSE(kmem_.ReadU64(Kva{0xffffffff81000000ULL}).ok());
  EXPECT_FALSE(kmem_.WriteU8(Kva{0x1234}, 1).ok());
}

// Parameterized over direction: mapping rights must match, and the paper's
// WRITE!=READ asymmetry must hold end-to-end through the DMA API.
class DirectionTest : public ::testing::TestWithParam<DmaDirection> {};

TEST_P(DirectionTest, EndToEndRightsEnforcement) {
  const DmaDirection dir = GetParam();
  mem::PhysicalMemory pm{kPages};
  SimClock clock;
  Xoshiro256 rng{77};
  mem::KernelLayout layout = mem::KernelLayout::Create(kPages, true, rng);
  iommu::Iommu iommu{pm, clock, {.mode = iommu::InvalidationMode::kStrict}};
  iommu.AttachDevice(kNic);
  DmaApi dma{iommu, layout};

  const Kva kva = layout.PhysToDirectMapKva(PhysAddr::FromPfn(Pfn{50}));
  auto iova = dma.MapSingle(kNic, kva, 1024, dir);
  ASSERT_TRUE(iova.ok());

  std::vector<uint8_t> buf(16, 0x3c);
  const bool can_read = iommu.DeviceRead(kNic, *iova, std::span<uint8_t>(buf)).ok();
  const bool can_write = iommu.DeviceWrite(kNic, *iova, buf).ok();
  EXPECT_EQ(can_read, dir != DmaDirection::kFromDevice);
  EXPECT_EQ(can_write, dir != DmaDirection::kToDevice);
}

INSTANTIATE_TEST_SUITE_P(AllDirections, DirectionTest,
                         ::testing::Values(DmaDirection::kToDevice, DmaDirection::kFromDevice,
                                           DmaDirection::kBidirectional));

}  // namespace
}  // namespace spv::dma
