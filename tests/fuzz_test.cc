// Randomized property tests across module boundaries: allocator disjointness
// under mixed churn, parser robustness on generated and corrupted inputs,
// MiniCpu safety under random chains, and network-stack resource balance
// under packet storms.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "net/layouts.h"
#include "spade/parser.h"
#include "test_device.h"

namespace spv {
namespace {

using spv::testing::TestNicDevice;

// ---- Mixed slab + page_frag churn: all live extents disjoint ---------------------

TEST(AllocatorFuzzTest, MixedChurnKeepsExtentsDisjoint) {
  core::MachineConfig config;
  config.seed = 31337;
  core::Machine machine{config};
  auto& pool = machine.frag_pool(CpuId{0});
  Xoshiro256 rng{4242};

  struct Extent {
    uint64_t start;
    uint64_t len;
    bool is_frag;
  };
  std::map<uint64_t, Extent> live;  // start -> extent

  auto check_disjoint = [&](uint64_t start, uint64_t len) {
    auto it = live.upper_bound(start);
    if (it != live.end()) {
      ASSERT_GE(it->first, start + len) << "overlap with next extent";
    }
    if (it != live.begin()) {
      --it;
      ASSERT_LE(it->second.start + it->second.len, start) << "overlap with prev extent";
    }
  };

  for (int step = 0; step < 5000; ++step) {
    const uint64_t dice = rng.NextBelow(10);
    if (dice < 3) {
      const uint64_t size = 1 + rng.NextBelow(8192);
      auto kva = machine.slab().Kmalloc(size, "fuzz_slab");
      if (kva.ok()) {
        check_disjoint(kva->value, size);
        live[kva->value] = Extent{kva->value, size, false};
      }
    } else if (dice < 6) {
      const uint64_t size = 1 + rng.NextBelow(4096);
      auto kva = pool.Alloc(size, 64, "fuzz_frag");
      if (kva.ok()) {
        check_disjoint(kva->value, size);
        live[kva->value] = Extent{kva->value, size, true};
      }
    } else if (!live.empty()) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      const Extent extent = it->second;
      live.erase(it);
      if (extent.is_frag) {
        ASSERT_TRUE(pool.Free(Kva{extent.start}).ok());
      } else {
        ASSERT_TRUE(machine.slab().Kfree(Kva{extent.start}).ok());
      }
    }
  }
  // Drain and verify the world unwinds cleanly.
  for (const auto& [start, extent] : live) {
    if (extent.is_frag) {
      ASSERT_TRUE(pool.Free(Kva{start}).ok());
    } else {
      ASSERT_TRUE(machine.slab().Kfree(Kva{start}).ok());
    }
  }
  EXPECT_EQ(machine.slab().live_objects(), 0u);
  EXPECT_EQ(pool.live_frags(), 0u);
}

// ---- Parser: generated programs always parse; corrupted ones never crash ----------

std::string GenerateProgram(uint64_t seed) {
  Xoshiro256 rng{seed};
  std::ostringstream out;
  const int structs = 1 + static_cast<int>(rng.NextBelow(4));
  for (int s = 0; s < structs; ++s) {
    out << "struct s" << seed << "_" << s << " {\n";
    const int fields = 1 + static_cast<int>(rng.NextBelow(6));
    for (int f = 0; f < fields; ++f) {
      switch (rng.NextBelow(5)) {
        case 0:
          out << "    u32 f" << f << ";\n";
          break;
        case 1:
          out << "    u8 buf" << f << "[" << (8 << rng.NextBelow(5)) << "];\n";
          break;
        case 2:
          out << "    void (*cb" << f << ")(void *p, int n);\n";
          break;
        case 3:
          out << "    struct dev *ptr" << f << ";\n";
          break;
        default:
          out << "    u64 q" << f << ";\n";
      }
    }
    out << "};\n";
  }
  const int funcs = 1 + static_cast<int>(rng.NextBelow(3));
  for (int fn = 0; fn < funcs; ++fn) {
    out << "static int fn" << seed << "_" << fn << "(struct dev *d, u32 len)\n{\n";
    out << "    void *buf;\n    dma_addr_t dma;\n    u32 i;\n";
    if (rng.NextBool(0.5)) {
      out << "    buf = kmalloc(len, GFP_KERNEL);\n";
    } else {
      out << "    buf = napi_alloc_frag(len);\n";
    }
    out << "    for (i = 0; i < len; i = i + 1) {\n";
    out << "        if (i == 7) { continue; }\n";
    out << "    }\n";
    out << "    dma = dma_map_single(d, buf, len, DMA_TO_DEVICE);\n";
    out << "    if (!dma) { return -1; }\n";
    out << "    return 0;\n}\n";
  }
  return out.str();
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, GeneratedProgramsParseAndAnalyze) {
  const std::string source = GenerateProgram(GetParam());
  auto file = spade::ParseSource("gen.c", source);
  ASSERT_TRUE(file.ok()) << file.status().ToString() << "\n" << source;
  EXPECT_FALSE(file->functions.empty());
}

TEST_P(ParserFuzzTest, CorruptedProgramsNeverCrash) {
  std::string source = GenerateProgram(GetParam());
  Xoshiro256 rng{GetParam() * 31 + 7};
  // Flip random characters; the parser must return cleanly either way.
  for (int round = 0; round < 20; ++round) {
    std::string mutated = source;
    const int mutations = 1 + static_cast<int>(rng.NextBelow(6));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextBelow(mutated.size());
      const char replacement = "{}();*&123abc \n"[rng.NextBelow(15)];
      mutated[pos] = replacement;
    }
    auto file = spade::ParseSource("mut.c", mutated);
    (void)file;  // ok() either way; the property is "no crash, no hang"
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

// ---- MiniCpu: random chains never escalate --------------------------------------

TEST(MiniCpuFuzzTest, RandomChainsNeverEscalate) {
  core::MachineConfig config;
  config.seed = 9;
  core::Machine machine{config};
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  Xoshiro256 rng{777};

  for (int run = 0; run < 200; ++run) {
    auto buf = machine.slab().Kmalloc(256, "chain");
    ASSERT_TRUE(buf.ok());
    // Random qwords: mixture of garbage, text-range addresses, zeros.
    for (uint64_t off = 64; off < 256; off += 8) {
      uint64_t value;
      switch (rng.NextBelow(3)) {
        case 0:
          value = rng.Next();
          break;
        case 1:
          value = machine.layout().text_base() + rng.NextBelow(512ull << 20);
          break;
        default:
          value = 0;
      }
      ASSERT_TRUE(machine.kmem().WriteU64(*buf + off, value).ok());
    }
    const Kva pivot = Kva{machine.layout().text_base() + mem::kSymJopStackPivot};
    (void)cpu.InvokeCallback(pivot, *buf);
    ASSERT_TRUE(machine.slab().Kfree(*buf).ok());
  }
  // commit_creds requires the prepare->mov chain; random bytes can't forge
  // the cred token.
  EXPECT_FALSE(cpu.privilege_escalated());
}

// ---- Network stack: packet storm keeps resources balanced --------------------------

TEST(NetStormFuzzTest, RandomTrafficBalancesResources) {
  core::MachineConfig config;
  config.seed = 313;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  config.net.forwarding_enabled = true;
  core::Machine machine{config};
  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 16;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  TestNicDevice device{nic.device_id(), machine.iommu()};
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  ASSERT_TRUE(machine.stack().CreateSocket(7, true).ok());
  ASSERT_TRUE(machine.stack().CreateSocket(80, false).ok());
  ASSERT_TRUE(nic.FillRxRing().ok());
  Xoshiro256 rng{99};

  const uint64_t skbs_before = machine.skb_alloc().skbs_allocated();
  for (int i = 0; i < 400; ++i) {
    net::PacketHeader header;
    header.src_ip = 0x0a000002 + static_cast<uint32_t>(rng.NextBelow(4));
    header.dst_ip = rng.NextBool(0.7) ? machine.stack().config().local_ip
                                      : 0x0a0000f0 + static_cast<uint32_t>(rng.NextBelow(4));
    header.src_port = static_cast<uint16_t>(1024 + rng.NextBelow(60000));
    header.dst_port =
        rng.NextBool(0.3) ? 7 : (rng.NextBool(0.3) ? 80 : static_cast<uint16_t>(9999));
    header.proto = rng.NextBool(0.5) ? net::kProtoTcp : net::kProtoUdp;
    header.seq = static_cast<uint32_t>(i);
    std::vector<uint8_t> payload(1 + rng.NextBelow(1200),
                                 static_cast<uint8_t>(rng.NextBelow(256)));
    auto index = device.InjectRx(machine.kmem(), header, payload);
    if (!index.ok()) {
      break;
    }
    auto skb = nic.CompleteRx(
        *index, static_cast<uint32_t>(net::PacketHeader::kSize + payload.size()));
    ASSERT_TRUE(skb.ok()) << skb.status().ToString();
    ASSERT_TRUE(machine.stack().NapiGroReceive(std::move(*skb)).ok());
    // Periodically flush GRO + complete TX so rings drain.
    if (i % 16 == 15) {
      ASSERT_TRUE(machine.stack().NapiComplete().ok());
      for (const auto& descriptor : device.tx_posted()) {
        ASSERT_TRUE(machine.stack().OnTxCompleted(descriptor.index).ok());
      }
      device.tx_posted().clear();
    }
  }
  ASSERT_TRUE(machine.stack().NapiComplete().ok());
  for (const auto& descriptor : device.tx_posted()) {
    ASSERT_TRUE(machine.stack().OnTxCompleted(descriptor.index).ok());
  }
  device.tx_posted().clear();

  const auto& stats = machine.stack().stats();
  EXPECT_GT(stats.rx_delivered + stats.rx_forwarded + stats.rx_dropped, 100u);
  // Every skb the storm created has been freed except the 16 live RX ring
  // buffers (which are raw frags, not skbs) — i.e. skb churn is balanced.
  EXPECT_EQ(machine.skb_alloc().skbs_allocated() - skbs_before,
            machine.skb_alloc().skbs_freed());
  EXPECT_EQ(nic.pending_tx(), 0u);
  EXPECT_TRUE(machine.iommu().faults().empty());
}

}  // namespace
}  // namespace spv
