// Tests for spv::telemetry: counter/histogram math, trace-ring wraparound and
// drop accounting, severity filtering, sink dispatch semantics, exporter
// escaping and determinism, observer-bridge origin filtering, and one
// end-to-end attack run traced on the machine bus.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "slab/observer.h"
#include "telemetry/telemetry.h"

namespace spv::telemetry {
namespace {

// ---- Counters and histograms ----------------------------------------------------

TEST(CounterTest, AddAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(HistogramTest, Log2BucketPlacement) {
  Histogram h;
  h.Record(0);     // bucket 0
  h.Record(1);     // bucket 1 (upper bound 1)
  h.Record(2);     // bucket 2 (upper bound 3)
  h.Record(3);     // bucket 2
  h.Record(4096);  // bucket 13 (upper bound 8191)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 4102u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 4096u);
  const auto buckets = h.NonZeroBuckets();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].upper_bound, 0u);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].upper_bound, 1u);
  EXPECT_EQ(buckets[2].upper_bound, 3u);
  EXPECT_EQ(buckets[2].count, 2u);
  EXPECT_EQ(buckets[3].upper_bound, 8191u);
}

TEST(HistogramTest, MeanAndPercentiles) {
  Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.Record(1);
  }
  h.Record(1u << 20);
  EXPECT_DOUBLE_EQ(h.Mean(), (99.0 + (1u << 20)) / 100.0);
  // p50 and p99 land in the bucket of the 1s; p100 in the outlier's bucket.
  EXPECT_EQ(h.PercentileUpperBound(50), 1u);
  EXPECT_EQ(h.PercentileUpperBound(99), 1u);
  EXPECT_EQ(h.PercentileUpperBound(100), (1u << 21) - 1);
  Histogram empty;
  EXPECT_EQ(empty.PercentileUpperBound(50), 0u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
}

// ---- Trace ring -----------------------------------------------------------------

Event MakeEvent(EventKind kind, Severity severity) {
  Event event;
  event.kind = kind;
  event.severity = severity;
  return event;
}

TEST(TraceRingTest, WraparoundKeepsNewestAndCountsDrops) {
  TraceRing ring{4};
  for (int i = 0; i < 10; ++i) {
    Event event = MakeEvent(EventKind::kDmaMap, Severity::kInfo);
    event.len = static_cast<uint64_t>(i);
    EXPECT_TRUE(ring.Push(event));
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.size(), 4u);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);  // oldest surviving seq is 6
    EXPECT_EQ(events[i].len, 6 + i);
  }
}

TEST(TraceRingTest, SeverityFloorFiltersBeforeRecording) {
  TraceRing ring{8};
  ring.set_min_severity(Severity::kWarn);
  EXPECT_FALSE(ring.Push(MakeEvent(EventKind::kCpuAccess, Severity::kTrace)));
  EXPECT_FALSE(ring.Push(MakeEvent(EventKind::kDmaMap, Severity::kInfo)));
  EXPECT_TRUE(ring.Push(MakeEvent(EventKind::kIommuFault, Severity::kWarn)));
  EXPECT_TRUE(ring.Push(MakeEvent(EventKind::kStaleIotlbHit, Severity::kCritical)));
  EXPECT_EQ(ring.recorded(), 2u);
  EXPECT_EQ(ring.filtered(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, ClearResetsSequenceAndFilterCount) {
  TraceRing ring{2};
  ring.Push(MakeEvent(EventKind::kDmaMap, Severity::kInfo));
  ring.Push(MakeEvent(EventKind::kDmaMap, Severity::kInfo));
  ring.Push(MakeEvent(EventKind::kDmaMap, Severity::kInfo));
  ring.Clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(TraceRingTest, DropsAreAccountedPerOverwrittenSeverity) {
  TraceRing ring{2};
  ring.Push(MakeEvent(EventKind::kStaleIotlbHit, Severity::kCritical));
  ring.Push(MakeEvent(EventKind::kCpuAccess, Severity::kTrace));
  // The next two pushes overwrite the oldest slots: the critical finding
  // first, then the trace record.
  ring.Push(MakeEvent(EventKind::kDmaMap, Severity::kInfo));
  EXPECT_EQ(ring.dropped(Severity::kCritical), 1u);
  EXPECT_EQ(ring.dropped(Severity::kTrace), 0u);
  ring.Push(MakeEvent(EventKind::kDmaMap, Severity::kInfo));
  EXPECT_EQ(ring.dropped(Severity::kTrace), 1u);
  EXPECT_EQ(ring.dropped(Severity::kInfo), 0u);
  EXPECT_EQ(ring.dropped(Severity::kWarn), 0u);
  EXPECT_EQ(ring.dropped(), 2u);  // the total is the sum of the breakdown
  ring.Clear();
  EXPECT_EQ(ring.dropped(Severity::kCritical), 0u);
}

// ---- Hub dispatch ---------------------------------------------------------------

struct RecordingSink : EventSink {
  std::vector<Event> seen;
  void OnEvent(const Event& event) override { seen.push_back(event); }
};

TEST(HubTest, SinksReceiveEventsEvenWhenRecordingDisabled) {
  Hub hub;  // recording off by default
  RecordingSink sink;
  hub.AddSink(&sink);
  EXPECT_TRUE(hub.active());  // a sink keeps the bus live
  hub.Publish(MakeEvent(EventKind::kDmaUnmap, Severity::kInfo));
  EXPECT_EQ(sink.seen.size(), 1u);
  EXPECT_EQ(hub.ring().recorded(), 0u);  // nothing recorded while disabled
  hub.RemoveSink(&sink);
  EXPECT_FALSE(hub.active());
}

TEST(HubTest, ClockStampsCycles) {
  SimClock clock;
  clock.AdvanceUs(3);
  Hub::Config config;
  config.enabled = true;
  Hub hub{config};
  hub.BindClock(&clock);
  hub.Publish(MakeEvent(EventKind::kNicRx, Severity::kInfo));
  const auto events = hub.ring().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, clock.now());
}

TEST(HubTest, CounterValueIsZeroForUnknownNames) {
  Hub hub;
  EXPECT_EQ(hub.counter_value("never.touched"), 0u);
  hub.counter("touched").Add(3);
  EXPECT_EQ(hub.counter_value("touched"), 3u);
}

// ---- Exporters ------------------------------------------------------------------

TEST(ExportTest, CsvEscaping) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("two\nlines"), "\"two\nlines\"");
}

TEST(ExportTest, JsonEscaping) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ExportTest, HistogramJsonCarriesSummaryQuantiles) {
  Hub::Config config;
  config.enabled = true;
  Hub hub{config};
  for (int i = 0; i < 99; ++i) {
    hub.histogram("op.cycles").Record(1);
  }
  hub.histogram("op.cycles").Record(1u << 20);
  const std::string json = hub.ExportJson();
  EXPECT_NE(json.find("\"p50\":1,"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":1,"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":1,"), std::string::npos);
  // Summarize() and the export derive from the same PercentileUpperBound.
  const Histogram::Summary summary = hub.histogram("op.cycles").Summarize();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_EQ(summary.p50, 1u);
  EXPECT_EQ(summary.p99, 1u);
  EXPECT_DOUBLE_EQ(summary.mean, (99.0 + (1u << 20)) / 100.0);
}

TEST(ExportTest, JsonReportsDroppedCriticalFailLoud) {
  Hub::Config config;
  config.enabled = true;
  config.ring_capacity = 2;
  Hub hub{config};
  hub.Publish(MakeEvent(EventKind::kStaleIotlbHit, Severity::kCritical));
  hub.Publish(MakeEvent(EventKind::kDmaMap, Severity::kInfo));
  hub.Publish(MakeEvent(EventKind::kDmaMap, Severity::kInfo));  // evicts the finding
  const std::string json = hub.ExportJson();
  EXPECT_NE(json.find("\"dropped_critical\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_by_severity\":[0,0,0,1]"), std::string::npos);
}

TEST(ExportTest, TraceCsvCarriesSpanColumn) {
  Hub::Config config;
  config.enabled = true;
  Hub hub{config};
  Event event = MakeEvent(EventKind::kDmaMap, Severity::kInfo);
  event.span = 7;
  hub.Publish(event);
  const std::string csv = hub.ExportTraceCsv();
  EXPECT_EQ(csv.rfind("seq,cycle,kind,severity,device,addr,addr2,len,aux,flag,span,site", 0),
            0u);
  const std::vector<Event> parsed = ParseTraceCsv(csv);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].span, 7u);
}

TEST(ExportTest, ParseTraceCsvRoundTripsAllFields) {
  Hub::Config config;
  config.enabled = true;
  Hub hub{config};
  Event event = MakeEvent(EventKind::kStaleIotlbHit, Severity::kCritical);
  event.device = 3;
  event.addr = 0x1000;
  event.addr2 = 0x2000;
  event.len = 64;
  event.aux = 5;
  event.flag = true;
  event.span = 12;
  event.site = "quoted, \"site\"";
  hub.Publish(event);
  const std::vector<Event> parsed = ParseTraceCsv(hub.ExportTraceCsv());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].kind, EventKind::kStaleIotlbHit);
  EXPECT_EQ(parsed[0].severity, Severity::kCritical);
  EXPECT_EQ(parsed[0].device, 3u);
  EXPECT_EQ(parsed[0].addr, 0x1000u);
  EXPECT_EQ(parsed[0].addr2, 0x2000u);
  EXPECT_EQ(parsed[0].len, 64u);
  EXPECT_EQ(parsed[0].aux, 5u);
  EXPECT_TRUE(parsed[0].flag);
  EXPECT_EQ(parsed[0].span, 12u);
  EXPECT_EQ(parsed[0].site, "quoted, \"site\"");
}

TEST(ExportTest, ParseTraceCsvAcceptsLegacyElevenFieldRows) {
  // A pre-span export: no span column. The parser defaults span to 0.
  const std::string csv =
      "seq,cycle,kind,severity,device,addr,addr2,len,aux,flag,site\n"
      "0,100,dma_map,info,1,4096,8192,64,2,0,legacy_site\n"
      "not,a,valid,row\n";
  const std::vector<Event> parsed = ParseTraceCsv(csv);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].cycle, 100u);
  EXPECT_EQ(parsed[0].kind, EventKind::kDmaMap);
  EXPECT_EQ(parsed[0].span, 0u);
  EXPECT_EQ(parsed[0].site, "legacy_site");
}

TEST(ExportTest, TraceCsvRoundTripsNames) {
  Hub::Config config;
  config.enabled = true;
  Hub hub{config};
  Event event = MakeEvent(EventKind::kStaleIotlbHit, Severity::kCritical);
  event.site = "unmap, then access";
  hub.Publish(event);
  const std::string csv = hub.ExportTraceCsv();
  EXPECT_NE(csv.find("stale_iotlb_hit"), std::string::npos);
  EXPECT_NE(csv.find("critical"), std::string::npos);
  EXPECT_NE(csv.find("\"unmap, then access\""), std::string::npos);
}

// Runs the same short workload the trace CLI demo uses. Everything in the
// simulation is seeded, so two runs must export byte-identical documents.
std::string RunSeededWorkload(uint64_t seed) {
  core::MachineConfig config;
  config.seed = seed;
  config.phys_pages = 4096;
  config.telemetry.enabled = true;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "export_test");
  std::vector<uint8_t> payload(64, 0x5a);
  for (int i = 0; i < 3; ++i) {
    auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                        "export_map");
    (void)machine.iommu().DeviceWrite(dev, *iova, payload);
    (void)machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice);
    // Deferred mode: this lands in the stale-IOTLB window after the unmap.
    (void)machine.iommu().DeviceWrite(dev, *iova, payload);
  }
  machine.clock().AdvanceUs(10001);
  machine.iommu().ProcessDeferredTimer();
  (void)machine.slab().Kfree(buf);
  return machine.telemetry().ExportJson();
}

TEST(ExportTest, JsonExportIsDeterministicUnderFixedSeed) {
  const std::string first = RunSeededWorkload(99);
  const std::string second = RunSeededWorkload(99);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"iommu.maps\""), std::string::npos);
  EXPECT_NE(first.find("\"dma.map_bytes\""), std::string::npos);
  EXPECT_NE(first.find("stale_iotlb_hit"), std::string::npos);
}

// ---- Observer bridge origin filtering -------------------------------------------

struct AllocLog : slab::SlabObserver {
  std::vector<std::string> allocs;
  void OnAlloc(Kva, uint64_t, std::string_view site) override {
    allocs.emplace_back(site);
  }
  void OnFree(Kva, uint64_t) override {}
};

TEST(ObserverBridgeTest, SlabObserverIgnoresFragTrafficOnSharedHub) {
  core::MachineConfig config;
  config.telemetry.enabled = true;
  core::Machine machine{config};
  AllocLog slab_log;
  AllocLog frag_log;
  machine.slab().AddObserver(&slab_log);
  machine.frag_pool(CpuId{0}).AddObserver(&frag_log);

  Kva kva = *machine.slab().Kmalloc(128, "from_slab");
  Kva frag = *machine.frag_pool(CpuId{0}).Alloc(512, 1, "from_frag");

  // Both allocators publish on the one machine Hub, but each bridge only
  // decodes events from its own origin.
  ASSERT_EQ(slab_log.allocs.size(), 1u);
  EXPECT_EQ(slab_log.allocs[0], "from_slab");
  ASSERT_EQ(frag_log.allocs.size(), 1u);
  EXPECT_EQ(frag_log.allocs[0], "from_frag");

  machine.slab().RemoveObserver(&slab_log);
  (void)machine.slab().Kfree(kva);
  (void)machine.frag_pool(CpuId{0}).Free(frag);
  EXPECT_EQ(slab_log.allocs.size(), 1u);  // removed: no further deliveries
}

// ---- End-to-end: attack run on the machine bus ----------------------------------

// Same rig as tests/attack_test.cc, with telemetry recording turned on and the
// ring floored at kWarn so the attack narrative is what gets recorded.
TEST(TelemetryIntegrationTest, PoisonedTxStagesAppearInOrderOnTheBus) {
  core::MachineConfig config;
  config.seed = 41;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  config.net.forwarding_enabled = false;
  config.telemetry.enabled = true;
  config.telemetry.min_severity = Severity::kWarn;

  net::NicDriver::Config driver_config;
  driver_config.name = "victim_nic";
  driver_config.rx_ring_size = 32;
  driver_config.rx_buf_len = 1728;  // i40e-style half-page buffers

  core::Machine machine{config};
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  machine.stack().set_callback_invoker(&cpu);

  ASSERT_TRUE(machine.stack().CreateSocket(7, /*echo=*/true).ok());
  ASSERT_TRUE(nic.FillRxRing().ok());

  auto report = attack::PoisonedTxAttack::Run(
      attack::AttackEnv{machine, nic, device, cpu}, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->success);

  // Every narrative step was published as a kWarn attack_stage event, in
  // order, prefixed with the attack name.
  std::vector<std::string> staged;
  for (const Event& event : machine.telemetry().ring().Snapshot()) {
    if (event.kind == EventKind::kAttackStage) {
      EXPECT_EQ(event.severity, Severity::kWarn);
      staged.push_back(event.site);
    }
  }
  ASSERT_EQ(staged.size(), report->steps.size());
  for (size_t i = 0; i < staged.size(); ++i) {
    EXPECT_EQ(staged[i], "poisoned_tx: " + report->steps[i]);
  }
  EXPECT_EQ(machine.telemetry().counter_value("attack.stages"), staged.size());

  // The kTrace/kInfo plumbing was filtered by the severity floor, not dropped.
  EXPECT_EQ(machine.telemetry().ring().dropped(), 0u);
  EXPECT_GT(machine.telemetry().ring().filtered(), 0u);

  // The run necessarily exercised the stale-IOTLB window; Critical events
  // passed the floor too.
  EXPECT_GT(machine.telemetry().counter_value("iommu.stale_iotlb_accesses"), 0u);
}

}  // namespace
}  // namespace spv::telemetry
