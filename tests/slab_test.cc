// Tests for the slab module: kmalloc caches and the page_frag allocator.
//
// The co-location properties asserted here are not incidental: they are the
// substrate for the paper's type (b)/(c)/(d) sub-page vulnerabilities.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/rng.h"
#include "mem/kernel_layout.h"
#include "mem/page_allocator.h"
#include "mem/page_db.h"
#include "mem/phys_memory.h"
#include "slab/page_frag.h"
#include "slab/slab_allocator.h"

namespace spv::slab {
namespace {

constexpr uint64_t kTestPages = 4096;

class SlabFixture : public ::testing::Test {
 protected:
  SlabFixture()
      : pm_(kTestPages),
        db_(kTestPages),
        alloc_(db_, Pfn{64}, kTestPages - 64),
        layout_(MakeLayout()),
        slab_(pm_, db_, alloc_, layout_) {}

  static mem::KernelLayout MakeLayout() {
    Xoshiro256 rng{1234};
    return mem::KernelLayout::Create(kTestPages, /*kaslr=*/true, rng);
  }

  mem::PhysicalMemory pm_;
  mem::PageDb db_;
  mem::PageAllocator alloc_;
  mem::KernelLayout layout_;
  SlabAllocator slab_;
};

// ---- size classes -------------------------------------------------------------

TEST(SizeClassTest, MapsSizesToLinuxClasses) {
  EXPECT_EQ(*SlabAllocator::SizeClassIndex(1), 0);     // -> 8
  EXPECT_EQ(kKmallocSizeClasses[*SlabAllocator::SizeClassIndex(9)], 16u);
  EXPECT_EQ(kKmallocSizeClasses[*SlabAllocator::SizeClassIndex(64)], 64u);
  EXPECT_EQ(kKmallocSizeClasses[*SlabAllocator::SizeClassIndex(65)], 96u);
  EXPECT_EQ(kKmallocSizeClasses[*SlabAllocator::SizeClassIndex(100)], 128u);
  EXPECT_EQ(kKmallocSizeClasses[*SlabAllocator::SizeClassIndex(328)], 512u);
  EXPECT_EQ(kKmallocSizeClasses[*SlabAllocator::SizeClassIndex(4096)], 4096u);
  EXPECT_FALSE(SlabAllocator::SizeClassIndex(4097).has_value());
}

// ---- kmalloc ------------------------------------------------------------------

TEST_F(SlabFixture, SameSizeClassObjectsSharePage) {
  // Type (d) premise: kmalloc objects of similar size co-reside on a page.
  auto a = slab_.Kmalloc(512, "alloc_a");
  auto b = slab_.Kmalloc(512, "alloc_b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(layout_.DirectMapKvaToPhys(*a)->pfn(), layout_.DirectMapKvaToPhys(*b)->pfn());
  EXPECT_EQ(*b - *a, 512u);
}

TEST_F(SlabFixture, ObjectsAreZeroed) {
  auto a = slab_.Kmalloc(256, "t");
  ASSERT_TRUE(a.ok());
  auto phys = layout_.DirectMapKvaToPhys(*a);
  ASSERT_TRUE(phys.ok());
  ASSERT_TRUE(pm_.WriteU64(*phys, 0xdeadbeef).ok());
  ASSERT_TRUE(slab_.Kfree(*a).ok());
  auto b = slab_.Kmalloc(256, "t");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, *a);  // LIFO slot reuse
  EXPECT_EQ(*pm_.ReadU64(*phys), 0u);  // re-zeroed
}

TEST_F(SlabFixture, DifferentSizeClassesUseDifferentPages) {
  auto a = slab_.Kmalloc(64, "t");
  auto b = slab_.Kmalloc(512, "t");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(layout_.DirectMapKvaToPhys(*a)->pfn(), layout_.DirectMapKvaToPhys(*b)->pfn());
}

TEST_F(SlabFixture, PageFillsThenSpills) {
  // 4096/512 = 8 objects per page; the 9th lands on a new page.
  std::vector<Kva> kvas;
  for (int i = 0; i < 9; ++i) {
    auto k = slab_.Kmalloc(512, "spill");
    ASSERT_TRUE(k.ok());
    kvas.push_back(*k);
  }
  std::set<uint64_t> pfns;
  for (Kva k : kvas) {
    pfns.insert(layout_.DirectMapKvaToPhys(k)->pfn().value);
  }
  EXPECT_EQ(pfns.size(), 2u);
}

TEST_F(SlabFixture, LifoSlotReuse) {
  auto keeper = slab_.Kmalloc(128, "keeper");  // keeps the slab page alive
  auto a = slab_.Kmalloc(128, "a");
  auto b = slab_.Kmalloc(128, "b");
  ASSERT_TRUE(keeper.ok() && a.ok() && b.ok());
  ASSERT_TRUE(slab_.Kfree(*a).ok());
  ASSERT_TRUE(slab_.Kfree(*b).ok());
  auto c = slab_.Kmalloc(128, "c");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *b);  // most recently freed slot first
}

TEST_F(SlabFixture, LargeAllocationTakesWholePages) {
  auto big = slab_.Kmalloc(3 * 4096 + 100, "big");
  ASSERT_TRUE(big.ok());
  auto phys = layout_.DirectMapKvaToPhys(*big);
  ASSERT_TRUE(phys.ok());
  EXPECT_EQ(phys->page_offset(), 0u);
  auto info = slab_.Lookup(*big + 4096 * 2);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->kva, *big);
  EXPECT_EQ(info->size, 3u * 4096u + 100u);
  ASSERT_TRUE(slab_.Kfree(*big).ok());
}

TEST_F(SlabFixture, KfreeNullIsNoop) { EXPECT_TRUE(slab_.Kfree(Kva{}).ok()); }

TEST_F(SlabFixture, DoubleFreeDetected) {
  auto a = slab_.Kmalloc(64, "t");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(slab_.Kfree(*a).ok());
  EXPECT_FALSE(slab_.Kfree(*a).ok());
}

TEST_F(SlabFixture, KfreeOfForeignPointerRejected) {
  EXPECT_FALSE(slab_.Kfree(Kva{0x1234}).ok());
  EXPECT_FALSE(slab_.Kfree(layout_.PhysToDirectMapKva(PhysAddr{123 << 12})).ok());
}

TEST_F(SlabFixture, LookupFindsInteriorPointers) {
  auto a = slab_.Kmalloc(512, "sock_alloc_inode+0x4f/0x120");
  ASSERT_TRUE(a.ok());
  auto info = slab_.Lookup(*a + 100);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->kva, *a);
  EXPECT_EQ(info->size, 512u);
  EXPECT_EQ(info->site, "sock_alloc_inode+0x4f/0x120");
  EXPECT_FALSE(slab_.Lookup(*a + 512).has_value());  // next (free) slot
}

TEST_F(SlabFixture, ObjectsOnPageEnumeratesLiveOnly) {
  auto a = slab_.Kmalloc(1024, "a");
  auto b = slab_.Kmalloc(1024, "b");
  auto c = slab_.Kmalloc(1024, "c");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(slab_.Kfree(*b).ok());
  auto pfn = layout_.DirectMapKvaToPhys(*a)->pfn();
  auto objs = slab_.ObjectsOnPage(pfn);
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[0].kva, *a);
  EXPECT_EQ(objs[1].kva, *c);
}

TEST_F(SlabFixture, EmptySlabPageReturnsToBuddy) {
  const uint64_t before = alloc_.free_pages();
  auto a = slab_.Kmalloc(2048, "t");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc_.free_pages(), before - 1);
  ASSERT_TRUE(slab_.Kfree(*a).ok());
  EXPECT_EQ(alloc_.free_pages(), before);
  EXPECT_EQ(db_.Get(layout_.DirectMapKvaToPhys(*a)->pfn()).owner, mem::PageOwner::kFree);
}

TEST_F(SlabFixture, SlabPagesTaggedInPageDb) {
  auto a = slab_.Kmalloc(96, "t");
  ASSERT_TRUE(a.ok());
  const auto& meta = db_.Get(layout_.DirectMapKvaToPhys(*a)->pfn());
  EXPECT_EQ(meta.owner, mem::PageOwner::kSlab);
  EXPECT_EQ(kKmallocSizeClasses[meta.cache_id], 96u);
}

class RecordingObserver : public SlabObserver {
 public:
  struct Event {
    bool alloc;
    Kva kva;
    uint64_t size;
    std::string site;
  };
  void OnAlloc(Kva kva, uint64_t size, std::string_view site) override {
    events.push_back({true, kva, size, std::string(site)});
  }
  void OnFree(Kva kva, uint64_t size) override { events.push_back({false, kva, size, ""}); }
  std::vector<Event> events;
};

TEST_F(SlabFixture, ObserverSeesAllocAndFree) {
  RecordingObserver obs;
  slab_.AddObserver(&obs);
  auto a = slab_.Kmalloc(300, "__alloc_skb+0xe0/0x3f0");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(slab_.Kfree(*a).ok());
  slab_.RemoveObserver(&obs);
  ASSERT_EQ(obs.events.size(), 2u);
  EXPECT_TRUE(obs.events[0].alloc);
  EXPECT_EQ(obs.events[0].kva, *a);
  EXPECT_EQ(obs.events[0].size, 512u);  // size-class size
  EXPECT_EQ(obs.events[0].site, "__alloc_skb+0xe0/0x3f0");
  EXPECT_FALSE(obs.events[1].alloc);
}

// Parameterized churn across every size class: allocator invariants hold.
class SlabChurnTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SlabChurnTest, ChurnKeepsObjectsDisjoint) {
  const uint32_t size = GetParam();
  mem::PhysicalMemory pm{kTestPages};
  mem::PageDb db{kTestPages};
  mem::PageAllocator alloc{db, Pfn{64}, kTestPages - 64};
  Xoshiro256 seed_rng{99};
  mem::KernelLayout layout = mem::KernelLayout::Create(kTestPages, true, seed_rng);
  SlabAllocator slab{pm, db, alloc, layout};
  Xoshiro256 rng{size};

  std::set<uint64_t> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.NextBool(0.55)) {
      auto k = slab.Kmalloc(size, "churn");
      ASSERT_TRUE(k.ok());
      ASSERT_TRUE(live.insert(k->value).second) << "same KVA handed out twice";
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      ASSERT_TRUE(slab.Kfree(Kva{*it}).ok());
      live.erase(it);
    }
  }
  EXPECT_EQ(slab.live_objects(), live.size());
  // Every live object must be found by Lookup with the right base.
  for (uint64_t kva : live) {
    auto info = slab.Lookup(Kva{kva});
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->kva.value, kva);
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, SlabChurnTest,
                         ::testing::Values(8u, 16u, 64u, 96u, 192u, 512u, 2048u, 4096u, 8192u));

// ---- page_frag ----------------------------------------------------------------

class PageFragFixture : public SlabFixture {
 protected:
  PageFragFixture() : pool_(db_, alloc_, layout_, CpuId{0}) {}
  PageFragPool pool_;
};

TEST_F(PageFragFixture, AllocatesDescendingFromRegionEnd) {
  // Fig 5: offset starts at the end and B-byte allocs subtract B.
  auto a = pool_.Alloc(1000);
  auto b = pool_.Alloc(1000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a - *b, 1000u);  // b sits exactly below a
}

TEST_F(PageFragFixture, ConsecutiveBuffersSharePages) {
  // Type (c) premise: MTU-sized buffers co-reside on 4 KiB pages.
  auto a = pool_.Alloc(2048);
  auto b = pool_.Alloc(2048);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Pfn pa = layout_.DirectMapKvaToPhys(*a)->pfn();
  const Pfn pb = layout_.DirectMapKvaToPhys(*b)->pfn();
  EXPECT_EQ(pa, pb);
  auto frags = pool_.LiveFragsOnPage(pa);
  EXPECT_EQ(frags.size(), 2u);
}

TEST_F(PageFragFixture, AlignmentRespected) {
  auto a = pool_.Alloc(100, 64);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->value % 64, 0u);
  auto b = pool_.Alloc(1, 256);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->value % 256, 0u);
}

TEST_F(PageFragFixture, RefillsWhenExhausted) {
  // 32 KiB region, 2 KiB allocs -> 16 per region; the 17th refills.
  std::vector<Kva> frags;
  for (int i = 0; i < 17; ++i) {
    auto f = pool_.Alloc(2048);
    ASSERT_TRUE(f.ok());
    frags.push_back(*f);
  }
  EXPECT_EQ(pool_.regions_allocated(), 2u);
}

TEST_F(PageFragFixture, RegionFreedOnlyWhenAllRefsDropped) {
  const uint64_t before = alloc_.free_pages();
  std::vector<Kva> frags;
  for (int i = 0; i < 16; ++i) {
    auto f = pool_.Alloc(2048);
    ASSERT_TRUE(f.ok());
    frags.push_back(*f);
  }
  // Force retirement of the first region.
  auto extra = pool_.Alloc(2048);
  ASSERT_TRUE(extra.ok());
  for (size_t i = 0; i + 1 < frags.size(); ++i) {
    ASSERT_TRUE(pool_.Free(frags[i]).ok());
  }
  const uint64_t mid = alloc_.free_pages();
  EXPECT_LT(mid, before);  // region still referenced by the last frag
  ASSERT_TRUE(pool_.Free(frags.back()).ok());
  EXPECT_GT(alloc_.free_pages(), mid);  // retired region released
}

TEST_F(PageFragFixture, OversizedAllocGetsDedicatedRegion) {
  // HW-LRO style 64 KiB buffer (§5.3).
  auto big = pool_.Alloc(64 * 1024);
  ASSERT_TRUE(big.ok());
  auto phys = layout_.DirectMapKvaToPhys(*big);
  ASSERT_TRUE(phys.ok());
  auto small = pool_.Alloc(2048);
  ASSERT_TRUE(small.ok());
  EXPECT_NE(phys->pfn(), layout_.DirectMapKvaToPhys(*small)->pfn());
  EXPECT_TRUE(pool_.Free(*big).ok());
}

TEST_F(PageFragFixture, FreeUnknownFragRejected) {
  EXPECT_FALSE(pool_.Free(Kva{0x42}).ok());
}

TEST_F(PageFragFixture, PagesTaggedAsPageFrag) {
  auto a = pool_.Alloc(512);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(db_.Get(layout_.DirectMapKvaToPhys(*a)->pfn()).owner, mem::PageOwner::kPageFrag);
}

TEST_F(PageFragFixture, ZeroSizeRejected) { EXPECT_FALSE(pool_.Alloc(0).ok()); }

TEST_F(PageFragFixture, InvalidAlignmentRejected) { EXPECT_FALSE(pool_.Alloc(64, 3).ok()); }

// Property sweep over realistic RX buffer sizes: every allocation is disjoint
// from every other live allocation; co-location (same page) is frequent for
// sub-page sizes.
class PageFragSizeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageFragSizeTest, FragsDisjointAndCoLocatedForSubPageSizes) {
  const uint64_t size = GetParam();
  mem::PhysicalMemory pm{kTestPages};
  mem::PageDb db{kTestPages};
  mem::PageAllocator alloc{db, Pfn{64}, kTestPages - 64};
  Xoshiro256 seed_rng{7};
  mem::KernelLayout layout = mem::KernelLayout::Create(kTestPages, true, seed_rng);
  PageFragPool pool{db, alloc, layout, CpuId{0}};

  std::vector<std::pair<uint64_t, uint64_t>> extents;  // [start, end)
  uint64_t shared_page_pairs = 0;
  Kva prev{};
  for (int i = 0; i < 64; ++i) {
    auto f = pool.Alloc(size, 64);
    ASSERT_TRUE(f.ok());
    for (const auto& [start, end] : extents) {
      EXPECT_FALSE(f->value < end && f->value + size > start) << "overlapping frags";
    }
    extents.emplace_back(f->value, f->value + size);
    if (i > 0 && prev.PageBase() == f->PageBase()) {
      ++shared_page_pairs;
    }
    prev = *f;
  }
  if (size <= kPageSize / 2) {
    EXPECT_GT(shared_page_pairs, 0u) << "sub-page frags never shared a page";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageFragSizeTest,
                         ::testing::Values(128u, 256u, 512u, 1024u, 1536u, 2048u, 4096u));

}  // namespace
}  // namespace spv::slab
