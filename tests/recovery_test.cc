// spv::recovery — quarantine, supervised re-attach, permanent detach — plus
// the kRevoked status unification, the deferred flush-queue drain regression,
// the NIC poll-deadline budget, and a fixed-seed short-soak smoke.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/machine.h"
#include "device/malicious_nic.h"
#include "fault/fault.h"
#include "net/layouts.h"
#include "recovery/recovery.h"
#include "soak/soak.h"

namespace spv {
namespace {

struct SweepCase {
  iommu::InvalidationMode mode;
  bool fast_path;
};

std::string CaseName(const SweepCase& c) {
  return std::string(c.mode == iommu::InvalidationMode::kStrict ? "strict" : "deferred") +
         (c.fast_path ? "/fast" : "/legacy");
}

const SweepCase kSweep[] = {
    {iommu::InvalidationMode::kDeferred, true},
    {iommu::InvalidationMode::kDeferred, false},
    {iommu::InvalidationMode::kStrict, true},
    {iommu::InvalidationMode::kStrict, false},
};

core::MachineConfig SupervisedConfig(const SweepCase& c, uint64_t seed = 99) {
  core::MachineConfig config;
  config.seed = seed;
  config.iommu.mode = c.mode;
  config.iommu.fast_path.rcache_enabled = c.fast_path;
  config.iommu.fast_path.hash_index_enabled = c.fast_path;
  config.iommu.fast_path.walk_cache_enabled = c.fast_path;
  config.telemetry.enabled = true;
  config.recovery.enabled = true;
  config.recovery.reattach_backoff_cycles = SimClock::UsToCycles(10);
  config.recovery.probation_cycles = SimClock::UsToCycles(10);
  return config;
}

// Drives the device's health score over the threshold with an IOMMU fault
// storm (wild DMA writes the translation tables reject).
void FaultStorm(device::MaliciousNic& device, int writes = 30) {
  for (int i = 0; i < writes; ++i) {
    EXPECT_FALSE(
        device.port().WriteU64(Iova{(1ull << 40) + (uint64_t{kPageSize} * i)}, 0xbad).ok());
  }
}

// ---- Health-triggered lifecycle, swept over mode x path ------------------------

TEST(RecoveryLifecycle, BreachQuarantineReattachProbationSweep) {
  for (const SweepCase& c : kSweep) {
    SCOPED_TRACE(CaseName(c));
    core::Machine machine{SupervisedConfig(c)};
    net::NicDriver::Config nic_config;
    nic_config.rx_ring_size = 8;
    net::NicDriver& nic = machine.AddNicDriver(nic_config);
    device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
    nic.AttachDevice(&device);
    ASSERT_TRUE(nic.FillRxRing().ok());
    ASSERT_GT(machine.dma().live_mappings(), 0u);

    FaultStorm(device);
    EXPECT_EQ(machine.recovery().state(nic.device_id()), recovery::DeviceState::kHealthy);
    EXPECT_GT(machine.recovery().Poll(), 0u);
    EXPECT_EQ(machine.recovery().state(nic.device_id()),
              recovery::DeviceState::kQuarantined);

    // Quarantine revoked every mapping and fenced the device.
    EXPECT_EQ(machine.dma().live_mappings(), 0u);
    EXPECT_TRUE(machine.iommu().IsFenced(nic.device_id()));
    EXPECT_EQ(machine.iommu().pending_invalidations().size(), 0u)
        << "quarantine must drain the fenced device's flush-queue entries";
    device.rx_posted().clear();  // device reset: stale descriptors are gone

    // Too early: the backoff window holds.
    EXPECT_EQ(machine.recovery().Poll(), 0u);

    machine.clock().AdvanceUs(11);
    EXPECT_GT(machine.recovery().Poll(), 0u);
    EXPECT_EQ(machine.recovery().state(nic.device_id()), recovery::DeviceState::kProbation);
    EXPECT_FALSE(machine.iommu().IsFenced(nic.device_id()));
    EXPECT_GT(machine.dma().live_mappings(), 0u) << "re-attach must refill the RX ring";
    EXPECT_FALSE(device.rx_posted().empty());

    machine.clock().AdvanceUs(11);
    EXPECT_GT(machine.recovery().Poll(), 0u);
    EXPECT_EQ(machine.recovery().state(nic.device_id()), recovery::DeviceState::kHealthy);
    EXPECT_EQ(machine.recovery().device_status(nic.device_id()).reattach_attempts, 0u)
        << "a clean probation restores the retry budget";

    Status invariants = machine.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.message();
  }
}

TEST(RecoveryLifecycle, RetryBudgetExhaustionDetachesPermanently) {
  SweepCase c{iommu::InvalidationMode::kDeferred, true};
  core::MachineConfig config = SupervisedConfig(c);
  config.recovery.max_reattach_attempts = 1;
  core::Machine machine{config};
  net::NicDriver& nic = machine.AddNicDriver({});
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  ASSERT_TRUE(nic.FillRxRing().ok());

  FaultStorm(device);
  ASSERT_GT(machine.recovery().Poll(), 0u);  // quarantine #1
  device.rx_posted().clear();
  machine.clock().AdvanceUs(11);
  ASSERT_GT(machine.recovery().Poll(), 0u);  // re-attach attempt 1 -> probation
  ASSERT_EQ(machine.recovery().state(nic.device_id()), recovery::DeviceState::kProbation);

  FaultStorm(device);  // misbehaves on probation
  ASSERT_GT(machine.recovery().Poll(), 0u);  // quarantine #2, backoff doubled
  device.rx_posted().clear();
  const auto status = machine.recovery().device_status(nic.device_id());
  EXPECT_EQ(status.quarantines, 2u);

  machine.clock().AdvanceUs(100);
  ASSERT_GT(machine.recovery().Poll(), 0u);  // attempt 2 > budget -> detach
  EXPECT_EQ(machine.recovery().state(nic.device_id()), recovery::DeviceState::kDetached);
  EXPECT_EQ(machine.recovery().total_detaches(), 1u);
  EXPECT_FALSE(machine.iommu().IsAttached(nic.device_id()));
  EXPECT_TRUE(machine.iommu().IsRevoked(nic.device_id()));

  // Detached is terminal: more time and more polls change nothing.
  machine.clock().AdvanceUs(1000);
  EXPECT_EQ(machine.recovery().Poll(), 0u);
  EXPECT_EQ(machine.recovery().state(nic.device_id()), recovery::DeviceState::kDetached);

  Status invariants = machine.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.message();
}

// ---- Satellite (a): one status code, idempotent transitions --------------------

TEST(RevokedStatus, QuarantineAndDetachUnifyOnKRevoked) {
  core::Machine machine{SupervisedConfig({iommu::InvalidationMode::kDeferred, true})};
  net::NicDriver& nic = machine.AddNicDriver({});
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  ASSERT_TRUE(nic.FillRxRing().ok());
  const DeviceId id = nic.device_id();

  ASSERT_TRUE(machine.recovery().Quarantine(id, "test").ok());

  // Every device-side and DMA-API operation answers with kRevoked.
  EXPECT_EQ(device.port().WriteU64(Iova{0x1000}, 1).code(), StatusCode::kRevoked);
  uint8_t byte = 0;
  EXPECT_EQ(device.port().Read(Iova{0x1000}, {&byte, 1}).code(), StatusCode::kRevoked);
  Result<Kva> buf = machine.slab().Kmalloc(256, "revoked_test");
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(
      machine.dma().MapSingle(id, *buf, 256, dma::DmaDirection::kFromDevice).status().code(),
      StatusCode::kRevoked);
  EXPECT_GT(machine.iommu().stats().fenced_accesses, 0u);
  EXPECT_GT(machine.telemetry().counter_value("iommu.fenced_accesses"), 0u);

  // A never-attached device stays kInvalidArgument — revocation is a memory,
  // not a default.
  const DeviceId stranger{4242};
  device::DevicePort stranger_port{machine.iommu(), stranger};
  EXPECT_EQ(stranger_port.WriteU64(Iova{0x1000}, 1).code(), StatusCode::kInvalidArgument);

  // Same answer after permanent detach.
  ASSERT_TRUE(machine.recovery().Detach(id, "test").ok());
  EXPECT_EQ(device.port().WriteU64(Iova{0x1000}, 1).code(), StatusCode::kRevoked);
  EXPECT_EQ(
      machine.dma().MapSingle(id, *buf, 256, dma::DmaDirection::kFromDevice).status().code(),
      StatusCode::kRevoked);
  ASSERT_TRUE(machine.slab().Kfree(*buf).ok());

  Status invariants = machine.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.message();
}

TEST(RevokedStatus, QuarantineAndDetachAreIdempotent) {
  core::Machine machine{SupervisedConfig({iommu::InvalidationMode::kDeferred, true})};
  net::NicDriver& nic = machine.AddNicDriver({});
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  ASSERT_TRUE(nic.FillRxRing().ok());
  const DeviceId id = nic.device_id();

  EXPECT_TRUE(machine.recovery().Quarantine(id, "first").ok());
  EXPECT_TRUE(machine.recovery().Quarantine(id, "second").ok());
  EXPECT_EQ(machine.recovery().device_status(id).quarantines, 1u)
      << "double quarantine must not re-run the teardown";
  EXPECT_EQ(machine.recovery().total_quarantines(), 1u);

  EXPECT_TRUE(machine.iommu().FenceDevice(id).ok());  // IOMMU layer: also a no-op

  EXPECT_TRUE(machine.recovery().Detach(id, "first").ok());
  EXPECT_TRUE(machine.recovery().Detach(id, "second").ok());
  EXPECT_TRUE(machine.iommu().DetachDevice(id).ok());
  EXPECT_EQ(machine.recovery().total_detaches(), 1u);
  EXPECT_EQ(machine.iommu().stats().device_detaches, 1u);

  // Unknown devices are NotFound at both layers.
  EXPECT_EQ(machine.recovery().Quarantine(DeviceId{777}, "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(machine.iommu().DetachDevice(DeviceId{777}).code(), StatusCode::kNotFound);

  Status invariants = machine.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.message();
}

TEST(RevokedStatus, StackShedsTrafficForQuarantinedEgress) {
  core::Machine machine{SupervisedConfig({iommu::InvalidationMode::kDeferred, true})};
  net::NicDriver& nic = machine.AddNicDriver({});
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  ASSERT_TRUE(nic.FillRxRing().ok());

  net::PacketHeader header{.src_ip = machine.stack().config().local_ip,
                           .dst_ip = 0x0a000042,
                           .src_port = 1000,
                           .dst_port = 2000,
                           .proto = net::kProtoUdp};
  std::vector<uint8_t> payload(100, 0x11);
  ASSERT_TRUE(machine.stack().SendPacket(header, payload).ok());
  EXPECT_EQ(machine.stack().stats().tx_shed, 0u);

  ASSERT_TRUE(machine.recovery().Quarantine(nic.device_id(), "test").ok());
  // Shedding is service continuity, not an error: SendPacket still returns Ok.
  EXPECT_TRUE(machine.stack().SendPacket(header, payload).ok());
  EXPECT_EQ(machine.stack().stats().tx_shed, 1u);
  EXPECT_GT(machine.telemetry().counter_value("stack.tx_shed"), 0u);

  Status invariants = machine.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.message();
}

// ---- Satellite (b): deferred flush-queue entries drain on quarantine -----------

TEST(QuarantineDrain, DeferredEntriesDrainAndStaleWindowCloses) {
  for (const SweepCase& c : kSweep) {
    SCOPED_TRACE(CaseName(c));
    core::Machine machine{SupervisedConfig(c)};
    const DeviceId id{42};
    machine.iommu().AttachDevice(id);
    device::DevicePort port{machine.iommu(), id};

    Result<Kva> buf = machine.slab().Kmalloc(1024, "drain_test");
    ASSERT_TRUE(buf.ok());
    Result<Iova> iova =
        machine.dma().MapSingle(id, *buf, 1024, dma::DmaDirection::kFromDevice);
    ASSERT_TRUE(iova.ok());
    // Warm the IOTLB, then unmap: in deferred mode this queues the
    // invalidation and leaves the stale entry translating (the Fig 6 window).
    ASSERT_TRUE(port.WriteU64(*iova, 0xabc).ok());
    ASSERT_TRUE(
        machine.dma().UnmapSingle(id, *iova, 1024, dma::DmaDirection::kFromDevice).ok());
    const bool deferred = c.mode == iommu::InvalidationMode::kDeferred;
    EXPECT_EQ(machine.iommu().pending_invalidations().empty(), !deferred);
    if (deferred) {
      // The stale window is open: the unmapped IOVA still translates.
      EXPECT_TRUE(port.WriteU64(*iova, 0xdef).ok());
    }

    const uint64_t drained_before = machine.iommu().stats().drained_device_entries;
    ASSERT_TRUE(machine.iommu().FenceDevice(id).ok());
    EXPECT_TRUE(machine.iommu().pending_invalidations().empty());
    EXPECT_EQ(machine.iommu().stats().drained_device_entries > drained_before, deferred)
        << "only deferred mode has queue entries to drain";

    // The fence lifts — and the stale window must NOT reopen: the drain
    // invalidated the IOTLB entries before recycling the parked IOVAs.
    ASSERT_TRUE(machine.iommu().UnfenceDevice(id).ok());
    EXPECT_FALSE(port.WriteU64(*iova, 0x123).ok())
        << "unmapped IOVA must not translate after a quarantine drain";

    ASSERT_TRUE(machine.slab().Kfree(*buf).ok());
    Status invariants = machine.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.message();
  }
}

TEST(QuarantineDrain, DrainSparesOtherDevicesQueueEntries) {
  core::MachineConfig config =
      SupervisedConfig({iommu::InvalidationMode::kDeferred, true});
  core::Machine machine{config};
  const DeviceId victim{42};
  const DeviceId bystander{43};
  machine.iommu().AttachDevice(victim);
  machine.iommu().AttachDevice(bystander);

  for (DeviceId id : {victim, bystander}) {
    Result<Kva> buf = machine.slab().Kmalloc(512, "drain_pair");
    ASSERT_TRUE(buf.ok());
    Result<Iova> iova = machine.dma().MapSingle(id, *buf, 512, dma::DmaDirection::kFromDevice);
    ASSERT_TRUE(iova.ok());
    ASSERT_TRUE(machine.dma().UnmapSingle(id, *iova, 512, dma::DmaDirection::kFromDevice).ok());
    ASSERT_TRUE(machine.slab().Kfree(*buf).ok());
  }
  ASSERT_EQ(machine.iommu().pending_invalidations().size(), 2u);

  ASSERT_TRUE(machine.iommu().FenceDevice(victim).ok());
  const auto pending = machine.iommu().pending_invalidations();
  ASSERT_EQ(pending.size(), 1u) << "the bystander's deferred entry must survive";
  EXPECT_EQ(pending[0].device.value, bystander.value);

  Status invariants = machine.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.message();
}

// ---- Satellite (c): bounded NIC polling loops ----------------------------------

TEST(PollDeadline, FillRxRingYieldsAndRetriesFinishTheJob) {
  core::MachineConfig config;
  config.seed = 5;
  config.telemetry.enabled = true;
  core::Machine machine{config};
  net::NicDriver::Config nic_config;
  nic_config.rx_ring_size = 8;
  // A one-cycle budget: the first slot's map work exhausts it, so every poll
  // posts exactly one buffer and yields.
  nic_config.poll_deadline_cycles = 1;
  net::NicDriver& nic = machine.AddNicDriver(nic_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);

  (void)nic.FillRxRing();
  EXPECT_GE(nic.poll_deadline_hits(), 1u);
  EXPECT_LT(device.rx_posted().size(), 8u) << "the loop must yield, not run to completion";
  EXPECT_GT(machine.telemetry().counter_value("nic.poll_deadline_exceeded"), 0u);

  // The budget bounds each poll, not overall progress: repeated retries fill
  // the ring one slot at a time.
  for (int i = 0; i < 16 && device.rx_posted().size() < 8u; ++i) {
    (void)nic.RetryRefills();
  }
  EXPECT_EQ(device.rx_posted().size(), 8u);

  ASSERT_TRUE(nic.Shutdown().ok());
  Status invariants = machine.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.message();
}

// ---- Recovery disabled: the paper's world is untouched -------------------------

TEST(RecoveryDisabled, FaultStormsDoNotQuarantine) {
  core::MachineConfig config;
  config.seed = 6;
  config.telemetry.enabled = true;  // scorer must stay off the bus regardless
  core::Machine machine{config};
  net::NicDriver& nic = machine.AddNicDriver({});
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  ASSERT_TRUE(nic.FillRxRing().ok());

  FaultStorm(device, 100);
  EXPECT_EQ(machine.recovery().Poll(), 0u);
  EXPECT_EQ(machine.recovery().state(nic.device_id()), recovery::DeviceState::kHealthy);
  EXPECT_EQ(machine.recovery().total_quarantines(), 0u);
  EXPECT_FALSE(machine.iommu().IsFenced(nic.device_id()));

  ASSERT_TRUE(nic.Shutdown().ok());
  Status invariants = machine.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.message();
}

// ---- Satellite (d): fixed-seed short-soak smoke --------------------------------

TEST(SoakSmoke, FixedSeedShortSoakEndsClean) {
  soak::SoakConfig config;
  config.seed = 1234;
  config.target_cycles = UINT64_MAX;  // epoch-pinned for a stable runtime
  config.max_epochs = 60;
  const soak::SoakReport report = soak::RunSoak(config);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.epochs, 60u);
  EXPECT_GT(report.echo_ok, 0u);
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_GT(report.quarantines, 0u) << "the abuse storm must trip supervision";
  EXPECT_EQ(report.leaked_mappings, 0u);
  EXPECT_EQ(report.leaked_iova_entries, 0u);

  // Determinism: the same seed and config reproduce the report byte for byte.
  const soak::SoakReport again = soak::RunSoak(config);
  EXPECT_EQ(report.ToJson(), again.ToJson());
}

TEST(SoakSmoke, RecoveryOffSoakStaysLeakFree) {
  soak::SoakConfig config;
  config.seed = 1234;
  config.target_cycles = UINT64_MAX;
  config.max_epochs = 40;
  config.recovery_enabled = false;
  const soak::SoakReport report = soak::RunSoak(config);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.quarantines, 0u);
  EXPECT_EQ(report.leaked_mappings, 0u);
}

}  // namespace
}  // namespace spv
