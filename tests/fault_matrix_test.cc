// Fault-injection matrix: every FaultSite is driven against a live machine in
// {strict, deferred} invalidation x {fast, legacy} map-path configurations,
// with a mixed RX/TX/allocator workload. After the storm, the machine must
// pass Machine::CheckInvariants() with zero leaked mappings or frags — the
// error paths either recover or fail with a clean Status, never by losing
// resources. Plus targeted regressions for the hardened error paths
// (MapSg rollback, UnmapSingle tracker ordering, allocator OOM Statuses).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/machine.h"
#include "device/device_port.h"
#include "fault/fault.h"
#include "net/layouts.h"
#include "net/nic_driver.h"
#include "net/stack.h"
#include "nvme/nvme_controller.h"
#include "nvme/nvme_driver.h"
#include "test_device.h"

namespace spv::fault {
namespace {

using spv::testing::TestNicDevice;

// ---- engine unit behaviour --------------------------------------------------

TEST(FaultEngineTest, DisarmedEngineNeverInjects) {
  FaultEngine engine;
  EXPECT_FALSE(engine.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(engine.ShouldInject(FaultSite::kPageAlloc));
  }
  FaultPlan empty;
  engine.Arm(empty, 42);
  EXPECT_FALSE(engine.armed());  // an empty plan leaves the engine disarmed
}

TEST(FaultEngineTest, EveryNthFiresDeterministically) {
  FaultPlan plan;
  plan.EveryNth(FaultSite::kSlabAlloc, 3);
  FaultEngine engine;
  engine.Arm(plan, 7);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(engine.ShouldInject(FaultSite::kSlabAlloc));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(engine.site_stats(FaultSite::kSlabAlloc).arms, 9u);
  EXPECT_EQ(engine.site_stats(FaultSite::kSlabAlloc).injections, 3u);
}

TEST(FaultEngineTest, ProbabilityStreamIsSeedDeterministic) {
  FaultPlan plan;
  plan.Probability(FaultSite::kIovaAlloc, 0.5);
  FaultEngine a;
  FaultEngine b;
  a.Arm(plan, 1234);
  b.Arm(plan, 1234);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.ShouldInject(FaultSite::kIovaAlloc),
              b.ShouldInject(FaultSite::kIovaAlloc));
  }
  // A different seed must produce a different draw sequence somewhere.
  FaultEngine c;
  c.Arm(plan, 4321);
  bool diverged = false;
  FaultEngine a2;
  a2.Arm(plan, 1234);
  for (int i = 0; i < 256 && !diverged; ++i) {
    diverged = a2.ShouldInject(FaultSite::kIovaAlloc) !=
               c.ShouldInject(FaultSite::kIovaAlloc);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultEngineTest, OneShotFiresExactlyOnce) {
  FaultPlan plan;
  plan.OneShot(FaultSite::kIoPageTableMap, 2);
  FaultEngine engine;
  engine.Arm(plan, 1);
  EXPECT_FALSE(engine.ShouldInject(FaultSite::kIoPageTableMap));
  EXPECT_TRUE(engine.ShouldInject(FaultSite::kIoPageTableMap));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(engine.ShouldInject(FaultSite::kIoPageTableMap));
  }
  EXPECT_EQ(engine.site_stats(FaultSite::kIoPageTableMap).injections, 1u);
}

TEST(FaultEngineTest, SiteNamesRoundTrip) {
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    const FaultSite site = static_cast<FaultSite>(i);
    auto back = FaultSiteFromName(FaultSiteName(site));
    ASSERT_TRUE(back.has_value()) << FaultSiteName(site);
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(FaultSiteFromName("not_a_site").has_value());
}

TEST(FaultEngineTest, MachineDefaultsToDisarmed) {
  core::MachineConfig config;
  config.phys_pages = 4096;
  core::Machine machine{config};
  EXPECT_FALSE(machine.fault().armed());
  EXPECT_EQ(machine.fault().total_injections(), 0u);
}

// ---- allocator OOM paths return Status, never abort -------------------------

TEST(FaultOomTest, KmallocSurvivesInjectedExhaustion) {
  core::MachineConfig config;
  config.phys_pages = 4096;
  config.fault_plan.OneShot(FaultSite::kSlabAlloc, 1);
  core::Machine machine{config};
  auto first = machine.slab().Kmalloc(256, "oom_probe");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);
  // The allocator is fully usable afterwards: nothing was carved or leaked.
  auto second = machine.slab().Kmalloc(256, "oom_probe");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(machine.slab().Kfree(*second).ok());
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

TEST(FaultOomTest, KmallocLargeSurvivesInjectedPageExhaustion) {
  core::MachineConfig config;
  config.phys_pages = 4096;
  config.fault_plan.OneShot(FaultSite::kPageAlloc, 1);
  core::Machine machine{config};
  auto first = machine.slab().Kmalloc(2 * kPageSize, "oom_large");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);
  auto second = machine.slab().Kmalloc(2 * kPageSize, "oom_large");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(machine.slab().Kfree(*second).ok());
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

TEST(FaultOomTest, PageFragAllocSurvivesInjectedExhaustion) {
  core::MachineConfig config;
  config.phys_pages = 4096;
  config.fault_plan.OneShot(FaultSite::kPageFragAlloc, 1);
  core::Machine machine{config};
  slab::PageFragPool& pool = machine.frag_pool(CpuId{0});
  auto first = pool.Alloc(1024, net::kSmpCacheBytes, "oom_frag");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kResourceExhausted);
  auto second = pool.Alloc(1024, net::kSmpCacheBytes, "oom_frag");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(pool.Free(*second).ok());
  EXPECT_EQ(pool.live_frags(), 0u);
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

// ---- DMA error-path regressions ---------------------------------------------

TEST(FaultDmaTest, MapSgRollsBackCleanlyOnMidListMapFailure) {
  core::MachineConfig config;
  config.phys_pages = 4096;
  // Fail the 3rd I/O page-table map: mid-scatter-gather, after two entries
  // already mapped. MapSg must unwind them without leaking IOVAs or PTEs.
  config.fault_plan.OneShot(FaultSite::kIoPageTableMap, 3);
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);

  std::vector<Kva> bufs;
  std::vector<dma::SgEntry> entries;
  for (int i = 0; i < 4; ++i) {
    auto buf = machine.slab().Kmalloc(512, "sg_buf");
    ASSERT_TRUE(buf.ok());
    bufs.push_back(*buf);
    entries.push_back(dma::SgEntry{*buf, 512});
  }
  auto iovas = machine.dma().MapSg(dev, entries, dma::DmaDirection::kToDevice);
  ASSERT_FALSE(iovas.ok());
  EXPECT_EQ(machine.dma().live_mappings(), 0u);
  EXPECT_TRUE(machine.CheckInvariants().ok());

  // The one-shot fired; the identical request must now succeed — proof that
  // the rollback returned every IOVA and PTE it had taken.
  auto retry = machine.dma().MapSg(dev, entries, dma::DmaDirection::kToDevice);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(machine.dma().live_mappings(), entries.size());
  EXPECT_TRUE(machine.dma().UnmapSg(dev, *retry, entries,
                                    dma::DmaDirection::kToDevice).ok());
  machine.iommu().FlushNow();
  EXPECT_EQ(machine.dma().live_mappings(), 0u);
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

TEST(FaultDmaTest, MapSgRollsBackOnIovaExhaustion) {
  core::MachineConfig config;
  config.phys_pages = 4096;
  config.fault_plan.OneShot(FaultSite::kIovaAlloc, 2);
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  std::vector<dma::SgEntry> entries;
  for (int i = 0; i < 3; ++i) {
    auto buf = machine.slab().Kmalloc(256, "sg_buf");
    ASSERT_TRUE(buf.ok());
    entries.push_back(dma::SgEntry{*buf, 256});
  }
  auto iovas = machine.dma().MapSg(dev, entries, dma::DmaDirection::kFromDevice);
  ASSERT_FALSE(iovas.ok());
  EXPECT_EQ(iovas.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(machine.dma().live_mappings(), 0u);
  machine.iommu().FlushNow();
  EXPECT_TRUE(machine.CheckInvariants().ok());
}

TEST(FaultDmaTest, UnmapSingleKeepsTrackingWhenIommuUnmapFails) {
  core::MachineConfig config;
  config.phys_pages = 4096;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  auto buf = machine.slab().Kmalloc(512, "track_buf");
  ASSERT_TRUE(buf.ok());
  auto iova = machine.dma().MapSingle(dev, *buf, 512, dma::DmaDirection::kToDevice);
  ASSERT_TRUE(iova.ok());
  // Sabotage: rip the translation out behind the DMA API's back, so its
  // UnmapRange call fails.
  ASSERT_TRUE(machine.iommu().UnmapRange(dev, iova->PageBase(), 1).ok());
  EXPECT_FALSE(machine.dma().UnmapSingle(dev, *iova, 512,
                                         dma::DmaDirection::kToDevice).ok());
  // Regression (tracker ordering): the failed unmap must NOT forget the
  // mapping — an audit can still see what leaked instead of silence.
  EXPECT_TRUE(machine.dma().FindMapping(dev, *iova).has_value());
  EXPECT_EQ(machine.dma().live_mappings(), 1u);
}

// ---- the matrix --------------------------------------------------------------

struct MatrixCase {
  FaultSite site;
  iommu::InvalidationMode mode;
  bool fast_path;
};

std::string MatrixCaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name{FaultSiteName(info.param.site)};
  name += info.param.mode == iommu::InvalidationMode::kStrict ? "_strict" : "_deferred";
  name += info.param.fast_path ? "_fast" : "_legacy";
  return name;
}

std::vector<MatrixCase> MatrixCasesInRange(size_t first, size_t last) {
  std::vector<MatrixCase> cases;
  for (size_t i = first; i < last; ++i) {
    for (iommu::InvalidationMode mode :
         {iommu::InvalidationMode::kStrict, iommu::InvalidationMode::kDeferred}) {
      for (bool fast : {true, false}) {
        cases.push_back(MatrixCase{static_cast<FaultSite>(i), mode, fast});
      }
    }
  }
  return cases;
}

// Allocator/IOMMU/NIC sites run against the networking workload; the kNvme*
// block gets its own storage workload below (the NIC path never arms them).
std::vector<MatrixCase> AllMatrixCases() {
  return MatrixCasesInRange(0, kFirstNvmeSite);
}

class FaultMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(FaultMatrixTest, SurvivesWithInvariantsIntact) {
  const MatrixCase& param = GetParam();

  core::MachineConfig config;
  config.phys_pages = 4096;
  config.seed = 20240806;
  config.telemetry.enabled = true;
  config.iommu.mode = param.mode;
  config.iommu.fast_path.rcache_enabled = param.fast_path;
  config.iommu.fast_path.hash_index_enabled = param.fast_path;
  config.iommu.fast_path.walk_cache_enabled = param.fast_path;
  config.fault_plan.EveryNth(param.site, 3);
  core::Machine machine{config};
  ASSERT_TRUE(machine.fault().armed());

  net::NicDriver::Config driver_config;
  driver_config.name = "fnic";
  driver_config.rx_ring_size = 8;
  driver_config.tx_ring_size = 8;
  net::NicDriver& driver = machine.AddNicDriver(driver_config);
  TestNicDevice device{driver.device_id(), machine.iommu()};
  driver.AttachDevice(&device);
  machine.stack().set_egress(&driver);
  (void)driver.FillRxRing();  // may partially fail under injection — tolerated

  // A socket to terminate RX traffic; creation retries under slab faults.
  Result<Kva> socket = InvalidArgument("unattempted");
  for (int attempt = 0; attempt < 5 && !socket.ok(); ++attempt) {
    socket = machine.stack().CreateSocket(80, /*echo=*/false);
  }
  ASSERT_TRUE(socket.ok());

  const net::PacketHeader rx_header{.src_ip = 0x0a000002,
                                    .dst_ip = 0x0a000001,
                                    .src_port = 5555,
                                    .dst_port = 80,
                                    .proto = net::kProtoUdp,
                                    .flags = 0,
                                    .payload_len = 32,
                                    .seq = 1};
  const net::PacketHeader tx_header{.src_ip = 0x0a000001,
                                    .dst_ip = 0x0a000009,
                                    .src_port = 80,
                                    .dst_port = 5555,
                                    .proto = net::kProtoUdp,
                                    .flags = 0,
                                    .payload_len = 32,
                                    .seq = 2};
  const std::vector<uint8_t> payload(32, 0x5a);
  const uint32_t wire_len =
      static_cast<uint32_t>(net::PacketHeader::kSize + payload.size());

  for (int i = 0; i < 48; ++i) {
    (void)driver.RetryRefills();
    // RX: inject a frame and complete it through the (possibly faulting)
    // driver; survivors go up the stack.
    auto index = device.InjectRx(machine.kmem(), rx_header, payload);
    if (index.ok()) {
      auto skb = driver.CompleteRx(*index, wire_len);
      if (skb.ok() && *skb != nullptr) {
        (void)machine.stack().NapiGroReceive(std::move(*skb));
      }
    }
    // TX: post a packet and service whatever completions the device saw.
    (void)machine.stack().SendPacket(tx_header, payload);
    for (const auto& descriptor : device.tx_posted()) {
      (void)machine.stack().OnTxCompleted(descriptor.index);
    }
    device.tx_posted().clear();
    // Allocator churn so kPageAlloc/kSlabAlloc sites see steady traffic.
    auto churn = machine.slab().Kmalloc(2 * kPageSize, "fault_churn");
    if (churn.ok()) {
      (void)machine.slab().Kfree(*churn);
    }
    if (i % 8 == 7) {
      // Let the TX watchdog and the deferred-invalidation machinery run.
      machine.clock().Advance(SimClock::MsToCycles(6000));
      (void)driver.CheckTxTimeout();
      (void)driver.RequeueTimedOut();
      machine.iommu().ProcessDeferredTimer();
      machine.iommu().FlushNow();
      (void)machine.stack().NapiComplete();
    }
  }

  // The armed site must actually have fired — otherwise the sweep is theatre.
  EXPECT_GE(machine.fault().site_stats(param.site).injections, 1u)
      << "site never fired: " << FaultSiteName(param.site);

  // Recovery phase: disarm and drain everything still in flight.
  machine.fault().Disarm();
  (void)driver.RetryRefills();
  for (uint32_t i = 0; i < driver_config.tx_ring_size; ++i) {
    (void)machine.stack().OnTxCompleted(i);
  }
  for (int rounds = 0; rounds < 8 && driver.tx_requeue_depth() > 0; ++rounds) {
    if (driver.RequeueTimedOut() == 0) {
      break;
    }
    for (uint32_t i = 0; i < driver_config.tx_ring_size; ++i) {
      (void)machine.stack().OnTxCompleted(i);
    }
  }
  (void)machine.stack().NapiComplete();
  Status shutdown = driver.Shutdown();
  EXPECT_TRUE(shutdown.ok()) << shutdown.message();
  machine.iommu().FlushNow();

  // Leak and invariant checks: every fault was either recovered or failed
  // cleanly; nothing may be left mapped, allocated, or inconsistent.
  EXPECT_EQ(machine.dma().live_mappings(), 0u);
  EXPECT_EQ(machine.frag_pool(driver_config.cpu).live_frags(), 0u);
  EXPECT_EQ(driver.pending_tx(), 0u);
  EXPECT_EQ(driver.tx_requeue_depth(), 0u);
  Status invariants = machine.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.message();

  // CI artifact: dump the run's telemetry as JSON when a directory is given.
  if (const char* out_dir = std::getenv("SPV_FAULT_TELEMETRY_OUT")) {
    std::ofstream out{std::string(out_dir) + "/fault_matrix_" +
                      MatrixCaseName({GetParam(), 0}) + ".json"};
    out << machine.telemetry().ExportJson(256);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSites, FaultMatrixTest,
                         ::testing::ValuesIn(AllMatrixCases()), MatrixCaseName);

// ---- the NVMe matrix ---------------------------------------------------------
//
// Same contract as the NIC sweep — every kNvme* site fires against a live
// storage workload and the machine must come out leak-free — but the traffic
// is block IO through NvmeDriver against an honest NvmeController, with the
// watchdog given room to fail-and-reset the IO queue when completions vanish.

class NvmeFaultMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(NvmeFaultMatrixTest, SurvivesWithInvariantsIntact) {
  const MatrixCase& param = GetParam();

  core::MachineConfig config;
  config.phys_pages = 4096;
  config.seed = 20260808;
  config.telemetry.enabled = true;
  config.iommu.mode = param.mode;
  config.iommu.fast_path.rcache_enabled = param.fast_path;
  config.iommu.fast_path.hash_index_enabled = param.fast_path;
  config.iommu.fast_path.walk_cache_enabled = param.fast_path;
  core::Machine machine{config};

  nvme::NvmeDriver::Config driver_config;
  driver_config.name = "fnvme";
  driver_config.io_queue_entries = 16;
  nvme::NvmeDriver& driver = machine.AddNvmeDriver(driver_config);
  nvme::NvmeController controller{
      device::DevicePort(machine.iommu(), driver.device_id())};
  controller.set_fault_engine(&machine.fault());
  controller.set_tracer(machine.tracer());
  driver.AttachDevice(&controller);

  // Bring-up runs clean; the storm starts once the IO queue is live so every
  // run exercises the same workload regardless of which site is armed.
  ASSERT_TRUE(driver.Init().ok());
  FaultPlan plan;
  plan.EveryNth(param.site, 3);
  machine.fault().Arm(plan, config.seed);
  ASSERT_TRUE(machine.fault().armed());

  // Block sizes covering every PRP shape: in-page, PRP2-as-page, single
  // list segment, and a chained list (>15 extra pages).
  const uint16_t kShapes[] = {1, 8, 16, 64, 144};
  std::vector<uint8_t> pattern(static_cast<size_t>(144) * nvme::kLbaSize, 0xa5);
  for (int i = 0; i < 40; ++i) {
    const uint16_t nblocks = kShapes[static_cast<size_t>(i) % 5];
    const uint64_t bytes = static_cast<uint64_t>(nblocks) * nvme::kLbaSize;
    auto buf = machine.slab().Kmalloc(bytes, "nvme_fault_io");
    if (!buf.ok()) {
      continue;
    }
    ASSERT_TRUE(machine.kmem()
                    .Write(*buf, std::span<const uint8_t>(pattern.data(), bytes))
                    .ok());
    const uint64_t slba = static_cast<uint64_t>(i % 8) * 144;
    // Writes and reads may fail with a clean Status under injection; what
    // they may not do is leak the mapping or wedge the driver.
    (void)driver.WriteBlocks(slba, nblocks, *buf);
    (void)driver.ReadBlocks(slba, nblocks, *buf);
    (void)machine.slab().Kfree(*buf);
    if (i % 8 == 7) {
      // Let vanished completions age out: the watchdog fails them and
      // resets the IO queue (the storage TX-watchdog analogue).
      machine.clock().Advance(SimClock::MsToCycles(6000));
      (void)driver.CheckTimeouts();
      machine.iommu().ProcessDeferredTimer();
      machine.iommu().FlushNow();
    }
  }

  EXPECT_GE(machine.fault().site_stats(param.site).injections, 1u)
      << "site never fired: " << FaultSiteName(param.site);

  // Recovery: disarm, rebuild a queue the storm may have fenced, drain, and
  // verify a clean round trip works again.
  machine.fault().Disarm();
  if (!driver.io_queue_live()) {
    EXPECT_TRUE(driver.Resume().ok());
  }
  machine.clock().Advance(SimClock::MsToCycles(6000));
  (void)driver.CheckTimeouts();
  (void)driver.PollCompletions();
  auto probe = machine.slab().Kmalloc(nvme::kLbaSize, "nvme_fault_probe");
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(driver.WriteBlocks(0, 1, *probe).ok());
  EXPECT_TRUE(driver.ReadBlocks(0, 1, *probe).ok());
  ASSERT_TRUE(machine.slab().Kfree(*probe).ok());

  Status shutdown = driver.Shutdown();
  EXPECT_TRUE(shutdown.ok()) << shutdown.message();
  machine.iommu().FlushNow();

  EXPECT_EQ(driver.outstanding(), 0u);
  EXPECT_EQ(machine.dma().live_mappings(), 0u);
  EXPECT_EQ(machine.frag_pool(driver_config.cpu).live_frags(), 0u);
  Status invariants = machine.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.message();

  if (const char* out_dir = std::getenv("SPV_FAULT_TELEMETRY_OUT")) {
    std::ofstream out{std::string(out_dir) + "/nvme_fault_matrix_" +
                      MatrixCaseName({GetParam(), 0}) + ".json"};
    out << machine.telemetry().ExportJson(256);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NvmeSites, NvmeFaultMatrixTest,
    ::testing::ValuesIn(MatrixCasesInRange(kFirstNvmeSite, kNumFaultSites)),
    MatrixCaseName);

}  // namespace
}  // namespace spv::fault
