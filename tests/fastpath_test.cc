// Fast-path semantics: the rcache magazines, mapping hash index and walk
// cache must be observationally equivalent to the slow path — in particular
// they must preserve every property the paper's attacks depend on (distinct
// IOVAs per map, parked IOVAs during the deferred window, stale IOTLB hits).

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <set>
#include <vector>

#include "base/rng.h"
#include "core/machine.h"
#include "dma/mapping_index.h"
#include "iommu/io_page_table.h"
#include "iommu/iommu.h"
#include "iommu/iova_allocator.h"

namespace spv {
namespace {

using iommu::AccessRights;
using iommu::FastPathConfig;
using iommu::Iommu;
using iommu::IovaAllocator;

FastPathConfig AllOff() {
  FastPathConfig off;
  off.rcache_enabled = false;
  off.hash_index_enabled = false;
  off.walk_cache_enabled = false;
  return off;
}

// ---- IovaAllocator rcache ----------------------------------------------------------

TEST(IovaRcacheTest, SteadyStateHitsMagazine) {
  IovaAllocator alloc;
  // Warm up: first alloc misses, free parks the range in the magazine.
  auto warm = alloc.Alloc(1);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(alloc.Free(*warm, 1).ok());
  for (int i = 0; i < 100; ++i) {
    auto iova = alloc.Alloc(1);
    ASSERT_TRUE(iova.ok());
    EXPECT_EQ(iova->value, warm->value);  // LIFO reuse of the hot range
    ASSERT_TRUE(alloc.Free(*iova, 1).ok());
  }
  EXPECT_EQ(alloc.stats().rcache_hits, 100u);
  EXPECT_EQ(alloc.stats().rcache_misses, 1u);
}

TEST(IovaRcacheTest, NeverHandsOutLiveRange) {
  FastPathConfig fast_path;
  fast_path.num_cpus = 2;
  fast_path.magazine_capacity = 8;  // small, to force depot + overflow traffic
  fast_path.depot_capacity = 2;
  IovaAllocator alloc{IovaAllocator::kDefaultWindowStart, IovaAllocator::kDefaultWindowEnd,
                      fast_path};
  Xoshiro256 rng{42};
  struct Live {
    Iova base;
    uint64_t pages;
    CpuId cpu;
  };
  std::vector<Live> live;
  std::set<uint64_t> live_pages;  // every page of every live range
  const uint64_t sizes[] = {1, 2, 3, 5, 8, 32, 64};  // cached and uncached
  for (int op = 0; op < 20000; ++op) {
    const CpuId cpu{static_cast<uint32_t>(rng.NextBelow(2))};
    if (live.size() < 64 && (live.empty() || rng.NextBelow(2) == 0)) {
      const uint64_t pages = sizes[rng.NextBelow(7)];
      auto iova = alloc.Alloc(pages, cpu);
      ASSERT_TRUE(iova.ok());
      const uint64_t base_page = iova->value >> kPageShift;
      // The rounded extent must be disjoint from every live range.
      const uint64_t rounded = pages <= 32 ? std::bit_ceil(pages) : pages;
      for (uint64_t p = base_page; p < base_page + rounded; ++p) {
        ASSERT_TRUE(live_pages.insert(p).second)
            << "allocator handed out page " << p << " twice";
      }
      live.push_back(Live{*iova, pages, cpu});
    } else {
      const size_t victim = rng.NextBelow(live.size());
      Live entry = live[victim];
      live[victim] = live.back();
      live.pop_back();
      // Free on a *different* CPU half the time (migration).
      const CpuId cpu_free =
          rng.NextBelow(2) == 0 ? entry.cpu : CpuId{entry.cpu.value ^ 1};
      ASSERT_TRUE(alloc.Free(entry.base, entry.pages, cpu_free).ok());
      const uint64_t base_page = entry.base.value >> kPageShift;
      const uint64_t rounded =
          entry.pages <= 32 ? std::bit_ceil(entry.pages) : entry.pages;
      for (uint64_t p = base_page; p < base_page + rounded; ++p) {
        live_pages.erase(p);
      }
    }
  }
  EXPECT_GT(alloc.stats().rcache_hits, 0u);
}

TEST(IovaRcacheTest, CpuMigrationRoundTrip) {
  FastPathConfig fast_path;
  fast_path.num_cpus = 4;
  IovaAllocator alloc{IovaAllocator::kDefaultWindowStart, IovaAllocator::kDefaultWindowEnd,
                      fast_path};
  // Alloc on CPU 0, free on CPU 1: the range lands in CPU 1's magazine.
  auto a = alloc.Alloc(1, CpuId{0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc.Free(*a, 1, CpuId{1}).ok());
  EXPECT_EQ(alloc.allocated_pages(), 0u);
  // CPU 1 reuses it; CPU 0's magazine is empty so it carves fresh space.
  auto b = alloc.Alloc(1, CpuId{1});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->value, a->value);
  auto c = alloc.Alloc(1, CpuId{0});
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c->value, a->value);
  ASSERT_TRUE(alloc.Free(*b, 1, CpuId{1}).ok());
  ASSERT_TRUE(alloc.Free(*c, 1, CpuId{0}).ok());
  EXPECT_EQ(alloc.allocated_pages(), 0u);
  EXPECT_EQ(alloc.cached_ranges(), 2u);
}

TEST(IovaRcacheTest, SamePfnStillYieldsDistinctIovasUnderMagazineReuse) {
  core::MachineConfig config;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(256, "aliased_buf");

  // Churn first so later maps are served from warm magazines, not virgin
  // space — the regression this test guards against.
  for (int i = 0; i < 300; ++i) {
    auto iova = machine.dma().MapSingle(dev, buf, 256, dma::DmaDirection::kFromDevice);
    ASSERT_TRUE(iova.ok());
    ASSERT_TRUE(
        machine.dma().UnmapSingle(dev, *iova, 256, dma::DmaDirection::kFromDevice).ok());
  }
  machine.iommu().FlushNow();

  auto first = machine.dma().MapSingle(dev, buf, 256, dma::DmaDirection::kFromDevice);
  auto second = machine.dma().MapSingle(dev, buf, 256, dma::DmaDirection::kFromDevice);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // The substrate of the type (c) vulnerability: same PFN, two live IOVAs.
  EXPECT_NE(first->PageBase().value, second->PageBase().value);
  const Pfn pfn = machine.layout().DirectMapKvaToPhys(buf)->pfn();
  EXPECT_EQ(machine.iommu().IovasForPfn(dev, pfn).size(), 2u);
}

TEST(IovaRcacheTest, DeferredModeParksIovaUntilFlush) {
  core::MachineConfig config;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(256, "parked_buf");
  auto first = machine.dma().MapSingle(dev, buf, 256, dma::DmaDirection::kFromDevice);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(
      machine.dma().UnmapSingle(dev, *first, 256, dma::DmaDirection::kFromDevice).ok());
  // Before the flush the IOVA is still parked in the flush queue: a new map
  // must NOT reuse it (it could still be translated by a stale IOTLB entry).
  auto second = machine.dma().MapSingle(dev, buf, 256, dma::DmaDirection::kFromDevice);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->PageBase().value, first->PageBase().value);
  // After the flush it is recyclable through the rcache.
  machine.iommu().FlushNow();
  auto third = machine.dma().MapSingle(dev, buf, 256, dma::DmaDirection::kFromDevice);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->PageBase().value, first->PageBase().value);
}

// ---- Coalescing slow path ----------------------------------------------------------

TEST(IovaCoalesceTest, AdjacentFreesMergeAndSplitBack) {
  IovaAllocator alloc{IovaAllocator::kDefaultWindowStart, IovaAllocator::kDefaultWindowEnd,
                      AllOff()};
  auto a = alloc.Alloc(64);  // uncached sizes share the tree with rcache on too
  auto b = alloc.Alloc(64);
  auto c = alloc.Alloc(64);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  // Carving is top-down, so c < b < a and the three are adjacent. Freeing a
  // and c leaves two islands; freeing b bridges them into one range.
  ASSERT_TRUE(alloc.Free(*a, 64).ok());
  ASSERT_TRUE(alloc.Free(*c, 64).ok());
  EXPECT_EQ(alloc.stats().coalesces, 0u);
  ASSERT_TRUE(alloc.Free(*b, 64).ok());
  EXPECT_GE(alloc.stats().coalesces, 1u);
  // The merged block melts back into the virgin frontier, so a fresh alloc
  // of the full 192 pages reuses the exact same space.
  auto big = alloc.Alloc(192);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->value, c->value);
}

TEST(IovaCoalesceTest, ChurnDoesNotGrowTheTree) {
  IovaAllocator alloc{IovaAllocator::kDefaultWindowStart, IovaAllocator::kDefaultWindowEnd,
                      AllOff()};
  // Unbounded-fragmentation regression: interleaved singles freed in an
  // order that never exact-fits used to pile up ranges forever. With
  // coalescing + splitting the allocator keeps reusing the same span.
  std::vector<Iova> batch;
  for (int round = 0; round < 50; ++round) {
    batch.clear();
    for (int i = 0; i < 33; ++i) {
      auto iova = alloc.Alloc(1 + (i % 3));  // 1,2,3-page mix
      ASSERT_TRUE(iova.ok());
      batch.push_back(*iova);
    }
    for (int i = 0; i < 33; ++i) {
      ASSERT_TRUE(alloc.Free(batch[i], 1 + (i % 3)).ok());
    }
  }
  EXPECT_EQ(alloc.allocated_pages(), 0u);
  EXPECT_GT(alloc.stats().coalesces, 0u);
  // Everything melted back: the whole window is virgin again, so an alloc
  // the size of the round's footprint comes back at the same top position.
  auto probe = alloc.Alloc(66);
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->value + 66 * kPageSize, IovaAllocator::kDefaultWindowEnd);
}

// ---- MappingIndex ------------------------------------------------------------------

TEST(MappingIndexTest, InsertFindEraseAgainstReferenceMap) {
  dma::MappingIndex<uint64_t> index;
  std::map<std::pair<uint32_t, uint64_t>, uint64_t> reference;
  Xoshiro256 rng{7};
  for (int op = 0; op < 50000; ++op) {
    const uint32_t device = static_cast<uint32_t>(rng.NextBelow(3));
    const uint64_t page = rng.NextBelow(512);
    switch (rng.NextBelow(3)) {
      case 0: {
        const uint64_t value = rng.Next();
        index.InsertOrAssign(device, page, value);
        reference[{device, page}] = value;
        break;
      }
      case 1: {
        const uint64_t* found = index.Find(device, page);
        auto it = reference.find({device, page});
        if (it == reference.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
      case 2: {
        EXPECT_EQ(index.Erase(device, page), reference.erase({device, page}) > 0);
        break;
      }
    }
    ASSERT_EQ(index.size(), reference.size());
  }
  uint64_t visited = 0;
  index.ForEach([&](const uint64_t&) { ++visited; });
  EXPECT_EQ(visited, reference.size());
}

TEST(MappingIndexTest, GrowsThroughRehash) {
  dma::MappingIndex<uint64_t> index{16};
  for (uint64_t i = 0; i < 10000; ++i) {
    index.InsertOrAssign(1, i, i * 3);
  }
  EXPECT_EQ(index.size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    const uint64_t* found = index.Find(1, i);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, i * 3);
  }
  EXPECT_EQ(index.Find(2, 1), nullptr);
}

// ---- Walk cache --------------------------------------------------------------------

TEST(WalkCacheTest, HotRegionSkipsTheWalk) {
  iommu::IoPageTable table;
  ASSERT_TRUE(table.Map(Iova{0x200000}, Pfn{1}, AccessRights::kWrite).ok());
  ASSERT_TRUE(table.Map(Iova{0x201000}, Pfn{2}, AccessRights::kWrite).ok());
  int levels = 0;
  ASSERT_TRUE(table.Lookup(Iova{0x200000}, &levels).has_value());
  EXPECT_EQ(levels, 4);  // cold: full radix descent
  ASSERT_TRUE(table.Lookup(Iova{0x201000}, &levels).has_value());
  EXPECT_EQ(levels, 1);  // same 2 MiB region: leaf came from the cache
  EXPECT_EQ(table.walk_cache_stats().hits, 1u);
  EXPECT_EQ(table.walk_cache_stats().misses, 1u);
}

TEST(WalkCacheTest, UnmapInvalidatesAndNeverFakesPresence) {
  iommu::IoPageTable table;
  ASSERT_TRUE(table.Map(Iova{0x200000}, Pfn{1}, AccessRights::kWrite).ok());
  ASSERT_TRUE(table.Lookup(Iova{0x200000}).has_value());  // fill the cache
  ASSERT_TRUE(table.Unmap(Iova{0x200000}).ok());
  EXPECT_GE(table.walk_cache_stats().invalidations, 1u);
  // A post-unmap lookup must see not-present — stale translations can only
  // ever come from the IOTLB, never from the walk cache.
  EXPECT_FALSE(table.Lookup(Iova{0x200000}).has_value());
}

TEST(WalkCacheTest, GlobalInvalidateDropsEverything) {
  iommu::IoPageTable table;
  ASSERT_TRUE(table.Map(Iova{0x200000}, Pfn{1}, AccessRights::kWrite).ok());
  ASSERT_TRUE(table.Lookup(Iova{0x200000}).has_value());
  table.InvalidateWalkCache();
  int levels = 0;
  ASSERT_TRUE(table.Lookup(Iova{0x200000}, &levels).has_value());
  EXPECT_EQ(levels, 4);  // cold again
}

TEST(WalkCacheTest, DisabledTableAlwaysWalks) {
  iommu::IoPageTable table{/*walk_cache_enabled=*/false};
  ASSERT_TRUE(table.Map(Iova{0x200000}, Pfn{1}, AccessRights::kWrite).ok());
  int levels = 0;
  ASSERT_TRUE(table.Lookup(Iova{0x200000}, &levels).has_value());
  ASSERT_TRUE(table.Lookup(Iova{0x200000}, &levels).has_value());
  EXPECT_EQ(levels, 4);
  EXPECT_EQ(table.walk_cache_stats().hits, 0u);
}

// ---- Flush drain reasons -----------------------------------------------------------

TEST(FlushDrainTest, CapacityDeadlineAndManualAreDistinguished) {
  mem::PhysicalMemory pm{256};
  SimClock clock;
  Iommu::Config config;
  config.mode = iommu::InvalidationMode::kDeferred;
  config.flush_queue_capacity = 4;
  Iommu iommu{pm, clock, config};
  const DeviceId dev{1};
  iommu.AttachDevice(dev);

  auto map_unmap = [&] {
    auto iova = iommu.MapPage(dev, Pfn{10}, AccessRights::kWrite);
    ASSERT_TRUE(iova.ok());
    ASSERT_TRUE(iommu.UnmapPage(dev, *iova).ok());
  };
  for (int i = 0; i < 4; ++i) {
    map_unmap();  // 4th unmap hits flush_queue_capacity
  }
  EXPECT_EQ(iommu.stats().flush_capacity_drains, 1u);

  map_unmap();
  clock.Advance(SimClock::MsToCycles(11));
  iommu.ProcessDeferredTimer();
  EXPECT_EQ(iommu.stats().flush_deadline_drains, 1u);

  map_unmap();
  iommu.FlushNow();
  EXPECT_EQ(iommu.stats().flush_manual_drains, 1u);
  EXPECT_EQ(iommu.stats().flushes, 3u);
}

// ---- Architectural equivalence -----------------------------------------------------

// The Fig-6 deferred window must survive the fast path: a device with a warm
// IOTLB entry keeps write access after dma_unmap until the queue drains.
TEST(FastPathEquivalenceTest, StaleIotlbWindowUnchanged) {
  for (const bool fast : {true, false}) {
    core::MachineConfig config;
    config.iommu.mode = iommu::InvalidationMode::kDeferred;
    if (!fast) {
      config.iommu.fast_path = AllOff();
    }
    core::Machine machine{config};
    const DeviceId dev{1};
    machine.iommu().AttachDevice(dev);
    Kva buf = *machine.slab().Kmalloc(2048, "window_buf");
    std::vector<uint8_t> touch(8, 0xAA);
    auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice);
    ASSERT_TRUE(iova.ok());
    ASSERT_TRUE(machine.iommu().DeviceWrite(dev, *iova, touch).ok());  // warm the IOTLB
    ASSERT_TRUE(
        machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice).ok());
    // The stale window, in both configurations.
    EXPECT_TRUE(machine.iommu().DeviceWrite(dev, *iova, touch).ok()) << "fast=" << fast;
    EXPECT_GT(machine.iommu().stats().stale_iotlb_accesses, 0u);
    machine.iommu().FlushNow();
    EXPECT_FALSE(machine.iommu().DeviceWrite(dev, *iova, touch).ok()) << "fast=" << fast;
  }
}

TEST(FastPathEquivalenceTest, DisabledFastPathRoundTrips) {
  core::MachineConfig config;
  config.iommu.fast_path = AllOff();
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(1024, "legacy_buf");
  std::vector<uint8_t> payload{1, 2, 3, 4};
  std::vector<uint8_t> readback(4);
  for (int i = 0; i < 10; ++i) {
    auto iova = machine.dma().MapSingle(dev, buf, 1024, dma::DmaDirection::kBidirectional);
    ASSERT_TRUE(iova.ok());
    ASSERT_TRUE(machine.iommu().DeviceWrite(dev, *iova, payload).ok());
    ASSERT_TRUE(machine.iommu().DeviceRead(dev, *iova, readback).ok());
    EXPECT_EQ(readback, payload);
    ASSERT_TRUE(machine.dma().FindMapping(dev, *iova).has_value());
    ASSERT_TRUE(
        machine.dma()
            .UnmapSingle(dev, *iova, 1024, dma::DmaDirection::kBidirectional)
            .ok());
    EXPECT_FALSE(machine.dma().FindMapping(dev, *iova).has_value());
  }
  EXPECT_EQ(machine.dma().live_mappings(), 0u);
}

// Per-CPU threading through the Machine facade.
TEST(FastPathEquivalenceTest, MachineThreadsCpuToMagazines) {
  core::MachineConfig config;
  config.iommu.mode = iommu::InvalidationMode::kStrict;  // frees recycle instantly
  config.iommu.fast_path.num_cpus = 2;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(512, "cpu_buf");

  machine.set_current_cpu(CpuId{0});
  EXPECT_EQ(machine.current_cpu().value, 0u);
  auto a = machine.dma().MapSingle(dev, buf, 512, dma::DmaDirection::kFromDevice);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(
      machine.dma().UnmapSingle(dev, *a, 512, dma::DmaDirection::kFromDevice).ok());
  // CPU 0's magazine holds the range; CPU 1 must not see it.
  machine.set_current_cpu(CpuId{1});
  auto b = machine.dma().MapSingle(dev, buf, 512, dma::DmaDirection::kFromDevice);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(b->PageBase().value, a->PageBase().value);
  // Back on CPU 0 the parked range is reused.
  machine.set_current_cpu(CpuId{0});
  auto c = machine.dma().MapSingle(dev, buf, 512, dma::DmaDirection::kFromDevice);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->PageBase().value, a->PageBase().value);
}

}  // namespace
}  // namespace spv
