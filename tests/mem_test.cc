// Unit and property tests for the mem module: physical memory, kernel layout
// with KASLR, page metadata, buddy allocator.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "base/rng.h"
#include "mem/kernel_layout.h"
#include "mem/page_allocator.h"
#include "mem/page_db.h"
#include "mem/phys_memory.h"

namespace spv::mem {
namespace {

constexpr uint64_t kTestPages = 1024;

// ---- PhysicalMemory ----------------------------------------------------------

TEST(PhysMemoryTest, StartsZeroed) {
  PhysicalMemory pm{4};
  for (uint64_t pfn = 0; pfn < 4; ++pfn) {
    for (uint8_t byte : pm.PageSpan(Pfn{pfn})) {
      ASSERT_EQ(byte, 0);
    }
  }
}

TEST(PhysMemoryTest, ScalarRoundTrip) {
  PhysicalMemory pm{2};
  PhysAddr addr{0x123};
  ASSERT_TRUE(pm.WriteU64(addr, 0xdeadbeefcafef00dULL).ok());
  auto r = pm.ReadU64(addr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0xdeadbeefcafef00dULL);
}

TEST(PhysMemoryTest, LittleEndianLayout) {
  PhysicalMemory pm{1};
  ASSERT_TRUE(pm.WriteU32(PhysAddr{0}, 0x04030201).ok());
  EXPECT_EQ(*pm.ReadU8(PhysAddr{0}), 0x01);
  EXPECT_EQ(*pm.ReadU8(PhysAddr{3}), 0x04);
}

TEST(PhysMemoryTest, CrossPageAccessWorks) {
  PhysicalMemory pm{2};
  PhysAddr addr{kPageSize - 4};
  ASSERT_TRUE(pm.WriteU64(addr, 0x1122334455667788ULL).ok());
  EXPECT_EQ(*pm.ReadU64(addr), 0x1122334455667788ULL);
}

TEST(PhysMemoryTest, OutOfRangeIsRejected) {
  PhysicalMemory pm{1};
  EXPECT_FALSE(pm.WriteU64(PhysAddr{kPageSize - 4}, 1).ok());
  EXPECT_FALSE(pm.ReadU64(PhysAddr{kPageSize}).ok());
  std::vector<uint8_t> buf(16);
  EXPECT_FALSE(pm.Read(PhysAddr{kPageSize - 8}, std::span<uint8_t>(buf)).ok());
}

TEST(PhysMemoryTest, FillAndBulkRead) {
  PhysicalMemory pm{1};
  ASSERT_TRUE(pm.Fill(PhysAddr{16}, 64, 0xab).ok());
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(pm.Read(PhysAddr{16}, std::span<uint8_t>(buf)).ok());
  for (uint8_t b : buf) {
    EXPECT_EQ(b, 0xab);
  }
  EXPECT_EQ(*pm.ReadU8(PhysAddr{15}), 0);
  EXPECT_EQ(*pm.ReadU8(PhysAddr{80}), 0);
}

// ---- KernelLayout -------------------------------------------------------------

TEST(KernelLayoutTest, NoKaslrUsesTable1Defaults) {
  Xoshiro256 rng{1};
  KernelLayout layout = KernelLayout::Create(kTestPages, /*kaslr=*/false, rng);
  EXPECT_EQ(layout.page_offset_base(), LayoutRanges::kDirectMapStart);
  EXPECT_EQ(layout.vmemmap_base(), LayoutRanges::kVmemmapStart);
  EXPECT_EQ(layout.text_base(), LayoutRanges::kTextStart);
  EXPECT_EQ(layout.text_slide(), 0u);
}

TEST(KernelLayoutTest, KaslrRespectsAlignmentGuarantees) {
  // §2.4: direct map / vmemmap bases are 1 GiB aligned (low 30 bits fixed);
  // text base is 2 MiB aligned (low 21 bits fixed).
  for (uint64_t seed = 0; seed < 32; ++seed) {
    Xoshiro256 rng{seed};
    KernelLayout layout = KernelLayout::Create(kTestPages, /*kaslr=*/true, rng);
    EXPECT_EQ(layout.page_offset_base() & (kRegionBaseAlign - 1), 0u) << "seed " << seed;
    EXPECT_EQ(layout.vmemmap_base() & (kRegionBaseAlign - 1), 0u) << "seed " << seed;
    EXPECT_EQ(layout.text_base() & (kTextAlign - 1), 0u) << "seed " << seed;
  }
}

TEST(KernelLayoutTest, KaslrStaysInsideTable1Ranges) {
  for (uint64_t seed = 100; seed < 132; ++seed) {
    Xoshiro256 rng{seed};
    KernelLayout layout = KernelLayout::Create(kTestPages, /*kaslr=*/true, rng);
    EXPECT_GE(layout.page_offset_base(), LayoutRanges::kDirectMapStart);
    EXPECT_LT(layout.page_offset_base() + (kTestPages << kPageShift),
              LayoutRanges::kDirectMapEnd);
    EXPECT_GE(layout.vmemmap_base(), LayoutRanges::kVmemmapStart);
    EXPECT_LT(layout.vmemmap_base() + kTestPages * kStructPageSize, LayoutRanges::kVmemmapEnd);
    EXPECT_GE(layout.text_base(), LayoutRanges::kTextStart);
    EXPECT_LT(layout.text_base(), LayoutRanges::kTextEnd);
  }
}

TEST(KernelLayoutTest, KaslrActuallyRandomizes) {
  std::set<uint64_t> text_bases;
  std::set<uint64_t> dm_bases;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    Xoshiro256 rng{seed};
    KernelLayout layout = KernelLayout::Create(kTestPages, /*kaslr=*/true, rng);
    text_bases.insert(layout.text_base());
    dm_bases.insert(layout.page_offset_base());
  }
  EXPECT_GT(text_bases.size(), 32u);
  EXPECT_GT(dm_bases.size(), 32u);
}

TEST(KernelLayoutTest, DirectMapTranslationRoundTrip) {
  Xoshiro256 rng{42};
  KernelLayout layout = KernelLayout::Create(kTestPages, /*kaslr=*/true, rng);
  PhysAddr phys{(123ull << kPageShift) | 0x45};
  Kva kva = layout.PhysToDirectMapKva(phys);
  auto back = layout.DirectMapKvaToPhys(kva);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->value, phys.value);
  // Low 12 bits of the KVA equal the page offset (footnote 5 of the paper).
  EXPECT_EQ(kva.page_offset(), 0x45u);
}

TEST(KernelLayoutTest, DirectMapRejectsForeignKva) {
  Xoshiro256 rng{43};
  KernelLayout layout = KernelLayout::Create(kTestPages, /*kaslr=*/true, rng);
  EXPECT_FALSE(layout.DirectMapKvaToPhys(Kva{LayoutRanges::kTextStart}).ok());
  EXPECT_FALSE(layout.DirectMapKvaToPhys(Kva{0}).ok());
}

TEST(KernelLayoutTest, StructPageTranslationRoundTrip) {
  Xoshiro256 rng{44};
  KernelLayout layout = KernelLayout::Create(kTestPages, /*kaslr=*/true, rng);
  Pfn pfn{777};
  Kva spage = layout.StructPageKva(pfn);
  EXPECT_TRUE(layout.IsVmemmapKva(spage));
  auto back = layout.StructPageKvaToPfn(spage);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->value, 777u);
  // Misaligned pointer into vmemmap is rejected.
  EXPECT_FALSE(layout.StructPageKvaToPfn(spage + 8).ok());
}

TEST(KernelLayoutTest, ClassifyByRangeMatchesTable1) {
  EXPECT_EQ(KernelLayout::ClassifyByRange(Kva{0xffff888000000000ULL}), Region::kDirectMap);
  EXPECT_EQ(KernelLayout::ClassifyByRange(Kva{0xffffc90000001000ULL}), Region::kVmalloc);
  EXPECT_EQ(KernelLayout::ClassifyByRange(Kva{0xffffea0000000040ULL}), Region::kVmemmap);
  EXPECT_EQ(KernelLayout::ClassifyByRange(Kva{0xffffffff81000000ULL}), Region::kKernelText);
  EXPECT_EQ(KernelLayout::ClassifyByRange(Kva{0xffffffffa0100000ULL}), Region::kModules);
  EXPECT_EQ(KernelLayout::ClassifyByRange(Kva{0x00007f0000000000ULL}), Region::kNone);
  EXPECT_EQ(KernelLayout::ClassifyByRange(Kva{0}), Region::kNone);
}

TEST(KernelLayoutTest, TextSlidePreservesLow21Bits) {
  // The KASLR-subversion premise: symbol KVAs keep their low 21 bits across
  // boots because the slide is 2 MiB aligned.
  constexpr uint64_t kSymbolOffset = 0x123456;  // compile-time offset of a symbol
  std::set<uint64_t> low_bits;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    Xoshiro256 rng{seed};
    KernelLayout layout = KernelLayout::Create(kTestPages, /*kaslr=*/true, rng);
    low_bits.insert(layout.SymbolKva(kSymbolOffset).value & ((1ull << 21) - 1));
  }
  EXPECT_EQ(low_bits.size(), 1u);
  EXPECT_EQ(*low_bits.begin(), kSymbolOffset & ((1ull << 21) - 1));
}

// ---- PageDb -------------------------------------------------------------------

TEST(PageDbTest, CountsOwners) {
  PageDb db{16};
  db.Get(Pfn{0}).owner = PageOwner::kKernelImage;
  db.Get(Pfn{1}).owner = PageOwner::kSlab;
  db.Get(Pfn{2}).owner = PageOwner::kSlab;
  EXPECT_EQ(db.CountOwned(PageOwner::kSlab), 2u);
  EXPECT_EQ(db.CountOwned(PageOwner::kKernelImage), 1u);
  EXPECT_EQ(db.CountOwned(PageOwner::kFree), 13u);
}

// ---- PageAllocator ------------------------------------------------------------

class PageAllocatorTest : public ::testing::Test {
 protected:
  PageAllocatorTest() : db_(kTestPages), alloc_(db_, Pfn{64}, kTestPages - 64) {}

  PageDb db_;
  PageAllocator alloc_;
};

TEST_F(PageAllocatorTest, AllocatesDistinctPages) {
  std::set<uint64_t> pfns;
  for (int i = 0; i < 100; ++i) {
    auto pfn = alloc_.AllocPage(PageOwner::kAnon);
    ASSERT_TRUE(pfn.ok());
    EXPECT_TRUE(pfns.insert(pfn->value).second) << "duplicate pfn " << pfn->value;
    EXPECT_GE(pfn->value, 64u);
    EXPECT_LT(pfn->value, kTestPages);
  }
  EXPECT_EQ(alloc_.free_pages(), kTestPages - 64 - 100);
}

TEST_F(PageAllocatorTest, SetsPageMetadata) {
  auto pfn = alloc_.AllocPages(2, PageOwner::kDriver);
  ASSERT_TRUE(pfn.ok());
  const PageMeta& head = db_.Get(*pfn);
  EXPECT_EQ(head.owner, PageOwner::kDriver);
  EXPECT_EQ(head.order, 2);
  EXPECT_TRUE(head.is_head);
  for (uint64_t i = 1; i < 4; ++i) {
    const PageMeta& tail = db_.Get(Pfn{pfn->value + i});
    EXPECT_EQ(tail.owner, PageOwner::kDriver);
    EXPECT_FALSE(tail.is_head);
  }
}

TEST_F(PageAllocatorTest, FreeReturnsPagesToPool) {
  auto pfn = alloc_.AllocPages(3, PageOwner::kAnon);
  ASSERT_TRUE(pfn.ok());
  EXPECT_EQ(alloc_.free_pages(), kTestPages - 64 - 8);
  ASSERT_TRUE(alloc_.FreePages(*pfn).ok());
  EXPECT_EQ(alloc_.free_pages(), kTestPages - 64);
  EXPECT_EQ(db_.Get(*pfn).owner, PageOwner::kFree);
}

TEST_F(PageAllocatorTest, DoubleFreeIsRejected) {
  auto pfn = alloc_.AllocPage(PageOwner::kAnon);
  ASSERT_TRUE(pfn.ok());
  ASSERT_TRUE(alloc_.FreePages(*pfn).ok());
  EXPECT_FALSE(alloc_.FreePages(*pfn).ok());
}

TEST_F(PageAllocatorTest, FreeOfTailPageIsRejected) {
  auto pfn = alloc_.AllocPages(1, PageOwner::kAnon);
  ASSERT_TRUE(pfn.ok());
  EXPECT_FALSE(alloc_.FreePages(Pfn{pfn->value + 1}).ok());
}

TEST_F(PageAllocatorTest, HotPageReuseIsLifo) {
  // §5.2.1: freed pages are reused immediately ("hot" pages), which is what
  // exposes reallocated pages to stale IOTLB entries.
  auto a = alloc_.AllocPage(PageOwner::kAnon);
  auto b = alloc_.AllocPage(PageOwner::kAnon);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(alloc_.FreePages(*a).ok());
  ASSERT_TRUE(alloc_.FreePages(*b).ok());
  auto c = alloc_.AllocPage(PageOwner::kSlab);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->value, b->value);  // most recently freed page comes back first
  auto d = alloc_.AllocPage(PageOwner::kSlab);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->value, a->value);
}

TEST_F(PageAllocatorTest, HigherOrderAllocationsAreAligned) {
  for (unsigned order = 1; order <= 5; ++order) {
    auto pfn = alloc_.AllocPages(order, PageOwner::kDriver);
    ASSERT_TRUE(pfn.ok());
    EXPECT_EQ((pfn->value - 64) & ((1ull << order) - 1), 0u)
        << "order-" << order << " block not naturally aligned";
    ASSERT_TRUE(alloc_.FreePages(*pfn).ok());
  }
}

TEST_F(PageAllocatorTest, ExhaustionReturnsError) {
  std::vector<Pfn> held;
  while (true) {
    auto pfn = alloc_.AllocPage(PageOwner::kAnon);
    if (!pfn.ok()) {
      EXPECT_EQ(pfn.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    held.push_back(*pfn);
  }
  EXPECT_EQ(held.size(), kTestPages - 64);
  EXPECT_EQ(alloc_.free_pages(), 0u);
  for (Pfn pfn : held) {
    ASSERT_TRUE(alloc_.FreePages(pfn).ok());
  }
  EXPECT_EQ(alloc_.free_pages(), kTestPages - 64);
}

TEST_F(PageAllocatorTest, CoalescingAllowsLargeAllocAfterChurn) {
  // Allocate everything order-0, free everything, then a large-order alloc
  // must succeed (buddies merged back; a few pages may linger in the hot
  // cache, so ask for less than the whole pool).
  std::vector<Pfn> held;
  while (true) {
    auto pfn = alloc_.AllocPage(PageOwner::kAnon);
    if (!pfn.ok()) {
      break;
    }
    held.push_back(*pfn);
  }
  for (Pfn pfn : held) {
    ASSERT_TRUE(alloc_.FreePages(pfn).ok());
  }
  auto big = alloc_.AllocPages(8, PageOwner::kDriver);
  EXPECT_TRUE(big.ok()) << big.status().ToString();
}

TEST_F(PageAllocatorTest, DeterministicSequenceAcrossInstances) {
  // Boot determinism premise of RingFlood (§5.3): the same request sequence
  // yields the same PFNs.
  PageDb db2{kTestPages};
  PageAllocator alloc2{db2, Pfn{64}, kTestPages - 64};
  for (int i = 0; i < 200; ++i) {
    unsigned order = static_cast<unsigned>(i % 3);
    auto p1 = alloc_.AllocPages(order, PageOwner::kDriver);
    auto p2 = alloc2.AllocPages(order, PageOwner::kDriver);
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p2.ok());
    EXPECT_EQ(p1->value, p2->value) << "diverged at request " << i;
  }
}

// Property sweep: alloc/free churn at every order preserves the free-page
// invariant and never hands out overlapping blocks.
class PageAllocatorOrderTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PageAllocatorOrderTest, ChurnPreservesInvariants) {
  const unsigned order = GetParam();
  PageDb db{kTestPages};
  PageAllocator alloc{db, Pfn{0}, kTestPages};
  Xoshiro256 rng{order};

  std::map<uint64_t, unsigned> live;  // head pfn -> order
  for (int step = 0; step < 500; ++step) {
    if (live.empty() || rng.NextBool(0.6)) {
      auto pfn = alloc.AllocPages(order, PageOwner::kAnon);
      if (!pfn.ok()) {
        continue;
      }
      // No overlap with any live block.
      for (const auto& [head, ord] : live) {
        const uint64_t end = head + (1ull << ord);
        EXPECT_FALSE(pfn->value >= head && pfn->value < end)
            << "overlapping allocation at step " << step;
      }
      live[pfn->value] = order;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      ASSERT_TRUE(alloc.FreePages(Pfn{it->first}).ok());
      live.erase(it);
    }
  }
  uint64_t live_pages = 0;
  for (const auto& [head, ord] : live) {
    live_pages += 1ull << ord;
  }
  EXPECT_EQ(alloc.free_pages(), kTestPages - live_pages);
}

INSTANTIATE_TEST_SUITE_P(AllOrders, PageAllocatorOrderTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u, 10u));

}  // namespace
}  // namespace spv::mem
