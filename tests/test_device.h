// Test helper: a benign NIC device model that performs DMA strictly through
// the IOMMU, records the descriptors the driver posts, and can inject RX
// packets like real hardware would.

#ifndef SPV_TESTS_TEST_DEVICE_H_
#define SPV_TESTS_TEST_DEVICE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "dma/kernel_memory.h"
#include "iommu/iommu.h"
#include "net/layouts.h"
#include "net/nic_device_model.h"

namespace spv::testing {

class TestNicDevice : public net::NicDeviceModel {
 public:
  TestNicDevice(DeviceId id, iommu::Iommu& iommu) : id_(id), iommu_(iommu) {}

  void OnRxPosted(const net::RxPostedDescriptor& descriptor) override {
    rx_posted_.push_back(descriptor);
  }
  void OnTxPosted(const net::TxPostedDescriptor& descriptor) override {
    tx_posted_.push_back(descriptor);
  }
  void OnRxCompleting(uint32_t index) override { rx_completing_.push_back(index); }

  // Picks the oldest posted RX descriptor, DMA-writes header+payload into it,
  // and returns its index (the "interrupt" the driver would then service).
  Result<uint32_t> InjectRx(dma::KernelMemory& kmem, const net::PacketHeader& header,
                            std::span<const uint8_t> payload) {
    if (rx_posted_.empty()) {
      return Unavailable("no posted RX descriptors");
    }
    net::RxPostedDescriptor descriptor = rx_posted_.front();
    rx_posted_.pop_front();

    std::vector<uint8_t> wire(net::PacketHeader::kSize + payload.size());
    // Header serialization without KernelMemory (device side): little-endian.
    auto put32 = [&](uint64_t at, uint32_t v) { std::memcpy(wire.data() + at, &v, 4); };
    auto put16 = [&](uint64_t at, uint16_t v) { std::memcpy(wire.data() + at, &v, 2); };
    put32(net::PacketHeader::kSrcIp, header.src_ip);
    put32(net::PacketHeader::kDstIp, header.dst_ip);
    put16(net::PacketHeader::kSrcPort, header.src_port);
    put16(net::PacketHeader::kDstPort, header.dst_port);
    wire[net::PacketHeader::kProto] = header.proto;
    wire[net::PacketHeader::kFlags] = header.flags;
    put16(net::PacketHeader::kLen, static_cast<uint16_t>(payload.size()));
    put32(net::PacketHeader::kSeq, header.seq);
    std::copy(payload.begin(), payload.end(), wire.begin() + net::PacketHeader::kSize);
    (void)kmem;
    SPV_RETURN_IF_ERROR(iommu_.DeviceWrite(id_, descriptor.iova, wire));
    return descriptor.index;
  }

  std::deque<net::RxPostedDescriptor>& rx_posted() { return rx_posted_; }
  std::vector<net::TxPostedDescriptor>& tx_posted() { return tx_posted_; }
  std::vector<uint32_t>& rx_completing() { return rx_completing_; }

  Status DeviceWrite(Iova iova, std::span<const uint8_t> data) {
    return iommu_.DeviceWrite(id_, iova, data);
  }
  Status DeviceRead(Iova iova, std::span<uint8_t> out) {
    return iommu_.DeviceRead(id_, iova, out);
  }

 private:
  DeviceId id_;
  iommu::Iommu& iommu_;
  std::deque<net::RxPostedDescriptor> rx_posted_;
  std::vector<net::TxPostedDescriptor> tx_posted_;
  std::vector<uint32_t> rx_completing_;
};

}  // namespace spv::testing

#endif  // SPV_TESTS_TEST_DEVICE_H_
