// Tests for SPADE: lexer, parser, layout database, and the sub-page exposure
// analysis (§4.1), including the shipped driver corpus.

#include <gtest/gtest.h>

#include <algorithm>

#include "spade/analyzer.h"
#include "spade/corpus.h"
#include "spade/layout_db.h"
#include "spade/lexer.h"
#include "spade/parser.h"

namespace spv::spade {
namespace {

// ---- Lexer ---------------------------------------------------------------------

TEST(LexerTest, TokenizesBasics) {
  auto tokens = Lex("struct foo { int x; };");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 8u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("struct"));
  EXPECT_TRUE((*tokens)[1].IsIdent());
  EXPECT_TRUE((*tokens)[2].IsPunct("{"));
  EXPECT_EQ(tokens->back().kind, TokenKind::kEof);
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Lex("int a;\nint b;\n\nint c;");
  ASSERT_TRUE(tokens.ok());
  std::vector<int> ident_lines;
  for (const Token& t : *tokens) {
    if (t.IsIdent()) {
      ident_lines.push_back(t.line);
    }
  }
  EXPECT_EQ(ident_lines, (std::vector<int>{1, 2, 4}));
}

TEST(LexerTest, SkipsCommentsAndPreprocessor) {
  auto tokens = Lex("// line\n/* block\nspanning */ #define FOO 1\nint x;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("int"));
}

TEST(LexerTest, MultiCharPunctuators) {
  auto tokens = Lex("a->b != c && d <<= 2");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> puncts;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kPunct) {
      puncts.push_back(t.text);
    }
  }
  EXPECT_EQ(puncts, (std::vector<std::string>{"->", "!=", "&&", "<<="}));
}

TEST(LexerTest, RejectsUnterminatedComment) {
  EXPECT_FALSE(Lex("int x; /* never closed").ok());
}

TEST(LexerTest, StringsAndChars) {
  auto tokens = Lex("f(\"hello \\\" world\", 'x');");
  ASSERT_TRUE(tokens.ok());
  int strings = 0;
  for (const Token& t : *tokens) {
    strings += t.kind == TokenKind::kString || t.kind == TokenKind::kCharLit ? 1 : 0;
  }
  EXPECT_EQ(strings, 2);
}

// ---- Parser --------------------------------------------------------------------

TEST(ParserTest, ParsesStructWithFunctionPointer) {
  auto file = ParseSource("t.c", R"(
struct req_ops {
    void (*done)(struct req *r, int status);
    u32 flags;
    struct other *next;
};
)");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_EQ(file->structs.size(), 1u);
  const StructDef& def = file->structs[0];
  EXPECT_EQ(def.name, "req_ops");
  ASSERT_EQ(def.fields.size(), 3u);
  EXPECT_TRUE(def.fields[0].type.is_func_ptr);
  EXPECT_EQ(def.fields[0].name, "done");
  EXPECT_EQ(def.fields[2].type.pointer_depth, 1);
  EXPECT_TRUE(def.fields[2].type.is_struct);
}

TEST(ParserTest, ParsesFunctionWithLocalsAndCalls) {
  auto file = ParseSource("t.c", R"(
static int foo(struct dev *d, u32 len)
{
    void *buf;
    dma_addr_t dma;
    buf = kmalloc(len, GFP_KERNEL);
    dma = dma_map_single(d, buf, len, DMA_TO_DEVICE);
    return 0;
}
)");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_EQ(file->functions.size(), 1u);
  const FuncDef& func = file->functions[0];
  EXPECT_EQ(func.name, "foo");
  ASSERT_EQ(func.params.size(), 2u);
  EXPECT_EQ(func.params[0].type.base, "dev");
  EXPECT_EQ(func.body.size(), 5u);
  EXPECT_EQ(func.body[0].kind, Stmt::Kind::kDecl);
  EXPECT_EQ(func.body[4].kind, Stmt::Kind::kReturn);
}

TEST(ParserTest, ParsesControlFlow) {
  auto file = ParseSource("t.c", R"(
int f(int n)
{
    int acc;
    acc = 0;
    for (n = 0; n < 10; n = n + 1) {
        if (n == 5) {
            acc = acc + n;
        } else {
            acc = acc - 1;
        }
    }
    while (acc > 0) {
        acc = acc - 2;
    }
    return acc;
}
)");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_EQ(file->functions.size(), 1u);
}

TEST(ParserTest, ParsesAddressOfMemberArg) {
  auto file = ParseSource("t.c", R"(
int f(struct op *op, struct dev *d)
{
    dma_addr_t a;
    a = dma_map_single(d, &op->rsp_iu, sizeof(struct ersp), DMA_FROM_DEVICE);
    return 0;
}
)");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  const Stmt& stmt = file->functions[0].body[1];
  ASSERT_EQ(stmt.kind, Stmt::Kind::kExpr);
  const Expr& assign = *stmt.expr;
  ASSERT_EQ(assign.kind, Expr::Kind::kAssign);
  const Expr& call = *assign.rhs;
  ASSERT_EQ(call.kind, Expr::Kind::kCall);
  EXPECT_EQ(call.CalleeName(), "dma_map_single");
  ASSERT_EQ(call.args.size(), 4u);
  EXPECT_EQ(call.args[1]->kind, Expr::Kind::kAddrOf);
  EXPECT_EQ(call.args[2]->kind, Expr::Kind::kSizeof);
}

TEST(ParserTest, ParsesSwitchDoWhileAndLabels) {
  auto file = ParseSource("t.c", R"(
int f(struct dev *d, int event, u32 len)
{
    void *buf;
    dma_addr_t a;
    int n;
    n = 0;
    do {
        n = n + 1;
    } while (n < 4);
    switch (event) {
    case 1:
        buf = kmalloc(len, GFP_KERNEL);
        a = dma_map_single(d, buf, len, DMA_TO_DEVICE);
        break;
    case 2:
    default:
        n = 0;
        break;
    }
    if (n == 0) {
        goto out;
    }
out:
    return n;
}
)");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_EQ(file->functions.size(), 1u);
}

TEST(ParserTest, ReportsErrorsWithLine) {
  auto file = ParseSource("bad.c", "struct x { int };");
  ASSERT_FALSE(file.ok());
  EXPECT_NE(file.status().message().find("bad.c:1"), std::string::npos);
}

// ---- LayoutDb ------------------------------------------------------------------

class LayoutTest : public ::testing::Test {
 protected:
  void Load(std::string_view source) {
    auto file = ParseSource("layout.c", source);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    for (const StructDef& def : file->structs) {
      db_.AddStruct(def);
    }
    ASSERT_TRUE(db_.Finalize().ok());
  }
  LayoutDb db_;
};

TEST_F(LayoutTest, ComputesOffsetsWithAlignment) {
  Load(R"(
struct s {
    u8 a;
    u32 b;
    u8 c;
    u64 d;
    u16 e;
};
)");
  const StructLayout* layout = db_.Find("s");
  ASSERT_NE(layout, nullptr);
  EXPECT_EQ(layout->fields[0].offset, 0u);   // a
  EXPECT_EQ(layout->fields[1].offset, 4u);   // b (aligned 4)
  EXPECT_EQ(layout->fields[2].offset, 8u);   // c
  EXPECT_EQ(layout->fields[3].offset, 16u);  // d (aligned 8)
  EXPECT_EQ(layout->fields[4].offset, 24u);  // e
  EXPECT_EQ(layout->size, 32u);              // padded to 8
  EXPECT_EQ(layout->alignment, 8u);
}

TEST_F(LayoutTest, ArraysAndEmbeddedStructs) {
  Load(R"(
struct inner {
    u64 x;
    void (*cb)(void *p);
};
struct outer {
    u8 pad[3];
    struct inner in;
    struct inner arr[2];
};
)");
  const StructLayout* inner = db_.Find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->size, 16u);
  EXPECT_EQ(inner->direct_callbacks, 1u);
  const StructLayout* outer = db_.Find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->fields[1].offset, 8u);  // inner aligned to 8
  EXPECT_EQ(outer->size, 8u + 16u + 32u);
  EXPECT_EQ(outer->direct_callbacks, 3u);  // 1 embedded + 2 in array
}

TEST_F(LayoutTest, SpoofableCallbacksThroughPointers) {
  Load(R"(
struct ops {
    void (*open)(void *p);
    void (*close)(void *p);
    void (*ioctl)(void *p, int c);
};
struct nested_ops {
    struct ops *inner_ops;
    void (*extra)(void *p);
};
struct obj {
    u32 id;
    struct ops *ops;
    struct nested_ops *more;
    void (*direct_cb)(void *p);
};
)");
  const StructLayout* obj = db_.Find("obj");
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->direct_callbacks, 1u);
  // Via ops: 3. Via more: 1 (extra) + 3 (inner_ops -> ops) = 4. Total 7.
  EXPECT_EQ(obj->spoofable_callbacks, 7u);
}

TEST_F(LayoutTest, UndefinedStructIsOpaque) {
  Load(R"(
struct holder {
    struct mystery m;
    struct mystery *p;
};
)");
  const StructLayout* holder = db_.Find("holder");
  ASSERT_NE(holder, nullptr);
  EXPECT_EQ(holder->size, 64u + 8u);  // opaque 64 + pointer
  EXPECT_EQ(holder->direct_callbacks, 0u);
  EXPECT_EQ(holder->spoofable_callbacks, 0u);
}

TEST_F(LayoutTest, CallbackFieldPathsRecurseIntoEmbeddedStructs) {
  Load(R"(
struct req {
    u32 tag;
    void (*done)(void *p);
};
struct op {
    struct req fcp_req;
    u8 iu[64];
    void (*abort)(void *p);
};
)");
  auto paths = db_.CallbackFieldPaths("op");
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "fcp_req.done");
  EXPECT_EQ(paths[1], "abort");
  EXPECT_TRUE(db_.CallbackFieldPaths("no_such_struct").empty());
}

TEST_F(LayoutTest, PointerFieldsAreEightBytes) {
  TypeRef ptr;
  ptr.base = "void";
  ptr.pointer_depth = 1;
  EXPECT_EQ(LayoutDb::ScalarSize(ptr), 8u);
  TypeRef fn;
  fn.base = "void";
  fn.is_func_ptr = true;
  EXPECT_EQ(LayoutDb::ScalarSize(fn), 8u);
}

// ---- Analyzer on inline sources ---------------------------------------------------

std::vector<SiteFinding> AnalyzeSource(std::string_view source) {
  SpadeAnalyzer analyzer;
  auto file = ParseSource("inline.c", source);
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  analyzer.AddFile(std::move(*file));
  auto findings = analyzer.Analyze();
  EXPECT_TRUE(findings.ok());
  return std::move(*findings);
}

TEST(AnalyzerTest, TypeAStructFieldExposure) {
  auto findings = AnalyzeSource(R"(
struct my_op {
    u8 buf[64];
    void (*done)(struct my_op *op);
};
int f(struct dev *d, struct my_op *op)
{
    dma_addr_t a;
    a = dma_map_single(d, &op->buf, 64, DMA_FROM_DEVICE);
    return 0;
}
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].exposes_struct);
  EXPECT_EQ(findings[0].exposed_struct, "my_op");
  EXPECT_TRUE(findings[0].callbacks_exposed);
  EXPECT_EQ(findings[0].direct_callbacks, 1u);
  EXPECT_FALSE(findings[0].stack_mapped);
}

TEST(AnalyzerTest, SkbDataMapsSharedInfo) {
  auto findings = AnalyzeSource(R"(
int xmit(struct dev *d, struct sk_buff *skb)
{
    dma_addr_t a;
    a = dma_map_single(d, skb->data, skb->len, DMA_TO_DEVICE);
    return 0;
}
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].shared_info_mapped);
  EXPECT_FALSE(findings[0].type_c);
}

TEST(AnalyzerTest, NetdevAllocSkbDataIsTypeBAndC) {
  auto findings = AnalyzeSource(R"(
int rx_alloc(struct dev *d, struct net_device *nd, u32 len)
{
    struct sk_buff *skb;
    dma_addr_t a;
    skb = netdev_alloc_skb(nd, len);
    a = dma_map_single(d, skb->data, len, DMA_FROM_DEVICE);
    return 0;
}
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].shared_info_mapped);
  EXPECT_TRUE(findings[0].type_c);
}

TEST(AnalyzerTest, BuildSkbFromFragIsTypeBAndC) {
  auto findings = AnalyzeSource(R"(
int rx(struct dev *d, u32 len)
{
    void *buf;
    dma_addr_t a;
    buf = napi_alloc_frag(len);
    a = dma_map_single(d, buf, len, DMA_FROM_DEVICE);
    return 0;
}
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].type_c);
}

TEST(AnalyzerTest, StackBufferFlagged) {
  auto findings = AnalyzeSource(R"(
struct setup_pkt {
    u8 request;
    u16 value;
};
int ctrl(struct dev *d)
{
    struct setup_pkt pkt;
    dma_addr_t a;
    a = dma_map_single(d, &pkt, sizeof(struct setup_pkt), DMA_TO_DEVICE);
    return 0;
}
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].stack_mapped);
}

TEST(AnalyzerTest, PrivateDataApiFlagged) {
  auto findings = AnalyzeSource(R"(
int q(struct dev *d, struct scsi_cmnd *cmd)
{
    void *priv;
    dma_addr_t a;
    priv = scsi_cmd_priv(cmd);
    a = dma_map_single(d, priv, 128, DMA_BIDIRECTIONAL);
    return 0;
}
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].private_data);
}

TEST(AnalyzerTest, HeapBufferIsNotStaticallyVulnerable) {
  auto findings = AnalyzeSource(R"(
int io(struct dev *d, u32 len)
{
    void *buf;
    dma_addr_t a;
    buf = kmalloc(len, GFP_KERNEL);
    a = dma_map_single(d, buf, len, DMA_TO_DEVICE);
    return 0;
}
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].callbacks_exposed);
  EXPECT_FALSE(findings[0].shared_info_mapped);
  EXPECT_FALSE(findings[0].type_c);
  EXPECT_FALSE(findings[0].unresolved);
}

TEST(AnalyzerTest, InterproceduralBacktracking) {
  auto findings = AnalyzeSource(R"(
struct ctx {
    u8 hdr[32];
    void (*done)(struct ctx *c);
};
dma_addr_t helper_map(struct dev *d, void *buf, u32 len)
{
    dma_addr_t a;
    a = dma_map_single(d, buf, len, DMA_TO_DEVICE);
    return a;
}
int top(struct dev *d, struct ctx *c)
{
    dma_addr_t a;
    a = helper_map(d, &c->hdr, 32);
    return 0;
}
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].exposes_struct) << findings[0].trace.back();
  EXPECT_EQ(findings[0].exposed_struct, "ctx");
  EXPECT_TRUE(findings[0].callbacks_exposed);
}

TEST(AnalyzerTest, IndirectAllocationIsUnresolved) {
  auto findings = AnalyzeSource(R"(
struct aops {
    void *(*get)(u32 len);
};
int io(struct dev *d, struct aops *ops, u32 len)
{
    void *buf;
    dma_addr_t a;
    buf = ops->get(len);
    a = dma_map_single(d, buf, len, DMA_FROM_DEVICE);
    return 0;
}
)");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].unresolved);  // §4.3 false negative, reported as such
}

TEST(AnalyzerTest, TracesCarryFileAndLine) {
  auto findings = AnalyzeSource(R"(
struct op {
    u8 b[8];
    void (*cb)(void *p);
};
int f(struct dev *d, struct op *op)
{
    dma_addr_t a;
    a = dma_map_single(d, &op->b, 8, DMA_TO_DEVICE);
    return 0;
}
)");
  ASSERT_EQ(findings.size(), 1u);
  ASSERT_GE(findings[0].trace.size(), 3u);
  EXPECT_NE(findings[0].trace[0].find("inline.c:9"), std::string::npos);
  bool has_struct_line = false;
  for (const std::string& t : findings[0].trace) {
    if (t.find("struct op") != std::string::npos) {
      has_struct_line = true;
    }
  }
  EXPECT_TRUE(has_struct_line);
}

// ---- Corpus ------------------------------------------------------------------------

class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto stats = LoadCorpusDirectory(analyzer_, DefaultCorpusDir());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    stats_ = *stats;
    auto findings = analyzer_.Analyze();
    ASSERT_TRUE(findings.ok());
    findings_ = std::move(*findings);
  }

  const SiteFinding* FindSite(const std::string& file, const std::string& function) {
    for (const SiteFinding& f : findings_) {
      if (f.file == file && f.function == function) {
        return &f;
      }
    }
    return nullptr;
  }

  SpadeAnalyzer analyzer_;
  CorpusLoadStats stats_;
  std::vector<SiteFinding> findings_;
};

TEST_F(CorpusTest, AllAnchorFilesParse) {
  EXPECT_EQ(stats_.files_failed, 0u)
      << (stats_.failures.empty() ? "" : stats_.failures[0]);
  EXPECT_GE(stats_.files_parsed, 12u);
}

TEST_F(CorpusTest, NvmeFcMatchesFigure2Shape) {
  const SiteFinding* site = FindSite("nvme_fc.c", "nvme_fc_map_op");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->exposes_struct);
  EXPECT_EQ(site->exposed_struct, "nvme_fc_fcp_op");
  EXPECT_EQ(site->direct_callbacks, 1u);  // fcp_req.done, as in Fig 2
  EXPECT_GT(site->spoofable_callbacks, 10u);
}

TEST_F(CorpusTest, NvmePciCleanSitesStayClean) {
  // Dedicated kmalloc PRP lists and data buffers: both mapping sites must
  // resolve (not "unresolved") and carry no static exposure — the residual
  // slab co-location risk is dynamic, D-KASAN's territory, and flagging it
  // here would be a false positive.
  for (const char* function : {"nvme_pci_setup_prps", "nvme_pci_map_data"}) {
    const SiteFinding* site = FindSite("clean_nvme_pci.c", function);
    ASSERT_NE(site, nullptr) << function;
    EXPECT_FALSE(site->unresolved) << function;
    EXPECT_FALSE(site->exposes_struct) << function;
    EXPECT_FALSE(site->callbacks_exposed) << function;
    EXPECT_FALSE(site->shared_info_mapped) << function;
    EXPECT_FALSE(site->stack_mapped) << function;
  }
}

TEST_F(CorpusTest, NvmeTcpMixesCleanPduAndVulnerableSkbPaths) {
  // NVMe-over-TCP: the kzalloc'd PDU path is clean, but the same file's TX
  // leg maps skb->data — type (b), skb_shared_info rides along. The split
  // matters: storage transports inherit networking's vulnerability classes.
  const SiteFinding* pdu = FindSite("nvme_tcp_like.c", "nvme_tcp_alloc_pdu");
  ASSERT_NE(pdu, nullptr);
  EXPECT_FALSE(pdu->unresolved);
  EXPECT_FALSE(pdu->exposes_struct);
  EXPECT_FALSE(pdu->shared_info_mapped);

  const SiteFinding* send = FindSite("nvme_tcp_like.c", "nvme_tcp_try_send");
  ASSERT_NE(send, nullptr);
  EXPECT_TRUE(send->shared_info_mapped);
}

TEST_F(CorpusTest, StackMappedFoundInUsbHcd) {
  const SiteFinding* site = FindSite("usb_hcd.c", "hcd_submit_control");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->stack_mapped);
}

TEST_F(CorpusTest, PrivateDataFoundInCryptoAndScsi) {
  const SiteFinding* aead = FindSite("crypto_aead.c", "accel_aead_encrypt");
  ASSERT_NE(aead, nullptr);
  EXPECT_TRUE(aead->private_data);
  const SiteFinding* scsi = FindSite("scsi_hba.c", "hba_queuecommand");
  ASSERT_NE(scsi, nullptr);
  EXPECT_TRUE(scsi->private_data);
}

TEST_F(CorpusTest, InterproceduralCaseResolved) {
  const SiteFinding* site = FindSite("wil6210_like.c", "wil_map_buf");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->exposes_struct);
  EXPECT_EQ(site->exposed_struct, "wil_tx_ctx");
  EXPECT_TRUE(site->callbacks_exposed);
}

TEST_F(CorpusTest, IndirectDispatchUnresolved) {
  const SiteFinding* site = FindSite("obscure_dispatch.c", "obscure_prepare_io");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->unresolved);
}

TEST_F(CorpusTest, PageSpanningStructFlaggedAsPossibleFalsePositive) {
  // §4.3: the lpfc-like context is > 4 KiB; its callback may live on a page
  // the mapping does not cover.
  const SiteFinding* site = FindSite("lpfc_like.c", "lpfc_map_rsp");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->callbacks_exposed);
  EXPECT_TRUE(site->possible_false_positive);
  // Ordinary sub-page structs are NOT flagged.
  const SiteFinding* nvme = FindSite("nvme_fc.c", "nvme_fc_map_op");
  ASSERT_NE(nvme, nullptr);
  EXPECT_FALSE(nvme->possible_false_positive);
}

TEST_F(CorpusTest, DmaMapPageThroughOpaqueHelperIsUnresolved) {
  const SiteFinding* site = FindSite("ixgbe_like.c", "ixgbe_alloc_mapped_page");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->unresolved);  // dev_alloc_pages is opaque to SPADE
}

TEST_F(CorpusTest, ScatterlistIdiomResolvedThroughSgInitOne) {
  // dma_map_sg(&sg) where sg_init_one attached &cmd->resp: the cmd struct's
  // callbacks are the exposure, not the on-stack scatterlist.
  const SiteFinding* site = FindSite("mmc_sdhci_like.c", "sdhci_prepare_cmd");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->exposes_struct) << site->trace.back();
  EXPECT_EQ(site->exposed_struct, "sdhci_cmd");
  EXPECT_TRUE(site->callbacks_exposed);
  EXPECT_FALSE(site->stack_mapped);
  // And the heap-backed sg path stays clean.
  const SiteFinding* bounce = FindSite("mmc_sdhci_like.c", "sdhci_map_bounce");
  ASSERT_NE(bounce, nullptr);
  EXPECT_FALSE(bounce->callbacks_exposed);
  EXPECT_FALSE(bounce->unresolved);
}

TEST_F(CorpusTest, EmbeddedStructPointerFieldsAreSpoofable) {
  // amdgpu-like: the fence embedded in the mapped IB carries an ops pointer;
  // redirecting it spoofs the fence callbacks.
  const SiteFinding* site = FindSite("amdgpu_like.c", "gpu_ib_schedule");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->callbacks_exposed);
  EXPECT_EQ(site->direct_callbacks, 0u);      // no fn-ptr directly in gpu_ib
  EXPECT_EQ(site->spoofable_callbacks, 2u);   // fence.ops -> 2 callbacks
}

TEST_F(CorpusTest, XhciRingExposesDirectAndSpoofable) {
  const SiteFinding* site = FindSite("xhci_like.c", "xhci_ring_alloc");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->callbacks_exposed);
  EXPECT_EQ(site->direct_callbacks, 1u);     // doorbell
  EXPECT_EQ(site->spoofable_callbacks, 3u);  // ops -> complete/stall/reset
  const SiteFinding* stack = FindSite("xhci_like.c", "xhci_control_transfer");
  ASSERT_NE(stack, nullptr);
  EXPECT_TRUE(stack->stack_mapped);
}

TEST_F(CorpusTest, ExposedStructIndexListsRealStructsOnly) {
  Summary summary = analyzer_.Summarize(findings_);
  EXPECT_GE(summary.exposed_structs.size(), 8u);
  EXPECT_TRUE(summary.exposed_structs.contains("nvme_fc_fcp_op"));
  EXPECT_FALSE(summary.exposed_structs.contains("u8"));
  EXPECT_NE(summary.ToString().find("Distinct exposed data structures"), std::string::npos);
}

TEST_F(CorpusTest, SummaryHasTable2Shape) {
  Summary summary = analyzer_.Summarize(findings_);
  EXPECT_GT(summary.total_calls, 15u);
  EXPECT_GT(summary.callbacks_exposed.calls, 0u);
  EXPECT_GT(summary.shared_info_mapped.calls, 0u);
  EXPECT_GT(summary.type_c.calls, 0u);
  EXPECT_GT(summary.build_skb_used.calls, 0u);
  EXPECT_GT(summary.stack_mapped.calls, 0u);
  EXPECT_GT(summary.private_data_mapped.calls, 0u);
  // The headline: a large majority of dma-map call sites are potentially
  // vulnerable (72.8% in the paper).
  EXPECT_GT(summary.vulnerable_calls * 100, summary.total_calls * 50);
  // Clean drivers keep it below 100%.
  EXPECT_LT(summary.vulnerable_calls, summary.total_calls);
  // Printable.
  EXPECT_NE(summary.ToString().find("Total dma-map calls"), std::string::npos);
}

}  // namespace
}  // namespace spv::spade
