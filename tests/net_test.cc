// Tests for the network-stack substrate: skb layouts, allocation paths,
// driver RX/TX rings, GRO aggregation, sockets/echo, and forwarding.

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "core/machine.h"
#include "mem/kernel_symbols.h"
#include "net/gro.h"
#include "net/layouts.h"
#include "net/nic_driver.h"
#include "net/skbuff.h"
#include "net/stack.h"
#include "test_device.h"

namespace spv::net {
namespace {

using spv::testing::TestNicDevice;

class NetFixture : public ::testing::Test {
 protected:
  NetFixture() : machine_(MakeConfig()) {}

  static core::MachineConfig MakeConfig() {
    core::MachineConfig config;
    config.seed = 2024;
    config.iommu.mode = iommu::InvalidationMode::kStrict;  // default; tests override
    return config;
  }

  // Every test must leave the machine internally consistent, whatever state
  // (live rings, pending invalidations) it walks away from.
  void TearDown() override {
    Status invariants = machine_.CheckInvariants();
    EXPECT_TRUE(invariants.ok()) << invariants.message();
  }

  core::Machine machine_;
};

// ---- layouts ----------------------------------------------------------------

TEST_F(NetFixture, SharedInfoLayoutConstants) {
  EXPECT_EQ(SharedInfoLayout::kSize, 40u + 17u * 16u);
  EXPECT_EQ(SkbDataAlign(SharedInfoLayout::kSize), 320u);
}

TEST_F(NetFixture, SharedInfoViewRoundTrip) {
  auto buf = machine_.slab().Kmalloc(512, "t");
  ASSERT_TRUE(buf.ok());
  SharedInfoView shinfo{machine_.kmem(), *buf};
  ASSERT_TRUE(shinfo.Initialize().ok());
  EXPECT_EQ(*shinfo.nr_frags(), 0);
  EXPECT_EQ(*shinfo.destructor_arg(), 0u);
  EXPECT_EQ(*shinfo.dataref(), 1u);

  ASSERT_TRUE(shinfo.set_destructor_arg(Kva{0xdead0000}).ok());
  EXPECT_EQ(*shinfo.destructor_arg(), 0xdead0000u);

  FragRef frag{Kva{0xffffea0000001000ULL}, 128, 1000};
  ASSERT_TRUE(shinfo.set_frag(0, frag).ok());
  ASSERT_TRUE(shinfo.set_nr_frags(1).ok());
  auto back = shinfo.frag(0);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->struct_page.value, frag.struct_page.value);
  EXPECT_EQ(back->page_offset, 128u);
  EXPECT_EQ(back->size, 1000u);
  EXPECT_FALSE(shinfo.frag(17).ok());  // out of range
}

TEST_F(NetFixture, UbufInfoViewRoundTrip) {
  auto buf = machine_.slab().Kmalloc(64, "t");
  ASSERT_TRUE(buf.ok());
  UbufInfoView ubuf{machine_.kmem(), *buf};
  ASSERT_TRUE(ubuf.set_callback(Kva{0xffffffff81234567ULL}).ok());
  ASSERT_TRUE(ubuf.set_ctx(77).ok());
  EXPECT_EQ(*ubuf.callback(), 0xffffffff81234567ULL);
  EXPECT_EQ(*ubuf.ctx(), 77u);
}

TEST_F(NetFixture, PacketHeaderRoundTrip) {
  auto buf = machine_.slab().Kmalloc(64, "t");
  ASSERT_TRUE(buf.ok());
  PacketHeader header{.src_ip = 0x0a000002,
                      .dst_ip = 0x0a000001,
                      .src_port = 4444,
                      .dst_port = 80,
                      .proto = kProtoTcp,
                      .flags = 1,
                      .payload_len = 512,
                      .seq = 1000};
  ASSERT_TRUE(WritePacketHeader(machine_.kmem(), *buf, header).ok());
  auto back = ReadPacketHeader(machine_.kmem(), *buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->src_ip, header.src_ip);
  EXPECT_EQ(back->dst_port, header.dst_port);
  EXPECT_EQ(back->proto, kProtoTcp);
  EXPECT_EQ(back->payload_len, 512);
  EXPECT_EQ(back->seq, 1000u);
}

// ---- skb allocation -----------------------------------------------------------

TEST_F(NetFixture, NetdevAllocSkbLayout) {
  machine_.frag_pool(CpuId{0});
  auto skb = machine_.skb_alloc().NetdevAllocSkb(CpuId{0}, 1500, "test_rx");
  ASSERT_TRUE(skb.ok());
  EXPECT_EQ((*skb)->data - (*skb)->head, kNetSkbPad);
  EXPECT_EQ((*skb)->end - (*skb)->head, SkbDataAlign(kNetSkbPad + 1500));
  EXPECT_EQ((*skb)->truesize, SkbAllocator::TruesizeFor(1500));
  // shared_info is initialized in simulated memory.
  SharedInfoView shinfo{machine_.kmem(), (*skb)->shared_info()};
  EXPECT_EQ(*shinfo.nr_frags(), 0);
  EXPECT_EQ(*shinfo.dataref(), 1u);
}

TEST_F(NetFixture, NetdevSkbsCoLocateOnPages) {
  // Type (c) substrate: consecutive netdev skb data buffers share pages.
  machine_.frag_pool(CpuId{0});
  auto a = machine_.skb_alloc().NetdevAllocSkb(CpuId{0}, 1000, "rx");
  auto b = machine_.skb_alloc().NetdevAllocSkb(CpuId{0}, 1000, "rx");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto& layout = machine_.layout();
  EXPECT_EQ(layout.DirectMapKvaToPhys((*a)->head)->pfn(),
            layout.DirectMapKvaToPhys((*b)->head)->pfn());
}

TEST_F(NetFixture, AllocSkbUsesKmalloc) {
  auto skb = machine_.skb_alloc().AllocSkb(200, "tcp_tx");
  ASSERT_TRUE(skb.ok());
  auto info = machine_.slab().Lookup((*skb)->head);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->site, "tcp_tx");
  EXPECT_EQ((*skb)->linear.source, BufSource::kKmalloc);
}

TEST_F(NetFixture, BuildSkbPlacesSharedInfoAtTail) {
  machine_.frag_pool(CpuId{0});
  auto buf = machine_.frag_pool(CpuId{0}).Alloc(2048, 64, "drv");
  ASSERT_TRUE(buf.ok());
  auto skb = machine_.skb_alloc().BuildSkb(*buf, 2048,
                                           OwnedBuffer{*buf, BufSource::kPageFrag, CpuId{0}});
  ASSERT_TRUE(skb.ok());
  EXPECT_EQ((*skb)->data, *buf);  // no headroom in build_skb model
  EXPECT_EQ((*skb)->end, *buf + (2048 - SkbDataAlign(SharedInfoLayout::kSize)));
}

TEST_F(NetFixture, BuildSkbRejectsTinyBuffers) {
  EXPECT_FALSE(machine_.skb_alloc()
                   .BuildSkb(Kva{0x1000}, 64, OwnedBuffer{})
                   .ok());
}

TEST_F(NetFixture, AddFragTracksLengthsAndMemory) {
  machine_.frag_pool(CpuId{0});
  auto skb = machine_.skb_alloc().NetdevAllocSkb(CpuId{0}, 256, "rx");
  ASSERT_TRUE(skb.ok());
  (*skb)->len = 100;
  FragRef frag{machine_.layout().StructPageKva(Pfn{1234}), 64, 500};
  ASSERT_TRUE(machine_.skb_alloc().AddFrag(**skb, frag, std::nullopt).ok());
  EXPECT_EQ((*skb)->len, 600u);
  EXPECT_EQ((*skb)->data_len, 500u);
  EXPECT_EQ((*skb)->linear_len(), 100u);
  SharedInfoView shinfo{machine_.kmem(), (*skb)->shared_info()};
  EXPECT_EQ(*shinfo.nr_frags(), 1);
  EXPECT_EQ(shinfo.frag(0)->size, 500u);
}

TEST_F(NetFixture, AddFragCapsAtMaxSkbFrags) {
  machine_.frag_pool(CpuId{0});
  auto skb = machine_.skb_alloc().NetdevAllocSkb(CpuId{0}, 256, "rx");
  ASSERT_TRUE(skb.ok());
  FragRef frag{machine_.layout().StructPageKva(Pfn{1}), 0, 10};
  for (uint64_t i = 0; i < kMaxSkbFrags; ++i) {
    ASSERT_TRUE(machine_.skb_alloc().AddFrag(**skb, frag, std::nullopt).ok());
  }
  EXPECT_FALSE(machine_.skb_alloc().AddFrag(**skb, frag, std::nullopt).ok());
}

class RecordingInvoker : public CallbackInvoker {
 public:
  Status InvokeCallback(Kva function, Kva arg) override {
    calls.emplace_back(function, arg);
    return OkStatus();
  }
  std::vector<std::pair<Kva, Kva>> calls;
};

TEST_F(NetFixture, FreeSkbInvokesDestructorCallback) {
  // Figure 4 step (d): on skb release the kernel follows destructor_arg and
  // calls the callback with the ubuf_info pointer as argument.
  machine_.frag_pool(CpuId{0});
  auto skb = machine_.skb_alloc().NetdevAllocSkb(CpuId{0}, 512, "rx");
  ASSERT_TRUE(skb.ok());

  // Plant a ubuf_info with a callback, as the attack does via DMA.
  auto ubuf_mem = machine_.slab().Kmalloc(UbufInfoLayout::kSize, "ubuf");
  ASSERT_TRUE(ubuf_mem.ok());
  UbufInfoView ubuf{machine_.kmem(), *ubuf_mem};
  ASSERT_TRUE(ubuf.set_callback(Kva{0xffffffff81000010ULL}).ok());
  SharedInfoView shinfo{machine_.kmem(), (*skb)->shared_info()};
  ASSERT_TRUE(shinfo.set_destructor_arg(*ubuf_mem).ok());

  RecordingInvoker invoker;
  ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(*skb), &invoker).ok());
  ASSERT_EQ(invoker.calls.size(), 1u);
  EXPECT_EQ(invoker.calls[0].first.value, 0xffffffff81000010ULL);
  EXPECT_EQ(invoker.calls[0].second, *ubuf_mem);
}

TEST_F(NetFixture, FreeSkbWithoutDestructorInvokesNothing) {
  machine_.frag_pool(CpuId{0});
  auto skb = machine_.skb_alloc().NetdevAllocSkb(CpuId{0}, 512, "rx");
  ASSERT_TRUE(skb.ok());
  RecordingInvoker invoker;
  ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(*skb), &invoker).ok());
  EXPECT_TRUE(invoker.calls.empty());
}

TEST_F(NetFixture, FreeSkbReleasesFragBuffers) {
  machine_.frag_pool(CpuId{0});
  auto& pool = machine_.frag_pool(CpuId{0});
  const uint64_t live_before = pool.live_frags();
  auto skb = machine_.skb_alloc().NetdevAllocSkb(CpuId{0}, 256, "rx");
  ASSERT_TRUE(skb.ok());
  auto frag_buf = pool.Alloc(700, 64, "frag");
  ASSERT_TRUE(frag_buf.ok());
  auto phys = machine_.layout().DirectMapKvaToPhys(*frag_buf);
  FragRef frag{machine_.layout().StructPageKva(phys->pfn()),
               static_cast<uint32_t>(phys->page_offset()), 700};
  ASSERT_TRUE(machine_.skb_alloc()
                  .AddFrag(**skb, frag, OwnedBuffer{*frag_buf, BufSource::kPageFrag, CpuId{0}})
                  .ok());
  EXPECT_EQ(pool.live_frags(), live_before + 2);
  ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(*skb), nullptr).ok());
  EXPECT_EQ(pool.live_frags(), live_before);
}

// ---- NIC driver ----------------------------------------------------------------

class DriverFixture : public NetFixture {
 protected:
  net::NicDriver& MakeDriver(bool unmap_before_build, uint32_t ring = 8) {
    NicDriver::Config config;
    config.name = "tnic";
    config.rx_ring_size = ring;
    config.unmap_before_build = unmap_before_build;
    NicDriver& driver = machine_.AddNicDriver(config);
    device_ = std::make_unique<TestNicDevice>(driver.device_id(), machine_.iommu());
    driver.AttachDevice(device_.get());
    return driver;
  }

  Result<SkBuffPtr> InjectAndComplete(NicDriver& driver, const PacketHeader& header,
                                      std::span<const uint8_t> payload) {
    Result<uint32_t> index = device_->InjectRx(machine_.kmem(), header, payload);
    if (!index.ok()) {
      return index.status();
    }
    return driver.CompleteRx(*index,
                             static_cast<uint32_t>(PacketHeader::kSize + payload.size()));
  }

  std::unique_ptr<TestNicDevice> device_;
};

TEST_F(DriverFixture, FillRxRingPostsAllDescriptors) {
  NicDriver& driver = MakeDriver(true);
  ASSERT_TRUE(driver.FillRxRing().ok());
  EXPECT_EQ(device_->rx_posted().size(), 8u);
  // Every posted buffer is device-writable.
  std::vector<uint8_t> probe(8, 0xcc);
  for (const auto& descriptor : device_->rx_posted()) {
    EXPECT_TRUE(device_->DeviceWrite(descriptor.iova, probe).ok());
  }
}

TEST_F(DriverFixture, ConsecutiveRxBuffersAliasPages) {
  // Fig 7 path (iii): ring buffers from page_frag land on shared pages, each
  // with its own IOVA.
  NicDriver& driver = MakeDriver(true);
  ASSERT_TRUE(driver.FillRxRing().ok());
  bool found_alias = false;
  for (uint32_t i = 0; i < 8; ++i) {
    auto kva = driver.RxSlotKva(i);
    ASSERT_TRUE(kva.has_value());
    auto pfn = machine_.layout().DirectMapKvaToPhys(*kva)->pfn();
    if (machine_.iommu().IovasForPfn(driver.device_id(), pfn).size() >= 2) {
      found_alias = true;
      break;
    }
  }
  EXPECT_TRUE(found_alias);
}

TEST_F(DriverFixture, CompleteRxParsesAndRefills) {
  NicDriver& driver = MakeDriver(true);
  ASSERT_TRUE(driver.FillRxRing().ok());
  PacketHeader header{.src_ip = 1, .dst_ip = 2, .src_port = 3, .dst_port = 4,
                      .proto = kProtoUdp, .flags = 0, .payload_len = 5, .seq = 9};
  std::vector<uint8_t> payload{10, 20, 30, 40, 50};
  auto skb = InjectAndComplete(driver, header, payload);
  ASSERT_TRUE(skb.ok());
  EXPECT_TRUE((*skb)->header_parsed);
  EXPECT_EQ((*skb)->header.dst_port, 4);
  EXPECT_EQ((*skb)->header.seq, 9u);
  EXPECT_EQ((*skb)->len, PacketHeader::kSize + 5);
  // Slot was refilled: ring still fully posted (8 initial - 1 + 1 new).
  EXPECT_EQ(device_->rx_posted().size(), 8u);
  EXPECT_EQ(driver.rx_packets(), 1u);
}

TEST_F(DriverFixture, CompleteRxValidatesArguments) {
  NicDriver& driver = MakeDriver(true);
  ASSERT_TRUE(driver.FillRxRing().ok());
  EXPECT_FALSE(driver.CompleteRx(99, 100).ok());
  EXPECT_FALSE(driver.CompleteRx(0, 4).ok());      // < header size
  EXPECT_FALSE(driver.CompleteRx(0, 100000).ok()); // > usable
  // Valid completion, then the same slot again before a new packet: rejected
  // only if not refilled — it IS refilled, so this must succeed.
  PacketHeader header{.proto = kProtoUdp};
  std::vector<uint8_t> payload(10, 1);
  auto index = device_->InjectRx(machine_.kmem(), header, payload);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(driver.CompleteRx(*index, 34).ok());
}

TEST_F(DriverFixture, WrongOrderDriverLeavesMappingLiveDuringBuild) {
  // Path (i): with unmap_before_build=false the OnRxCompleting hook fires
  // while the buffer is still device-writable, even in strict mode.
  NicDriver& driver = MakeDriver(false);
  ASSERT_TRUE(driver.FillRxRing().ok());
  PacketHeader header{.proto = kProtoUdp};
  std::vector<uint8_t> payload(16, 7);
  auto index = device_->InjectRx(machine_.kmem(), header, payload);
  ASSERT_TRUE(index.ok());
  const Iova slot_iova = *driver.RxSlotIova(*index);

  bool wrote_in_window = false;
  class WindowProbe : public NicDeviceModel {
   public:
    WindowProbe(TestNicDevice& device, Iova iova, bool& flag)
        : device_(device), iova_(iova), flag_(flag) {}
    void OnRxPosted(const RxPostedDescriptor& d) override { device_.OnRxPosted(d); }
    void OnTxPosted(const TxPostedDescriptor& d) override { device_.OnTxPosted(d); }
    void OnRxCompleting(uint32_t) override {
      std::vector<uint8_t> poison(8, 0xee);
      flag_ = device_.DeviceWrite(iova_, poison).ok();
    }
   private:
    TestNicDevice& device_;
    Iova iova_;
    bool& flag_;
  } probe{*device_, slot_iova, wrote_in_window};
  driver.AttachDevice(&probe);

  ASSERT_TRUE(driver.CompleteRx(*index, 40).ok());
  EXPECT_TRUE(wrote_in_window);
  driver.AttachDevice(device_.get());
}

TEST_F(DriverFixture, CorrectOrderDriverRevokesBeforeBuildInStrictMode) {
  NicDriver& driver = MakeDriver(true);
  ASSERT_TRUE(driver.FillRxRing().ok());
  PacketHeader header{.proto = kProtoUdp};
  std::vector<uint8_t> payload(16, 7);
  auto index = device_->InjectRx(machine_.kmem(), header, payload);
  ASSERT_TRUE(index.ok());
  const Iova slot_iova = *driver.RxSlotIova(*index);
  ASSERT_TRUE(driver.CompleteRx(*index, 40).ok());
  std::vector<uint8_t> poison(8, 0xee);
  EXPECT_FALSE(device_->DeviceWrite(slot_iova, poison).ok());
}

TEST_F(DriverFixture, TxPostMapsLinearForRead) {
  NicDriver& driver = MakeDriver(true);
  auto skb = machine_.skb_alloc().AllocSkb(128 + PacketHeader::kSize, "tx");
  ASSERT_TRUE(skb.ok());
  (*skb)->len = 128 + PacketHeader::kSize;
  ASSERT_TRUE(machine_.kmem().Fill((*skb)->data, (*skb)->len, 0x55).ok());
  auto index = driver.PostTx(std::move(*skb));
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(device_->tx_posted().size(), 1u);
  const auto& descriptor = device_->tx_posted()[0];
  std::vector<uint8_t> read(descriptor.linear_len);
  ASSERT_TRUE(device_->DeviceRead(descriptor.linear_iova, std::span<uint8_t>(read)).ok());
  for (uint8_t b : read) {
    EXPECT_EQ(b, 0x55);
  }
  // TX mapping is READ-only.
  EXPECT_FALSE(device_->DeviceWrite(descriptor.linear_iova, read).ok());
  EXPECT_EQ(driver.pending_tx(), 1u);
  auto done = driver.CompleteTx(*index);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(driver.pending_tx(), 0u);
  EXPECT_FALSE(device_->DeviceRead(descriptor.linear_iova, std::span<uint8_t>(read)).ok());
}

TEST_F(DriverFixture, TxPostMapsFragsFromSharedInfo) {
  machine_.frag_pool(CpuId{0});
  NicDriver& driver = MakeDriver(true);
  auto skb = machine_.skb_alloc().AllocSkb(64, "tx");
  ASSERT_TRUE(skb.ok());
  (*skb)->len = 64;
  auto frag_buf = machine_.frag_pool(CpuId{0}).Alloc(900, 64, "frag");
  ASSERT_TRUE(frag_buf.ok());
  ASSERT_TRUE(machine_.kmem().Fill(*frag_buf, 900, 0x99).ok());
  auto phys = machine_.layout().DirectMapKvaToPhys(*frag_buf);
  FragRef frag{machine_.layout().StructPageKva(phys->pfn()),
               static_cast<uint32_t>(phys->page_offset()), 900};
  ASSERT_TRUE(machine_.skb_alloc()
                  .AddFrag(**skb, frag, OwnedBuffer{*frag_buf, BufSource::kPageFrag, CpuId{0}})
                  .ok());
  auto index = driver.PostTx(std::move(*skb));
  ASSERT_TRUE(index.ok());
  const auto& descriptor = device_->tx_posted()[0];
  ASSERT_EQ(descriptor.frag_iovas.size(), 1u);
  std::vector<uint8_t> read(900);
  ASSERT_TRUE(device_->DeviceRead(descriptor.frag_iovas[0], std::span<uint8_t>(read)).ok());
  EXPECT_EQ(read[0], 0x99);
  EXPECT_EQ(read[899], 0x99);
}

TEST_F(DriverFixture, TxTimeoutResetsRing) {
  NicDriver& driver = MakeDriver(true);
  auto skb = machine_.skb_alloc().AllocSkb(64, "tx");
  ASSERT_TRUE(skb.ok());
  (*skb)->len = 64;
  ASSERT_TRUE(driver.PostTx(std::move(*skb)).ok());
  EXPECT_EQ(driver.CheckTxTimeout(), 0u);
  machine_.clock().AdvanceUs(6 * 1000 * 1000);  // 6 s > 5 s timeout
  EXPECT_EQ(driver.CheckTxTimeout(), 1u);
  EXPECT_EQ(driver.pending_tx(), 0u);
  EXPECT_EQ(driver.tx_resets(), 1u);
}

TEST_F(DriverFixture, XdpRxBuffersMappedBidirectional) {
  // §5.1: XDP maps RX buffers BIDIRECTIONAL — the device can now *read* RX
  // pages too (leak channel on top of the usual write access).
  NicDriver::Config config;
  config.name = "xdp_nic";
  config.rx_ring_size = 4;
  config.xdp = true;
  NicDriver& driver = machine_.AddNicDriver(config);
  auto device = std::make_unique<TestNicDevice>(driver.device_id(), machine_.iommu());
  driver.AttachDevice(device.get());
  ASSERT_TRUE(driver.FillRxRing().ok());
  const auto& descriptor = device->rx_posted().front();
  std::vector<uint8_t> buf(16);
  EXPECT_TRUE(device->DeviceRead(descriptor.iova, std::span<uint8_t>(buf)).ok());
  EXPECT_TRUE(device->DeviceWrite(descriptor.iova, buf).ok());
}

TEST_F(DriverFixture, NonXdpRxBuffersAreWriteOnly) {
  NicDriver& driver = MakeDriver(true, 4);
  ASSERT_TRUE(driver.FillRxRing().ok());
  const auto& descriptor = device_->rx_posted().front();
  std::vector<uint8_t> buf(16);
  EXPECT_FALSE(device_->DeviceRead(descriptor.iova, std::span<uint8_t>(buf)).ok());
  EXPECT_TRUE(device_->DeviceWrite(descriptor.iova, buf).ok());
}

TEST_F(NetFixture, CloneSharesDataAndDefersRelease) {
  // §5.1: "the resulting sk_buff and the original one share the data buffer".
  machine_.frag_pool(CpuId{0});
  auto& pool = machine_.frag_pool(CpuId{0});
  const uint64_t live_before = pool.live_frags();
  auto skb = machine_.skb_alloc().NetdevAllocSkb(CpuId{0}, 512, "rx");
  ASSERT_TRUE(skb.ok());
  (*skb)->len = 100;
  auto clone = machine_.skb_alloc().CloneSkb(**skb);
  ASSERT_TRUE(clone.ok());
  EXPECT_EQ((*clone)->head, (*skb)->head);
  EXPECT_EQ((*clone)->shared_info(), (*skb)->shared_info());
  SharedInfoView shinfo{machine_.kmem(), (*skb)->shared_info()};
  EXPECT_EQ(*shinfo.dataref(), 2u);

  // Plant a destructor: it must fire exactly once, on the LAST free.
  auto ubuf_mem = machine_.slab().Kmalloc(UbufInfoLayout::kSize, "ubuf");
  ASSERT_TRUE(ubuf_mem.ok());
  UbufInfoView ubuf{machine_.kmem(), *ubuf_mem};
  ASSERT_TRUE(ubuf.set_callback(Kva{0xffffffff81000010ULL}).ok());
  ASSERT_TRUE(shinfo.set_destructor_arg(*ubuf_mem).ok());

  RecordingInvoker invoker;
  ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(*skb), &invoker).ok());
  EXPECT_TRUE(invoker.calls.empty());               // clone still holds a ref
  EXPECT_EQ(pool.live_frags(), live_before + 1);    // buffer still alive
  ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(*clone), &invoker).ok());
  EXPECT_EQ(invoker.calls.size(), 1u);              // destructor on last ref
  EXPECT_EQ(pool.live_frags(), live_before);        // buffer released once
}

class CountingXdp : public XdpProgram {
 public:
  explicit CountingXdp(XdpVerdict verdict) : verdict_(verdict) {}
  XdpVerdict Run(dma::KernelMemory& kmem, Kva data, uint32_t len) override {
    ++runs;
    last_len = len;
    if (rewrite) {
      (void)kmem.WriteU8(data + PacketHeader::kSize, 0xfe);  // in-place rewrite
    }
    return verdict_;
  }
  int runs = 0;
  uint32_t last_len = 0;
  bool rewrite = false;

 private:
  XdpVerdict verdict_;
};

class XdpFixture : public DriverFixture {
 protected:
  NicDriver& MakeXdpDriver(XdpProgram* program) {
    NicDriver::Config config;
    config.name = "xdp_nic";
    config.rx_ring_size = 8;
    config.rx_buf_len = 1728;
    config.xdp = true;
    NicDriver& driver = machine_.AddNicDriver(config);
    device_ = std::make_unique<TestNicDevice>(driver.device_id(), machine_.iommu());
    driver.AttachDevice(device_.get());
    driver.AttachXdp(program);
    EXPECT_TRUE(driver.FillRxRing().ok());
    return driver;
  }

  Result<SkBuffPtr> Inject(NicDriver& driver, uint32_t payload_len) {
    PacketHeader header{.dst_ip = 1, .dst_port = 9, .proto = kProtoUdp};
    std::vector<uint8_t> payload(payload_len, 0x21);
    auto index = device_->InjectRx(machine_.kmem(), header, payload);
    if (!index.ok()) {
      return index.status();
    }
    return driver.CompleteRx(*index, PacketHeader::kSize + payload_len);
  }
};

TEST_F(XdpFixture, XdpDropConsumesPacketAndRefills) {
  CountingXdp program{XdpVerdict::kDrop};
  NicDriver& driver = MakeXdpDriver(&program);
  auto result = Inject(driver, 64);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->get(), nullptr);  // consumed by XDP
  EXPECT_EQ(program.runs, 1);
  EXPECT_EQ(program.last_len, PacketHeader::kSize + 64);
  EXPECT_EQ(driver.xdp_drops(), 1u);
  EXPECT_EQ(device_->rx_posted().size(), 8u);  // ring stays full
}

TEST_F(XdpFixture, XdpTxBouncesRewrittenPacket) {
  CountingXdp program{XdpVerdict::kTx};
  program.rewrite = true;
  NicDriver& driver = MakeXdpDriver(&program);
  auto result = Inject(driver, 64);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->get(), nullptr);
  EXPECT_EQ(driver.xdp_tx(), 1u);
  ASSERT_EQ(device_->tx_posted().size(), 1u);
  // The bounced packet carries the XDP rewrite.
  const auto& descriptor = device_->tx_posted()[0];
  std::vector<uint8_t> wire(descriptor.linear_len);
  ASSERT_TRUE(device_->DeviceRead(descriptor.linear_iova, std::span<uint8_t>(wire)).ok());
  EXPECT_EQ(wire[PacketHeader::kSize], 0xfe);
}

TEST_F(XdpFixture, XdpPassDeliversNormally) {
  CountingXdp program{XdpVerdict::kPass};
  NicDriver& driver = MakeXdpDriver(&program);
  auto result = Inject(driver, 64);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->get(), nullptr);
  EXPECT_TRUE((*result)->header_parsed);
  ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(*result), nullptr).ok());
}

TEST_F(NetFixture, PerCpuFragPoolsAreIsolated) {
  // §5.2.2: each RX ring is served by its own per-CPU buffer — buffers of
  // different rings never co-reside on a page.
  auto& pool0 = machine_.frag_pool(CpuId{0});
  auto& pool1 = machine_.frag_pool(CpuId{1});
  std::set<uint64_t> pages0;
  std::set<uint64_t> pages1;
  for (int i = 0; i < 16; ++i) {
    pages0.insert(pool0.Alloc(2048, 64, "ring0")->PageBase().value);
    pages1.insert(pool1.Alloc(2048, 64, "ring1")->PageBase().value);
  }
  for (uint64_t page : pages0) {
    EXPECT_FALSE(pages1.contains(page)) << "cross-CPU page sharing";
  }
}

TEST_F(DriverFixture, SyncOnlyDriverNeverRevokesAccess) {
  // Real i40e page reuse: CompleteRx syncs instead of unmapping, so even in
  // STRICT mode the device retains write access to the skb's page forever.
  NicDriver::Config config;
  config.name = "i40e_reuse";
  config.rx_ring_size = 4;
  config.sync_only_rx = true;
  NicDriver& driver = machine_.AddNicDriver(config);
  auto device = std::make_unique<TestNicDevice>(driver.device_id(), machine_.iommu());
  driver.AttachDevice(device.get());
  ASSERT_TRUE(driver.FillRxRing().ok());

  const auto descriptor = device->rx_posted().front();
  PacketHeader header{.dst_ip = 1, .dst_port = 9, .proto = kProtoUdp};
  std::vector<uint8_t> payload(32, 1);
  auto index = device->InjectRx(machine_.kmem(), header, payload);
  ASSERT_TRUE(index.ok());
  auto skb = driver.CompleteRx(*index, PacketHeader::kSize + 32);
  ASSERT_TRUE(skb.ok());

  // The IOMMU is strict, the packet is long delivered — and the mapping is
  // still live: the device rewrites the skb's shared_info at will.
  std::vector<uint8_t> poison(8, 0xee);
  const uint64_t shinfo_off = (*skb)->shared_info() - (*skb)->head;
  EXPECT_TRUE(device
                  ->DeviceWrite(descriptor.iova + shinfo_off +
                                    SharedInfoLayout::kDestructorArg,
                                poison)
                  .ok());
  SharedInfoView shinfo{machine_.kmem(), (*skb)->shared_info()};
  EXPECT_EQ(*shinfo.destructor_arg(), 0xeeeeeeeeeeeeeeeeULL);
  EXPECT_GT(machine_.dma().live_mappings(), 0u);
}

TEST_F(DriverFixture, DmaSyncValidatesMapping) {
  NicDriver& driver = MakeDriver(true, 4);
  ASSERT_TRUE(driver.FillRxRing().ok());
  const auto descriptor = device_->rx_posted().front();
  // Correct sync on a live RX mapping.
  EXPECT_TRUE(machine_.dma()
                  .SyncSingleForCpu(driver.device_id(), descriptor.iova,
                                    descriptor.buf_len, dma::DmaDirection::kFromDevice)
                  .ok());
  // Wrong direction / unknown IOVA rejected.
  EXPECT_FALSE(machine_.dma()
                   .SyncSingleForCpu(driver.device_id(), descriptor.iova,
                                     descriptor.buf_len, dma::DmaDirection::kToDevice)
                   .ok());
  EXPECT_FALSE(machine_.dma()
                   .SyncSingleForDevice(driver.device_id(), Iova{0xdead000}, 64,
                                        dma::DmaDirection::kFromDevice)
                   .ok());
}

TEST_F(DriverFixture, LroDriverUsesHugeBuffers) {
  NicDriver::Config config;
  config.name = "mlx4_15";
  config.hw_lro = true;
  config.rx_ring_size = 4;
  NicDriver& driver = machine_.AddNicDriver(config);
  EXPECT_EQ(driver.rx_buffer_bytes(), NicDriver::kLroBufBytes);
  EXPECT_EQ(driver.rx_ring_memory_bytes(), 4u * 64u * 1024u);
}

// ---- GRO ------------------------------------------------------------------------

class StackFixture : public DriverFixture {
 protected:
  StackFixture() = default;

  void SetUpStack() {
    rx_driver_ = &MakeDriver(true, 32);
    // Separate egress driver with its own device.
    NicDriver::Config config;
    config.name = "tx_nic";
    config.cpu = CpuId{0};
    tx_driver_ = &machine_.AddNicDriver(config);
    tx_device_ = std::make_unique<TestNicDevice>(tx_driver_->device_id(), machine_.iommu());
    tx_driver_->AttachDevice(tx_device_.get());
    ASSERT_TRUE(rx_driver_->FillRxRing().ok());
    machine_.stack().set_egress(tx_driver_);
  }

  Status InjectAndReceive(const PacketHeader& header, std::span<const uint8_t> payload) {
    Result<uint32_t> index = device_->InjectRx(machine_.kmem(), header, payload);
    if (!index.ok()) {
      return index.status();
    }
    Result<SkBuffPtr> skb = rx_driver_->CompleteRx(
        *index, static_cast<uint32_t>(PacketHeader::kSize + payload.size()));
    if (!skb.ok()) {
      return skb.status();
    }
    return machine_.stack().NapiGroReceive(std::move(*skb));
  }

  NicDriver* rx_driver_ = nullptr;
  NicDriver* tx_driver_ = nullptr;
  std::unique_ptr<TestNicDevice> tx_device_;
};

TEST_F(StackFixture, GroAggregatesTcpSegmentsIntoFrags) {
  GroEngine gro{machine_.kmem(), machine_.skb_alloc()};
  machine_.frag_pool(CpuId{0});
  SetUpStack();

  PacketHeader header{.src_ip = 7, .dst_ip = 8, .src_port = 100, .dst_port = 200,
                      .proto = kProtoTcp};
  std::vector<SkBuffPtr> segments;
  for (int i = 0; i < 4; ++i) {
    header.seq = static_cast<uint32_t>(i * 100);
    std::vector<uint8_t> payload(100, static_cast<uint8_t>(i + 1));
    auto index = device_->InjectRx(machine_.kmem(), header, payload);
    ASSERT_TRUE(index.ok());
    auto skb = rx_driver_->CompleteRx(*index, PacketHeader::kSize + 100);
    ASSERT_TRUE(skb.ok());
    auto out = gro.Receive(std::move(*skb));
    ASSERT_TRUE(out.ok());
    EXPECT_FALSE(out->get());  // still coalescing
  }
  EXPECT_EQ(gro.merged_segments(), 3u);
  auto flushed = gro.FlushAll();
  ASSERT_EQ(flushed.size(), 1u);
  SkBuff& head = *flushed[0];
  SharedInfoView shinfo{machine_.kmem(), head.shared_info()};
  EXPECT_EQ(*shinfo.nr_frags(), 3);
  EXPECT_EQ(head.data_len, 300u);
  // Payload reassembles in order.
  auto payload = machine_.stack().ReadPayload(head);
  ASSERT_TRUE(payload.ok());
  ASSERT_EQ(payload->size(), 400u);
  EXPECT_EQ((*payload)[0], 1);
  EXPECT_EQ((*payload)[100], 2);
  EXPECT_EQ((*payload)[399], 4);
  ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(flushed[0]), nullptr).ok());
}

TEST_F(StackFixture, GroPassesThroughNonTcp) {
  GroEngine gro{machine_.kmem(), machine_.skb_alloc()};
  SetUpStack();
  PacketHeader header{.proto = kProtoUdp};
  std::vector<uint8_t> payload(20, 1);
  auto index = device_->InjectRx(machine_.kmem(), header, payload);
  ASSERT_TRUE(index.ok());
  auto skb = rx_driver_->CompleteRx(*index, PacketHeader::kSize + 20);
  ASSERT_TRUE(skb.ok());
  auto out = gro.Receive(std::move(*skb));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->get() != nullptr);  // passed straight through
  ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(*out), nullptr).ok());
}

TEST_F(StackFixture, GroFlushesWhenFragsFull) {
  GroEngine gro{machine_.kmem(), machine_.skb_alloc()};
  SetUpStack();
  PacketHeader header{.src_ip = 1, .dst_ip = 2, .src_port = 3, .dst_port = 4,
                      .proto = kProtoTcp};
  std::vector<uint8_t> payload(50, 9);
  SkBuffPtr aggregated;
  int sent = 0;
  // head + 17 frags = 18 packets absorbed; the 19th forces a flush.
  for (int i = 0; i < 19; ++i) {
    auto index = device_->InjectRx(machine_.kmem(), header, payload);
    ASSERT_TRUE(index.ok());
    auto skb = rx_driver_->CompleteRx(*index, PacketHeader::kSize + 50);
    ASSERT_TRUE(skb.ok());
    auto out = gro.Receive(std::move(*skb));
    ASSERT_TRUE(out.ok());
    ++sent;
    if (out->get() != nullptr) {
      aggregated = std::move(*out);
      break;
    }
  }
  ASSERT_TRUE(aggregated != nullptr);
  EXPECT_EQ(sent, 19);
  SharedInfoView shinfo{machine_.kmem(), aggregated->shared_info()};
  EXPECT_EQ(*shinfo.nr_frags(), kMaxSkbFrags);
  ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(aggregated), nullptr).ok());
  for (auto& rest : gro.FlushAll()) {
    ASSERT_TRUE(machine_.skb_alloc().FreeSkb(std::move(rest), nullptr).ok());
  }
}

// ---- NetworkStack ------------------------------------------------------------------

TEST_F(StackFixture, SocketObjectLeaksInitNetPointer) {
  SetUpStack();
  auto sock = machine_.stack().CreateSocket(8080, false);
  ASSERT_TRUE(sock.ok());
  // sk->sk_net at offset 8 holds the init_net KVA (§2.4).
  EXPECT_EQ(*machine_.kmem().ReadU64(*sock + 8), machine_.stack().init_net_kva().value);
  // And init_net's low 21 bits are boot-invariant.
  EXPECT_EQ(machine_.stack().init_net_kva().value & ((1 << 21) - 1),
            mem::kSymInitNet & ((1 << 21) - 1));
  EXPECT_FALSE(machine_.stack().CreateSocket(8080, false).ok());  // port taken
}

TEST_F(StackFixture, DeliveryToLocalSocket) {
  SetUpStack();
  ASSERT_TRUE(machine_.stack().CreateSocket(80, false).ok());
  PacketHeader header{.src_ip = 99, .dst_ip = machine_.stack().config().local_ip,
                      .src_port = 1234, .dst_port = 80, .proto = kProtoUdp};
  std::vector<uint8_t> payload(10, 3);
  ASSERT_TRUE(InjectAndReceive(header, payload).ok());
  EXPECT_EQ(machine_.stack().stats().rx_delivered, 1u);
}

TEST_F(StackFixture, UnknownPortDropped) {
  SetUpStack();
  PacketHeader header{.dst_ip = machine_.stack().config().local_ip, .dst_port = 4242,
                      .proto = kProtoUdp};
  std::vector<uint8_t> payload(10, 3);
  ASSERT_TRUE(InjectAndReceive(header, payload).ok());
  EXPECT_EQ(machine_.stack().stats().rx_dropped, 1u);
}

TEST_F(StackFixture, EchoServiceSendsPayloadBack) {
  // §5.4 option 1: "a userspace process can be coerced into echoing a
  // malicious buffer's contents".
  SetUpStack();
  ASSERT_TRUE(machine_.stack().CreateSocket(7, true).ok());
  PacketHeader header{.src_ip = 5, .dst_ip = machine_.stack().config().local_ip,
                      .src_port = 5555, .dst_port = 7, .proto = kProtoUdp};
  std::vector<uint8_t> payload(64);
  std::iota(payload.begin(), payload.end(), 0);
  ASSERT_TRUE(InjectAndReceive(header, payload).ok());
  EXPECT_EQ(machine_.stack().stats().echoed, 1u);
  ASSERT_EQ(tx_device_->tx_posted().size(), 1u);
  // The echoed TX packet is device-readable and carries our payload.
  const auto& descriptor = tx_device_->tx_posted()[0];
  std::vector<uint8_t> wire(descriptor.linear_len);
  ASSERT_TRUE(tx_device_->DeviceRead(descriptor.linear_iova, std::span<uint8_t>(wire)).ok());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         wire.begin() + PacketHeader::kSize));
}

TEST_F(StackFixture, LargeEchoUsesFrags) {
  // Payloads above the linear threshold go out as frags: the Figure-8 shape
  // with struct page pointers in device-readable shared_info.
  SetUpStack();
  ASSERT_TRUE(machine_.stack().CreateSocket(7, true).ok());
  PacketHeader header{.src_ip = 5, .dst_ip = machine_.stack().config().local_ip,
                      .src_port = 5555, .dst_port = 7, .proto = kProtoUdp};
  std::vector<uint8_t> payload(1400, 0xab);
  ASSERT_TRUE(InjectAndReceive(header, payload).ok());
  ASSERT_EQ(tx_device_->tx_posted().size(), 1u);
  EXPECT_FALSE(tx_device_->tx_posted()[0].frag_iovas.empty());
}

TEST_F(StackFixture, TcpStreamEchoedThroughGro) {
  // A TCP stream to the echo service: GRO aggregates the segments, the echo
  // reassembles linear+frags and sends the full payload back out.
  SetUpStack();
  ASSERT_TRUE(machine_.stack().CreateSocket(7, true).ok());
  PacketHeader header{.src_ip = 5, .dst_ip = machine_.stack().config().local_ip,
                      .src_port = 5555, .dst_port = 7, .proto = kProtoTcp};
  for (int s = 0; s < 3; ++s) {
    header.seq = static_cast<uint32_t>(s * 200);
    std::vector<uint8_t> payload(200, static_cast<uint8_t>(0x30 + s));
    ASSERT_TRUE(InjectAndReceive(header, payload).ok());
  }
  ASSERT_TRUE(machine_.stack().NapiComplete().ok());
  EXPECT_EQ(machine_.stack().stats().echoed, 1u);
  ASSERT_EQ(tx_device_->tx_posted().size(), 1u);
  // 600-byte echo: above the linear threshold, so it left in frags.
  const auto& descriptor = tx_device_->tx_posted()[0];
  ASSERT_FALSE(descriptor.frag_iovas.empty());
  std::vector<uint8_t> frag(descriptor.frag_lens[0]);
  ASSERT_TRUE(tx_device_->DeviceRead(descriptor.frag_iovas[0], std::span<uint8_t>(frag)).ok());
  EXPECT_EQ(frag[0], 0x30);  // first segment's bytes lead the reassembly
}

TEST_F(StackFixture, LargePayloadSplitsAcrossMultipleFrags) {
  SetUpStack();
  PacketHeader header{.src_ip = machine_.stack().config().local_ip, .dst_ip = 42,
                      .src_port = 1, .dst_port = 2, .proto = kProtoUdp};
  std::vector<uint8_t> payload(5000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i & 0xff);
  }
  ASSERT_TRUE(machine_.stack().SendPacket(header, payload).ok());
  ASSERT_EQ(tx_device_->tx_posted().size(), 1u);
  const auto& descriptor = tx_device_->tx_posted()[0];
  EXPECT_EQ(descriptor.frag_iovas.size(), 3u);  // 2048+2048+904
  // Concatenated frags reproduce the payload.
  std::vector<uint8_t> reassembled;
  for (size_t j = 0; j < descriptor.frag_iovas.size(); ++j) {
    std::vector<uint8_t> chunk(descriptor.frag_lens[j]);
    ASSERT_TRUE(
        tx_device_->DeviceRead(descriptor.frag_iovas[j], std::span<uint8_t>(chunk)).ok());
    reassembled.insert(reassembled.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(reassembled, payload);
}

TEST_F(NetFixture, SharedInfoFieldFuzzRoundTrip) {
  machine_.frag_pool(CpuId{0});
  auto buf = machine_.slab().Kmalloc(512, "shinfo_fuzz");
  ASSERT_TRUE(buf.ok());
  SharedInfoView shinfo{machine_.kmem(), *buf};
  ASSERT_TRUE(shinfo.Initialize().ok());
  Xoshiro256 rng{0xf00d};
  for (int round = 0; round < 200; ++round) {
    const uint8_t nr = static_cast<uint8_t>(rng.NextBelow(kMaxSkbFrags + 1));
    const uint64_t arg = rng.Next();
    const uint16_t gso = static_cast<uint16_t>(rng.Next());
    const uint32_t dataref = static_cast<uint32_t>(rng.Next());
    FragRef frag{Kva{rng.Next()}, static_cast<uint32_t>(rng.NextBelow(kPageSize)),
                 static_cast<uint32_t>(rng.NextBelow(65536))};
    const uint8_t idx = static_cast<uint8_t>(rng.NextBelow(kMaxSkbFrags));
    ASSERT_TRUE(shinfo.set_nr_frags(nr).ok());
    ASSERT_TRUE(shinfo.set_destructor_arg(Kva{arg}).ok());
    ASSERT_TRUE(shinfo.set_gso_size(gso).ok());
    ASSERT_TRUE(shinfo.set_dataref(dataref).ok());
    ASSERT_TRUE(shinfo.set_frag(idx, frag).ok());
    EXPECT_EQ(*shinfo.nr_frags(), nr);
    EXPECT_EQ(*shinfo.destructor_arg(), arg);
    EXPECT_EQ(*shinfo.gso_size(), gso);
    EXPECT_EQ(*shinfo.dataref(), dataref);
    auto back = shinfo.frag(idx);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->struct_page.value, frag.struct_page.value);
    EXPECT_EQ(back->page_offset, frag.page_offset);
    EXPECT_EQ(back->size, frag.size);
  }
}

TEST_F(StackFixture, TxCompletionFreesAndInvokesCallback) {
  SetUpStack();
  RecordingInvoker invoker;
  machine_.stack().set_callback_invoker(&invoker);
  PacketHeader header{.src_ip = machine_.stack().config().local_ip, .dst_ip = 42,
                      .src_port = 1, .dst_port = 2, .proto = kProtoUdp};
  std::vector<uint8_t> payload(32, 1);
  ASSERT_TRUE(machine_.stack().SendPacket(header, payload).ok());
  ASSERT_EQ(tx_device_->tx_posted().size(), 1u);
  const uint64_t freed_before = machine_.skb_alloc().skbs_freed();
  ASSERT_TRUE(machine_.stack().OnTxCompleted(tx_device_->tx_posted()[0].index).ok());
  EXPECT_EQ(machine_.skb_alloc().skbs_freed(), freed_before + 1);
  EXPECT_TRUE(invoker.calls.empty());  // clean packet: no destructor planted
}

}  // namespace
}  // namespace spv::net
