// The §6 experimental setup: a programmable FireWire accessory emulating a
// malicious NIC by sharing the NIC's IOVA page table (one IOMMU domain).
// The NIC does completely normal I/O; the FireWire device — driven by the
// attacker machine over the cable — performs every malicious DMA.
//
//   $ ./build/examples/firewire_testbed

#include <cstdio>
#include <vector>

#include "attack/kaslr_break.h"
#include "attack/mini_cpu.h"
#include "attack/poison.h"
#include "core/machine.h"
#include "device/device_port.h"
#include "device/malicious_nic.h"
#include "net/layouts.h"

using namespace spv;

int main() {
  std::printf("== §6 testbed: FireWire sharing the NIC's IOVA page table ==\n\n");

  core::MachineConfig config;
  config.seed = 66;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  core::Machine machine{config};

  // The victim NIC (LIO-emulated in the paper; benign here).
  net::NicDriver::Config driver_config;
  driver_config.name = "bcm5720";
  driver_config.rx_ring_size = 8;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic nic_model{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&nic_model);
  machine.stack().set_egress(&nic);
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  machine.stack().set_callback_invoker(&cpu);

  // The VT6315 FireWire controller, put in the SAME translation domain.
  const DeviceId firewire{99};
  if (!machine.iommu().AttachDeviceToDomainOf(firewire, nic.device_id()).ok()) {
    std::printf("failed to share the domain\n");
    return 1;
  }
  device::DevicePort fw_port{machine.iommu(), firewire};
  std::printf("FireWire attached to the NIC's domain: SameDomain=%s\n\n",
              machine.iommu().SameDomain(firewire, nic.device_id()) ? "true" : "false");

  (void)nic.FillRxRing();

  // The attacker machine sees the emulated NIC's descriptors (it *is* the
  // NIC, per the LIO emulation) and DMAs through the FireWire controller.
  const net::RxPostedDescriptor descriptor = nic_model.rx_posted().front();
  std::printf("NIC posted RX buffer: iova=0x%llx len=%u — FireWire writes it:\n",
              static_cast<unsigned long long>(descriptor.iova.value), descriptor.buf_len);

  // Plant the Fig-4 poison through the FireWire port.
  attack::KaslrKnowledge knowledge;
  knowledge.text_base = machine.layout().text_base();  // (bootstrap as in §5.4)
  const uint64_t poison_off = 512;
  // KVA of the poison: the demo derives it the RingFlood way — for brevity we
  // compute it from the machine (the compound attacks show the honest path).
  const Kva buf_kva = *nic.RxSlotKva(descriptor.index);
  auto image = *attack::BuildPoisonImage(knowledge, (buf_kva + poison_off).value);
  bool wrote = fw_port.Write(descriptor.iova + poison_off, image).ok();
  std::printf("  poison image via FireWire: %s\n", wrote ? "written" : "FAILED");

  // Packet arrives (NIC behaves normally), driver builds the skb...
  net::PacketHeader header{.src_ip = 1, .dst_ip = 2, .dst_port = 9,
                           .proto = net::kProtoUdp};
  std::vector<uint8_t> payload(32, 0x11);
  auto index = nic_model.InjectRx(header, payload);
  auto skb = nic.CompleteRx(*index, net::PacketHeader::kSize + 32);
  if (!skb.ok()) {
    std::printf("rx failed\n");
    return 1;
  }

  // ...and the FireWire re-poisons destructor_arg through the stale IOTLB
  // entry the NIC itself warmed (shared domain tag!).
  const uint64_t shinfo_off = (*skb)->shared_info() - (*skb)->head;
  uint64_t arg = (buf_kva + poison_off).value;
  std::vector<uint8_t> arg_bytes(8);
  std::memcpy(arg_bytes.data(), &arg, 8);
  wrote = fw_port
              .Write(descriptor.iova + shinfo_off + net::SharedInfoLayout::kDestructorArg,
                     arg_bytes)
              .ok();
  std::printf("  destructor_arg via FireWire (stale IOTLB, shared domain): %s\n",
              wrote ? "written" : "FAILED");

  (void)machine.stack().NapiGroReceive(std::move(*skb));
  std::printf("\nskb released -> callback fired -> privilege escalated: %s\n",
              cpu.privilege_escalated() ? "YES" : "no");
  return cpu.privilege_escalated() ? 0 : 1;
}
