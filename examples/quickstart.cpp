// Quickstart: build a machine, attach a NIC, and watch the sub-page
// vulnerability happen — a 100-byte mapping exposes a whole 4 KiB page.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/machine.h"
#include "device/device_port.h"

using namespace spv;

int main() {
  // A 64 MiB machine with KASLR on and the Linux-default deferred IOMMU mode.
  core::MachineConfig config;
  config.seed = 2026;
  core::Machine machine{config};

  std::printf("== iommu-spv quickstart ==\n\n");
  std::printf("KASLR bases for this boot:\n");
  std::printf("  page_offset_base = 0x%llx\n",
              static_cast<unsigned long long>(machine.layout().page_offset_base()));
  std::printf("  vmemmap_base     = 0x%llx\n",
              static_cast<unsigned long long>(machine.layout().vmemmap_base()));
  std::printf("  text_base        = 0x%llx\n\n",
              static_cast<unsigned long long>(machine.layout().text_base()));

  // Attach a device to the IOMMU.
  const DeviceId nic{1};
  machine.iommu().AttachDevice(nic);
  device::DevicePort port{machine.iommu(), nic};

  // The kernel allocates two unrelated 512-byte objects. Same size class =>
  // same page (that's SLUB).
  Kva io_buf = *machine.slab().Kmalloc(512, "driver_rx_buffer");
  Kva secret = *machine.slab().Kmalloc(512, "session_keys");
  (void)machine.kmem().WriteU64(secret, 0x5ec2e7c0ffee42ULL);
  std::printf("kernel: io_buf at KVA 0x%llx, secret at KVA 0x%llx (same page: %s)\n",
              static_cast<unsigned long long>(io_buf.value),
              static_cast<unsigned long long>(secret.value),
              io_buf.PageBase() == secret.PageBase() ? "yes" : "no");

  // The driver maps ONLY the 512-byte I/O buffer, read+write.
  Iova iova = *machine.dma().MapSingle(nic, io_buf, 512,
                                       dma::DmaDirection::kBidirectional, "quickstart_map");
  std::printf("kernel: dma_map_single(io_buf, 512) -> IOVA 0x%llx\n",
              static_cast<unsigned long long>(iova.value));

  // The device reads the *whole page* through that mapping: the secret is
  // only (secret - io_buf) bytes away.
  const uint64_t delta = secret.value - io_buf.PageBase().value;
  uint64_t leaked = *port.ReadU64(iova.PageBase() + delta);
  std::printf("device: read 8 bytes at page offset %llu -> 0x%llx  <-- the secret\n",
              static_cast<unsigned long long>(delta),
              static_cast<unsigned long long>(leaked));

  // And it can corrupt the neighbour too (WRITE was granted for the buffer,
  // the page granularity gives it the whole page).
  (void)port.WriteU64(iova.PageBase() + delta, 0xbadc0de);
  std::printf("device: overwrote the secret; kernel now reads 0x%llx\n",
              static_cast<unsigned long long>(*machine.kmem().ReadU64(secret)));

  std::printf("\nThat is the sub-page vulnerability (§3.2). The compound attacks build\n");
  std::printf("on it: see ringflood_attack, poisoned_tx_attack, forwarding_surveillance.\n");
  return 0;
}
