// The downstream-user workflow: audit drivers with SPADE, demonstrate the
// exploit on a default-configured machine, deploy defenses (DAMN segregated
// allocation + Intel CET), and verify the attack is dead.
//
//   $ ./build/examples/harden_and_verify

#include <cstdio>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "slab/page_frag.h"
#include "spade/analyzer.h"
#include "spade/corpus.h"

using namespace spv;

namespace {

bool RunAttack(bool hardened) {
  core::MachineConfig config;
  config.seed = 123;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  core::Machine machine{config};

  std::unique_ptr<slab::PageFragPool> damn_pool;
  if (hardened) {
    damn_pool = std::make_unique<slab::PageFragPool>(
        machine.page_db(), machine.page_alloc(), machine.layout(),
        net::SkbAllocator::kDamnPoolCpu);
    machine.skb_alloc().set_damn_pool(damn_pool.get());
  }

  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 32;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  cpu.set_cet_enabled(hardened);
  machine.stack().set_callback_invoker(&cpu);
  (void)machine.stack().CreateSocket(7, true);
  (void)nic.FillRxRing();

  attack::AttackEnv env{machine, nic, device, cpu};
  auto report = attack::PoisonedTxAttack::Run(env, {});
  return report.ok() && report->success;
}

}  // namespace

int main() {
  std::printf("== harden-and-verify workflow ==\n\n");

  // 1. Audit.
  std::printf("[1] SPADE audit of the driver corpus:\n");
  spade::SpadeAnalyzer analyzer;
  auto stats = spade::LoadCorpusDirectory(analyzer, spade::DefaultCorpusDir());
  if (!stats.ok()) {
    std::printf("    audit failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  auto findings = analyzer.Analyze();
  if (!findings.ok()) {
    return 1;
  }
  const spade::Summary summary = analyzer.Summarize(*findings);
  std::printf("    %llu of %llu dma-map call sites potentially vulnerable (%.1f%%)\n\n",
              static_cast<unsigned long long>(summary.vulnerable_calls),
              static_cast<unsigned long long>(summary.total_calls),
              100.0 * static_cast<double>(summary.vulnerable_calls) /
                  static_cast<double>(summary.total_calls));

  // 2. Exploit the default configuration.
  std::printf("[2] Poisoned TX against the default machine: %s\n\n",
              RunAttack(false) ? "ESCALATED — commit_creds(root) executed"
                               : "unexpectedly blocked");

  // 3+4. Harden and verify.
  std::printf("[3] deploying defenses: DAMN segregated network allocator + Intel CET\n");
  std::printf("[4] Poisoned TX against the hardened machine: %s\n",
              RunAttack(true) ? "ESCALATED (hardening failed!)" : "blocked");
  std::printf("\nnote: DAMN alone starves the KASLR bootstrap; CET alone kills the\n"
              "ROP/JOP payload. Deploy both — the paper's point is that no single\n"
              "localized fix suffices (§9).\n");
  return 0;
}
