// Poisoned TX compound attack demo (§5.4): an echo service copies the
// attacker's ROP stack into a TX buffer; the TX frags leak its KVA; a dying
// RX skb's destructor_arg is pointed at it.
//
//   $ ./build/examples/poisoned_tx_attack [strict]

#include <cstdio>
#include <cstring>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"

using namespace spv;

int main(int argc, char** argv) {
  const bool strict = argc > 1 && std::strcmp(argv[1], "strict") == 0;
  std::printf("== Poisoned TX compound attack (paper §5.4) — IOMMU %s mode ==\n\n",
              strict ? "strict" : "deferred");

  core::MachineConfig config;
  config.seed = 44;
  config.iommu.mode =
      strict ? iommu::InvalidationMode::kStrict : iommu::InvalidationMode::kDeferred;
  core::Machine machine{config};

  net::NicDriver::Config driver_config;
  driver_config.name = "cx4_nic";
  driver_config.rx_ring_size = 32;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  machine.stack().set_callback_invoker(&cpu);
  (void)machine.stack().CreateSocket(7, /*echo=*/true);  // the coerced service
  (void)nic.FillRxRing();

  attack::AttackEnv env{machine, nic, device, cpu};
  auto report = attack::PoisonedTxAttack::Run(env, {});
  if (!report.ok()) {
    std::printf("harness error: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("attack transcript:\n");
  for (const std::string& step : report->steps) {
    std::printf("  - %s\n", step.c_str());
  }
  std::printf("\nvulnerability attributes: %s\n", report->attributes.ToString().c_str());
  std::printf("write window used: %s\n", report->window_path.c_str());
  std::printf("RESULT: %s\n",
              report->success ? ">>> privilege escalation: commit_creds(root) executed <<<"
                              : "attack failed");
  std::printf("\nNote: strict mode does not stop this attack — the type (c) neighbour\n"
              "IOVA supplies the write window instead of the stale IOTLB (§5.2.2 (iii)).\n");
  return report->success ? 0 : 1;
}
