// D-KASAN demo: run the §4.2 "clone + build + ping" workload with the
// sanitizer attached and print the Figure-3 report.
//
//   $ ./build/examples/dkasan_demo

#include <cstdio>

#include "core/machine.h"
#include "device/malicious_nic.h"
#include "dkasan/dkasan.h"
#include "dkasan/workload.h"

using namespace spv;

int main() {
  std::printf("== D-KASAN: DMA Kernel Address SANitizer ==\n\n");

  core::MachineConfig config;
  config.seed = 20210426;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  core::Machine machine{config};

  dkasan::DKasan dkasan{machine.layout()};
  dkasan.Attach(machine.slab());
  dkasan.Attach(machine.dma());

  net::NicDriver::Config driver_config;
  driver_config.name = "mlx5_core";
  driver_config.rx_ring_size = 16;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  dkasan.Attach(machine.frag_pool(CpuId{0}));
  (void)machine.stack().CreateSocket(7, false);

  std::printf("running workload: project build + light ICMP traffic...\n");
  auto stats = dkasan::RunBuildAndPingWorkload(machine, nic, device, {.iterations = 400});
  if (!stats.ok()) {
    std::printf("workload error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("  %llu allocations, %llu frees, %llu RX packets, %llu TX packets\n\n",
              static_cast<unsigned long long>(stats->allocs),
              static_cast<unsigned long long>(stats->frees),
              static_cast<unsigned long long>(stats->rx_packets),
              static_cast<unsigned long long>(stats->tx_packets));

  std::printf("%s\n", dkasan.FormatReport(24).c_str());
  std::printf("breakdown: alloc-after-map=%llu map-after-alloc=%llu "
              "access-after-map=%llu multiple-map=%llu\n",
              static_cast<unsigned long long>(dkasan.count(dkasan::ReportKind::kAllocAfterMap)),
              static_cast<unsigned long long>(dkasan.count(dkasan::ReportKind::kMapAfterAlloc)),
              static_cast<unsigned long long>(dkasan.count(dkasan::ReportKind::kAccessAfterMap)),
              static_cast<unsigned long long>(dkasan.count(dkasan::ReportKind::kMultipleMap)));
  return 0;
}
