// Forward Thinking demo (§5.5): privilege escalation via GRO-forwarded
// packets, then the persistent-surveillance variant — reading an arbitrary
// physical page by planting a forged frag in a forwarded packet.
//
//   $ ./build/examples/forwarding_surveillance

#include <cstdio>
#include <cstring>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"

using namespace spv;
using attack::ForwardThinkingAttack;

int main() {
  std::printf("== Forward Thinking compound attack (paper §5.5) ==\n\n");

  core::MachineConfig config;
  config.seed = 55;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  config.net.forwarding_enabled = true;  // the victim is a router / LB
  core::Machine machine{config};

  (void)attack::SeedResidualKernelData(machine, 128);

  net::NicDriver::Config driver_config;
  driver_config.name = "fwd_nic";
  driver_config.rx_ring_size = 32;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  machine.stack().set_callback_invoker(&cpu);
  (void)nic.FillRxRing();

  attack::AttackEnv env{machine, nic, device, cpu};

  // ---- Code-injection variant ---------------------------------------------------
  auto report = ForwardThinkingAttack::Run(env, {});
  if (!report.ok()) {
    std::printf("harness error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("attack transcript:\n");
  for (const std::string& step : report->steps) {
    std::printf("  - %s\n", step.c_str());
  }
  std::printf("RESULT: %s\n\n",
              report->success ? ">>> privilege escalation via forwarded GRO packet <<<"
                              : "attack failed");

  // ---- Surveillance variant ------------------------------------------------------
  std::printf("surveillance variant: exfiltrating a kernel secret by forged frag...\n");
  Kva secret_buf = *machine.slab().Kmalloc(64, "wireguard_private_key");
  const char secret[] = "wg-priv-key:3f9a...";
  (void)machine.kmem().Write(
      secret_buf, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(secret),
                                           sizeof(secret)));
  auto phys = machine.layout().DirectMapKvaToPhys(secret_buf);
  std::printf("  victim: secret lives at PFN %llu offset %llu (device has NO mapping)\n",
              static_cast<unsigned long long>(phys->pfn().value),
              static_cast<unsigned long long>(phys->page_offset()));

  auto leaked = ForwardThinkingAttack::SurveillanceRead(
      env, report->kaslr, phys->pfn().value, static_cast<uint32_t>(phys->page_offset()),
      sizeof(secret), 0x0a000099);
  if (!leaked.ok()) {
    std::printf("  surveillance read failed: %s\n", leaked.status().ToString().c_str());
    return 1;
  }
  std::printf("  device: leaked %zu bytes: \"%s\"\n", leaked->size(),
              reinterpret_cast<const char*>(leaked->data()));
  std::printf("  (the driver mapped the forged frag for READ and the packet left "
              "no trace: shared_info was restored before TX completion)\n");
  return 0;
}
