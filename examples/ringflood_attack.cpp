// RingFlood compound attack demo (§5.3, §6).
//
// Phase 1 (offline): "reboot" an identical machine N times and histogram the
// PFNs of the RX-ring data pages — boot determinism makes them repeat.
// Phase 2 (online): against a victim boot the attacker never saw, bootstrap
// KASLR from the victim's own TX traffic, poison every RX buffer with a
// ubuf_info + ROP stack, and let ordinary packet processing fire the callback.
//
//   $ ./build/examples/ringflood_attack

#include <cstdio>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"

using namespace spv;
using attack::RingFloodAttack;

namespace {

core::MachineConfig VictimConfig(uint64_t seed) {
  core::MachineConfig config;
  config.seed = seed;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;  // Linux default
  return config;
}

net::NicDriver::Config DriverConfig() {
  net::NicDriver::Config config;
  config.name = "bcm5720";
  config.rx_ring_size = 32;
  config.rx_buf_len = 1728;  // i40e-style half-page buffers
  return config;
}


}  // namespace

int main() {
  std::printf("== RingFlood compound attack (paper §5.3) ==\n\n");

  // ---- Phase 1: profile an identical setup ------------------------------------
  RingFloodAttack::ProfileOptions profile;
  profile.machine = VictimConfig(0);
  profile.driver = DriverConfig();
  profile.boots = 32;
  std::printf("[offline] profiling %d reboots of an identical machine...\n", profile.boots);
  auto histogram = RingFloodAttack::ProfileRxPfns(profile);
  const uint64_t guess = RingFloodAttack::MostCommonPfn(histogram);
  std::printf("[offline] %zu distinct RX PFNs seen; best guess pfn=%llu "
              "(present in %d/%d boots)\n\n",
              histogram.size(), static_cast<unsigned long long>(guess),
              histogram.at(guess), profile.boots);

  // ---- Phase 2: attack a boot the attacker never profiled ---------------------
  core::MachineConfig victim_config = VictimConfig(profile.base_seed + 4242);
  core::Machine machine{victim_config};
  attack::RingFloodAttack::ReplayBootNoise(machine, victim_config.seed,
                                            profile.boot_noise_allocs);
  net::NicDriver& nic = machine.AddNicDriver(profile.driver);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  machine.stack().set_callback_invoker(&cpu);
  (void)nic.FillRxRing();

  RingFloodAttack::Options options;
  options.pfn_guess = guess;
  attack::AttackEnv env{machine, nic, device, cpu};
  auto report = RingFloodAttack::Run(env, options);
  if (!report.ok()) {
    std::printf("attack harness error: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("[online] attack transcript:\n");
  for (const std::string& step : report->steps) {
    std::printf("  - %s\n", step.c_str());
  }
  std::printf("\nvulnerability attributes: %s\n", report->attributes.ToString().c_str());
  std::printf("write window used: %s\n", report->window_path.c_str());
  std::printf("RESULT: %s\n", report->success
                                  ? ">>> privilege escalation: commit_creds(root) executed <<<"
                                  : "attack failed this boot (wrong PFN guess)");

  if (report->success) {
    std::printf("\nCPU execution trace of the hijacked callback:\n");
    for (const auto& entry : cpu.trace()) {
      std::printf("  0x%llx  %s\n", static_cast<unsigned long long>(entry.pc.value),
                  entry.what.c_str());
    }
  }
  return report->success ? 0 : 1;
}
