// SPADE scan: run the static analyzer over a driver corpus and print
// Figure-2-style traces plus the Table-2 summary.
//
//   $ ./build/examples/spade_scan [corpus-dir]

#include <cstdio>

#include "spade/analyzer.h"
#include "spade/corpus.h"

using namespace spv;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : spade::DefaultCorpusDir();
  std::printf("== SPADE: Sub-Page Analysis for DMA Exposure ==\n");
  std::printf("scanning corpus: %s\n\n", dir.c_str());

  spade::SpadeAnalyzer analyzer;
  auto stats = spade::LoadCorpusDirectory(analyzer, dir);
  if (!stats.ok()) {
    std::printf("error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu files (%zu failed — SPADE's complex-construct limitation)\n\n",
              stats->files_parsed, stats->files_failed);

  auto findings = analyzer.Analyze();
  if (!findings.ok()) {
    std::printf("analysis error: %s\n", findings.status().ToString().c_str());
    return 1;
  }

  for (const spade::SiteFinding& finding : *findings) {
    if (!finding.callbacks_exposed && !finding.shared_info_mapped && !finding.stack_mapped &&
        !finding.private_data && !finding.unresolved) {
      continue;  // clean site
    }
    std::printf("--- %s:%d (%s in %s) ---\n", finding.file.c_str(), finding.line,
                finding.callee.c_str(), finding.function.c_str());
    int line_no = 1;
    for (const std::string& line : finding.trace) {
      std::printf("  [%d] %s\n", line_no++, line.c_str());
    }
    std::printf("\n");
  }

  std::printf("%s\n", analyzer.Summarize(*findings).ToString().c_str());
  return 0;
}
