// Figure 2: SPADE output for the nvme_fc driver path — the recursive
// declaration/assignment backtrace ending in exposed-callback counts.

#include <cstdio>

#include "spade/analyzer.h"
#include "spade/corpus.h"

using namespace spv;

int main() {
  std::printf("== Figure 2: SPADE trace for the nvme_fc exposure ==\n\n");
  spade::SpadeAnalyzer analyzer;
  auto stats = spade::LoadCorpusDirectory(analyzer, spade::DefaultCorpusDir());
  if (!stats.ok()) {
    std::printf("error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  auto findings = analyzer.Analyze();
  if (!findings.ok()) {
    std::printf("error: %s\n", findings.status().ToString().c_str());
    return 1;
  }
  bool shown = false;
  for (const spade::SiteFinding& finding : *findings) {
    if (finding.file != "nvme_fc.c" || !finding.callbacks_exposed) {
      continue;
    }
    std::printf("--- %s:%d — %s in %s() ---\n", finding.file.c_str(), finding.line,
                finding.callee.c_str(), finding.function.c_str());
    int n = 1;
    for (const std::string& line : finding.trace) {
      std::printf("[%d] %s\n", n++, line.c_str());
    }
    std::printf("\n");
    shown = true;
  }
  if (!shown) {
    std::printf("no nvme_fc findings — corpus missing?\n");
    return 1;
  }
  std::printf("paper's Fig 2 reports: 1 callback mapped directly (fcp_req.done), 931\n");
  std::printf("spoofable via struct pointers; our corpus model reproduces the shape\n");
  std::printf("(1 direct, tens spoofable — scaled with the corpus ops tables).\n");
  return 0;
}
