// Figure 3: D-KASAN report from the "clone + compile + ping" workload.

#include <cstdio>

#include "core/machine.h"
#include "device/malicious_nic.h"
#include "dkasan/dkasan.h"
#include "dkasan/workload.h"

using namespace spv;

int main() {
  std::printf("== Figure 3: D-KASAN run-time report ==\n\n");
  core::MachineConfig config;
  config.seed = 20210426;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  core::Machine machine{config};

  dkasan::DKasan dkasan{machine.layout()};
  dkasan.Attach(machine.slab());
  dkasan.Attach(machine.dma());

  net::NicDriver::Config driver_config;
  driver_config.name = "mlx5_core";
  driver_config.rx_ring_size = 16;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  dkasan.Attach(machine.frag_pool(CpuId{0}));
  (void)machine.stack().CreateSocket(7, false);

  auto stats = dkasan::RunBuildAndPingWorkload(machine, nic, device, {.iterations = 600});
  if (!stats.ok()) {
    std::printf("workload error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: %llu allocs, %llu RX, %llu TX\n\n",
              static_cast<unsigned long long>(stats->allocs),
              static_cast<unsigned long long>(stats->rx_packets),
              static_cast<unsigned long long>(stats->tx_packets));

  std::printf("%s\n", dkasan.FormatReport(16).c_str());
  std::printf("by class: alloc-after-map=%llu  map-after-alloc=%llu  "
              "access-after-map=%llu  multiple-map=%llu\n\n",
              static_cast<unsigned long long>(dkasan.count(dkasan::ReportKind::kAllocAfterMap)),
              static_cast<unsigned long long>(dkasan.count(dkasan::ReportKind::kMapAfterAlloc)),
              static_cast<unsigned long long>(dkasan.count(dkasan::ReportKind::kAccessAfterMap)),
              static_cast<unsigned long long>(dkasan.count(dkasan::ReportKind::kMultipleMap)));
  std::printf("paper's Fig 3 shows kernel metadata (ELF headers, socket inodes, assoc\n"
              "arrays) randomly exposed on DMA-mapped pages — the same classes appear\n"
              "above with the same allocation sites.\n");

  // ---- Additional workloads (router, storage) show the same classes -----------
  {
    core::MachineConfig router_config;
    router_config.seed = 20210427;
    router_config.net.forwarding_enabled = true;
    core::Machine router{router_config};
    dkasan::DKasan router_dkasan{router.layout()};
    router_dkasan.Attach(router.slab());
    router_dkasan.Attach(router.dma());
    net::NicDriver::Config rdc;
    rdc.rx_ring_size = 16;
    rdc.rx_buf_len = 1728;
    net::NicDriver& rnic = router.AddNicDriver(rdc);
    device::MaliciousNic rdev{device::DevicePort{router.iommu(), rnic.device_id()}};
    rnic.AttachDevice(&rdev);
    router_dkasan.Attach(router.frag_pool(CpuId{0}));
    auto rstats = dkasan::RunRouterWorkload(router, rnic, rdev, {.iterations = 300});
    if (rstats.ok()) {
      std::printf("\nrouter workload (forwarding): %llu findings "
                  "(multiple-map=%llu, access-after-map=%llu)\n",
                  static_cast<unsigned long long>(router_dkasan.reports().size()),
                  static_cast<unsigned long long>(
                      router_dkasan.count(dkasan::ReportKind::kMultipleMap)),
                  static_cast<unsigned long long>(
                      router_dkasan.count(dkasan::ReportKind::kAccessAfterMap)));
    }
  }
  {
    core::MachineConfig storage_config;
    storage_config.seed = 20210428;
    core::Machine storage{storage_config};
    dkasan::DKasan storage_dkasan{storage.layout()};
    storage_dkasan.Attach(storage.slab());
    storage_dkasan.Attach(storage.dma());
    auto sstats = dkasan::RunStorageWorkload(storage, DeviceId{30}, {.iterations = 400});
    if (sstats.ok()) {
      std::printf("storage workload (NVMe-style):  %llu findings "
                  "(map-after-alloc=%llu, alloc-after-map=%llu)\n",
                  static_cast<unsigned long long>(storage_dkasan.reports().size()),
                  static_cast<unsigned long long>(
                      storage_dkasan.count(dkasan::ReportKind::kMapAfterAlloc)),
                  static_cast<unsigned long long>(
                      storage_dkasan.count(dkasan::ReportKind::kAllocAfterMap)));
      std::printf("%s", storage_dkasan.FormatReport(6).c_str());
    }
  }
  return 0;
}
