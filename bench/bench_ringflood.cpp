// §5.3: RingFlood boot-determinism experiment.
//
// 256 simulated reboots for two victim profiles:
//   * "kernel 5.0"  — 2 KiB RX entries (64 MiB/port scale-down: small ring);
//   * "kernel 4.15" — HW-LRO 64 KiB RX entries (2 GiB/port scale-down: the
//     same ring size but 32x the memory footprint).
// Reports the PFN repeat-rate distribution (paper: many PFNs repeat in >50%
// of boots on 5.0 and >95% on 4.15) and the end-to-end attack success rate
// against unprofiled victim boots.

#include <cstdio>
#include <vector>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"

using namespace spv;
using attack::RingFloodAttack;

namespace {

core::MachineConfig BaseMachine() {
  core::MachineConfig config;
  config.seed = 0;
  config.phys_pages = 16384;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  return config;
}

net::NicDriver::Config Kernel50Driver() {
  net::NicDriver::Config config;
  config.name = "mlx5_k50";
  config.rx_ring_size = 32;
  config.rx_buf_len = 1728;  // 2 KiB entries
  return config;
}

net::NicDriver::Config Kernel415Driver() {
  net::NicDriver::Config config;
  config.name = "mlx5_k415";
  config.rx_ring_size = 32;
  config.hw_lro = true;  // 64 KiB entries
  return config;
}

void Report(const char* name, const std::map<uint64_t, int>& histogram, int boots) {
  int over50 = 0;
  int over95 = 0;
  for (const auto& [pfn, count] : histogram) {
    const double rate = static_cast<double>(count) / boots;
    over50 += rate > 0.5 ? 1 : 0;
    over95 += rate > 0.95 ? 1 : 0;
  }
  const uint64_t best = RingFloodAttack::MostCommonPfn(histogram);
  std::printf("%-14s distinct RX PFNs: %5zu | repeat>50%%: %4d | repeat>95%%: %4d | "
              "best pfn seen in %d/%d boots\n",
              name, histogram.size(), over50, over95,
              histogram.empty() ? 0 : histogram.at(best), boots);
}


}  // namespace

int main() {
  std::printf("== §5.3: RingFlood — boot determinism of RX-ring PFNs ==\n\n");
  constexpr int kBoots = 256;

  RingFloodAttack::ProfileOptions k50;
  k50.machine = BaseMachine();
  k50.driver = Kernel50Driver();
  k50.boots = kBoots;
  auto hist50 = RingFloodAttack::ProfileRxPfns(k50);

  RingFloodAttack::ProfileOptions k415 = k50;
  k415.driver = Kernel415Driver();
  auto hist415 = RingFloodAttack::ProfileRxPfns(k415);

  std::printf("%d reboots each:\n", kBoots);
  Report("kernel 5.0 :", hist50, kBoots);
  Report("kernel 4.15:", hist415, kBoots);
  std::printf("\nfootprint: 5.0 ring = %u KiB/port, 4.15 (HW LRO) ring = %u KiB/port "
              "(paper: 64 MiB vs 2 GiB at testbed scale)\n\n",
              32u * 2048u / 1024u, 32u * 64u);

  // ---- End-to-end attack success against unprofiled boots ----------------------
  constexpr int kVictims = 10;
  int wins = 0;
  const uint64_t guess = RingFloodAttack::MostCommonPfn(hist50);
  for (int v = 0; v < kVictims; ++v) {
    core::MachineConfig victim_config = k50.machine;
    victim_config.seed = k50.base_seed + 10000 + static_cast<uint64_t>(v);
    core::Machine machine{victim_config};
    RingFloodAttack::ReplayBootNoise(machine, victim_config.seed, k50.boot_noise_allocs);
    net::NicDriver& nic = machine.AddNicDriver(k50.driver);
    device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
    device.set_warm_iotlb_on_post(true);
    nic.AttachDevice(&device);
    machine.stack().set_egress(&nic);
    attack::MiniCpu cpu{machine.kmem(), machine.layout()};
    machine.stack().set_callback_invoker(&cpu);
    if (!nic.FillRxRing().ok()) {
      continue;
    }
    attack::AttackEnv env{machine, nic, device, cpu};
    RingFloodAttack::Options options;
    options.pfn_guess = guess;
    auto report = RingFloodAttack::Run(env, options);
    wins += report.ok() && report->success ? 1 : 0;
  }
  std::printf("end-to-end RingFlood vs %d unprofiled victim boots (kernel-5.0 profile, "
              "pfn guess %llu): %d/%d escalations\n",
              kVictims, static_cast<unsigned long long>(guess), wins, kVictims);

  // ---- Footprint sweep: "chances of success increase with the memory
  // footprint of the device driver" (§5.3) -------------------------------------
  std::printf("\nfootprint sweep (32 profiling boots each):\n");
  std::printf("%-22s %-14s %-18s\n", "ring size (buffers)", "RX pages", "best-PFN repeat");
  for (uint32_t ring : {8u, 32u, 128u, 512u}) {
    RingFloodAttack::ProfileOptions sweep = k50;
    sweep.driver.rx_ring_size = ring;
    sweep.boots = 32;
    auto histogram = RingFloodAttack::ProfileRxPfns(sweep);
    const uint64_t best = RingFloodAttack::MostCommonPfn(histogram);
    std::printf("%-22u %-14zu %d/%d boots\n", ring, histogram.size(),
                histogram.empty() ? 0 : histogram.at(best), sweep.boots);
  }

  // ---- Core-count sweep: one RX ring per CPU (§5.3: "higher chance of
  // success on larger machines") --------------------------------------------
  std::printf("\ncore-count sweep (32-entry rings, 32 profiling boots each):\n");
  std::printf("%-22s %-14s %-18s\n", "CPUs (= RX rings)", "RX pages", "best-PFN repeat");
  for (int cpus : {1, 2, 4, 8}) {
    RingFloodAttack::ProfileOptions sweep = k50;
    sweep.num_rings = cpus;
    sweep.boots = 32;
    auto histogram = RingFloodAttack::ProfileRxPfns(sweep);
    const uint64_t best = RingFloodAttack::MostCommonPfn(histogram);
    std::printf("%-22d %-14zu %d/%d boots\n", cpus, histogram.size(),
                histogram.empty() ? 0 : histogram.at(best), sweep.boots);
  }
  std::printf("\nshape check vs paper: PFNs repeat across boots; the larger 4.15/LRO\n"
              "footprint repeats far more reliably (>95%% vs >50%%), and a single good\n"
              "guess suffices for code injection.\n");
  return 0;
}
