// Figure 4: using skb_shared_info to execute arbitrary code, step by step.
// (a) RX buffer mapped WRITE for the NIC; (b) NIC overwrites destructor_arg
// to point at a ubuf_info it fabricated inside the same page; (c) that
// ubuf_info's callback points at the JOP pivot, with the ROP stack adjacent;
// (d) when the skb is released the kernel calls the callback.

#include <cstdio>
#include <vector>

#include "attack/kaslr_break.h"
#include "attack/mini_cpu.h"
#include "attack/poison.h"
#include "core/machine.h"
#include "device/device_port.h"
#include "net/skbuff.h"

using namespace spv;

int main() {
  std::printf("== Figure 4: skb_shared_info code execution, 4 steps ==\n\n");
  core::MachineConfig config;
  config.seed = 4;
  core::Machine machine{config};
  const DeviceId nic{1};
  machine.iommu().AttachDevice(nic);
  device::DevicePort port{machine.iommu(), nic};
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};

  // (a) RX sk_buff + data buffer, mapped WRITE for the whole page.
  machine.frag_pool(CpuId{0});
  net::SkBuffPtr skb = std::move(*machine.skb_alloc().NetdevAllocSkb(CpuId{0}, 1500, "rx_alloc"));
  Iova iova = *machine.dma().MapSingle(nic, skb->head, skb->truesize,
                                       dma::DmaDirection::kFromDevice, "fig4_map");
  std::printf("(a) RX buffer at KVA 0x%llx mapped WRITE, shared_info at +%llu\n",
              static_cast<unsigned long long>(skb->head.value),
              static_cast<unsigned long long>(skb->shared_info() - skb->head));

  // (b)+(c) The NIC writes a ubuf_info + ROP stack into the page and points
  // destructor_arg at it. (For the figure we grant the device the KVA; the
  // compound attacks show how it is *obtained*.)
  attack::KaslrKnowledge knowledge;
  knowledge.text_base = machine.layout().text_base();
  const uint64_t poison_off = 256;  // inside the data area
  const uint64_t poison_kva = (skb->head + poison_off).value;
  auto image = *attack::BuildPoisonImage(knowledge, poison_kva);
  (void)port.Write(iova + poison_off, image);
  std::printf("(b) NIC wrote a fabricated ubuf_info at page offset %llu\n",
              static_cast<unsigned long long>((skb->head + poison_off).page_offset()));
  uint64_t arg = poison_kva;
  std::vector<uint8_t> arg_bytes(8);
  std::memcpy(arg_bytes.data(), &arg, 8);
  (void)port.Write(iova + (skb->shared_info() - skb->head) +
                       net::SharedInfoLayout::kDestructorArg,
                   arg_bytes);
  std::printf("(c) destructor_arg -> 0x%llx; ubuf.callback -> JOP pivot; ROP stack "
              "adjacent\n",
              static_cast<unsigned long long>(poison_kva));

  // (d) the kernel releases the skb.
  (void)machine.skb_alloc().FreeSkb(std::move(skb), &cpu);
  std::printf("(d) sk_buff released -> callback invoked\n\n");

  std::printf("CPU trace:\n");
  for (const auto& entry : cpu.trace()) {
    std::printf("  0x%llx  %s\n", static_cast<unsigned long long>(entry.pc.value),
                entry.what.c_str());
  }
  std::printf("\nprivilege escalated: %s\n", cpu.privilege_escalated() ? "YES" : "no");
  return cpu.privilege_escalated() ? 0 : 1;
}
