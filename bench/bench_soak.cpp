// Chaos-soak bench: fixed-seed runs across {strict,deferred} x {recovery
// on,off}, reporting the availability the echo service kept, the recovery
// latencies, and the leak audit. The recovery-off rows are the paper's
// baseline world: attacks and fault storms run to completion with nobody
// pulling the offending device off the bus.

#include <cstdio>

#include "soak/soak.h"

using namespace spv;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";

  std::printf("== Chaos soak: availability under faults + attacks, with and without "
              "spv::recovery ==\n\n");
  std::printf("%-28s %-6s %10s %8s %9s %9s %11s %7s\n", "configuration", "ok",
              "sim_cycles", "avail", "quaran.", "reattach", "q_lat_p99", "leaks");

  struct Row {
    const char* name;
    bool deferred;
    bool recovery;
  };
  const Row rows[] = {
      {"deferred, recovery on ", true, true},
      {"deferred, recovery off", true, false},
      {"strict,   recovery on ", false, true},
      {"strict,   recovery off", false, false},
  };

  bool all_ok = true;
  for (const Row& row : rows) {
    soak::SoakConfig config;
    config.seed = 20260806;
    config.target_cycles = quick ? 400'000 : 2'000'000;
    config.deferred = row.deferred;
    config.recovery_enabled = row.recovery;
    const soak::SoakReport report = soak::RunSoak(config);
    all_ok = all_ok && report.ok;
    std::printf("%-28s %-6s %10llu %8.4f %9llu %9llu %11llu %7llu\n", row.name,
                report.ok ? "PASS" : "FAIL",
                static_cast<unsigned long long>(report.sim_cycles), report.availability,
                static_cast<unsigned long long>(report.quarantines),
                static_cast<unsigned long long>(report.reattach_attempts),
                static_cast<unsigned long long>(report.quarantine_latency_p99),
                static_cast<unsigned long long>(report.leaked_mappings +
                                                report.leaked_iova_entries));
    if (!report.ok) {
      std::printf("    failure: %s\n", report.failure.c_str());
    }
  }

  std::printf("\nshape check: recovery-off rows still pass (nothing leaks without "
              "supervision — quarantine is a policy, not a crutch); recovery-on rows\n"
              "trade a bounded availability dip for fenced devices and drained flush "
              "queues after every breach.\n");
  return all_ok ? 0 : 1;
}
