// §6: end-to-end attack demonstration summary — all three compound attacks
// against the same victim profile (28-core-server scale-down), with the JOP
// %rsp = %rdi + const pivot located like ROPgadget would.

#include <cstdio>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "mem/kernel_symbols.h"

using namespace spv;

namespace {

struct Rig {
  Rig(uint64_t seed, bool forwarding)
      : machine(MakeConfig(seed, forwarding)), nic(AddNic(machine)) {
    device = std::make_unique<device::MaliciousNic>(
        device::DevicePort{machine.iommu(), nic.device_id()});
    device->set_warm_iotlb_on_post(true);
    nic.AttachDevice(device.get());
    machine.stack().set_egress(&nic);
    cpu = std::make_unique<attack::MiniCpu>(machine.kmem(), machine.layout());
    machine.stack().set_callback_invoker(cpu.get());
  }

  static core::MachineConfig MakeConfig(uint64_t seed, bool forwarding) {
    core::MachineConfig config;
    config.seed = seed;
    config.iommu.mode = iommu::InvalidationMode::kDeferred;
    config.net.forwarding_enabled = forwarding;
    return config;
  }
  static net::NicDriver& AddNic(core::Machine& machine) {
    net::NicDriver::Config config;
    config.name = "bcm5720";
    config.rx_ring_size = 32;
    config.rx_buf_len = 1728;
    return machine.AddNicDriver(config);
  }

  attack::AttackEnv env() { return attack::AttackEnv{machine, nic, *device, *cpu}; }

  core::Machine machine;
  net::NicDriver& nic;
  std::unique_ptr<device::MaliciousNic> device;
  std::unique_ptr<attack::MiniCpu> cpu;
};

}  // namespace

int main() {
  std::printf("== §6: compound attack demonstrations (Dell R730 scale-down) ==\n\n");
  std::printf("JOP pivot gadget (ROPgadget-located): image offset 0x%llx — "
              "\"rsp = rdi + 0x%llx; jmp\"\n\n",
              static_cast<unsigned long long>(mem::kSymJopStackPivot),
              static_cast<unsigned long long>(mem::kSymJopPivotConst));

  // RingFlood.
  {
    attack::RingFloodAttack::ProfileOptions profile;
    profile.machine = Rig::MakeConfig(0, false);
    net::NicDriver::Config driver_config;
    driver_config.rx_ring_size = 32;
    driver_config.rx_buf_len = 1728;
    profile.driver = driver_config;
    profile.boots = 32;
    auto histogram = attack::RingFloodAttack::ProfileRxPfns(profile);
    Rig rig{profile.base_seed + 777, false};
    attack::RingFloodAttack::ReplayBootNoise(rig.machine, rig.machine.config().seed,
                                             profile.boot_noise_allocs);
    (void)rig.nic.FillRxRing();
    attack::RingFloodAttack::Options options;
    options.pfn_guess = attack::RingFloodAttack::MostCommonPfn(histogram);
    auto report = attack::RingFloodAttack::Run(rig.env(), options);
    std::printf("RingFlood (§5.3):        %s  [window: %s]\n",
                report.ok() && report->success ? "ESCALATED" : "failed",
                report.ok() ? report->window_path.c_str() : "-");
  }

  // Poisoned TX.
  {
    Rig rig{42, false};
    (void)rig.machine.stack().CreateSocket(7, true);
    (void)rig.nic.FillRxRing();
    auto report = attack::PoisonedTxAttack::Run(rig.env(), {});
    std::printf("Poisoned TX (§5.4):      %s  [window: %s]\n",
                report.ok() && report->success ? "ESCALATED" : "failed",
                report.ok() ? report->window_path.c_str() : "-");
  }

  // Forward Thinking.
  {
    Rig rig{61, true};
    (void)attack::SeedResidualKernelData(rig.machine, 128);
    (void)rig.nic.FillRxRing();
    auto report = attack::ForwardThinkingAttack::Run(rig.env(), {});
    std::printf("Forward Thinking (§5.5): %s  [window: %s]\n",
                report.ok() && report->success ? "ESCALATED" : "failed",
                report.ok() ? report->window_path.c_str() : "-");
  }

  std::printf("\nall three attacks obtain the §3.3 attribute trifecta and execute the\n"
              "same payload: JOP pivot -> ROP stack -> prepare_kernel_cred ->\n"
              "commit_creds, exactly the §6 demonstration.\n");
  return 0;
}
