// Figure 6 + §5.2.1: strict vs deferred IOTLB invalidation.
//
// Measures (a) the simulated invalidation cost per map/unmap cycle in each
// mode — strict pays ~2000 cycles per unmap, deferred amortizes one global
// flush per queue — and (b) the vulnerability window: how long after
// dma_unmap a device with a warm IOTLB entry retains access.
//
// Built on google-benchmark; simulated-cycle costs are reported as counters.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/machine.h"
#include "telemetry/telemetry.h"

using namespace spv;

namespace {

core::MachineConfig MakeConfig(iommu::InvalidationMode mode) {
  core::MachineConfig config;
  config.seed = 6;
  config.phys_pages = 8192;
  config.iommu.mode = mode;
  // Reported counters come off the telemetry bus, not ad-hoc stats.
  config.telemetry.enabled = true;
  return config;
}

void RunMapUnmap(benchmark::State& state, iommu::InvalidationMode mode) {
  core::Machine machine{MakeConfig(mode)};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "io_buf");
  std::vector<uint8_t> touch(8);

  uint64_t ops = 0;
  for (auto _ : state) {
    auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                        "bench_map");
    benchmark::DoNotOptimize(iova);
    // Device DMA (warms the IOTLB like a real transfer would).
    (void)machine.iommu().DeviceWrite(dev, *iova, touch);
    (void)machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice);
    ++ops;
  }
  telemetry::Hub& hub = machine.telemetry();
  state.counters["sim_inval_cycles_per_op"] =
      ops ? static_cast<double>(hub.counter_value("iommu.invalidation_cycles")) /
                static_cast<double>(ops)
          : 0;
  state.counters["flushes"] = static_cast<double>(hub.counter_value("iommu.flushes"));
  state.counters["targeted_invalidations"] =
      static_cast<double>(hub.counter_value("iommu.targeted_invalidations"));
  state.counters["iotlb_hits"] = static_cast<double>(hub.counter_value("iotlb.hits"));
  state.counters["iotlb_misses"] = static_cast<double>(hub.counter_value("iotlb.misses"));
  // Why the deferred queue drained: full queue vs 10 ms deadline. Strict mode
  // reports zeros (it never queues); deferred at this op rate drains almost
  // exclusively on capacity.
  state.counters["drain_capacity"] =
      static_cast<double>(hub.counter_value("iommu.flush_drain.capacity"));
  state.counters["drain_deadline"] =
      static_cast<double>(hub.counter_value("iommu.flush_drain.deadline"));
}

void BM_MapUnmap_Strict(benchmark::State& state) {
  RunMapUnmap(state, iommu::InvalidationMode::kStrict);
}
void BM_MapUnmap_Deferred(benchmark::State& state) {
  RunMapUnmap(state, iommu::InvalidationMode::kDeferred);
}
BENCHMARK(BM_MapUnmap_Strict);
BENCHMARK(BM_MapUnmap_Deferred);

// The window measurement is deterministic, not timing-based: binary output.
// Distribution stats come from a telemetry Histogram (one shared quantile
// implementation) rather than hand-rolled aggregation.
void BM_StaleWindow(benchmark::State& state) {
  const bool deferred = state.range(0) == 1;
  telemetry::Histogram window_us_hist;
  for (auto _ : state) {
    core::Machine machine{
        MakeConfig(deferred ? iommu::InvalidationMode::kDeferred
                            : iommu::InvalidationMode::kStrict)};
    const DeviceId dev{1};
    machine.iommu().AttachDevice(dev);
    Kva buf = *machine.slab().Kmalloc(2048, "io_buf");
    std::vector<uint8_t> touch(8);
    auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                        "window_map");
    (void)machine.iommu().DeviceWrite(dev, *iova, touch);
    const uint64_t unmap_time = machine.clock().now();
    (void)machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice);
    // Probe in 100 us steps until access is revoked.
    uint64_t window_us = 0;
    while (machine.iommu().DeviceWrite(dev, *iova, touch).ok()) {
      machine.clock().AdvanceUs(100);
      machine.iommu().ProcessDeferredTimer();
      window_us = SimClock::CyclesToUs(machine.clock().now() - unmap_time);
      if (window_us > 100000) {
        break;  // defensive
      }
    }
    window_us_hist.Record(window_us);
    benchmark::DoNotOptimize(window_us);
  }
  const telemetry::Histogram::Summary summary = window_us_hist.Summarize();
  state.counters["stale_window_us"] = summary.mean;
  state.counters["stale_window_us_p50"] = static_cast<double>(summary.p50);
  state.counters["stale_window_us_p99"] = static_cast<double>(summary.p99);
}
BENCHMARK(BM_StaleWindow)->Arg(0)->Arg(1)->ArgNames({"deferred"});

}  // namespace

BENCHMARK_MAIN();
