// Figure 8 / §5.4: Poisoned TX — success rate and attribute acquisition
// across IOMMU modes and echo payload sizes.

#include <cstdio>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"

using namespace spv;

namespace {

bool RunOnce(uint64_t seed, iommu::InvalidationMode mode, uint32_t payload_bytes,
             std::string* window) {
  core::MachineConfig config;
  config.seed = seed;
  config.iommu.mode = mode;
  core::Machine machine{config};
  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 32;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  machine.stack().set_callback_invoker(&cpu);
  if (!machine.stack().CreateSocket(7, true).ok() || !nic.FillRxRing().ok()) {
    return false;
  }
  attack::AttackEnv env{machine, nic, device, cpu};
  attack::PoisonedTxAttack::Options options;
  options.poison_payload_bytes = payload_bytes;
  auto report = attack::PoisonedTxAttack::Run(env, options);
  if (!report.ok()) {
    return false;
  }
  if (window != nullptr) {
    *window = report->window_path;
  }
  return report->success;
}

}  // namespace

int main() {
  std::printf("== Figure 8 / §5.4: Poisoned TX compound attack ==\n\n");
  constexpr int kTrials = 10;
  struct Config {
    const char* name;
    iommu::InvalidationMode mode;
    uint32_t payload;
  };
  const Config configs[] = {
      {"deferred, 1 KiB echo (frags) ", iommu::InvalidationMode::kDeferred, 1024},
      {"deferred, 1500 B echo (frags)", iommu::InvalidationMode::kDeferred, 1500},
      {"strict,   1 KiB echo (frags) ", iommu::InvalidationMode::kStrict, 1024},
      {"strict,   1500 B echo (frags)", iommu::InvalidationMode::kStrict, 1500},
  };
  std::printf("%-32s %-10s %s\n", "configuration", "success", "window path (last run)");
  for (const Config& config : configs) {
    int wins = 0;
    std::string window;
    for (int t = 0; t < kTrials; ++t) {
      wins += RunOnce(7000 + static_cast<uint64_t>(t), config.mode, config.payload, &window)
                  ? 1
                  : 0;
    }
    std::printf("%-32s %3d/%-6d %s\n", config.name, wins, kTrials, window.c_str());
  }
  std::printf("\nshape check vs paper: the echoed buffer provides the KVA (frags leak\n"
              "struct page pointers), so no physical-setup knowledge is needed; strict\n"
              "mode falls to the neighbour-IOVA window.\n");
  return 0;
}
