// Figure 7: the three paths to a destructor_arg write window, measured as
// success rates across driver orderings and IOMMU modes.
//
//   (i)   wrong unmap order (i40e-like): write during CompleteRx, pre-unmap;
//   (ii)  deferred IOTLB: write via the dead IOVA after unmap;
//   (iii) type (c) neighbour IOVA: write via a co-located buffer's mapping.

#include <cstdio>
#include <cstring>
#include <vector>

#include "attack/attacks.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "net/layouts.h"

using namespace spv;

namespace {

struct TrialResult {
  bool path_i = false;
  bool path_ii = false;
  bool path_iii = false;
  bool ground_truth = false;  // the skb's shared_info was really modified
};

TrialResult RunTrial(uint64_t seed, bool wrong_order, iommu::InvalidationMode mode) {
  TrialResult result;
  core::MachineConfig config;
  config.seed = seed;
  config.iommu.mode = mode;
  core::Machine machine{config};
  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 16;
  driver_config.rx_buf_len = 1728;
  driver_config.unmap_before_build = !wrong_order;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  if (!nic.FillRxRing().ok()) {
    return result;
  }

  const net::RxPostedDescriptor consumed = device.rx_posted().front();
  const uint32_t truesize = nic.rx_buffer_bytes();
  const uint64_t kMagic = 0x7e57c0de;

  // Path (i): device writes inside the driver's build-then-unmap window.
  device.set_rx_completing_hook([&](uint32_t) {
    uint8_t bytes[8];
    std::memcpy(bytes, &kMagic, 8);
    result.path_i =
        device.port()
            .Write(consumed.iova + attack::DestructorArgOffset(truesize), bytes)
            .ok();
  });

  net::PacketHeader header{.dst_ip = 1, .dst_port = 9, .proto = net::kProtoUdp};
  std::vector<uint8_t> payload(32, 1);
  auto index = device.InjectRx(header, payload);
  if (!index.ok()) {
    return result;
  }
  auto skb = nic.CompleteRx(*index, net::PacketHeader::kSize + 32);
  if (!skb.ok()) {
    return result;
  }

  // Paths (ii)+(iii), post-completion.
  attack::PokeOptions own_only{.try_own_iova = true, .try_neighbor = false};
  attack::PokeOptions neighbor_only{.try_own_iova = false, .try_neighbor = true};
  result.path_ii =
      attack::TryPokeDestructorArg(device, consumed, truesize, kMagic, own_only).success &&
      mode == iommu::InvalidationMode::kDeferred;  // own-IOVA success in strict = recycled IOVA
  result.path_iii =
      attack::TryPokeDestructorArg(device, consumed, truesize, kMagic, neighbor_only).success;

  net::SharedInfoView shinfo{machine.kmem(), (*skb)->shared_info()};
  result.ground_truth = shinfo.destructor_arg().value_or(0) == kMagic;
  return result;
}

}  // namespace

int main() {
  std::printf("== Figure 7: write-window paths to skb_shared_info ==\n\n");
  constexpr int kTrials = 20;
  struct Config {
    const char* name;
    bool wrong_order;
    iommu::InvalidationMode mode;
  };
  const Config configs[] = {
      {"i40e-like order, deferred", true, iommu::InvalidationMode::kDeferred},
      {"i40e-like order, strict  ", true, iommu::InvalidationMode::kStrict},
      {"correct order,  deferred", false, iommu::InvalidationMode::kDeferred},
      {"correct order,  strict  ", false, iommu::InvalidationMode::kStrict},
  };
  std::printf("%-28s %-10s %-12s %-14s %-12s\n", "configuration", "(i) race",
              "(ii) stale", "(iii) alias", "hijacked");
  for (const Config& config : configs) {
    int path_i = 0;
    int path_ii = 0;
    int path_iii = 0;
    int hijacked = 0;
    for (int t = 0; t < kTrials; ++t) {
      TrialResult result =
          RunTrial(1000 + static_cast<uint64_t>(t), config.wrong_order, config.mode);
      path_i += result.path_i ? 1 : 0;
      path_ii += result.path_ii ? 1 : 0;
      path_iii += result.path_iii ? 1 : 0;
      hijacked += result.ground_truth ? 1 : 0;
    }
    std::printf("%-28s %3d/%-6d %3d/%-8d %3d/%-10d %3d/%d\n", config.name, path_i, kTrials,
                path_ii, kTrials, path_iii, kTrials, hijacked, kTrials);
  }
  std::printf("\nshape check vs paper: the hijack succeeds in EVERY configuration —\n"
              "wrong ordering gives a direct race; deferred mode gives the stale-IOTLB\n"
              "window even for correct drivers; and strict mode is defeated by the\n"
              "type (c) neighbour alias from page_frag RX allocation (§5.2.2).\n");
  return 0;
}
