// Figure 7: the three paths to a destructor_arg write window, measured as
// success rates across driver orderings and IOMMU modes.
//
//   (i)   wrong unmap order (i40e-like): write during CompleteRx, pre-unmap;
//   (ii)  deferred IOTLB: write via the dead IOVA after unmap;
//   (iii) type (c) neighbour IOVA: write via a co-located buffer's mapping.

#include <cstdio>
#include <cstring>
#include <vector>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "dkasan/dkasan.h"
#include "net/layouts.h"
#include "nvme/malicious_nvme.h"
#include "nvme/nvme_driver.h"
#include "spade/analyzer.h"
#include "spade/corpus.h"
#include "trace/window_tracker.h"

using namespace spv;

namespace {

struct TrialResult {
  bool path_i = false;
  bool path_ii = false;
  bool path_iii = false;
  bool ground_truth = false;  // the skb's shared_info was really modified
};

TrialResult RunTrial(uint64_t seed, bool wrong_order, iommu::InvalidationMode mode) {
  TrialResult result;
  core::MachineConfig config;
  config.seed = seed;
  config.iommu.mode = mode;
  core::Machine machine{config};
  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 16;
  driver_config.rx_buf_len = 1728;
  driver_config.unmap_before_build = !wrong_order;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  if (!nic.FillRxRing().ok()) {
    return result;
  }

  const net::RxPostedDescriptor consumed = device.rx_posted().front();
  const uint32_t truesize = nic.rx_buffer_bytes();
  const uint64_t kMagic = 0x7e57c0de;

  // Path (i): device writes inside the driver's build-then-unmap window.
  device.set_rx_completing_hook([&](uint32_t) {
    uint8_t bytes[8];
    std::memcpy(bytes, &kMagic, 8);
    result.path_i =
        device.port()
            .Write(consumed.iova + attack::DestructorArgOffset(truesize), bytes)
            .ok();
  });

  net::PacketHeader header{.dst_ip = 1, .dst_port = 9, .proto = net::kProtoUdp};
  std::vector<uint8_t> payload(32, 1);
  auto index = device.InjectRx(header, payload);
  if (!index.ok()) {
    return result;
  }
  auto skb = nic.CompleteRx(*index, net::PacketHeader::kSize + 32);
  if (!skb.ok()) {
    return result;
  }

  // Paths (ii)+(iii), post-completion.
  attack::PokeOptions own_only{.try_own_iova = true, .try_neighbor = false};
  attack::PokeOptions neighbor_only{.try_own_iova = false, .try_neighbor = true};
  result.path_ii =
      attack::TryPokeDestructorArg(device, consumed, truesize, kMagic, own_only).success &&
      mode == iommu::InvalidationMode::kDeferred;  // own-IOVA success in strict = recycled IOVA
  result.path_iii =
      attack::TryPokeDestructorArg(device, consumed, truesize, kMagic, neighbor_only).success;

  net::SharedInfoView shinfo{machine.kmem(), (*skb)->shared_info()};
  result.ground_truth = shinfo.destructor_arg().value_or(0) == kMagic;
  return result;
}

// ---- Instrumented window accounting ------------------------------------------
//
// The sections below reproduce the Fig-7 temporal claim from *instrumentation*
// (trace::WindowTracker listening on the telemetry bus) instead of the bespoke
// probe loops above: stale-translation windows are opened/closed by the event
// stream itself, and their open-duration histogram is the measurement.

telemetry::Histogram::Summary StaleWindowStats(iommu::InvalidationMode mode) {
  core::MachineConfig config;
  config.seed = 99;
  config.iommu.mode = mode;
  config.telemetry.enabled = true;
  config.trace.enabled = true;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "fig7_window_buf");
  std::vector<uint8_t> touch(8);
  for (int i = 0; i < 64; ++i) {
    auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                        "fig7_window_map");
    if (!iova.ok()) return {};
    (void)machine.iommu().DeviceWrite(dev, *iova, touch);
    (void)machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice);
    machine.clock().AdvanceUs(300);
    machine.iommu().ProcessDeferredTimer();
  }
  machine.clock().AdvanceUs(10001);  // past the deferred deadline: drain all
  machine.iommu().ProcessDeferredTimer();
  return machine.windows()->stale_open_summary();
}

void PrintWindowRow(const char* name, const telemetry::Histogram::Summary& s) {
  std::printf("%-10s %6llu windows | p50 %10llu cyc | p99 %10llu cyc | mean %12.0f\n",
              name, static_cast<unsigned long long>(s.count),
              static_cast<unsigned long long>(s.p50),
              static_cast<unsigned long long>(s.p99), s.mean);
}

// Detection latency: how long after a vulnerability window opens does each
// detector speak up? D-KASAN observes the live machine (its kDkasanReport
// closes the window); SPADE is a static scan run while windows are open (its
// kSpadeFinding records latency but cannot invalidate a translation).
void DetectionScenario(const char* name, bool ringflood) {
  core::MachineConfig config;
  config.seed = ringflood ? 1777 : 42;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  config.telemetry.enabled = true;
  config.trace.enabled = true;
  core::Machine machine{config};
  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 32;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  machine.stack().set_callback_invoker(&cpu);

  dkasan::DKasan detector{machine.layout()};
  detector.set_telemetry(&machine.telemetry());
  detector.Attach(machine.slab());
  detector.Attach(machine.dma());
  detector.Attach(machine.frag_pool(CpuId{0}));

  attack::AttackEnv env{machine, nic, device, cpu};
  if (ringflood) {
    attack::RingFloodAttack::ProfileOptions profile;
    profile.machine = config;
    profile.machine.telemetry.enabled = false;  // profiling boots are offline
    profile.machine.trace.enabled = false;
    profile.driver = driver_config;
    profile.boots = 16;
    auto histogram = attack::RingFloodAttack::ProfileRxPfns(profile);
    attack::RingFloodAttack::ReplayBootNoise(machine, config.seed, 40);
    (void)nic.FillRxRing();
    attack::RingFloodAttack::Options options;
    options.pfn_guess = attack::RingFloodAttack::MostCommonPfn(histogram);
    (void)attack::RingFloodAttack::Run(env, options);
  } else {
    (void)machine.stack().CreateSocket(7, true);
    (void)nic.FillRxRing();
    (void)attack::PoisonedTxAttack::Run(env, {});
  }

  // Static SPADE pass over the driver corpus while the attack's deferred
  // windows are still open.
  spade::SpadeAnalyzer analyzer;
  analyzer.set_telemetry(&machine.telemetry());
  analyzer.set_tracer(machine.tracer());
  if (spade::LoadCorpusDirectory(analyzer, spade::DefaultCorpusDir()).ok()) {
    (void)analyzer.Analyze();
  }

  const telemetry::Histogram::Summary dk = machine.windows()->dkasan_latency_summary();
  const telemetry::Histogram::Summary sp = machine.windows()->spade_latency_summary();
  std::printf("%-14s D-KASAN: %4llu reports, first-report latency p50 %8llu cyc | "
              "SPADE: %4llu findings, latency p50 %8llu cyc\n",
              name, static_cast<unsigned long long>(dk.count),
              static_cast<unsigned long long>(dk.p50),
              static_cast<unsigned long long>(sp.count),
              static_cast<unsigned long long>(sp.p50));
}

// The storage-side scenario: Poisoned Completion (the NVMe Poisoned TX).
// A MaliciousNvme completes a read before transferring, the driver unmaps and
// frees, and the withheld data phase replays through the stale IOTLB entry —
// D-KASAN reports the co-located map while the window is open, and SPADE's
// static pass stamps its own latency against the same windows.
void StorageDetectionScenario(const char* name) {
  core::MachineConfig config;
  config.seed = 4242;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  config.telemetry.enabled = true;
  config.trace.enabled = true;
  core::Machine machine{config};
  nvme::NvmeDriver& driver = machine.AddNvmeDriver({});
  nvme::MaliciousNvme controller{
      device::DevicePort{machine.iommu(), driver.device_id()}};
  controller.set_tracer(machine.tracer());
  driver.AttachDevice(&controller);
  if (!driver.Init().ok()) {
    std::printf("%-20s storage bring-up failed\n", name);
    return;
  }
  controller.set_warm_iotlb(true);

  dkasan::DKasan detector{machine.layout()};
  detector.set_telemetry(&machine.telemetry());
  detector.Attach(machine.slab());
  detector.Attach(machine.dma());
  detector.Attach(machine.frag_pool(CpuId{0}));

  // Several poisoned rounds: each opens a stale window on the freed buffer
  // page, replays the withheld transfer through it, then maps a co-located
  // sibling (the D-KASAN trigger) before the flush closes the books.
  controller.set_complete_before_transfer(true);
  for (int round = 0; round < 8; ++round) {
    auto sentinel = machine.slab().Kmalloc(512, "fig7_sentinel");
    auto buf = machine.slab().Kmalloc(512, "fig7_poisoned_buf");
    if (!sentinel.ok() || !buf.ok()) return;
    if (!driver.ReadBlocks(8, 1, *buf).ok()) return;
    (void)machine.slab().Kfree(*buf);
    machine.clock().AdvanceUs(20);
    (void)controller.ReplayPendingTransfer();
    auto sibling = machine.slab().Kmalloc(512, "fig7_sibling");
    if (sibling.ok()) {
      (void)driver.WriteBlocks(0, 1, *sibling);
      (void)machine.slab().Kfree(*sibling);
    }
    controller.ClearPendingTransfers();
    machine.iommu().FlushNow();
    (void)machine.slab().Kfree(*sentinel);
  }

  // Static SPADE pass over the corpus (nvme sources included) while the last
  // windows were open feeds the spade latency histogram the same way.
  spade::SpadeAnalyzer analyzer;
  analyzer.set_telemetry(&machine.telemetry());
  analyzer.set_tracer(machine.tracer());
  if (spade::LoadCorpusDirectory(analyzer, spade::DefaultCorpusDir()).ok()) {
    (void)analyzer.Analyze();
  }

  const telemetry::Histogram::Summary st = machine.windows()->stale_open_summary();
  const telemetry::Histogram::Summary dk = machine.windows()->dkasan_latency_summary();
  const telemetry::Histogram::Summary sp = machine.windows()->spade_latency_summary();
  std::printf("%-14s D-KASAN: %4llu reports, first-report latency p50 %8llu cyc | "
              "SPADE: %4llu findings, latency p50 %8llu cyc\n",
              name, static_cast<unsigned long long>(dk.count),
              static_cast<unsigned long long>(dk.p50),
              static_cast<unsigned long long>(sp.count),
              static_cast<unsigned long long>(sp.p50));
  std::printf("%-14s stale windows: %llu, open-duration p50 %llu cyc (unmap -> flush)\n",
              "", static_cast<unsigned long long>(st.count),
              static_cast<unsigned long long>(st.p50));
}

}  // namespace

int main() {
  std::printf("== Figure 7: write-window paths to skb_shared_info ==\n\n");
  constexpr int kTrials = 20;
  struct Config {
    const char* name;
    bool wrong_order;
    iommu::InvalidationMode mode;
  };
  const Config configs[] = {
      {"i40e-like order, deferred", true, iommu::InvalidationMode::kDeferred},
      {"i40e-like order, strict  ", true, iommu::InvalidationMode::kStrict},
      {"correct order,  deferred", false, iommu::InvalidationMode::kDeferred},
      {"correct order,  strict  ", false, iommu::InvalidationMode::kStrict},
  };
  std::printf("%-28s %-10s %-12s %-14s %-12s\n", "configuration", "(i) race",
              "(ii) stale", "(iii) alias", "hijacked");
  for (const Config& config : configs) {
    int path_i = 0;
    int path_ii = 0;
    int path_iii = 0;
    int hijacked = 0;
    for (int t = 0; t < kTrials; ++t) {
      TrialResult result =
          RunTrial(1000 + static_cast<uint64_t>(t), config.wrong_order, config.mode);
      path_i += result.path_i ? 1 : 0;
      path_ii += result.path_ii ? 1 : 0;
      path_iii += result.path_iii ? 1 : 0;
      hijacked += result.ground_truth ? 1 : 0;
    }
    std::printf("%-28s %3d/%-6d %3d/%-8d %3d/%-10d %3d/%d\n", config.name, path_i, kTrials,
                path_ii, kTrials, path_iii, kTrials, hijacked, kTrials);
  }
  std::printf("\nshape check vs paper: the hijack succeeds in EVERY configuration —\n"
              "wrong ordering gives a direct race; deferred mode gives the stale-IOTLB\n"
              "window even for correct drivers; and strict mode is defeated by the\n"
              "type (c) neighbour alias from page_frag RX allocation (§5.2.2).\n");

  std::printf("\n== Instrumented stale-window durations (trace::WindowTracker) ==\n\n");
  const telemetry::Histogram::Summary deferred =
      StaleWindowStats(iommu::InvalidationMode::kDeferred);
  const telemetry::Histogram::Summary strict =
      StaleWindowStats(iommu::InvalidationMode::kStrict);
  PrintWindowRow("deferred", deferred);
  PrintWindowRow("strict", strict);
  if (strict.p50 > 0) {
    std::printf("\ndeferred/strict p50 gap: %.0fx — the Fig-7 (ii) window measured from\n"
                "the event stream: strict windows last only the synchronous invalidation\n"
                "(~2000 cycles/page); deferred windows last until the next queue drain.\n",
                static_cast<double>(deferred.p50) / static_cast<double>(strict.p50));
  }

  std::printf("\n== Detection latency (cycles from window open to detector report) ==\n\n");
  DetectionScenario("Poisoned TX", /*ringflood=*/false);
  DetectionScenario("RingFlood", /*ringflood=*/true);
  StorageDetectionScenario("Poisoned Cmpl");
  return 0;
}
