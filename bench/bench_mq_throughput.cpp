// Multi-queue scaling: aggregate map/unmap and RX-echo throughput at
// 1/2/4/8 sim CPUs, in both exec modes.
//
// The denominator is SIMULATED time, not wall clock. Per-CPU sim clocks
// (ExecMode::kThreads) advance only for the work their own CPU performs —
// host lock waits and scheduler noise advance nothing — so "aggregate ops
// per million sim cycles" is a machine-independent scaling measure: with N
// CPUs doing the same per-CPU work, elapsed sim time (the per-CPU maximum)
// stays flat while total ops grow N-fold. kSequential runs the identical
// workload against the single shared clock, so its aggregate throughput
// stays flat with N — the contrast IS the scaling story.
//
// Workloads:
//   churn    per-CPU map+unmap pairs on per-CPU driverless devices: the
//            IOVA-magazine + sharded-flush-queue path, no rings involved.
//   rx_echo  RSS-steered RX inject + CompleteRx + skb free on a NIC with one
//            queue pair per CPU; each flow lands on the queue (and CPU) the
//            Toeplitz hash picks, so per-queue load follows real RSS balance.
//
// Strict invalidation keeps per-op costs deterministic in kSequential;
// kThreads numbers drift a little with thread interleaving (shared IOTLB and
// depot state), which the baseline gate's tolerance absorbs.
//
// Emits BENCH_mq_throughput.json for tools/check_bench_baseline.py. The
// headline keys are the 8-CPU kThreads scaling ratios (vs 1-CPU kThreads)
// and their parallel efficiency, plus the RSS min-share balance across 8
// queues (pure hash arithmetic, fully deterministic).
//
// Usage: bench_mq_throughput [--quick] [--out FILE]

#include <array>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.h"
#include "device/device_port.h"
#include "net/layouts.h"
#include "net/nic_driver.h"
#include "net/rss.h"

using namespace spv;

namespace {

constexpr uint32_t kCpuCounts[] = {1, 2, 4, 8};
constexpr uint32_t kChurnDeviceBase = 800;

// A benign multi-queue device model safe for kThreads: descriptors are kept
// per queue, and each queue is only ever touched by the host thread driving
// that queue's CPU (posting happens inside that thread's CompleteRx refill),
// so the per-queue deques need no locks. DMA goes through the (locked) IOMMU.
class BenchNicDevice : public net::NicDeviceModel {
 public:
  BenchNicDevice(iommu::Iommu& iommu, DeviceId id, uint32_t num_queues)
      : iommu_(iommu), id_(id), queues_(num_queues) {}

  void OnRxPosted(const net::RxPostedDescriptor& descriptor) override {
    queues_[descriptor.queue].push_back(descriptor);
  }
  void OnTxPosted(const net::TxPostedDescriptor&) override {}

  // DMA-writes header+payload into the oldest descriptor posted by `queue`
  // and returns its ring index.
  Result<uint32_t> InjectRxOn(uint32_t queue, const net::PacketHeader& header,
                              std::span<const uint8_t> payload) {
    auto& posted = queues_[queue];
    if (posted.empty()) {
      return Unavailable("no posted RX descriptors on queue");
    }
    const net::RxPostedDescriptor descriptor = posted.front();
    posted.erase(posted.begin());
    std::vector<uint8_t> wire(net::PacketHeader::kSize + payload.size());
    auto put32 = [&](uint64_t at, uint32_t v) { std::memcpy(wire.data() + at, &v, 4); };
    auto put16 = [&](uint64_t at, uint16_t v) { std::memcpy(wire.data() + at, &v, 2); };
    put32(net::PacketHeader::kSrcIp, header.src_ip);
    put32(net::PacketHeader::kDstIp, header.dst_ip);
    put16(net::PacketHeader::kSrcPort, header.src_port);
    put16(net::PacketHeader::kDstPort, header.dst_port);
    wire[net::PacketHeader::kProto] = header.proto;
    wire[net::PacketHeader::kFlags] = header.flags;
    put16(net::PacketHeader::kLen, static_cast<uint16_t>(payload.size()));
    put32(net::PacketHeader::kSeq, header.seq);
    std::copy(payload.begin(), payload.end(), wire.begin() + net::PacketHeader::kSize);
    SPV_RETURN_IF_ERROR(iommu_.DeviceWrite(id_, descriptor.iova, wire));
    return descriptor.index;
  }

 private:
  iommu::Iommu& iommu_;
  DeviceId id_;
  std::vector<std::vector<net::RxPostedDescriptor>> queues_;
};

struct CaseResult {
  std::string workload;
  std::string mode;  // "seq" | "threads"
  uint32_t cpus = 0;
  uint64_t ops = 0;
  uint64_t elapsed_sim_cycles = 0;  // max over CPUs: the sim wall clock
  double ops_per_mcycle = 0;
  double cycles_per_op = 0;
  // rx_echo only: per-queue completed packets (RSS balance in action).
  std::vector<uint64_t> queue_packets;
};

core::Machine MakeMachine(uint32_t cpus, ExecMode exec) {
  core::MachineConfig mc;
  mc.seed = 9;
  mc.phys_pages = 32768;
  mc.exec = exec;
  mc.iommu.mode = iommu::InvalidationMode::kStrict;
  mc.iommu.fast_path.num_cpus = cpus;
  return core::Machine{mc};
}

// Sim-time elapsed for a parallel phase: the per-CPU maximum of the clock
// deltas (in kSequential every CPU reads the one shared counter, so this
// degenerates to the plain before/after difference).
struct SimStopwatch {
  explicit SimStopwatch(core::Machine& machine, uint32_t cpus) : machine_(machine) {
    for (uint32_t c = 0; c < cpus; ++c) {
      before_.push_back(machine.clock().now_cpu(CpuId{c}));
    }
  }
  uint64_t Elapsed() const {
    uint64_t worst = 0;
    for (uint32_t c = 0; c < before_.size(); ++c) {
      const uint64_t delta = machine_.clock().now_cpu(CpuId{c}) - before_[c];
      if (delta > worst) {
        worst = delta;
      }
    }
    return worst;
  }
  core::Machine& machine_;
  std::vector<uint64_t> before_;
};

CaseResult RunChurn(uint32_t cpus, ExecMode exec, uint64_t ops_per_cpu) {
  core::Machine machine = MakeMachine(cpus, exec);
  std::vector<Kva> bufs;
  for (uint32_t c = 0; c < cpus; ++c) {
    machine.iommu().AttachDevice(DeviceId{kChurnDeviceBase + c});
    bufs.push_back(*machine.slab().Kmalloc(2048, "bench_mq_buf"));
  }
  // Warm-up: one pair per CPU fills magazines and the walk cache so the
  // timed loop measures steady state.
  machine.RunOnCpus(cpus, [&](CpuId cpu) {
    const DeviceId dev{kChurnDeviceBase + cpu.value};
    auto iova = machine.dma().MapSingle(dev, bufs[cpu.value], 2048,
                                        dma::DmaDirection::kFromDevice, "bench_mq_warm");
    if (!iova.ok()) std::abort();
    if (!machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice).ok()) {
      std::abort();
    }
  });

  SimStopwatch watch{machine, cpus};
  machine.RunOnCpus(cpus, [&](CpuId cpu) {
    const DeviceId dev{kChurnDeviceBase + cpu.value};
    for (uint64_t op = 0; op < ops_per_cpu; ++op) {
      auto iova = machine.dma().MapSingle(dev, bufs[cpu.value], 2048,
                                          dma::DmaDirection::kFromDevice, "bench_mq_loop");
      if (!iova.ok()) std::abort();
      if (!machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice).ok()) {
        std::abort();
      }
    }
  });

  CaseResult result;
  result.workload = "churn";
  result.mode = exec == ExecMode::kThreads ? "threads" : "seq";
  result.cpus = cpus;
  result.ops = ops_per_cpu * cpus;
  result.elapsed_sim_cycles = watch.Elapsed();
  return result;
}

CaseResult RunRxEcho(uint32_t cpus, ExecMode exec, uint32_t rounds) {
  core::Machine machine = MakeMachine(cpus, exec);
  net::NicDriver::Config config;
  config.name = "mqb";
  config.num_queues = cpus;
  config.rx_ring_size = 64;
  net::NicDriver& driver = machine.AddNicDriver(config);
  BenchNicDevice device{machine.iommu(), driver.device_id(), cpus};
  driver.AttachDevice(&device);
  if (!driver.FillAllRxRings().ok()) std::abort();

  // 64*cpus flows, assigned to queues by the driver's own RSS hash: per-queue
  // load is whatever Toeplitz balance gives, exactly as on real hardware.
  std::vector<std::vector<net::PacketHeader>> flows(cpus);
  for (uint32_t f = 0; f < 64 * cpus; ++f) {
    net::PacketHeader header{.src_ip = 0x0a000002,
                             .dst_ip = 0x0a000001,
                             .src_port = static_cast<uint16_t>(16384 + f),
                             .dst_port = 7,
                             .proto = net::kProtoUdp};
    const uint32_t queue = driver.QueueForFlow(net::FlowTuple{
        header.src_ip, header.dst_ip, header.src_port, header.dst_port});
    flows[queue].push_back(header);
  }
  const std::vector<uint8_t> payload(64, 0x5a);
  const auto wire_len =
      static_cast<uint32_t>(net::PacketHeader::kSize + payload.size());

  SimStopwatch watch{machine, cpus};
  machine.RunOnCpus(cpus, [&](CpuId cpu) {
    const uint32_t queue = cpu.value;  // 1:1 queue:cpu in this bench
    for (uint32_t r = 0; r < rounds; ++r) {
      for (const net::PacketHeader& header : flows[queue]) {
        auto index = device.InjectRxOn(queue, header, payload);
        if (!index.ok()) std::abort();
        auto skb = driver.CompleteRx(queue, *index, wire_len);
        if (!skb.ok() || *skb == nullptr) std::abort();
        if (!machine.skb_alloc().FreeSkb(std::move(*skb), nullptr).ok()) std::abort();
      }
    }
  });

  CaseResult result;
  result.workload = "rx_echo";
  result.mode = exec == ExecMode::kThreads ? "threads" : "seq";
  result.cpus = cpus;
  result.ops = driver.rx_packets();
  result.elapsed_sim_cycles = watch.Elapsed();
  for (uint32_t q = 0; q < cpus; ++q) {
    result.queue_packets.push_back(driver.rx_packets(q));
  }
  if (!driver.Shutdown().ok()) std::abort();
  return result;
}

void Finish(CaseResult& result) {
  if (result.elapsed_sim_cycles > 0) {
    result.ops_per_mcycle = static_cast<double>(result.ops) * 1e6 /
                            static_cast<double>(result.elapsed_sim_cycles);
    result.cycles_per_op = static_cast<double>(result.elapsed_sim_cycles) /
                           static_cast<double>(result.ops);
  }
}

std::string Json(const CaseResult& r) {
  std::ostringstream out;
  out << "    {\"workload\": \"" << r.workload << "\", \"mode\": \"" << r.mode
      << "\", \"cpus\": " << r.cpus << ", \"fast_path\": true, \"ops\": " << r.ops
      << ", \"elapsed_sim_cycles\": " << r.elapsed_sim_cycles
      << ", \"ops_per_mcycle\": " << r.ops_per_mcycle
      << ", \"sim_cycles_per_op\": {\"mean\": " << r.cycles_per_op << "}";
  if (!r.queue_packets.empty()) {
    out << ", \"queue_packets\": [";
    for (size_t q = 0; q < r.queue_packets.size(); ++q) {
      out << (q ? ", " : "") << r.queue_packets[q];
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

// RSS balance across 8 queues over 4096 sequential-port flows: the smallest
// queue's share of a perfectly fair split. Pure Toeplitz arithmetic.
double RssMinShare() {
  const net::Rss rss{8};
  std::array<uint32_t, 8> counts{};
  for (uint32_t f = 0; f < 4096; ++f) {
    ++counts[rss.QueueFor(net::FlowTuple{0x0a000002, 0x0a000001,
                                         static_cast<uint16_t>(16384 + f), 7})];
  }
  uint32_t min = counts[0];
  for (uint32_t c : counts) {
    if (c < min) min = c;
  }
  return static_cast<double>(min) / (4096.0 / 8.0);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_mq_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_mq_throughput [--quick] [--out FILE]\n";
      return 2;
    }
  }
  const uint64_t churn_ops = quick ? 2000 : 20000;  // per CPU
  const uint32_t echo_rounds = quick ? 4 : 30;      // passes over each queue's flows

  std::vector<CaseResult> cases;
  std::map<std::pair<std::string, uint32_t>, double> threads_thr;
  for (const char* workload : {"churn", "rx_echo"}) {
    for (ExecMode exec : {ExecMode::kSequential, ExecMode::kThreads}) {
      for (uint32_t cpus : kCpuCounts) {
        CaseResult result = std::strcmp(workload, "churn") == 0
                                ? RunChurn(cpus, exec, churn_ops)
                                : RunRxEcho(cpus, exec, echo_rounds);
        Finish(result);
        if (exec == ExecMode::kThreads) {
          threads_thr[{result.workload, cpus}] = result.ops_per_mcycle;
        }
        std::cout << result.workload << " " << result.mode << " cpus=" << cpus << ": "
                  << result.ops << " ops / " << result.elapsed_sim_cycles
                  << " sim cycles = " << result.ops_per_mcycle << " ops/Mcycle\n";
        cases.push_back(std::move(result));
      }
    }
  }

  const double churn_scaling =
      threads_thr[{"churn", 8}] / threads_thr[{"churn", 1}];
  const double echo_scaling =
      threads_thr[{"rx_echo", 8}] / threads_thr[{"rx_echo", 1}];
  const double rss_min_share = RssMinShare();
  std::cout << "8-CPU kThreads scaling: churn " << churn_scaling << "x, rx_echo "
            << echo_scaling << "x (efficiency " << churn_scaling / 8 << " / "
            << echo_scaling / 8 << "), rss min share " << rss_min_share << "\n";

  std::ostringstream out;
  out << "{\n  \"benchmark\": \"mq_throughput\",\n"
      << "  \"churn_scaling_8cpu_threads\": " << churn_scaling << ",\n"
      << "  \"rx_echo_scaling_8cpu_threads\": " << echo_scaling << ",\n"
      << "  \"churn_scaling_efficiency_8cpu\": " << churn_scaling / 8 << ",\n"
      << "  \"rx_echo_scaling_efficiency_8cpu\": " << echo_scaling / 8 << ",\n"
      << "  \"rss_balance_min_share\": " << rss_min_share << ",\n"
      << "  \"cases\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    out << Json(cases[i]) << (i + 1 < cases.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  file << out.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
