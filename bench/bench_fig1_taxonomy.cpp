// Figure 1: the four sub-page vulnerability types, each constructed live in
// the simulator and verified by direct device access through the IOMMU.

#include <cstdio>
#include <vector>

#include "core/machine.h"
#include "device/device_port.h"
#include "net/skbuff.h"

using namespace spv;

int main() {
  std::printf("== Figure 1: sub-page vulnerability taxonomy ==\n\n");
  core::MachineConfig config;
  config.seed = 11;
  config.iommu.mode = iommu::InvalidationMode::kStrict;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  device::DevicePort port{machine.iommu(), dev};

  // ---- (a) I/O buffer embedded in a driver struct -----------------------------
  {
    // "struct op { u8 io_buf[256]; callback }" modelled as two kmallocs on one
    // cache line-up: buffer at +0, callback pointer at +256 of one object.
    Kva op = *machine.slab().Kmalloc(512, "driver_op_struct");
    (void)machine.kmem().WriteU64(op + 256, 0xca11bacc);  // op->done
    Iova iova = *machine.dma().MapSingle(dev, op, 256, dma::DmaDirection::kFromDevice,
                                         "type_a_map");
    std::vector<uint8_t> poison(8, 0xee);
    const bool writable = port.Write(iova + 256, poison).ok();
    std::printf("(a) driver metadata: callback at buffer+256 device-writable: %s\n",
                writable ? "YES — type (a) exposure" : "no");
  }

  // ---- (b) OS metadata placed inside the buffer (skb_shared_info) -------------
  {
    machine.frag_pool(CpuId{0});
    net::SkBuffPtr skb = std::move(*machine.skb_alloc().NetdevAllocSkb(CpuId{0}, 1500, "rx_alloc"));
    Iova iova = *machine.dma().MapSingle(dev, skb->head,
                                         static_cast<uint64_t>(skb->truesize),
                                         dma::DmaDirection::kFromDevice, "type_b_map");
    const uint64_t shinfo_off = skb->shared_info() - skb->head;
    std::vector<uint8_t> poison(8, 0xdd);
    const bool writable =
        port.Write(iova + shinfo_off + net::SharedInfoLayout::kDestructorArg, poison).ok();
    std::printf("(b) OS metadata: skb_shared_info.destructor_arg device-writable: %s\n",
                writable ? "YES — type (b) exposure (OS design)" : "no");
    (void)machine.skb_alloc().FreeSkb(std::move(skb), nullptr);
  }

  // ---- (c) page mapped by multiple IOVAs ----------------------------------------
  {
    auto& pool = machine.frag_pool(CpuId{0});
    Kva buf_a = *pool.Alloc(1728, 64, "rx_a");
    Kva buf_b = *pool.Alloc(1728, 64, "rx_b");
    Iova iova_a =
        *machine.dma().MapSingle(dev, buf_a, 1728, dma::DmaDirection::kFromDevice, "c_a");
    Iova iova_b =
        *machine.dma().MapSingle(dev, buf_b, 1728, dma::DmaDirection::kFromDevice, "c_b");
    const Pfn pfn = machine.layout().DirectMapKvaToPhys(buf_a)->pfn();
    const auto aliases = machine.iommu().IovasForPfn(dev, pfn);
    // Unmap buffer A; the device keeps writing through B's IOVA.
    (void)machine.dma().UnmapSingle(dev, iova_a, 1728, dma::DmaDirection::kFromDevice);
    std::vector<uint8_t> poison(8, 0xcc);
    const int64_t delta = static_cast<int64_t>(buf_a.value) - static_cast<int64_t>(buf_b.value);
    const bool still_writable =
        port.Write(Iova{static_cast<uint64_t>(static_cast<int64_t>(iova_b.value) + delta)},
                   poison)
            .ok();
    std::printf("(c) multiple IOVA: page had %zu aliases; after unmap(A), A's bytes "
                "writable via B: %s\n",
                aliases.size(), still_writable ? "YES — type (c) exposure" : "no");
  }

  // ---- (d) random co-location -----------------------------------------------------
  {
    Kva io_buf = *machine.slab().Kmalloc(1024, "usb_urb_buffer");
    Kva sock = *machine.slab().Kmalloc(1024, "sock_alloc_inode+0x4f/0x120");
    (void)machine.kmem().WriteU64(sock + 8, machine.stack().init_net_kva().value);
    Iova iova = *machine.dma().MapSingle(dev, io_buf, 1024,
                                         dma::DmaDirection::kBidirectional, "type_d_map");
    const uint64_t delta = sock.value - io_buf.PageBase().value;
    uint64_t leaked = port.ReadU64(iova.PageBase() + delta + 8).value_or(0);
    std::printf("(d) random co-location: socket object leaked through I/O page, "
                "init_net ptr = 0x%llx: %s\n",
                static_cast<unsigned long long>(leaked),
                leaked == machine.stack().init_net_kva().value ? "YES — type (d) exposure"
                                                               : "no");
  }

  std::printf("\nall four Figure-1 exposure types reproduced against a live IOMMU.\n");
  return 0;
}
