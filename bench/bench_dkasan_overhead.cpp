// §4.3: D-KASAN run-time cost — the workload with and without the sanitizer
// attached ("a run-time tool that has a large memory footprint and the
// obvious overhead of callbacks on each memory access").

#include <benchmark/benchmark.h>

#include "core/machine.h"
#include "device/malicious_nic.h"
#include "dkasan/dkasan.h"
#include "dkasan/workload.h"

using namespace spv;

namespace {

void RunWorkload(benchmark::State& state, bool sanitize) {
  uint64_t findings = 0;
  for (auto _ : state) {
    core::MachineConfig config;
    config.seed = 7;
    config.phys_pages = 8192;
    core::Machine machine{config};
    std::unique_ptr<dkasan::DKasan> dkasan;
    if (sanitize) {
      dkasan = std::make_unique<dkasan::DKasan>(machine.layout());
      dkasan->Attach(machine.slab());
      dkasan->Attach(machine.dma());
    }
    net::NicDriver::Config driver_config;
    driver_config.rx_ring_size = 16;
    driver_config.rx_buf_len = 1728;
    net::NicDriver& nic = machine.AddNicDriver(driver_config);
    device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
    nic.AttachDevice(&device);
    if (sanitize) {
      dkasan->Attach(machine.frag_pool(CpuId{0}));
    }
    auto stats = dkasan::RunBuildAndPingWorkload(machine, nic, device, {.iterations = 100});
    benchmark::DoNotOptimize(stats);
    if (dkasan) {
      findings += dkasan->reports().size();
    }
  }
  state.counters["findings_per_run"] =
      state.iterations() ? static_cast<double>(findings) /
                               static_cast<double>(state.iterations())
                         : 0;
}

void BM_Workload_Baseline(benchmark::State& state) { RunWorkload(state, false); }
void BM_Workload_DKasan(benchmark::State& state) { RunWorkload(state, true); }
BENCHMARK(BM_Workload_Baseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Workload_DKasan)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
