// NVMe block-IO cost: the storage stack's submit -> fetch -> transfer ->
// complete path, measured end to end through the DMA fast path.
//
// One binary runs every cell of {workload} x {strict,deferred} x {fast path
// on,off} and emits BENCH_nvme_io.json in the same shape as
// BENCH_map_unmap.json, so tools/check_bench_baseline.py gates it unchanged
// (--baseline bench/BENCH_nvme_io.baseline.json).
//
// Workloads:
//   read_1blk     one-block read: PRP1 only, the minimal command.
//   write_8blk    eight-block write: PRP2 as a second page pointer.
//   rw_chained    144-block write+read pair: 18 pages, a chained PRP list
//                 (two 128-byte frag segments mapped and torn down per
//                 command) — the heaviest per-command DMA churn.
//
// Wall-clock throughput is reported for curiosity only; CI compares the
// *simulated-cycle* quantiles, which are deterministic (seeded RNG, logical
// clock): a drift means the storage path's cost model changed.
//
// --policy-untrusted adds a degraded-mode sweep: the same workloads with the
// trust policy enabled and the controller untrusted, so every queue lives on
// persistent sync'd bounce rings and every payload is copied through the
// pool. Those cases are labelled "<workload>_untrusted" and the headline
// ratio untrusted_sync_slowdown (untrusted mean / direct deferred-fast mean
// for read_1blk) is emitted for the baseline gate.
//
// Usage: bench_nvme_io [--quick] [--policy-untrusted] [--out FILE]

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.h"
#include "device/device_port.h"
#include "nvme/nvme_controller.h"
#include "nvme/nvme_driver.h"
#include "telemetry/telemetry.h"

using namespace spv;

namespace {

struct CaseConfig {
  std::string workload;
  iommu::InvalidationMode mode = iommu::InvalidationMode::kDeferred;
  uint32_t cpus = 1;  // the driver pins itself to CPU 0; kept for schema parity
  bool fast = true;
  // Trust policy on + controller untrusted: queues on persistent sync'd
  // bounce rings, payloads copied through the pool every command.
  bool untrusted = false;
  uint64_t ops = 0;

  // Baseline case key: untrusted cases get their own workload label so the
  // gate never conflates them with the direct-path cell of the same shape.
  std::string Label() const {
    return untrusted ? workload + "_untrusted" : workload;
  }
};

struct CaseResult {
  CaseConfig config;
  double ios_per_sec = 0;
  uint64_t prp_segments_built = 0;
  telemetry::Histogram::Summary op_cycles;
};

// One IO round for the case's workload; aborts on any driver error (the
// bench runs an honest controller — nothing here may fail).
void OneOp(core::Machine& machine, nvme::NvmeDriver& driver,
           const CaseConfig& config, Kva buf) {
  if (config.workload == "read_1blk") {
    if (!driver.ReadBlocks(0, 1, buf).ok()) std::abort();
  } else if (config.workload == "write_8blk") {
    if (!driver.WriteBlocks(8, 8, buf).ok()) std::abort();
  } else {  // rw_chained
    if (!driver.WriteBlocks(0, 144, buf).ok()) std::abort();
    if (!driver.ReadBlocks(0, 144, buf).ok()) std::abort();
  }
  // Let the deferred deadline timer fire occasionally, like a real host.
  machine.clock().AdvanceUs(2);
  machine.iommu().ProcessDeferredTimer();
}

CaseResult RunCase(const CaseConfig& config) {
  core::MachineConfig mc;
  mc.seed = 2;
  mc.phys_pages = 32768;
  mc.iommu.mode = config.mode;
  if (config.untrusted) {
    // No quirks: a freshly registered controller starts untrusted, so Init
    // brings the queues up in bounce_sync mode from the first doorbell.
    // Size the pool like a swiotlb sized for the workload: rw_chained moves
    // 18 payload pages per command on top of the 4 persistent ring pages,
    // which overflows the 16-page default.
    mc.policy.enabled = true;
    mc.policy.bounce_pages = 64;
  }
  if (!config.fast) {
    mc.iommu.fast_path.rcache_enabled = false;
    mc.iommu.fast_path.hash_index_enabled = false;
    mc.iommu.fast_path.walk_cache_enabled = false;
  }
  core::Machine machine{mc};
  nvme::NvmeDriver& driver = machine.AddNvmeDriver({});
  nvme::NvmeController controller{
      device::DevicePort{machine.iommu(), driver.device_id()}};
  driver.AttachDevice(&controller);
  if (!driver.Init().ok()) std::abort();
  if (config.untrusted &&
      driver.service_mode() != dma::ServiceMode::kBounceSync) {
    std::abort();  // the whole point of the case is the sync-ring path
  }

  const uint64_t buf_bytes =
      config.workload == "rw_chained" ? 144 * nvme::kLbaSize : 8 * nvme::kLbaSize;
  Kva buf = *machine.slab().Kmalloc(buf_bytes, "bench_nvme_buf");

  // Warm-up: magazine caches, frag page, controller queues.
  for (int i = 0; i < 8; ++i) {
    OneOp(machine, driver, config, buf);
  }

  // Timed wall-clock pass.
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t op = 0; op < config.ops; ++op) {
    OneOp(machine, driver, config, buf);
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();

  // Untimed deterministic pass: SimClock delta per IO round.
  telemetry::Histogram op_cycles;
  for (uint64_t op = 0; op < 256; ++op) {
    const uint64_t before = machine.clock().now();
    OneOp(machine, driver, config, buf);
    op_cycles.Record(machine.clock().now() - before);
  }

  CaseResult result;
  result.config = config;
  result.ios_per_sec =
      seconds > 0 ? static_cast<double>(config.ops) / seconds : 0;
  result.prp_segments_built = driver.prp_segments_built();
  result.op_cycles = op_cycles.Summarize();

  if (!machine.slab().Kfree(buf).ok()) std::abort();
  if (!driver.Shutdown().ok()) std::abort();
  machine.iommu().FlushNow();
  if (!machine.CheckInvariants().ok()) std::abort();
  return result;
}

std::string Json(const CaseResult& r) {
  std::ostringstream out;
  out << "    {\"workload\": \"" << r.config.Label() << "\", \"mode\": \""
      << iommu::InvalidationModeName(r.config.mode) << "\", \"cpus\": " << r.config.cpus
      << ", \"fast_path\": " << (r.config.fast ? "true" : "false")
      << ", \"ops\": " << r.config.ops << ", \"ios_per_sec\": " << r.ios_per_sec
      << ", \"prp_segments_built\": " << r.prp_segments_built
      << ", \"sim_cycles_per_op\": {\"p50\": " << r.op_cycles.p50
      << ", \"p90\": " << r.op_cycles.p90 << ", \"p99\": " << r.op_cycles.p99
      << ", \"mean\": " << r.op_cycles.mean << "}}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool policy_untrusted = false;
  std::string out_path = "BENCH_nvme_io.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--policy-untrusted") == 0) {
      policy_untrusted = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr
          << "usage: bench_nvme_io [--quick] [--policy-untrusted] [--out FILE]\n";
      return 2;
    }
  }
  const uint64_t light_ops = quick ? 500 : 5000;
  const uint64_t heavy_ops = quick ? 200 : 2000;

  std::vector<CaseResult> results;
  for (const std::string workload : {"read_1blk", "write_8blk", "rw_chained"}) {
    for (const auto mode :
         {iommu::InvalidationMode::kStrict, iommu::InvalidationMode::kDeferred}) {
      for (const bool fast : {true, false}) {
        CaseConfig config;
        config.workload = workload;
        config.mode = mode;
        config.fast = fast;
        config.ops = workload == "rw_chained" ? heavy_ops : light_ops;
        results.push_back(RunCase(config));
        const CaseResult& r = results.back();
        std::cout << workload << " " << iommu::InvalidationModeName(mode)
                  << (fast ? " fast" : " slow") << ": "
                  << static_cast<uint64_t>(r.ios_per_sec) << " ios/s, p99 "
                  << r.op_cycles.p99 << " sim cycles\n";
      }
    }
  }

  // Degraded-mode sweep: same workloads, untrusted controller on sync'd
  // bounce rings. Deferred + fast path only — the bounce pool routes around
  // the IOTLB, so the strict/slow axes measure nothing new here.
  if (policy_untrusted) {
    for (const std::string workload : {"read_1blk", "write_8blk", "rw_chained"}) {
      CaseConfig config;
      config.workload = workload;
      config.mode = iommu::InvalidationMode::kDeferred;
      config.untrusted = true;
      config.ops = workload == "rw_chained" ? heavy_ops : light_ops;
      results.push_back(RunCase(config));
      const CaseResult& r = results.back();
      std::cout << r.config.Label() << " deferred fast: "
                << static_cast<uint64_t>(r.ios_per_sec) << " ios/s, p99 "
                << r.op_cycles.p99 << " sim cycles\n";
    }
  }

  // Headlines for the CI gate: the minimal command on the default config,
  // and (with --policy-untrusted) the sync-ring slowdown ratio against it.
  uint64_t steady_p99_cycles = 0;
  double direct_read_mean = 0;
  double untrusted_read_mean = 0;
  for (const CaseResult& r : results) {
    if (r.config.workload != "read_1blk" || !r.config.fast ||
        r.config.mode != iommu::InvalidationMode::kDeferred) {
      continue;
    }
    if (r.config.untrusted) {
      untrusted_read_mean = r.op_cycles.mean;
    } else {
      steady_p99_cycles = r.op_cycles.p99;
      direct_read_mean = r.op_cycles.mean;
    }
  }
  const double untrusted_sync_slowdown =
      direct_read_mean > 0 ? untrusted_read_mean / direct_read_mean : 0;

  std::ofstream out(out_path);
  out << "{\n  \"benchmark\": \"nvme_io\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"steady_p99_sim_cycles\": " << steady_p99_cycles << ",\n";
  if (policy_untrusted) {
    out << "  \"untrusted_sync_slowdown\": " << untrusted_sync_slowdown
        << ",\n";
  }
  out << "  \"cases\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    out << Json(results[i]) << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "steady-state p99 sim cycles/op: " << steady_p99_cycles << "\n";
  if (policy_untrusted) {
    std::cout << "untrusted sync slowdown (read_1blk mean ratio): "
              << untrusted_sync_slowdown << "x\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
