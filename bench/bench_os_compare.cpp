// §7: applicability to other OSs — the same sub-page exposure through each
// OS's network-buffer layout, demonstrated in the simulator:
//
//   Windows  — NdisAllocateNetBufferMdlAndData puts the NET_BUFFER struct
//              (with its MDL chain pointers) in the same allocation as the
//              packet data: single-step exposure (Thunderclap's finding).
//   FreeBSD  — mbuf's ext_free callback pointer sits in the mapped cluster:
//              single-step code injection.
//   macOS    — same mbuf shape but ext_free is blinded (XOR cookie): safe
//              against single-step, broken once KASLR + the two-value cookie
//              are recovered (compound).
//   Linux    — skb_shared_info: the subject of the rest of the paper.

#include <cstdio>
#include <vector>

#include "attack/kaslr_break.h"
#include "attack/mini_cpu.h"
#include "attack/poison.h"
#include "core/machine.h"
#include "device/device_port.h"
#include "mem/kernel_symbols.h"

using namespace spv;

namespace {

struct Outcome {
  bool exposed = false;      // callback pointer device-writable
  bool single_step = false;  // naive overwrite escalates
  bool compound = false;     // escalates with KASLR + cookie knowledge
};

// Common scaffold: a 2 KiB network buffer mapped WRITE whose tail holds a
// callback pointer at `cb_offset`, invoked on "buffer free" the way each OS
// would. `blind_cookie` models macOS ext_free blinding (0 = none).
Outcome RunOsModel(uint64_t cb_offset, uint64_t blind_cookie) {
  Outcome outcome;
  core::MachineConfig config;
  config.seed = 777;
  core::Machine machine{config};
  const DeviceId nic{1};
  machine.iommu().AttachDevice(nic);
  device::DevicePort port{machine.iommu(), nic};
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};

  Kva buffer = *machine.slab().Kmalloc(2048, "os_netbuf");
  Iova iova = *machine.dma().MapSingle(nic, buffer, 2048,
                                       dma::DmaDirection::kBidirectional, "os_map");

  // The device writes its poison + overwrites the in-buffer callback.
  attack::KaslrKnowledge knowledge;
  knowledge.text_base = machine.layout().text_base();  // compound-stage knowledge
  const uint64_t poison_off = 256;
  auto image = *attack::BuildPoisonImage(knowledge, (buffer + poison_off).value);
  (void)port.Write(iova + poison_off, image);

  const uint64_t pivot = machine.layout().text_base() + mem::kSymJopStackPivot;

  auto fire = [&](uint64_t written_value) {
    // OS frees the buffer: reads the callback field, un-blinds, calls it with
    // the buffer (ubuf/mbuf/NET_BUFFER) pointer as the argument.
    std::vector<uint8_t> bytes(8);
    std::memcpy(bytes.data(), &written_value, 8);
    (void)port.Write(iova + cb_offset, bytes);
    uint64_t stored = machine.kmem().ReadU64(buffer + cb_offset).value_or(0);
    const uint64_t decoded = stored ^ blind_cookie;
    cpu.ResetForNextRun();
    (void)cpu.InvokeCallback(Kva{decoded}, buffer + poison_off);
    return cpu.privilege_escalated();
  };

  // Exposure: can the device write the callback field at all?
  std::vector<uint8_t> probe(8, 0xaa);
  outcome.exposed = port.Write(iova + cb_offset, probe).ok();

  // Single-step: the attacker writes the pivot address directly (no cookie
  // knowledge).
  outcome.single_step = fire(pivot);

  // Compound: the attacker recovered the cookie (§7: ext_free takes one of
  // two values, so KASLR + one leaked blinded pointer reveal it).
  outcome.compound = fire(pivot ^ blind_cookie);
  return outcome;
}

void Print(const char* os, const char* layout, const Outcome& outcome) {
  std::printf("%-9s %-34s %-9s %-13s %s\n", os, layout,
              outcome.exposed ? "yes" : "no", outcome.single_step ? "ESCALATED" : "blocked",
              outcome.compound ? "ESCALATED" : "blocked");
}

}  // namespace

int main() {
  std::printf("== §7: the same exposure across OS network stacks ==\n\n");
  std::printf("%-9s %-34s %-9s %-13s %s\n", "OS", "in-buffer metadata", "exposed",
              "single-step", "compound");

  Xoshiro256 cookie_rng{0x05eccee};
  const uint64_t cookie = cookie_rng.Next();

  Print("Windows", "NET_BUFFER (Ndis..MdlAndData)", RunOsModel(1792, 0));
  Print("FreeBSD", "mbuf ext_free", RunOsModel(1920, 0));
  Print("macOS", "mbuf ext_free ^ secret cookie", RunOsModel(1920, cookie));
  Print("Linux", "skb_shared_info destructor_arg", RunOsModel(1760, 0));

  std::printf("\nshape check vs paper: every OS ships callback-bearing metadata inside\n"
              "mapped buffers; only macOS's blinding resists the single-step attack,\n"
              "and it falls to the compound cookie-recovery step (§7).\n");
  return 0;
}
