// Table 2: SPADE results summary.
//
// The paper scans Linux 5.0 (1019 dma-map calls over 447 files). We cannot
// ship the kernel tree, so this harness *generates* a corpus at the same
// scale from driver templates whose category mix mirrors the kernel's
// (~52% of driver files map skb data, ~13% expose driver structs, a handful
// map private data or the stack, the rest map dedicated heap buffers), runs
// the real analyzer over it, and prints the Table-2 rows next to the paper's.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "spade/analyzer.h"
#include "spade/corpus.h"
#include "telemetry/telemetry.h"

using namespace spv;
namespace fs = std::filesystem;

namespace {

std::string Substitute(std::string text, const std::string& tag) {
  std::string out;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '@') {
      out += tag;
    } else {
      out += text[i];
    }
  }
  return out;
}

// Category templates. '@' is replaced with a unique per-file tag.
const char* kNetSkbTemplate = R"(
struct rxq_@ {
    struct device *dev;
    struct net_device *netdev;
    u32 buf_len;
};
static int rx_alloc_@(struct rxq_@ *rq)
{
    struct sk_buff *skb;
    dma_addr_t dma;
    skb = netdev_alloc_skb(rq->netdev, rq->buf_len);
    if (!skb) { return -1; }
    dma = dma_map_single(rq->dev, skb->data, rq->buf_len, DMA_FROM_DEVICE);
    if (!dma) { return -1; }
    return 0;
}
static int xmit_@(struct rxq_@ *tq, struct sk_buff *skb)
{
    dma_addr_t dma;
    dma = dma_map_single(tq->dev, skb->data, skb->len, DMA_TO_DEVICE);
    if (!dma) { return -1; }
    return 0;
}
)";

const char* kBuildSkbTemplate = R"(
struct ring_@ {
    struct device *dev;
    u32 frag_len;
};
static int refill_@(struct ring_@ *r)
{
    void *data;
    dma_addr_t dma;
    data = napi_alloc_frag(r->frag_len);
    if (!data) { return -1; }
    dma = dma_map_single(r->dev, data, r->frag_len, DMA_FROM_DEVICE);
    if (!dma) { return -1; }
    return 0;
}
static struct sk_buff *wrap_@(struct ring_@ *r, void *data)
{
    struct sk_buff *skb;
    skb = build_skb(data, r->frag_len);
    return skb;
}
)";

const char* kTypeADirectTemplate = R"(
struct op_@ {
    u8 rsp_buf[128];
    u32 state;
    void (*done)(struct op_@ *op);
    void (*error)(struct op_@ *op, int code);
};
struct hw_@ {
    struct device *dev;
};
static int map_op_@(struct hw_@ *hw, struct op_@ *op)
{
    dma_addr_t dma;
    dma = dma_map_single(hw->dev, &op->rsp_buf, 128, DMA_FROM_DEVICE);
    if (!dma) { return -1; }
    return 0;
}
static int map_op_again_@(struct hw_@ *hw, struct op_@ *op)
{
    dma_addr_t dma;
    dma = dma_map_single(hw->dev, &op->rsp_buf, 64, DMA_BIDIRECTIONAL);
    if (!dma) { return -1; }
    return 0;
}
)";

const char* kTypeASpoofTemplate = R"(
struct ops_@ {
    void (*start)(void *p);
    void (*stop)(void *p);
    void (*reset)(void *p);
};
struct req_@ {
    u8 iu[192];
    u32 tag;
    struct ops_@ *ops;
};
struct ctl_@ {
    struct device *dev;
};
static int map_req_@(struct ctl_@ *ctl, struct req_@ *req)
{
    dma_addr_t dma;
    dma = dma_map_single(ctl->dev, &req->iu, 192, DMA_TO_DEVICE);
    if (!dma) { return -1; }
    return 0;
}
static int remap_req_@(struct ctl_@ *ctl, struct req_@ *req)
{
    dma_addr_t dma;
    dma = dma_map_single(ctl->dev, &req->iu, 96, DMA_FROM_DEVICE);
    if (!dma) { return -1; }
    return 0;
}
)";

const char* kPrivateTemplate = R"(
struct acc_@ {
    struct device *dev;
};
static int enc_@(struct acc_@ *acc, struct aead_request *req)
{
    void *ctx;
    dma_addr_t dma;
    ctx = aead_request_ctx(req);
    dma = dma_map_single(acc->dev, ctx, 256, DMA_BIDIRECTIONAL);
    if (!dma) { return -1; }
    return 0;
}
static int enc2_@(struct acc_@ *acc, struct aead_request *req)
{
    void *ctx;
    dma_addr_t dma;
    ctx = aead_request_ctx(req);
    dma = dma_map_single(acc->dev, ctx, 128, DMA_TO_DEVICE);
    if (!dma) { return -1; }
    return 0;
}
static int enc3_@(struct acc_@ *acc, struct aead_request *req)
{
    void *ctx;
    dma_addr_t dma;
    ctx = aead_request_ctx(req);
    dma = dma_map_single(acc->dev, ctx, 64, DMA_TO_DEVICE);
    if (!dma) { return -1; }
    return 0;
}
)";

const char* kStackTemplate = R"(
struct hcd_@ {
    struct device *dev;
};
struct setup_@ {
    u8 request_type;
    u8 request;
    u16 value;
};
static int submit_@(struct hcd_@ *hcd)
{
    struct setup_@ setup;
    dma_addr_t dma;
    setup.request = 6;
    dma = dma_map_single(hcd->dev, &setup, sizeof(struct setup_@), DMA_TO_DEVICE);
    if (!dma) { return -1; }
    return 0;
}
)";

const char* kCleanTemplate = R"(
struct q_@ {
    struct device *dev;
};
static int setup_@(struct q_@ *q, u32 len)
{
    void *table;
    dma_addr_t dma;
    table = kzalloc(len, GFP_KERNEL);
    if (!table) { return -1; }
    dma = dma_map_single(q->dev, table, len, DMA_BIDIRECTIONAL);
    if (!dma) { return -1; }
    return 0;
}
static int setup2_@(struct q_@ *q, u32 len)
{
    void *buf;
    dma_addr_t dma;
    buf = kmalloc(len, GFP_KERNEL);
    if (!buf) { return -1; }
    dma = dma_map_single(q->dev, buf, len, DMA_FROM_DEVICE);
    if (!dma) { return -1; }
    return 0;
}
)";

struct Category {
  const char* name;
  const char* body;
  int files;
};

void Generate(const fs::path& dir) {
  // Mix tuned to Linux 5.0 proportions (Table 2).
  const Category categories[] = {
      {"net", kNetSkbTemplate, 225},       // skb->data mappers (row 2 files)
      {"bskb", kBuildSkbTemplate, 40},     // build_skb users (row 7)
      {"opsa", kTypeADirectTemplate, 28},  // direct callbacks (row 3 files)
      {"spoof", kTypeASpoofTemplate, 29},  // spoofable-only (rest of row 1)
      {"priv", kPrivateTemplate, 7},       // private data (row 4)
      {"stk", kStackTemplate, 3},          // stack mapped (row 5)
      {"clean", kCleanTemplate, 115},      // dedicated heap buffers
  };
  fs::create_directories(dir);
  for (const Category& category : categories) {
    for (int i = 0; i < category.files; ++i) {
      const std::string tag = std::string(category.name) + std::to_string(i);
      std::ofstream out{dir / (tag + ".c")};
      out << Substitute(category.body, tag);
    }
  }
}

// Rows are read back from the telemetry export, not the Summary struct: the
// analyzer publishes Table-2 counters onto the bus and this harness consumes
// them the way any external tool consuming ExportJson/ExportCountersCsv would.
void PrintRow(const telemetry::Hub& hub, const char* name, const std::string& counter,
              const char* paper) {
  const uint64_t calls = hub.counter_value("spade." + counter + ".calls");
  const uint64_t files = hub.counter_value("spade." + counter + ".files");
  const uint64_t total_calls = hub.counter_value("spade.total_calls");
  const uint64_t total_files = hub.counter_value("spade.total_files");
  std::printf("  %-30s %5llu calls (%4.1f%%) / %3llu files (%4.1f%%)   paper: %s\n", name,
              static_cast<unsigned long long>(calls),
              total_calls ? 100.0 * static_cast<double>(calls) /
                                static_cast<double>(total_calls)
                          : 0.0,
              static_cast<unsigned long long>(files),
              total_files ? 100.0 * static_cast<double>(files) /
                                static_cast<double>(total_files)
                          : 0.0,
              paper);
}

}  // namespace

int main() {
  std::printf("== Table 2: SPADE results summary ==\n\n");

  const fs::path dir = fs::temp_directory_path() / "spv_table2_corpus";
  std::error_code ec;
  fs::remove_all(dir, ec);
  Generate(dir);

  telemetry::Hub::Config hub_config;
  hub_config.enabled = true;
  telemetry::Hub hub{hub_config};

  spade::SpadeAnalyzer analyzer;
  analyzer.set_telemetry(&hub);
  // Anchor corpus (hand-written driver models) + generated scale corpus.
  auto anchor = spade::LoadCorpusDirectory(analyzer, spade::DefaultCorpusDir());
  auto scale = spade::LoadCorpusDirectory(analyzer, dir.string());
  if (!anchor.ok() || !scale.ok()) {
    std::printf("corpus load failed\n");
    return 1;
  }
  std::printf("corpus: %zu anchor files + %zu generated files (%zu parse failures)\n\n",
              anchor->files_parsed, scale->files_parsed,
              anchor->files_failed + scale->files_failed);

  auto findings = analyzer.Analyze();
  if (!findings.ok()) {
    std::printf("analysis error: %s\n", findings.status().ToString().c_str());
    return 1;
  }
  (void)analyzer.Summarize(*findings);  // publishes the Table-2 counters

  std::printf("Stat                                 measured                              "
              "(Linux 5.0)\n");
  PrintRow(hub, "1. Callbacks exposed", "callbacks_exposed", "156 (15.3%) / 57 (12.8%)");
  PrintRow(hub, "2. skb_shared_info mapped", "shared_info_mapped",
           "464 (45.5%) / 232 (51.9%)");
  PrintRow(hub, "3. Callbacks exposed directly", "callbacks_exposed_directly", "54 / 28");
  PrintRow(hub, "4. Private data mapped", "private_data_mapped", "19 / 7");
  PrintRow(hub, "5. Stack mapped", "stack_mapped", "3 / 3");
  PrintRow(hub, "6. Type C vulnerability", "type_c", "344 / 227");
  PrintRow(hub, "7. build_skb used", "build_skb_used", "46 / 40");
  const uint64_t total_calls = hub.counter_value("spade.total_calls");
  const uint64_t vulnerable = hub.counter_value("spade.vulnerable_calls");
  std::printf("  %-30s %5llu calls / %3llu files                paper: 1019 / 447\n",
              "Total dma-map calls", static_cast<unsigned long long>(total_calls),
              static_cast<unsigned long long>(hub.counter_value("spade.total_files")));
  std::printf("  %-30s %5llu (%4.1f%%)                          paper: 742 (72.8%%)\n",
              "Potentially vulnerable", static_cast<unsigned long long>(vulnerable),
              total_calls ? 100.0 * static_cast<double>(vulnerable) /
                                static_cast<double>(total_calls)
                          : 0.0);
  std::printf("\n%llu vulnerable sites published to the trace ring (%llu recorded, "
              "%llu dropped)\n",
              static_cast<unsigned long long>(hub.counter_value("spade.vulnerable_sites")),
              static_cast<unsigned long long>(hub.ring().recorded()),
              static_cast<unsigned long long>(hub.ring().dropped()));
  fs::remove_all(dir, ec);
  return 0;
}
