// Map/unmap fast-path throughput: the PR-2 rebuild measured end to end.
//
// One binary runs every cell of {workload} x {strict,deferred} x {1,2,4 CPUs}
// x {fast path on,off} and emits BENCH_map_unmap.json. "Fast path off" means
// FastPathConfig with rcache, hash index and walk cache all disabled — the
// pre-rebuild behaviour (linear free-range scan, std::map mapping tracker,
// full radix walks) — so the speedup column is apples-to-apples within one
// build.
//
// Workloads:
//   steady_single  map+unmap one page, tiny live set. The rcache steady
//                  state: after warm-up every alloc is a magazine pop.
//   churn_frag     map+unmap a two-page buffer against a fragmented IOVA
//                  space: thousands of live single-page mappings interleaved
//                  with single-page holes (setup is untimed). The holes can
//                  never coalesce, so the legacy path's first-fit scan walks
//                  past every too-small hole on every alloc — O(live set) per
//                  op, the pathology that motivated Linux's rcache. Magazines
//                  serve the two-page class without touching the range tree.
//   sg4            dma_map_sg/dma_unmap_sg with 4 entries per call.
//
// Wall-clock timing, telemetry disabled (the hub allocates per event);
// rcache hit rates come from IovaAllocator::Stats instead. A separate
// *untimed* pass after each timed loop records per-op simulated-cycle costs
// into a telemetry Histogram — those quantiles are deterministic (pure
// SimClock arithmetic), so CI gates on them instead of wall-clock noise.
//
// Usage: bench_map_unmap [--quick] [--policy-trusted] [--out FILE]
//        [--trace-out FILE]
//
// --policy-trusted arms the spv::policy trust engine and promotes the bench
// device to kTrusted before the timed loops, so every map consults the
// DmaRouter and takes the zero-copy path anyway. The emitted cases carry the
// same (workload, mode, cpus, fast_path) keys as a plain run, so CI gates
// the run against the *same* committed baseline: if routing ever costs
// trusted devices sim cycles, the per-case means drift and the gate fails.
//
// --trace-out FILE additionally runs a short tracing-enabled steady_single
// workload and writes its Chrome trace-event JSON (Perfetto-loadable) to
// FILE — the CI bench-smoke artifact.
//
// The forensics probe runs the same deterministic op loop twice — flight
// recorder disabled (the default every matrix cell uses) and enabled — and
// emits "forensics_sim_cycle_drift", the absolute difference between the two
// runs' per-op sim-cycle mean+p99. The recorder is a pure observer (it never
// advances SimClock), so the committed baseline pins this drift at exactly 0:
// the gate's zero-baseline rule means ANY drift fails CI, not just >25%.
// The enabled-mode wall-clock overhead is reported alongside (not gated —
// wall-clock varies by host).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.h"
#include "policy/policy.h"
#include "telemetry/telemetry.h"
#include "trace/tracer.h"

using namespace spv;

namespace {

struct CaseConfig {
  std::string workload;
  iommu::InvalidationMode mode = iommu::InvalidationMode::kDeferred;
  uint32_t cpus = 1;
  bool fast = true;
  bool policy_trusted = false;  // engine on, bench device promoted to kTrusted
  uint64_t ops = 0;
};

struct CaseResult {
  CaseConfig config;
  double maps_per_sec = 0;
  double rcache_hit_rate = 0;
  uint64_t depot_refills = 0;
  uint64_t walk_cache_hits = 0;
  uint64_t capacity_drains = 0;
  uint64_t deadline_drains = 0;
  // Per-op simulated cycles (map+unmap pair, or one sg4 call), measured by an
  // untimed deterministic pass — see MeasureOpCycles.
  telemetry::Histogram::Summary op_cycles;
};

core::Machine MakeMachine(const CaseConfig& config) {
  core::MachineConfig mc;
  mc.seed = 2;
  mc.phys_pages = 32768;
  mc.iommu.mode = config.mode;
  mc.iommu.fast_path.num_cpus = config.cpus;
  if (!config.fast) {
    mc.iommu.fast_path.rcache_enabled = false;
    mc.iommu.fast_path.hash_index_enabled = false;
    mc.iommu.fast_path.walk_cache_enabled = false;
  }
  mc.policy.enabled = config.policy_trusted;
  return core::Machine{mc};
}

// Per-case workload state built before the timer starts.
struct WorkloadState {
  Kva buf;                        // the buffer the timed loop maps
  uint64_t buf_len = 2048;
  std::vector<Iova> pinned;       // live mappings that outlast the timed loop
  std::vector<dma::SgEntry> sg;   // sg4 only
};

// Untimed: build the IOVA-space shape the timed loop runs against.
WorkloadState Prepare(core::Machine& machine, DeviceId dev, const CaseConfig& config) {
  WorkloadState state;
  state.buf = *machine.slab().Kmalloc(2048, "bench_buf");

  if (config.workload == "churn_frag") {
    // Interleave live single-page mappings with single-page holes. The live
    // mappings pin the holes apart so coalescing can never merge them; the
    // timed loop then churns a two-page buffer that fits in none of them.
    constexpr size_t kFragPairs = 2048;
    std::vector<Iova> all;
    all.reserve(kFragPairs * 2);
    for (size_t i = 0; i < kFragPairs * 2; ++i) {
      machine.set_current_cpu(CpuId{static_cast<uint32_t>(i % config.cpus)});
      auto iova = machine.dma().MapSingle(dev, state.buf, 2048,
                                          dma::DmaDirection::kFromDevice, "bench_pin");
      if (!iova.ok()) std::abort();
      all.push_back(*iova);
    }
    for (size_t i = 0; i < all.size(); ++i) {
      if (i % 2 == 0) {
        state.pinned.push_back(all[i]);
        continue;
      }
      machine.set_current_cpu(CpuId{static_cast<uint32_t>(i % config.cpus)});
      if (!machine.dma()
               .UnmapSingle(dev, all[i], 2048, dma::DmaDirection::kFromDevice)
               .ok()) {
        std::abort();
      }
    }
    machine.iommu().FlushNow();  // drain parked holes into tree / magazines
    state.buf = *machine.slab().Kmalloc(8192, "bench_churn");  // spans 2 pages
    state.buf_len = 8192;
  } else if (config.workload == "sg4") {
    for (int i = 0; i < 4; ++i) {
      state.sg.push_back({*machine.slab().Kmalloc(1024, "bench_sg"), 1024});
    }
  }
  return state;
}

// Timed: returns the number of MapSingle-equivalent operations performed.
uint64_t RunWorkload(core::Machine& machine, DeviceId dev, const CaseConfig& config,
                     WorkloadState& state) {
  uint64_t maps = 0;
  if (config.workload == "sg4") {
    for (uint64_t op = 0; op < config.ops; ++op) {
      machine.set_current_cpu(CpuId{static_cast<uint32_t>(op % config.cpus)});
      auto iovas =
          machine.dma().MapSg(dev, state.sg, dma::DmaDirection::kToDevice, "bench_sg");
      if (!iovas.ok()) std::abort();
      if (!machine.dma()
               .UnmapSg(dev, *iovas, state.sg, dma::DmaDirection::kToDevice)
               .ok()) {
        std::abort();
      }
      maps += state.sg.size();
    }
    return maps;
  }
  // steady_single and churn_frag share the map+unmap loop; they differ only
  // in the buffer size and the IOVA-space shape Prepare left behind.
  for (uint64_t op = 0; op < config.ops; ++op) {
    machine.set_current_cpu(CpuId{static_cast<uint32_t>(op % config.cpus)});
    auto iova = machine.dma().MapSingle(dev, state.buf, state.buf_len,
                                        dma::DmaDirection::kFromDevice, "bench_loop");
    if (!iova.ok()) std::abort();
    if (!machine.dma()
             .UnmapSingle(dev, *iova, state.buf_len, dma::DmaDirection::kFromDevice)
             .ok()) {
      std::abort();
    }
    ++maps;
    // Let the deferred deadline timer fire occasionally, like a real host.
    if ((op & 0xfff) == 0) {
      machine.clock().AdvanceUs(100);
      machine.iommu().ProcessDeferredTimer();
    }
  }
  return maps;
}

// Untimed: repeats the workload's op shape recording the SimClock delta per
// op into `hist`. Purely deterministic (IOMMU costs advance the sim clock by
// fixed amounts), so the resulting quantiles are stable across hosts — the
// numbers the CI baseline gate compares.
void MeasureOpCycles(core::Machine& machine, DeviceId dev, const CaseConfig& config,
                     WorkloadState& state, telemetry::Histogram& hist, uint64_t ops) {
  for (uint64_t op = 0; op < ops; ++op) {
    machine.set_current_cpu(CpuId{static_cast<uint32_t>(op % config.cpus)});
    const uint64_t before = machine.clock().now();
    if (config.workload == "sg4") {
      auto iovas =
          machine.dma().MapSg(dev, state.sg, dma::DmaDirection::kToDevice, "bench_sg");
      if (!iovas.ok()) std::abort();
      if (!machine.dma()
               .UnmapSg(dev, *iovas, state.sg, dma::DmaDirection::kToDevice)
               .ok()) {
        std::abort();
      }
    } else {
      auto iova = machine.dma().MapSingle(dev, state.buf, state.buf_len,
                                          dma::DmaDirection::kFromDevice, "bench_loop");
      if (!iova.ok()) std::abort();
      if (!machine.dma()
               .UnmapSingle(dev, *iova, state.buf_len, dma::DmaDirection::kFromDevice)
               .ok()) {
        std::abort();
      }
    }
    hist.Record(machine.clock().now() - before);
  }
}

CaseResult RunCase(const CaseConfig& config) {
  core::Machine machine = MakeMachine(config);
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  if (config.policy_trusted) {
    if (!machine.policy()
             ->RegisterDevice(dev, policy::DeviceIdentity{"bench-dev", "bench"})
             .ok()) {
      std::abort();
    }
    while (machine.policy()->state(dev) != policy::TrustState::kTrusted) {
      if (!machine.policy()->Promote(dev, "bench").ok()) std::abort();
    }
  }
  WorkloadState state = Prepare(machine, dev, config);

  const auto start = std::chrono::steady_clock::now();
  const uint64_t maps = RunWorkload(machine, dev, config, state);
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();

  telemetry::Histogram op_cycles;
  MeasureOpCycles(machine, dev, config, state, op_cycles, 2048);

  for (Iova iova : state.pinned) {
    (void)machine.dma().UnmapSingle(dev, iova, 2048, dma::DmaDirection::kFromDevice);
  }

  CaseResult result;
  result.config = config;
  result.maps_per_sec = seconds > 0 ? static_cast<double>(maps) / seconds : 0;
  const iommu::IovaAllocator* alloc = machine.iommu().iova_allocator(dev);
  if (alloc != nullptr) {
    const auto& stats = alloc->stats();
    const uint64_t lookups = stats.rcache_hits + stats.rcache_misses;
    result.rcache_hit_rate =
        lookups > 0 ? static_cast<double>(stats.rcache_hits) / static_cast<double>(lookups)
                    : 0;
    result.depot_refills = stats.depot_refills;
  }
  const iommu::IoPageTable* table = machine.iommu().page_table(dev);
  if (table != nullptr) {
    result.walk_cache_hits = table->walk_cache_stats().hits;
  }
  result.capacity_drains = machine.iommu().stats().flush_capacity_drains;
  result.deadline_drains = machine.iommu().stats().flush_deadline_drains;
  result.op_cycles = op_cycles.Summarize();
  return result;
}

std::string Json(const CaseResult& r) {
  std::ostringstream out;
  out << "    {\"workload\": \"" << r.config.workload << "\", \"mode\": \""
      << iommu::InvalidationModeName(r.config.mode) << "\", \"cpus\": " << r.config.cpus
      << ", \"fast_path\": " << (r.config.fast ? "true" : "false")
      << ", \"ops\": " << r.config.ops << ", \"maps_per_sec\": " << r.maps_per_sec
      << ", \"rcache_hit_rate\": " << r.rcache_hit_rate
      << ", \"depot_refills\": " << r.depot_refills
      << ", \"walk_cache_hits\": " << r.walk_cache_hits
      << ", \"drain_capacity\": " << r.capacity_drains
      << ", \"drain_deadline\": " << r.deadline_drains
      << ", \"sim_cycles_per_op\": {\"p50\": " << r.op_cycles.p50
      << ", \"p90\": " << r.op_cycles.p90 << ", \"p99\": " << r.op_cycles.p99
      << ", \"mean\": " << r.op_cycles.mean << "}}";
  return out.str();
}

// The forensics pure-observer probe: one steady_single-shaped run with the
// flight recorder off, one with it on, same seed and op count. Sim-cycle
// quantiles must match exactly (recording never touches SimClock); the
// wall-clock ratio is the informational cost of the enabled recorder.
struct ForensicsProbe {
  telemetry::Histogram::Summary disabled_cycles;
  telemetry::Histogram::Summary enabled_cycles;
  double sim_cycle_drift = 0;      // |Δmean| + |Δp99|; baseline pins it at 0
  double wall_overhead_pct = 0;    // enabled vs disabled wall-clock, percent
};

ForensicsProbe RunForensicsProbe(uint64_t ops) {
  auto run = [&](bool enabled, telemetry::Histogram& hist) -> double {
    core::MachineConfig mc;
    mc.seed = 2;
    mc.phys_pages = 32768;
    mc.forensics.enabled = enabled;
    core::Machine machine{mc};
    const DeviceId dev{1};
    machine.iommu().AttachDevice(dev);
    Kva buf = *machine.slab().Kmalloc(2048, "bench_forensics_buf");
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t op = 0; op < ops; ++op) {
      const uint64_t before = machine.clock().now();
      auto iova = machine.dma().MapSingle(dev, buf, 2048,
                                          dma::DmaDirection::kFromDevice,
                                          "bench_forensics");
      if (!iova.ok()) std::abort();
      if (!machine.dma()
               .UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice)
               .ok()) {
        std::abort();
      }
      hist.Record(machine.clock().now() - before);
      if ((op & 0xfff) == 0) {
        machine.clock().AdvanceUs(100);
        machine.iommu().ProcessDeferredTimer();
      }
    }
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
  };

  ForensicsProbe probe;
  telemetry::Histogram disabled_hist;
  telemetry::Histogram enabled_hist;
  const double disabled_secs = run(false, disabled_hist);
  const double enabled_secs = run(true, enabled_hist);
  probe.disabled_cycles = disabled_hist.Summarize();
  probe.enabled_cycles = enabled_hist.Summarize();
  probe.sim_cycle_drift =
      std::abs(probe.enabled_cycles.mean - probe.disabled_cycles.mean) +
      std::abs(static_cast<double>(probe.enabled_cycles.p99) -
               static_cast<double>(probe.disabled_cycles.p99));
  probe.wall_overhead_pct =
      disabled_secs > 0 ? (enabled_secs / disabled_secs - 1.0) * 100.0 : 0;
  return probe;
}

// --trace-out: a short tracing-enabled steady_single run; the tracer's
// Chrome trace-event JSON is the CI bench-smoke artifact.
int WriteChromeTrace(const std::string& path) {
  core::MachineConfig mc;
  mc.seed = 2;
  mc.phys_pages = 32768;
  mc.telemetry.enabled = true;
  mc.trace.enabled = true;
  core::Machine machine{mc};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);
  Kva buf = *machine.slab().Kmalloc(2048, "bench_trace_buf");
  for (uint64_t op = 0; op < 512; ++op) {
    auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                        "bench_trace");
    if (!iova.ok()) std::abort();
    if (!machine.dma()
             .UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice)
             .ok()) {
      std::abort();
    }
    if ((op & 0x3f) == 0) {
      machine.clock().AdvanceUs(100);
      machine.iommu().ProcessDeferredTimer();
    }
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out << machine.tracer()->ChromeTraceJson();
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool policy_trusted = false;
  std::string out_path = "BENCH_map_unmap.json";
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--policy-trusted") == 0) {
      policy_trusted = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::cerr << "usage: bench_map_unmap [--quick] [--policy-trusted] [--out FILE]"
                   " [--trace-out FILE]\n";
      return 2;
    }
  }
  if (policy_trusted) {
    std::cout << "policy engine armed; bench device promoted to kTrusted\n";
  }
  // The slow-path churn workload is quadratic-ish; keep its op count lower so
  // the full matrix finishes in seconds either way.
  const uint64_t steady_ops = quick ? 20000 : 400000;
  const uint64_t churn_ops = quick ? 2000 : 20000;
  const uint64_t sg_ops = quick ? 5000 : 100000;

  std::vector<CaseResult> results;
  for (const std::string workload : {"steady_single", "churn_frag", "sg4"}) {
    const uint64_t ops = workload == "steady_single" ? steady_ops
                         : workload == "churn_frag" ? churn_ops
                                                    : sg_ops;
    for (const auto mode :
         {iommu::InvalidationMode::kStrict, iommu::InvalidationMode::kDeferred}) {
      for (const uint32_t cpus : {1u, 2u, 4u}) {
        for (const bool fast : {true, false}) {
          CaseConfig config;
          config.workload = workload;
          config.mode = mode;
          config.cpus = cpus;
          config.fast = fast;
          config.policy_trusted = policy_trusted;
          config.ops = ops;
          results.push_back(RunCase(config));
          const CaseResult& r = results.back();
          std::cout << workload << " " << iommu::InvalidationModeName(mode) << " cpus="
                    << cpus << (fast ? " fast" : " slow") << ": "
                    << static_cast<uint64_t>(r.maps_per_sec) << " maps/s"
                    << " (rcache " << static_cast<int>(r.rcache_hit_rate * 100) << "%)\n";
        }
      }
    }
  }

  // Per-cell speedups: fast vs slow with everything else equal.
  std::ostringstream speedups;
  double headline = 0;
  std::string headline_cell;
  bool first = true;
  for (size_t i = 0; i + 1 < results.size(); i += 2) {
    const CaseResult& fast = results[i];
    const CaseResult& slow = results[i + 1];
    const double speedup =
        slow.maps_per_sec > 0 ? fast.maps_per_sec / slow.maps_per_sec : 0;
    std::ostringstream cell;
    cell << fast.config.workload << "/"
         << iommu::InvalidationModeName(fast.config.mode) << "/cpus"
         << fast.config.cpus;
    if (!first) speedups << ",\n";
    first = false;
    speedups << "    {\"cell\": \"" << cell.str() << "\", \"speedup\": " << speedup << "}";
    if (speedup > headline) {
      headline = speedup;
      headline_cell = cell.str();
    }
    std::cout << "  speedup " << cell.str() << ": " << speedup << "x\n";
  }

  // Acceptance: steady-state single-page hit rate on the default config,
  // plus the deterministic per-op p99 the CI baseline gate watches.
  double steady_hit_rate = 0;
  uint64_t steady_p99_cycles = 0;
  for (const CaseResult& r : results) {
    if (r.config.workload == "steady_single" && r.config.fast &&
        r.config.mode == iommu::InvalidationMode::kDeferred && r.config.cpus == 1) {
      steady_hit_rate = r.rcache_hit_rate;
      steady_p99_cycles = r.op_cycles.p99;
    }
  }

  // The pure-observer gate: flight recorder on vs off, same deterministic
  // loop. The baseline commits forensics_sim_cycle_drift = 0, so any sim
  // quantile the recorder moves fails CI exactly.
  const ForensicsProbe forensics = RunForensicsProbe(quick ? 20000 : 100000);
  std::cout << "forensics recorder: sim-cycle drift " << forensics.sim_cycle_drift
            << " (p99 " << forensics.disabled_cycles.p99 << " -> "
            << forensics.enabled_cycles.p99 << "), wall overhead "
            << forensics.wall_overhead_pct << "%\n";

  std::ofstream out(out_path);
  out << "{\n  \"benchmark\": \"map_unmap_fast_path\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"policy_trusted\": " << (policy_trusted ? "true" : "false") << ",\n"
      << "  \"headline_speedup\": " << headline << ",\n"
      << "  \"headline_cell\": \"" << headline_cell << "\",\n"
      << "  \"steady_state_rcache_hit_rate\": " << steady_hit_rate << ",\n"
      << "  \"steady_p99_sim_cycles\": " << steady_p99_cycles << ",\n"
      << "  \"forensics_sim_cycle_drift\": " << forensics.sim_cycle_drift << ",\n"
      << "  \"forensics\": {\"disabled_p99_sim_cycles\": "
      << forensics.disabled_cycles.p99
      << ", \"disabled_mean_sim_cycles\": " << forensics.disabled_cycles.mean
      << ", \"enabled_p99_sim_cycles\": " << forensics.enabled_cycles.p99
      << ", \"enabled_mean_sim_cycles\": " << forensics.enabled_cycles.mean
      << ", \"enabled_wall_overhead_pct\": " << forensics.wall_overhead_pct
      << "},\n"
      << "  \"speedups\": [\n"
      << speedups.str() << "\n  ],\n  \"cases\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    out << Json(results[i]) << (i + 1 < results.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::cout << "headline speedup: " << headline << "x (" << headline_cell << ")\n"
            << "steady-state rcache hit rate: " << steady_hit_rate * 100 << "%\n"
            << "steady-state p99 sim cycles/op: " << steady_p99_cycles << "\n"
            << "wrote " << out_path << "\n";
  if (!trace_out.empty()) {
    return WriteChromeTrace(trace_out);
  }
  return 0;
}
