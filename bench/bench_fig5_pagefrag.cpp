// Figure 5: page_frag allocation behaviour — descending offsets from a 32 KiB
// region, and the resulting page co-location (the type (c) substrate).

#include <cstdio>
#include <map>

#include "core/machine.h"

using namespace spv;

int main() {
  std::printf("== Figure 5: allocation of B bytes from page_frag ==\n\n");
  core::MachineConfig config;
  config.seed = 5;
  core::Machine machine{config};
  auto& pool = machine.frag_pool(CpuId{0});

  const uint64_t kBufBytes = 2048;  // MTU-class RX buffer truesize
  std::printf("allocating 20 x %llu-byte RX buffers (region = 32 KiB):\n",
              static_cast<unsigned long long>(kBufBytes));
  std::printf("%-4s %-18s %-12s %-10s\n", "#", "KVA", "region-off", "page-off");

  std::map<uint64_t, int> per_page;
  Kva first{};
  for (int i = 0; i < 20; ++i) {
    Kva kva = *pool.Alloc(kBufBytes, 64, "netdev_alloc_frag");
    if (i == 0) {
      first = kva;
    }
    const uint64_t region_off =
        first.value >= kva.value ? first.value - kva.value : 0;  // descending
    ++per_page[kva.PageBase().value];
    std::printf("%-4d 0x%016llx -%-11llu %-10llu\n", i,
                static_cast<unsigned long long>(kva.value),
                static_cast<unsigned long long>(region_off),
                static_cast<unsigned long long>(kva.page_offset()));
  }

  int shared_pages = 0;
  for (const auto& [page, count] : per_page) {
    shared_pages += count > 1 ? 1 : 0;
  }
  std::printf("\npages hosting >1 buffer: %d of %zu — every such page is reachable "
              "through multiple IOVAs once both buffers are DMA-mapped (type (c)).\n",
              shared_pages, per_page.size());
  std::printf("regions allocated: %llu (offset descends, refills when exhausted)\n",
              static_cast<unsigned long long>(pool.regions_allocated()));
  return 0;
}
