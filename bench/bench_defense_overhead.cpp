// Defense cost comparison (§5.2.1, §8, [47], [49]): simulated cycles per
// RX map/IO/unmap cycle under deferred, strict, and the bounce-buffer
// backend, across packet sizes. The paper's motivation for deferred mode —
// and the bounce-buffer counterargument that copying a packet costs less
// than a 2000-cycle invalidation — both fall out of the model.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/machine.h"
#include "dma/bounce.h"

using namespace spv;

namespace {

constexpr DeviceId kDev{3};

core::MachineConfig MakeConfig(iommu::InvalidationMode mode) {
  core::MachineConfig config;
  config.seed = 8;
  config.phys_pages = 8192;
  config.iommu.mode = mode;
  return config;
}

void RxCycle(benchmark::State& state, iommu::InvalidationMode mode, bool bounce_backend) {
  const uint64_t pkt = static_cast<uint64_t>(state.range(0));
  core::Machine machine{MakeConfig(mode)};
  machine.iommu().AttachDevice(kDev);
  dma::BounceDma bounce{machine.iommu(), machine.layout(), machine.pm(),
                        machine.page_alloc(), machine.clock()};
  if (bounce_backend) {
    (void)bounce.AttachDevice(kDev, 16);
  }
  dma::DmaApi& dma = bounce_backend ? static_cast<dma::DmaApi&>(bounce) : machine.dma();
  Kva buf = *machine.slab().Kmalloc(pkt, "rx_buf");
  std::vector<uint8_t> packet(pkt, 0xab);

  uint64_t ops = 0;
  const uint64_t cycles_start = machine.clock().now();
  for (auto _ : state) {
    auto iova = dma.MapSingle(kDev, buf, pkt, dma::DmaDirection::kFromDevice, "rx");
    benchmark::DoNotOptimize(iova);
    (void)machine.iommu().DeviceWrite(kDev, *iova, packet);
    (void)dma.UnmapSingle(kDev, *iova, pkt, dma::DmaDirection::kFromDevice);
    ++ops;
  }
  state.counters["sim_cycles_per_op"] =
      ops ? static_cast<double>(machine.clock().now() - cycles_start) /
                static_cast<double>(ops)
          : 0;
}

void BM_Rx_Deferred(benchmark::State& state) {
  RxCycle(state, iommu::InvalidationMode::kDeferred, false);
}
void BM_Rx_Strict(benchmark::State& state) {
  RxCycle(state, iommu::InvalidationMode::kStrict, false);
}
void BM_Rx_Bounce(benchmark::State& state) {
  RxCycle(state, iommu::InvalidationMode::kStrict, true);
}

BENCHMARK(BM_Rx_Deferred)->Arg(64)->Arg(1500)->Arg(4096)->ArgNames({"bytes"});
BENCHMARK(BM_Rx_Strict)->Arg(64)->Arg(1500)->Arg(4096)->ArgNames({"bytes"});
BENCHMARK(BM_Rx_Bounce)->Arg(64)->Arg(1500)->Arg(4096)->ArgNames({"bytes"});

}  // namespace

BENCHMARK_MAIN();
