// §2.4: KASLR subversion from leaked pointers — probability of recovering
// each randomized base as a function of how many TX-readable pages the
// device harvests.

#include <cstdio>

#include "attack/kaslr_break.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "net/layouts.h"

using namespace spv;

namespace {

struct Recovered {
  bool text = false;
  bool direct_map = false;
  bool vmemmap = false;
};

Recovered RunOnce(uint64_t seed, int echoes) {
  core::MachineConfig config;
  config.seed = seed;
  config.iommu.mode = iommu::InvalidationMode::kDeferred;
  core::Machine machine{config};
  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 32;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  (void)machine.stack().CreateSocket(7, true);
  (void)nic.FillRxRing();

  attack::KaslrBreaker breaker;
  for (int e = 0; e < echoes; ++e) {
    net::PacketHeader header{.src_ip = 0x0afe0001,
                             .dst_ip = machine.stack().config().local_ip,
                             .src_port = static_cast<uint16_t>(40000 + e),
                             .dst_port = 7,
                             .proto = net::kProtoUdp};
    // Alternate payload sizes: small -> linear TX (socket-page leak),
    // large -> frag TX (struct-page leak).
    std::vector<uint8_t> payload(e % 2 == 0 ? 300 : 1024, 0x41);
    auto index = device.InjectRx(header, payload);
    if (!index.ok()) {
      break;
    }
    auto skb = nic.CompleteRx(
        *index, static_cast<uint32_t>(net::PacketHeader::kSize + payload.size()));
    if (!skb.ok()) {
      continue;
    }
    (void)machine.stack().NapiGroReceive(std::move(*skb));
    auto harvest = device.HarvestReadableQwords();
    if (harvest.ok()) {
      breaker.Consume(*harvest);
    }
  }
  Recovered recovered;
  recovered.text = breaker.knowledge().text_base.has_value() &&
                   *breaker.knowledge().text_base == machine.layout().text_base();
  recovered.direct_map =
      breaker.knowledge().page_offset_base.has_value() &&
      *breaker.knowledge().page_offset_base == machine.layout().page_offset_base();
  recovered.vmemmap = breaker.knowledge().vmemmap_base.has_value() &&
                      *breaker.knowledge().vmemmap_base == machine.layout().vmemmap_base();
  return recovered;
}

}  // namespace

int main() {
  std::printf("== §2.4: KASLR subversion via leaked pointers ==\n\n");
  constexpr int kBoots = 16;
  std::printf("%-10s %-18s %-22s %-14s\n", "echoes", "text (init_net)", "direct map "
              "(list ptr)", "vmemmap (frags)");
  for (int echoes : {1, 2, 4, 8}) {
    int text = 0;
    int direct_map = 0;
    int vmemmap = 0;
    for (int boot = 0; boot < kBoots; ++boot) {
      Recovered recovered = RunOnce(3000 + static_cast<uint64_t>(boot), echoes);
      text += recovered.text ? 1 : 0;
      direct_map += recovered.direct_map ? 1 : 0;
      vmemmap += recovered.vmemmap ? 1 : 0;
    }
    std::printf("%-10d %3d/%-14d %3d/%-18d %3d/%d\n", echoes, text, kBoots, direct_map,
                kBoots, vmemmap, kBoots);
  }
  std::printf("\nevery recovered base is bit-exact: the 2 MiB / 1 GiB alignment\n"
              "guarantees mean a single correctly-classified pointer defeats KASLR.\n");
  return 0;
}
