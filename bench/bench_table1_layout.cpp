// Table 1: Linux kernel memory layout — fixed ranges, randomized bases.
// Prints the architectural table and then the KASLR-randomized bases over
// several boots, verifying the alignment guarantees §2.4 exploits.

#include <cstdio>

#include "base/rng.h"
#include "mem/kernel_layout.h"

using namespace spv;
using mem::KernelLayout;
using mem::LayoutRanges;

int main() {
  std::printf("== Table 1: Linux kernel memory layout (x86-64) ==\n\n");
  std::printf("%-18s %-10s %-18s %-9s %s\n", "Start Addr", "Offset", "End Addr", "Size",
              "VM area description");
  struct Row {
    uint64_t start;
    const char* offset;
    uint64_t end;
    const char* size;
    const char* what;
  };
  const Row rows[] = {
      {LayoutRanges::kDirectMapStart, "-119.5 TB", LayoutRanges::kDirectMapEnd - 1, "64 TB",
       "direct map of phys memory (page_offset_base)"},
      {LayoutRanges::kVmallocStart, "-55 TB", LayoutRanges::kVmallocEnd - 1, "32 TB",
       "vmalloc/ioremap space (vmalloc_base)"},
      {LayoutRanges::kVmemmapStart, "-22 TB", LayoutRanges::kVmemmapEnd - 1, "1 TB",
       "virtual memory map (vmemmap_base)"},
      {LayoutRanges::kTextStart, "-2 GB", LayoutRanges::kTextEnd - 1, "512 MB",
       "kernel text mapping (physical address 0)"},
      {LayoutRanges::kModulesStart, "-1536 MB", LayoutRanges::kModulesEnd - 1, "1520 MB",
       "module mapping space"},
  };
  for (const Row& row : rows) {
    std::printf("%016llx   %-10s %016llx   %-9s %s\n",
                static_cast<unsigned long long>(row.start), row.offset,
                static_cast<unsigned long long>(row.end), row.size, row.what);
  }

  std::printf("\nKASLR-randomized bases over 8 boots (alignment: text 2 MiB, others 1 GiB):\n");
  std::printf("%-6s %-18s %-18s %-18s\n", "boot", "page_offset_base", "vmemmap_base",
              "text_base");
  for (uint64_t boot = 0; boot < 8; ++boot) {
    Xoshiro256 rng{1000 + boot};
    KernelLayout layout = KernelLayout::Create(16384, /*kaslr=*/true, rng);
    std::printf("%-6llu 0x%016llx 0x%016llx 0x%016llx\n",
                static_cast<unsigned long long>(boot),
                static_cast<unsigned long long>(layout.page_offset_base()),
                static_cast<unsigned long long>(layout.vmemmap_base()),
                static_cast<unsigned long long>(layout.text_base()));
  }
  std::printf("\ninvariant: low 21 bits of text_base and low 30 bits of the region bases\n"
              "never change — one leaked pointer pins each region (§2.4).\n");
  return 0;
}
