// Baseline (§2.1–§2.2): classic DMA attacks with and without an IOMMU.
// Without an IOMMU, a FireWire-class device dumps all of physical memory and
// patches kernel text (Inception / FinFireWire); with the IOMMU enabled the
// same device faults on every byte outside its mappings.

#include <cstdio>
#include <vector>

#include "core/machine.h"
#include "device/device_port.h"
#include "mem/kernel_symbols.h"

using namespace spv;

namespace {

struct DumpResult {
  uint64_t pages_read = 0;
  uint64_t pages_total = 0;
  uint64_t secrets_found = 0;
  bool patched_kernel = false;
  uint64_t faults = 0;
};

DumpResult RunDump(bool iommu_enabled) {
  core::MachineConfig config;
  config.seed = 2021;
  config.phys_pages = 4096;  // 16 MiB victim
  config.iommu.enabled = iommu_enabled;
  core::Machine machine{config};
  const DeviceId firewire{9};
  machine.iommu().AttachDevice(firewire);
  device::DevicePort port{machine.iommu(), firewire};

  // Victim state: a few secrets scattered in kernel memory.
  constexpr uint64_t kSecret = 0xfee1dead5ec2e700ULL;
  for (int i = 0; i < 16; ++i) {
    Kva kva = *machine.slab().Kmalloc(512, "filevault_key");
    (void)machine.kmem().WriteU64(kva, kSecret + static_cast<uint64_t>(i));
  }

  DumpResult result;
  result.pages_total = config.phys_pages;
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t pfn = 0; pfn < config.phys_pages; ++pfn) {
    // The classic tools iterate physical addresses directly.
    if (!port.Read(Iova{pfn << kPageShift}, std::span<uint8_t>(page)).ok()) {
      continue;
    }
    ++result.pages_read;
    for (size_t off = 0; off + 8 <= page.size(); off += 8) {
      uint64_t value;
      std::memcpy(&value, page.data() + off, 8);
      if ((value & ~0xfULL) == kSecret) {
        ++result.secrets_found;
      }
    }
  }
  // "Unlock the machine" by patching kernel text (page 1 of the image).
  std::vector<uint8_t> patch(4, 0x90);
  result.patched_kernel = port.Write(Iova{1ull << kPageShift}, patch).ok();
  result.faults = machine.iommu().faults().size();
  return result;
}

}  // namespace

int main() {
  std::printf("== Baseline: classic DMA attack, IOMMU off vs on (§2.1/§2.2) ==\n\n");
  std::printf("%-14s %-18s %-16s %-16s %s\n", "IOMMU", "pages dumped", "secrets found",
              "kernel patched", "faults");
  for (bool enabled : {false, true}) {
    DumpResult result = RunDump(enabled);
    std::printf("%-14s %5llu / %-10llu %-16llu %-16s %llu%s\n",
                enabled ? "enabled" : "disabled",
                static_cast<unsigned long long>(result.pages_read),
                static_cast<unsigned long long>(result.pages_total),
                static_cast<unsigned long long>(result.secrets_found),
                result.patched_kernel ? "YES" : "no",
                static_cast<unsigned long long>(result.faults),
                result.faults >= 4096 ? " (log capped)" : "");
  }
  std::printf("\nthe IOMMU reduces the attack surface from 'all of physical memory' to\n"
              "'pages explicitly mapped for this device' — which is exactly where the\n"
              "paper's sub-page story begins.\n");
  return 0;
}
