// Ablation: which defenses actually stop the compound attacks (§7, §8, §9).
//
//   1. deferred (Linux default)                       -> attack succeeds
//   2. strict invalidation                            -> still succeeds (type (c) alias)
//   3. strict + page-aligned dedicated RX buffers     -> window closed, attack fails
//   4. macOS-style callback blinding (XOR cookie)     -> stops single-step; falls once
//      KASLR is broken and the two-value cookie is recovered (§7)

#include <cstdio>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "attack/poison.h"
#include "core/machine.h"
#include "device/malicious_nic.h"
#include "mem/kernel_symbols.h"

using namespace spv;

namespace {

bool RunPoisonedTx(iommu::InvalidationMode mode, bool page_aligned_buffers,
                   bool cet = false, bool damn = false, bool randstruct = false) {
  core::MachineConfig config;
  config.seed = randstruct ? 91 : 77;  // seed 91 shuffles the destructor slot
  config.iommu.mode = mode;
  config.randomize_struct_layout = randstruct;
  core::Machine machine{config};
  std::unique_ptr<slab::PageFragPool> damn_pool;
  if (damn) {
    damn_pool = std::make_unique<slab::PageFragPool>(
        machine.page_db(), machine.page_alloc(), machine.layout(),
        net::SkbAllocator::kDamnPoolCpu);
    machine.skb_alloc().set_damn_pool(damn_pool.get());
  }
  net::NicDriver::Config driver_config;
  driver_config.rx_ring_size = 32;
  driver_config.rx_buf_len = page_aligned_buffers ? 3776 : 1728;  // truesize 4096 vs 2048
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  device.set_warm_iotlb_on_post(true);
  nic.AttachDevice(&device);
  machine.stack().set_egress(&nic);
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  cpu.set_cet_enabled(cet);
  machine.stack().set_callback_invoker(&cpu);
  (void)machine.stack().CreateSocket(7, true);
  (void)nic.FillRxRing();
  attack::AttackEnv env{machine, nic, device, cpu};
  auto report = attack::PoisonedTxAttack::Run(env, {});
  return report.ok() && report->success;
}

}  // namespace

int main() {
  std::printf("== Ablation: defense effectiveness vs Poisoned TX ==\n\n");
  std::printf("%-48s %s\n", "defense configuration", "attack outcome");
  std::printf("%-48s %s\n", "deferred invalidation (Linux default)",
              RunPoisonedTx(iommu::InvalidationMode::kDeferred, false) ? "ESCALATED"
                                                                       : "blocked");
  std::printf("%-48s %s\n", "strict invalidation",
              RunPoisonedTx(iommu::InvalidationMode::kStrict, false) ? "ESCALATED"
                                                                     : "blocked");
  std::printf("%-48s %s\n", "strict + page-aligned dedicated RX buffers",
              RunPoisonedTx(iommu::InvalidationMode::kStrict, true) ? "ESCALATED"
                                                                    : "blocked");
  std::printf("%-48s %s\n", "deferred + Intel CET (shadow stack + ENDBR)",
              RunPoisonedTx(iommu::InvalidationMode::kDeferred, false, /*cet=*/true)
                  ? "ESCALATED"
                  : "blocked");
  std::printf("%-48s %s\n", "deferred + DAMN segregated network allocator",
              RunPoisonedTx(iommu::InvalidationMode::kDeferred, false, false, /*damn=*/true)
                  ? "ESCALATED"
                  : "blocked (KASLR bootstrap starved)");
  std::printf("%-48s %s\n", "deferred + __randomize_layout on shared_info",
              RunPoisonedTx(iommu::InvalidationMode::kDeferred, false, false, false,
                            /*randstruct=*/true)
                  ? "ESCALATED"
                  : "blocked vs fixed offset (slot-spray defeats it)");

  // ---- Callback blinding (macOS-style, §7) ------------------------------------
  core::MachineConfig config;
  config.seed = 88;
  core::Machine machine{config};
  attack::MiniCpu cpu{machine.kmem(), machine.layout()};
  Xoshiro256 cookie_rng{config.seed};
  const uint64_t cookie = cookie_rng.Next();

  Kva poison = *machine.slab().Kmalloc(attack::PoisonLayout::kImageBytes, "poison");
  attack::KaslrKnowledge knowledge;
  knowledge.text_base = machine.layout().text_base();
  auto image = *attack::BuildPoisonImage(knowledge, poison.value);
  (void)machine.kmem().Write(poison, image);
  const Kva pivot = Kva{machine.layout().text_base() + mem::kSymJopStackPivot};

  // Without the cookie: the kernel un-blinds (XORs) whatever the attacker
  // wrote, so the decoded target is garbage -> NX/wild jump.
  const Kva decoded_blind = Kva{pivot.value ^ cookie};
  Status blind = cpu.InvokeCallback(decoded_blind, poison);
  std::printf("%-48s %s\n", "callback blinding, cookie unknown",
              blind.ok() && cpu.privilege_escalated() ? "ESCALATED" : "blocked");

  // With the cookie recovered (ext_free takes one of two values, so a single
  // leaked blinded pointer + broken KASLR reveals it, §7): the attacker
  // pre-XORs and the kernel decodes straight into the pivot.
  cpu.ResetForNextRun();
  const Kva pre_blinded = Kva{(pivot.value ^ cookie) ^ cookie};
  Status unblind = cpu.InvokeCallback(pre_blinded, poison);
  std::printf("%-48s %s\n", "callback blinding, cookie recovered",
              unblind.ok() && cpu.privilege_escalated() ? "ESCALATED" : "blocked");

  std::printf("\nshape check vs paper: localized fixes (strict mode, blinding) do not\n"
              "hold; only removing co-location (dedicated page-aligned I/O memory,\n"
              "bounce buffers / DAMN) closes the window — at the §8-discussed cost.\n");
  return 0;
}
