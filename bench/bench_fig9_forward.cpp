// Figure 9 / §5.5: Forward Thinking — GRO-forwarded packets leak the KVA;
// plus the surveillance primitive's arbitrary-page read throughput.

#include <cstdio>
#include <cstring>

#include "attack/attacks.h"
#include "attack/mini_cpu.h"
#include "core/machine.h"
#include "device/malicious_nic.h"

using namespace spv;

namespace {

struct Rig {
  explicit Rig(uint64_t seed) : machine(MakeConfig(seed)), nic(AddNic(machine)) {
    device = std::make_unique<device::MaliciousNic>(
        device::DevicePort{machine.iommu(), nic.device_id()});
    device->set_warm_iotlb_on_post(true);
    nic.AttachDevice(device.get());
    machine.stack().set_egress(&nic);
    cpu = std::make_unique<attack::MiniCpu>(machine.kmem(), machine.layout());
    machine.stack().set_callback_invoker(cpu.get());
    (void)attack::SeedResidualKernelData(machine, 128);
    (void)nic.FillRxRing();
  }

  static core::MachineConfig MakeConfig(uint64_t seed) {
    core::MachineConfig config;
    config.seed = seed;
    config.iommu.mode = iommu::InvalidationMode::kDeferred;
    config.net.forwarding_enabled = true;
    return config;
  }
  static net::NicDriver& AddNic(core::Machine& machine) {
    net::NicDriver::Config config;
    config.rx_ring_size = 32;
    config.rx_buf_len = 1728;
    return machine.AddNicDriver(config);
  }

  attack::AttackEnv env() { return attack::AttackEnv{machine, nic, *device, *cpu}; }

  core::Machine machine;
  net::NicDriver& nic;
  std::unique_ptr<device::MaliciousNic> device;
  std::unique_ptr<attack::MiniCpu> cpu;
};

}  // namespace

int main() {
  std::printf("== Figure 9 / §5.5: Forward Thinking compound attack ==\n\n");

  // ---- Code injection success rate ------------------------------------------
  constexpr int kTrials = 10;
  int wins = 0;
  int kaslr_complete = 0;
  for (int t = 0; t < kTrials; ++t) {
    Rig rig{9000 + static_cast<uint64_t>(t)};
    auto report = attack::ForwardThinkingAttack::Run(rig.env(), {});
    if (report.ok()) {
      wins += report->success ? 1 : 0;
      kaslr_complete += report->kaslr.complete() ? 1 : 0;
    }
  }
  std::printf("code injection via forwarded GRO packet: %d/%d successful\n", wins, kTrials);
  std::printf("KASLR fully broken from forwarded traffic: %d/%d\n\n", kaslr_complete, kTrials);

  // ---- Surveillance: arbitrary-page reads -------------------------------------
  Rig rig{9999};
  auto bootstrap = attack::ForwardThinkingAttack::Run(rig.env(), {});
  if (!bootstrap.ok() || !bootstrap->kaslr.vmemmap_base.has_value()) {
    std::printf("surveillance bootstrap failed\n");
    return 1;
  }
  // Plant distinct secrets on several kernel pages and read them all back.
  int exfiltrated = 0;
  constexpr int kPages = 8;
  for (int i = 0; i < kPages; ++i) {
    Kva secret = *rig.machine.slab().Kmalloc(64, "session_key");
    char text[32];
    std::snprintf(text, sizeof(text), "secret-%d", i);
    (void)rig.machine.kmem().Write(
        secret, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(text),
                                         sizeof(text)));
    auto phys = rig.machine.layout().DirectMapKvaToPhys(secret);
    auto leaked = attack::ForwardThinkingAttack::SurveillanceRead(
        rig.env(), bootstrap->kaslr, phys->pfn().value,
        static_cast<uint32_t>(phys->page_offset()), sizeof(text), 0x0a000099);
    if (leaked.ok() && std::memcmp(leaked->data(), text, sizeof(text)) == 0) {
      ++exfiltrated;
    }
  }
  std::printf("surveillance reads (one forwarded UDP packet each): %d/%d pages "
              "exfiltrated, shared_info restored every time\n",
              exfiltrated, kPages);
  std::printf("\nshape check vs paper: forwarding turns the NIC into an arbitrary\n"
              "physical-memory reader — 'the driver maps these pages, providing READ\n"
              "access to the NIC for any page in the system'.\n");
  return 0;
}
