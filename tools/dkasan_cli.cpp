// dkasan — standalone CLI for the run-time sanitizer (the [48] release).
//
// Boots a simulated machine, runs the §4.2 build+ping workload with D-KASAN
// attached, and prints the Figure-3 report.
//
// Usage:
//   dkasan [--iterations N] [--seed S] [--mode strict|deferred]
//          [--max-lines N] [--no-dedup]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/machine.h"
#include "device/malicious_nic.h"
#include "dkasan/dkasan.h"
#include "dkasan/workload.h"

using namespace spv;

int main(int argc, char** argv) {
  int iterations = 400;
  uint64_t seed = 7;
  size_t max_lines = 32;
  bool dedup = true;
  iommu::InvalidationMode mode = iommu::InvalidationMode::kDeferred;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iterations" && i + 1 < argc) {
      iterations = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--max-lines" && i + 1 < argc) {
      max_lines = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--no-dedup") {
      dedup = false;
    } else if (arg == "--mode" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "strict") {
        mode = iommu::InvalidationMode::kStrict;
      } else if (value == "deferred") {
        mode = iommu::InvalidationMode::kDeferred;
      } else {
        std::fprintf(stderr, "unknown mode: %s\n", value.c_str());
        return 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: dkasan [--iterations N] [--seed S] [--mode strict|deferred] "
                  "[--max-lines N] [--no-dedup]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 1;
    }
  }

  core::MachineConfig config;
  config.seed = seed;
  config.iommu.mode = mode;
  core::Machine machine{config};

  dkasan::DKasan dkasan{machine.layout()};
  dkasan.set_dedup(dedup);
  dkasan.Attach(machine.slab());
  dkasan.Attach(machine.dma());

  net::NicDriver::Config driver_config;
  driver_config.name = "mlx5_core";
  driver_config.rx_ring_size = 16;
  driver_config.rx_buf_len = 1728;
  net::NicDriver& nic = machine.AddNicDriver(driver_config);
  device::MaliciousNic device{device::DevicePort{machine.iommu(), nic.device_id()}};
  nic.AttachDevice(&device);
  dkasan.Attach(machine.frag_pool(CpuId{0}));
  (void)machine.stack().CreateSocket(7, false);

  dkasan::WorkloadConfig workload;
  workload.iterations = iterations;
  workload.seed = seed;
  auto stats = dkasan::RunBuildAndPingWorkload(machine, nic, device, workload);
  if (!stats.ok()) {
    std::fprintf(stderr, "workload error: %s\n", stats.status().ToString().c_str());
    return 1;
  }

  std::printf("workload (%s mode): %llu allocs, %llu RX, %llu TX\n\n",
              iommu::InvalidationModeName(mode).c_str(),
              static_cast<unsigned long long>(stats->allocs),
              static_cast<unsigned long long>(stats->rx_packets),
              static_cast<unsigned long long>(stats->tx_packets));
  std::printf("%s", dkasan.FormatReport(max_lines).c_str());
  return dkasan.reports().empty() ? 0 : 2;
}
