// soak — run the deterministic chaos-soak harness from the command line.
//
// Usage:
//   soak [--seed N] [--cycles N] [--epochs N] [--mode strict|deferred]
//        [--no-recovery] [--no-faults] [--no-attacks] [--legacy-path]
//        [--cpus N] [--queues N] [--threads]
//        [--policy] [--hostile-hotplug] [--posture-out posture.json]
//        [--degraded-drill] [--degraded-floor F]
//        [--no-forensics] [--incident-out incidents.json]
//        [--check-interval N] [--out report.json] [--trace-out trace.csv]
//
// --cpus N > 1 turns on the cross-CPU leg (per-CPU churn, RSS-steered echo
// when --queues > 1, the stale-IOTLB and sibling-quarantine races);
// --threads runs the per-CPU phase on real host threads (ExecMode::kThreads,
// the TSan soak target — not byte-deterministic).
//
// --policy arms the spv::policy trust engine (nic0/nic1/nvme0 allowlisted,
// nic1 the demotion subject); --hostile-hotplug adds the never-authorized
// hot-plug storms whose sub-page probes must die in the bounce pool;
// --posture-out writes the engine's HSI-style posture JSON on its own.
//
// --degraded-drill (needs --policy) demotes the serving NIC and NVMe
// controller a third of the way through the run: both drivers must switch
// to sync'd bounce rings live and keep answering probes. --degraded-floor F
// (0..1, needs --degraded-drill) fails the run if post-demotion
// availability drops below F.
//
// The forensics leg (flight recorder + incident engine) is on by default —
// it is a pure observer, so the report JSON stays byte-identical either way;
// --no-forensics turns it off, --incident-out writes the full incident
// document (tools/incident renders it) and needs forensics enabled.
//
// Unknown flags and out-of-range values exit 2 with a pointer to --help:
// --cpus accepts 1..64, --queues 1..--cpus, and --threads needs --cpus > 1.
//
// Exit status: 0 when the run ends with clean invariants and zero leaks,
// 1 otherwise. The JSON report goes to --out (stdout gets a summary either
// way); --trace-out writes the machine's telemetry ring as trace CSV, the
// same format tools/trace timeline consumes.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "soak/soak.h"

namespace {

uint64_t ParseU64(const char* text, const char* flag) {
  char* end = nullptr;
  const uint64_t value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "soak: bad value for %s: '%s'\n", flag, text);
    std::exit(2);
  }
  return value;
}

bool WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "soak: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  out << body;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  spv::soak::SoakConfig config;
  std::string out_path;
  std::string trace_path;
  std::string posture_path;
  std::string incident_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "soak: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      config.seed = ParseU64(next(), "--seed");
    } else if (arg == "--cycles") {
      config.target_cycles = ParseU64(next(), "--cycles");
    } else if (arg == "--epochs") {
      config.max_epochs = ParseU64(next(), "--epochs");
    } else if (arg == "--mode") {
      const std::string mode = next();
      if (mode == "strict") {
        config.deferred = false;
      } else if (mode == "deferred") {
        config.deferred = true;
      } else {
        std::fprintf(stderr, "soak: --mode must be strict or deferred\n");
        return 2;
      }
    } else if (arg == "--no-recovery") {
      config.recovery_enabled = false;
    } else if (arg == "--no-faults") {
      config.faults = false;
    } else if (arg == "--no-attacks") {
      config.attacks = false;
    } else if (arg == "--no-storage") {
      config.storage = false;
    } else if (arg == "--legacy-path") {
      config.fast_path = false;
    } else if (arg == "--cpus") {
      config.num_cpus = static_cast<uint32_t>(ParseU64(next(), "--cpus"));
    } else if (arg == "--queues") {
      config.nic_queues = static_cast<uint32_t>(ParseU64(next(), "--queues"));
    } else if (arg == "--threads") {
      config.threads = true;
    } else if (arg == "--policy") {
      config.policy = true;
    } else if (arg == "--hostile-hotplug") {
      config.hostile_hotplug = true;
    } else if (arg == "--degraded-drill") {
      config.degraded_drill = true;
    } else if (arg == "--degraded-floor") {
      const char* text = next();
      char* end = nullptr;
      config.degraded_floor = std::strtod(text, &end);
      if (end == text || *end != '\0') {
        std::fprintf(stderr, "soak: bad value for --degraded-floor: '%s'\n", text);
        return 2;
      }
    } else if (arg == "--posture-out") {
      posture_path = next();
    } else if (arg == "--no-forensics") {
      config.forensics = false;
    } else if (arg == "--incident-out") {
      incident_path = next();
    } else if (arg == "--check-interval") {
      config.invariant_check_interval =
          static_cast<uint32_t>(ParseU64(next(), "--check-interval"));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--trace-out") {
      trace_path = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: soak [--seed N] [--cycles N] [--epochs N] [--mode strict|deferred]\n"
          "            [--no-recovery] [--no-faults] [--no-attacks] [--no-storage]\n"
          "            [--legacy-path] [--cpus N] [--queues N] [--threads]\n"
          "            [--policy] [--hostile-hotplug] [--posture-out posture.json]\n"
          "            [--degraded-drill] [--degraded-floor F]\n"
          "            [--no-forensics] [--incident-out incidents.json]\n"
          "            [--check-interval N] [--out report.json]\n"
          "            [--trace-out trace.csv]\n");
      return 0;
    } else {
      std::fprintf(stderr, "soak: unknown flag '%s' (see --help)\n", arg.c_str());
      return 2;
    }
  }

  // Range validation: a typo'd --cpus 0 or --queues 9 silently degenerating
  // into a different topology is worse than an error. Fail loudly instead.
  constexpr uint32_t kMaxCpus = 64;
  if (config.num_cpus == 0 || config.num_cpus > kMaxCpus) {
    std::fprintf(stderr, "soak: --cpus must be 1..%u (got %u); see --help\n",
                 kMaxCpus, config.num_cpus);
    return 2;
  }
  if (config.nic_queues == 0 || config.nic_queues > config.num_cpus) {
    std::fprintf(stderr,
                 "soak: --queues must be 1..--cpus (%u) (got %u); see --help\n",
                 config.num_cpus, config.nic_queues);
    return 2;
  }
  if (config.threads && config.num_cpus < 2) {
    std::fprintf(stderr, "soak: --threads needs --cpus > 1; see --help\n");
    return 2;
  }
  if (config.hostile_hotplug && !config.policy) {
    std::fprintf(stderr, "soak: --hostile-hotplug needs --policy; see --help\n");
    return 2;
  }
  if (config.degraded_drill && !config.policy) {
    std::fprintf(stderr, "soak: --degraded-drill needs --policy; see --help\n");
    return 2;
  }
  if (config.degraded_floor < 0.0 || config.degraded_floor > 1.0) {
    std::fprintf(stderr,
                 "soak: --degraded-floor must be 0..1 (got %g); see --help\n",
                 config.degraded_floor);
    return 2;
  }
  if (config.degraded_floor > 0.0 && !config.degraded_drill) {
    std::fprintf(stderr,
                 "soak: --degraded-floor needs --degraded-drill; see --help\n");
    return 2;
  }
  if (!posture_path.empty() && !config.policy) {
    std::fprintf(stderr, "soak: --posture-out needs --policy; see --help\n");
    return 2;
  }
  if (!incident_path.empty() && !config.forensics) {
    std::fprintf(stderr,
                 "soak: --incident-out needs forensics (drop --no-forensics); "
                 "see --help\n");
    return 2;
  }

  spv::soak::SetTraceCapture(!trace_path.empty());
  const spv::soak::SoakReport report = spv::soak::RunSoak(config);

  std::printf("soak: seed=%llu mode=%s recovery=%s %llu epochs, %llu sim cycles\n",
              static_cast<unsigned long long>(report.seed),
              config.deferred ? "deferred" : "strict",
              config.recovery_enabled ? "on" : "off",
              static_cast<unsigned long long>(report.epochs),
              static_cast<unsigned long long>(report.sim_cycles));
  std::printf("      availability %.4f (%llu/%llu probes), %llu quarantines, "
              "%llu re-attaches, %llu detaches\n",
              report.availability, static_cast<unsigned long long>(report.echo_ok),
              static_cast<unsigned long long>(report.echo_probes),
              static_cast<unsigned long long>(report.quarantines),
              static_cast<unsigned long long>(report.reattach_attempts),
              static_cast<unsigned long long>(report.permanent_detaches));
  std::printf("      %llu faults injected, %llu fenced accesses, %llu shed packets, "
              "%llu invariant checks\n",
              static_cast<unsigned long long>(report.faults_injected),
              static_cast<unsigned long long>(report.fenced_accesses),
              static_cast<unsigned long long>(report.shed_packets),
              static_cast<unsigned long long>(report.invariant_checks));
  if (config.storage) {
    std::printf("      storage %.4f (%llu/%llu probes), %llu quarantines, "
                "%llu forged CQEs, %llu/%llu replays landed/blocked\n",
                report.nvme.availability,
                static_cast<unsigned long long>(report.nvme.ok),
                static_cast<unsigned long long>(report.nvme.probes),
                static_cast<unsigned long long>(report.nvme.quarantines),
                static_cast<unsigned long long>(report.nvme.forged_completions),
                static_cast<unsigned long long>(report.nvme.replays_landed),
                static_cast<unsigned long long>(report.nvme.replays_blocked));
  }
  if (config.num_cpus > 1) {
    std::printf("      cross-cpu: %llu race probes (%llu stale hits, %llu blocked, "
                "%llu detected), %llu sibling probes (%llu fenced)\n",
                static_cast<unsigned long long>(report.cross_cpu_race_probes),
                static_cast<unsigned long long>(report.cross_cpu_stale_hits),
                static_cast<unsigned long long>(report.cross_cpu_stale_blocked),
                static_cast<unsigned long long>(report.cross_cpu_detected),
                static_cast<unsigned long long>(report.sibling_quarantine_probes),
                static_cast<unsigned long long>(report.sibling_completions_fenced));
  }
  if (config.policy) {
    std::printf("      policy: %llu demotions, %llu/%llu promotions blocked, "
                "%llu bounce maps\n",
                static_cast<unsigned long long>(report.policy.demotions),
                static_cast<unsigned long long>(report.policy.promotions_blocked),
                static_cast<unsigned long long>(report.policy.promotion_attempts),
                static_cast<unsigned long long>(report.policy.bounce_maps));
    if (config.degraded_drill) {
      std::printf("      degraded: %.4f availability (%llu/%llu probes) after the drill\n",
                  report.availability_degraded,
                  static_cast<unsigned long long>(report.degraded_ok),
                  static_cast<unsigned long long>(report.degraded_probes));
    }
    if (config.hostile_hotplug) {
      std::printf("      hostile: %llu plugged, %llu sub-page probes, "
                  "%llu leaks, %llu corruptions\n",
                  static_cast<unsigned long long>(report.policy.hotplug_attaches),
                  static_cast<unsigned long long>(report.policy.subpage_read_probes +
                                                  report.policy.subpage_write_probes),
                  static_cast<unsigned long long>(report.policy.secret_leaks),
                  static_cast<unsigned long long>(report.policy.neighbour_corruptions));
    }
  }
  if (config.forensics) {
    std::printf("      forensics: %llu incidents (%llu suppressed), "
                "%llu flight records (%llu dropped)\n",
                static_cast<unsigned long long>(report.incidents_opened),
                static_cast<unsigned long long>(report.incidents_suppressed),
                static_cast<unsigned long long>(report.flight_records),
                static_cast<unsigned long long>(report.flight_dropped));
  }
  if (report.ok) {
    std::printf("      PASS: invariants clean, no leaked mappings or PTEs\n");
  } else {
    std::printf("      FAIL: %s\n", report.failure.c_str());
  }

  bool io_ok = true;
  if (!out_path.empty()) {
    io_ok = WriteFile(out_path, report.ToJson() + "\n") && io_ok;
  }
  if (!posture_path.empty()) {
    io_ok = WriteFile(posture_path, report.posture_json + "\n") && io_ok;
  }
  if (!incident_path.empty()) {
    io_ok = WriteFile(incident_path, report.incidents_json + "\n") && io_ok;
  }
  if (!trace_path.empty()) {
    io_ok = WriteFile(trace_path, spv::soak::LastTraceCsv()) && io_ok;
  }
  return (report.ok && io_ok) ? 0 : 1;
}
