// incident — render spv::forensics incident documents for humans.
//
// Usage:
//   incident <incidents.json> [--id N] [--limit N]
//   incident <incidents.json> --summary
//
// The input is the deterministic JSON document IncidentEngine::ReportsJson()
// produces (soak --incident-out, or a test artifact). The default view walks
// every incident: the trigger line, the inferred attack class, the implicated
// mapping's map→access→unmap→flush lifecycle, the reconstructed flight-
// recorder timeline, the vulnerability windows that overlapped it, and the
// trust/recovery state at freeze time. --id narrows to one incident,
// --limit caps the timeline rows printed per incident (default 24),
// --summary prints only the per-trigger / per-class rollup.
//
// Exit status: 0 on success, 1 on a malformed document, 2 on flag misuse.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---- A minimal JSON reader (the document is machine-written, so the
// ---- grammar is honest; errors still fail loudly, never silently) ----------

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order kept

  const Value* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
  uint64_t U64(const std::string& key, uint64_t fallback = 0) const {
    const Value* v = Find(key);
    return v != nullptr && v->type == Type::kNumber
               ? static_cast<uint64_t>(v->number)
               : fallback;
  }
  std::string Str(const std::string& key, const std::string& fallback = "") const {
    const Value* v = Find(key);
    return v != nullptr && v->type == Type::kString ? v->string : fallback;
  }
  bool Bool(const std::string& key) const {
    const Value* v = Find(key);
    return v != nullptr && v->type == Type::kBool && v->boolean;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(Value* out) {
    return ParseValue(out) && (SkipWs(), pos_ == text_.size());
  }
  size_t error_pos() const { return pos_; }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }
  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            // The writer only escapes control bytes; render them blank.
            pos_ += pos_ + 4 <= text_.size() ? 4 : text_.size() - pos_;
            c = '?';
            break;
          default: c = esc; break;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool ParseValue(Value* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == 'n') {
      out->type = Value::Type::kNull;
      return Literal("null", 4);
    }
    if (c == 't') {
      out->type = Value::Type::kBool;
      out->boolean = true;
      return Literal("true", 4);
    }
    if (c == 'f') {
      out->type = Value::Type::kBool;
      out->boolean = false;
      return Literal("false", 5);
    }
    if (c == '"') {
      out->type = Value::Type::kString;
      return ParseString(&out->string);
    }
    if (c == '[') {
      ++pos_;
      out->type = Value::Type::kArray;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        out->array.emplace_back();
        if (!ParseValue(&out->array.back())) {
          return false;
        }
        SkipWs();
        if (pos_ >= text_.size()) {
          return false;
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '{') {
      ++pos_;
      out->type = Value::Type::kObject;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return false;
        }
        ++pos_;
        out->object.emplace_back(std::move(key), Value{});
        if (!ParseValue(&out->object.back().second)) {
          return false;
        }
        SkipWs();
        if (pos_ >= text_.size()) {
          return false;
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    // Number (the writer emits plain integers and fixed-precision doubles).
    char* end = nullptr;
    out->type = Value::Type::kNumber;
    out->number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) {
      return false;
    }
    pos_ = static_cast<size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---- Rendering -------------------------------------------------------------

std::string Hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

const char* DirName(uint64_t dir) {
  switch (dir) {
    case 0: return "to_dev";
    case 1: return "from_dev";
    case 2: return "bidir";
    default: return "?";
  }
}

void PrintLife(const Value& life, const char* indent) {
  std::printf("%sgen %llu  %s -> iova %s  len %llu  dir %s%s  site %s\n", indent,
              static_cast<unsigned long long>(life.U64("generation")),
              Hex(life.U64("kva")).c_str(), Hex(life.U64("iova")).c_str(),
              static_cast<unsigned long long>(life.U64("len")),
              DirName(life.U64("dir")), life.Bool("bounced") ? " (bounced)" : "",
              life.Str("site", "?").c_str());
  const uint64_t unmap = life.U64("unmap_cycle");
  const uint64_t flush = life.U64("flush_cycle");
  std::printf("%s  map @%llu  unmap %s  flush %s  |  %llu accesses, "
              "%llu stale hits, %llu faults\n",
              indent, static_cast<unsigned long long>(life.U64("map_cycle")),
              unmap == 0 ? "-- (live)" : ("@" + std::to_string(unmap)).c_str(),
              flush == 0 ? "--" : ("@" + std::to_string(flush)).c_str(),
              static_cast<unsigned long long>(life.U64("accesses")),
              static_cast<unsigned long long>(life.U64("stale_hits")),
              static_cast<unsigned long long>(life.U64("faults")));
}

void PrintTimeline(const Value& timeline, uint64_t limit) {
  const size_t total = timeline.array.size();
  const size_t start = total > limit ? total - limit : 0;
  if (start > 0) {
    std::printf("    ... %zu earlier records elided (--limit raises)\n", start);
  }
  for (size_t i = start; i < total; ++i) {
    const Value& r = timeline.array[i];
    const std::string op = r.Str("op", "?");
    std::printf("    @%-10llu cpu%llu  %-12s iova %-14s len %-6llu",
                static_cast<unsigned long long>(r.U64("cycle")),
                static_cast<unsigned long long>(r.U64("cpu")), op.c_str(),
                Hex(r.U64("iova")).c_str(),
                static_cast<unsigned long long>(r.U64("len")));
    if (op == "map" || op == "unmap") {
      std::printf("  %s%s", DirName(r.U64("dir")),
                  r.Bool("bounced") ? " (bounced)" : "");
    }
    const uint64_t gen = r.U64("generation");
    if (gen != 0) {
      std::printf("  gen %llu", static_cast<unsigned long long>(gen));
    } else if (op == "device_read" || op == "device_write") {
      std::printf("  gen --  [NO OWNING MAPPING]");
    }
    std::printf("\n");
  }
}

void PrintWindows(const Value& windows) {
  for (const Value& w : windows.array) {
    std::printf("    %-12s iova page %s  %llu pages  %llu B exposed  "
                "open @%llu  close %s  hits %llu%s%s\n",
                w.Str("kind", "?").c_str(), Hex(w.U64("iova_page")).c_str(),
                static_cast<unsigned long long>(w.U64("pages")),
                static_cast<unsigned long long>(w.U64("exposed_bytes")),
                static_cast<unsigned long long>(w.U64("open_cycle")),
                w.Bool("open")
                    ? "-- (still open)"
                    : ("@" + std::to_string(w.U64("close_cycle"))).c_str(),
                static_cast<unsigned long long>(w.U64("device_hits")),
                w.Bool("detected") ? "  DETECTED" : "",
                w.Str("close_reason").empty()
                    ? ""
                    : ("  (" + w.Str("close_reason") + ")").c_str());
  }
}

int PrintSummaryOnly(const Value& doc) {
  std::printf("incidents: %llu frozen, %llu suppressed (cooldown/cap)\n",
              static_cast<unsigned long long>(doc.U64("count")),
              static_cast<unsigned long long>(doc.U64("suppressed")));
  std::map<std::string, uint64_t> by_trigger;
  std::map<std::string, uint64_t> by_class;
  if (const Value* incidents = doc.Find("incidents")) {
    for (const Value& incident : incidents->array) {
      ++by_trigger[incident.Str("trigger", "?")];
      ++by_class[incident.Str("inferred_class", "?")];
    }
  }
  std::printf("by trigger:\n");
  for (const auto& [name, count] : by_trigger) {
    std::printf("  %-24s %llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("by class:\n");
  for (const auto& [name, count] : by_class) {
    std::printf("  %-24s %llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  uint64_t only_id = 0;
  uint64_t limit = 24;
  bool summary = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "incident: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--id") {
      only_id = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--limit") {
      limit = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: incident <incidents.json> [--id N] [--limit N] [--summary]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "incident: unknown flag '%s' (see --help)\n", arg.c_str());
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "incident: no input file (see --help)\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "incident: cannot read '%s'\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  Value doc;
  Parser parser(text);
  if (!parser.Parse(&doc) || doc.type != Value::Type::kObject) {
    std::fprintf(stderr, "incident: malformed JSON in '%s' (offset %zu)\n",
                 path.c_str(), parser.error_pos());
    return 1;
  }
  if (summary) {
    return PrintSummaryOnly(doc);
  }

  std::printf("incidents: %llu frozen, %llu suppressed\n",
              static_cast<unsigned long long>(doc.U64("count")),
              static_cast<unsigned long long>(doc.U64("suppressed")));
  const Value* incidents = doc.Find("incidents");
  if (incidents == nullptr || incidents->type != Value::Type::kArray) {
    std::fprintf(stderr, "incident: document has no incidents array\n");
    return 1;
  }
  bool matched = false;
  for (const Value& incident : incidents->array) {
    const uint64_t id = incident.U64("id");
    if (only_id != 0 && id != only_id) {
      continue;
    }
    matched = true;
    std::printf("\n== incident #%llu  dev %llu  @cycle %llu\n",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(incident.U64("device")),
                static_cast<unsigned long long>(incident.U64("cycle")));
    std::printf("   trigger: %s (%s)\n", incident.Str("trigger", "?").c_str(),
                incident.Str("reason", "-").c_str());
    std::printf("   inferred class: %s\n",
                incident.Str("inferred_class", "unknown").c_str());
    if (const Value* life = incident.Find("implicated");
        life != nullptr && life->type == Value::Type::kObject) {
      std::printf("   implicated mapping:\n");
      PrintLife(*life, "     ");
    } else {
      std::printf("   implicated mapping: none attributed\n");
    }
    if (const Value* timeline = incident.Find("timeline");
        timeline != nullptr && !timeline->array.empty()) {
      std::printf("   timeline (%zu records):\n", timeline->array.size());
      PrintTimeline(*timeline, limit == 0 ? UINT64_MAX : limit);
    } else {
      std::printf("   timeline: empty (recorder disabled?)\n");
    }
    if (const Value* ledger = incident.Find("ledger");
        ledger != nullptr && !ledger->array.empty()) {
      std::printf("   mapping ledger (%zu lives):\n", ledger->array.size());
      for (const Value& life : ledger->array) {
        PrintLife(life, "     ");
      }
    }
    if (const Value* windows = incident.Find("windows");
        windows != nullptr && !windows->array.empty()) {
      std::printf("   vulnerability windows:\n");
      PrintWindows(*windows);
    }
    if (const Value* trust = incident.Find("trust");
        trust != nullptr && trust->type == Value::Type::kObject) {
      std::printf("   trust: %s", trust->Str("trust", "?").c_str());
      std::printf("  (%llu demotions, %llu promotions)\n",
                  static_cast<unsigned long long>(trust->U64("demotions")),
                  static_cast<unsigned long long>(trust->U64("promotions")));
    }
    if (const Value* recovery = incident.Find("recovery");
        recovery != nullptr && recovery->type == Value::Type::kObject) {
      std::printf("   recovery: %s  (%llu reattach attempts, %llu quarantines)\n",
                  recovery->Str("state", "?").c_str(),
                  static_cast<unsigned long long>(recovery->U64("reattach_attempts")),
                  static_cast<unsigned long long>(recovery->U64("quarantines")));
    }
  }
  if (only_id != 0 && !matched) {
    std::fprintf(stderr, "incident: no incident with id %llu\n",
                 static_cast<unsigned long long>(only_id));
    return 1;
  }
  if (const Value* recorder = doc.Find("recorder");
      recorder != nullptr && recorder->type == Value::Type::kObject) {
    std::printf("\nrecorder accounting (ring %llu, ledger %llu):\n",
                static_cast<unsigned long long>(recorder->U64("ring_capacity")),
                static_cast<unsigned long long>(recorder->U64("ledger_capacity")));
    if (const Value* rings = recorder->Find("rings")) {
      for (const Value& ring : rings->array) {
        std::printf("  dev %llu cpu %llu: %llu recorded, %llu dropped "
                    "(%llu critical)\n",
                    static_cast<unsigned long long>(ring.U64("device")),
                    static_cast<unsigned long long>(ring.U64("cpu")),
                    static_cast<unsigned long long>(ring.U64("recorded")),
                    static_cast<unsigned long long>(ring.U64("dropped")),
                    static_cast<unsigned long long>(ring.U64("dropped_critical")));
      }
    }
    if (const Value* ledgers = recorder->Find("ledgers")) {
      for (const Value& ledger : ledgers->array) {
        std::printf("  dev %llu ledger: %llu lives (%llu retained, %llu dropped)\n",
                    static_cast<unsigned long long>(ledger.U64("device")),
                    static_cast<unsigned long long>(ledger.U64("lives")),
                    static_cast<unsigned long long>(ledger.U64("retained")),
                    static_cast<unsigned long long>(ledger.U64("dropped")));
      }
    }
  }
  return 0;
}
