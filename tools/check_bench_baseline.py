#!/usr/bin/env python3
"""CI gate: compare a bench_map_unmap run against the committed baseline.

Only *simulated-cycle* metrics are compared — they are deterministic for a
given binary (seeded RNG, logical clock), so a drift means the code's cost
model changed, not that the CI runner was noisy. Wall-clock fields
(maps_per_sec etc.) are ignored.

Usage:
  check_bench_baseline.py RESULT.json [--baseline bench/BENCH_map_unmap.baseline.json]
                          [--tolerance 0.25] [--update]

Exit status: 0 when every checked metric is within tolerance, 1 otherwise.
--update rewrites the baseline from RESULT.json instead of checking.
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "bench" / "BENCH_map_unmap.baseline.json"


def case_key(case):
    return (case.get("workload"), case.get("mode"), case.get("cpus"), case.get("fast_path"))


def warn(message):
    print(f"warning: {message}", file=sys.stderr)


def trimmed(result):
    return {
        "benchmark": result["benchmark"],
        "note": "Deterministic sim-cycle baseline for the CI bench gate. "
        "Only simulated-cycle fields are recorded (wall-clock numbers vary by host). "
        "Regenerate with: bench_map_unmap --quick --out full.json, then tools/check_bench_baseline.py --update.",
        "steady_p99_sim_cycles": result["steady_p99_sim_cycles"],
        "cases": [
            {
                "workload": c["workload"],
                "mode": c["mode"],
                "cpus": c["cpus"],
                "fast_path": c["fast_path"],
                "sim_cycles_per_op": c["sim_cycles_per_op"],
            }
            for c in result["cases"]
        ],
    }


def within(new, old, tolerance):
    if old == 0:
        return new == 0
    return abs(new - old) <= tolerance * old


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", type=Path, help="JSON written by bench_map_unmap --out")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative drift (default 0.25 = ±25%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from RESULT instead of checking")
    args = parser.parse_args()

    result = json.loads(args.result.read_text())

    if args.update:
        args.baseline.write_text(json.dumps(trimmed(result), indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = json.loads(args.baseline.read_text())
    failures = []

    # Headline gate: steady-state p99 sim cycles per map/unmap op. A key
    # absent from either side (an older baseline, or a result from a build
    # predating the metric) warns and skips rather than crashing the gate —
    # new metrics must be adoptable without a lockstep baseline update.
    new_p99 = result.get("steady_p99_sim_cycles")
    old_p99 = baseline.get("steady_p99_sim_cycles")
    if new_p99 is None or old_p99 is None:
        side = "result" if new_p99 is None else "baseline"
        warn(f"steady_p99_sim_cycles missing from {side}; skipping the headline gate")
    else:
        status = "ok" if within(new_p99, old_p99, args.tolerance) else "FAIL"
        print(f"steady_p99_sim_cycles: {new_p99} vs baseline {old_p99} [{status}]")
        if status == "FAIL":
            failures.append("steady_p99_sim_cycles")

    # Per-case mean sim cycles (p50/p99 are log2 bucket bounds — too coarse to
    # drift meaningfully within tolerance, so the mean is the sensitive metric).
    baseline_cases = {case_key(c): c for c in baseline.get("cases", [])}
    for case in result.get("cases", []):
        key = case_key(case)
        base = baseline_cases.get(key)
        if base is None:
            print(f"  {key}: new case (no baseline) [skip]")
            continue
        new_mean = case.get("sim_cycles_per_op", {}).get("mean")
        old_mean = base.get("sim_cycles_per_op", {}).get("mean")
        if new_mean is None or old_mean is None:
            warn(f"{key}: sim_cycles_per_op.mean missing; skipping this case")
            continue
        if not within(new_mean, old_mean, args.tolerance):
            print(f"  {key}: mean sim cycles {new_mean} vs {old_mean} [FAIL]")
            failures.append(str(key))

    if failures:
        print(f"\n{len(failures)} metric(s) outside ±{args.tolerance:.0%}: {failures}")
        print("If the drift is intentional, regenerate with --update and commit.")
        return 1
    print(f"all sim-cycle metrics within ±{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
