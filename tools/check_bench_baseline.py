#!/usr/bin/env python3
"""CI gate: compare a bench run against its committed baseline.

Works for any of the repo's JSON benches (bench_map_unmap, bench_nvme_io,
bench_mq_throughput): only *simulated-cycle* metrics are compared — they are
deterministic for a given binary (seeded RNG, logical clock), so a drift
means the code's cost model changed, not that the CI runner was noisy.
Wall-clock fields (maps_per_sec etc.) are ignored.

Checked metrics:
  * every top-level numeric field present in both files (e.g.
    steady_p99_sim_cycles, churn_scaling_8cpu_threads, rss_balance_min_share);
  * each case's sim_cycles_per_op.mean, keyed by
    (workload, mode, cpus, fast_path).

Tolerances: --tolerance sets the default relative drift. Scaling and
balance keys measure *ratios* of deterministic sim-cycle counts, so they get
a tighter built-in tolerance (--scaling-tolerance, default 0.10); any key can
be overridden exactly with --key-tolerance KEY=TOL (repeatable).

Usage:
  check_bench_baseline.py RESULT.json [--baseline bench/BENCH_map_unmap.baseline.json]
                          [--tolerance 0.25] [--scaling-tolerance 0.10]
                          [--key-tolerance KEY=TOL ...] [--update]

Exit status: 0 when every checked metric is within tolerance, 1 otherwise.
--update (alias: --update-baseline) rewrites the baseline from RESULT.json
instead of checking.
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "bench" / "BENCH_map_unmap.baseline.json"

# Top-level keys that are *ratios of sim-cycle counts* (scaling factors,
# parallel efficiency, RSS balance shares). Far more stable than raw cycle
# counts, so they default to the tighter scaling tolerance.
SCALING_KEY_MARKERS = ("scaling", "efficiency", "balance")


def case_key(case):
    return (case.get("workload"), case.get("mode"), case.get("cpus"), case.get("fast_path"))


def warn(message):
    print(f"warning: {message}", file=sys.stderr)


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def trimmed(result):
    """The deterministic subset worth committing as a baseline."""
    out = {
        "benchmark": result.get("benchmark", "unknown"),
        "note": "Deterministic sim-cycle baseline for the CI bench gate. "
        "Only simulated-cycle fields are recorded (wall-clock numbers vary by host). "
        "Regenerate with: <bench> --quick --out full.json, then tools/check_bench_baseline.py --update.",
    }
    for key, value in result.items():
        if is_number(value):
            out[key] = value
    out["cases"] = [
        {
            "workload": c.get("workload"),
            "mode": c.get("mode"),
            "cpus": c.get("cpus"),
            "fast_path": c.get("fast_path"),
            "sim_cycles_per_op": c.get("sim_cycles_per_op"),
        }
        for c in result.get("cases", [])
    ]
    return out


def within(new, old, tolerance):
    if old == 0:
        return new == 0
    return abs(new - old) <= tolerance * abs(old)


def tolerance_for(key, args, overrides):
    if key in overrides:
        return overrides[key]
    if any(marker in key for marker in SCALING_KEY_MARKERS):
        return args.scaling_tolerance
    return args.tolerance


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("result", type=Path, help="JSON written by a bench's --out")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="default allowed relative drift (0.25 = ±25%%)")
    parser.add_argument("--scaling-tolerance", type=float, default=0.10,
                        help="drift allowed for scaling/efficiency/balance keys "
                        "(default 0.10 = ±10%%)")
    parser.add_argument("--key-tolerance", action="append", default=[],
                        metavar="KEY=TOL",
                        help="exact per-key override, repeatable "
                        "(e.g. --key-tolerance rss_balance_min_share=0.02)")
    parser.add_argument("--update", "--update-baseline", action="store_true",
                        dest="update",
                        help="rewrite the baseline from RESULT instead of checking")
    args = parser.parse_args()

    overrides = {}
    for spec in args.key_tolerance:
        key, sep, tol = spec.partition("=")
        if not sep:
            parser.error(f"--key-tolerance needs KEY=TOL, got '{spec}'")
        overrides[key] = float(tol)

    result = json.loads(args.result.read_text())

    if args.update:
        args.baseline.write_text(json.dumps(trimmed(result), indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = json.loads(args.baseline.read_text())
    failures = []

    # Every top-level numeric metric present in both files. A key absent from
    # either side (an older baseline, or a result from a build predating the
    # metric) warns and skips rather than crashing the gate — new metrics
    # must be adoptable without a lockstep baseline update.
    keys = [k for k, v in baseline.items() if is_number(v)]
    for key in sorted(set(keys) | {k for k, v in result.items() if is_number(v)}):
        new, old = result.get(key), baseline.get(key)
        if not is_number(new) or not is_number(old):
            side = "result" if not is_number(new) else "baseline"
            warn(f"{key} missing from {side}; skipping")
            continue
        tol = tolerance_for(key, args, overrides)
        status = "ok" if within(new, old, tol) else "FAIL"
        print(f"{key}: {new} vs baseline {old} (tol ±{tol:.0%}) [{status}]")
        if status == "FAIL":
            failures.append(key)

    # Per-case mean sim cycles (p50/p99 are log2 bucket bounds — too coarse to
    # drift meaningfully within tolerance, so the mean is the sensitive metric).
    baseline_cases = {case_key(c): c for c in baseline.get("cases", [])}
    for case in result.get("cases", []):
        key = case_key(case)
        base = baseline_cases.get(key)
        if base is None:
            print(f"  {key}: new case (no baseline) [skip]")
            continue
        new_mean = case.get("sim_cycles_per_op", {}).get("mean")
        old_mean = base.get("sim_cycles_per_op", {}).get("mean")
        if new_mean is None or old_mean is None:
            warn(f"{key}: sim_cycles_per_op.mean missing; skipping this case")
            continue
        if not within(new_mean, old_mean, args.tolerance):
            print(f"  {key}: mean sim cycles {new_mean} vs {old_mean} [FAIL]")
            failures.append(str(key))

    if failures:
        print(f"\n{len(failures)} metric(s) outside tolerance: {failures}")
        print("If the drift is intentional, regenerate with --update and commit.")
        return 1
    print("all sim-cycle metrics within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
