// trace — replays a telemetry trace export as a human-readable timeline.
//
// Input is the CSV produced by telemetry::Hub::ExportTraceCsv() (one row per
// trace-ring event: seq,cycle,kind,severity,device,addr,addr2,len,aux,flag,
// site). Each event is printed with its simulated timestamp, the delta since
// the previous event, and a kind-aware rendering of the payload fields.
//
// Usage:
//   trace <trace.csv> [--min-severity trace|info|warn|critical] [--limit N]
//   trace --demo      runs a small map/stale-access/flush workload on a
//                     simulated machine and replays its trace (dogfooding the
//                     same CSV path an external consumer would use).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.h"
#include "telemetry/telemetry.h"

using namespace spv;

namespace {

// Splits one CSV record, honouring double-quoted fields with "" escapes.
std::vector<std::string> SplitCsvRecord(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

struct TraceRow {
  uint64_t seq = 0;
  uint64_t cycle = 0;
  telemetry::EventKind kind = telemetry::EventKind::kDmaMap;
  telemetry::Severity severity = telemetry::Severity::kInfo;
  uint32_t device = 0;
  uint64_t addr = 0;
  uint64_t addr2 = 0;
  uint64_t len = 0;
  uint64_t aux = 0;
  bool flag = false;
  std::string site;
};

std::optional<TraceRow> ParseRow(const std::string& line) {
  const std::vector<std::string> fields = SplitCsvRecord(line);
  if (fields.size() != 11) {
    return std::nullopt;
  }
  auto kind = telemetry::EventKindFromName(fields[2]);
  auto severity = telemetry::SeverityFromName(fields[3]);
  if (!kind.has_value() || !severity.has_value()) {
    return std::nullopt;
  }
  TraceRow row;
  row.seq = std::strtoull(fields[0].c_str(), nullptr, 10);
  row.cycle = std::strtoull(fields[1].c_str(), nullptr, 10);
  row.kind = *kind;
  row.severity = *severity;
  row.device = static_cast<uint32_t>(std::strtoul(fields[4].c_str(), nullptr, 10));
  row.addr = std::strtoull(fields[5].c_str(), nullptr, 0);
  row.addr2 = std::strtoull(fields[6].c_str(), nullptr, 0);
  row.len = std::strtoull(fields[7].c_str(), nullptr, 10);
  row.aux = std::strtoull(fields[8].c_str(), nullptr, 10);
  row.flag = fields[9] == "1";
  row.site = fields[10];
  return row;
}

const char* SeverityMarker(telemetry::Severity severity) {
  switch (severity) {
    case telemetry::Severity::kTrace:
      return " ";
    case telemetry::Severity::kInfo:
      return "·";
    case telemetry::Severity::kWarn:
      return "!";
    case telemetry::Severity::kCritical:
      return "**";
  }
  return "?";
}

// Kind-aware one-line rendering of the payload columns.
std::string DescribeRow(const TraceRow& row) {
  std::ostringstream out;
  char hex[32];
  auto fmt_hex = [&](uint64_t v) {
    std::snprintf(hex, sizeof(hex), "0x%llx", static_cast<unsigned long long>(v));
    return std::string(hex);
  };
  switch (row.kind) {
    case telemetry::EventKind::kDmaMap:
    case telemetry::EventKind::kDmaUnmap:
    case telemetry::EventKind::kDmaSync:
      out << "dev " << row.device << "  kva " << fmt_hex(row.addr) << " <-> iova "
          << fmt_hex(row.addr2) << "  len " << row.len;
      break;
    case telemetry::EventKind::kCpuAccess:
      out << (row.flag ? "write " : "read ") << row.len << " @ kva " << fmt_hex(row.addr);
      break;
    case telemetry::EventKind::kIotlbInvalidate:
      out << "dev " << row.device << "  iova " << fmt_hex(row.addr2) << "  ("
          << row.aux << " cycles)";
      break;
    case telemetry::EventKind::kIommuFlush:
      out << "retired " << row.aux << " queued unmaps";
      break;
    case telemetry::EventKind::kIommuFault:
      out << "dev " << row.device << "  iova " << fmt_hex(row.addr2)
          << (row.flag ? "  (write)" : "  (read)");
      break;
    case telemetry::EventKind::kStaleIotlbHit:
      out << "dev " << row.device << "  iova " << fmt_hex(row.addr2)
          << (row.flag ? "  WRITE through dead PTE" : "  READ through dead PTE");
      break;
    case telemetry::EventKind::kSlabAlloc:
    case telemetry::EventKind::kSlabFree:
    case telemetry::EventKind::kFragAlloc:
    case telemetry::EventKind::kFragFree:
      out << "kva " << fmt_hex(row.addr) << "  size " << row.len;
      break;
    case telemetry::EventKind::kNicRx:
    case telemetry::EventKind::kNicTx:
    case telemetry::EventKind::kXdpDrop:
    case telemetry::EventKind::kXdpTx:
      out << "dev " << row.device << "  pkt " << row.len << "B";
      break;
    case telemetry::EventKind::kNicTxReset:
      out << "dev " << row.device << "  " << row.len << " slots timed out";
      break;
    case telemetry::EventKind::kNicRxError:
      out << "dev " << row.device << "  pkt " << row.len << "B dropped";
      break;
    case telemetry::EventKind::kFaultInjected:
      out << "site #" << row.aux << "  magnitude " << row.len;
      break;
    case telemetry::EventKind::kFaultRecovered:
      out << "dev " << row.device << "  recovered " << row.len;
      break;
    case telemetry::EventKind::kStackDeliver:
    case telemetry::EventKind::kStackForward:
    case telemetry::EventKind::kStackDrop:
    case telemetry::EventKind::kStackSend:
    case telemetry::EventKind::kStackEcho:
      out << row.len << "B";
      break;
    case telemetry::EventKind::kAttackStage:
    case telemetry::EventKind::kDkasanReport:
    case telemetry::EventKind::kSpadeFinding:
      // The site column carries the whole story for these.
      break;
  }
  return out.str();
}

// --filter origin=fault: keep only rows from the fault-injection story — the
// engine's own events plus recovery/drop accounting published on its behalf.
bool IsFaultRow(const TraceRow& row) {
  return row.kind == telemetry::EventKind::kFaultInjected ||
         row.kind == telemetry::EventKind::kFaultRecovered ||
         row.kind == telemetry::EventKind::kNicRxError ||
         row.site.rfind("fault:", 0) == 0;
}

int Replay(const std::string& csv, telemetry::Severity min_severity, size_t limit,
           bool fault_only) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }
  // Header row is validated loosely: first column must be "seq".
  if (line.rfind("seq,", 0) != 0) {
    std::fprintf(stderr, "not a trace CSV (missing header)\n");
    return 1;
  }
  size_t shown = 0;
  size_t skipped = 0;
  uint64_t prev_cycle = 0;
  bool have_prev = false;
  while (std::getline(in, line) && shown < limit) {
    if (line.empty()) {
      continue;
    }
    std::optional<TraceRow> row = ParseRow(line);
    if (!row.has_value()) {
      std::fprintf(stderr, "skipping malformed row: %s\n", line.c_str());
      continue;
    }
    if (row->severity < min_severity) {
      ++skipped;
      continue;
    }
    if (fault_only && !IsFaultRow(*row)) {
      ++skipped;
      continue;
    }
    const uint64_t delta = have_prev ? row->cycle - prev_cycle : 0;
    prev_cycle = row->cycle;
    have_prev = true;
    const std::string detail = DescribeRow(*row);
    std::printf("%10llu cyc (+%-8llu) %-2s %-16s %s%s%s%s\n",
                static_cast<unsigned long long>(row->cycle),
                static_cast<unsigned long long>(delta), SeverityMarker(row->severity),
                std::string(telemetry::EventKindName(row->kind)).c_str(), detail.c_str(),
                row->site.empty() ? "" : (detail.empty() ? "" : "  "),
                row->site.empty() ? "" : "[", row->site.empty() ? "" : (row->site + "]").c_str());
    ++shown;
  }
  std::printf("\n%zu events shown", shown);
  if (skipped > 0) {
    std::printf(", %zu filtered out", skipped);
  }
  std::printf("\n");
  return 0;
}

// --demo: a small deferred-mode workload whose trace shows the Figure-6
// window end to end: map, device DMA, unmap (deferred), stale device write
// through the warm IOTLB entry, then the periodic flush.
std::string DemoTraceCsv() {
  core::MachineConfig config;
  config.seed = 42;
  config.phys_pages = 4096;
  config.telemetry.enabled = true;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);

  Kva buf = *machine.slab().Kmalloc(2048, "demo_io_buf");
  std::vector<uint8_t> payload(64, 0xab);
  auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                      "demo_map_rx");
  (void)machine.iommu().DeviceWrite(dev, *iova, payload);  // warms the IOTLB
  (void)machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice);
  // Deferred mode: the stale entry still translates until the flush.
  (void)machine.iommu().DeviceWrite(dev, *iova, payload);
  machine.clock().AdvanceUs(10001);
  machine.iommu().ProcessDeferredTimer();
  (void)machine.slab().Kfree(buf);
  return machine.telemetry().ExportTraceCsv();
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool demo = false;
  bool fault_only = false;
  telemetry::Severity min_severity = telemetry::Severity::kTrace;
  size_t limit = SIZE_MAX;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--filter" && i + 1 < argc) {
      const std::string filter = argv[++i];
      if (filter != "origin=fault") {
        std::fprintf(stderr, "unknown filter: %s (supported: origin=fault)\n",
                     filter.c_str());
        return 1;
      }
      fault_only = true;
    } else if (arg == "--min-severity" && i + 1 < argc) {
      auto severity = telemetry::SeverityFromName(argv[++i]);
      if (!severity.has_value()) {
        std::fprintf(stderr, "unknown severity: %s\n", argv[i]);
        return 1;
      }
      min_severity = *severity;
    } else if (arg == "--limit" && i + 1 < argc) {
      limit = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: trace <trace.csv> [--min-severity trace|info|warn|critical] "
                  "[--limit N] [--filter origin=fault]\n       trace --demo\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 1;
    } else {
      path = arg;
    }
  }

  std::string csv;
  if (demo) {
    csv = DemoTraceCsv();
  } else if (path.empty()) {
    std::fprintf(stderr, "no trace file given (try --demo or --help)\n");
    return 1;
  } else {
    std::ifstream in{path};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    csv = buffer.str();
  }
  return Replay(csv, min_severity, limit, fault_only);
}
