// trace — replays a telemetry trace export as a timeline, a Perfetto-loadable
// Chrome trace, or collapsed flamegraph stacks.
//
// Input is the CSV produced by telemetry::Hub::ExportTraceCsv() (one row per
// trace-ring event: seq,cycle,kind,severity,device,addr,addr2,len,aux,flag,
// span,site; the pre-span 11-column format is still accepted). Parsing is
// shared with the library (telemetry::ParseTraceCsv) so the CLI and any other
// consumer agree on the format.
//
// Usage:
//   trace <trace.csv> [--format timeline|chrome|flame] [--span ID]
//                     [--min-severity trace|info|warn|critical] [--limit N]
//                     [--filter origin=<name>] [--list-origins]
//   trace --demo      runs a small map/stale-access/flush workload on a
//                     simulated machine and replays its trace (dogfooding the
//                     same CSV path an external consumer would use).
//
// --format chrome  emits Chrome trace-event JSON (load in Perfetto; timebase
//                  is sim cycles, see src/trace/profile.h).
// --format flame   emits collapsed stacks ("a;b;c <self-cycles>") for
//                  flamegraph.pl-style renderers.
// --span ID        restricts any format to the subtree rooted at span ID:
//                  the timeline keeps events stamped with a span in the
//                  subtree, chrome/flame keep only those spans.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/machine.h"
#include "policy/policy.h"
#include "telemetry/telemetry.h"
#include "trace/profile.h"
#include "trace/tracer.h"

using namespace spv;

namespace {

const char* SeverityMarker(telemetry::Severity severity) {
  switch (severity) {
    case telemetry::Severity::kTrace:
      return " ";
    case telemetry::Severity::kInfo:
      return "·";
    case telemetry::Severity::kWarn:
      return "!";
    case telemetry::Severity::kCritical:
      return "**";
  }
  return "?";
}

// The trust rung a policy event's aux column names (spv::policy::TrustState).
std::string TrustRungName(uint64_t aux) {
  if (aux > static_cast<uint64_t>(policy::TrustState::kTrusted)) {
    return "?";
  }
  return std::string(policy::TrustStateName(static_cast<policy::TrustState>(aux)));
}

// Kind-aware one-line rendering of the payload columns.
std::string DescribeEvent(const telemetry::Event& event) {
  std::ostringstream out;
  char hex[32];
  auto fmt_hex = [&](uint64_t v) {
    std::snprintf(hex, sizeof(hex), "0x%llx", static_cast<unsigned long long>(v));
    return std::string(hex);
  };
  switch (event.kind) {
    case telemetry::EventKind::kDmaMap:
    case telemetry::EventKind::kDmaUnmap:
    case telemetry::EventKind::kDmaSync:
      out << "dev " << event.device << "  kva " << fmt_hex(event.addr) << " <-> iova "
          << fmt_hex(event.addr2) << "  len " << event.len;
      break;
    case telemetry::EventKind::kCpuAccess:
      out << (event.flag ? "write " : "read ") << event.len << " @ kva "
          << fmt_hex(event.addr);
      break;
    case telemetry::EventKind::kIotlbInvalidate:
      out << "dev " << event.device << "  iova " << fmt_hex(event.addr2) << "  ("
          << event.aux << " cycles)";
      break;
    case telemetry::EventKind::kIommuFlush:
      out << "retired " << event.aux << " queued unmaps";
      break;
    case telemetry::EventKind::kIommuFault:
      out << "dev " << event.device << "  iova " << fmt_hex(event.addr2)
          << (event.flag ? "  (write)" : "  (read)");
      break;
    case telemetry::EventKind::kStaleIotlbHit:
      out << "dev " << event.device << "  iova " << fmt_hex(event.addr2)
          << (event.flag ? "  WRITE through dead PTE" : "  READ through dead PTE");
      break;
    case telemetry::EventKind::kSlabAlloc:
    case telemetry::EventKind::kSlabFree:
    case telemetry::EventKind::kFragAlloc:
    case telemetry::EventKind::kFragFree:
      out << "kva " << fmt_hex(event.addr) << "  size " << event.len;
      break;
    case telemetry::EventKind::kNicRx:
    case telemetry::EventKind::kNicTx:
    case telemetry::EventKind::kXdpDrop:
    case telemetry::EventKind::kXdpTx:
      out << "dev " << event.device << "  pkt " << event.len << "B";
      break;
    case telemetry::EventKind::kNicTxReset:
      out << "dev " << event.device << "  " << event.len << " slots timed out";
      break;
    case telemetry::EventKind::kNicRxError:
      out << "dev " << event.device << "  pkt " << event.len << "B dropped";
      break;
    case telemetry::EventKind::kFaultInjected:
      out << "site #" << event.aux << "  magnitude " << event.len;
      break;
    case telemetry::EventKind::kFaultRecovered:
      out << "dev " << event.device << "  recovered " << event.len;
      break;
    case telemetry::EventKind::kStackDeliver:
    case telemetry::EventKind::kStackForward:
    case telemetry::EventKind::kStackDrop:
    case telemetry::EventKind::kStackSend:
    case telemetry::EventKind::kStackEcho:
      out << event.len << "B";
      break;
    case telemetry::EventKind::kSpanOpen:
      out << "span #" << event.span;
      if (event.addr != 0) {
        out << " (parent #" << event.addr << ")";
      }
      if (event.flag) {
        out << " detached";
      }
      break;
    case telemetry::EventKind::kSpanClose:
      out << "span #" << event.span << "  " << event.aux << " cycles";
      break;
    case telemetry::EventKind::kWindowOpen:
      out << "dev " << event.device << "  iova page " << fmt_hex(event.addr2)
          << "  exposed " << event.aux << "B";
      break;
    case telemetry::EventKind::kWindowClose:
      out << "dev " << event.device << "  iova page " << fmt_hex(event.addr2)
          << "  open " << event.aux << " cycles" << (event.flag ? "  DETECTED" : "");
      break;
    case telemetry::EventKind::kAttackStage:
    case telemetry::EventKind::kDkasanReport:
    case telemetry::EventKind::kSpadeFinding:
      // The site column carries the whole story for these.
      break;
    case telemetry::EventKind::kHealthBreach:
      out << "dev " << event.device << "  score " << event.aux;
      break;
    case telemetry::EventKind::kDeviceQuarantined:
    case telemetry::EventKind::kDeviceDetached:
    case telemetry::EventKind::kDeviceFencedAccess:
      out << "dev " << event.device;
      break;
    case telemetry::EventKind::kDeviceReattached:
      out << "dev " << event.device << "  attempt " << event.aux;
      break;
    case telemetry::EventKind::kNicPollDeadline:
    case telemetry::EventKind::kNvmePollDeadline:
      out << "dev " << event.device << "  budget " << event.aux << " cycles";
      break;
    case telemetry::EventKind::kNvmeSubmit:
    case telemetry::EventKind::kNvmeComplete:
    case telemetry::EventKind::kNvmeCompletionError:
      out << "dev " << event.device << "  cid " << event.aux << "  " << event.len
          << "B";
      break;
    case telemetry::EventKind::kNvmeQueueReset:
      out << "dev " << event.device << "  qid " << event.aux;
      break;
    case telemetry::EventKind::kTrustPromoted:
      // flag=1 is a promotion *refused* by the hysteresis cooldown; aux is
      // the trust rung the device would have reached.
      out << "dev " << event.device
          << (event.flag ? "  REFUSED (cooldown), wanted " : "  now ")
          << TrustRungName(event.aux);
      break;
    case telemetry::EventKind::kTrustDemoted:
      out << "dev " << event.device << "  now " << TrustRungName(event.aux)
          << " (bounce-only)";
      break;
    case telemetry::EventKind::kBounceMap:
      out << "dev " << event.device << "  kva " << fmt_hex(event.addr)
          << " -> bounce iova " << fmt_hex(event.addr2) << "  len " << event.len
          << "  copy " << event.aux << " cyc";
      break;
    case telemetry::EventKind::kBounceUnmap:
      out << "dev " << event.device << "  bounce iova " << fmt_hex(event.addr2)
          << " -> kva " << fmt_hex(event.addr) << "  len " << event.len
          << "  copy " << event.aux << " cyc";
      break;
    case telemetry::EventKind::kIncidentOpen:
      // site carries the trigger kind; flag=1 means operator-initiated.
      out << "dev " << event.device << "  incident #" << event.aux
          << (event.flag ? "  (manual)" : "");
      break;
    case telemetry::EventKind::kIncidentReport:
      // site carries the inferred attack-class name.
      out << "dev " << event.device << "  incident #" << event.aux << " classified";
      break;
    case telemetry::EventKind::kBounceSyncCpu:
      out << "dev " << event.device << "  bounce iova " << fmt_hex(event.addr2)
          << " -> kva " << fmt_hex(event.addr) << "  len " << event.len
          << "  copy " << event.aux << " cyc";
      break;
    case telemetry::EventKind::kBounceSyncDevice:
      out << "dev " << event.device << "  kva " << fmt_hex(event.addr)
          << " -> bounce iova " << fmt_hex(event.addr2) << "  len " << event.len
          << "  copy " << event.aux << " cyc";
      break;
  }
  return out.str();
}

// The origin an event belongs to: which subsystem's story it tells. This is
// the vocabulary behind `--filter origin=<name>` and `--list-origins`.
const char* EventOrigin(const telemetry::Event& event) {
  switch (event.kind) {
    case telemetry::EventKind::kDmaMap:
    case telemetry::EventKind::kDmaUnmap:
    case telemetry::EventKind::kDmaSync:
    case telemetry::EventKind::kCpuAccess:
      return "dma";
    case telemetry::EventKind::kIotlbInvalidate:
    case telemetry::EventKind::kIommuFlush:
    case telemetry::EventKind::kIommuFault:
    case telemetry::EventKind::kStaleIotlbHit:
      return "iommu";
    case telemetry::EventKind::kSlabAlloc:
    case telemetry::EventKind::kSlabFree:
    case telemetry::EventKind::kFragAlloc:
    case telemetry::EventKind::kFragFree:
      return "alloc";
    case telemetry::EventKind::kNicRx:
    case telemetry::EventKind::kNicTx:
    case telemetry::EventKind::kNicTxReset:
    case telemetry::EventKind::kXdpDrop:
    case telemetry::EventKind::kXdpTx:
    case telemetry::EventKind::kNicRxError:
    case telemetry::EventKind::kNicPollDeadline:
      return "nic";
    case telemetry::EventKind::kStackDeliver:
    case telemetry::EventKind::kStackForward:
    case telemetry::EventKind::kStackDrop:
    case telemetry::EventKind::kStackSend:
    case telemetry::EventKind::kStackEcho:
      return "stack";
    case telemetry::EventKind::kAttackStage:
      return "attack";
    case telemetry::EventKind::kDkasanReport:
      return "dkasan";
    case telemetry::EventKind::kSpadeFinding:
      return "spade";
    case telemetry::EventKind::kFaultInjected:
    case telemetry::EventKind::kFaultRecovered:
      return "fault";
    case telemetry::EventKind::kSpanOpen:
    case telemetry::EventKind::kSpanClose:
      return "span";
    case telemetry::EventKind::kWindowOpen:
    case telemetry::EventKind::kWindowClose:
      return "window";
    case telemetry::EventKind::kHealthBreach:
    case telemetry::EventKind::kDeviceQuarantined:
    case telemetry::EventKind::kDeviceReattached:
    case telemetry::EventKind::kDeviceDetached:
    case telemetry::EventKind::kDeviceFencedAccess:
      return "recovery";
    case telemetry::EventKind::kNvmeSubmit:
    case telemetry::EventKind::kNvmeComplete:
    case telemetry::EventKind::kNvmeCompletionError:
    case telemetry::EventKind::kNvmeQueueReset:
    case telemetry::EventKind::kNvmePollDeadline:
      return "nvme";
    case telemetry::EventKind::kTrustPromoted:
    case telemetry::EventKind::kTrustDemoted:
    case telemetry::EventKind::kBounceMap:
    case telemetry::EventKind::kBounceUnmap:
    case telemetry::EventKind::kBounceSyncCpu:
    case telemetry::EventKind::kBounceSyncDevice:
      return "policy";
    case telemetry::EventKind::kIncidentOpen:
    case telemetry::EventKind::kIncidentReport:
      return "forensics";
  }
  return "unknown";
}

// --filter origin=<name>: keep only rows from that subsystem's story.
// `origin=fault` keeps its historical wide net — the engine's own events plus
// recovery/drop accounting published on its behalf (kNicRxError, fault:*
// sites) — so existing invocations keep seeing the full injection story.
bool MatchesOrigin(const telemetry::Event& event, const std::string& origin) {
  if (origin == "fault") {
    return event.kind == telemetry::EventKind::kFaultInjected ||
           event.kind == telemetry::EventKind::kFaultRecovered ||
           event.kind == telemetry::EventKind::kNicRxError ||
           event.site.rfind("fault:", 0) == 0;
  }
  return origin == EventOrigin(event);
}

struct Options {
  std::string format = "timeline";
  telemetry::Severity min_severity = telemetry::Severity::kTrace;
  size_t limit = SIZE_MAX;
  std::string origin;  // empty = no origin filter
  bool list_origins = false;
  uint64_t span_root = 0;  // 0 = no subtree filter
};

// --list-origins: enumerate the origins present in the capture with event
// counts, so `--filter origin=...` is discoverable without reading the code.
int ListOrigins(const std::vector<telemetry::Event>& events) {
  std::map<std::string, size_t> counts;
  for (const telemetry::Event& event : events) {
    ++counts[EventOrigin(event)];
  }
  for (const auto& [origin, count] : counts) {
    std::printf("%-10s %zu events\n", origin.c_str(), count);
  }
  std::printf("\n%zu events total; replay one story with --filter origin=<name>\n",
              events.size());
  return 0;
}

int Timeline(const std::vector<telemetry::Event>& events, const Options& opts,
             const std::unordered_set<uint64_t>& mask) {
  size_t shown = 0;
  size_t skipped = 0;
  uint64_t prev_cycle = 0;
  bool have_prev = false;
  for (const telemetry::Event& event : events) {
    if (shown >= opts.limit) {
      break;
    }
    if (event.severity < opts.min_severity ||
        (!opts.origin.empty() && !MatchesOrigin(event, opts.origin)) ||
        (!mask.empty() && mask.count(event.span) == 0)) {
      ++skipped;
      continue;
    }
    const uint64_t delta = have_prev ? event.cycle - prev_cycle : 0;
    prev_cycle = event.cycle;
    have_prev = true;
    const std::string detail = DescribeEvent(event);
    std::printf("%10llu cyc (+%-8llu) %-2s %-16s %s%s%s%s\n",
                static_cast<unsigned long long>(event.cycle),
                static_cast<unsigned long long>(delta), SeverityMarker(event.severity),
                std::string(telemetry::EventKindName(event.kind)).c_str(), detail.c_str(),
                event.site.empty() ? "" : (detail.empty() ? "" : "  "),
                event.site.empty() ? "" : "[",
                event.site.empty() ? "" : (event.site + "]").c_str());
    ++shown;
  }
  std::printf("\n%zu events shown", shown);
  if (skipped > 0) {
    std::printf(", %zu filtered out", skipped);
  }
  std::printf("\n");
  return 0;
}

int Render(const std::string& csv, const Options& opts) {
  if (csv.empty()) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }
  if (csv.rfind("seq,", 0) != 0) {
    std::fprintf(stderr, "not a trace CSV (missing header)\n");
    return 1;
  }
  const std::vector<telemetry::Event> events = telemetry::ParseTraceCsv(csv);
  if (opts.list_origins) {
    return ListOrigins(events);
  }

  std::unordered_set<uint64_t> mask;
  trace::SpanForest forest;
  const bool needs_forest = opts.span_root != 0 || opts.format != "timeline";
  if (needs_forest) {
    forest = trace::BuildSpanForest(events);
  }
  if (opts.span_root != 0) {
    mask = trace::SubtreeMask(forest, trace::SpanId{opts.span_root});
    if (mask.empty()) {
      std::fprintf(stderr, "span %llu not found in trace\n",
                   static_cast<unsigned long long>(opts.span_root));
      return 1;
    }
  }

  if (opts.format == "timeline") {
    return Timeline(events, opts, mask);
  }
  if (opts.format == "chrome") {
    const std::vector<trace::Instant> instants =
        trace::CollectInstants(events, telemetry::Severity::kWarn);
    std::fputs(trace::ChromeTraceJson(forest, instants, mask).c_str(), stdout);
    return 0;
  }
  if (opts.format == "flame") {
    const std::string stacks = trace::CollapsedStacks(forest, mask);
    if (stacks.empty()) {
      std::fprintf(stderr, "no spans in trace (was tracing enabled?)\n");
      return 1;
    }
    std::fputs(stacks.c_str(), stdout);
    return 0;
  }
  std::fprintf(stderr, "unknown format: %s (supported: timeline, chrome, flame)\n",
               opts.format.c_str());
  return 1;
}

// --demo: a small deferred-mode workload whose trace shows the Figure-6
// window end to end: map, device DMA, unmap (deferred), stale device write
// through the warm IOTLB entry, then the periodic flush. Tracing is on, so
// the same run demonstrates spans and vulnerability windows.
std::string DemoTraceCsv() {
  core::MachineConfig config;
  config.seed = 42;
  config.phys_pages = 4096;
  config.telemetry.enabled = true;
  config.trace.enabled = true;
  core::Machine machine{config};
  const DeviceId dev{1};
  machine.iommu().AttachDevice(dev);

  Kva buf = *machine.slab().Kmalloc(2048, "demo_io_buf");
  std::vector<uint8_t> payload(64, 0xab);
  auto iova = machine.dma().MapSingle(dev, buf, 2048, dma::DmaDirection::kFromDevice,
                                      "demo_map_rx");
  (void)machine.iommu().DeviceWrite(dev, *iova, payload);  // warms the IOTLB
  (void)machine.dma().UnmapSingle(dev, *iova, 2048, dma::DmaDirection::kFromDevice);
  // Deferred mode: the stale entry still translates until the flush.
  (void)machine.iommu().DeviceWrite(dev, *iova, payload);
  machine.clock().AdvanceUs(10001);
  machine.iommu().ProcessDeferredTimer();
  (void)machine.slab().Kfree(buf);
  return machine.telemetry().ExportTraceCsv();
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool demo = false;
  Options opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--format" && i + 1 < argc) {
      opts.format = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      opts.format = arg.substr(9);
    } else if (arg == "--span" && i + 1 < argc) {
      opts.span_root = std::strtoull(argv[++i], nullptr, 10);
      if (opts.span_root == 0) {
        std::fprintf(stderr, "--span wants a nonzero span id\n");
        return 1;
      }
    } else if (arg == "--filter" && i + 1 < argc) {
      const std::string filter = argv[++i];
      if (filter.rfind("origin=", 0) != 0 || filter.size() == 7) {
        std::fprintf(stderr,
                     "unknown filter: %s (syntax: origin=<name>; see --list-origins)\n",
                     filter.c_str());
        return 1;
      }
      opts.origin = filter.substr(7);
    } else if (arg == "--list-origins") {
      opts.list_origins = true;
    } else if (arg == "--min-severity" && i + 1 < argc) {
      auto severity = telemetry::SeverityFromName(argv[++i]);
      if (!severity.has_value()) {
        std::fprintf(stderr, "unknown severity: %s\n", argv[i]);
        return 1;
      }
      opts.min_severity = *severity;
    } else if (arg == "--limit" && i + 1 < argc) {
      opts.limit = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: trace <trace.csv> [--format timeline|chrome|flame] [--span ID]\n"
          "             [--min-severity trace|info|warn|critical] [--limit N]\n"
          "             [--filter origin=<name>] [--list-origins]\n"
          "       trace --demo [--format ...]\n"
          "\n"
          "filter syntax:\n"
          "  --filter origin=<name>  keep only events from one subsystem's story.\n"
          "                          Origins: dma, iommu, alloc, nic, nvme, stack,\n"
          "                          fault, recovery, policy, forensics, span, window,\n"
          "                          attack, dkasan, spade. origin=fault additionally keeps the\n"
          "                          recovery/drop accounting published on the\n"
          "                          engine's behalf (kNicRxError, fault:* sites).\n"
          "  --list-origins          enumerate the origins present in the capture\n"
          "                          (with event counts) instead of rendering it.\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 1;
    } else {
      path = arg;
    }
  }

  std::string csv;
  if (demo) {
    csv = DemoTraceCsv();
  } else if (path.empty()) {
    std::fprintf(stderr, "no trace file given (try --demo or --help)\n");
    return 1;
  } else {
    std::ifstream in{path};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    csv = buffer.str();
  }
  return Render(csv, opts);
}
