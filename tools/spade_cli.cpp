// spade — standalone CLI for the static analyzer (the [46] release).
//
// Usage:
//   spade [--dir <corpus-dir>] [--trace] [--summary] [--fail-on-findings]
//
//   --dir DIR            scan all .c files under DIR (default: repo corpus)
//   --trace              print the Figure-2 style backtrace for every finding
//   --summary            print the Table-2 summary (default when no flag)
//   --json               emit findings as a JSON array (machine-readable)
//   --fail-on-findings   exit 2 when any callback exposure is found (CI gate)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "spade/analyzer.h"
#include "spade/corpus.h"

using namespace spv;

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void PrintJson(const std::vector<spade::SiteFinding>& findings) {
  std::printf("[\n");
  for (size_t i = 0; i < findings.size(); ++i) {
    const spade::SiteFinding& f = findings[i];
    std::printf("  {\"file\": \"%s\", \"line\": %d, \"function\": \"%s\", "
                "\"callee\": \"%s\", \"exposed_struct\": \"%s\", "
                "\"callbacks_exposed\": %s, \"direct_callbacks\": %u, "
                "\"spoofable_callbacks\": %u, \"shared_info_mapped\": %s, "
                "\"type_c\": %s, \"private_data\": %s, \"stack_mapped\": %s, "
                "\"unresolved\": %s, \"possible_false_positive\": %s}%s\n",
                JsonEscape(f.file).c_str(), f.line, JsonEscape(f.function).c_str(),
                JsonEscape(f.callee).c_str(), JsonEscape(f.exposed_struct).c_str(),
                f.callbacks_exposed ? "true" : "false", f.direct_callbacks,
                f.spoofable_callbacks, f.shared_info_mapped ? "true" : "false",
                f.type_c ? "true" : "false", f.private_data ? "true" : "false",
                f.stack_mapped ? "true" : "false", f.unresolved ? "true" : "false",
                f.possible_false_positive ? "true" : "false",
                i + 1 < findings.size() ? "," : "");
  }
  std::printf("]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = spade::DefaultCorpusDir();
  bool trace = false;
  bool summary = false;
  bool json = false;
  bool fail_on_findings = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fail-on-findings") {
      fail_on_findings = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: spade [--dir DIR] [--trace] [--summary] [--json] [--fail-on-findings]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 1;
    }
  }
  if (!trace && !summary && !json) {
    summary = true;
  }

  spade::SpadeAnalyzer analyzer;
  auto stats = spade::LoadCorpusDirectory(analyzer, dir);
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  if (stats->files_failed > 0) {
    std::fprintf(stderr, "warning: %zu files could not be parsed (complex constructs)\n",
                 stats->files_failed);
    for (const std::string& failure : stats->failures) {
      std::fprintf(stderr, "  %s\n", failure.c_str());
    }
  }

  auto findings = analyzer.Analyze();
  if (!findings.ok()) {
    std::fprintf(stderr, "analysis error: %s\n", findings.status().ToString().c_str());
    return 1;
  }

  uint64_t exposures = 0;
  for (const spade::SiteFinding& finding : *findings) {
    if (finding.callbacks_exposed || finding.stack_mapped || finding.private_data) {
      ++exposures;
    }
    if (!trace) {
      continue;
    }
    std::printf("--- %s:%d  %s() -> %s ---\n", finding.file.c_str(), finding.line,
                finding.function.c_str(), finding.callee.c_str());
    int n = 1;
    for (const std::string& line : finding.trace) {
      std::printf("[%d] %s\n", n++, line.c_str());
    }
    std::printf("\n");
  }

  if (json) {
    PrintJson(*findings);
  }
  if (summary) {
    std::printf("%s", analyzer.Summarize(*findings).ToString().c_str());
  }
  if (fail_on_findings && exposures > 0) {
    std::fprintf(stderr, "spade: %llu exposing call sites found\n",
                 static_cast<unsigned long long>(exposures));
    return 2;
  }
  return 0;
}
