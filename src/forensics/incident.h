// spv::forensics — the incident engine (ISSUE 9 tentpole, part 2).
//
// An EventSink on the telemetry hub that turns a detector firing into a
// frozen, deterministic JSON *incident report*. Trigger kinds — D-KASAN
// reports, SPADE findings, stale-IOTLB hits, health breaches, quarantines,
// trust demotions — freeze the flight recorder's evidence for the implicated
// device at that instant: the reconstructed access timeline, the implicated
// mapping's full map→access→unmap→flush lifecycle, the WindowTracker windows
// that overlapped it, the trust-ladder and recovery state at trigger time,
// and an attack-class inference labeling the incident as paper type (a)–(d),
// poisoned completion, or unknown — from recorded evidence alone, never from
// detector-internal state.
//
// Classifier rules, applied in order (first match wins):
//   1. poisoned_completion — the timeline holds a stale-IOTLB hit: a
//      translation was served after its mapping's unmap (the Fig. 6 window
//      the deferred-completion storage attack rides).
//   2. class_c — two mapping lives shared a physical (KVA) page under
//      distinct IOVA pages with overlapping lifetimes, and after the older
//      life's unmap the device reached bytes in the *older* life's sub-page
//      range through the survivor's IOVA page (the double-mapping alias).
//   3. class_a — a device WRITE with no owning mapping landed inside the
//      IOVA page of a live mapping but outside its byte range: the
//      off-the-end sub-page corruption of a co-located neighbour.
//   4. class_b / class_d — the READ analogue (sub-page co-location harvest);
//      split on the implicated mapping's provenance: a page-frag-carved
//      metadata segment (site mentions prp/seg/frag, or a tiny buffer)
//      means the PRP/page_frag class (b), anything else the slab
//      co-location exfiltration class (d).
//   5. unknown.
//
// Trust and recovery snapshots arrive through injected std::function
// providers, so spv_forensics never links spv_policy / spv_recovery — the
// Machine wires lambdas over whatever engines it actually runs.
//
// Rate limiting: a global max_incidents cap plus a per-(device, trigger)
// cooldown in sim cycles, so a stale-hit storm yields one report, not one
// per access. Manual OpenIncident() lets an operator (or a test replaying
// an attack that fires no automatic detector) freeze evidence on demand.

#ifndef SPV_FORENSICS_INCIDENT_H_
#define SPV_FORENSICS_INCIDENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/clock.h"
#include "base/types.h"
#include "forensics/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "trace/window_tracker.h"

namespace spv::forensics {

enum class AttackClass : uint8_t {
  kUnknown = 0,
  kClassA,              // sub-page off-the-end write (neighbour corruption)
  kClassB,              // PRP/page_frag metadata segment co-location read
  kClassC,              // one physical page under two IOVAs (double mapping)
  kClassD,              // slab co-location page-wide exfiltration read
  kPoisonedCompletion,  // completion forged, data phase rode a stale window
};

std::string_view AttackClassName(AttackClass c);

// Evidence-only classification; exposed for tests. `implicated_out` (may be
// null) receives the index into `ledger` of the implicated mapping life, or
// SIZE_MAX when no life could be attributed.
AttackClass ClassifyEvidence(const std::vector<FlightRecord>& timeline,
                             const std::vector<MappingLife>& ledger,
                             size_t* implicated_out);

struct Incident {
  uint64_t id = 0;
  uint64_t cycle = 0;    // trigger time (sim cycles)
  uint32_t device = 0;
  std::string trigger;   // telemetry kind name, or "manual"
  std::string reason;    // trigger event site / operator reason
  AttackClass inferred = AttackClass::kUnknown;
  size_t implicated = SIZE_MAX;          // index into `ledger`
  std::vector<FlightRecord> timeline;    // last timeline_limit records
  std::vector<MappingLife> ledger;       // full ledger snapshot at freeze
  std::string windows_json;              // overlapping WindowTracker windows
  std::string trust_json;                // "null" without a policy engine
  std::string recovery_json;             // "null" without a recovery manager
};

class IncidentEngine : public telemetry::EventSink {
 public:
  // Returns a serialized JSON value describing the device's state in the
  // providing subsystem, or "" / "null" when the device is unknown there.
  using StateSnapshotFn = std::function<std::string(uint32_t device)>;

  // `recorder` may be null (reports then carry empty evidence); `clock` must
  // outlive the engine. The engine does not add itself to the hub — the
  // owner wires AddSink/RemoveSink (the WindowTracker convention).
  IncidentEngine(telemetry::Hub& hub, FlightRecorder* recorder,
                 const SimClock* clock, ForensicsConfig config);

  void set_window_tracker(const trace::WindowTracker* tracker) {
    tracker_ = tracker;
  }
  void set_trust_provider(StateSnapshotFn fn) { trust_ = std::move(fn); }
  void set_recovery_provider(StateSnapshotFn fn) { recovery_ = std::move(fn); }

  void OnEvent(const telemetry::Event& event) override;

  // Operator-initiated freeze: same evidence pipeline, trigger "manual".
  // Bypasses the cooldown (an explicit ask is never rate-limited) but not
  // the max_incidents cap.
  void OpenIncident(DeviceId device, std::string_view reason);

  size_t incident_count() const;
  uint64_t suppressed() const;  // triggers dropped by cooldown / cap

  // Deterministic exports: fixed field order, integers, sim-cycle timebase.
  // ReportsJson is the full document ({"count","suppressed","incidents":[…],
  // "recorder":{…}}); SummaryJson the per-trigger / per-class rollup the
  // soak report embeds.
  std::string ReportsJson() const;
  std::string SummaryJson() const;

 private:
  void Freeze(DeviceId device, std::string_view trigger, std::string_view reason,
              bool manual);
  std::string WindowsJson(uint32_t device, uint64_t from_cycle,
                          uint64_t to_cycle) const;

  telemetry::Hub& hub_;
  FlightRecorder* recorder_;
  const SimClock* clock_;
  ForensicsConfig config_;
  const trace::WindowTracker* tracker_ = nullptr;
  StateSnapshotFn trust_;
  StateSnapshotFn recovery_;

  // Guards incidents_/cooldown state: freezes may run on the MT drainer
  // thread while a test thread polls counts. Publishes happen outside it.
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::vector<Incident> incidents_;
  std::map<std::pair<uint32_t, std::string>, uint64_t> last_trigger_cycle_;
  uint64_t next_id_ = 1;
  uint64_t suppressed_ = 0;
};

}  // namespace spv::forensics

#endif  // SPV_FORENSICS_INCIDENT_H_
