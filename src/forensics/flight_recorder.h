// spv::forensics — the DMA flight recorder (ISSUE 9 tentpole, part 1).
//
// Every device-side transaction at the IOMMU boundary (reads, writes,
// translation faults, stale-IOTLB hits, flush edges) and every mapping
// lifecycle edge from the DMA API (map/unmap, direct or bounced) lands in a
// bounded per-device, per-CPU ring of FlightRecords. The recorder is the
// evidence substrate the incident engine freezes when a detector fires: it
// answers "what exactly did the device do, to which mappings, in what
// order, and on which CPU" after the fact, from recorded state alone.
//
// Design rules, in the PR-7 telemetry-ring tradition:
//   * bounded memory — fixed-capacity rings that overwrite the *oldest*
//     record when full (forensics wants the most recent history, unlike the
//     never-overwrite SPSC producer rings), with drops accounted by the
//     severity class of the record that was lost: losing a fault or stale
//     hit bumps `dropped_critical`, the same fail-loud parity the telemetry
//     trace ring keeps (`TraceRing::dropped(Severity::kCritical)`);
//   * near-zero cost when disabled — every hook in Iommu/DmaApi guards on a
//     null recorder pointer, so a machine without forensics pays one branch;
//   * pure observer — recording never advances SimClock, so enabling the
//     recorder cannot move a single sim-cycle quantile (the bench gate);
//   * thread-safe snapshots — each ring and each ledger is guarded by an
//     atomic_flag spinlock (the Histogram::Record idiom), so kThreads
//     workers record concurrently while the incident engine snapshots from
//     the drainer thread, TSan-clean.
//
// Layering: spv_forensics depends only on spv_base + spv_telemetry +
// spv_trace, so spv_iommu and spv_dma can link it without cycles. The
// recorder never sees dma:: or iommu:: types — directions arrive as raw
// uint8_t and addresses as the base vocabulary types.

#ifndef SPV_FORENSICS_FLIGHT_RECORDER_H_
#define SPV_FORENSICS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/clock.h"
#include "base/exec.h"
#include "base/types.h"

namespace spv::forensics {

// What a FlightRecord witnessed. kStaleHit and kFault are the critical
// class for drop accounting; everything else is the info class.
enum class RecordOp : uint8_t {
  kMap = 0,      // DmaApi installed a translation (gpa carries the KVA)
  kUnmap,        // DmaApi removed it (translation may linger in the IOTLB)
  kDeviceRead,   // device-side read translated and served
  kDeviceWrite,  // device-side write translated and served
  kStaleHit,     // a translation was served from the IOTLB after its unmap
  kFault,        // translation failed: no live mapping, no cached entry
  kFlush,        // an IOTLB invalidation covered this range (strict/deferred)
  kSyncCpu,      // bounce slot handed to the CPU (sync_for_cpu copy-out)
  kSyncDevice,   // bounce slot re-armed for the device (scrub + copy-in)
};

std::string_view RecordOpName(RecordOp op);
bool RecordOpCritical(RecordOp op);

// One device-side transaction or mapping edge, ~56 bytes, trivially
// copyable. `gpa` is the translated physical address for device ops and the
// kernel-virtual address for map/unmap edges; `generation` links the record
// to the MappingLife entry it went through (0 = no live mapping matched).
struct FlightRecord {
  uint64_t cycle = 0;
  uint64_t seq = 0;  // per-ring monotonic; merge tie-breaker
  uint32_t cpu = 0;
  uint32_t device = 0;
  RecordOp op = RecordOp::kMap;
  uint8_t dir = 0;  // dma::DmaDirection as raw u8 (0 on device ops)
  bool bounced = false;
  uint64_t iova = 0;
  uint64_t gpa = 0;
  uint64_t len = 0;
  uint64_t generation = 0;
};

// The full map→access→unmap→flush lifecycle of one mapping, kept in a
// bounded per-device ledger. Generations are per-device monotonic, bumped
// on every map edge, so an access record names exactly one life.
struct MappingLife {
  uint64_t generation = 0;
  uint32_t device = 0;
  uint64_t iova = 0;
  uint64_t kva = 0;
  uint64_t len = 0;
  uint8_t dir = 0;
  bool bounced = false;
  std::string site;
  uint64_t map_cycle = 0;
  uint64_t unmap_cycle = 0;  // 0 = still live
  uint64_t flush_cycle = 0;  // 0 = translation never (yet) invalidated
  uint64_t accesses = 0;     // device reads+writes served through it
  uint64_t stale_hits = 0;   // translations served after unmap_cycle
  uint64_t faults = 0;       // faults attributed to its IOVA range
};

struct ForensicsConfig {
  bool enabled = false;          // null recorder when false: one-branch cost
  uint32_t ring_capacity = 1024;    // FlightRecords per (device, CPU) ring
  uint32_t ledger_capacity = 128;   // MappingLife entries per device
  uint32_t num_cpus = 1;            // rings per device
  // Incident engine knobs (consumed by IncidentEngine, carried here so one
  // MachineConfig member arms the whole layer).
  uint32_t max_incidents = 32;           // hard cap on frozen reports
  uint64_t cooldown_cycles = 200'000;    // per (device, trigger) rate limit
  uint32_t timeline_limit = 96;          // records exported per report
};

class FlightRecorder {
 public:
  FlightRecorder(const SimClock* clock, ForensicsConfig config);

  const ForensicsConfig& config() const { return config_; }

  // ---- Hook entry points (hot path; called with recorder != nullptr) -----------

  // Mapping installed. Returns the generation assigned to this life.
  void RecordMap(DeviceId device, Iova iova, Kva kva, uint64_t len, uint8_t dir,
                 bool bounced, std::string_view site);
  void RecordUnmap(DeviceId device, Iova iova, uint64_t len, uint8_t dir,
                   bool bounced);
  // Device-side access served for one in-page chunk (gpa = translated phys).
  void RecordAccess(DeviceId device, Iova iova, uint64_t gpa, uint64_t len,
                    bool is_write);
  // Translation served from the IOTLB after the mapping was torn down.
  void RecordStaleHit(DeviceId device, Iova page_iova, uint64_t gpa);
  void RecordFault(DeviceId device, Iova iova, uint64_t len, bool is_write);
  // IOTLB invalidation covering [page_iova, page_iova + pages) landed.
  void RecordFlush(DeviceId device, Iova page_iova, uint64_t pages);
  // Sync-mode ownership handoff on a persistent bounce (sync_for_cpu when
  // `for_cpu`, else sync_for_device). Linked to the covering mapping life
  // like unmap edges, so ledger cross-checks see the full sync history.
  void RecordSync(DeviceId device, Iova iova, uint64_t len, uint8_t dir,
                  bool for_cpu, bool bounced);

  // ---- Evidence snapshots (incident engine / exports) --------------------------

  // Merged per-device timeline across all CPU rings, oldest first, ordered
  // by (cycle, cpu, seq) — deterministic for deterministic runs.
  std::vector<FlightRecord> SnapshotTimeline(DeviceId device) const;
  // The device's mapping ledger, oldest life first.
  std::vector<MappingLife> SnapshotLedger(DeviceId device) const;

  // Totals across every ring, by drop class.
  uint64_t total_recorded() const;
  uint64_t total_dropped() const;
  uint64_t total_dropped_critical() const;
  uint64_t ledger_dropped() const;

  // Deterministic per-ring drop accounting, `dropped_critical` parity with
  // the telemetry trace ring: {"rings":[{"device","cpu","recorded",
  // "dropped","dropped_critical"}...],"ledgers":[...]}. Sorted by (device,
  // cpu); embedded in incident reports and the soak JSON.
  std::string AccountingJson() const;

 private:
  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    std::vector<FlightRecord> slots;
    uint64_t next_seq = 0;  // accepted records; next slot = seq % capacity
    uint64_t dropped_info = 0;
    uint64_t dropped_critical = 0;
    mutable std::atomic_flag lock = ATOMIC_FLAG_INIT;

    void Push(const FlightRecord& record);
    std::vector<FlightRecord> Snapshot() const;
  };

  // Per-device lane: one ring per CPU plus the mapping ledger.
  struct Lane {
    std::vector<std::unique_ptr<Ring>> rings;
    std::deque<MappingLife> ledger;
    uint64_t next_generation = 1;
    uint64_t ledger_dropped = 0;
    mutable std::atomic_flag ledger_lock = ATOMIC_FLAG_INIT;
  };

  Lane& LaneFor(DeviceId device);
  const Lane* FindLane(DeviceId device) const;
  Ring& RingFor(Lane& lane) const;
  void Push(Lane& lane, FlightRecord record);

  const SimClock* clock_;
  ForensicsConfig config_;
  // Lane structure is append-only; the spinlock guards map mutation and
  // lookup so kThreads workers can fault in lanes for hot-plugged devices.
  mutable std::atomic_flag lanes_lock_ = ATOMIC_FLAG_INIT;
  std::map<uint32_t, std::unique_ptr<Lane>> lanes_;
};

}  // namespace spv::forensics

#endif  // SPV_FORENSICS_FLIGHT_RECORDER_H_
