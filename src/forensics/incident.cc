#include "forensics/incident.h"

#include <algorithm>

namespace spv::forensics {

namespace {

class SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag& flag) : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SpinGuard() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag& flag_;
};

bool LifetimesOverlap(const MappingLife& a, const MappingLife& b) {
  const uint64_t a_end = a.unmap_cycle == 0 ? UINT64_MAX : a.unmap_cycle;
  const uint64_t b_end = b.unmap_cycle == 0 ? UINT64_MAX : b.unmap_cycle;
  return a.map_cycle <= b_end && b.map_cycle <= a_end;
}

bool LiveAt(const MappingLife& life, uint64_t cycle) {
  return life.map_cycle <= cycle &&
         (life.unmap_cycle == 0 || cycle <= life.unmap_cycle);
}

// The sub-page byte range a life occupies inside its first KVA page.
void SubPageRange(const MappingLife& life, uint64_t* begin, uint64_t* end) {
  *begin = life.kva & kPageMask;
  const uint64_t span = *begin + life.len;
  *end = span < kPageSize ? span : kPageSize;
}

// Provenance split for the out-of-range READ classes: a metadata segment
// carved from the page-frag pool (PRP lists and kin) names class (b); a
// plain co-located slab buffer names class (d).
bool LooksLikeMetaSegment(const MappingLife& life) {
  if (life.len != 0 && life.len <= 256) {
    return true;
  }
  return life.site.find("prp") != std::string::npos ||
         life.site.find("seg") != std::string::npos ||
         life.site.find("frag") != std::string::npos;
}

std::string NullIfEmpty(std::string json) {
  return json.empty() ? std::string("null") : json;
}

void AppendRecordJson(std::string& out, const FlightRecord& r) {
  out += "{\"cycle\":" + std::to_string(r.cycle) +
         ",\"cpu\":" + std::to_string(r.cpu) + ",\"op\":\"" +
         std::string(RecordOpName(r.op)) +
         "\",\"iova\":" + std::to_string(r.iova) +
         ",\"gpa\":" + std::to_string(r.gpa) +
         ",\"len\":" + std::to_string(r.len) +
         ",\"dir\":" + std::to_string(r.dir) +
         ",\"bounced\":" + (r.bounced ? "true" : "false") +
         ",\"generation\":" + std::to_string(r.generation) + "}";
}

void AppendLifeJson(std::string& out, const MappingLife& life) {
  out += "{\"generation\":" + std::to_string(life.generation) +
         ",\"iova\":" + std::to_string(life.iova) +
         ",\"kva\":" + std::to_string(life.kva) +
         ",\"len\":" + std::to_string(life.len) +
         ",\"dir\":" + std::to_string(life.dir) +
         ",\"bounced\":" + (life.bounced ? "true" : "false") + ",\"site\":\"" +
         telemetry::JsonEscape(life.site) +
         "\",\"map_cycle\":" + std::to_string(life.map_cycle) +
         ",\"unmap_cycle\":" + std::to_string(life.unmap_cycle) +
         ",\"flush_cycle\":" + std::to_string(life.flush_cycle) +
         ",\"accesses\":" + std::to_string(life.accesses) +
         ",\"stale_hits\":" + std::to_string(life.stale_hits) +
         ",\"faults\":" + std::to_string(life.faults) + "}";
}

}  // namespace

std::string_view AttackClassName(AttackClass c) {
  switch (c) {
    case AttackClass::kUnknown:
      return "unknown";
    case AttackClass::kClassA:
      return "class_a";
    case AttackClass::kClassB:
      return "class_b";
    case AttackClass::kClassC:
      return "class_c";
    case AttackClass::kClassD:
      return "class_d";
    case AttackClass::kPoisonedCompletion:
      return "poisoned_completion";
  }
  return "unknown";
}

AttackClass ClassifyEvidence(const std::vector<FlightRecord>& timeline,
                             const std::vector<MappingLife>& ledger,
                             size_t* implicated_out) {
  size_t implicated = SIZE_MAX;
  if (implicated_out != nullptr) {
    *implicated_out = SIZE_MAX;
  }

  auto find_generation = [&](uint64_t generation) -> size_t {
    for (size_t i = 0; i < ledger.size(); ++i) {
      if (ledger[i].generation == generation) {
        return i;
      }
    }
    return SIZE_MAX;
  };

  // Rule 1 — a translation served after its unmap is the stale window the
  // poisoned-completion storage attack (and the Fig. 6 replay) rides.
  for (auto it = timeline.rbegin(); it != timeline.rend(); ++it) {
    if (it->op == RecordOp::kStaleHit) {
      if (implicated_out != nullptr) {
        *implicated_out = find_generation(it->generation);
      }
      return AttackClass::kPoisonedCompletion;
    }
  }

  // Rule 2 — double mapping: lives A (retired) and B (the survivor) shared a
  // KVA page under distinct IOVA pages, and after A's unmap the device
  // reached A's sub-page byte range through B's IOVA page.
  for (size_t a = 0; a < ledger.size(); ++a) {
    const MappingLife& dead = ledger[a];
    if (dead.unmap_cycle == 0) {
      continue;
    }
    for (size_t b = 0; b < ledger.size(); ++b) {
      const MappingLife& alias = ledger[b];
      if (a == b || (dead.kva & ~kPageMask) != (alias.kva & ~kPageMask) ||
          (dead.iova & ~kPageMask) == (alias.iova & ~kPageMask) ||
          !LifetimesOverlap(dead, alias)) {
        continue;
      }
      uint64_t dead_begin = 0;
      uint64_t dead_end = 0;
      SubPageRange(dead, &dead_begin, &dead_end);
      for (const FlightRecord& r : timeline) {
        if ((r.op != RecordOp::kDeviceRead && r.op != RecordOp::kDeviceWrite) ||
            r.cycle < dead.unmap_cycle || !LiveAt(alias, r.cycle) ||
            (r.iova & ~kPageMask) != (alias.iova & ~kPageMask)) {
          continue;
        }
        const uint64_t off = r.iova & kPageMask;
        if (off < dead_end && off + r.len > dead_begin) {
          if (implicated_out != nullptr) {
            *implicated_out = b;
          }
          return AttackClass::kClassC;
        }
      }
    }
  }

  // Rules 3/4 — ownerless accesses touching a live mapping's IOVA page: the
  // sub-page co-location classes. generation == 0 already means no live
  // mapping contained the access, so any overlap with a live life's page is
  // by definition a reach *outside* that life's byte range — both the
  // disjoint probe (WriteU64 off the end) and the page-wide scan
  // (ReadPageQwords) that spans the mapped bytes and their neighbours.
  auto out_of_range_neighbour = [&](const FlightRecord& r) -> size_t {
    if (r.generation != 0) {
      return SIZE_MAX;  // served by a live mapping: in-range traffic
    }
    for (size_t i = 0; i < ledger.size(); ++i) {
      const MappingLife& life = ledger[i];
      if (LiveAt(life, r.cycle) &&
          (life.iova & ~kPageMask) == (r.iova & ~kPageMask)) {
        return i;
      }
    }
    return SIZE_MAX;
  };
  for (auto it = timeline.rbegin(); it != timeline.rend(); ++it) {
    if (it->op != RecordOp::kDeviceWrite) {
      continue;
    }
    if (const size_t neighbour = out_of_range_neighbour(*it); neighbour != SIZE_MAX) {
      if (implicated_out != nullptr) {
        *implicated_out = neighbour;
      }
      return AttackClass::kClassA;
    }
  }
  for (auto it = timeline.rbegin(); it != timeline.rend(); ++it) {
    if (it->op != RecordOp::kDeviceRead) {
      continue;
    }
    if (const size_t neighbour = out_of_range_neighbour(*it); neighbour != SIZE_MAX) {
      if (implicated_out != nullptr) {
        *implicated_out = neighbour;
      }
      return LooksLikeMetaSegment(ledger[neighbour]) ? AttackClass::kClassB
                                                     : AttackClass::kClassD;
    }
  }

  if (implicated_out != nullptr) {
    *implicated_out = implicated;
  }
  return AttackClass::kUnknown;
}

IncidentEngine::IncidentEngine(telemetry::Hub& hub, FlightRecorder* recorder,
                               const SimClock* clock, ForensicsConfig config)
    : hub_(hub), recorder_(recorder), clock_(clock), config_(config) {
  if (config_.timeline_limit == 0) {
    config_.timeline_limit = 1;
  }
}

void IncidentEngine::OnEvent(const telemetry::Event& event) {
  switch (event.kind) {
    case telemetry::EventKind::kDkasanReport:
    case telemetry::EventKind::kSpadeFinding:
    case telemetry::EventKind::kStaleIotlbHit:
    case telemetry::EventKind::kHealthBreach:
    case telemetry::EventKind::kDeviceQuarantined:
    case telemetry::EventKind::kTrustDemoted:
      break;
    default:
      return;  // includes our own kIncidentOpen/kIncidentReport: no recursion
  }
  Freeze(DeviceId{event.device}, telemetry::EventKindName(event.kind), event.site,
         /*manual=*/false);
}

void IncidentEngine::OpenIncident(DeviceId device, std::string_view reason) {
  Freeze(device, "manual", reason, /*manual=*/true);
}

void IncidentEngine::Freeze(DeviceId device, std::string_view trigger,
                            std::string_view reason, bool manual) {
  const uint64_t now = clock_->now();
  Incident incident;
  {
    SpinGuard guard(lock_);
    if (incidents_.size() >= config_.max_incidents) {
      ++suppressed_;
      return;
    }
    if (!manual) {
      const auto key = std::make_pair(device.value, std::string(trigger));
      const auto it = last_trigger_cycle_.find(key);
      if (it != last_trigger_cycle_.end() &&
          now - it->second < config_.cooldown_cycles) {
        ++suppressed_;
        return;
      }
      last_trigger_cycle_[key] = now;
    }
    incident.id = next_id_++;
  }

  incident.cycle = now;
  incident.device = device.value;
  incident.trigger.assign(trigger);
  incident.reason.assign(reason);
  if (recorder_ != nullptr) {
    std::vector<FlightRecord> full = recorder_->SnapshotTimeline(device);
    incident.ledger = recorder_->SnapshotLedger(device);
    incident.inferred = ClassifyEvidence(full, incident.ledger, &incident.implicated);
    if (full.size() > config_.timeline_limit) {
      full.erase(full.begin(), full.end() - config_.timeline_limit);
    }
    incident.timeline = std::move(full);
  }
  const uint64_t from =
      incident.timeline.empty() ? now : incident.timeline.front().cycle;
  incident.windows_json =
      tracker_ != nullptr ? WindowsJson(device.value, from, now) : "[]";
  incident.trust_json = trust_ ? NullIfEmpty(trust_(device.value)) : "null";
  incident.recovery_json =
      recovery_ ? NullIfEmpty(recovery_(device.value)) : "null";

  const uint64_t id = incident.id;
  const AttackClass inferred = incident.inferred;
  {
    SpinGuard guard(lock_);
    incidents_.push_back(std::move(incident));
  }

  // Announce on the bus — outside the engine lock, and only in sequential
  // dispatch: an MT-mode publish from the drainer thread would make the
  // producer rings multi-writer. In MT runs the report itself is the signal.
  if (hub_.active() && !hub_.mt()) {
    telemetry::Event open;
    open.kind = telemetry::EventKind::kIncidentOpen;
    open.severity = telemetry::Severity::kWarn;
    open.device = device.value;
    open.aux = id;
    open.flag = manual;
    open.site.assign(trigger);
    hub_.Publish(std::move(open));

    telemetry::Event sealed;
    sealed.kind = telemetry::EventKind::kIncidentReport;
    sealed.severity = telemetry::Severity::kCritical;
    sealed.device = device.value;
    sealed.aux = static_cast<uint64_t>(inferred);
    sealed.flag = manual;
    sealed.site.assign(AttackClassName(inferred));
    hub_.Publish(std::move(sealed));
  }
}

std::string IncidentEngine::WindowsJson(uint32_t device, uint64_t from_cycle,
                                        uint64_t to_cycle) const {
  std::string out = "[";
  bool first = true;
  for (const trace::Window& w : tracker_->windows()) {
    if (w.device != device || w.open_cycle > to_cycle ||
        (!w.open && w.close_cycle < from_cycle)) {
      continue;
    }
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"kind\":\"" + std::string(trace::WindowKindName(w.kind)) +
           "\",\"iova_page\":" + std::to_string(w.iova_page) +
           ",\"pages\":" + std::to_string(w.pages) +
           ",\"exposed_bytes\":" + std::to_string(w.exposed_bytes) +
           ",\"open_cycle\":" + std::to_string(w.open_cycle) +
           ",\"close_cycle\":" + std::to_string(w.close_cycle) +
           ",\"open\":" + (w.open ? "true" : "false") +
           ",\"device_hits\":" + std::to_string(w.device_hits) +
           ",\"detected\":" + (w.detected ? "true" : "false") +
           ",\"close_reason\":\"" + telemetry::JsonEscape(w.close_reason) + "\"}";
  }
  out += "]";
  return out;
}

size_t IncidentEngine::incident_count() const {
  SpinGuard guard(lock_);
  return incidents_.size();
}

uint64_t IncidentEngine::suppressed() const {
  SpinGuard guard(lock_);
  return suppressed_;
}

std::string IncidentEngine::ReportsJson() const {
  SpinGuard guard(lock_);
  std::string out = "{\"count\":" + std::to_string(incidents_.size()) +
                    ",\"suppressed\":" + std::to_string(suppressed_) +
                    ",\"incidents\":[";
  for (size_t i = 0; i < incidents_.size(); ++i) {
    const Incident& incident = incidents_[i];
    if (i != 0) {
      out += ",";
    }
    out += "{\"id\":" + std::to_string(incident.id) +
           ",\"cycle\":" + std::to_string(incident.cycle) +
           ",\"device\":" + std::to_string(incident.device) + ",\"trigger\":\"" +
           telemetry::JsonEscape(incident.trigger) + "\",\"reason\":\"" +
           telemetry::JsonEscape(incident.reason) + "\",\"inferred_class\":\"" +
           std::string(AttackClassName(incident.inferred)) + "\",\"implicated\":";
    if (incident.implicated < incident.ledger.size()) {
      AppendLifeJson(out, incident.ledger[incident.implicated]);
    } else {
      out += "null";
    }
    out += ",\"timeline\":[";
    for (size_t r = 0; r < incident.timeline.size(); ++r) {
      if (r != 0) {
        out += ",";
      }
      AppendRecordJson(out, incident.timeline[r]);
    }
    out += "],\"ledger\":[";
    for (size_t l = 0; l < incident.ledger.size(); ++l) {
      if (l != 0) {
        out += ",";
      }
      AppendLifeJson(out, incident.ledger[l]);
    }
    out += "],\"windows\":" + incident.windows_json +
           ",\"trust\":" + incident.trust_json +
           ",\"recovery\":" + incident.recovery_json + "}";
  }
  out += "],\"recorder\":";
  out += recorder_ != nullptr ? recorder_->AccountingJson() : "null";
  out += "}";
  return out;
}

std::string IncidentEngine::SummaryJson() const {
  SpinGuard guard(lock_);
  std::map<std::string, uint64_t> by_trigger;
  std::map<std::string, uint64_t> by_class;
  for (const Incident& incident : incidents_) {
    ++by_trigger[incident.trigger];
    ++by_class[std::string(AttackClassName(incident.inferred))];
  }
  std::string out = "{\"count\":" + std::to_string(incidents_.size()) +
                    ",\"suppressed\":" + std::to_string(suppressed_) +
                    ",\"by_trigger\":{";
  bool first = true;
  for (const auto& [name, count] : by_trigger) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + telemetry::JsonEscape(name) + "\":" + std::to_string(count);
  }
  out += "},\"by_class\":{";
  first = true;
  for (const auto& [name, count] : by_class) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + name + "\":" + std::to_string(count);
  }
  out += "}}";
  return out;
}

}  // namespace spv::forensics
