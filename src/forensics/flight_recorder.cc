#include "forensics/flight_recorder.h"

#include <algorithm>

namespace spv::forensics {

namespace {

// Scoped atomic_flag spinlock (the Histogram::Record idiom): ~1 uncontended
// RMW on the hot path, TSan-visible acquire/release edges.
class SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag& flag) : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SpinGuard() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag& flag_;
};

}  // namespace

std::string_view RecordOpName(RecordOp op) {
  switch (op) {
    case RecordOp::kMap:
      return "map";
    case RecordOp::kUnmap:
      return "unmap";
    case RecordOp::kDeviceRead:
      return "device_read";
    case RecordOp::kDeviceWrite:
      return "device_write";
    case RecordOp::kStaleHit:
      return "stale_hit";
    case RecordOp::kFault:
      return "fault";
    case RecordOp::kFlush:
      return "flush";
    case RecordOp::kSyncCpu:
      return "sync_cpu";
    case RecordOp::kSyncDevice:
      return "sync_device";
  }
  return "?";
}

bool RecordOpCritical(RecordOp op) {
  return op == RecordOp::kStaleHit || op == RecordOp::kFault;
}

FlightRecorder::FlightRecorder(const SimClock* clock, ForensicsConfig config)
    : clock_(clock), config_(config) {
  if (config_.ring_capacity == 0) {
    config_.ring_capacity = 1;
  }
  if (config_.ledger_capacity == 0) {
    config_.ledger_capacity = 1;
  }
  if (config_.num_cpus == 0) {
    config_.num_cpus = 1;
  }
}

void FlightRecorder::Ring::Push(const FlightRecord& record) {
  SpinGuard guard(lock);
  const size_t capacity = slots.size();
  if (next_seq >= capacity) {
    // Overwriting the oldest live record: account the drop by what is being
    // *lost*, so a ring churning device reads cannot silently swallow a
    // fault or stale hit — the trace-ring `dropped_critical` parity.
    const FlightRecord& lost = slots[next_seq % capacity];
    if (RecordOpCritical(lost.op)) {
      ++dropped_critical;
    } else {
      ++dropped_info;
    }
  }
  FlightRecord stamped = record;
  stamped.seq = next_seq;
  slots[next_seq % capacity] = stamped;
  ++next_seq;
}

std::vector<FlightRecord> FlightRecorder::Ring::Snapshot() const {
  SpinGuard guard(lock);
  const size_t capacity = slots.size();
  const uint64_t live = next_seq < capacity ? next_seq : capacity;
  std::vector<FlightRecord> out;
  out.reserve(live);
  for (uint64_t i = next_seq - live; i < next_seq; ++i) {
    out.push_back(slots[i % capacity]);
  }
  return out;
}

FlightRecorder::Lane& FlightRecorder::LaneFor(DeviceId device) {
  SpinGuard guard(lanes_lock_);
  std::unique_ptr<Lane>& slot = lanes_[device.value];
  if (slot == nullptr) {
    slot = std::make_unique<Lane>();
    slot->rings.reserve(config_.num_cpus);
    for (uint32_t c = 0; c < config_.num_cpus; ++c) {
      slot->rings.push_back(std::make_unique<Ring>(config_.ring_capacity));
    }
  }
  return *slot;
}

const FlightRecorder::Lane* FlightRecorder::FindLane(DeviceId device) const {
  SpinGuard guard(lanes_lock_);
  const auto it = lanes_.find(device.value);
  return it == lanes_.end() ? nullptr : it->second.get();
}

FlightRecorder::Ring& FlightRecorder::RingFor(Lane& lane) const {
  return *lane.rings[CurrentCpu().value % lane.rings.size()];
}

void FlightRecorder::Push(Lane& lane, FlightRecord record) {
  record.cycle = clock_->now();
  record.cpu = CurrentCpu().value;
  RingFor(lane).Push(record);
}

void FlightRecorder::RecordMap(DeviceId device, Iova iova, Kva kva, uint64_t len,
                               uint8_t dir, bool bounced, std::string_view site) {
  Lane& lane = LaneFor(device);
  FlightRecord record;
  record.device = device.value;
  record.op = RecordOp::kMap;
  record.dir = dir;
  record.bounced = bounced;
  record.iova = iova.value;
  record.gpa = kva.value;
  record.len = len;
  {
    SpinGuard guard(lane.ledger_lock);
    record.generation = lane.next_generation++;
    MappingLife life;
    life.generation = record.generation;
    life.device = device.value;
    life.iova = iova.value;
    life.kva = kva.value;
    life.len = len;
    life.dir = dir;
    life.bounced = bounced;
    life.site.assign(site);
    life.map_cycle = clock_->now();
    if (lane.ledger.size() >= config_.ledger_capacity) {
      lane.ledger.pop_front();
      ++lane.ledger_dropped;
    }
    lane.ledger.push_back(std::move(life));
  }
  Push(lane, record);
}

void FlightRecorder::RecordUnmap(DeviceId device, Iova iova, uint64_t len,
                                 uint8_t dir, bool bounced) {
  Lane& lane = LaneFor(device);
  FlightRecord record;
  record.device = device.value;
  record.op = RecordOp::kUnmap;
  record.dir = dir;
  record.bounced = bounced;
  record.iova = iova.value;
  record.len = len;
  {
    SpinGuard guard(lane.ledger_lock);
    // Latest live life at this IOVA — reverse scan so remap-at-same-IOVA
    // retires the newest generation first.
    for (auto it = lane.ledger.rbegin(); it != lane.ledger.rend(); ++it) {
      if (it->unmap_cycle == 0 && it->iova == iova.value) {
        it->unmap_cycle = clock_->now();
        record.generation = it->generation;
        record.gpa = it->kva;
        break;
      }
    }
  }
  Push(lane, record);
}

void FlightRecorder::RecordAccess(DeviceId device, Iova iova, uint64_t gpa,
                                  uint64_t len, bool is_write) {
  Lane& lane = LaneFor(device);
  FlightRecord record;
  record.device = device.value;
  record.op = is_write ? RecordOp::kDeviceWrite : RecordOp::kDeviceRead;
  record.iova = iova.value;
  record.gpa = gpa;
  record.len = len;
  {
    SpinGuard guard(lane.ledger_lock);
    for (auto it = lane.ledger.rbegin(); it != lane.ledger.rend(); ++it) {
      if (it->unmap_cycle == 0 && iova.value >= it->iova &&
          iova.value < it->iova + it->len) {
        ++it->accesses;
        record.generation = it->generation;
        break;
      }
    }
  }
  Push(lane, record);
}

void FlightRecorder::RecordStaleHit(DeviceId device, Iova page_iova, uint64_t gpa) {
  Lane& lane = LaneFor(device);
  FlightRecord record;
  record.device = device.value;
  record.op = RecordOp::kStaleHit;
  record.iova = page_iova.value;
  record.gpa = gpa;
  record.len = kPageSize;
  {
    SpinGuard guard(lane.ledger_lock);
    // The life this translation belonged to: latest *unmapped* entry whose
    // page covers the faulting page (the stale window's owner).
    for (auto it = lane.ledger.rbegin(); it != lane.ledger.rend(); ++it) {
      const uint64_t first_page = it->iova & ~kPageMask;
      const uint64_t last_page = (it->iova + (it->len ? it->len - 1 : 0)) & ~kPageMask;
      if (it->unmap_cycle != 0 && page_iova.value >= first_page &&
          page_iova.value <= last_page) {
        ++it->stale_hits;
        record.generation = it->generation;
        break;
      }
    }
  }
  Push(lane, record);
}

void FlightRecorder::RecordFault(DeviceId device, Iova iova, uint64_t len,
                                 bool is_write) {
  Lane& lane = LaneFor(device);
  FlightRecord record;
  record.device = device.value;
  record.op = RecordOp::kFault;
  record.dir = is_write ? 1 : 0;
  record.iova = iova.value;
  record.len = len;
  Push(lane, record);
}

void FlightRecorder::RecordSync(DeviceId device, Iova iova, uint64_t len,
                                uint8_t dir, bool for_cpu, bool bounced) {
  Lane& lane = LaneFor(device);
  FlightRecord record;
  record.device = device.value;
  record.op = for_cpu ? RecordOp::kSyncCpu : RecordOp::kSyncDevice;
  record.dir = dir;
  record.bounced = bounced;
  record.iova = iova.value;
  record.len = len;
  {
    SpinGuard guard(lane.ledger_lock);
    // Latest live life covering the sync'd range — syncs never retire a
    // life, they just stamp which generation the handoff belonged to.
    for (auto it = lane.ledger.rbegin(); it != lane.ledger.rend(); ++it) {
      if (it->unmap_cycle == 0 && iova.value >= it->iova &&
          iova.value < it->iova + it->len) {
        record.generation = it->generation;
        record.gpa = it->kva;
        break;
      }
    }
  }
  Push(lane, record);
}

void FlightRecorder::RecordFlush(DeviceId device, Iova page_iova, uint64_t pages) {
  Lane& lane = LaneFor(device);
  FlightRecord record;
  record.device = device.value;
  record.op = RecordOp::kFlush;
  record.iova = page_iova.value;
  record.len = pages << kPageShift;
  {
    SpinGuard guard(lane.ledger_lock);
    const uint64_t flush_base = page_iova.value;
    const uint64_t flush_end = flush_base + (pages << kPageShift);
    for (MappingLife& life : lane.ledger) {
      if (life.unmap_cycle != 0 && life.flush_cycle == 0 &&
          life.iova < flush_end && life.iova + life.len > flush_base) {
        life.flush_cycle = clock_->now();
      }
    }
  }
  Push(lane, record);
}

std::vector<FlightRecord> FlightRecorder::SnapshotTimeline(DeviceId device) const {
  const Lane* lane = FindLane(device);
  if (lane == nullptr) {
    return {};
  }
  std::vector<FlightRecord> merged;
  for (const std::unique_ptr<Ring>& ring : lane->rings) {
    std::vector<FlightRecord> part = ring->Snapshot();
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const FlightRecord& a, const FlightRecord& b) {
                     if (a.cycle != b.cycle) {
                       return a.cycle < b.cycle;
                     }
                     if (a.cpu != b.cpu) {
                       return a.cpu < b.cpu;
                     }
                     return a.seq < b.seq;
                   });
  return merged;
}

std::vector<MappingLife> FlightRecorder::SnapshotLedger(DeviceId device) const {
  const Lane* lane = FindLane(device);
  if (lane == nullptr) {
    return {};
  }
  SpinGuard guard(lane->ledger_lock);
  return std::vector<MappingLife>(lane->ledger.begin(), lane->ledger.end());
}

uint64_t FlightRecorder::total_recorded() const {
  SpinGuard guard(lanes_lock_);
  uint64_t total = 0;
  for (const auto& [device, lane] : lanes_) {
    for (const std::unique_ptr<Ring>& ring : lane->rings) {
      SpinGuard ring_guard(ring->lock);
      total += ring->next_seq;
    }
  }
  return total;
}

uint64_t FlightRecorder::total_dropped() const {
  SpinGuard guard(lanes_lock_);
  uint64_t total = 0;
  for (const auto& [device, lane] : lanes_) {
    for (const std::unique_ptr<Ring>& ring : lane->rings) {
      SpinGuard ring_guard(ring->lock);
      total += ring->dropped_info + ring->dropped_critical;
    }
  }
  return total;
}

uint64_t FlightRecorder::total_dropped_critical() const {
  SpinGuard guard(lanes_lock_);
  uint64_t total = 0;
  for (const auto& [device, lane] : lanes_) {
    for (const std::unique_ptr<Ring>& ring : lane->rings) {
      SpinGuard ring_guard(ring->lock);
      total += ring->dropped_critical;
    }
  }
  return total;
}

uint64_t FlightRecorder::ledger_dropped() const {
  SpinGuard guard(lanes_lock_);
  uint64_t total = 0;
  for (const auto& [device, lane] : lanes_) {
    SpinGuard ledger_guard(lane->ledger_lock);
    total += lane->ledger_dropped;
  }
  return total;
}

std::string FlightRecorder::AccountingJson() const {
  SpinGuard guard(lanes_lock_);
  std::string out = "{\"ring_capacity\":" + std::to_string(config_.ring_capacity) +
                    ",\"ledger_capacity\":" + std::to_string(config_.ledger_capacity) +
                    ",\"rings\":[";
  bool first = true;
  // lanes_ is an ordered map, rings are CPU-ordered: deterministic output.
  for (const auto& [device, lane] : lanes_) {
    for (size_t cpu = 0; cpu < lane->rings.size(); ++cpu) {
      const Ring& ring = *lane->rings[cpu];
      SpinGuard ring_guard(ring.lock);
      if (ring.next_seq == 0) {
        continue;  // untouched rings stay out of the report
      }
      if (!first) {
        out += ",";
      }
      first = false;
      out += "{\"device\":" + std::to_string(device) +
             ",\"cpu\":" + std::to_string(cpu) +
             ",\"recorded\":" + std::to_string(ring.next_seq) +
             ",\"dropped\":" + std::to_string(ring.dropped_info + ring.dropped_critical) +
             ",\"dropped_critical\":" + std::to_string(ring.dropped_critical) + "}";
    }
  }
  out += "],\"ledgers\":[";
  first = true;
  for (const auto& [device, lane] : lanes_) {
    SpinGuard ledger_guard(lane->ledger_lock);
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"device\":" + std::to_string(device) +
           ",\"lives\":" + std::to_string(lane->next_generation - 1) +
           ",\"retained\":" + std::to_string(lane->ledger.size()) +
           ",\"dropped\":" + std::to_string(lane->ledger_dropped) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace spv::forensics
