// Per-device health scoring off the telemetry bus (spv::recovery).
//
// The scorer is an EventSink: every published event that implicates a device
// (IOMMU faults, TX ring resets, D-KASAN reports, SPADE findings, stale-IOTLB
// hits, bad completions, poll-deadline trips) adds a configurable weight to
// that device's score. Scores decay exponentially with simulated time, so a
// burst of faults trips the threshold while the same count spread over
// seconds does not. Crossing the threshold records a *pending breach*; the
// RecoveryManager consumes breaches from Poll() — never from inside OnEvent,
// which would re-enter the Hub mid-publish.

#ifndef SPV_RECOVERY_HEALTH_H_
#define SPV_RECOVERY_HEALTH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/clock.h"
#include "base/types.h"
#include "telemetry/telemetry.h"

namespace spv::recovery {

class HealthScorer : public telemetry::EventSink {
 public:
  struct Config {
    // Signal weights. Defaults are tuned so a handful of security findings
    // (or a sustained fault storm) breach, while sporadic recoverable faults
    // decay away.
    double weight_iommu_fault = 1.0;
    double weight_ring_reset = 8.0;
    double weight_stale_iotlb_hit = 5.0;
    double weight_dkasan_report = 25.0;
    double weight_spade_finding = 25.0;
    double weight_bad_completion = 2.0;   // kNicRxError / kNvmeCompletionError
    double weight_poll_deadline = 2.0;    // kNicPollDeadline / kNvmePollDeadline
    double threshold = 24.0;              // score that triggers quarantine
    // Score half-life in simulated cycles: after this long with no new
    // signal, half the score is gone.
    uint64_t half_life_cycles = SimClock::MsToCycles(50);
  };

  explicit HealthScorer(Config config) : config_(config) {}

  // Only registered devices are scored; everything else on the bus is noise.
  void Track(DeviceId device);
  void Untrack(DeviceId device);

  // Per-device override: this device is scored with `config` (weights,
  // threshold, half-life) instead of the machine-wide one. Survives Reset();
  // used by the quirks table to pre-tune supervision per device identity.
  void SetDeviceConfig(DeviceId device, const Config& config);
  // The config actually scoring `device` (the override, or the baseline).
  const Config& ConfigFor(DeviceId device) const;

  void OnEvent(const telemetry::Event& event) override;

  // Decayed score as of `now` (0 for untracked devices).
  double ScoreAt(DeviceId device, uint64_t now) const;

  // Devices whose score crossed the threshold since the last call. Each
  // breach is reported once; Reset() re-arms a device's breach latch.
  std::vector<DeviceId> TakeBreaches();

  // Re-attach: clears the device's score and breach latch so probation
  // starts from a clean slate.
  void Reset(DeviceId device);

  const Config& config() const { return config_; }

 private:
  struct DeviceScore {
    double score = 0.0;
    uint64_t last_cycle = 0;
    bool breached = false;  // latched until Reset()
  };

  static double WeightFor(const Config& config, const telemetry::Event& event);
  static double Decayed(double score, uint64_t from, uint64_t to,
                        uint64_t half_life_cycles);

  Config config_;
  std::unordered_map<uint32_t, DeviceScore> scores_;
  std::unordered_map<uint32_t, Config> overrides_;  // per-device quirk configs
  std::vector<DeviceId> pending_breaches_;
};

}  // namespace spv::recovery

#endif  // SPV_RECOVERY_HEALTH_H_
