// spv::recovery — device quarantine, supervised re-attach, permanent detach.
//
// The paper's detection chapters (D-KASAN, SPADE) end at "we found the
// malicious device". This subsystem models what a defending OS does next:
//
//   quarantine   — atomically revoke the device's view of memory: drain its
//                  deferred flush-queue entries (no recycled IOVA may ride a
//                  still-stale IOTLB window), fence device-side DMA (distinct
//                  kRevoked status + kDeviceFencedAccess telemetry), tear the
//                  NIC rings down leak-free, and unmap every mapping the DMA
//                  API still tracks for it, while the network stack sheds the
//                  device's traffic with drop accounting;
//   re-attach    — supervised, with exponential backoff: the fence lifts, the
//                  rings refill, and the device runs on probation under the
//                  health scorer;
//   detach       — the retry budget is exhausted: the device is permanently
//                  removed from its translation domain.
//
// The whole state machine is driven from Poll() — never from inside a
// telemetry callback — and is disabled by default (MachineConfig.recovery):
// the paper's attacks must keep reproducing unless supervision is opted into.

#ifndef SPV_RECOVERY_RECOVERY_H_
#define SPV_RECOVERY_RECOVERY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/clock.h"
#include "base/status.h"
#include "base/types.h"
#include "dma/dma_api.h"
#include "iommu/iommu.h"
#include "recovery/health.h"
#include "recovery/supervised.h"
#include "telemetry/telemetry.h"
#include "trace/tracer.h"

namespace spv::recovery {

enum class DeviceState : uint8_t {
  kHealthy,      // full service
  kQuarantined,  // fenced, rings down, awaiting a re-attach slot
  kProbation,    // re-attached, watched; a clean probation restores kHealthy
  kDetached,     // retry budget exhausted; permanent
};

std::string_view DeviceStateName(DeviceState state);

// Every quarantine-hysteresis and re-attach knob in one value type: scorer
// weights, retry budget, backoff base/multiplier, probation length. The
// manager's machine-wide Config carries one as its baseline, and
// RegisterDevice accepts a per-device override so a quirks table (spv::policy)
// can pre-tune supervision per device identity.
struct RecoveryConfig {
  HealthScorer::Config health;
  // First re-attach is attempted this long after quarantine; each failed
  // probation multiplies the wait (exponential backoff).
  uint64_t reattach_backoff_cycles = SimClock::MsToCycles(10);
  double backoff_multiplier = 2.0;
  // Re-attach attempts before the device is permanently detached.
  uint32_t max_reattach_attempts = 3;
  // A device surviving probation this long returns to kHealthy with its
  // score and retry budget cleared.
  uint64_t probation_cycles = SimClock::MsToCycles(50);
};

class RecoveryManager {
 public:
  struct Config : RecoveryConfig {
    // Disabled by default: scoring and supervision cost nothing, and the
    // paper's attacks reproduce unhindered.
    bool enabled = false;
  };

  struct DeviceStatus {
    DeviceState state = DeviceState::kHealthy;
    uint32_t reattach_attempts = 0;
    uint64_t quarantines = 0;
    uint64_t quarantined_cycles = 0;  // downtime accumulated so far
  };

  RecoveryManager(iommu::Iommu& iommu, dma::DmaApi& dma, SimClock& clock,
                  telemetry::Hub& hub, Config config);
  ~RecoveryManager();

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // Optional causal span tracer for quarantine/re-attach/detach phases.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Places `device` under supervision. `driver` (may be null for driverless
  // devices) is Shutdown() on quarantine and Resume()d on re-attach; any
  // device class implementing SupervisedDriver (NIC, NVMe, ...) plugs in.
  // A non-null `tune` replaces the machine-wide RecoveryConfig for this
  // device only (scorer weights included) — the quirks-table entry point.
  void RegisterDevice(DeviceId device, SupervisedDriver* driver,
                      const RecoveryConfig* tune = nullptr);

  // The RecoveryConfig actually governing `device`: its registered override,
  // or the machine-wide baseline.
  const RecoveryConfig& effective_config(DeviceId device) const;

  // Drives the state machine: consumes health breaches (quarantining the
  // offenders), attempts due re-attaches, and promotes devices that survived
  // probation. Call from the workload loop at epoch boundaries. Returns the
  // number of state transitions performed.
  uint32_t Poll();

  // Manual quarantine (an operator action, or a test fixture). Idempotent:
  // quarantining a quarantined or detached device is a no-op returning Ok.
  // Unregistered devices are NotFound.
  Status Quarantine(DeviceId device, std::string_view reason);

  // Immediate permanent detach, skipping the retry budget.
  Status Detach(DeviceId device, std::string_view reason);

  bool enabled() const { return config_.enabled; }
  const Config& config() const { return config_; }
  HealthScorer& scorer() { return scorer_; }
  DeviceStatus device_status(DeviceId device) const;
  DeviceState state(DeviceId device) const;
  // Registered devices currently in full service (kHealthy or kProbation).
  uint32_t available_devices() const;
  uint64_t total_quarantines() const { return total_quarantines_; }
  uint64_t total_detaches() const { return total_detaches_; }

 private:
  struct Supervised {
    SupervisedDriver* driver = nullptr;
    // Per-device RecoveryConfig override (quirks); nullopt = machine default.
    std::optional<RecoveryConfig> tune;
    DeviceState state = DeviceState::kHealthy;
    uint32_t reattach_attempts = 0;
    uint64_t quarantines = 0;
    uint64_t quarantine_start = 0;     // cycle the current quarantine began
    uint64_t quarantined_cycles = 0;   // accumulated downtime
    uint64_t next_reattach_cycle = 0;  // valid in kQuarantined
    uint64_t probation_until = 0;      // valid in kProbation
    uint64_t current_backoff = 0;
  };

  const RecoveryConfig& TuneFor(const Supervised& entry) const {
    return entry.tune.has_value() ? *entry.tune : config_;
  }
  Status DoQuarantine(DeviceId device, Supervised& entry, std::string_view reason);
  void DoReattach(DeviceId device, Supervised& entry);
  void DoDetach(DeviceId device, Supervised& entry, std::string_view reason);
  void Emit(telemetry::EventKind kind, telemetry::Severity severity, DeviceId device,
            uint64_t aux, std::string site);

  iommu::Iommu& iommu_;
  dma::DmaApi& dma_;
  SimClock& clock_;
  telemetry::Hub& hub_;
  Config config_;
  HealthScorer scorer_;
  trace::Tracer* tracer_ = nullptr;
  std::map<uint32_t, Supervised> devices_;  // ordered: deterministic Poll order
  uint64_t total_quarantines_ = 0;
  uint64_t total_detaches_ = 0;
};

}  // namespace spv::recovery

#endif  // SPV_RECOVERY_RECOVERY_H_
