// SupervisedDriver: what the RecoveryManager needs from a device driver.
//
// Quarantine tears a device's host-side state down (Shutdown) and supervised
// re-attach brings it back (Resume). The first device class here was the NIC;
// keeping the contract to these two verbs is what lets a second class (the
// NVMe block driver) ride the same lifecycle without the manager knowing
// either driver's shape. The header is dependency-free on purpose: drivers
// implement it without linking spv_recovery.

#ifndef SPV_RECOVERY_SUPERVISED_H_
#define SPV_RECOVERY_SUPERVISED_H_

#include <cstdint>

#include "base/status.h"

namespace spv::recovery {

// DMA-side service limits a trust policy (spv::policy) may impose on a
// driver without knowing its shape. Zero means "driver default" for every
// field, so ApplyDmaPolicy(DmaPolicyLimits{}) restores full service.
struct DmaPolicyLimits {
  // Cap on the driver's NAPI/CQ polling budget, in sim cycles.
  uint64_t poll_deadline_cycles = 0;
  // Cap on ring occupancy: RX descriptors posted per queue (NIC) or
  // outstanding commands per IO queue (NVMe).
  uint32_t ring_limit = 0;
};

class SupervisedDriver {
 public:
  virtual ~SupervisedDriver() = default;

  // Releases every resource the driver holds for its device — mappings,
  // buffers, queue memory. Called with the device already fenced; must not
  // require device cooperation and must be leak-free (best-effort teardown:
  // report the first error, keep going).
  virtual Status Shutdown() = 0;

  // Brings the device back into service after the fence lifts (rings
  // refilled, queues re-created). Failures are not fatal to the manager: a
  // still-broken device re-breaches during probation.
  virtual Status Resume() = 0;

  // Tightens (or restores, with a zeroed struct) the driver's service limits
  // while its device sits on trust probation. Default: no-op, so drivers
  // without a meaningful clamp need no code.
  virtual void ApplyDmaPolicy(const DmaPolicyLimits& limits) { (void)limits; }
};

}  // namespace spv::recovery

#endif  // SPV_RECOVERY_SUPERVISED_H_
