#include "recovery/recovery.h"

#include <algorithm>

namespace spv::recovery {

std::string_view DeviceStateName(DeviceState state) {
  switch (state) {
    case DeviceState::kHealthy:
      return "healthy";
    case DeviceState::kQuarantined:
      return "quarantined";
    case DeviceState::kProbation:
      return "probation";
    case DeviceState::kDetached:
      return "detached";
  }
  return "?";
}

RecoveryManager::RecoveryManager(iommu::Iommu& iommu, dma::DmaApi& dma, SimClock& clock,
                                 telemetry::Hub& hub, Config config)
    : iommu_(iommu),
      dma_(dma),
      clock_(clock),
      hub_(hub),
      config_(config),
      scorer_(config.health) {
  if (config_.enabled) {
    hub_.AddSink(&scorer_);
  }
}

RecoveryManager::~RecoveryManager() {
  if (config_.enabled) {
    hub_.RemoveSink(&scorer_);
  }
}

void RecoveryManager::RegisterDevice(DeviceId device, SupervisedDriver* driver,
                                     const RecoveryConfig* tune) {
  Supervised& entry = devices_[device.value];
  entry.driver = driver;
  if (tune != nullptr) {
    entry.tune = *tune;
  }
  scorer_.Track(device);
  if (tune != nullptr) {
    scorer_.SetDeviceConfig(device, tune->health);
  }
}

const RecoveryConfig& RecoveryManager::effective_config(DeviceId device) const {
  auto it = devices_.find(device.value);
  return it == devices_.end() ? config_ : TuneFor(it->second);
}

void RecoveryManager::Emit(telemetry::EventKind kind, telemetry::Severity severity,
                           DeviceId device, uint64_t aux, std::string site) {
  if (!hub_.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = kind;
  event.severity = severity;
  event.device = device.value;
  event.aux = aux;
  event.origin = this;
  event.site = std::move(site);
  hub_.Publish(std::move(event));
}

Status RecoveryManager::Quarantine(DeviceId device, std::string_view reason) {
  auto it = devices_.find(device.value);
  if (it == devices_.end()) {
    return NotFound("device not under recovery supervision");
  }
  return DoQuarantine(device, it->second, reason);
}

Status RecoveryManager::DoQuarantine(DeviceId device, Supervised& entry,
                                     std::string_view reason) {
  if (entry.state == DeviceState::kQuarantined || entry.state == DeviceState::kDetached) {
    return OkStatus();  // idempotent: already out of service
  }
  trace::ScopedSpan span(tracer_, "recovery.quarantine");
  const uint64_t start = clock_.now();

  // Ordering is the whole point:
  //  (1) fence — device-side DMA and new maps now fail kRevoked, and the
  //      device's already-queued flush entries are drained (stale IOTLB pages
  //      invalidated before their IOVAs become reusable);
  //  (2) ring teardown — the driver's unmaps are OS-side and exempt from the
  //      fence; buffers return to their pools, nothing leaks;
  //  (3) sweep the tracker — any mapping the driver did not own (a stack
  //      buffer, a test mapping) is force-unmapped;
  //  (4) drain again — in deferred mode steps (2)/(3) queued fresh
  //      invalidations owned by this device; they must not outlive it.
  SPV_RETURN_IF_ERROR(iommu_.FenceDevice(device));
  if (entry.driver != nullptr) {
    SPV_RETURN_IF_ERROR(entry.driver->Shutdown());
  }
  Result<uint64_t> revoked = dma_.RevokeDeviceMappings(device, "recovery_quarantine");
  if (!revoked.ok()) {
    return revoked.status();
  }
  iommu_.DrainDeviceInvalidations(device);

  const RecoveryConfig& tune = TuneFor(entry);
  entry.state = DeviceState::kQuarantined;
  entry.quarantine_start = start;
  // First quarantine waits the base backoff; every re-quarantine after a
  // failed probation multiplies it (exponential backoff on a flapping device).
  entry.current_backoff =
      entry.reattach_attempts == 0
          ? tune.reattach_backoff_cycles
          : static_cast<uint64_t>(static_cast<double>(entry.current_backoff) *
                                  tune.backoff_multiplier);
  entry.next_reattach_cycle = clock_.now() + entry.current_backoff;
  ++entry.quarantines;
  ++total_quarantines_;
  Emit(telemetry::EventKind::kDeviceQuarantined, telemetry::Severity::kWarn, device,
       *revoked, std::string(reason));
  if (hub_.enabled()) {
    hub_.counter("recovery.quarantines").Add();
    hub_.histogram("recovery.quarantine_latency_cycles").Record(clock_.now() - start);
    hub_.histogram("recovery.revoked_mappings").Record(*revoked);
  }
  return OkStatus();
}

void RecoveryManager::DoReattach(DeviceId device, Supervised& entry) {
  const RecoveryConfig& tune = TuneFor(entry);
  ++entry.reattach_attempts;
  if (entry.reattach_attempts > tune.max_reattach_attempts) {
    DoDetach(device, entry, "retry budget exhausted");
    return;
  }
  trace::ScopedSpan span(tracer_, "recovery.reattach");
  (void)iommu_.UnfenceDevice(device);
  if (entry.driver != nullptr) {
    // Bring the driver's rings/queues back up. Failures here are not fatal:
    // drivers keep retrying internally, and a still-broken device re-breaches
    // during probation anyway.
    (void)entry.driver->Resume();
  }
  entry.quarantined_cycles += clock_.now() - entry.quarantine_start;
  entry.state = DeviceState::kProbation;
  entry.probation_until = clock_.now() + tune.probation_cycles;
  // Probation starts from a clean score; the breach latch re-arms.
  scorer_.Reset(device);
  Emit(telemetry::EventKind::kDeviceReattached, telemetry::Severity::kInfo, device,
       entry.reattach_attempts, "supervised re-attach");
  if (hub_.enabled()) {
    hub_.counter("recovery.reattach_attempts").Add();
    hub_.histogram("recovery.downtime_cycles")
        .Record(clock_.now() - entry.quarantine_start);
  }
}

Status RecoveryManager::Detach(DeviceId device, std::string_view reason) {
  auto it = devices_.find(device.value);
  if (it == devices_.end()) {
    return NotFound("device not under recovery supervision");
  }
  if (it->second.state == DeviceState::kDetached) {
    return OkStatus();  // idempotent
  }
  // A healthy device must pass through quarantine first so its mappings and
  // rings are torn down before the domain disappears.
  SPV_RETURN_IF_ERROR(DoQuarantine(device, it->second, reason));
  DoDetach(device, it->second, reason);
  return OkStatus();
}

void RecoveryManager::DoDetach(DeviceId device, Supervised& entry,
                               std::string_view reason) {
  trace::ScopedSpan span(tracer_, "recovery.detach");
  (void)iommu_.DetachDevice(device);
  if (entry.state == DeviceState::kQuarantined) {
    entry.quarantined_cycles += clock_.now() - entry.quarantine_start;
  }
  entry.state = DeviceState::kDetached;
  scorer_.Untrack(device);
  ++total_detaches_;
  Emit(telemetry::EventKind::kDeviceDetached, telemetry::Severity::kCritical, device,
       entry.reattach_attempts, std::string(reason));
  if (hub_.enabled()) {
    hub_.counter("recovery.permanent_detaches").Add();
  }
}

uint32_t RecoveryManager::Poll() {
  if (!config_.enabled) {
    return 0;
  }
  uint32_t transitions = 0;
  // (1) Health breaches recorded since the last poll. Probation breaches
  // re-quarantine with the retry budget intact — that is what bounds a
  // flapping device.
  for (DeviceId device : scorer_.TakeBreaches()) {
    auto it = devices_.find(device.value);
    if (it == devices_.end()) {
      continue;
    }
    Supervised& entry = it->second;
    if (entry.state == DeviceState::kHealthy || entry.state == DeviceState::kProbation) {
      const double score = scorer_.ScoreAt(device, clock_.now());
      Emit(telemetry::EventKind::kHealthBreach, telemetry::Severity::kWarn, device,
           static_cast<uint64_t>(score), "health threshold crossed");
      if (hub_.enabled()) {
        hub_.counter("recovery.health_breaches").Add();
      }
      if (DoQuarantine(device, entry, "health breach").ok()) {
        ++transitions;
      }
    }
  }
  // (2) Due re-attaches and (3) probation promotions, in device-id order.
  const uint64_t now = clock_.now();
  for (auto& [id, entry] : devices_) {
    const DeviceId device{id};
    if (entry.state == DeviceState::kQuarantined && now >= entry.next_reattach_cycle) {
      DoReattach(device, entry);
      ++transitions;
    } else if (entry.state == DeviceState::kProbation && now >= entry.probation_until) {
      entry.state = DeviceState::kHealthy;
      entry.reattach_attempts = 0;  // a clean probation restores the budget
      scorer_.Reset(device);
      ++transitions;
    }
  }
  return transitions;
}

RecoveryManager::DeviceStatus RecoveryManager::device_status(DeviceId device) const {
  auto it = devices_.find(device.value);
  if (it == devices_.end()) {
    return DeviceStatus{};
  }
  DeviceStatus out;
  out.state = it->second.state;
  out.reattach_attempts = it->second.reattach_attempts;
  out.quarantines = it->second.quarantines;
  out.quarantined_cycles = it->second.quarantined_cycles;
  if (it->second.state == DeviceState::kQuarantined) {
    out.quarantined_cycles += clock_.now() - it->second.quarantine_start;
  }
  return out;
}

DeviceState RecoveryManager::state(DeviceId device) const {
  auto it = devices_.find(device.value);
  return it == devices_.end() ? DeviceState::kHealthy : it->second.state;
}

uint32_t RecoveryManager::available_devices() const {
  uint32_t count = 0;
  for (const auto& [id, entry] : devices_) {
    if (entry.state == DeviceState::kHealthy || entry.state == DeviceState::kProbation) {
      ++count;
    }
  }
  return count;
}

}  // namespace spv::recovery
