#include "recovery/health.h"

#include <algorithm>
#include <cmath>

namespace spv::recovery {

void HealthScorer::Track(DeviceId device) { scores_.try_emplace(device.value); }

void HealthScorer::Untrack(DeviceId device) {
  scores_.erase(device.value);
  overrides_.erase(device.value);
}

void HealthScorer::SetDeviceConfig(DeviceId device, const Config& config) {
  overrides_[device.value] = config;
}

const HealthScorer::Config& HealthScorer::ConfigFor(DeviceId device) const {
  auto it = overrides_.find(device.value);
  return it == overrides_.end() ? config_ : it->second;
}

double HealthScorer::WeightFor(const Config& config, const telemetry::Event& event) {
  switch (event.kind) {
    case telemetry::EventKind::kIommuFault:
      return config.weight_iommu_fault;
    case telemetry::EventKind::kNicTxReset:
      return config.weight_ring_reset;
    case telemetry::EventKind::kStaleIotlbHit:
      return config.weight_stale_iotlb_hit;
    case telemetry::EventKind::kDkasanReport:
      return config.weight_dkasan_report;
    case telemetry::EventKind::kSpadeFinding:
      return config.weight_spade_finding;
    case telemetry::EventKind::kNicRxError:
    case telemetry::EventKind::kNvmeCompletionError:
      return config.weight_bad_completion;
    case telemetry::EventKind::kNicPollDeadline:
    case telemetry::EventKind::kNvmePollDeadline:
      return config.weight_poll_deadline;
    case telemetry::EventKind::kNvmeQueueReset:
      return config.weight_ring_reset;
    default:
      return 0.0;
  }
}

double HealthScorer::Decayed(double score, uint64_t from, uint64_t to,
                             uint64_t half_life_cycles) {
  if (score == 0.0 || to <= from || half_life_cycles == 0) {
    return score;
  }
  const double half_lives =
      static_cast<double>(to - from) / static_cast<double>(half_life_cycles);
  return score * std::exp2(-half_lives);
}

void HealthScorer::OnEvent(const telemetry::Event& event) {
  auto it = scores_.find(event.device);
  if (it == scores_.end()) {
    return;  // not a device we supervise
  }
  const Config& config = ConfigFor(DeviceId{event.device});
  const double weight = WeightFor(config, event);
  if (weight == 0.0) {
    return;
  }
  DeviceScore& entry = it->second;
  entry.score = Decayed(entry.score, entry.last_cycle, event.cycle,
                        config.half_life_cycles) +
                weight;
  entry.last_cycle = std::max(entry.last_cycle, event.cycle);
  if (!entry.breached && entry.score >= config.threshold) {
    entry.breached = true;
    pending_breaches_.push_back(DeviceId{event.device});
  }
}

double HealthScorer::ScoreAt(DeviceId device, uint64_t now) const {
  auto it = scores_.find(device.value);
  if (it == scores_.end()) {
    return 0.0;
  }
  return Decayed(it->second.score, it->second.last_cycle, now,
                 ConfigFor(device).half_life_cycles);
}

std::vector<DeviceId> HealthScorer::TakeBreaches() {
  std::vector<DeviceId> out;
  out.swap(pending_breaches_);
  return out;
}

void HealthScorer::Reset(DeviceId device) {
  auto it = scores_.find(device.value);
  if (it == scores_.end()) {
    return;
  }
  it->second = DeviceScore{};
}

}  // namespace spv::recovery
