#include "mem/page_db.h"

namespace spv::mem {

std::string PageOwnerName(PageOwner owner) {
  switch (owner) {
    case PageOwner::kFree:
      return "free";
    case PageOwner::kKernelImage:
      return "kernel-image";
    case PageOwner::kSlab:
      return "slab";
    case PageOwner::kPageFrag:
      return "page-frag";
    case PageOwner::kDriver:
      return "driver";
    case PageOwner::kAnon:
      return "anon";
  }
  return "?";
}

uint64_t PageDb::CountOwned(PageOwner owner) const {
  uint64_t count = 0;
  for (const auto& meta : pages_) {
    if (meta.owner == owner) {
      ++count;
    }
  }
  return count;
}

}  // namespace spv::mem
