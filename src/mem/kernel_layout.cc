#include "mem/kernel_layout.h"

#include "base/align.h"

namespace spv::mem {

std::string RegionName(Region region) {
  switch (region) {
    case Region::kNone:
      return "none";
    case Region::kDirectMap:
      return "direct map of phys memory";
    case Region::kVmalloc:
      return "vmalloc/ioremap space";
    case Region::kVmemmap:
      return "virtual memory map";
    case Region::kKernelText:
      return "kernel text mapping";
    case Region::kModules:
      return "module mapping space";
  }
  return "?";
}

KernelLayout KernelLayout::Create(uint64_t phys_pages, bool kaslr, Xoshiro256& rng) {
  KernelLayout layout;
  layout.kaslr_ = kaslr;
  layout.phys_pages_ = phys_pages;
  if (!kaslr) {
    return layout;
  }

  const uint64_t phys_bytes = phys_pages << kPageShift;

  // Direct map: base anywhere in its range (1 GiB steps) such that the whole
  // physical memory still fits before the range end.
  {
    const uint64_t span = LayoutRanges::kDirectMapEnd - LayoutRanges::kDirectMapStart;
    const uint64_t usable = span - AlignUp(phys_bytes, kRegionBaseAlign);
    const uint64_t slots = usable / kRegionBaseAlign;
    layout.page_offset_base_ =
        LayoutRanges::kDirectMapStart + rng.NextBelow(slots + 1) * kRegionBaseAlign;
  }

  // vmalloc base: 1 GiB steps within its range (we model but do not allocate
  // from vmalloc; only the base randomization is observable).
  {
    const uint64_t span = LayoutRanges::kVmallocEnd - LayoutRanges::kVmallocStart;
    const uint64_t slots = span / kRegionBaseAlign / 2;  // keep headroom
    layout.vmalloc_base_ =
        LayoutRanges::kVmallocStart + rng.NextBelow(slots) * kRegionBaseAlign;
  }

  // vmemmap base: 1 GiB steps; the struct-page array for all of RAM must fit.
  {
    const uint64_t array_bytes = phys_pages * kStructPageSize;
    const uint64_t span = LayoutRanges::kVmemmapEnd - LayoutRanges::kVmemmapStart;
    const uint64_t usable = span - AlignUp(array_bytes, kRegionBaseAlign);
    const uint64_t slots = usable / kRegionBaseAlign;
    layout.vmemmap_base_ =
        LayoutRanges::kVmemmapStart + rng.NextBelow(slots + 1) * kRegionBaseAlign;
  }

  // Kernel text: 2 MiB steps within the 512 MiB window.
  {
    const uint64_t span = LayoutRanges::kTextEnd - LayoutRanges::kTextStart;
    const uint64_t slots = span / kTextAlign;
    layout.text_base_ = LayoutRanges::kTextStart + rng.NextBelow(slots) * kTextAlign;
  }

  return layout;
}

Region KernelLayout::ClassifyByRange(Kva kva) {
  const uint64_t v = kva.value;
  if (v >= LayoutRanges::kDirectMapStart && v < LayoutRanges::kDirectMapEnd) {
    return Region::kDirectMap;
  }
  if (v >= LayoutRanges::kVmallocStart && v < LayoutRanges::kVmallocEnd) {
    return Region::kVmalloc;
  }
  if (v >= LayoutRanges::kVmemmapStart && v < LayoutRanges::kVmemmapEnd) {
    return Region::kVmemmap;
  }
  if (v >= LayoutRanges::kTextStart && v < LayoutRanges::kTextEnd) {
    return Region::kKernelText;
  }
  if (v >= LayoutRanges::kModulesStart && v < LayoutRanges::kModulesEnd) {
    return Region::kModules;
  }
  return Region::kNone;
}

Result<PhysAddr> KernelLayout::DirectMapKvaToPhys(Kva kva) const {
  if (!IsDirectMapKva(kva)) {
    return InvalidArgument("KVA not in the direct map of this machine");
  }
  return PhysAddr{kva.value - page_offset_base_};
}

Result<Pfn> KernelLayout::StructPageKvaToPfn(Kva kva) const {
  if (!IsVmemmapKva(kva)) {
    return InvalidArgument("KVA not in the vmemmap of this machine");
  }
  const uint64_t delta = kva.value - vmemmap_base_;
  if (delta % kStructPageSize != 0) {
    return InvalidArgument("KVA not struct-page aligned");
  }
  return Pfn{delta / kStructPageSize};
}

}  // namespace spv::mem
