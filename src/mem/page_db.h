// Per-page metadata (the simulator's `struct page` array).
//
// Tracks who owns each physical page. The DMA sanitizer (D-KASAN) and the
// attack analyses both key off this: a sub-page vulnerability is precisely a
// page whose owner semantics ("driver RX buffer") and actual contents
// ("also holds a kmalloc'd socket object") disagree.

#ifndef SPV_MEM_PAGE_DB_H_
#define SPV_MEM_PAGE_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.h"

namespace spv::mem {

enum class PageOwner : uint8_t {
  kFree = 0,
  kKernelImage,  // text/data reserved at boot
  kSlab,         // owned by a kmalloc cache
  kPageFrag,     // owned by a page_frag pool
  kDriver,       // whole-page driver allocation (e.g. ring descriptors)
  kAnon,         // anonymous / other kernel allocation
};

std::string PageOwnerName(PageOwner owner);

struct PageMeta {
  PageOwner owner = PageOwner::kFree;
  uint8_t order = 0;        // buddy order this page was allocated at (head page only)
  bool is_head = false;     // head of a (possibly compound) allocation
  uint16_t cache_id = 0;    // slab cache id when owner == kSlab
  uint32_t refcount = 0;    // page_frag / frag references
};

class PageDb {
 public:
  explicit PageDb(uint64_t num_pages) : pages_(num_pages) {}

  PageMeta& Get(Pfn pfn) { return pages_.at(pfn.value); }
  const PageMeta& Get(Pfn pfn) const { return pages_.at(pfn.value); }

  uint64_t num_pages() const { return pages_.size(); }

  // Convenience counters for reporting.
  uint64_t CountOwned(PageOwner owner) const;

 private:
  std::vector<PageMeta> pages_;
};

}  // namespace spv::mem

#endif  // SPV_MEM_PAGE_DB_H_
