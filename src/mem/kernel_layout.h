// Kernel virtual memory layout with KASLR (paper Table 1 and §2.4).
//
// The x86-64 Linux layout defines fixed *ranges* for each region; KASLR only
// randomizes the base offset within the range:
//   * direct map base (page_offset_base)  — 1 GiB aligned  (low 30 bits fixed)
//   * vmemmap base (vmemmap_base)         — 1 GiB aligned  (low 30 bits fixed)
//   * kernel text base                    — 2 MiB aligned  (low 21 bits fixed)
// These alignment guarantees are exactly what the paper's KASLR-subversion
// step exploits: a single leaked pointer into a region pins the whole region.

#ifndef SPV_MEM_KERNEL_LAYOUT_H_
#define SPV_MEM_KERNEL_LAYOUT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "base/rng.h"
#include "base/status.h"
#include "base/types.h"

namespace spv::mem {

enum class Region {
  kNone,
  kDirectMap,   // ffff888000000000 .. +64 TB  (page_offset_base)
  kVmalloc,     // ffffc90000000000 .. +32 TB  (vmalloc_base)
  kVmemmap,     // ffffea0000000000 .. +1 TB   (vmemmap_base)
  kKernelText,  // ffffffff80000000 .. +512 MB
  kModules,     // ffffffffa0000000 .. +1520 MB
};

std::string RegionName(Region region);

// Fixed range boundaries from Table 1. These are architectural constants an
// attacker is assumed to know.
struct LayoutRanges {
  static constexpr uint64_t kDirectMapStart = 0xffff888000000000ULL;
  static constexpr uint64_t kDirectMapEnd = 0xffffc88000000000ULL;  // 64 TB
  static constexpr uint64_t kVmallocStart = 0xffffc90000000000ULL;
  static constexpr uint64_t kVmallocEnd = 0xffffe90000000000ULL;  // 32 TB
  static constexpr uint64_t kVmemmapStart = 0xffffea0000000000ULL;
  static constexpr uint64_t kVmemmapEnd = 0xffffeb0000000000ULL;  // 1 TB
  static constexpr uint64_t kTextStart = 0xffffffff80000000ULL;
  static constexpr uint64_t kTextEnd = 0xffffffffa0000000ULL;  // 512 MB
  static constexpr uint64_t kModulesStart = 0xffffffffa0000000ULL;
  static constexpr uint64_t kModulesEnd = 0xffffffffff000000ULL;  // 1520 MB
};

// sizeof(struct page) on x86-64 Linux; vmemmap is an array of these.
inline constexpr uint64_t kStructPageSize = 64;

// KASLR alignment guarantees (page-table driven, "unlikely to change").
inline constexpr uint64_t kTextAlign = 1ULL << 21;       // 2 MiB
inline constexpr uint64_t kRegionBaseAlign = 1ULL << 30;  // 1 GiB (PUD shift)

class KernelLayout {
 public:
  // Builds the layout for a machine with `phys_pages` pages of RAM. With
  // `kaslr` enabled, bases are randomized from `rng` under the alignment
  // rules above; otherwise the compile-time defaults from Table 1 are used.
  static KernelLayout Create(uint64_t phys_pages, bool kaslr, Xoshiro256& rng);

  bool kaslr_enabled() const { return kaslr_; }

  uint64_t page_offset_base() const { return page_offset_base_; }
  uint64_t vmalloc_base() const { return vmalloc_base_; }
  uint64_t vmemmap_base() const { return vmemmap_base_; }
  uint64_t text_base() const { return text_base_; }

  // The randomized slide of the text region relative to kTextStart.
  uint64_t text_slide() const { return text_base_ - LayoutRanges::kTextStart; }

  // ---- Address classification ---------------------------------------------

  // Which architectural range does `kva` fall into? Needs no secrets; this is
  // the check a malicious device performs on leaked qwords.
  static Region ClassifyByRange(Kva kva);

  // ---- Translations (kernel-privileged: use the secret bases) -------------

  Kva PhysToDirectMapKva(PhysAddr addr) const { return Kva{page_offset_base_ + addr.value}; }
  Result<PhysAddr> DirectMapKvaToPhys(Kva kva) const;

  // KVA of the `struct page` for a PFN (an entry in the vmemmap array).
  Kva StructPageKva(Pfn pfn) const { return Kva{vmemmap_base_ + pfn.value * kStructPageSize}; }
  Result<Pfn> StructPageKvaToPfn(Kva kva) const;

  // KVA of a kernel-image symbol given its compile-time offset from text base.
  Kva SymbolKva(uint64_t symbol_offset) const { return Kva{text_base_ + symbol_offset}; }

  bool IsDirectMapKva(Kva kva) const {
    return kva.value >= page_offset_base_ &&
           kva.value < page_offset_base_ + (phys_pages_ << kPageShift);
  }
  bool IsVmemmapKva(Kva kva) const {
    return kva.value >= vmemmap_base_ &&
           kva.value < vmemmap_base_ + phys_pages_ * kStructPageSize;
  }

  uint64_t phys_pages() const { return phys_pages_; }

  // ---- Structure-layout randomization (__randomize_layout, paper fn. 2) ----

  // Where skb_shared_info keeps its destructor_arg this boot. Default: the
  // compile-time offset (32). With CONFIG_GCC_PLUGIN_RANDSTRUCT-style
  // randomization the kernel shuffles it among the pointer-sized slots.
  uint64_t shinfo_destructor_offset() const { return shinfo_destructor_offset_; }
  void set_shinfo_destructor_offset(uint64_t offset) { shinfo_destructor_offset_ = offset; }

 private:
  bool kaslr_ = false;
  uint64_t phys_pages_ = 0;
  uint64_t page_offset_base_ = LayoutRanges::kDirectMapStart;
  uint64_t vmalloc_base_ = LayoutRanges::kVmallocStart;
  uint64_t vmemmap_base_ = LayoutRanges::kVmemmapStart;
  uint64_t text_base_ = LayoutRanges::kTextStart;
  uint64_t shinfo_destructor_offset_ = 32;  // SharedInfoLayout::kDestructorArg
};

}  // namespace spv::mem

#endif  // SPV_MEM_KERNEL_LAYOUT_H_
