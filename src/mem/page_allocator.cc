#include "mem/page_allocator.h"

#include <cassert>
#include <mutex>

#include "fault/fault.h"

namespace spv::mem {

PageAllocator::PageAllocator(PageDb& page_db, Pfn first_pfn, uint64_t num_pages)
    : page_db_(page_db), first_pfn_(first_pfn.value), num_pages_(num_pages) {
  assert(first_pfn_ + num_pages_ <= page_db.num_pages());
  // Seed the buddy free lists greedily with the largest aligned blocks.
  uint64_t pfn = first_pfn_;
  uint64_t remaining = num_pages_;
  while (remaining > 0) {
    unsigned order = kMaxOrder;
    while (order > 0 &&
           (((pfn - first_pfn_) & ((uint64_t{1} << order) - 1)) != 0 ||
            (uint64_t{1} << order) > remaining)) {
      --order;
    }
    free_lists_[order].insert(FreeBlock{pfn});
    pfn += uint64_t{1} << order;
    remaining -= uint64_t{1} << order;
  }
  free_pages_ = num_pages_;
}

Result<Pfn> PageAllocator::AllocPages(unsigned order, PageOwner owner) {
  if (order > kMaxOrder) {
    return InvalidArgument("order exceeds kMaxOrder");
  }
  if (fault_ != nullptr && fault_->armed() &&
      fault_->ShouldInject(fault::FaultSite::kPageAlloc)) {
    return ResourceExhausted("injected: out of physical pages");
  }
  ++alloc_count_;

  std::lock_guard<MaybeMutex> guard(mu_);
  uint64_t head_pfn;
  if (order == 0 && !hot_cache_.empty()) {
    head_pfn = hot_cache_.back();  // LIFO: most recently freed first
    hot_cache_.pop_back();
    ++hot_cache_hits_;
  } else {
    Result<Pfn> head = AllocFromBuddy(order);
    if (!head.ok()) {
      return head.status();
    }
    head_pfn = head->value;
  }

  const uint64_t count = uint64_t{1} << order;
  for (uint64_t i = 0; i < count; ++i) {
    PageMeta& meta = page_db_.Get(Pfn{head_pfn + i});
    meta.owner = owner;
    meta.order = static_cast<uint8_t>(order);
    meta.is_head = (i == 0);
    meta.refcount = (i == 0) ? 1 : 0;
    meta.cache_id = 0;
  }
  free_pages_ -= count;
  return Pfn{head_pfn};
}

Status PageAllocator::FreePages(Pfn head) {
  if (head.value < first_pfn_ || head.value >= first_pfn_ + num_pages_) {
    return InvalidArgument("FreePages outside the managed range");
  }
  std::lock_guard<MaybeMutex> guard(mu_);
  PageMeta& meta = page_db_.Get(head);
  if (meta.owner == PageOwner::kFree || !meta.is_head) {
    return FailedPrecondition("FreePages on a non-head or already-free page");
  }
  const unsigned order = meta.order;
  const uint64_t count = uint64_t{1} << order;
  for (uint64_t i = 0; i < count; ++i) {
    PageMeta& m = page_db_.Get(Pfn{head.value + i});
    m.owner = PageOwner::kFree;
    m.is_head = false;
    m.refcount = 0;
    m.cache_id = 0;
  }
  free_pages_ += count;

  if (order == 0) {
    hot_cache_.push_back(head.value);
    if (hot_cache_.size() > kHotCacheCapacity) {
      // Spill the coldest entry back to the buddy system.
      const uint64_t cold = hot_cache_.front();
      hot_cache_.pop_front();
      FreeToBuddy(cold, 0);
    }
    return OkStatus();
  }
  FreeToBuddy(head.value, order);
  return OkStatus();
}

Result<Pfn> PageAllocator::AllocFromBuddy(unsigned order) {
  unsigned available = order;
  while (available <= kMaxOrder && free_lists_[available].empty()) {
    ++available;
  }
  if (available > kMaxOrder) {
    // Last resort for order-0: drain the hot cache back into the buddy pool.
    if (order == 0 && !hot_cache_.empty()) {
      const uint64_t pfn = hot_cache_.back();
      hot_cache_.pop_back();
      return Pfn{pfn};
    }
    return ResourceExhausted("out of physical pages");
  }
  // Take the lowest block at `available`, split down to `order`.
  uint64_t pfn = free_lists_[available].begin()->pfn;
  free_lists_[available].erase(free_lists_[available].begin());
  while (available > order) {
    --available;
    const uint64_t buddy = pfn + (uint64_t{1} << available);
    free_lists_[available].insert(FreeBlock{buddy});
  }
  return Pfn{pfn};
}

void PageAllocator::FreeToBuddy(uint64_t pfn, unsigned order) {
  // Coalesce with the buddy while possible.
  while (order < kMaxOrder) {
    const uint64_t rel = pfn - first_pfn_;
    const uint64_t buddy_rel = rel ^ (uint64_t{1} << order);
    const uint64_t buddy = first_pfn_ + buddy_rel;
    if (!InRange(buddy, order)) {
      break;
    }
    auto it = free_lists_[order].find(FreeBlock{buddy});
    if (it == free_lists_[order].end()) {
      break;
    }
    free_lists_[order].erase(it);
    pfn = std::min(pfn, buddy);
    ++order;
  }
  free_lists_[order].insert(FreeBlock{pfn});
}

}  // namespace spv::mem
