// Well-known kernel-image symbol offsets.
//
// KASLR randomizes only the image *base*; per-symbol offsets are fixed by the
// build and are public knowledge for distro kernels (§2.4). An attacker who
// sees one pointer to a known symbol learns the base: the slide is 2 MiB
// aligned, so the low 21 bits of every symbol's address never change across
// boots ("knowing even a single address of a known element is sufficient").
//
// Offsets below are representative values within the 512 MiB image window;
// what matters is that they are (a) fixed, (b) distinct in their low 21 bits
// where the detection heuristics rely on it.

#ifndef SPV_MEM_KERNEL_SYMBOLS_H_
#define SPV_MEM_KERNEL_SYMBOLS_H_

#include <cstdint>

namespace spv::mem {

// Data symbols.
inline constexpr uint64_t kSymInitNet = 0x01451280;  // struct net init_net (§2.4)

// Privilege-escalation targets (what a kernel ROP chain calls).
inline constexpr uint64_t kSymPrepareKernelCred = 0x000c8d20;
inline constexpr uint64_t kSymCommitCreds = 0x000c8a40;

// Gadgets (found in a real kernel with ROPgadget [61]; §6).
inline constexpr uint64_t kSymJopStackPivot = 0x003d77a1;  // %rsp = %rdi + const; jmp
inline constexpr uint64_t kSymJopPivotConst = 0x40;        // the pivot's displacement
inline constexpr uint64_t kSymGadgetPopRdi = 0x002a3b15;   // pop %rdi; ret
inline constexpr uint64_t kSymGadgetPopRsi = 0x002a4c21;   // pop %rsi; ret
inline constexpr uint64_t kSymGadgetMovRdiRax = 0x0031d402;  // mov %rdi, %rax; ret
inline constexpr uint64_t kSymGadgetRet = 0x00001016;      // ret

}  // namespace spv::mem

#endif  // SPV_MEM_KERNEL_SYMBOLS_H_
