// Buddy page allocator with a hot-page cache.
//
// Mirrors the two Linux behaviours the paper's attacks depend on:
//   * deterministic allocation order: the same boot sequence of requests
//     yields (mostly) the same PFNs, which is what makes RingFlood's
//     PFN-guessing viable (§5.3);
//   * hot-page reuse: freed order-0 pages are recycled LIFO from a per-CPU
//     style cache, so a page a device still holds a stale IOTLB entry for is
//     likely to be immediately handed to someone else (§5.2.1, point 2).

#ifndef SPV_MEM_PAGE_ALLOCATOR_H_
#define SPV_MEM_PAGE_ALLOCATOR_H_

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <vector>

#include "base/maybe_mutex.h"
#include "base/stat_counter.h"
#include "base/status.h"
#include "base/types.h"
#include "mem/page_db.h"

namespace spv::fault {
class FaultEngine;
}  // namespace spv::fault

namespace spv::mem {

class PageAllocator {
 public:
  static constexpr unsigned kMaxOrder = 10;  // up to 4 MiB contiguous
  static constexpr size_t kHotCacheCapacity = 64;

  // Manages PFNs [first_pfn, first_pfn + num_pages). Pages below first_pfn
  // are the reserved kernel image.
  PageAllocator(PageDb& page_db, Pfn first_pfn, uint64_t num_pages);

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  // Allocates 2^order contiguous pages; returns the head PFN.
  Result<Pfn> AllocPages(unsigned order, PageOwner owner);
  Result<Pfn> AllocPage(PageOwner owner) { return AllocPages(0, owner); }

  // Frees an allocation previously returned by AllocPages (head PFN).
  Status FreePages(Pfn head);

  uint64_t free_pages() const { return free_pages_; }
  uint64_t total_pages() const { return num_pages_; }

  // Optional fault hook (kPageAlloc): nullptr detaches.
  void set_fault_engine(fault::FaultEngine* engine) { fault_ = engine; }

  // Engages the allocator lock for ExecMode::kThreads (one-way). Covers the
  // buddy lists, the hot cache and the PageDb metadata writes alloc/free
  // perform; sequential mode pays a branch.
  void EngageLock() { mu_.Engage(); }

  // Statistics for benchmarks.
  uint64_t hot_cache_hits() const { return hot_cache_hits_; }
  uint64_t alloc_count() const { return alloc_count_; }

 private:
  struct FreeBlock {
    uint64_t pfn;
    bool operator<(const FreeBlock& other) const { return pfn < other.pfn; }
  };

  bool InRange(uint64_t pfn, unsigned order) const {
    return pfn >= first_pfn_ && pfn + (uint64_t{1} << order) <= first_pfn_ + num_pages_;
  }

  Result<Pfn> AllocFromBuddy(unsigned order);
  void FreeToBuddy(uint64_t pfn, unsigned order);

  PageDb& page_db_;
  uint64_t first_pfn_;
  uint64_t num_pages_;
  StatCounter free_pages_;

  mutable MaybeMutex mu_;  // guards free_lists_ + hot_cache_ when engaged

  // Ordered free sets per order: deterministic lowest-address-first policy.
  std::array<std::set<FreeBlock>, kMaxOrder + 1> free_lists_;

  // LIFO cache of recently freed order-0 pages ("hot" pages).
  std::deque<uint64_t> hot_cache_;

  StatCounter hot_cache_hits_;
  StatCounter alloc_count_;

  fault::FaultEngine* fault_ = nullptr;
};

}  // namespace spv::mem

#endif  // SPV_MEM_PAGE_ALLOCATOR_H_
