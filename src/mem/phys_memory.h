// Simulated physical memory.
//
// A flat, byte-addressable array of 4 KiB pages. Every byte a device can
// corrupt and every byte the simulated kernel parses lives here; host-side
// C++ objects (drivers, rings, the sk_buff metadata that Linux also keeps
// off the DMA page) merely *reference* ranges of this memory.

#ifndef SPV_MEM_PHYS_MEMORY_H_
#define SPV_MEM_PHYS_MEMORY_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "base/status.h"
#include "base/types.h"

namespace spv::mem {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(uint64_t num_pages);

  uint64_t num_pages() const { return num_pages_; }
  uint64_t size_bytes() const { return num_pages_ << kPageShift; }

  bool Contains(PhysAddr addr, uint64_t len = 1) const {
    return addr.value + len <= size_bytes() && addr.value + len >= addr.value;
  }

  // Bulk accessors. Out-of-range accesses return an error (a real bus would
  // master-abort); they never touch host memory out of bounds.
  Status Read(PhysAddr addr, std::span<uint8_t> out) const;
  Status Write(PhysAddr addr, std::span<const uint8_t> data);

  // Little-endian scalar accessors, the common case for struct fields.
  Result<uint64_t> ReadU64(PhysAddr addr) const;
  Result<uint32_t> ReadU32(PhysAddr addr) const;
  Result<uint16_t> ReadU16(PhysAddr addr) const;
  Result<uint8_t> ReadU8(PhysAddr addr) const;
  Status WriteU64(PhysAddr addr, uint64_t value);
  Status WriteU32(PhysAddr addr, uint32_t value);
  Status WriteU16(PhysAddr addr, uint16_t value);
  Status WriteU8(PhysAddr addr, uint8_t value);

  Status Fill(PhysAddr addr, uint64_t len, uint8_t byte);

  // Direct page views for fast in-simulator parsing. Bounds are asserted.
  std::span<uint8_t> PageSpan(Pfn pfn);
  std::span<const uint8_t> PageSpan(Pfn pfn) const;

 private:
  uint64_t num_pages_;
  std::vector<uint8_t> bytes_;
};

}  // namespace spv::mem

#endif  // SPV_MEM_PHYS_MEMORY_H_
