#include "mem/phys_memory.h"

#include <cassert>

namespace spv::mem {

PhysicalMemory::PhysicalMemory(uint64_t num_pages)
    : num_pages_(num_pages), bytes_(num_pages << kPageShift, 0) {}

Status PhysicalMemory::Read(PhysAddr addr, std::span<uint8_t> out) const {
  if (!Contains(addr, out.size())) {
    return OutOfRange("phys read beyond end of memory");
  }
  std::memcpy(out.data(), bytes_.data() + addr.value, out.size());
  return OkStatus();
}

Status PhysicalMemory::Write(PhysAddr addr, std::span<const uint8_t> data) {
  if (!Contains(addr, data.size())) {
    return OutOfRange("phys write beyond end of memory");
  }
  std::memcpy(bytes_.data() + addr.value, data.data(), data.size());
  return OkStatus();
}

template <typename T>
static Result<T> ReadScalar(const PhysicalMemory& pm, PhysAddr addr) {
  if (!pm.Contains(addr, sizeof(T))) {
    return OutOfRange("phys scalar read beyond end of memory");
  }
  T value;
  uint8_t buf[sizeof(T)];
  Status s = pm.Read(addr, std::span<uint8_t>(buf, sizeof(T)));
  if (!s.ok()) {
    return s;
  }
  std::memcpy(&value, buf, sizeof(T));
  return value;
}

Result<uint64_t> PhysicalMemory::ReadU64(PhysAddr addr) const {
  return ReadScalar<uint64_t>(*this, addr);
}
Result<uint32_t> PhysicalMemory::ReadU32(PhysAddr addr) const {
  return ReadScalar<uint32_t>(*this, addr);
}
Result<uint16_t> PhysicalMemory::ReadU16(PhysAddr addr) const {
  return ReadScalar<uint16_t>(*this, addr);
}
Result<uint8_t> PhysicalMemory::ReadU8(PhysAddr addr) const {
  return ReadScalar<uint8_t>(*this, addr);
}

template <typename T>
static Status WriteScalar(PhysicalMemory& pm, PhysAddr addr, T value) {
  uint8_t buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  return pm.Write(addr, std::span<const uint8_t>(buf, sizeof(T)));
}

Status PhysicalMemory::WriteU64(PhysAddr addr, uint64_t value) {
  return WriteScalar(*this, addr, value);
}
Status PhysicalMemory::WriteU32(PhysAddr addr, uint32_t value) {
  return WriteScalar(*this, addr, value);
}
Status PhysicalMemory::WriteU16(PhysAddr addr, uint16_t value) {
  return WriteScalar(*this, addr, value);
}
Status PhysicalMemory::WriteU8(PhysAddr addr, uint8_t value) {
  return WriteScalar(*this, addr, value);
}

Status PhysicalMemory::Fill(PhysAddr addr, uint64_t len, uint8_t byte) {
  if (!Contains(addr, len)) {
    return OutOfRange("phys fill beyond end of memory");
  }
  std::memset(bytes_.data() + addr.value, byte, len);
  return OkStatus();
}

std::span<uint8_t> PhysicalMemory::PageSpan(Pfn pfn) {
  assert(pfn.value < num_pages_);
  return std::span<uint8_t>(bytes_.data() + (pfn.value << kPageShift), kPageSize);
}

std::span<const uint8_t> PhysicalMemory::PageSpan(Pfn pfn) const {
  assert(pfn.value < num_pages_);
  return std::span<const uint8_t>(bytes_.data() + (pfn.value << kPageShift), kPageSize);
}

}  // namespace spv::mem
