#include "fault/fault.h"

#include <mutex>
#include <string>

#include "base/rng.h"

namespace spv::fault {

namespace {

struct SiteName {
  FaultSite site;
  std::string_view name;
};

// Declaration order; names are the counter/export vocabulary
// (fault.injected.<name>).
constexpr SiteName kSiteNames[] = {
    {FaultSite::kPageAlloc, "page_alloc"},
    {FaultSite::kSlabAlloc, "slab_alloc"},
    {FaultSite::kPageFragAlloc, "page_frag_alloc"},
    {FaultSite::kIovaAlloc, "iova_alloc"},
    {FaultSite::kIoPageTableMap, "io_page_table_map"},
    {FaultSite::kIotlbInvalidation, "iotlb_invalidation"},
    {FaultSite::kNicRxDrop, "nic_rx_drop"},
    {FaultSite::kNicRxTruncate, "nic_rx_truncate"},
    {FaultSite::kNicRxCorrupt, "nic_rx_corrupt"},
    {FaultSite::kNicDescWriteback, "nic_desc_writeback"},
    {FaultSite::kNicRxRefillStarve, "nic_rx_refill_starve"},
    {FaultSite::kNicTxCompletionLoss, "nic_tx_completion_loss"},
    {FaultSite::kNicDeviceStall, "nic_device_stall"},
    {FaultSite::kNvmeSqFetchCorrupt, "nvme_sq_fetch_corrupt"},
    {FaultSite::kNvmePrpWild, "nvme_prp_wild"},
    {FaultSite::kNvmeCqPhaseFlip, "nvme_cq_phase_flip"},
    {FaultSite::kNvmeDoorbellStorm, "nvme_doorbell_storm"},
    {FaultSite::kNvmeCompletionDrop, "nvme_completion_drop"},
    {FaultSite::kNvmeShortTransfer, "nvme_short_transfer"},
};
static_assert(std::size(kSiteNames) == kNumFaultSites);

// One SplitMix64 step over caller-held state (the class keeps its state
// private, and we need to persist it between draws).
uint64_t NextU64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double NextDouble(uint64_t& state) {
  return static_cast<double>(NextU64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

std::string_view FaultSiteName(FaultSite site) {
  for (const SiteName& entry : kSiteNames) {
    if (entry.site == site) {
      return entry.name;
    }
  }
  return "?";
}

std::optional<FaultSite> FaultSiteFromName(std::string_view name) {
  for (const SiteName& entry : kSiteNames) {
    if (entry.name == name) {
      return entry.site;
    }
  }
  return std::nullopt;
}

FaultPlan& FaultPlan::Probability(FaultSite site, double p, uint64_t max_injections) {
  FaultTrigger& trigger = At(site);
  trigger.mode = FaultTrigger::Mode::kProbability;
  trigger.probability = p;
  trigger.max_injections = max_injections;
  return *this;
}

FaultPlan& FaultPlan::EveryNth(FaultSite site, uint64_t n, uint64_t max_injections) {
  FaultTrigger& trigger = At(site);
  trigger.mode = FaultTrigger::Mode::kEveryNth;
  trigger.n = n == 0 ? 1 : n;
  trigger.max_injections = max_injections;
  return *this;
}

FaultPlan& FaultPlan::OneShot(FaultSite site, uint64_t at_arm) {
  FaultTrigger& trigger = At(site);
  trigger.mode = FaultTrigger::Mode::kOneShot;
  trigger.n = at_arm == 0 ? 1 : at_arm;
  trigger.max_injections = 1;
  return *this;
}

FaultPlan& FaultPlan::Magnitude(FaultSite site, uint64_t magnitude) {
  At(site).magnitude = magnitude;
  return *this;
}

bool FaultPlan::empty() const {
  for (const FaultTrigger& trigger : triggers_) {
    if (trigger.mode != FaultTrigger::Mode::kNever) {
      return false;
    }
  }
  return true;
}

void FaultEngine::Arm(const FaultPlan& plan, uint64_t seed) {
  plan_ = plan;
  stats_ = {};
  // One independent stream per site: the golden-ratio-spaced seeds keep the
  // streams decorrelated even for adjacent site indices.
  SplitMix64 seeder{seed ^ 0x6661756c74ULL};  // "fault"
  for (uint64_t& state : rng_) {
    state = seeder.Next();
  }
  armed_ = !plan_.empty();
}

bool FaultEngine::ShouldInject(FaultSite site) {
  if (!armed_) {
    return false;
  }
  std::lock_guard<MaybeMutex> guard(mu_);
  const size_t index = static_cast<size_t>(site);
  const FaultTrigger& trigger = plan_.trigger(site);
  SiteStats& stats = stats_[index];
  ++stats.arms;
  if (stats.injections >= trigger.max_injections) {
    return false;
  }
  bool fire = false;
  switch (trigger.mode) {
    case FaultTrigger::Mode::kNever:
      break;
    case FaultTrigger::Mode::kProbability:
      fire = NextDouble(rng_[index]) < trigger.probability;
      break;
    case FaultTrigger::Mode::kEveryNth:
      fire = stats.arms % trigger.n == 0;
      break;
    case FaultTrigger::Mode::kOneShot:
      fire = stats.arms == trigger.n;
      break;
  }
  if (!fire) {
    return false;
  }
  ++stats.injections;
  if (hub_ != nullptr && hub_->active()) {
    telemetry::Event event;
    event.kind = telemetry::EventKind::kFaultInjected;
    event.severity = telemetry::Severity::kWarn;
    event.aux = static_cast<uint64_t>(site);
    event.len = trigger.magnitude;
    event.origin = this;
    event.site = std::string("fault:") + std::string(FaultSiteName(site));
    hub_->Publish(std::move(event));
    if (hub_->enabled()) {
      hub_->counter(std::string("fault.injected.") + std::string(FaultSiteName(site)))
          .Add();
    }
  }
  return true;
}

uint64_t FaultEngine::magnitude(FaultSite site, uint64_t fallback) const {
  const uint64_t m = plan_.trigger(site).magnitude;
  return m == 0 ? fallback : m;
}

uint64_t FaultEngine::total_injections() const {
  uint64_t total = 0;
  for (const SiteStats& stats : stats_) {
    total += stats.injections;
  }
  return total;
}

}  // namespace spv::fault
