// spv::fault — deterministic, seedable, machine-wide fault injection.
//
// The paper's attacks live in error-adjacent windows (deferred invalidation,
// ring refill, partial scatter-gather maps), but a substrate that only ever
// walks the happy path cannot demonstrate that its error paths hold up. The
// engine here adopts the DICE/InjectV approach: faults are *modelled* at
// named sites inside the simulation, triggered by a plan that is a pure
// function of the machine seed, so every failure a test provokes is
// reproducible bit-for-bit and regression-testable.
//
// Design:
//   * `FaultSite` enumerates every instrumented point, one per failure mode
//     (allocator exhaustion, IOVA exhaustion, mid-scatter-gather page-table
//     failure, invalidation stalls, NIC device misbehaviour).
//   * `FaultPlan` assigns each site a trigger: probability-per-arm,
//     every-Nth-arm, or one-shot-at-arm-K, plus an optional site-specific
//     magnitude (stall cycles, corrupted length, ...).
//   * `FaultEngine` is owned by core::Machine and handed to components as a
//     raw pointer (the `set_telemetry` idiom). Disarmed — the default — a
//     site costs one null/flag test; components guard with
//     `fault != nullptr && fault->armed()` so the map/unmap fast path stays
//     within the <3% bench budget.
//   * Each site draws from its own SplitMix64 stream derived from the
//     machine seed, so adding traffic at one site never perturbs another.
//
// Every injection is published on the telemetry bus as a kFaultInjected
// event plus a `fault.injected.<site>` counter; consumers publish their
// recovery actions as `fault.recovered.*` (see DESIGN.md §8).

#ifndef SPV_FAULT_FAULT_H_
#define SPV_FAULT_FAULT_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>

#include "base/maybe_mutex.h"
#include "base/stat_counter.h"
#include "telemetry/telemetry.h"

namespace spv::fault {

enum class FaultSite : uint8_t {
  // Memory allocators.
  kPageAlloc = 0,    // buddy allocator returns out-of-pages
  kSlabAlloc,        // kmalloc returns exhaustion before carving a slot
  kPageFragAlloc,    // page_frag pool fails the carve/refill
  // IOMMU.
  kIovaAlloc,        // IOVA window reported exhausted
  kIoPageTableMap,   // IoPageTable::Map fails mid-scatter-gather
  kIotlbInvalidation,  // invalidation stalls (magnitude = extra cycles)
  // NIC device model, as observed by the driver.
  kNicRxDrop,           // device drops the frame; completion never delivers
  kNicRxTruncate,       // frame cut short (magnitude = delivered bytes)
  kNicRxCorrupt,        // device scribbles over the packet header
  kNicDescWriteback,    // descriptor writeback carries a garbage length
  kNicRxRefillStarve,   // RX buffer refill fails (allocator said no)
  kNicTxCompletionLoss, // TX completion never arrives; watchdog must act
  kNicDeviceStall,      // device stalls (magnitude = cycles before service)
  // NVMe controller model, as observed by the block driver.
  kNvmeSqFetchCorrupt,   // SQE arrives bit-flipped (magnitude = XOR mask)
  kNvmePrpWild,          // a PRP entry dereferences wild (magnitude = offset)
  kNvmeCqPhaseFlip,      // CQE posted with the wrong phase bit; driver misses it
  kNvmeDoorbellStorm,    // doorbell replays already-consumed SQ entries
  kNvmeCompletionDrop,   // command executes but its CQE never lands
  kNvmeShortTransfer,    // data transfer stops early (magnitude = bytes moved)
};

inline constexpr size_t kNumFaultSites = 19;
// First of the kNvme* block; the NIC fault matrix sweeps [0, kFirstNvmeSite)
// and the NVMe matrix sweeps the rest.
inline constexpr size_t kFirstNvmeSite = static_cast<size_t>(FaultSite::kNvmeSqFetchCorrupt);

std::string_view FaultSiteName(FaultSite site);
std::optional<FaultSite> FaultSiteFromName(std::string_view name);

struct FaultTrigger {
  enum class Mode : uint8_t {
    kNever = 0,
    kProbability,  // fire with `probability` on each arm
    kEveryNth,     // fire on arms n, 2n, 3n, ...
    kOneShot,      // fire exactly once, on arm `n`
  };

  Mode mode = Mode::kNever;
  double probability = 0.0;
  uint64_t n = 1;
  uint64_t max_injections = UINT64_MAX;
  // Site-specific payload: stall cycles (kIotlbInvalidation, kNicDeviceStall),
  // delivered bytes (kNicRxTruncate), reported length (kNicDescWriteback).
  // 0 means "use the site's default".
  uint64_t magnitude = 0;
};

// A per-site trigger table with a builder interface:
//   FaultPlan plan;
//   plan.EveryNth(FaultSite::kPageAlloc, 7)
//       .OneShot(FaultSite::kIoPageTableMap, 3)
//       .Magnitude(FaultSite::kNicDeviceStall, SimClock::MsToCycles(2));
class FaultPlan {
 public:
  FaultPlan& Probability(FaultSite site, double p, uint64_t max_injections = UINT64_MAX);
  FaultPlan& EveryNth(FaultSite site, uint64_t n, uint64_t max_injections = UINT64_MAX);
  FaultPlan& OneShot(FaultSite site, uint64_t at_arm = 1);
  FaultPlan& Magnitude(FaultSite site, uint64_t magnitude);

  const FaultTrigger& trigger(FaultSite site) const {
    return triggers_[static_cast<size_t>(site)];
  }
  bool empty() const;

 private:
  FaultTrigger& At(FaultSite site) { return triggers_[static_cast<size_t>(site)]; }

  std::array<FaultTrigger, kNumFaultSites> triggers_{};
};

class FaultEngine {
 public:
  struct SiteStats {
    StatCounter arms;        // times the site asked "should I fail?"
    StatCounter injections;  // times the answer was yes
  };

  FaultEngine() = default;

  FaultEngine(const FaultEngine&) = delete;
  FaultEngine& operator=(const FaultEngine&) = delete;

  // Loads `plan` and derives one RNG stream per site from `seed`. Resets all
  // site statistics; an empty plan leaves the engine disarmed.
  void Arm(const FaultPlan& plan, uint64_t seed);
  void Disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  // The per-site decision. Hot paths call this behind an `armed()` guard;
  // calling it disarmed is valid and always false (one branch).
  bool ShouldInject(FaultSite site);

  // The plan's magnitude for `site`, or `fallback` when unset.
  uint64_t magnitude(FaultSite site, uint64_t fallback) const;

  // Publishes kFaultInjected events and fault.injected.* counters to `hub`
  // (nullptr detaches).
  void set_telemetry(telemetry::Hub* hub) { hub_ = hub; }

  // Engages the decision lock for ExecMode::kThreads (one-way): every site
  // draws from a shared per-site RNG stream and arm counter, so concurrent
  // ShouldInject calls must serialize to stay a pure function of the seed.
  void EngageLock() { mu_.Engage(); }

  const SiteStats& site_stats(FaultSite site) const {
    return stats_[static_cast<size_t>(site)];
  }
  uint64_t total_injections() const;

 private:
  bool armed_ = false;
  FaultPlan plan_;
  mutable MaybeMutex mu_;  // guards rng_ (and arm ordering) when engaged
  std::array<uint64_t, kNumFaultSites> rng_{};  // SplitMix64 state per site
  std::array<SiteStats, kNumFaultSites> stats_{};
  telemetry::Hub* hub_ = nullptr;
};

}  // namespace spv::fault

#endif  // SPV_FAULT_FAULT_H_
