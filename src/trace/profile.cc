#include "trace/profile.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace spv::trace {

namespace {

// Duration with still-open spans clipped at the forest horizon.
uint64_t EffectiveDuration(const SpanRecord& record, uint64_t total_cycles) {
  if (record.closed) {
    return record.close_cycle - record.open_cycle;
  }
  return total_cycles > record.open_cycle ? total_cycles - record.open_cycle : 0;
}

std::unordered_map<uint64_t, size_t> IndexById(const SpanForest& forest) {
  std::unordered_map<uint64_t, size_t> index;
  index.reserve(forest.records.size());
  for (size_t i = 0; i < forest.records.size(); ++i) {
    index.emplace(forest.records[i].id.value, i);
  }
  return index;
}

bool InMask(const std::unordered_set<uint64_t>& mask, uint64_t id) {
  return mask.empty() || mask.count(id) != 0;
}

}  // namespace

SpanForest BuildSpanForest(const std::vector<telemetry::Event>& events) {
  SpanForest forest;
  std::unordered_map<uint64_t, size_t> index;
  for (const telemetry::Event& event : events) {
    forest.total_cycles = std::max(forest.total_cycles, event.cycle);
    if (event.kind == telemetry::EventKind::kSpanOpen ||
        event.kind == telemetry::EventKind::kWindowOpen) {
      if (event.span == 0 || index.count(event.span) != 0) {
        continue;  // malformed or duplicate open
      }
      SpanRecord record;
      record.id = SpanId{event.span};
      record.parent = SpanId{event.addr};
      record.name = event.site;
      record.open_cycle = event.cycle;
      record.detached =
          event.flag || event.kind == telemetry::EventKind::kWindowOpen;
      index.emplace(event.span, forest.records.size());
      forest.records.push_back(std::move(record));
    } else if (event.kind == telemetry::EventKind::kSpanClose ||
               event.kind == telemetry::EventKind::kWindowClose) {
      if (event.span == 0) {
        continue;
      }
      auto it = index.find(event.span);
      if (it == index.end()) {
        // The open was overwritten in the ring; recover it from the close
        // record's duration (aux).
        SpanRecord record;
        record.id = SpanId{event.span};
        record.parent = SpanId{event.addr};
        record.name = event.site;
        record.open_cycle = event.cycle >= event.aux ? event.cycle - event.aux : 0;
        record.detached =
            event.flag || event.kind == telemetry::EventKind::kWindowClose;
        record.close_cycle = event.cycle;
        record.closed = true;
        index.emplace(event.span, forest.records.size());
        forest.records.push_back(std::move(record));
        continue;
      }
      SpanRecord& record = forest.records[it->second];
      if (!record.closed) {
        record.close_cycle = event.cycle;
        record.closed = true;
      }
    }
  }
  return forest;
}

std::vector<Instant> CollectInstants(const std::vector<telemetry::Event>& events,
                                     telemetry::Severity min_severity) {
  std::vector<Instant> instants;
  for (const telemetry::Event& event : events) {
    switch (event.kind) {
      case telemetry::EventKind::kSpanOpen:
      case telemetry::EventKind::kSpanClose:
      case telemetry::EventKind::kWindowOpen:
      case telemetry::EventKind::kWindowClose:
        continue;  // structure, not payload
      default:
        break;
    }
    if (event.severity < min_severity) {
      continue;
    }
    Instant instant;
    instant.cycle = event.cycle;
    instant.name = std::string(telemetry::EventKindName(event.kind));
    instant.detail = event.site;
    instant.span = event.span;
    instants.push_back(std::move(instant));
  }
  return instants;
}

std::unordered_set<uint64_t> SubtreeMask(const SpanForest& forest, SpanId root) {
  std::unordered_set<uint64_t> mask;
  if (!root.valid()) {
    return mask;
  }
  mask.insert(root.value);
  // Children always appear after their parent (open order), so one forward
  // pass closes the subtree.
  for (const SpanRecord& record : forest.records) {
    if (record.parent.valid() && mask.count(record.parent.value) != 0) {
      mask.insert(record.id.value);
    }
  }
  return mask;
}

std::string ChromeTraceJson(const SpanForest& forest, const std::vector<Instant>& instants,
                            const std::unordered_set<uint64_t>& mask) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"timebase\":\"sim_cycles\"},"
      << "\"traceEvents\":[\n"
      << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"spv-sim\"}},\n"
      << "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
         "\"args\":{\"name\":\"spans\"}},\n"
      << "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
         "\"args\":{\"name\":\"windows\"}}";
  for (const SpanRecord& record : forest.records) {
    if (!InMask(mask, record.id.value)) {
      continue;
    }
    const std::string name = telemetry::JsonEscape(record.name);
    if (record.detached) {
      out << ",\n{\"name\":\"" << name << "\",\"cat\":\"window\",\"ph\":\"b\",\"id\":"
          << record.id.value << ",\"ts\":" << record.open_cycle
          << ",\"pid\":1,\"tid\":2,\"args\":{\"parent\":" << record.parent.value << "}}";
      out << ",\n{\"name\":\"" << name << "\",\"cat\":\"window\",\"ph\":\"e\",\"id\":"
          << record.id.value << ",\"ts\":"
          << (record.closed ? record.close_cycle : forest.total_cycles)
          << ",\"pid\":1,\"tid\":2,\"args\":{}}";
    } else {
      out << ",\n{\"name\":\"" << name << "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":"
          << record.open_cycle << ",\"dur\":" << EffectiveDuration(record, forest.total_cycles)
          << ",\"pid\":1,\"tid\":1,\"args\":{\"span\":" << record.id.value
          << ",\"parent\":" << record.parent.value << "}}";
    }
  }
  for (const Instant& instant : instants) {
    if (!mask.empty() && mask.count(instant.span) == 0) {
      continue;
    }
    out << ",\n{\"name\":\"" << telemetry::JsonEscape(instant.name)
        << "\",\"cat\":\"instant\",\"ph\":\"i\",\"ts\":" << instant.cycle
        << ",\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"detail\":\""
        << telemetry::JsonEscape(instant.detail) << "\",\"span\":" << instant.span << "}}";
  }
  out << "\n]}\n";
  return out.str();
}

std::string CollapsedStacks(const SpanForest& forest,
                            const std::unordered_set<uint64_t>& mask) {
  const std::unordered_map<uint64_t, size_t> index = IndexById(forest);

  // Cycles consumed by a span's own (non-detached) children; self = total −
  // this, never negative (clock skew cannot happen, but clipped horizons can
  // make an unclosed child appear longer than its unclosed parent).
  std::unordered_map<uint64_t, uint64_t> child_total;
  for (const SpanRecord& record : forest.records) {
    if (record.detached || !record.parent.valid()) {
      continue;
    }
    child_total[record.parent.value] += EffectiveDuration(record, forest.total_cycles);
  }

  std::map<std::string, uint64_t> lines;  // sorted, deterministic output
  for (const SpanRecord& record : forest.records) {
    if (record.detached || !InMask(mask, record.id.value)) {
      continue;
    }
    const uint64_t total = EffectiveDuration(record, forest.total_cycles);
    const auto child_it = child_total.find(record.id.value);
    const uint64_t children = child_it == child_total.end() ? 0 : child_it->second;
    const uint64_t self = total > children ? total - children : 0;
    if (self == 0) {
      continue;
    }
    // Build the semicolon path root-first by walking parents.
    std::vector<std::string_view> path;
    path.push_back(record.name);
    SpanId cursor = record.parent;
    size_t guard = 0;
    while (cursor.valid() && guard++ < forest.records.size()) {
      auto it = index.find(cursor.value);
      if (it == index.end()) {
        break;
      }
      const SpanRecord& ancestor = forest.records[it->second];
      if (!ancestor.detached) {
        path.push_back(ancestor.name);
      }
      cursor = ancestor.parent;
    }
    std::string line;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (!line.empty()) {
        line.push_back(';');
      }
      line.append(*it);
    }
    lines[line] += self;
  }

  std::ostringstream out;
  for (const auto& [path, self] : lines) {
    out << path << " " << self << "\n";
  }
  return out.str();
}

Attribution AttributedCycles(const SpanForest& forest) {
  Attribution result;
  result.total_cycles = forest.total_cycles;
  for (const SpanRecord& record : forest.records) {
    if (record.detached || record.parent.valid()) {
      continue;  // only non-detached roots cover the timeline
    }
    result.attributed_cycles += EffectiveDuration(record, forest.total_cycles);
  }
  result.attributed_cycles = std::min(result.attributed_cycles, result.total_cycles);
  result.fraction = result.total_cycles == 0
                        ? 0.0
                        : static_cast<double>(result.attributed_cycles) /
                              static_cast<double>(result.total_cycles);
  return result;
}

}  // namespace spv::trace
