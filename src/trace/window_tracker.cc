#include "trace/window_tracker.h"

#include <algorithm>

#include "base/types.h"

namespace spv::trace {

namespace {

constexpr uint64_t PageBase(uint64_t addr) { return addr & ~(kPageSize - 1); }

constexpr uint64_t PagesFor(uint64_t addr, uint64_t len) {
  return ((addr & (kPageSize - 1)) + len + kPageSize - 1) >> kPageShift;
}

}  // namespace

std::string_view WindowKindName(WindowKind kind) {
  switch (kind) {
    case WindowKind::kStaleIotlb:
      return "stale_iotlb";
    case WindowKind::kSubPage:
      return "sub_page";
  }
  return "?";
}

WindowTracker::WindowTracker(telemetry::Hub& hub, Tracer* tracer, Config config)
    : hub_(hub), tracer_(tracer), config_(config) {}

void WindowTracker::OnEvent(const telemetry::Event& event) {
  switch (event.kind) {
    case telemetry::EventKind::kSpanOpen:
    case telemetry::EventKind::kSpanClose:
    case telemetry::EventKind::kWindowOpen:
    case telemetry::EventKind::kWindowClose:
      return;  // our own output (possibly recursive); structure, not signal
    case telemetry::EventKind::kDmaMap:
      OnDmaMap(event);
      return;
    case telemetry::EventKind::kDmaUnmap:
      OnDmaUnmap(event);
      return;
    case telemetry::EventKind::kIotlbInvalidate:
      if (event.site == "unmap_strict") {
        // The event is stamped *after* the synchronous stall; aux carries its
        // cost, so the window opens back at the start of the invalidation.
        pending_strict_.push_back(PendingStrictInvalidation{
            event.device, PageBase(event.addr2),
            event.cycle > event.aux ? event.cycle - event.aux : 0});
      }
      return;
    case telemetry::EventKind::kIommuFlush:
      OnFlush(event);
      return;
    case telemetry::EventKind::kStaleIotlbHit:
      OnStaleHit(event);
      return;
    case telemetry::EventKind::kSpadeFinding:
      OnDetection(event, /*dkasan=*/false);
      return;
    case telemetry::EventKind::kDkasanReport:
      OnDetection(event, /*dkasan=*/true);
      return;
    default:
      return;
  }
}

size_t WindowTracker::NewWindow(WindowKind kind, const telemetry::Event& event,
                                uint64_t iova_page, uint64_t pages, uint64_t exposed) {
  if (windows_.size() >= config_.max_windows) {
    ++dropped_windows_;
    return SIZE_MAX;
  }
  Window window;
  window.kind = kind;
  window.device = event.device;
  window.iova_page = iova_page;
  window.pages = pages;
  window.exposed_bytes = exposed;
  window.open_cycle = event.cycle;
  if (tracer_ != nullptr) {
    window.span = tracer_->OpenDetached(
        kind == WindowKind::kStaleIotlb ? "window.stale" : "window.subpage",
        SpanId{hub_.current_span()});
  }
  windows_.push_back(std::move(window));
  return windows_.size() - 1;
}

void WindowTracker::PublishWindowEvent(const Window& window, bool open,
                                       telemetry::Severity severity) {
  if (!hub_.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = open ? telemetry::EventKind::kWindowOpen : telemetry::EventKind::kWindowClose;
  event.severity = severity;
  event.device = window.device;
  event.addr2 = window.iova_page;
  event.len = window.pages << kPageShift;
  event.aux = open ? window.exposed_bytes : window.duration();
  event.flag = window.detected;
  event.span = window.span.value;  // 0 lets the Hub stamp the current span
  event.origin = this;
  event.site = std::string("window.") +
               (window.kind == WindowKind::kStaleIotlb ? "stale" : "subpage");
  if (!open && !window.close_reason.empty()) {
    event.site += ":" + window.close_reason;
  }
  hub_.Publish(std::move(event));
}

void WindowTracker::CloseWindow(size_t index, uint64_t cycle, std::string reason) {
  Window& window = windows_[index];
  if (!window.open) {
    return;
  }
  window.open = false;
  window.close_cycle = cycle;
  window.close_reason = std::move(reason);
  const uint64_t duration = window.duration();
  telemetry::Histogram& internal = window.kind == WindowKind::kStaleIotlb
                                       ? stale_open_cycles_
                                       : subpage_open_cycles_;
  internal.Record(duration);
  if (hub_.enabled()) {
    hub_.counter(window.kind == WindowKind::kStaleIotlb ? "window.stale.closed"
                                                        : "window.subpage.closed")
        .Add();
    hub_.histogram(window.kind == WindowKind::kStaleIotlb ? "window.stale.open_cycles"
                                                          : "window.subpage.open_cycles")
        .Record(duration);
  }
  PublishWindowEvent(window, /*open=*/false,
                     window.kind == WindowKind::kStaleIotlb
                         ? telemetry::Severity::kInfo
                         : telemetry::Severity::kTrace);
  if (tracer_ != nullptr && window.span.valid()) {
    tracer_->Close(window.span);
  }
}

void WindowTracker::OnDmaMap(const telemetry::Event& event) {
  // Sub-page exposure: the mapping covers whole pages; a writable mapping
  // whose buffer does not fill them exposes the remainder to the device.
  const bool writable = (event.aux & 2) != 0;  // AccessRights::kWrite bit
  const uint64_t pages = PagesFor(event.addr2, event.len);
  const uint64_t exposed = (pages << kPageShift) - event.len;
  if (!writable || exposed == 0) {
    return;
  }
  const uint64_t page = PageBase(event.addr2);
  const size_t index = NewWindow(WindowKind::kSubPage, event, page, pages, exposed);
  if (index == SIZE_MAX) {
    return;
  }
  open_subpage_[{event.device, page}] = index;
  if (hub_.enabled()) {
    hub_.counter("window.subpage.opened").Add();
  }
  PublishWindowEvent(windows_[index], /*open=*/true, telemetry::Severity::kTrace);
}

void WindowTracker::OnDmaUnmap(const telemetry::Event& event) {
  const uint64_t page = PageBase(event.addr2);
  const uint64_t pages = PagesFor(event.addr2, event.len);

  // The mapping is gone either way: close its sub-page window.
  if (auto it = open_subpage_.find({event.device, page}); it != open_subpage_.end()) {
    CloseWindow(it->second, event.cycle, "unmap");
    open_subpage_.erase(it);
  }

  if (!config_.iommu_enabled) {
    return;  // no translations, no stale windows
  }

  // Strict mode announced itself: per-page kIotlbInvalidate events with site
  // "unmap_strict" immediately precede this kDmaUnmap. The stale window then
  // spans only the synchronous invalidation itself.
  uint64_t first_invalidate_cycle = UINT64_MAX;
  size_t covered = 0;
  for (const PendingStrictInvalidation& pending : pending_strict_) {
    if (pending.device == event.device && pending.iova_page >= page &&
        pending.iova_page < page + (pages << kPageShift)) {
      first_invalidate_cycle = std::min(first_invalidate_cycle, pending.cycle);
      ++covered;
    }
  }
  pending_strict_.clear();

  if (covered >= pages) {
    // Record the (already closed) strict window without a detached span —
    // it opened in the past and tracer spans cannot be backdated.
    if (windows_.size() >= config_.max_windows) {
      ++dropped_windows_;
      return;
    }
    Window window;
    window.kind = WindowKind::kStaleIotlb;
    window.device = event.device;
    window.iova_page = page;
    window.pages = pages;
    window.open_cycle = first_invalidate_cycle;
    window.open = false;
    window.close_cycle = event.cycle;
    window.close_reason = "strict";
    const uint64_t duration = window.duration();
    stale_open_cycles_.Record(duration);
    if (hub_.enabled()) {
      hub_.counter("window.stale.opened").Add();
      hub_.counter("window.stale.closed").Add();
      hub_.histogram("window.stale.open_cycles").Record(duration);
    }
    PublishWindowEvent(window, /*open=*/false, telemetry::Severity::kInfo);
    windows_.push_back(std::move(window));
    return;
  }

  // Deferred: the translation stays cached until the next flush.
  const size_t index =
      NewWindow(WindowKind::kStaleIotlb, event, page, pages, /*exposed=*/0);
  if (index == SIZE_MAX) {
    return;
  }
  open_stale_.push_back(index);
  if (hub_.enabled()) {
    hub_.counter("window.stale.opened").Add();
  }
  PublishWindowEvent(windows_[index], /*open=*/true, telemetry::Severity::kInfo);
}

void WindowTracker::OnFlush(const telemetry::Event& event) {
  // FlushNow drains the whole queue: every open stale window closes here.
  // site is "flush_now:<reason>"; keep the reason in the close record.
  std::string reason = "flush";
  if (const size_t colon = event.site.find(':'); colon != std::string::npos) {
    reason = "flush:" + event.site.substr(colon + 1);
  }
  for (const size_t index : open_stale_) {
    CloseWindow(index, event.cycle, reason);
  }
  open_stale_.clear();
}

void WindowTracker::OnStaleHit(const telemetry::Event& event) {
  const uint64_t page = PageBase(event.addr2);
  // Prefer a device-exact match; fall back to page-only (shared domains).
  size_t match = SIZE_MAX;
  for (const size_t index : open_stale_) {
    const Window& window = windows_[index];
    const bool in_range = page >= window.iova_page &&
                          page < window.iova_page + (window.pages << kPageShift);
    if (!in_range) {
      continue;
    }
    if (window.device == event.device) {
      match = index;
      break;
    }
    if (match == SIZE_MAX) {
      match = index;
    }
  }
  if (match == SIZE_MAX) {
    return;
  }
  Window& window = windows_[match];
  if (window.device_hits == 0) {
    window.first_hit_cycle = event.cycle;
  }
  ++window.device_hits;
  if (hub_.enabled()) {
    hub_.counter("window.stale.hits").Add();
  }
}

void WindowTracker::OnDetection(const telemetry::Event& event, bool dkasan) {
  // Attribute the detection to the most recent open window, falling back to
  // the most recently opened record of any state (the detector may fire
  // right after a flush closed the window it caught).
  size_t target = SIZE_MAX;
  if (!open_stale_.empty()) {
    target = open_stale_.back();
  } else {
    for (size_t i = windows_.size(); i > 0; --i) {
      if (windows_[i - 1].kind == WindowKind::kStaleIotlb) {
        target = i - 1;
        break;
      }
    }
  }
  if (target == SIZE_MAX) {
    return;
  }
  Window& window = windows_[target];
  const uint64_t latency =
      event.cycle > window.open_cycle ? event.cycle - window.open_cycle : 0;
  telemetry::Histogram& internal = dkasan ? detect_latency_dkasan_ : detect_latency_spade_;
  internal.Record(latency);
  if (!window.detected) {
    window.detected = true;
    window.detect_cycle = event.cycle;
  }
  if (hub_.enabled()) {
    hub_.histogram(dkasan ? "window.detect_latency.dkasan" : "window.detect_latency.spade")
        .Record(latency);
    hub_.counter(dkasan ? "window.detected.dkasan" : "window.detected.spade").Add();
  }
  // D-KASAN is a runtime detector: its report ends the exploitable interval
  // (the kernel now knows). SPADE is static analysis over sites — a finding
  // does not invalidate a live translation, so the window stays open.
  if (dkasan && window.open) {
    CloseWindow(target, event.cycle, "detected:dkasan");
    open_stale_.erase(std::remove(open_stale_.begin(), open_stale_.end(), target),
                      open_stale_.end());
  }
}

}  // namespace spv::trace
