#include "trace/tracer.h"

#include <algorithm>

#include "trace/profile.h"

namespace spv::trace {

namespace {

telemetry::Event SpanEvent(const SpanRecord& record, bool open) {
  telemetry::Event event;
  event.kind = open ? telemetry::EventKind::kSpanOpen : telemetry::EventKind::kSpanClose;
  event.severity = telemetry::Severity::kTrace;
  event.addr = record.parent.value;
  event.aux = open ? 0 : record.duration();
  event.flag = record.detached;
  event.span = record.id.value;
  event.site = record.name;
  return event;
}

}  // namespace

Tracer::Tracer(telemetry::Hub& hub, const SimClock& clock, TracerConfig config)
    : hub_(hub), clock_(clock), config_(config) {}

Tracer::~Tracer() {
  // Leave the Hub's span register clean for whoever outlives us.
  hub_.set_current_span(0);
}

SpanRecord* Tracer::Find(SpanId id) {
  if (!id.valid() || id.value > records_.size()) {
    return nullptr;
  }
  return &records_[id.value - 1];
}

SpanId Tracer::Open(std::string_view name) {
  if (!config_.enabled) {
    return kNoSpan;
  }
  if (records_.size() >= config_.max_records) {
    ++dropped_spans_;
    return kNoSpan;
  }
  SpanRecord record;
  record.id = SpanId{records_.size() + 1};
  record.parent = current();
  record.name = std::string(name);
  record.open_cycle = clock_.now();
  records_.push_back(record);
  stack_.push_back(record.id);
  hub_.set_current_span(record.id.value);
  if (hub_.active()) {
    hub_.Publish(SpanEvent(record, /*open=*/true));
  }
  return record.id;
}

SpanId Tracer::OpenDetached(std::string_view name, SpanId parent) {
  if (!config_.enabled) {
    return kNoSpan;
  }
  if (records_.size() >= config_.max_records) {
    ++dropped_spans_;
    return kNoSpan;
  }
  SpanRecord record;
  record.id = SpanId{records_.size() + 1};
  record.parent = parent;
  record.name = std::string(name);
  record.open_cycle = clock_.now();
  record.detached = true;
  records_.push_back(record);
  // No stack push and no current-span change: a detached span does not
  // adopt the events of whoever happens to run while it is open.
  if (hub_.active()) {
    hub_.Publish(SpanEvent(record, /*open=*/true));
  }
  return record.id;
}

void Tracer::CloseRecord(SpanRecord& record) {
  record.closed = true;
  record.close_cycle = clock_.now();
  if (hub_.active()) {
    hub_.Publish(SpanEvent(record, /*open=*/false));
  }
}

void Tracer::Close(SpanId id) {
  if (!id.valid()) {
    return;  // Open() was disabled or full; matching no-op
  }
  SpanRecord* record = Find(id);
  if (record == nullptr || record->closed) {
    ++orphan_closes_;
    return;
  }
  if (record->detached) {
    CloseRecord(*record);
    return;
  }
  if (std::find(stack_.begin(), stack_.end(), id) == stack_.end()) {
    // A stack span that is neither closed nor on the stack: its subtree was
    // already unwound past it. Count it, close the record, move on.
    ++orphan_closes_;
    CloseRecord(*record);
    return;
  }
  // Close everything opened above `id` first so the stack discipline holds
  // even when an inner span leaks its Close.
  while (!stack_.empty()) {
    const SpanId top = stack_.back();
    stack_.pop_back();
    if (SpanRecord* top_record = Find(top); top_record != nullptr && !top_record->closed) {
      CloseRecord(*top_record);
    }
    if (top == id) {
      break;
    }
  }
  hub_.set_current_span(current().value);
}

std::string Tracer::ChromeTraceJson() const {
  SpanForest forest;
  forest.records = records_;
  forest.total_cycles = clock_.now();
  return trace::ChromeTraceJson(forest,
                                CollectInstants(hub_.ring().Snapshot(),
                                                telemetry::Severity::kWarn));
}

std::string Tracer::CollapsedStacks() const {
  SpanForest forest;
  forest.records = records_;
  forest.total_cycles = clock_.now();
  return trace::CollapsedStacks(forest);
}

}  // namespace spv::trace
