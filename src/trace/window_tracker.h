// Vulnerability-window accounting (ISSUE 4 tentpole, part 3; paper §5.2.1,
// Fig. 7).
//
// A WindowTracker is an EventSink that watches the normal event stream and
// maintains the set of *windows* — intervals during which a device can reach
// memory the kernel believes it cannot:
//
//   * stale-IOTLB windows: a dma_unmap under deferred invalidation leaves
//     the old translation cached until the next flush. Opens at kDmaUnmap
//     (when no strict per-page invalidation preceded it), closes at
//     kIommuFlush or at a D-KASAN detection. Under strict invalidation the
//     window is the synchronous invalidation latency itself (~2000 cycles
//     per page), recorded closed on the spot — the deferred-vs-strict gap
//     in the resulting open-cycles histogram *is* Fig. 7.
//
//   * sub-page windows: a writable map whose buffer does not fill its pages
//     exposes the co-resident bytes (type-b/c/d co-residency). Opens at
//     kDmaMap when exposed_bytes > len and the mapping is device-writable,
//     closes at the matching kDmaUnmap.
//
// Each window is materialized as a *detached span* (when a Tracer is
// attached), published as kWindowOpen/kWindowClose events, and aggregated
// into open-cycles histograms plus per-detector (SPADE, D-KASAN) detection
// latency. Histograms are kept internally so benches can read them with hub
// recording off, and mirrored into hub histograms when recording is on.
//
// Mode inference is evidence-based: the tracker never asks the Iommu for its
// config (that would invert the spv_trace <- spv_iommu layering). Strict
// unmaps announce themselves through the per-page kIotlbInvalidate events
// (site "unmap_strict") that immediately precede their kDmaUnmap.

#ifndef SPV_TRACE_WINDOW_TRACKER_H_
#define SPV_TRACE_WINDOW_TRACKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"
#include "trace/tracer.h"

namespace spv::trace {

enum class WindowKind : uint8_t {
  kStaleIotlb,  // unmapped but still translated (Fig. 6 window)
  kSubPage,     // mapped, writable, larger than the buffer
};

std::string_view WindowKindName(WindowKind kind);

struct Window {
  WindowKind kind = WindowKind::kStaleIotlb;
  SpanId span;              // kNoSpan when no Tracer is attached
  uint32_t device = 0;
  uint64_t iova_page = 0;   // page-aligned base IOVA
  uint64_t pages = 0;
  uint64_t exposed_bytes = 0;  // sub-page: bytes reachable beyond the buffer
  uint64_t open_cycle = 0;
  uint64_t close_cycle = 0;
  bool open = true;
  uint64_t device_hits = 0;       // stale translations actually served inside
  uint64_t first_hit_cycle = 0;
  bool detected = false;          // a detector fired while it was open
  uint64_t detect_cycle = 0;
  std::string close_reason;       // "flush:<reason>" / "unmap" / "detected:<d>"

  uint64_t duration() const { return open ? 0 : close_cycle - open_cycle; }
};

class WindowTracker : public telemetry::EventSink {
 public:
  struct Config {
    size_t max_windows = 1 << 18;  // bound on retained Window records
    // When the machine runs without an IOMMU there is no flush to ever close
    // a stale window; the tracker then skips stale tracking entirely.
    bool iommu_enabled = true;
  };

  // `tracer` may be null (windows then carry kNoSpan ids). The tracker does
  // not add itself to the hub; the owner wires AddSink/RemoveSink.
  WindowTracker(telemetry::Hub& hub, Tracer* tracer) : WindowTracker(hub, tracer, Config{}) {}
  WindowTracker(telemetry::Hub& hub, Tracer* tracer, Config config);

  void OnEvent(const telemetry::Event& event) override;

  const std::vector<Window>& windows() const { return windows_; }
  size_t open_stale_count() const { return open_stale_.size(); }
  size_t open_subpage_count() const { return open_subpage_.size(); }
  uint64_t dropped_windows() const { return dropped_windows_; }

  // Aggregates, readable regardless of hub recording state.
  telemetry::Histogram::Summary stale_open_summary() const {
    return stale_open_cycles_.Summarize();
  }
  telemetry::Histogram::Summary subpage_open_summary() const {
    return subpage_open_cycles_.Summarize();
  }
  telemetry::Histogram::Summary spade_latency_summary() const {
    return detect_latency_spade_.Summarize();
  }
  telemetry::Histogram::Summary dkasan_latency_summary() const {
    return detect_latency_dkasan_.Summarize();
  }
  const telemetry::Histogram& stale_open_cycles() const { return stale_open_cycles_; }

 private:
  struct PendingStrictInvalidation {
    uint32_t device = 0;
    uint64_t iova_page = 0;
    uint64_t cycle = 0;
  };

  void OnDmaMap(const telemetry::Event& event);
  void OnDmaUnmap(const telemetry::Event& event);
  void OnFlush(const telemetry::Event& event);
  void OnStaleHit(const telemetry::Event& event);
  void OnDetection(const telemetry::Event& event, bool dkasan);

  // Returns SIZE_MAX when the record budget is exhausted.
  size_t NewWindow(WindowKind kind, const telemetry::Event& event, uint64_t iova_page,
                   uint64_t pages, uint64_t exposed);
  void CloseWindow(size_t index, uint64_t cycle, std::string reason);
  void PublishWindowEvent(const Window& window, bool open,
                          telemetry::Severity severity);

  telemetry::Hub& hub_;
  Tracer* tracer_;
  Config config_;

  std::vector<Window> windows_;
  std::vector<size_t> open_stale_;                    // indices into windows_
  std::map<std::pair<uint32_t, uint64_t>, size_t> open_subpage_;  // (dev, page)
  std::vector<PendingStrictInvalidation> pending_strict_;
  uint64_t dropped_windows_ = 0;

  telemetry::Histogram stale_open_cycles_;
  telemetry::Histogram subpage_open_cycles_;
  telemetry::Histogram detect_latency_spade_;
  telemetry::Histogram detect_latency_dkasan_;
};

}  // namespace spv::trace

#endif  // SPV_TRACE_WINDOW_TRACKER_H_
