// Cycle-attribution exporters over a span forest.
//
// Two producers feed these: a live Tracer (its own SpanRecords) and
// tools/trace_cli (records rebuilt from a kSpanOpen/kSpanClose event stream
// with BuildSpanForest). Both render to the same two formats:
//
//   * Chrome trace-event JSON — Perfetto-loadable. Timebase is **sim
//     cycles**, emitted directly in the `ts`/`dur` microsecond fields (the
//     UI's unit label is wrong by a constant factor; relative widths, which
//     is what a profile is for, are exact). Stack spans are "X" complete
//     events on tid 1, detached window spans are async "b"/"e" pairs on
//     tid 2, warn+critical ring events are "i" instants.
//
//   * Collapsed stacks ("flamegraph" text) — one "root;child;leaf <self>"
//     line per distinct stack path, self cycles = total minus the total of
//     non-detached children. Detached spans are excluded: a window is not
//     CPU work attributable to its opener.

#ifndef SPV_TRACE_PROFILE_H_
#define SPV_TRACE_PROFILE_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "telemetry/telemetry.h"
#include "trace/tracer.h"

namespace spv::trace {

struct SpanForest {
  std::vector<SpanRecord> records;  // open order; ids need not be dense
  uint64_t total_cycles = 0;        // horizon for still-open spans
};

// A point event worth showing on the timeline (warn/critical ring records).
struct Instant {
  uint64_t cycle = 0;
  std::string name;
  std::string detail;
  uint64_t span = 0;
};

// Rebuilds a forest from a trace-event stream (ExportTraceCsv / ring
// snapshot). A kSpanClose whose kSpanOpen was overwritten in the ring is
// recovered from the close record's duration in `aux`.
SpanForest BuildSpanForest(const std::vector<telemetry::Event>& events);

// Warn-and-above (by default) non-span events, as timeline instants.
std::vector<Instant> CollectInstants(
    const std::vector<telemetry::Event>& events,
    telemetry::Severity min_severity = telemetry::Severity::kWarn);

// Ids of `root` and every span (detached included) below it.
std::unordered_set<uint64_t> SubtreeMask(const SpanForest& forest, SpanId root);

// Empty mask = everything.
std::string ChromeTraceJson(const SpanForest& forest,
                            const std::vector<Instant>& instants = {},
                            const std::unordered_set<uint64_t>& mask = {});
std::string CollapsedStacks(const SpanForest& forest,
                            const std::unordered_set<uint64_t>& mask = {});

// How much of the run the span tree explains — the ISSUE 4 ">= 95% of total
// cycles attributed to named spans" acceptance metric.
struct Attribution {
  uint64_t total_cycles = 0;       // forest horizon
  uint64_t attributed_cycles = 0;  // covered by non-detached root spans
  double fraction = 0.0;           // attributed / total (0 when total is 0)
};
Attribution AttributedCycles(const SpanForest& forest);

}  // namespace spv::trace

#endif  // SPV_TRACE_PROFILE_H_
