// spv::trace — causal spans over the telemetry Hub.
//
// A span brackets one multi-step operation (a DMA map, a packet's trip
// through NIC and stack, an IOTLB flush drain, an attack stage, a detector
// scan). Opening a span publishes a kSpanOpen event and sets the Hub's
// current-span register, so every event emitted until the matching Close is
// causally linked to it via Event::span — no per-site plumbing. Closing
// publishes kSpanClose with the open duration in `aux`.
//
// Ids are deterministic: the n-th span opened on a Tracer gets id n. Since
// the whole simulation is seeded and the clock is logical, two identical runs
// produce identical span trees — the property the regression tests pin.
//
// Cost model: emit sites hold a `Tracer*` that is null (or disabled) when
// tracing is off, so the disabled hot path pays exactly one pointer test —
// the "zero new hot-path branches" budget of ISSUE 4 (the branch replaces
// nothing; it is the same guard shape as the existing `hub && hub->active()`
// telemetry gates).

#ifndef SPV_TRACE_TRACER_H_
#define SPV_TRACE_TRACER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/clock.h"
#include "telemetry/telemetry.h"

namespace spv::trace {

// Strongly typed span id. 0 is "no span" (kNoSpan): events outside any span
// carry it, and a Tracer that is disabled or full hands it out so callers
// need no error path.
struct SpanId {
  uint64_t value = 0;
  bool valid() const { return value != 0; }
  friend bool operator==(SpanId a, SpanId b) { return a.value == b.value; }
  friend bool operator!=(SpanId a, SpanId b) { return a.value != b.value; }
};

inline constexpr SpanId kNoSpan{};

struct SpanRecord {
  SpanId id;
  SpanId parent;        // kNoSpan for roots
  std::string name;
  uint64_t open_cycle = 0;
  uint64_t close_cycle = 0;
  bool closed = false;
  // Detached spans (vulnerability windows) live outside the call stack: they
  // do not nest under the opener and are excluded from flamegraph self time.
  bool detached = false;

  uint64_t duration() const { return closed ? close_cycle - open_cycle : 0; }
};

struct TracerConfig {
  bool enabled = false;          // spans off by default, like Hub recording
  size_t max_records = 1 << 20;  // bound on retained SpanRecords
  // Install a WindowTracker sink on the Machine's hub (vulnerability-window
  // accounting). Read by core::Machine, not by the Tracer itself.
  bool track_windows = true;
};

// Single-owner span registry. Not thread-safe (the simulator is
// single-threaded; CpuId is data, not a thread).
class Tracer {
 public:
  Tracer(telemetry::Hub& hub, const SimClock& clock, TracerConfig config);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return config_.enabled; }

  // Opens a span nested under the currently open one (stack discipline).
  // Returns kNoSpan when disabled or when max_records is exhausted.
  SpanId Open(std::string_view name);

  // Opens a span with an explicit parent, outside the stack — for windows
  // and other operations whose lifetime does not follow call structure.
  SpanId OpenDetached(std::string_view name, SpanId parent = kNoSpan);

  // Closes `id`. Spans still open above it on the stack are closed first
  // (implicit close, same cycle) so the stack discipline self-heals. Closing
  // kNoSpan is a no-op; closing an unknown or already-closed id is counted
  // in orphan_closes() and otherwise ignored.
  void Close(SpanId id);

  // Stack top, or kNoSpan.
  SpanId current() const { return stack_.empty() ? kNoSpan : stack_.back(); }

  const std::vector<SpanRecord>& records() const { return records_; }
  uint64_t orphan_closes() const { return orphan_closes_; }
  uint64_t dropped_spans() const { return dropped_spans_; }

  // Exporters over this Tracer's own records (see profile.h for the
  // event-stream variants used by trace_cli).
  std::string ChromeTraceJson() const;
  std::string CollapsedStacks() const;

  telemetry::Hub& hub() { return hub_; }

 private:
  SpanRecord* Find(SpanId id);
  void CloseRecord(SpanRecord& record);

  telemetry::Hub& hub_;
  const SimClock& clock_;
  TracerConfig config_;
  std::vector<SpanRecord> records_;  // id n lives at records_[n - 1]
  std::vector<SpanId> stack_;
  uint64_t orphan_closes_ = 0;
  uint64_t dropped_spans_ = 0;
};

// RAII span. Tolerates a null tracer so emit sites can hold an unconditional
// ScopedSpan — the null/disabled case costs one branch.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        id_(tracer_ != nullptr ? tracer_->Open(name) : kNoSpan) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->Close(id_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanId id() const { return id_; }

 private:
  Tracer* tracer_;
  SpanId id_;
};

}  // namespace spv::trace

#endif  // SPV_TRACE_TRACER_H_
