// SPADE: Sub-Page Analysis for DMA Exposure (§4.1).
//
// Pipeline: for every dma_map* call site, identify the mapped variable,
// backtrack its declarations and assignments (interprocedurally when the
// buffer arrives as a parameter), resolve the exposed data structure in the
// LayoutDb, and classify:
//
//   type (a): the mapped buffer is embedded in a larger struct whose other
//             fields (callback pointers!) share the mapped page;
//   type (b): an OS API places metadata inside the buffer (build_skb /
//             skb->data always drag skb_shared_info along);
//   type (c): the buffer comes from a page_frag-family allocator, so the
//             page is mapped by multiple IOVAs;
//   plus the Table-2 extras: private-data APIs (netdev_priv & friends) and
//   stack-resident buffers.
//
// Known limitations, reproduced faithfully (§4.3): buffers passed through
// function pointers or assembled by macros are lost (false negatives);
// structs crossing a page boundary may be flagged although the callback
// field lies on the other page (false positives).

#ifndef SPV_SPADE_ANALYZER_H_
#define SPV_SPADE_ANALYZER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "spade/ast.h"
#include "spade/layout_db.h"
#include "telemetry/telemetry.h"
#include "trace/tracer.h"

namespace spv::spade {

// The set of functions implementing the DMA API (dma_map*).
bool IsDmaMapFunction(const std::string& name);
// page_frag-family allocators (type (c) creators, §5.2.2).
bool IsPageFragAllocator(const std::string& name);
// APIs returning pointers into pages that also hold sensitive private data.
bool IsPrivateDataApi(const std::string& name);
// Heap allocators (kmalloc family).
bool IsHeapAllocator(const std::string& name);

struct SiteFinding {
  std::string file;
  int line = 0;
  std::string function;   // enclosing function
  std::string callee;     // dma_map_single / dma_map_page / dma_map_sg

  // Classification flags (one site may set several).
  bool exposes_struct = false;       // type (a): mapped buffer inside a struct
  std::string exposed_struct;        // its name
  bool callbacks_exposed = false;    // exposed struct carries callbacks
  uint32_t direct_callbacks = 0;
  uint32_t spoofable_callbacks = 0;
  bool shared_info_mapped = false;   // type (b): skb->data / build_skb path
  bool via_build_skb = false;
  bool type_c = false;               // buffer from a page_frag allocator
  bool private_data = false;         // netdev_priv-style origin
  bool stack_mapped = false;         // buffer lives on the stack
  bool unresolved = false;           // SPADE could not follow the variable
  // §4.3 limitation, reproduced: the exposed struct is larger than a page,
  // so a flagged callback may live on a page the device cannot reach.
  bool possible_false_positive = false;

  std::vector<std::string> trace;    // Figure-2 style numbered backtrace
};

// Table 2 aggregation.
struct SummaryRow {
  uint64_t calls = 0;
  uint64_t files = 0;
};

struct Summary {
  // Distinct data structures found exposed on mapped pages (the paper counts
  // 19 exposed via private-data APIs alone).
  std::set<std::string> exposed_structs;
  SummaryRow callbacks_exposed;          // row 1
  SummaryRow shared_info_mapped;         // row 2
  SummaryRow callbacks_exposed_directly; // row 3
  SummaryRow private_data_mapped;        // row 4
  SummaryRow stack_mapped;               // row 5
  SummaryRow type_c;                     // row 6
  SummaryRow build_skb_used;             // row 7
  uint64_t total_calls = 0;
  uint64_t total_files = 0;
  uint64_t vulnerable_calls = 0;         // any flag set ("72.8%")

  std::string ToString() const;  // Table-2 shaped text
};

// A use of a vulnerability-creating API outside the map call itself: the
// paper counts page_frag-family uses (Table 2 row 6: 344) and build_skb uses
// (row 7: 46) as call sites, independent of dma_map backtracking.
struct ApiUse {
  std::string file;
  int line = 0;
  std::string callee;
};

class SpadeAnalyzer {
 public:
  // Publishes one kSpadeFinding event per vulnerable map site during
  // Analyze() and Table-2 counters during Summarize(). Pass nullptr to detach.
  void set_telemetry(telemetry::Hub* hub) { hub_ = hub; }

  // Optional causal span tracer: Analyze() runs under a "spade.analyze"
  // span so findings are causally linked to the scan. Pass nullptr to detach.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Adds a parsed translation unit. Layouts from every file are pooled (the
  // kernel shares headers).
  void AddFile(SourceFile file);

  // Runs the analysis over everything added so far.
  Result<std::vector<SiteFinding>> Analyze();

  // Table-2 aggregation; uses the API-use counts collected by Analyze().
  Summary Summarize(const std::vector<SiteFinding>& findings) const;

  const std::vector<ApiUse>& api_uses() const { return api_uses_; }
  const LayoutDb& layout_db() const { return layout_db_; }

 private:
  struct Origin {
    enum class Kind {
      kUnknown,
      kStructField,   // &x->field / &x.field: struct exposed
      kSkbData,       // skb->data
      kPageFrag,      // page_frag-family allocation
      kHeap,          // kmalloc
      kPrivateData,   // netdev_priv etc.
      kStackObject,   // local (non-pointer) variable
      kBuildSkb,      // buffer passed to build_skb
    };
    Kind kind = Kind::kUnknown;
    std::string struct_name;       // for kStructField / kStackObject
    bool page_frag_origin = false; // buffer ultimately carved from a page_frag
    std::vector<std::string> trace;
  };

  void AnalyzeFunction(const SourceFile& file, const FuncDef& func,
                       std::vector<SiteFinding>& out);
  void WalkStmts(const SourceFile& file, const FuncDef& func, const std::vector<Stmt>& stmts,
                 std::vector<SiteFinding>& out);
  void VisitExpr(const SourceFile& file, const FuncDef& func, const Expr& expr,
                 std::vector<SiteFinding>& out);
  SiteFinding AnalyzeMapSite(const SourceFile& file, const FuncDef& func, const Expr& call);

  Origin ResolveBufferOrigin(const SourceFile& file, const FuncDef& func, const Expr& expr,
                             int depth);
  // dma_map_sg: chase the scatterlist back through sg_init_one/sg_set_buf.
  Origin ResolveScatterlistOrigin(const SourceFile& file, const FuncDef& func,
                                  const Expr& sg_arg, int map_line);
  Origin ResolveIdentOrigin(const SourceFile& file, const FuncDef& func,
                            const std::string& name, int use_line, int depth);
  Origin OriginFromCall(const SourceFile& file, const FuncDef& func, const Expr& call,
                        int depth);
  std::optional<TypeRef> TypeOfIdent(const FuncDef& func, const std::string& name,
                                     int use_line) const;
  Origin ResolveParamOrigin(const FuncDef& callee, size_t param_index, int depth);

  // Collects (decl/assign) statements that bind `name` in the function.
  struct Binding {
    int line = 0;
    const Expr* value = nullptr;   // initializer / rhs, may be null
    const TypeRef* type = nullptr; // for decls
  };
  static void CollectBindings(const std::vector<Stmt>& stmts, const std::string& name,
                              std::vector<Binding>& out);

  std::vector<SourceFile> files_;
  LayoutDb layout_db_;
  std::vector<ApiUse> api_uses_;
  bool finalized_ = false;
  telemetry::Hub* hub_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace spv::spade

#endif  // SPV_SPADE_ANALYZER_H_
