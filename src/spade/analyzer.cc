#include "spade/analyzer.h"

#include "base/types.h"
#include <functional>

#include <algorithm>
#include <sstream>

namespace spv::spade {

namespace {
constexpr int kMaxInterproceduralDepth = 4;

std::string Fmt(const std::string& file, int line, const std::string& what) {
  return file + ":" + std::to_string(line) + ": " + what;
}
}  // namespace

bool IsDmaMapFunction(const std::string& name) {
  return name == "dma_map_single" || name == "dma_map_page" || name == "dma_map_sg" ||
         name == "pci_map_single" || name == "dma_map_single_attrs";
}

bool IsPageFragAllocator(const std::string& name) {
  return name == "netdev_alloc_skb" || name == "napi_alloc_skb" ||
         name == "netdev_alloc_frag" || name == "napi_alloc_frag" ||
         name == "page_frag_alloc" || name == "__netdev_alloc_skb";
}

bool IsPrivateDataApi(const std::string& name) {
  return name == "netdev_priv" || name == "aead_request_ctx" || name == "scsi_cmd_priv" ||
         name == "skcipher_request_ctx" || name == "usb_get_intfdata";
}

bool IsHeapAllocator(const std::string& name) {
  return name == "kmalloc" || name == "kzalloc" || name == "kcalloc" ||
         name == "kmem_cache_alloc";
}

void SpadeAnalyzer::AddFile(SourceFile file) {
  for (const StructDef& def : file.structs) {
    layout_db_.AddStruct(def);
  }
  files_.push_back(std::move(file));
}

Result<std::vector<SiteFinding>> SpadeAnalyzer::Analyze() {
  trace::ScopedSpan span(tracer_, "spade.analyze");
  if (!finalized_) {
    SPV_RETURN_IF_ERROR(layout_db_.Finalize());
    finalized_ = true;
  }
  std::vector<SiteFinding> findings;
  for (const SourceFile& file : files_) {
    for (const FuncDef& func : file.functions) {
      AnalyzeFunction(file, func, findings);
    }
  }
  if (hub_ != nullptr && hub_->active()) {
    for (const SiteFinding& finding : findings) {
      const bool vulnerable = finding.callbacks_exposed || finding.shared_info_mapped ||
                              finding.type_c || finding.private_data ||
                              finding.stack_mapped || finding.via_build_skb;
      if (!vulnerable) {
        continue;
      }
      telemetry::Event event;
      event.kind = telemetry::EventKind::kSpadeFinding;
      event.severity = telemetry::Severity::kWarn;
      event.len = static_cast<uint64_t>(finding.line);
      // Pack the classification flags so exports stay grep-able without the
      // SiteFinding struct: bit 0 = callbacks, 1 = shared_info, 2 = type (c),
      // 3 = private data, 4 = stack, 5 = build_skb.
      event.aux = (finding.callbacks_exposed ? 1u : 0u) |
                  (finding.shared_info_mapped ? 2u : 0u) | (finding.type_c ? 4u : 0u) |
                  (finding.private_data ? 8u : 0u) | (finding.stack_mapped ? 16u : 0u) |
                  (finding.via_build_skb ? 32u : 0u);
      event.flag = finding.possible_false_positive;
      event.origin = this;
      event.site = finding.file + ":" + std::to_string(finding.line) + " " +
                   finding.function + " -> " + finding.callee;
      hub_->Publish(std::move(event));
      if (hub_->enabled()) {
        hub_->counter("spade.vulnerable_sites").Add();
      }
    }
  }
  return findings;
}

void SpadeAnalyzer::AnalyzeFunction(const SourceFile& file, const FuncDef& func,
                                    std::vector<SiteFinding>& out) {
  WalkStmts(file, func, func.body, out);
}

void SpadeAnalyzer::WalkStmts(const SourceFile& file, const FuncDef& func,
                              const std::vector<Stmt>& stmts, std::vector<SiteFinding>& out) {
  for (const Stmt& stmt : stmts) {
    if (stmt.init != nullptr) {
      VisitExpr(file, func, *stmt.init, out);
    }
    if (stmt.expr != nullptr) {
      VisitExpr(file, func, *stmt.expr, out);
    }
    WalkStmts(file, func, stmt.body, out);
    WalkStmts(file, func, stmt.else_body, out);
  }
}

void SpadeAnalyzer::VisitExpr(const SourceFile& file, const FuncDef& func, const Expr& expr,
                              std::vector<SiteFinding>& out) {
  if (expr.kind == Expr::Kind::kCall && IsDmaMapFunction(expr.CalleeName())) {
    out.push_back(AnalyzeMapSite(file, func, expr));
  }
  if (expr.kind == Expr::Kind::kCall) {
    const std::string callee = expr.CalleeName();
    if (IsPageFragAllocator(callee) || callee == "build_skb") {
      api_uses_.push_back(ApiUse{file.path, expr.line, callee});
    }
  }
  if (expr.lhs != nullptr) {
    VisitExpr(file, func, *expr.lhs, out);
  }
  if (expr.rhs != nullptr) {
    VisitExpr(file, func, *expr.rhs, out);
  }
  for (const ExprPtr& arg : expr.args) {
    VisitExpr(file, func, *arg, out);
  }
}

SiteFinding SpadeAnalyzer::AnalyzeMapSite(const SourceFile& file, const FuncDef& func,
                                          const Expr& call) {
  SiteFinding finding;
  finding.file = file.path;
  finding.line = call.line;
  finding.function = func.name;
  finding.callee = call.CalleeName();
  finding.trace.push_back(
      Fmt(file.path, call.line, finding.callee + "(...) in " + func.name + "()"));

  // dma_map_single(dev, ptr, len, dir): mapped buffer is argument 1.
  // dma_map_page(dev, page, offset, len, dir): argument 1 as well.
  // dma_map_sg(dev, sgl, nents, dir): argument 1 is the scatterlist — the
  // real buffers were attached by sg_init_one/sg_set_buf, which we chase.
  if (call.args.size() < 2) {
    finding.unresolved = true;
    finding.trace.push_back("  could not identify mapped argument");
    return finding;
  }
  const Expr& buffer = *call.args[1];

  Origin origin;
  if (finding.callee == "dma_map_sg") {
    origin = ResolveScatterlistOrigin(file, func, buffer, call.line);
  } else {
    origin = ResolveBufferOrigin(file, func, buffer, 0);
  }
  for (const std::string& t : origin.trace) {
    finding.trace.push_back(t);
  }

  switch (origin.kind) {
    case Origin::Kind::kStructField:
    case Origin::Kind::kStackObject: {
      finding.exposes_struct = true;
      finding.exposed_struct = origin.struct_name;
      finding.stack_mapped = origin.kind == Origin::Kind::kStackObject;
      const StructLayout* layout = layout_db_.Find(origin.struct_name);
      if (layout != nullptr) {
        finding.direct_callbacks = layout->direct_callbacks;
        finding.spoofable_callbacks = layout->spoofable_callbacks;
        finding.callbacks_exposed =
            layout->direct_callbacks > 0 || layout->spoofable_callbacks > 0;
        finding.trace.push_back("  whole struct " + origin.struct_name + " (size " +
                                std::to_string(layout->size) +
                                ") shares the mapped page [type (a)]");
        if (layout->direct_callbacks > 0) {
          std::string names;
          for (const std::string& path : layout_db_.CallbackFieldPaths(origin.struct_name)) {
            names += (names.empty() ? "" : ", ") + path;
          }
          finding.trace.push_back("  callback pointers exposed directly: " +
                                  std::to_string(layout->direct_callbacks) + " (" + names +
                                  ")");
        }
        if (layout->spoofable_callbacks > 0) {
          finding.trace.push_back("  callback pointers spoofable via struct pointers: " +
                                  std::to_string(layout->spoofable_callbacks));
        }
        if (layout->size > kPageSize && finding.callbacks_exposed) {
          finding.possible_false_positive = true;
          finding.trace.push_back(
              "  (!) struct spans a page boundary — flagged callbacks may lie on an "
              "unmapped page (possible false positive, §4.3)");
        }
      }
      break;
    }
    case Origin::Kind::kSkbData:
    case Origin::Kind::kBuildSkb: {
      finding.shared_info_mapped = true;
      finding.via_build_skb = origin.kind == Origin::Kind::kBuildSkb;
      const StructLayout* shinfo = layout_db_.Find("skb_shared_info");
      finding.direct_callbacks = 0;
      finding.spoofable_callbacks = shinfo != nullptr ? shinfo->spoofable_callbacks : 0;
      finding.trace.push_back(
          "  skb_shared_info resides at the buffer tail [type (b), OS design]");
      if (origin.page_frag_origin) {
        finding.type_c = true;
        finding.trace.push_back(
            "  buffer came from a page_frag: page mapped by multiple IOVAs [type (c)]");
      }
      break;
    }
    case Origin::Kind::kPageFrag: {
      finding.type_c = true;
      finding.shared_info_mapped = true;  // the frag becomes skb data
      finding.trace.push_back(
          "  buffer carved from a page_frag: page mapped by multiple IOVAs [type (c)]");
      break;
    }
    case Origin::Kind::kPrivateData: {
      finding.private_data = true;
      finding.trace.push_back("  buffer points into a private-data region (netdev_priv-style)");
      break;
    }
    case Origin::Kind::kHeap: {
      finding.trace.push_back(
          "  kmalloc buffer: page may be shared with arbitrary objects [type (d), dynamic]");
      break;
    }
    case Origin::Kind::kUnknown: {
      finding.unresolved = true;
      finding.trace.push_back("  (!) could not follow the mapped variable — possible "
                              "false negative (function pointers / macros)");
      break;
    }
  }
  return finding;
}

SpadeAnalyzer::Origin SpadeAnalyzer::ResolveScatterlistOrigin(const SourceFile& file,
                                                              const FuncDef& func,
                                                              const Expr& sg_arg,
                                                              int map_line) {
  Origin origin;
  // The scatterlist variable: `&sg` or `sg`.
  const Expr* sg_expr = &sg_arg;
  if (sg_expr->kind == Expr::Kind::kAddrOf && sg_expr->lhs != nullptr) {
    sg_expr = sg_expr->lhs.get();
  }
  if (sg_expr->kind != Expr::Kind::kIdent) {
    return origin;
  }
  const std::string sg_name = sg_expr->text;

  // Find sg_init_one/sg_set_buf(sg, buf, len) calls binding this scatterlist
  // before the map; the buffer is argument 1.
  const Expr* attach = nullptr;
  std::function<void(const Expr&)> visit = [&](const Expr& e) {
    if (e.kind == Expr::Kind::kCall &&
        (e.CalleeName() == "sg_init_one" || e.CalleeName() == "sg_set_buf") &&
        e.args.size() >= 2 && e.line <= map_line) {
      const Expr* first = e.args[0].get();
      if (first->kind == Expr::Kind::kAddrOf && first->lhs != nullptr) {
        first = first->lhs.get();
      }
      if (first->kind == Expr::Kind::kIdent && first->text == sg_name) {
        attach = &e;
      }
    }
    if (e.lhs) visit(*e.lhs);
    if (e.rhs) visit(*e.rhs);
    for (const ExprPtr& a : e.args) visit(*a);
  };
  std::function<void(const std::vector<Stmt>&)> walk = [&](const std::vector<Stmt>& stmts) {
    for (const Stmt& s : stmts) {
      if (s.init) visit(*s.init);
      if (s.expr) visit(*s.expr);
      walk(s.body);
      walk(s.else_body);
    }
  };
  walk(func.body);
  if (attach == nullptr) {
    origin.trace.push_back(Fmt(file.path, map_line,
                               "scatterlist " + sg_name + " has no visible sg_init_one/"
                               "sg_set_buf — cannot follow"));
    return origin;
  }
  Origin from_buffer = ResolveBufferOrigin(file, func, *attach->args[1], 0);
  from_buffer.trace.insert(from_buffer.trace.begin(),
                           Fmt(file.path, attach->line,
                               "scatterlist " + sg_name + " attached to buffer by " +
                                   attach->CalleeName() + "()"));
  return from_buffer;
}

void SpadeAnalyzer::CollectBindings(const std::vector<Stmt>& stmts, const std::string& name,
                                    std::vector<Binding>& out) {
  for (const Stmt& stmt : stmts) {
    if (stmt.kind == Stmt::Kind::kDecl && stmt.decl_name == name) {
      out.push_back(Binding{stmt.line, stmt.init.get(), &stmt.decl_type});
    }
    if (stmt.kind == Stmt::Kind::kExpr && stmt.expr != nullptr &&
        stmt.expr->kind == Expr::Kind::kAssign && stmt.expr->lhs != nullptr &&
        stmt.expr->lhs->kind == Expr::Kind::kIdent && stmt.expr->lhs->text == name) {
      out.push_back(Binding{stmt.line, stmt.expr->rhs.get(), nullptr});
    }
    CollectBindings(stmt.body, name, out);
    CollectBindings(stmt.else_body, name, out);
  }
}

std::optional<TypeRef> SpadeAnalyzer::TypeOfIdent(const FuncDef& func, const std::string& name,
                                                  int use_line) const {
  std::optional<TypeRef> best;
  int best_line = -1;
  std::vector<Binding> bindings;
  CollectBindings(func.body, name, bindings);
  for (const Binding& binding : bindings) {
    if (binding.type != nullptr && binding.line <= use_line && binding.line > best_line) {
      best = *binding.type;
      best_line = binding.line;
    }
  }
  if (best.has_value()) {
    return best;
  }
  for (const ParamDecl& param : func.params) {
    if (param.name == name) {
      return param.type;
    }
  }
  return std::nullopt;
}

SpadeAnalyzer::Origin SpadeAnalyzer::ResolveBufferOrigin(const SourceFile& file,
                                                         const FuncDef& func, const Expr& expr,
                                                         int depth) {
  Origin origin;
  if (depth > kMaxInterproceduralDepth) {
    return origin;
  }

  switch (expr.kind) {
    case Expr::Kind::kAddrOf: {
      // &x->field / &x.field / &local / &local.field
      const Expr* inner = expr.lhs.get();
      if (inner == nullptr) {
        return origin;
      }
      if (inner->kind == Expr::Kind::kMember) {
        // Identify the struct that owns the field.
        const Expr* base = inner->lhs.get();
        while (base != nullptr && base->kind == Expr::Kind::kMember) {
          base = base->lhs.get();  // a.b.c: outermost struct is what's mapped
        }
        if (base != nullptr && base->kind == Expr::Kind::kIdent) {
          std::optional<TypeRef> type = TypeOfIdent(func, base->text, inner->line);
          if (type.has_value() && type->is_struct) {
            origin.kind = type->pointer_depth > 0 ? Origin::Kind::kStructField
                                                  : Origin::Kind::kStackObject;
            origin.struct_name = type->base;
            origin.trace.push_back(
                Fmt(file.path, inner->line,
                    "mapped pointer is &" + base->text +
                        (type->pointer_depth > 0 ? "->" : ".") + inner->text +
                        " — field of struct " + type->base));
            // Local (non-pointer) struct: on the stack.
            return origin;
          }
        }
        return origin;
      }
      if (inner->kind == Expr::Kind::kIdent) {
        std::optional<TypeRef> type = TypeOfIdent(func, inner->text, inner->line);
        if (type.has_value() && !type->IsPointer()) {
          origin.kind = Origin::Kind::kStackObject;
          origin.struct_name = type->is_struct ? type->base : type->base;
          origin.trace.push_back(Fmt(file.path, inner->line,
                                     "mapped pointer is &" + inner->text +
                                         " — local object on the stack"));
          return origin;
        }
      }
      if (inner->kind == Expr::Kind::kIndex && inner->lhs != nullptr &&
          inner->lhs->kind == Expr::Kind::kIdent) {
        std::optional<TypeRef> type = TypeOfIdent(func, inner->lhs->text, inner->line);
        if (type.has_value() && type->array_len > 0) {
          origin.kind = Origin::Kind::kStackObject;
          origin.struct_name = type->base;
          origin.trace.push_back(Fmt(file.path, inner->line,
                                     "mapped pointer is &" + inner->lhs->text +
                                         "[i] — local array on the stack"));
          return origin;
        }
      }
      return origin;
    }

    case Expr::Kind::kMember: {
      // x->data where x is an sk_buff: the canonical shared_info exposure.
      const Expr* base = expr.lhs.get();
      if (base != nullptr && base->kind == Expr::Kind::kIdent) {
        std::optional<TypeRef> type = TypeOfIdent(func, base->text, expr.line);
        if (type.has_value() && type->is_struct && type->base == "sk_buff" &&
            expr.text == "data") {
          origin.kind = Origin::Kind::kSkbData;
          origin.trace.push_back(Fmt(file.path, expr.line,
                                     "mapped pointer is " + base->text +
                                         "->data of struct sk_buff"));
          // Did the skb itself come from a page_frag allocator? Then the
          // mapping is ALSO a type (c): the page holds sibling buffers.
          Origin skb_origin = ResolveIdentOrigin(file, func, base->text, expr.line, depth + 1);
          if (skb_origin.kind == Origin::Kind::kPageFrag) {
            origin.page_frag_origin = true;
            for (const std::string& t : skb_origin.trace) {
              origin.trace.push_back(t);
            }
          }
          return origin;
        }
        // priv->field where priv came from netdev_priv etc.
        Origin base_origin = ResolveIdentOrigin(file, func, base->text, expr.line, depth);
        if (base_origin.kind == Origin::Kind::kPrivateData) {
          return base_origin;
        }
        // Generic pointer field of a struct: opaque heap buffer.
      }
      return origin;
    }

    case Expr::Kind::kIdent:
      return ResolveIdentOrigin(file, func, expr.text, expr.line, depth);

    case Expr::Kind::kCall:
      return OriginFromCall(file, func, expr, depth);

    case Expr::Kind::kCast:
    case Expr::Kind::kDeref:
      if (expr.lhs != nullptr) {
        return ResolveBufferOrigin(file, func, *expr.lhs, depth);
      }
      return origin;

    case Expr::Kind::kBinary:
      // ptr + offset: the base pointer decides.
      if (expr.lhs != nullptr) {
        return ResolveBufferOrigin(file, func, *expr.lhs, depth);
      }
      return origin;

    default:
      return origin;
  }
}

SpadeAnalyzer::Origin SpadeAnalyzer::ResolveIdentOrigin(const SourceFile& file,
                                                        const FuncDef& func,
                                                        const std::string& name, int use_line,
                                                        int depth) {
  Origin origin;
  std::vector<Binding> bindings;
  CollectBindings(func.body, name, bindings);

  // Latest binding at or before the use decides; later rebindings are a
  // different value.
  const Binding* best = nullptr;
  for (const Binding& binding : bindings) {
    if (binding.line <= use_line && (best == nullptr || binding.line > best->line)) {
      best = &binding;
    }
  }
  if (best != nullptr) {
    if (best->value != nullptr) {
      Origin from_value = ResolveBufferOrigin(file, func, *best->value, depth);
      if (from_value.kind != Origin::Kind::kUnknown) {
        std::string how = best->type != nullptr ? "declared" : "assigned";
        from_value.trace.insert(from_value.trace.begin(),
                                Fmt(file.path, best->line,
                                    name + " " + how + " here"));
        return from_value;
      }
    }
    if (best->type != nullptr && !best->type->IsPointer()) {
      origin.kind = Origin::Kind::kStackObject;
      origin.struct_name = best->type->base;
      origin.trace.push_back(Fmt(file.path, best->line, name + " is a local object"));
      return origin;
    }
    if (best->value == nullptr && best->type != nullptr) {
      // Declared but never visibly initialized: unknown.
      origin.trace.push_back(Fmt(file.path, best->line,
                                 name + " declared here (no visible initializer)"));
      return origin;
    }
  }

  // Parameter: go interprocedural through the callers.
  for (size_t i = 0; i < func.params.size(); ++i) {
    if (func.params[i].name == name) {
      Origin from_callers = ResolveParamOrigin(func, i, depth + 1);
      from_callers.trace.insert(
          from_callers.trace.begin(),
          Fmt(file.path, func.line, name + " is parameter " + std::to_string(i) + " of " +
                                        func.name + "() — tracing callers"));
      return from_callers;
    }
  }
  return origin;
}

SpadeAnalyzer::Origin SpadeAnalyzer::OriginFromCall(const SourceFile& file, const FuncDef& func,
                                                    const Expr& call, int depth) {
  Origin origin;
  const std::string callee = call.CalleeName();
  if (IsHeapAllocator(callee)) {
    origin.kind = Origin::Kind::kHeap;
    origin.trace.push_back(Fmt(file.path, call.line, "buffer from " + callee + "()"));
    return origin;
  }
  if (IsPageFragAllocator(callee)) {
    origin.kind = Origin::Kind::kPageFrag;
    origin.trace.push_back(Fmt(file.path, call.line,
                               "buffer from " + callee + "() — page_frag allocator"));
    return origin;
  }
  if (IsPrivateDataApi(callee)) {
    origin.kind = Origin::Kind::kPrivateData;
    origin.trace.push_back(Fmt(file.path, call.line, "pointer from " + callee + "()"));
    return origin;
  }
  if (callee == "build_skb") {
    origin.kind = Origin::Kind::kBuildSkb;
    origin.trace.push_back(Fmt(file.path, call.line,
                               "buffer wrapped by build_skb() — embeds skb_shared_info"));
    if (!call.args.empty()) {
      Origin arg_origin = ResolveBufferOrigin(file, func, *call.args[0], depth + 1);
      if (arg_origin.kind == Origin::Kind::kPageFrag || arg_origin.page_frag_origin) {
        origin.page_frag_origin = true;
        for (const std::string& t : arg_origin.trace) {
          origin.trace.push_back(t);
        }
      }
    }
    return origin;
  }
  // Unknown helper: function pointers / macros defeat the analysis (§4.3).
  return origin;
}

SpadeAnalyzer::Origin SpadeAnalyzer::ResolveParamOrigin(const FuncDef& callee,
                                                        size_t param_index, int depth) {
  Origin origin;
  if (depth > kMaxInterproceduralDepth) {
    return origin;
  }
  // Search every function in every file for calls to `callee`.
  for (const SourceFile& file : files_) {
    for (const FuncDef& caller : file.functions) {
      // Gather call expressions.
      std::vector<const Expr*> calls;
      std::function<void(const Expr&)> visit = [&](const Expr& e) {
        if (e.kind == Expr::Kind::kCall && e.CalleeName() == callee.name &&
            e.args.size() > param_index) {
          calls.push_back(&e);
        }
        if (e.lhs) visit(*e.lhs);
        if (e.rhs) visit(*e.rhs);
        for (const ExprPtr& a : e.args) visit(*a);
      };
      std::function<void(const std::vector<Stmt>&)> walk = [&](const std::vector<Stmt>& stmts) {
        for (const Stmt& s : stmts) {
          if (s.init) visit(*s.init);
          if (s.expr) visit(*s.expr);
          walk(s.body);
          walk(s.else_body);
        }
      };
      walk(caller.body);
      for (const Expr* call : calls) {
        Origin from_arg =
            ResolveBufferOrigin(file, caller, *call->args[param_index], depth);
        if (from_arg.kind != Origin::Kind::kUnknown) {
          from_arg.trace.insert(from_arg.trace.begin(),
                                Fmt(file.path, call->line,
                                    "called from " + caller.name + "()"));
          return from_arg;
        }
      }
    }
  }
  return origin;
}

Summary SpadeAnalyzer::Summarize(const std::vector<SiteFinding>& findings) const {
  Summary summary;
  std::set<std::string> all_files;
  std::set<std::string> f_callbacks, f_shinfo, f_direct, f_priv, f_stack, f_typec, f_build;
  // Rows 6 and 7 count API uses (paper: 344 page_frag uses, 46 build_skb
  // uses), independent of the dma_map backtracking.
  for (const ApiUse& use : api_uses_) {
    if (use.callee == "build_skb") {
      ++summary.build_skb_used.calls;
      f_build.insert(use.file);
    } else {
      ++summary.type_c.calls;
      f_typec.insert(use.file);
    }
  }
  for (const SiteFinding& finding : findings) {
    ++summary.total_calls;
    all_files.insert(finding.file);
    bool vulnerable = false;
    if (finding.exposes_struct && !finding.exposed_struct.empty()) {
      // Count genuine struct types; a bare stack array exposes bytes but is
      // not a "data structure" in the Table-2 sense.
      const StructLayout* layout = layout_db_.Find(finding.exposed_struct);
      if (layout != nullptr && !layout->fields.empty()) {
        summary.exposed_structs.insert(finding.exposed_struct);
      }
    }
    if (finding.callbacks_exposed) {
      ++summary.callbacks_exposed.calls;
      f_callbacks.insert(finding.file);
      vulnerable = true;
    }
    if (finding.shared_info_mapped) {
      ++summary.shared_info_mapped.calls;
      f_shinfo.insert(finding.file);
      vulnerable = true;
    }
    if (finding.callbacks_exposed && finding.direct_callbacks > 0) {
      ++summary.callbacks_exposed_directly.calls;
      f_direct.insert(finding.file);
    }
    if (finding.private_data) {
      ++summary.private_data_mapped.calls;
      f_priv.insert(finding.file);
      vulnerable = true;
    }
    if (finding.stack_mapped) {
      ++summary.stack_mapped.calls;
      f_stack.insert(finding.file);
      vulnerable = true;
    }
    if (finding.type_c) {
      vulnerable = true;
    }
    if (finding.via_build_skb) {
      vulnerable = true;
    }
    if (vulnerable) {
      ++summary.vulnerable_calls;
    }
  }
  summary.total_files = all_files.size();
  summary.callbacks_exposed.files = f_callbacks.size();
  summary.shared_info_mapped.files = f_shinfo.size();
  summary.callbacks_exposed_directly.files = f_direct.size();
  summary.private_data_mapped.files = f_priv.size();
  summary.stack_mapped.files = f_stack.size();
  summary.type_c.files = f_typec.size();
  summary.build_skb_used.files = f_build.size();
  if (hub_ != nullptr && hub_->enabled()) {
    // Table-2 rows as counters, so benches read the aggregation straight off
    // the bus export instead of the Summary struct.
    hub_->counter("spade.total_calls").Set(summary.total_calls);
    hub_->counter("spade.total_files").Set(summary.total_files);
    hub_->counter("spade.vulnerable_calls").Set(summary.vulnerable_calls);
    hub_->counter("spade.exposed_structs").Set(summary.exposed_structs.size());
    hub_->counter("spade.callbacks_exposed.calls").Set(summary.callbacks_exposed.calls);
    hub_->counter("spade.callbacks_exposed.files").Set(summary.callbacks_exposed.files);
    hub_->counter("spade.shared_info_mapped.calls").Set(summary.shared_info_mapped.calls);
    hub_->counter("spade.shared_info_mapped.files").Set(summary.shared_info_mapped.files);
    hub_->counter("spade.callbacks_exposed_directly.calls")
        .Set(summary.callbacks_exposed_directly.calls);
    hub_->counter("spade.callbacks_exposed_directly.files")
        .Set(summary.callbacks_exposed_directly.files);
    hub_->counter("spade.private_data_mapped.calls").Set(summary.private_data_mapped.calls);
    hub_->counter("spade.private_data_mapped.files").Set(summary.private_data_mapped.files);
    hub_->counter("spade.stack_mapped.calls").Set(summary.stack_mapped.calls);
    hub_->counter("spade.stack_mapped.files").Set(summary.stack_mapped.files);
    hub_->counter("spade.type_c.calls").Set(summary.type_c.calls);
    hub_->counter("spade.type_c.files").Set(summary.type_c.files);
    hub_->counter("spade.build_skb_used.calls").Set(summary.build_skb_used.calls);
    hub_->counter("spade.build_skb_used.files").Set(summary.build_skb_used.files);
  }
  return summary;
}

std::string Summary::ToString() const {
  std::ostringstream out;
  auto pct = [&](uint64_t n, uint64_t d) {
    if (d == 0) {
      return std::string("0.0%");
    }
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * static_cast<double>(n) /
                                                  static_cast<double>(d));
    return std::string(buf);
  };
  auto row = [&](const char* name, const SummaryRow& r, bool with_pct) {
    out << "  " << name << ": " << r.calls;
    if (with_pct) {
      out << " (" << pct(r.calls, total_calls) << ")";
    }
    out << " calls / " << r.files;
    if (with_pct) {
      out << " (" << pct(r.files, total_files) << ")";
    }
    out << " files\n";
  };
  out << "SPADE results summary (Table 2 shape)\n";
  row("1. Callbacks exposed          ", callbacks_exposed, true);
  row("2. skb_shared_info mapped     ", shared_info_mapped, true);
  row("3. Callbacks exposed directly ", callbacks_exposed_directly, false);
  row("4. Private data mapped        ", private_data_mapped, false);
  row("5. Stack mapped               ", stack_mapped, false);
  row("6. Type C vulnerability       ", type_c, false);
  row("7. build_skb used             ", build_skb_used, false);
  out << "  Total dma-map calls: " << total_calls << " over " << total_files << " files\n";
  out << "  Potentially vulnerable: " << vulnerable_calls << " ("
      << pct(vulnerable_calls, total_calls) << ")\n";
  out << "  Distinct exposed data structures: " << exposed_structs.size();
  if (!exposed_structs.empty() && exposed_structs.size() <= 24) {
    out << " (";
    bool first = true;
    for (const std::string& name : exposed_structs) {
      out << (first ? "" : ", ") << name;
      first = false;
    }
    out << ")";
  }
  out << "\n";
  return out.str();
}

}  // namespace spv::spade
