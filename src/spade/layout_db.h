// LayoutDb: pahole/DWARF substitute.
//
// Computes x86-64 struct layouts (sizes, alignments, field offsets) from
// parsed definitions, and — the part SPADE actually consumes — counts the
// callback pointers a struct exposes:
//   * direct callbacks: function-pointer fields, including those of embedded
//     (by-value) structs — overwriting one redirects kernel control flow;
//   * spoofable callbacks: callbacks reachable through struct-pointer fields.
//     Overwriting the *pointer* to aim at an attacker-crafted instance spoofs
//     every callback in the pointed-to type (footnote 3 of the paper).

#ifndef SPV_SPADE_LAYOUT_DB_H_
#define SPV_SPADE_LAYOUT_DB_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "spade/ast.h"

namespace spv::spade {

struct FieldLayout {
  std::string name;
  uint64_t offset = 0;
  uint64_t size = 0;
  TypeRef type;
  bool is_callback = false;  // function-pointer field
};

struct StructLayout {
  std::string name;
  uint64_t size = 0;
  uint64_t alignment = 1;
  std::vector<FieldLayout> fields;
  uint32_t direct_callbacks = 0;
  uint32_t spoofable_callbacks = 0;
};

class LayoutDb {
 public:
  void AddStruct(const StructDef& def);

  // Computes all layouts and callback counts. Structs referenced but never
  // defined are treated as opaque 64-byte blobs with no callbacks (what
  // pahole shows for types compiled out of scope).
  Status Finalize();

  const StructLayout* Find(const std::string& name) const;

  // Dotted paths of every directly exposed callback field, recursing into
  // embedded structs (Fig 2's "fcp_req.done"). Call after Finalize().
  std::vector<std::string> CallbackFieldPaths(const std::string& name) const;

  // Size of a scalar/pointer type on x86-64.
  static uint64_t ScalarSize(const TypeRef& type);
  static uint64_t ScalarAlign(const TypeRef& type);

  size_t struct_count() const { return layouts_.size(); }

 private:
  Result<StructLayout*> Compute(const std::string& name, std::set<std::string>& in_progress);
  uint32_t CountReachableCallbacks(const std::string& name, std::set<std::string>& visited);

  std::map<std::string, StructDef> defs_;
  std::map<std::string, StructLayout> layouts_;
  bool finalized_ = false;
};

}  // namespace spv::spade

#endif  // SPV_SPADE_LAYOUT_DB_H_
