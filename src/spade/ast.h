// AST for the C subset SPADE analyzes.
//
// Deliberately scoped to what the §4.1 analysis consumes: struct definitions
// (for the pahole-style layout database), function definitions, declarations,
// assignments, and call expressions — all with source line numbers so traces
// read like Figure 2.

#ifndef SPV_SPADE_AST_H_
#define SPV_SPADE_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spv::spade {

struct TypeRef {
  std::string base;          // "void", "int", "u32", or the struct tag
  bool is_struct = false;
  int pointer_depth = 0;
  bool is_func_ptr = false;  // field/variable holding a function pointer
  uint64_t array_len = 0;    // 0 = scalar

  bool IsPointer() const { return pointer_depth > 0 || is_func_ptr; }
  std::string ToString() const;
};

struct FieldDecl {
  TypeRef type;
  std::string name;
  int line = 0;
};

struct StructDef {
  std::string name;
  std::vector<FieldDecl> fields;
  int line = 0;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kIdent,    // text = name
    kNumber,   // text = literal
    kString,
    kMember,   // lhs . / -> text ; arrow flag in text? use `arrow`
    kAddrOf,   // &lhs
    kDeref,    // *lhs
    kNeg,      // unary -, !, ~ (collapsed)
    kCall,     // lhs = callee expr (usually kIdent), args
    kCast,     // cast_type, lhs
    kBinary,   // text = operator, lhs, rhs
    kAssign,   // lhs = rhs (text = "=", "+=", ...)
    kIndex,    // lhs [ rhs ]
    kSizeof,   // cast_type or lhs
  };

  Kind kind;
  int line = 0;
  std::string text;
  bool arrow = false;  // for kMember: true for '->'
  ExprPtr lhs;
  ExprPtr rhs;
  std::vector<ExprPtr> args;
  TypeRef cast_type;

  // Callee name for simple `f(...)` calls; empty otherwise.
  std::string CalleeName() const {
    if (kind == Kind::kCall && lhs != nullptr && lhs->kind == Kind::kIdent) {
      return lhs->text;
    }
    return "";
  }
};

struct Stmt {
  enum class Kind { kDecl, kExpr, kReturn, kIf, kLoop, kBlock };

  Kind kind = Kind::kExpr;
  int line = 0;
  // kDecl:
  TypeRef decl_type;
  std::string decl_name;
  ExprPtr init;  // may be null
  // kExpr / kReturn / condition of kIf / kLoop:
  ExprPtr expr;  // may be null (bare return)
  std::vector<Stmt> body;       // kIf then / kLoop body / kBlock
  std::vector<Stmt> else_body;  // kIf else
};

struct ParamDecl {
  TypeRef type;
  std::string name;
};

struct FuncDef {
  TypeRef return_type;
  std::string name;
  std::vector<ParamDecl> params;
  std::vector<Stmt> body;
  int line = 0;
};

struct SourceFile {
  std::string path;
  std::vector<StructDef> structs;
  std::vector<FuncDef> functions;
};

}  // namespace spv::spade

#endif  // SPV_SPADE_AST_H_
