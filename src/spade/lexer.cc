#include "spade/lexer.h"

#include <array>
#include <cctype>

namespace spv::spade {

namespace {

constexpr std::array kKeywords = {
    "struct",   "union",  "enum",     "static", "const",  "volatile", "unsigned",
    "signed",   "void",   "int",      "char",   "short",  "long",     "float",
    "double",   "return", "if",       "else",   "for",    "while",    "do",
    "break",    "continue", "goto",   "sizeof", "switch", "case",     "default",
    "typedef",  "extern", "inline",   "bool",
};

constexpr std::array kTypeWords = {
    "void", "int",  "char", "short", "long",  "float",    "double", "bool",
    "u8",   "u16",  "u32",  "u64",   "s8",    "s16",      "s32",    "s64",
    "__u8", "__u16", "__u32", "__u64", "size_t", "ssize_t", "dma_addr_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "netdev_tx_t", "irqreturn_t",
    "gfp_t", "atomic_t", "spinlock_t", "wait_queue_head_t",
};

bool IsKeywordWord(std::string_view word) {
  for (const char* k : kKeywords) {
    if (word == k) {
      return true;
    }
  }
  return false;
}

// Multi-char punctuators, longest first.
constexpr std::array kPuncts = {
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=",
};

}  // namespace

bool IsTypeKeyword(std::string_view word) {
  for (const char* t : kTypeWords) {
    if (word == t) {
      return true;
    }
  }
  return false;
}

Result<std::vector<Token>> Lex(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  const size_t n = source.size();

  auto peek = [&](size_t k = 0) -> char { return i + k < n ? source[i + k] : '\0'; };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && peek(1) == '/') {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(source[i] == '*' && peek(1) == '/')) {
        if (source[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i >= n) {
        return InvalidArgument("unterminated block comment at line " + std::to_string(line));
      }
      i += 2;
      continue;
    }
    // Preprocessor lines: skip to end of (possibly continued) line.
    if (c == '#') {
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && peek(1) == '\n') {
          ++line;
          ++i;
        }
        ++i;
      }
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) != 0 ||
                       source[i] == '_')) {
        ++i;
      }
      std::string word{source.substr(start, i - start)};
      tokens.push_back(Token{IsKeywordWord(word) ? TokenKind::kKeyword : TokenKind::kIdentifier,
                             std::move(word), line});
      continue;
    }
    // Numbers (decimal / hex / suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) != 0 ||
                       source[i] == '.' || source[i] == 'x' || source[i] == 'X')) {
        ++i;
      }
      tokens.push_back(Token{TokenKind::kNumber, std::string{source.substr(start, i - start)},
                             line});
      continue;
    }
    // Strings / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t start = i++;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\') {
          ++i;
        }
        if (source[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i >= n) {
        return InvalidArgument("unterminated literal at line " + std::to_string(line));
      }
      ++i;
      tokens.push_back(Token{quote == '"' ? TokenKind::kString : TokenKind::kCharLit,
                             std::string{source.substr(start, i - start)}, line});
      continue;
    }
    // Punctuators.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::string_view sv{p};
      if (source.substr(i, sv.size()) == sv) {
        tokens.push_back(Token{TokenKind::kPunct, std::string{sv}, line});
        i += sv.size();
        matched = true;
        break;
      }
    }
    if (matched) {
      continue;
    }
    if (std::string_view{"()[]{};,.&*=<>+-/%!|^~?:"}.find(c) != std::string_view::npos) {
      tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), line});
      ++i;
      continue;
    }
    return InvalidArgument("unexpected character '" + std::string(1, c) + "' at line " +
                           std::to_string(line));
  }
  tokens.push_back(Token{TokenKind::kEof, "", line});
  return tokens;
}

}  // namespace spv::spade
