#include "spade/parser.h"

#include <cassert>

namespace spv::spade {

std::string TypeRef::ToString() const {
  std::string out = is_struct ? "struct " + base : base;
  for (int i = 0; i < pointer_depth; ++i) {
    out += "*";
  }
  if (is_func_ptr) {
    out += " (*)()";
  }
  if (array_len > 0) {
    out += "[" + std::to_string(array_len) + "]";
  }
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string path, std::vector<Token> tokens)
      : path_(std::move(path)), tokens_(std::move(tokens)) {}

  Result<SourceFile> Parse() {
    SourceFile file;
    file.path = path_;
    while (!At(TokenKind::kEof)) {
      // Skip storage-class noise at top level.
      while (Cur().IsKeyword("static") || Cur().IsKeyword("extern") ||
             Cur().IsKeyword("inline") || Cur().IsKeyword("const") ||
             Cur().IsKeyword("volatile")) {
        Advance();
      }
      if (Cur().IsKeyword("struct") && Peek(1).IsIdent() && Peek(2).IsPunct("{")) {
        Result<StructDef> def = ParseStructDef();
        if (!def.ok()) {
          return def.status();
        }
        file.structs.push_back(std::move(*def));
        continue;
      }
      if (Cur().IsKeyword("typedef")) {
        // Skip typedefs wholesale (to the terminating semicolon).
        SkipToSemicolon();
        continue;
      }
      SPV_RETURN_IF_ERROR(ParseFuncOrGlobal(file));
      continue;
    }
    return file;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t k) const {
    return tokens_[std::min(pos_ + k, tokens_.size() - 1)];
  }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
  }

  Status Err(const std::string& what) const {
    return InvalidArgument(path_ + ":" + std::to_string(Cur().line) + ": " + what +
                           " (near '" + Cur().text + "')");
  }

  Status Expect(std::string_view punct) {
    if (!Cur().IsPunct(punct)) {
      return Err("expected '" + std::string(punct) + "'");
    }
    Advance();
    return OkStatus();
  }

  void SkipToSemicolon() {
    int depth = 0;
    while (!At(TokenKind::kEof)) {
      if (Cur().IsPunct("{")) {
        ++depth;
      } else if (Cur().IsPunct("}")) {
        --depth;
      } else if (Cur().IsPunct(";") && depth <= 0) {
        Advance();
        return;
      }
      Advance();
    }
  }

  bool AtTypeStart() const {
    if (Cur().IsKeyword("struct") || Cur().IsKeyword("const") || Cur().IsKeyword("unsigned") ||
        Cur().IsKeyword("signed") || Cur().IsKeyword("volatile")) {
      return true;
    }
    if (Cur().kind == TokenKind::kKeyword &&
        (Cur().text == "void" || Cur().text == "int" || Cur().text == "char" ||
         Cur().text == "short" || Cur().text == "long" || Cur().text == "bool" ||
         Cur().text == "float" || Cur().text == "double")) {
      return true;
    }
    return Cur().IsIdent() && IsTypeKeyword(Cur().text);
  }

  // Parses a type specifier (without declarator pointers).
  Result<TypeRef> ParseTypeSpec() {
    TypeRef type;
    while (Cur().IsKeyword("const") || Cur().IsKeyword("volatile") ||
           Cur().IsKeyword("unsigned") || Cur().IsKeyword("signed") ||
           Cur().IsKeyword("static")) {
      if (Cur().IsKeyword("unsigned") || Cur().IsKeyword("signed")) {
        type.base = Cur().text;
      }
      Advance();
    }
    if (Cur().IsKeyword("struct") || Cur().IsKeyword("union") || Cur().IsKeyword("enum")) {
      const bool is_struct = Cur().IsKeyword("struct");
      Advance();
      if (!Cur().IsIdent()) {
        return Err("expected struct tag");
      }
      type.base = Cur().text;
      type.is_struct = is_struct;
      Advance();
      return type;
    }
    if (Cur().kind == TokenKind::kKeyword || Cur().IsIdent()) {
      // Builtin or typedef name. "unsigned" alone is also legal.
      if (type.base.empty() || Cur().kind == TokenKind::kKeyword || IsTypeKeyword(Cur().text)) {
        if (Cur().kind == TokenKind::kKeyword || IsTypeKeyword(Cur().text)) {
          std::string base = Cur().text;
          Advance();
          // "long long", "unsigned long", etc.
          while (Cur().IsKeyword("long") || Cur().IsKeyword("int") || Cur().IsKeyword("char") ||
                 Cur().IsKeyword("short")) {
            base += " " + Cur().text;
            Advance();
          }
          type.base = type.base.empty() ? base : type.base + " " + base;
        }
      }
      if (type.base.empty()) {
        return Err("expected type name");
      }
      return type;
    }
    return Err("expected type");
  }

  // Parses "* * name [N]" or "(*name)(params)" declarators after a type spec.
  struct Declarator {
    std::string name;
    int pointer_depth = 0;
    bool is_func_ptr = false;
    uint64_t array_len = 0;
    int line = 0;
  };

  Result<Declarator> ParseDeclarator() {
    Declarator decl;
    decl.line = Cur().line;
    while (Cur().IsPunct("*")) {
      ++decl.pointer_depth;
      Advance();
    }
    if (Cur().IsPunct("(")) {
      // Function pointer: ( * name ) ( params )
      Advance();
      if (!Cur().IsPunct("*")) {
        return Err("expected '*' in function-pointer declarator");
      }
      Advance();
      if (!Cur().IsIdent()) {
        return Err("expected function-pointer name");
      }
      decl.name = Cur().text;
      decl.is_func_ptr = true;
      Advance();
      SPV_RETURN_IF_ERROR(Expect(")"));
      SPV_RETURN_IF_ERROR(Expect("("));
      int depth = 1;
      while (depth > 0 && !At(TokenKind::kEof)) {
        if (Cur().IsPunct("(")) {
          ++depth;
        } else if (Cur().IsPunct(")")) {
          --depth;
        }
        Advance();
      }
      return decl;
    }
    if (!Cur().IsIdent()) {
      return Err("expected declarator name");
    }
    decl.name = Cur().text;
    Advance();
    if (Cur().IsPunct("[")) {
      Advance();
      if (Cur().kind == TokenKind::kNumber) {
        decl.array_len = std::strtoull(Cur().text.c_str(), nullptr, 0);
        Advance();
      } else if (Cur().IsIdent()) {
        decl.array_len = 1;  // symbolic size; layout treats as 1 elem
        Advance();
      }
      SPV_RETURN_IF_ERROR(Expect("]"));
    }
    return decl;
  }

  Result<StructDef> ParseStructDef() {
    StructDef def;
    def.line = Cur().line;
    Advance();  // struct
    def.name = Cur().text;
    Advance();
    SPV_RETURN_IF_ERROR(Expect("{"));
    while (!Cur().IsPunct("}")) {
      if (At(TokenKind::kEof)) {
        return Err("unterminated struct");
      }
      Result<TypeRef> type = ParseTypeSpec();
      if (!type.ok()) {
        return type.status();
      }
      // One or more declarators.
      while (true) {
        Result<Declarator> decl = ParseDeclarator();
        if (!decl.ok()) {
          return decl.status();
        }
        FieldDecl field;
        field.type = *type;
        field.type.pointer_depth = decl->pointer_depth;
        field.type.is_func_ptr = decl->is_func_ptr;
        field.type.array_len = decl->array_len;
        field.name = decl->name;
        field.line = decl->line;
        def.fields.push_back(field);
        if (Cur().IsPunct(",")) {
          Advance();
          continue;
        }
        break;
      }
      SPV_RETURN_IF_ERROR(Expect(";"));
    }
    Advance();  // }
    SPV_RETURN_IF_ERROR(Expect(";"));
    return def;
  }

  Status ParseFuncOrGlobal(SourceFile& file) {
    Result<TypeRef> type = ParseTypeSpec();
    if (!type.ok()) {
      return type.status();
    }
    Result<Declarator> decl = ParseDeclarator();
    if (!decl.ok()) {
      return decl.status();
    }
    if (Cur().IsPunct("(")) {
      FuncDef func;
      func.return_type = *type;
      func.return_type.pointer_depth = decl->pointer_depth;
      func.name = decl->name;
      func.line = decl->line;
      Advance();
      if (!Cur().IsPunct(")")) {
        while (true) {
          if (Cur().IsKeyword("void") && Peek(1).IsPunct(")")) {
            Advance();
            break;
          }
          Result<TypeRef> ptype = ParseTypeSpec();
          if (!ptype.ok()) {
            return ptype.status();
          }
          Result<Declarator> pdecl = ParseDeclarator();
          if (!pdecl.ok()) {
            return pdecl.status();
          }
          ParamDecl param;
          param.type = *ptype;
          param.type.pointer_depth = pdecl->pointer_depth;
          param.type.is_func_ptr = pdecl->is_func_ptr;
          param.name = pdecl->name;
          func.params.push_back(param);
          if (Cur().IsPunct(",")) {
            Advance();
            continue;
          }
          break;
        }
      }
      SPV_RETURN_IF_ERROR(Expect(")"));
      if (Cur().IsPunct(";")) {
        Advance();  // prototype: record nothing
        return OkStatus();
      }
      Result<std::vector<Stmt>> body = ParseBlock();
      if (!body.ok()) {
        return body.status();
      }
      func.body = std::move(*body);
      file.functions.push_back(std::move(func));
      return OkStatus();
    }
    // Global variable: skip initializer.
    SkipToSemicolon();
    return OkStatus();
  }

  Result<std::vector<Stmt>> ParseBlock() {
    SPV_RETURN_IF_ERROR(Expect("{"));
    std::vector<Stmt> stmts;
    while (!Cur().IsPunct("}")) {
      if (At(TokenKind::kEof)) {
        return Err("unterminated block");
      }
      Result<Stmt> stmt = ParseStmt();
      if (!stmt.ok()) {
        return stmt.status();
      }
      stmts.push_back(std::move(*stmt));
    }
    Advance();
    return stmts;
  }

  Result<Stmt> ParseStmt() {
    Stmt stmt;
    stmt.line = Cur().line;
    if (Cur().IsPunct("{")) {
      stmt.kind = Stmt::Kind::kBlock;
      Result<std::vector<Stmt>> body = ParseBlock();
      if (!body.ok()) {
        return body.status();
      }
      stmt.body = std::move(*body);
      return stmt;
    }
    if (Cur().IsKeyword("return")) {
      stmt.kind = Stmt::Kind::kReturn;
      Advance();
      if (!Cur().IsPunct(";")) {
        Result<ExprPtr> expr = ParseExpr();
        if (!expr.ok()) {
          return expr.status();
        }
        stmt.expr = std::move(*expr);
      }
      SPV_RETURN_IF_ERROR(Expect(";"));
      return stmt;
    }
    if (Cur().IsKeyword("if")) {
      stmt.kind = Stmt::Kind::kIf;
      Advance();
      SPV_RETURN_IF_ERROR(Expect("("));
      Result<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) {
        return cond.status();
      }
      stmt.expr = std::move(*cond);
      SPV_RETURN_IF_ERROR(Expect(")"));
      Result<Stmt> then_stmt = ParseStmt();
      if (!then_stmt.ok()) {
        return then_stmt.status();
      }
      stmt.body.push_back(std::move(*then_stmt));
      if (Cur().IsKeyword("else")) {
        Advance();
        Result<Stmt> else_stmt = ParseStmt();
        if (!else_stmt.ok()) {
          return else_stmt.status();
        }
        stmt.else_body.push_back(std::move(*else_stmt));
      }
      return stmt;
    }
    if (Cur().IsKeyword("while") || Cur().IsKeyword("for")) {
      stmt.kind = Stmt::Kind::kLoop;
      const bool is_for = Cur().IsKeyword("for");
      Advance();
      SPV_RETURN_IF_ERROR(Expect("("));
      if (is_for) {
        // for(init; cond; step) — parse init as a statement-ish, keep it.
        if (!Cur().IsPunct(";")) {
          Result<Stmt> init = ParseSimpleStmt();
          if (!init.ok()) {
            return init.status();
          }
          stmt.body.push_back(std::move(*init));
        } else {
          Advance();
        }
        if (!Cur().IsPunct(";")) {
          Result<ExprPtr> cond = ParseExpr();
          if (!cond.ok()) {
            return cond.status();
          }
          stmt.expr = std::move(*cond);
        }
        SPV_RETURN_IF_ERROR(Expect(";"));
        if (!Cur().IsPunct(")")) {
          Result<ExprPtr> step = ParseExpr();
          if (!step.ok()) {
            return step.status();
          }
          Stmt step_stmt;
          step_stmt.kind = Stmt::Kind::kExpr;
          step_stmt.line = Cur().line;
          step_stmt.expr = std::move(*step);
          stmt.body.push_back(std::move(step_stmt));
        }
      } else {
        Result<ExprPtr> cond = ParseExpr();
        if (!cond.ok()) {
          return cond.status();
        }
        stmt.expr = std::move(*cond);
      }
      SPV_RETURN_IF_ERROR(Expect(")"));
      Result<Stmt> body = ParseStmt();
      if (!body.ok()) {
        return body.status();
      }
      stmt.body.push_back(std::move(*body));
      return stmt;
    }
    if (Cur().IsKeyword("switch")) {
      // switch (expr) { case ...: stmts } — modelled as a loop-shaped node.
      stmt.kind = Stmt::Kind::kLoop;
      Advance();
      SPV_RETURN_IF_ERROR(Expect("("));
      Result<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) {
        return cond.status();
      }
      stmt.expr = std::move(*cond);
      SPV_RETURN_IF_ERROR(Expect(")"));
      Result<Stmt> body = ParseStmt();
      if (!body.ok()) {
        return body.status();
      }
      stmt.body.push_back(std::move(*body));
      return stmt;
    }
    if (Cur().IsKeyword("case")) {
      Advance();
      while (!Cur().IsPunct(":") && !At(TokenKind::kEof)) {
        Advance();  // constant expression label
      }
      SPV_RETURN_IF_ERROR(Expect(":"));
      return ParseStmt();
    }
    if (Cur().IsKeyword("default") && Peek(1).IsPunct(":")) {
      Advance();
      Advance();
      return ParseStmt();
    }
    if (Cur().IsKeyword("do")) {
      // do { ... } while (expr);
      stmt.kind = Stmt::Kind::kLoop;
      Advance();
      Result<Stmt> body = ParseStmt();
      if (!body.ok()) {
        return body.status();
      }
      stmt.body.push_back(std::move(*body));
      if (!Cur().IsKeyword("while")) {
        return Err("expected 'while' after do-body");
      }
      Advance();
      SPV_RETURN_IF_ERROR(Expect("("));
      Result<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) {
        return cond.status();
      }
      stmt.expr = std::move(*cond);
      SPV_RETURN_IF_ERROR(Expect(")"));
      SPV_RETURN_IF_ERROR(Expect(";"));
      return stmt;
    }
    if (Cur().IsKeyword("break") || Cur().IsKeyword("continue") || Cur().IsKeyword("goto")) {
      SkipToSemicolon();
      stmt.kind = Stmt::Kind::kExpr;
      return stmt;
    }
    // Plain goto label "name:" — skip the label, parse the labelled statement.
    if (Cur().IsIdent() && Peek(1).IsPunct(":") && !IsTypeKeyword(Cur().text)) {
      Advance();
      Advance();
      return ParseStmt();
    }
    return ParseSimpleStmt();
  }

  // Declaration or expression statement, consuming the semicolon.
  Result<Stmt> ParseSimpleStmt() {
    Stmt stmt;
    stmt.line = Cur().line;
    if (AtDeclStart()) {
      stmt.kind = Stmt::Kind::kDecl;
      Result<TypeRef> type = ParseTypeSpec();
      if (!type.ok()) {
        return type.status();
      }
      Result<Declarator> decl = ParseDeclarator();
      if (!decl.ok()) {
        return decl.status();
      }
      stmt.decl_type = *type;
      stmt.decl_type.pointer_depth = decl->pointer_depth;
      stmt.decl_type.is_func_ptr = decl->is_func_ptr;
      stmt.decl_type.array_len = decl->array_len;
      stmt.decl_name = decl->name;
      if (Cur().IsPunct("=")) {
        Advance();
        Result<ExprPtr> init = ParseExpr();
        if (!init.ok()) {
          return init.status();
        }
        stmt.init = std::move(*init);
      }
      SPV_RETURN_IF_ERROR(Expect(";"));
      return stmt;
    }
    stmt.kind = Stmt::Kind::kExpr;
    Result<ExprPtr> expr = ParseExpr();
    if (!expr.ok()) {
      return expr.status();
    }
    stmt.expr = std::move(*expr);
    SPV_RETURN_IF_ERROR(Expect(";"));
    return stmt;
  }

  bool AtDeclStart() const {
    if (Cur().IsKeyword("struct")) {
      return true;
    }
    if (AtTypeStart()) {
      // "u32 x", "int *p", "size_t n = ..." — identifier types only count if
      // followed by a declarator shape.
      if (Cur().kind == TokenKind::kKeyword) {
        return true;
      }
      size_t k = 1;
      while (Peek(k).IsPunct("*")) {
        ++k;
      }
      return Peek(k).IsIdent();
    }
    return false;
  }

  // ---- Expressions (precedence climbing) -------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseAssign(); }

  Result<ExprPtr> ParseAssign() {
    Result<ExprPtr> lhs = ParseBinary(0);
    if (!lhs.ok()) {
      return lhs.status();
    }
    static const char* kAssignOps[] = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};
    for (const char* op : kAssignOps) {
      if (Cur().IsPunct(op)) {
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kAssign;
        node->line = Cur().line;
        node->text = op;
        Advance();
        Result<ExprPtr> rhs = ParseAssign();
        if (!rhs.ok()) {
          return rhs.status();
        }
        node->lhs = std::move(*lhs);
        node->rhs = std::move(*rhs);
        return node;
      }
    }
    // Ternary (rare in corpus): cond ? a : b — fold to binary-ish.
    if (Cur().IsPunct("?")) {
      Advance();
      Result<ExprPtr> a = ParseAssign();
      if (!a.ok()) {
        return a.status();
      }
      SPV_RETURN_IF_ERROR(Expect(":"));
      Result<ExprPtr> b = ParseAssign();
      if (!b.ok()) {
        return b.status();
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->text = "?:";
      node->lhs = std::move(*a);
      node->rhs = std::move(*b);
      return node;
    }
    return lhs;
  }

  static int Precedence(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
    if (op == "<<" || op == ">>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    return -1;
  }

  Result<ExprPtr> ParseBinary(int min_prec) {
    Result<ExprPtr> lhs = ParseUnary();
    if (!lhs.ok()) {
      return lhs.status();
    }
    ExprPtr left = std::move(*lhs);
    while (Cur().kind == TokenKind::kPunct) {
      const int prec = Precedence(Cur().text);
      if (prec < 0 || prec < min_prec) {
        break;
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->line = Cur().line;
      node->text = Cur().text;
      Advance();
      Result<ExprPtr> rhs = ParseBinary(prec + 1);
      if (!rhs.ok()) {
        return rhs.status();
      }
      node->lhs = std::move(left);
      node->rhs = std::move(*rhs);
      left = std::move(node);
    }
    return left;
  }

  bool AtCastParen() const {
    if (!Cur().IsPunct("(")) {
      return false;
    }
    const Token& next = Peek(1);
    if (next.IsKeyword("struct") || next.IsKeyword("const") || next.IsKeyword("unsigned") ||
        next.IsKeyword("void") || next.IsKeyword("int") || next.IsKeyword("char") ||
        next.IsKeyword("long") || next.IsKeyword("short")) {
      return true;
    }
    return next.IsIdent() && IsTypeKeyword(next.text) &&
           (Peek(2).IsPunct("*") || Peek(2).IsPunct(")"));
  }

  Result<ExprPtr> ParseUnary() {
    const int line = Cur().line;
    if (Cur().IsPunct("&")) {
      Advance();
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand.status();
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kAddrOf;
      node->line = line;
      node->lhs = std::move(*operand);
      return node;
    }
    if (Cur().IsPunct("*")) {
      Advance();
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand.status();
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kDeref;
      node->line = line;
      node->lhs = std::move(*operand);
      return node;
    }
    if (Cur().IsPunct("!") || Cur().IsPunct("-") || Cur().IsPunct("~") || Cur().IsPunct("+") ||
        Cur().IsPunct("++") || Cur().IsPunct("--")) {
      const std::string op = Cur().text;
      Advance();
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand.status();
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNeg;
      node->line = line;
      node->text = op;
      node->lhs = std::move(*operand);
      return node;
    }
    if (Cur().IsKeyword("sizeof")) {
      Advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kSizeof;
      node->line = line;
      if (Cur().IsPunct("(")) {
        Advance();
        if (Cur().IsKeyword("struct") || (Cur().IsIdent() && IsTypeKeyword(Cur().text)) ||
            Cur().kind == TokenKind::kKeyword) {
          Result<TypeRef> type = ParseTypeSpec();
          if (!type.ok()) {
            return type.status();
          }
          while (Cur().IsPunct("*")) {
            ++type->pointer_depth;
            Advance();
          }
          node->cast_type = *type;
        } else {
          Result<ExprPtr> inner = ParseExpr();
          if (!inner.ok()) {
            return inner.status();
          }
          node->lhs = std::move(*inner);
        }
        SPV_RETURN_IF_ERROR(Expect(")"));
      }
      return node;
    }
    if (AtCastParen()) {
      Advance();  // (
      Result<TypeRef> type = ParseTypeSpec();
      if (!type.ok()) {
        return type.status();
      }
      while (Cur().IsPunct("*")) {
        ++type->pointer_depth;
        Advance();
      }
      SPV_RETURN_IF_ERROR(Expect(")"));
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand.status();
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kCast;
      node->line = line;
      node->cast_type = *type;
      node->lhs = std::move(*operand);
      return node;
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    Result<ExprPtr> primary = ParsePrimary();
    if (!primary.ok()) {
      return primary.status();
    }
    ExprPtr node = std::move(*primary);
    while (true) {
      if (Cur().IsPunct("(")) {
        auto call = std::make_unique<Expr>();
        call->kind = Expr::Kind::kCall;
        call->line = Cur().line;
        call->lhs = std::move(node);
        Advance();
        if (!Cur().IsPunct(")")) {
          while (true) {
            Result<ExprPtr> arg = ParseAssign();
            if (!arg.ok()) {
              return arg.status();
            }
            call->args.push_back(std::move(*arg));
            if (Cur().IsPunct(",")) {
              Advance();
              continue;
            }
            break;
          }
        }
        SPV_RETURN_IF_ERROR(Expect(")"));
        node = std::move(call);
        continue;
      }
      if (Cur().IsPunct(".") || Cur().IsPunct("->")) {
        auto member = std::make_unique<Expr>();
        member->kind = Expr::Kind::kMember;
        member->line = Cur().line;
        member->arrow = Cur().IsPunct("->");
        Advance();
        if (!Cur().IsIdent()) {
          return Err("expected member name");
        }
        member->text = Cur().text;
        Advance();
        member->lhs = std::move(node);
        node = std::move(member);
        continue;
      }
      if (Cur().IsPunct("[")) {
        auto index = std::make_unique<Expr>();
        index->kind = Expr::Kind::kIndex;
        index->line = Cur().line;
        Advance();
        Result<ExprPtr> idx = ParseExpr();
        if (!idx.ok()) {
          return idx.status();
        }
        SPV_RETURN_IF_ERROR(Expect("]"));
        index->lhs = std::move(node);
        index->rhs = std::move(*idx);
        node = std::move(index);
        continue;
      }
      if (Cur().IsPunct("++") || Cur().IsPunct("--")) {
        Advance();  // post-inc/dec: analysis-neutral
        continue;
      }
      break;
    }
    return node;
  }

  Result<ExprPtr> ParsePrimary() {
    const int line = Cur().line;
    if (Cur().IsPunct("(")) {
      Advance();
      Result<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) {
        return inner.status();
      }
      SPV_RETURN_IF_ERROR(Expect(")"));
      return inner;
    }
    if (Cur().IsIdent()) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kIdent;
      node->line = line;
      node->text = Cur().text;
      Advance();
      return node;
    }
    if (Cur().kind == TokenKind::kNumber) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNumber;
      node->line = line;
      node->text = Cur().text;
      Advance();
      return node;
    }
    if (Cur().kind == TokenKind::kString || Cur().kind == TokenKind::kCharLit) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kString;
      node->line = line;
      node->text = Cur().text;
      Advance();
      return node;
    }
    return Err("expected expression");
  }

  std::string path_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SourceFile> ParseSource(std::string path, std::string_view source) {
  Result<std::vector<Token>> tokens = Lex(source);
  if (!tokens.ok()) {
    return tokens.status();
  }
  Parser parser{std::move(path), std::move(*tokens)};
  return parser.Parse();
}

}  // namespace spv::spade
