// Corpus loading: reads every .c file under a directory into the analyzer.

#ifndef SPV_SPADE_CORPUS_H_
#define SPV_SPADE_CORPUS_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "spade/analyzer.h"

namespace spv::spade {

struct CorpusLoadStats {
  size_t files_parsed = 0;
  size_t files_failed = 0;           // SPADE's parse-limitation false negatives
  std::vector<std::string> failures;
};

// Loads all `.c` files under `directory` (sorted for determinism) into the
// analyzer. Parse failures are recorded, not fatal (§4.3).
Result<CorpusLoadStats> LoadCorpusDirectory(SpadeAnalyzer& analyzer,
                                            const std::string& directory);

// Convenience: the repo corpus directory baked in at build time.
std::string DefaultCorpusDir();

}  // namespace spv::spade

#endif  // SPV_SPADE_CORPUS_H_
