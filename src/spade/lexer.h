// Lexer for the C subset SPADE analyzes.
//
// SPADE (§4.1) needs real source navigation — declarations, assignments,
// struct layouts, call sites with line numbers — so the pipeline starts from
// an honest tokenizer rather than regexes. Comments and preprocessor lines
// are skipped (the corpus is post-preprocessor style, as Cscope effectively
// sees it).

#ifndef SPV_SPADE_LEXER_H_
#define SPV_SPADE_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace spv::spade {

enum class TokenKind {
  kIdentifier,
  kKeyword,      // struct, static, const, return, if, else, for, while, sizeof...
  kNumber,
  kString,
  kCharLit,
  kPunct,        // ( ) { } [ ] ; , . -> & * = == != < > <= >= + - / % ! | ^ ~ ...
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 0;

  bool Is(TokenKind k, std::string_view t) const { return kind == k && text == t; }
  bool IsPunct(std::string_view t) const { return Is(TokenKind::kPunct, t); }
  bool IsKeyword(std::string_view t) const { return Is(TokenKind::kKeyword, t); }
  bool IsIdent() const { return kind == TokenKind::kIdentifier; }
};

// Tokenizes `source`; returns an error with the offending line on failure.
Result<std::vector<Token>> Lex(std::string_view source);

bool IsTypeKeyword(std::string_view word);

}  // namespace spv::spade

#endif  // SPV_SPADE_LEXER_H_
