#include "spade/layout_db.h"

#include <functional>

#include "base/align.h"

namespace spv::spade {

namespace {
constexpr uint64_t kOpaqueStructSize = 64;
}

uint64_t LayoutDb::ScalarSize(const TypeRef& type) {
  if (type.IsPointer()) {
    return 8;
  }
  const std::string& b = type.base;
  if (b == "char" || b == "u8" || b == "s8" || b == "__u8" || b == "uint8_t" || b == "bool" ||
      b == "signed char" || b == "unsigned char") {
    return 1;
  }
  if (b == "short" || b == "u16" || b == "s16" || b == "__u16" || b == "uint16_t" ||
      b == "unsigned short") {
    return 2;
  }
  if (b == "long" || b == "u64" || b == "s64" || b == "__u64" || b == "uint64_t" ||
      b == "size_t" || b == "ssize_t" || b == "dma_addr_t" || b == "unsigned long" ||
      b == "long long" || b == "unsigned long long" || b == "double") {
    return 8;
  }
  // int, u32, unsigned, enums, gfp_t, atomic_t, spinlock_t (simplified), ...
  return 4;
}

uint64_t LayoutDb::ScalarAlign(const TypeRef& type) { return ScalarSize(type); }

void LayoutDb::AddStruct(const StructDef& def) { defs_[def.name] = def; }

const StructLayout* LayoutDb::Find(const std::string& name) const {
  auto it = layouts_.find(name);
  return it == layouts_.end() ? nullptr : &it->second;
}

Status LayoutDb::Finalize() {
  for (const auto& [name, def] : defs_) {
    std::set<std::string> in_progress;
    Result<StructLayout*> layout = Compute(name, in_progress);
    if (!layout.ok()) {
      return layout.status();
    }
  }
  // Spoofable counts need the full graph, so run after all layouts exist.
  // A pointer field anywhere in the *mapped bytes* — including inside
  // embedded structs — can be redirected to an attacker instance.
  std::function<uint32_t(const std::string&, std::set<std::string>&)> spoofable_for =
      [&](const std::string& name, std::set<std::string>& embedding) -> uint32_t {
    auto it = defs_.find(name);
    if (it == defs_.end() || embedding.contains(name)) {
      return 0;
    }
    embedding.insert(name);
    uint32_t spoofable = 0;
    for (const FieldDecl& field : it->second.fields) {
      const uint32_t count = static_cast<uint32_t>(
          field.type.array_len > 0 ? field.type.array_len : 1);
      if (field.type.is_struct && field.type.pointer_depth > 0) {
        std::set<std::string> visited;
        spoofable += count * CountReachableCallbacks(field.type.base, visited);
      } else if (field.type.is_struct && field.type.pointer_depth == 0) {
        spoofable += count * spoofable_for(field.type.base, embedding);
      }
    }
    embedding.erase(name);
    return spoofable;
  };
  for (auto& [name, layout] : layouts_) {
    std::set<std::string> embedding;
    layout.spoofable_callbacks = spoofable_for(name, embedding);
  }
  finalized_ = true;
  return OkStatus();
}

Result<StructLayout*> LayoutDb::Compute(const std::string& name,
                                        std::set<std::string>& in_progress) {
  if (auto it = layouts_.find(name); it != layouts_.end()) {
    return &it->second;
  }
  auto def_it = defs_.find(name);
  if (def_it == defs_.end()) {
    // Opaque external struct.
    StructLayout opaque;
    opaque.name = name;
    opaque.size = kOpaqueStructSize;
    opaque.alignment = 8;
    auto [it, inserted] = layouts_.emplace(name, std::move(opaque));
    (void)inserted;
    return &it->second;
  }
  if (in_progress.contains(name)) {
    return InvalidArgument("recursive by-value struct embedding: " + name);
  }
  in_progress.insert(name);

  const StructDef& def = def_it->second;
  StructLayout layout;
  layout.name = name;
  uint64_t offset = 0;
  for (const FieldDecl& field : def.fields) {
    uint64_t size;
    uint64_t align;
    uint32_t callbacks_here = 0;
    if (field.type.is_struct && field.type.pointer_depth == 0) {
      Result<StructLayout*> inner = Compute(field.type.base, in_progress);
      if (!inner.ok()) {
        return inner.status();
      }
      size = (*inner)->size;
      align = (*inner)->alignment;
      callbacks_here = (*inner)->direct_callbacks;
    } else {
      size = ScalarSize(field.type);
      align = ScalarAlign(field.type);
      if (field.type.is_func_ptr) {
        callbacks_here = 1;
      }
    }
    const uint64_t count = field.type.array_len > 0 ? field.type.array_len : 1;
    offset = AlignUp(offset, align);
    FieldLayout fl;
    fl.name = field.name;
    fl.offset = offset;
    fl.size = size * count;
    fl.type = field.type;
    fl.is_callback = field.type.is_func_ptr;
    layout.fields.push_back(fl);
    layout.direct_callbacks += callbacks_here * static_cast<uint32_t>(count);
    layout.alignment = std::max(layout.alignment, align);
    offset += size * count;
  }
  layout.size = AlignUp(std::max<uint64_t>(offset, 1), layout.alignment);
  in_progress.erase(name);
  auto [it, inserted] = layouts_.emplace(name, std::move(layout));
  (void)inserted;
  return &it->second;
}

std::vector<std::string> LayoutDb::CallbackFieldPaths(const std::string& name) const {
  std::vector<std::string> paths;
  std::set<std::string> visiting;
  std::function<void(const std::string&, const std::string&)> walk =
      [&](const std::string& type_name, const std::string& prefix) {
        if (visiting.contains(type_name)) {
          return;
        }
        visiting.insert(type_name);
        auto it = defs_.find(type_name);
        if (it != defs_.end()) {
          for (const FieldDecl& field : it->second.fields) {
            const std::string path = prefix.empty() ? field.name : prefix + "." + field.name;
            if (field.type.is_func_ptr) {
              paths.push_back(path);
            } else if (field.type.is_struct && field.type.pointer_depth == 0) {
              walk(field.type.base, path);
            }
          }
        }
        visiting.erase(type_name);
      };
  walk(name, "");
  return paths;
}

uint32_t LayoutDb::CountReachableCallbacks(const std::string& name,
                                           std::set<std::string>& visited) {
  if (visited.contains(name)) {
    return 0;
  }
  visited.insert(name);
  auto def_it = defs_.find(name);
  if (def_it == defs_.end()) {
    return 0;  // opaque: unknown contents
  }
  uint32_t count = 0;
  for (const FieldDecl& field : def_it->second.fields) {
    const uint64_t n = field.type.array_len > 0 ? field.type.array_len : 1;
    if (field.type.is_func_ptr) {
      count += static_cast<uint32_t>(n);
      continue;
    }
    if (field.type.is_struct) {
      count += static_cast<uint32_t>(n) * CountReachableCallbacks(field.type.base, visited);
    }
  }
  return count;
}

}  // namespace spv::spade
