// Recursive-descent parser for the SPADE C subset.

#ifndef SPV_SPADE_PARSER_H_
#define SPV_SPADE_PARSER_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "spade/ast.h"
#include "spade/lexer.h"

namespace spv::spade {

// Parses a whole translation unit. Unsupported constructs fail with a line
// number — SPADE's false-negative-on-complex-code limitation (§4.3) shows up
// as files the parser (or analyzer) cannot follow.
Result<SourceFile> ParseSource(std::string path, std::string_view source);

}  // namespace spv::spade

#endif  // SPV_SPADE_PARSER_H_
