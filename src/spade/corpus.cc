#include "spade/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "spade/parser.h"

namespace spv::spade {

std::string DefaultCorpusDir() {
#ifdef SPV_CORPUS_DIR
  return SPV_CORPUS_DIR;
#else
  return "corpus";
#endif
}

Result<CorpusLoadStats> LoadCorpusDirectory(SpadeAnalyzer& analyzer,
                                            const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    return NotFound("corpus directory not found: " + directory);
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".c") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  CorpusLoadStats stats;
  for (const fs::path& path : paths) {
    std::ifstream in{path};
    if (!in) {
      ++stats.files_failed;
      stats.failures.push_back(path.string() + ": unreadable");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    Result<SourceFile> parsed =
        ParseSource(fs::relative(path, directory).string(), buf.str());
    if (!parsed.ok()) {
      ++stats.files_failed;
      stats.failures.push_back(parsed.status().ToString());
      continue;
    }
    analyzer.AddFile(std::move(*parsed));
    ++stats.files_parsed;
  }
  return stats;
}

}  // namespace spv::spade
