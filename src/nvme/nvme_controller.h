// NvmeController: an honest NVMe controller model behind the IOMMU.
//
// The controller owns nothing but a DevicePort and its private media array.
// Submission queue entries are FETCHED from host memory by DMA, completion
// queue entries are WRITTEN into host memory by DMA, and every data transfer
// walks PRP lists that also live in host memory — so the entire command path
// crosses the IOMMU, which is what makes the storage queue structures the
// same attack surface the paper demonstrated on NIC rings. Fault-injection
// sites model the controller-side failure modes (corrupt fetches, wild PRP
// dereferences, phase-flipped or dropped completions, doorbell storms, short
// transfers); the malicious twin in malicious_nvme.h overrides the service
// loop to mount deliberate attacks with the same primitives.

#ifndef SPV_NVME_NVME_CONTROLLER_H_
#define SPV_NVME_NVME_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "base/status.h"
#include "base/types.h"
#include "device/device_port.h"
#include "nvme/nvme_defs.h"
#include "nvme/nvme_device_model.h"
#include "trace/tracer.h"

namespace spv::fault {
class FaultEngine;
}  // namespace spv::fault

namespace spv::nvme {

// One contiguous piece of a command's data transfer, as resolved by the PRP
// walk: an IOVA range the device will DMA to/from.
struct PrpChunk {
  Iova iova;
  uint64_t len = 0;
};

class NvmeController : public NvmeDeviceModel {
 public:
  struct Config {
    uint64_t capacity_blocks = 2048;  // 1 MiB of media at 512-byte LBAs
  };

  struct Stats {
    uint64_t sqes_fetched = 0;
    uint64_t fetch_errors = 0;       // SQ fetch DMA failed (fenced/unmapped)
    uint64_t cqes_posted = 0;
    uint64_t cqe_post_errors = 0;    // CQ write DMA failed
    uint64_t bytes_read = 0;         // media -> host
    uint64_t bytes_written = 0;      // host -> media
    uint64_t prp_segments_walked = 0;
    uint64_t transfer_errors = 0;    // data-phase DMA failed mid-command
    uint64_t cq_overflows = 0;       // completion dropped: CQ full
  };

  explicit NvmeController(device::DevicePort port, Config config);
  explicit NvmeController(device::DevicePort port)
      : NvmeController(port, Config{}) {}

  // ---- NvmeDeviceModel --------------------------------------------------------

  void OnAdminQueueConfigured(const QueuePair& queues) override;
  void OnSqDoorbell(uint16_t qid, uint16_t tail) override;
  void OnCqDoorbell(uint16_t qid, uint16_t head) override;
  void OnQueueDeleted(uint16_t qid) override;

  // ---- Wiring -----------------------------------------------------------------

  // Controller-side fault sites (kNvme*); nullptr detaches.
  void set_fault_engine(fault::FaultEngine* engine) { fault_ = engine; }
  // Optional span tracer for fetch/transfer/post phases; nullptr detaches.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  device::DevicePort& port() { return port_; }
  const Stats& stats() const { return stats_; }
  uint64_t capacity_blocks() const { return config_.capacity_blocks; }

  // Host-side test oracle: peek at the media without any DMA.
  Result<std::vector<uint8_t>> PeekMedia(uint64_t slba, uint64_t blocks) const;

  // PRP-list segment IOVAs the controller has legitimately observed while
  // walking commands — the malicious twin harvests the pages behind them.
  const std::vector<Iova>& prp_segments_seen() const { return prp_segments_seen_; }

 protected:
  struct QueueState {
    QueuePair cfg;
    uint16_t sq_head = 0;
    uint16_t cq_tail = 0;
    uint16_t cq_head = 0;  // last head the host doorbelled
    bool phase = true;     // tag for the next CQE posted
  };

  // Fetches, decodes, executes and completes entries [sq_head, tail). The
  // malicious twin overrides this to reorder / forge / withhold completions.
  virtual void ServiceSq(uint16_t qid, QueueState& queue, uint16_t tail);

  // One command, fetch to completion. Returns false when the SQE fetch
  // itself failed (fenced device: stop ringing the ring).
  bool ServiceOne(uint16_t qid, QueueState& queue);

  Result<Sqe> FetchSqe(const QueueState& queue, uint16_t index);
  // Executes `sqe`, filling `cqe` (status + dw0). Admin commands mutate the
  // queue map; IO commands move data between media and host memory. Virtual
  // so the malicious twin can complete-before-transfer (Poisoned Completion).
  virtual void Execute(uint16_t qid, const Sqe& sqe, Cqe& cqe);
  // Posts `cqe` into the queue's CQ ring (phase stamped from queue state).
  // Respects kNvmeCqPhaseFlip / kNvmeCompletionDrop when armed.
  Status PostCqe(QueueState& queue, Cqe cqe);

  // Resolves the data pointers of a command into DMA chunks, reading PRP
  // list segments from host memory. `status` receives a command status code
  // on walk failure.
  Result<std::vector<PrpChunk>> WalkPrps(const Sqe& sqe, uint64_t total_bytes,
                                         uint8_t& status);

  void ExecuteIo(const Sqe& sqe, Cqe& cqe);
  void ExecuteAdmin(uint16_t qid, const Sqe& sqe, Cqe& cqe);

  device::DevicePort port_;
  Config config_;
  std::vector<uint8_t> media_;
  std::map<uint16_t, QueueState> queues_;
  // CreateCq parks geometry here until the matching CreateSq arrives.
  struct PendingCq {
    Iova base;
    uint16_t entries = 0;
  };
  std::map<uint16_t, PendingCq> pending_cqs_;
  std::vector<Iova> prp_segments_seen_;
  Stats stats_;
  fault::FaultEngine* fault_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace spv::nvme

#endif  // SPV_NVME_NVME_CONTROLLER_H_
