#include "nvme/malicious_nvme.h"

#include <algorithm>
#include <span>
#include <unordered_set>

namespace spv::nvme {

void MaliciousNvme::OnSqDoorbell(uint16_t qid, uint16_t tail) {
  if (warm_iotlb_) {
    auto it = queues_.find(qid);
    if (it != queues_.end()) {
      // One read per ring page keeps the translations cached; a fetch-sized
      // read of the SQ is exactly what honest hardware does anyway.
      (void)port_.ReadU64(it->second.cfg.sq_base);
      const uint8_t zero = 0;
      (void)port_.Write(it->second.cfg.cq_base, std::span<const uint8_t>(&zero, 1));
    }
  }
  NvmeController::OnSqDoorbell(qid, tail);
}

void MaliciousNvme::Execute(uint16_t qid, const Sqe& sqe, Cqe& cqe) {
  if (qid != 0 && complete_before_transfer_ &&
      (sqe.opcode == kOpRead || sqe.opcode == kOpWrite)) {
    const uint64_t blocks = static_cast<uint64_t>(sqe.nlb) + 1;
    if (sqe.slba + blocks > capacity_blocks()) {
      cqe.status = kScLbaOutOfRange;
      return;
    }
    const uint64_t total = blocks << kLbaShift;
    uint8_t walk_status = kScSuccess;
    Result<std::vector<PrpChunk>> chunks = WalkPrps(sqe, total, walk_status);
    if (!chunks.ok()) {
      cqe.status = walk_status;
      return;
    }
    if (warm_iotlb_) {
      WarmChunks(sqe.opcode, *chunks);
    }
    // Poisoned Completion: a success CQE claiming the full transfer, with the
    // data phase parked for later. The driver will unmap and free the buffer
    // believing the device is done with it.
    pending_.push_back(PendingTransfer{sqe.opcode, sqe.slba << kLbaShift, total,
                                       std::move(*chunks)});
    cqe.status = kScSuccess;
    cqe.dw0 = static_cast<uint32_t>(total);
    return;
  }
  NvmeController::Execute(qid, sqe, cqe);
}

void MaliciousNvme::WarmChunks(uint8_t opcode,
                               const std::vector<PrpChunk>& chunks) {
  // Warm with the access direction the mapping permits: read commands map
  // device-writable buffers (warm with a one-byte zero write, like a partial
  // fill), write commands map device-readable ones.
  for (const PrpChunk& chunk : chunks) {
    if (opcode == kOpRead) {
      const uint8_t zero = 0;
      (void)port_.Write(chunk.iova, std::span<const uint8_t>(&zero, 1));
    } else {
      uint8_t byte = 0;
      (void)port_.Read(chunk.iova, std::span<uint8_t>(&byte, 1));
    }
  }
}

Status MaliciousNvme::ReplayPendingTransfer() {
  if (pending_.empty()) {
    return FailedPrecondition("no withheld transfer to replay");
  }
  PendingTransfer transfer = std::move(pending_.front());
  pending_.pop_front();
  uint64_t moved = 0;
  for (const PrpChunk& chunk : transfer.chunks) {
    const uint64_t n = std::min(chunk.len, transfer.total - moved);
    if (n == 0) {
      break;
    }
    Status io;
    if (transfer.opcode == kOpRead) {
      io = port_.Write(chunk.iova,
                       std::span<const uint8_t>(
                           media_.data() + transfer.media_off + moved, n));
    } else {
      io = port_.Read(chunk.iova,
                      std::span<uint8_t>(
                          media_.data() + transfer.media_off + moved, n));
    }
    if (!io.ok()) {
      return io;
    }
    moved += n;
  }
  return OkStatus();
}

Status MaliciousNvme::ForgePoisonedCompletion(uint16_t qid, uint16_t cid,
                                              uint8_t status, uint32_t dw0) {
  auto it = queues_.find(qid);
  if (it == queues_.end()) {
    return NotFound("no such queue");
  }
  Cqe cqe;
  cqe.dw0 = dw0;
  cqe.sq_head = it->second.sq_head;
  cqe.sq_id = qid;
  cqe.cid = cid;
  cqe.status = status;
  return PostCqe(it->second, cqe);
}

Result<std::vector<uint64_t>> MaliciousNvme::HarvestPrpQwords() {
  std::vector<uint64_t> harvest;
  std::unordered_set<uint64_t> pages_seen;
  for (const Iova segment : prp_segments_seen_) {
    if (!pages_seen.insert(segment.PageBase().value).second) {
      continue;
    }
    Result<std::vector<uint64_t>> qwords = port_.ReadPageQwords(segment);
    if (!qwords.ok()) {
      continue;  // segment page already revoked; harvest what is still live
    }
    harvest.insert(harvest.end(), qwords->begin(), qwords->end());
  }
  if (harvest.empty()) {
    return Unavailable("no PRP segment pages readable");
  }
  return harvest;
}

}  // namespace spv::nvme
