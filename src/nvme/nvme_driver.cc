#include "nvme/nvme_driver.h"

#include <algorithm>
#include <array>

#include "dma/bounce_pool.h"
#include "fault/fault.h"
#include "trace/tracer.h"

namespace spv::nvme {

namespace {

// Cycles one empty CQ-poll iteration costs: the spin that makes the poll
// deadline reachable on a silent device.
constexpr uint64_t kPollSpinCycles = 100;

// One helper for every driver emit point, same shape as the NIC's.
void EmitNvmeEvent(telemetry::Hub& hub, telemetry::EventKind kind,
                   telemetry::Severity severity, DeviceId device, uint64_t len,
                   uint64_t addr, const void* origin, std::string site) {
  if (!hub.active()) {
    return;
  }
  telemetry::Event event;
  event.kind = kind;
  event.severity = severity;
  event.device = device.value;
  event.len = len;
  event.addr = addr;
  event.origin = origin;
  event.site = std::move(site);
  hub.Publish(std::move(event));
}

}  // namespace

NvmeDriver::NvmeDriver(DeviceId device_id, dma::DmaApi& dma,
                       dma::KernelMemory& kmem, slab::SlabAllocator& slab,
                       slab::PageFragPool* frag_pool, SimClock& clock,
                       Config config)
    : device_id_(device_id),
      dma_(dma),
      kmem_(kmem),
      slab_(slab),
      frag_pool_(frag_pool),
      clock_(clock),
      config_(std::move(config)) {}

bool NvmeDriver::PollDeadlineHit(uint64_t start_cycle, std::string_view loop) {
  if (clock_.now() - start_cycle < EffectivePollDeadline()) {
    return false;
  }
  ++poll_deadline_hits_;
  EmitNvmeEvent(dma_.telemetry(), telemetry::EventKind::kNvmePollDeadline,
                telemetry::Severity::kWarn, device_id_,
                clock_.now() - start_cycle, 0, this,
                config_.name + "_" + std::string(loop));
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nvme.poll_deadline_exceeded").Add();
  }
  return true;
}

uint16_t NvmeDriver::NextCid() {
  // CID 0 is reserved so a zeroed CQE slot can never match a command.
  do {
    next_cid_ = static_cast<uint16_t>((next_cid_ + 1) & 0x7fff);
  } while (next_cid_ == 0 || outstanding_.count(next_cid_) != 0 ||
           finished_.count(next_cid_) != 0);
  return next_cid_;
}

// ---- Bring-up -------------------------------------------------------------------

Status NvmeDriver::Init() {
  if (device_ == nullptr) {
    return FailedPrecondition("no device attached");
  }
  if (admin_.live || io_.live) {
    return FailedPrecondition("driver already initialized");
  }
  trace::ScopedSpan span(tracer_, "nvme.init");
  active_mode_ = dma_.service_mode(device_id_);
  SPV_RETURN_IF_ERROR(AllocQueue(admin_, kAdminQid, config_.admin_queue_entries,
                                 config_.admin_queue_entries));
  device_->OnAdminQueueConfigured(QueuePair{kAdminQid, admin_.sq_iova,
                                            admin_.sq_entries, admin_.cq_iova,
                                            admin_.cq_entries});
  Status identify = IdentifyController();
  if (!identify.ok()) {
    (void)Shutdown();
    return identify;
  }
  Status io_queue = CreateIoQueue();
  if (!io_queue.ok()) {
    (void)Shutdown();
    return io_queue;
  }
  return OkStatus();
}

Status NvmeDriver::Resume() {
  if (admin_.live || io_.live) {
    (void)Shutdown();
  }
  return Init();
}

Status NvmeDriver::AllocQueue(QueueView& view, uint16_t qid,
                              uint16_t sq_entries, uint16_t cq_entries) {
  dma_.set_current_cpu(config_.cpu);
  const uint64_t sq_bytes = static_cast<uint64_t>(sq_entries) * kSqeSize;
  const uint64_t cq_bytes = static_cast<uint64_t>(cq_entries) * kCqeSize;
  // Ring memory is kmalloc'd: the rings land in the 256..2048 size classes
  // next to unrelated kernel objects — type (d) co-location for queue state
  // itself, exactly like a real dma_alloc_coherent-averse driver would not
  // have, and our attack tests need.
  Result<Kva> sq = slab_.Kmalloc(sq_bytes, config_.name + "_sq");
  if (!sq.ok()) {
    return sq.status();
  }
  Result<Kva> cq = slab_.Kmalloc(cq_bytes, config_.name + "_cq");
  if (!cq.ok()) {
    (void)slab_.Kfree(*sq);
    return cq.status();
  }
  // Persistent maps: for trusted devices this is MapSingle verbatim; for
  // bounced devices the ring lands in pool slots that stay put for the
  // queue's whole life, with SQE/CQE syncs moving the bytes (sync mode).
  Result<Iova> sq_iova =
      dma_.MapPersistent(device_id_, *sq, sq_bytes, dma::DmaDirection::kToDevice,
                         config_.name + "_map_sq");
  if (!sq_iova.ok()) {
    (void)slab_.Kfree(*cq);
    (void)slab_.Kfree(*sq);
    return sq_iova.status();
  }
  Result<Iova> cq_iova =
      dma_.MapPersistent(device_id_, *cq, cq_bytes, dma::DmaDirection::kFromDevice,
                         config_.name + "_map_cq");
  if (!cq_iova.ok()) {
    (void)dma_.UnmapSingle(device_id_, *sq_iova, sq_bytes,
                           dma::DmaDirection::kToDevice);
    (void)slab_.Kfree(*cq);
    (void)slab_.Kfree(*sq);
    return cq_iova.status();
  }
  view = QueueView{};
  view.live = true;
  view.qid = qid;
  view.sq_kva = *sq;
  view.sq_iova = *sq_iova;
  view.sq_entries = sq_entries;
  view.cq_kva = *cq;
  view.cq_iova = *cq_iova;
  view.cq_entries = cq_entries;
  dma::BouncePool* pool = dma_.bounce_pool();
  view.sq_bounced = pool != nullptr && pool->Owns(device_id_, *sq_iova);
  view.cq_bounced = pool != nullptr && pool->Owns(device_id_, *cq_iova);
  return OkStatus();
}

Status NvmeDriver::FreeQueue(QueueView& view) {
  if (!view.live) {
    return OkStatus();
  }
  dma_.set_current_cpu(config_.cpu);
  Status first = OkStatus();
  auto note = [&first](Status status) {
    if (first.ok() && !status.ok()) {
      first = status;
    }
  };
  note(dma_.UnmapSingle(device_id_, view.sq_iova,
                        static_cast<uint64_t>(view.sq_entries) * kSqeSize,
                        dma::DmaDirection::kToDevice));
  note(dma_.UnmapSingle(device_id_, view.cq_iova,
                        static_cast<uint64_t>(view.cq_entries) * kCqeSize,
                        dma::DmaDirection::kFromDevice));
  note(slab_.Kfree(view.sq_kva));
  note(slab_.Kfree(view.cq_kva));
  view = QueueView{};
  return first;
}

Status NvmeDriver::IdentifyController() {
  Result<Kva> page = slab_.Kmalloc(kPageSize, config_.name + "_identify");
  if (!page.ok()) {
    return page.status();
  }
  Result<Iova> iova =
      dma_.MapSingle(device_id_, *page, kPageSize,
                     dma::DmaDirection::kFromDevice, config_.name + "_map_identify");
  if (!iova.ok()) {
    (void)slab_.Kfree(*page);
    return iova.status();
  }
  Sqe sqe;
  sqe.opcode = kAdminIdentify;
  sqe.cid = NextCid();
  sqe.prp1 = iova->value;
  Result<Cqe> cqe = AdminCommand(sqe);
  Status first = cqe.ok() ? OkStatus() : cqe.status();
  if (first.ok() && cqe->status != kScSuccess) {
    first = Internal("identify failed with status " +
                     std::to_string(cqe->status));
  }
  if (first.ok()) {
    dma::BouncePool* pool = dma_.bounce_pool();
    if (pool != nullptr && pool->Owns(device_id_, *iova)) {
      // Transient bounces only copy out at unmap, but the capacity read
      // happens while the page is still mapped — pull the device's identify
      // bytes across the bounce boundary now.
      first = dma_.SyncSingleForCpu(device_id_, *iova, kPageSize,
                                    dma::DmaDirection::kFromDevice);
    }
  }
  if (first.ok()) {
    Result<uint64_t> capacity = kmem_.ReadU64(*page + kIdentifyCapacityOff);
    if (capacity.ok()) {
      capacity_blocks_ = *capacity;
    } else {
      first = capacity.status();
    }
  }
  (void)dma_.UnmapSingle(device_id_, *iova, kPageSize,
                         dma::DmaDirection::kFromDevice);
  (void)slab_.Kfree(*page);
  return first;
}

Status NvmeDriver::CreateIoQueue() {
  SPV_RETURN_IF_ERROR(AllocQueue(io_, kIoQid, config_.io_queue_entries,
                                 config_.io_queue_entries));
  // CQ before SQ, per spec: the SQ references its CQ at creation.
  Sqe create_cq;
  create_cq.opcode = kAdminCreateCq;
  create_cq.cid = NextCid();
  create_cq.prp1 = io_.cq_iova.value;
  create_cq.cdw10 = static_cast<uint32_t>(kIoQid) |
                    (static_cast<uint32_t>(io_.cq_entries - 1) << 16);
  Result<Cqe> cq_done = AdminCommand(create_cq);
  if (!cq_done.ok() || cq_done->status != kScSuccess) {
    (void)FreeQueue(io_);
    return cq_done.ok() ? Internal("create cq failed with status " +
                                   std::to_string(cq_done->status))
                        : cq_done.status();
  }
  Sqe create_sq;
  create_sq.opcode = kAdminCreateSq;
  create_sq.cid = NextCid();
  create_sq.prp1 = io_.sq_iova.value;
  create_sq.cdw10 = static_cast<uint32_t>(kIoQid) |
                    (static_cast<uint32_t>(io_.sq_entries - 1) << 16);
  create_sq.cdw11 = kIoQid;
  Result<Cqe> sq_done = AdminCommand(create_sq);
  if (!sq_done.ok() || sq_done->status != kScSuccess) {
    (void)FreeQueue(io_);
    return sq_done.ok() ? Internal("create sq failed with status " +
                                   std::to_string(sq_done->status))
                        : sq_done.status();
  }
  return OkStatus();
}

Result<Cqe> NvmeDriver::AdminCommand(const Sqe& sqe) {
  if (!admin_.live) {
    return FailedPrecondition("admin queue down");
  }
  trace::ScopedSpan span(tracer_, "nvme.admin");
  SPV_RETURN_IF_ERROR(WriteSqe(admin_, sqe));
  admin_.sq_tail =
      static_cast<uint16_t>((admin_.sq_tail + 1) % admin_.sq_entries);
  device_->OnSqDoorbell(kAdminQid, admin_.sq_tail);
  const uint64_t start = clock_.now();
  while (true) {
    std::optional<Cqe> cqe = TryPopCqe(admin_);
    if (cqe.has_value()) {
      if (cqe->cid != sqe.cid) {
        ++completion_errors_;
        EmitNvmeEvent(dma_.telemetry(),
                      telemetry::EventKind::kNvmeCompletionError,
                      telemetry::Severity::kWarn, device_id_, 0, cqe->cid, this,
                      config_.name + "_admin_bad_cid");
        continue;
      }
      return *cqe;
    }
    if (PollDeadlineHit(start, "admin_poll")) {
      return Unavailable("admin completion did not arrive");
    }
    clock_.Advance(kPollSpinCycles);
  }
}

// ---- IO submission --------------------------------------------------------------

Result<uint16_t> NvmeDriver::SubmitRead(uint64_t slba, uint16_t nblocks,
                                        Kva buf) {
  return SubmitIo(kOpRead, slba, nblocks, buf);
}

Result<uint16_t> NvmeDriver::SubmitWrite(uint64_t slba, uint16_t nblocks,
                                         Kva buf) {
  return SubmitIo(kOpWrite, slba, nblocks, buf);
}

Result<uint64_t> NvmeDriver::ReadBlocks(uint64_t slba, uint16_t nblocks,
                                        Kva buf) {
  trace::ScopedSpan span(tracer_, "nvme.io");
  Result<uint16_t> cid = SubmitRead(slba, nblocks, buf);
  if (!cid.ok()) {
    return cid.status();
  }
  return WaitFor(*cid);
}

Result<uint64_t> NvmeDriver::WriteBlocks(uint64_t slba, uint16_t nblocks,
                                         Kva buf) {
  trace::ScopedSpan span(tracer_, "nvme.io");
  Result<uint16_t> cid = SubmitWrite(slba, nblocks, buf);
  if (!cid.ok()) {
    return cid.status();
  }
  return WaitFor(*cid);
}

Status NvmeDriver::Flush() {
  RefreshServiceMode();
  if (!io_.live) {
    return FailedPrecondition("io queue down");
  }
  trace::ScopedSpan span(tracer_, "nvme.io");
  Sqe sqe;
  sqe.opcode = kOpFlush;
  sqe.cid = NextCid();
  SPV_RETURN_IF_ERROR(WriteSqe(io_, sqe));
  io_.sq_tail = static_cast<uint16_t>((io_.sq_tail + 1) % io_.sq_entries);
  IoCmd cmd;
  cmd.opcode = kOpFlush;
  cmd.submit_cycle = clock_.now();
  outstanding_[sqe.cid] = std::move(cmd);
  device_->OnSqDoorbell(kIoQid, io_.sq_tail);
  return WaitFor(sqe.cid).status();
}

Result<uint16_t> NvmeDriver::SubmitIo(uint8_t opcode, uint64_t slba,
                                      uint16_t nblocks, Kva buf) {
  RefreshServiceMode();
  // CID 0 = "allocate one after validation" (CID 0 is reserved anyway).
  return SubmitIoWithCid(opcode, slba, nblocks, buf, 0, clock_.now());
}

Result<uint16_t> NvmeDriver::SubmitIoWithCid(uint8_t opcode, uint64_t slba,
                                             uint16_t nblocks, Kva buf,
                                             uint16_t cid,
                                             uint64_t submit_cycle) {
  if (!io_.live) {
    return FailedPrecondition("io queue down");
  }
  if (nblocks == 0) {
    return InvalidArgument("zero-length transfer");
  }
  if (nblocks > config_.max_transfer_blocks) {
    return InvalidArgument("transfer exceeds max_transfer_blocks");
  }
  if (capacity_blocks_ != 0 && slba + nblocks > capacity_blocks_) {
    return InvalidArgument("transfer beyond device capacity");
  }
  if (outstanding_.size() >= EffectiveQueueDepth()) {
    return ResourceExhausted("io queue full");
  }
  trace::ScopedSpan span(tracer_, "nvme.submit");
  dma_.set_current_cpu(config_.cpu);
  const uint64_t len = static_cast<uint64_t>(nblocks) << kLbaShift;
  const dma::DmaDirection dir = opcode == kOpRead
                                    ? dma::DmaDirection::kFromDevice
                                    : dma::DmaDirection::kToDevice;
  Result<Iova> iova =
      dma_.MapSingle(device_id_, buf, len, dir, config_.name + "_map_data");
  if (!iova.ok()) {
    return iova.status();
  }
  const uint64_t prp1 = iova->value;
  const uint64_t first_len =
      std::min(kPageSize - (prp1 & (kPageSize - 1)), len);
  uint64_t prp2 = 0;
  std::vector<PrpSeg> segs;
  if (len > first_len) {
    // Every byte past the first page boundary is covered by page-aligned
    // entries at prp1+first_len, +4K, ... (MapSingle keeps the buffer
    // IOVA-contiguous).
    std::vector<uint64_t> pages;
    for (uint64_t off = first_len; off < len; off += kPageSize) {
      pages.push_back(prp1 + off);
    }
    if (pages.size() == 1) {
      prp2 = pages[0];  // PRP2-as-page: exactly one extra page, no list
    } else {
      Status chain = BuildPrpChain(pages, segs, prp2);
      if (!chain.ok()) {
        (void)dma_.UnmapSingle(device_id_, *iova, len, dir);
        return chain;
      }
    }
  }
  Sqe sqe;
  sqe.opcode = opcode;
  sqe.cid = cid == 0 ? NextCid() : cid;
  sqe.prp1 = prp1;
  sqe.prp2 = prp2;
  sqe.slba = slba;
  sqe.nlb = static_cast<uint16_t>(nblocks - 1);
  Status wrote = WriteSqe(io_, sqe);
  if (!wrote.ok()) {
    IoCmd scratch{opcode, buf, len, *iova, dir, std::move(segs), 0,
                  slba, nblocks};
    (void)ReleaseCmd(scratch, "sqe_write_failed");
    return wrote;
  }
  io_.sq_tail = static_cast<uint16_t>((io_.sq_tail + 1) % io_.sq_entries);
  IoCmd cmd{opcode, buf, len, *iova, dir, std::move(segs), submit_cycle,
            slba, nblocks};
  const uint16_t use_cid = sqe.cid;
  outstanding_[use_cid] = std::move(cmd);
  EmitNvmeEvent(dma_.telemetry(), telemetry::EventKind::kNvmeSubmit,
                telemetry::Severity::kInfo, device_id_, len, iova->value, this,
                config_.name + (opcode == kOpRead ? "_read" : "_write"));
  device_->OnSqDoorbell(kIoQid, io_.sq_tail);
  return use_cid;
}

Status NvmeDriver::BuildPrpChain(const std::vector<uint64_t>& page_iovas,
                                 std::vector<PrpSeg>& segs, uint64_t& prp2) {
  // Split entries into fixed-capacity segments: every segment but the last
  // donates its final slot to the chain pointer.
  std::vector<size_t> seg_counts;
  size_t consumed = 0;
  while (page_iovas.size() - consumed > kPrpSegEntries) {
    seg_counts.push_back(kPrpSegEntries - 1);
    consumed += kPrpSegEntries - 1;
  }
  seg_counts.push_back(page_iovas.size() - consumed);
  // Build back-to-front so each chain pointer is written (by the CPU, before
  // the segment is mapped) with the already-known IOVA of its successor —
  // no CPU stores into device-owned memory.
  std::vector<PrpSeg> built(seg_counts.size());
  const bool from_frag = config_.prp_lists_from_frags && frag_pool_ != nullptr;
  const uint64_t seg_bytes = from_frag ? kPrpSegBytes : kPageSize;
  uint64_t next_iova = 0;
  size_t entry_index = page_iovas.size();
  Status first = OkStatus();
  size_t s = seg_counts.size();
  while (s-- > 0) {
    entry_index -= seg_counts[s];
    Result<Kva> kva =
        from_frag
            ? frag_pool_->Alloc(kPrpSegBytes, 8, config_.name + "_prp_seg")
            : slab_.Kmalloc(kPageSize, config_.name + "_prp_seg");
    if (!kva.ok()) {
      first = kva.status();
      break;
    }
    for (size_t j = 0; j < seg_counts[s] && first.ok(); ++j) {
      first = kmem_.WriteU64(*kva + 8 * j, page_iovas[entry_index + j]);
    }
    if (first.ok() && next_iova != 0) {
      first = kmem_.WriteU64(*kva + 8 * (kPrpSegEntries - 1), next_iova);
    }
    if (!first.ok()) {
      if (from_frag) {
        (void)frag_pool_->Free(*kva);
      } else {
        (void)slab_.Kfree(*kva);
      }
      break;
    }
    Result<Iova> seg_iova =
        dma_.MapSingle(device_id_, *kva, seg_bytes,
                       dma::DmaDirection::kToDevice, config_.name + "_map_prp");
    if (!seg_iova.ok()) {
      if (from_frag) {
        (void)frag_pool_->Free(*kva);
      } else {
        (void)slab_.Kfree(*kva);
      }
      first = seg_iova.status();
      break;
    }
    built[s] = PrpSeg{*kva, *seg_iova, from_frag};
    next_iova = seg_iova->value;
    ++prp_segments_built_;
  }
  if (!first.ok()) {
    // Tear down the segments already built (they sit at indices s+1..end).
    for (size_t t = s + 1; t < built.size(); ++t) {
      (void)dma_.UnmapSingle(device_id_, built[t].iova, seg_bytes,
                             dma::DmaDirection::kToDevice);
      if (built[t].from_frag) {
        (void)frag_pool_->Free(built[t].kva);
      } else {
        (void)slab_.Kfree(built[t].kva);
      }
    }
    return first;
  }
  prp2 = next_iova;
  segs.insert(segs.end(), built.begin(), built.end());
  return OkStatus();
}

Status NvmeDriver::WriteSqe(QueueView& view, const Sqe& sqe) {
  const std::array<uint8_t, kSqeSize> raw = EncodeSqe(sqe);
  const uint64_t off = static_cast<uint64_t>(view.sq_tail) * kSqeSize;
  SPV_RETURN_IF_ERROR(kmem_.Write(view.sq_kva + off, raw));
  if (view.sq_bounced) {
    // Sync-mode ring: copy the fresh SQE into its bounce slot before the
    // doorbell so the device's fetch through the static pool mapping sees
    // it. One 64-byte sync per command — the measured cost of distrust.
    return dma_.SyncSingleForDevice(device_id_, view.sq_iova + off, kSqeSize,
                                    dma::DmaDirection::kToDevice);
  }
  return OkStatus();
}

// ---- Completion -----------------------------------------------------------------

std::optional<Cqe> NvmeDriver::TryPopCqe(QueueView& view) {
  const uint64_t off = static_cast<uint64_t>(view.cq_head) * kCqeSize;
  if (view.cq_bounced) {
    // Pull the candidate CQE out of its bounce slot before the phase check.
    // The CQ is only ever sync'd for-cpu: a for-device re-arm would scrub
    // the ring and fabricate phase-matching zero CQEs after the first wrap.
    if (!dma_.SyncSingleForCpu(device_id_, view.cq_iova + off, kCqeSize,
                               dma::DmaDirection::kFromDevice)
             .ok()) {
      return std::nullopt;
    }
  }
  std::array<uint8_t, kCqeSize> raw{};
  if (!kmem_.Read(view.cq_kva + off, raw).ok()) {
    return std::nullopt;
  }
  Cqe cqe = DecodeCqe(raw);
  if (cqe.phase != view.phase) {
    return std::nullopt;  // slot not (visibly) written this pass
  }
  view.cq_head = static_cast<uint16_t>((view.cq_head + 1) % view.cq_entries);
  if (view.cq_head == 0) {
    view.phase = !view.phase;
  }
  device_->OnCqDoorbell(view.qid, view.cq_head);
  return cqe;
}

uint32_t NvmeDriver::PollCompletions() {
  RefreshServiceMode();
  if (!io_.live) {
    return 0;
  }
  trace::ScopedSpan span(tracer_, "nvme.poll");
  const uint64_t start = clock_.now();
  uint32_t consumed = 0;
  while (true) {
    std::optional<Cqe> cqe = TryPopCqe(io_);
    if (!cqe.has_value()) {
      break;
    }
    if (HandleIoCqe(*cqe)) {
      ++consumed;
    }
    if (PollDeadlineHit(start, "cq_poll")) {
      break;
    }
    clock_.Advance(kPollSpinCycles);
  }
  return consumed;
}

bool NvmeDriver::HandleIoCqe(const Cqe& cqe) {
  telemetry::Hub& hub = dma_.telemetry();
  auto it = outstanding_.find(cqe.cid);
  if (it == outstanding_.end()) {
    // Unknown CID: duplicate delivery (doorbell storm), a corrupted fetch's
    // completion, or a forgery that guessed wrong.
    ++completion_errors_;
    EmitNvmeEvent(hub, telemetry::EventKind::kNvmeCompletionError,
                  telemetry::Severity::kWarn, device_id_, 0, cqe.cid, this,
                  config_.name + "_bad_cid");
    if (hub.enabled()) {
      hub.counter("nvme.completion_errors").Add();
    }
    return false;
  }
  IoCmd cmd = std::move(it->second);
  outstanding_.erase(it);
  uint8_t status = cqe.status;
  uint64_t transferred = cqe.dw0;
  if (status == kScSuccess && transferred != cmd.len) {
    // Success claimed but the byte count disagrees: a short transfer (or a
    // forged DW0). The data cannot be trusted.
    ++completion_errors_;
    EmitNvmeEvent(hub, telemetry::EventKind::kNvmeCompletionError,
                  telemetry::Severity::kWarn, device_id_, transferred, cqe.cid,
                  this, config_.name + "_short_transfer");
    if (hub.enabled()) {
      hub.counter("nvme.completion_errors").Add();
    }
    status = kScDataTransferError;
  }
  (void)ReleaseCmd(cmd, "complete");
  finished_[cqe.cid] = Finished{status, transferred};
  if (status == kScSuccess) {
    if (cmd.opcode == kOpRead) {
      ++reads_completed_;
    } else if (cmd.opcode == kOpWrite) {
      ++writes_completed_;
    }
    EmitNvmeEvent(hub, telemetry::EventKind::kNvmeComplete,
                  telemetry::Severity::kInfo, device_id_, transferred, cqe.cid,
                  this, config_.name + "_complete");
    if (hub.enabled()) {
      hub.counter(cmd.opcode == kOpRead ? "nvme.reads" : "nvme.writes").Add();
      hub.histogram("nvme.io_latency_cycles")
          .Record(clock_.now() - cmd.submit_cycle);
      hub.histogram("nvme.transfer_bytes").Record(transferred);
    }
  } else {
    ++io_errors_;
    EmitNvmeEvent(hub, telemetry::EventKind::kNvmeComplete,
                  telemetry::Severity::kWarn, device_id_, transferred, cqe.cid,
                  this, config_.name + "_error_status");
    if (hub.enabled()) {
      hub.counter("nvme.io_errors").Add();
    }
  }
  return true;
}

Result<uint64_t> NvmeDriver::WaitFor(uint16_t cid) {
  const uint64_t start = clock_.now();
  while (true) {
    auto done = finished_.find(cid);
    if (done != finished_.end()) {
      const Finished result = done->second;
      finished_.erase(done);
      if (result.status != kScSuccess) {
        return Internal("nvme command failed with status " +
                        std::to_string(result.status));
      }
      return result.transferred;
    }
    if (outstanding_.find(cid) == outstanding_.end()) {
      return Unavailable("command aborted before completion");
    }
    PollCompletions();
    if (finished_.count(cid) != 0) {
      continue;
    }
    if (PollDeadlineHit(start, "wait")) {
      // Leave the command outstanding: the watchdog owns it now.
      return Unavailable("completion did not arrive within poll deadline");
    }
    clock_.Advance(kPollSpinCycles);
  }
}

// ---- Teardown / recovery --------------------------------------------------------

Status NvmeDriver::ReleaseCmd(IoCmd& cmd, std::string_view /*why*/) {
  dma_.set_current_cpu(config_.cpu);
  Status first = OkStatus();
  auto note = [&first](Status status) {
    if (first.ok() && !status.ok()) {
      first = status;
    }
  };
  if (cmd.len != 0) {
    note(dma_.UnmapSingle(device_id_, cmd.data_iova, cmd.len, cmd.dir));
  }
  for (PrpSeg& seg : cmd.segs) {
    const uint64_t seg_bytes = seg.from_frag ? kPrpSegBytes : kPageSize;
    note(dma_.UnmapSingle(device_id_, seg.iova, seg_bytes,
                          dma::DmaDirection::kToDevice));
    if (seg.from_frag) {
      note(frag_pool_->Free(seg.kva));
    } else {
      note(slab_.Kfree(seg.kva));
    }
  }
  cmd.segs.clear();
  cmd.len = 0;
  return first;
}

void NvmeDriver::FailAllOutstanding(std::string_view why) {
  for (auto& [cid, cmd] : outstanding_) {
    (void)ReleaseCmd(cmd, why);
    finished_[cid] = Finished{kScInternalError, 0};
    ++io_errors_;
  }
  outstanding_.clear();
}

uint32_t NvmeDriver::CheckTimeouts() {
  if (!io_.live || outstanding_.empty()) {
    return 0;
  }
  const uint64_t now = clock_.now();
  bool overdue = false;
  for (const auto& [cid, cmd] : outstanding_) {
    if (now - cmd.submit_cycle >= config_.completion_timeout_cycles) {
      overdue = true;
      break;
    }
  }
  if (!overdue) {
    return 0;
  }
  // One lost completion condemns the queue: fail everything in flight and
  // rebuild the queue pair (the controller-reset analogue of a TX watchdog).
  const uint32_t failed = static_cast<uint32_t>(outstanding_.size());
  ++queue_resets_;
  EmitNvmeEvent(dma_.telemetry(), telemetry::EventKind::kNvmeQueueReset,
                telemetry::Severity::kWarn, device_id_, failed, 0, this,
                config_.name + "_watchdog");
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nvme.queue_resets").Add();
  }
  FailAllOutstanding("watchdog");
  (void)ResetIoQueue();
  return failed;
}

Status NvmeDriver::ResetIoQueue() {
  if (device_ != nullptr) {
    device_->OnQueueDeleted(kIoQid);
  }
  Status freed = FreeQueue(io_);
  Status created = CreateIoQueue();
  if (!created.ok()) {
    // Queue stays down (fenced / hostile device); Resume() rebuilds later.
    io_.live = false;
    return created;
  }
  return freed;
}

// ---- Live service-mode switch ---------------------------------------------------
//
// A demotion (or promotion) lands while commands are in flight: the router's
// answer to service_mode() no longer matches the rings the driver built.
// Serving on stale routing would either keep zero-copy rings alive for a now-
// untrusted device or strand bounce slots after a promotion, so the driver
// re-homes: snapshot in-flight commands, controller-reset both queue pairs
// (rings re-map under the new routing), and re-issue every command with its
// original CID — callers blocked in WaitFor() never notice the rings moved.

void NvmeDriver::RefreshServiceMode() {
  if (in_mode_switch_ || !admin_.live || !io_.live) {
    return;
  }
  const dma::ServiceMode want = dma_.service_mode(device_id_);
  if (want == active_mode_) {
    return;
  }
  (void)SwitchServiceMode(want);
}

Status NvmeDriver::SwitchServiceMode(dma::ServiceMode next) {
  in_mode_switch_ = true;
  trace::ScopedSpan span(tracer_, "nvme.mode_switch");
  struct Pending {
    uint16_t cid = 0;
    uint8_t opcode = 0;
    uint64_t slba = 0;
    uint16_t nblocks = 0;
    Kva buf;
    uint64_t submit_cycle = 0;
  };
  std::vector<Pending> pending;
  pending.reserve(outstanding_.size());
  for (auto& [cid, cmd] : outstanding_) {
    pending.push_back(
        Pending{cid, cmd.opcode, cmd.slba, cmd.nblocks, cmd.buf,
                cmd.submit_cycle});
    (void)ReleaseCmd(cmd, "mode_switch");
  }
  outstanding_.clear();
  device_->OnQueueDeleted(kIoQid);
  Status first = FreeQueue(io_);
  device_->OnQueueDeleted(kAdminQid);
  Status freed_admin = FreeQueue(admin_);
  if (first.ok()) {
    first = freed_admin;
  }
  active_mode_ = next;
  ++mode_switches_;
  EmitNvmeEvent(dma_.telemetry(), telemetry::EventKind::kNvmeQueueReset,
                telemetry::Severity::kWarn, device_id_, pending.size(),
                static_cast<uint64_t>(next), this,
                config_.name + "_mode_switch");
  if (dma_.telemetry().enabled()) {
    dma_.telemetry().counter("nvme.mode_switches").Add();
  }
  Status up = AllocQueue(admin_, kAdminQid, config_.admin_queue_entries,
                         config_.admin_queue_entries);
  if (up.ok()) {
    device_->OnAdminQueueConfigured(QueuePair{kAdminQid, admin_.sq_iova,
                                              admin_.sq_entries, admin_.cq_iova,
                                              admin_.cq_entries});
    up = CreateIoQueue();
  }
  if (!up.ok()) {
    // Bring-up under the new routing failed (fenced/silent device): fail the
    // snapshot loudly and leave the queue down for Resume()/the watchdog.
    for (const Pending& p : pending) {
      finished_[p.cid] = Finished{kScInternalError, 0};
      ++io_errors_;
    }
    in_mode_switch_ = false;
    return first.ok() ? up : first;
  }
  for (const Pending& p : pending) {
    if (p.opcode == kOpFlush) {
      Sqe sqe;
      sqe.opcode = kOpFlush;
      sqe.cid = p.cid;
      Status wrote = WriteSqe(io_, sqe);
      if (wrote.ok()) {
        io_.sq_tail = static_cast<uint16_t>((io_.sq_tail + 1) % io_.sq_entries);
        IoCmd cmd;
        cmd.opcode = kOpFlush;
        cmd.submit_cycle = p.submit_cycle;
        outstanding_[p.cid] = std::move(cmd);
        device_->OnSqDoorbell(kIoQid, io_.sq_tail);
      } else {
        finished_[p.cid] = Finished{kScInternalError, 0};
        ++io_errors_;
      }
      continue;
    }
    Result<uint16_t> re = SubmitIoWithCid(p.opcode, p.slba, p.nblocks, p.buf,
                                          p.cid, p.submit_cycle);
    if (!re.ok()) {
      finished_[p.cid] = Finished{kScInternalError, 0};
      ++io_errors_;
    }
  }
  in_mode_switch_ = false;
  return first;
}

Status NvmeDriver::Shutdown() {
  trace::ScopedSpan span(tracer_, "nvme.shutdown");
  Status first = OkStatus();
  auto note = [&first](Status status) {
    if (first.ok() && !status.ok()) {
      first = status;
    }
  };
  FailAllOutstanding("shutdown");
  if (device_ != nullptr) {
    device_->OnQueueDeleted(kIoQid);
  }
  note(FreeQueue(io_));
  if (device_ != nullptr) {
    device_->OnQueueDeleted(kAdminQid);
  }
  note(FreeQueue(admin_));
  finished_.clear();
  return first;
}

}  // namespace spv::nvme
