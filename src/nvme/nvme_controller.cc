#include "nvme/nvme_controller.h"

#include <algorithm>
#include <cstring>

#include "fault/fault.h"

namespace spv::nvme {
namespace {

// Default SQ-fetch corruption: flips an opcode bit and a CID bit, so the
// executed command and its completion both disagree with what the driver
// submitted.
constexpr uint64_t kDefaultFetchXor = 0x0000'0000'0001'0004ull;

bool Inject(fault::FaultEngine* engine, fault::FaultSite site) {
  return engine != nullptr && engine->armed() && engine->ShouldInject(site);
}

}  // namespace

NvmeController::NvmeController(device::DevicePort port, Config config)
    : port_(port),
      config_(config),
      media_(config.capacity_blocks * kLbaSize, 0) {}

void NvmeController::OnAdminQueueConfigured(const QueuePair& queues) {
  QueueState state;
  state.cfg = queues;
  queues_[queues.qid] = state;
}

void NvmeController::OnSqDoorbell(uint16_t qid, uint16_t tail) {
  auto it = queues_.find(qid);
  if (it == queues_.end()) {
    return;  // unknown queue: doorbell write to a dead register
  }
  QueueState& queue = it->second;
  if (queue.cfg.sq_entries == 0 || tail >= queue.cfg.sq_entries) {
    return;  // bogus tail, ignore like hardware would
  }
  if (Inject(fault_, fault::FaultSite::kNvmeDoorbellStorm)) {
    // The doorbell "re-announces" entries the controller already consumed:
    // rewind the head so they execute again. Duplicate CQEs with stale CIDs
    // follow, which the driver must reject.
    const uint64_t replay =
        fault_->magnitude(fault::FaultSite::kNvmeDoorbellStorm, 1) %
        queue.cfg.sq_entries;
    queue.sq_head = static_cast<uint16_t>(
        (queue.sq_head + queue.cfg.sq_entries - replay) % queue.cfg.sq_entries);
  }
  ServiceSq(qid, queue, tail);
}

void NvmeController::OnCqDoorbell(uint16_t qid, uint16_t head) {
  auto it = queues_.find(qid);
  if (it == queues_.end() || head >= it->second.cfg.cq_entries) {
    return;
  }
  it->second.cq_head = head;
}

void NvmeController::OnQueueDeleted(uint16_t qid) {
  queues_.erase(qid);
  pending_cqs_.erase(qid);
}

void NvmeController::ServiceSq(uint16_t qid, QueueState& queue, uint16_t tail) {
  while (queue.sq_head != tail) {
    if (!ServiceOne(qid, queue)) {
      break;  // fetch path is dead (fenced / unmapped): stop hammering it
    }
  }
}

bool NvmeController::ServiceOne(uint16_t qid, QueueState& queue) {
  trace::ScopedSpan span(tracer_, "nvme.service");
  Result<Sqe> sqe = FetchSqe(queue, queue.sq_head);
  if (!sqe.ok()) {
    ++stats_.fetch_errors;
    return false;
  }
  ++stats_.sqes_fetched;
  queue.sq_head =
      static_cast<uint16_t>((queue.sq_head + 1) % queue.cfg.sq_entries);
  Cqe cqe;
  cqe.cid = sqe->cid;
  cqe.sq_id = qid;
  Execute(qid, *sqe, cqe);
  cqe.sq_head = queue.sq_head;
  (void)PostCqe(queue, cqe);
  return true;
}

Result<Sqe> NvmeController::FetchSqe(const QueueState& queue, uint16_t index) {
  trace::ScopedSpan span(tracer_, "nvme.fetch");
  const Iova slot{queue.cfg.sq_base.value +
                  static_cast<uint64_t>(index) * kSqeSize};
  Result<std::vector<uint8_t>> raw = port_.ReadBlock(slot, kSqeSize);
  if (!raw.ok()) {
    return raw.status();
  }
  if (Inject(fault_, fault::FaultSite::kNvmeSqFetchCorrupt)) {
    uint64_t mask =
        fault_->magnitude(fault::FaultSite::kNvmeSqFetchCorrupt, kDefaultFetchXor);
    uint64_t dword0 = 0;
    std::memcpy(&dword0, raw->data(), 8);
    dword0 ^= mask;
    std::memcpy(raw->data(), &dword0, 8);
  }
  return DecodeSqe(*raw);
}

void NvmeController::Execute(uint16_t qid, const Sqe& sqe, Cqe& cqe) {
  cqe.status = kScSuccess;
  if (qid == 0) {
    ExecuteAdmin(qid, sqe, cqe);
  } else {
    ExecuteIo(sqe, cqe);
  }
}

void NvmeController::ExecuteAdmin(uint16_t /*qid*/, const Sqe& sqe, Cqe& cqe) {
  switch (sqe.opcode) {
    case kAdminIdentify: {
      if (sqe.prp1 == 0) {
        cqe.status = kScInvalidField;
        return;
      }
      std::vector<uint8_t> page(kPageSize, 0);
      const uint64_t capacity = config_.capacity_blocks;
      const uint64_t lba_size = kLbaSize;
      std::memcpy(page.data() + kIdentifyCapacityOff, &capacity, 8);
      std::memcpy(page.data() + kIdentifyLbaSizeOff, &lba_size, 8);
      if (!port_.Write(Iova{sqe.prp1}, page).ok()) {
        ++stats_.transfer_errors;
        cqe.status = kScDataTransferError;
        return;
      }
      cqe.dw0 = static_cast<uint32_t>(kPageSize);
      return;
    }
    case kAdminCreateCq: {
      const uint16_t qid = static_cast<uint16_t>(sqe.cdw10 & 0xffff);
      const uint16_t entries = static_cast<uint16_t>((sqe.cdw10 >> 16) + 1);
      if (qid == 0 || entries < 2 || sqe.prp1 == 0) {
        cqe.status = kScInvalidField;
        return;
      }
      pending_cqs_[qid] = PendingCq{Iova{sqe.prp1}, entries};
      return;
    }
    case kAdminCreateSq: {
      const uint16_t qid = static_cast<uint16_t>(sqe.cdw10 & 0xffff);
      const uint16_t entries = static_cast<uint16_t>((sqe.cdw10 >> 16) + 1);
      const uint16_t cqid = static_cast<uint16_t>(sqe.cdw11 & 0xffff);
      auto cq = pending_cqs_.find(cqid);
      if (qid == 0 || entries < 2 || sqe.prp1 == 0 ||
          cq == pending_cqs_.end()) {
        cqe.status = kScInvalidField;
        return;
      }
      QueueState state;
      state.cfg = QueuePair{qid, Iova{sqe.prp1}, entries, cq->second.base,
                            cq->second.entries};
      queues_[qid] = state;
      return;
    }
    case kAdminDeleteSq: {
      const uint16_t qid = static_cast<uint16_t>(sqe.cdw10 & 0xffff);
      if (qid == 0) {
        cqe.status = kScInvalidField;
        return;
      }
      queues_.erase(qid);
      return;
    }
    case kAdminDeleteCq: {
      pending_cqs_.erase(static_cast<uint16_t>(sqe.cdw10 & 0xffff));
      return;
    }
    default:
      cqe.status = kScInvalidOpcode;
      return;
  }
}

void NvmeController::ExecuteIo(const Sqe& sqe, Cqe& cqe) {
  if (sqe.opcode == kOpFlush) {
    return;  // media is always durable here; success with dw0 = 0
  }
  if (sqe.opcode != kOpRead && sqe.opcode != kOpWrite) {
    cqe.status = kScInvalidOpcode;
    return;
  }
  const uint64_t blocks = static_cast<uint64_t>(sqe.nlb) + 1;
  if (sqe.slba + blocks > config_.capacity_blocks) {
    cqe.status = kScLbaOutOfRange;
    return;
  }
  const uint64_t total = blocks << kLbaShift;
  uint8_t walk_status = kScSuccess;
  Result<std::vector<PrpChunk>> chunks = WalkPrps(sqe, total, walk_status);
  if (!chunks.ok()) {
    cqe.status = walk_status;
    return;
  }
  if (!chunks->empty() && Inject(fault_, fault::FaultSite::kNvmePrpWild)) {
    // One data pointer dereferences wild: the transfer lands on (or reads
    // from) an IOVA nobody mapped, and the IOMMU logs the fault.
    chunks->back().iova.value +=
        fault_->magnitude(fault::FaultSite::kNvmePrpWild, 1ull << 30);
  }
  uint64_t limit = total;
  if (Inject(fault_, fault::FaultSite::kNvmeShortTransfer)) {
    // The device silently stops moving data early but still completes with
    // success; only CQE DW0 betrays the short count.
    limit = std::min(
        fault_->magnitude(fault::FaultSite::kNvmeShortTransfer, total / 2),
        total);
  }
  trace::ScopedSpan span(tracer_, "nvme.transfer");
  const uint64_t media_off = sqe.slba << kLbaShift;
  uint64_t transferred = 0;
  for (const PrpChunk& chunk : *chunks) {
    const uint64_t n = std::min(chunk.len, limit - transferred);
    if (n == 0) {
      break;
    }
    Status io;
    if (sqe.opcode == kOpRead) {
      io = port_.Write(
          chunk.iova,
          std::span<const uint8_t>(media_.data() + media_off + transferred, n));
    } else {
      io = port_.Read(
          chunk.iova,
          std::span<uint8_t>(media_.data() + media_off + transferred, n));
    }
    if (!io.ok()) {
      ++stats_.transfer_errors;
      cqe.status = kScDataTransferError;
      break;
    }
    transferred += n;
  }
  if (sqe.opcode == kOpRead) {
    stats_.bytes_read += transferred;
  } else {
    stats_.bytes_written += transferred;
  }
  cqe.dw0 = static_cast<uint32_t>(transferred);
}

Result<std::vector<PrpChunk>> NvmeController::WalkPrps(const Sqe& sqe,
                                                       uint64_t total_bytes,
                                                       uint8_t& status) {
  std::vector<PrpChunk> chunks;
  if (total_bytes == 0) {
    return chunks;
  }
  if (sqe.prp1 == 0) {
    status = kScInvalidField;
    return InvalidArgument("prp1 is null");
  }
  uint64_t remaining = total_bytes;
  const uint64_t first_off = sqe.prp1 & (kPageSize - 1);
  const uint64_t first_len = std::min(kPageSize - first_off, remaining);
  chunks.push_back(PrpChunk{Iova{sqe.prp1}, first_len});
  remaining -= first_len;
  if (remaining == 0) {
    return chunks;
  }
  if (remaining <= kPageSize) {
    // PRP2 is a direct data pointer and must be page-aligned.
    if (sqe.prp2 == 0 || (sqe.prp2 & (kPageSize - 1)) != 0) {
      status = kScInvalidField;
      return InvalidArgument("prp2 page pointer invalid");
    }
    chunks.push_back(PrpChunk{Iova{sqe.prp2}, remaining});
    return chunks;
  }
  // PRP2 points at a list segment in host memory; overflow chains through the
  // segment's last qword.
  uint64_t cur = sqe.prp2;
  while (remaining > 0) {
    if (cur == 0 || (cur & 7) != 0) {
      status = kScInvalidField;
      return InvalidArgument("prp list pointer invalid");
    }
    ++stats_.prp_segments_walked;
    prp_segments_seen_.push_back(Iova{cur});
    const uint64_t pages_left = (remaining + kPageSize - 1) / kPageSize;
    const uint64_t data_entries =
        pages_left <= kPrpSegEntries ? pages_left : kPrpSegEntries - 1;
    for (uint64_t i = 0; i < data_entries; ++i) {
      Result<uint64_t> entry = port_.ReadU64(Iova{cur + 8 * i});
      if (!entry.ok()) {
        status = kScDataTransferError;
        return entry.status();
      }
      if (*entry == 0 || (*entry & (kPageSize - 1)) != 0) {
        status = kScInvalidField;
        return InvalidArgument("prp list entry not page-aligned");
      }
      const uint64_t len = std::min<uint64_t>(kPageSize, remaining);
      chunks.push_back(PrpChunk{Iova{*entry}, len});
      remaining -= len;
    }
    if (remaining > 0) {
      Result<uint64_t> chain = port_.ReadU64(Iova{cur + 8 * (kPrpSegEntries - 1)});
      if (!chain.ok()) {
        status = kScDataTransferError;
        return chain.status();
      }
      cur = *chain;
    }
  }
  return chunks;
}

Status NvmeController::PostCqe(QueueState& queue, Cqe cqe) {
  trace::ScopedSpan span(tracer_, "nvme.cq_post");
  const uint16_t next =
      static_cast<uint16_t>((queue.cq_tail + 1) % queue.cfg.cq_entries);
  if (next == queue.cq_head) {
    ++stats_.cq_overflows;
    return ResourceExhausted("completion queue full");
  }
  if (Inject(fault_, fault::FaultSite::kNvmeCompletionDrop)) {
    // The command executed; its completion evaporates. The driver's watchdog
    // owns this now.
    return OkStatus();
  }
  cqe.phase = queue.phase;
  if (Inject(fault_, fault::FaultSite::kNvmeCqPhaseFlip)) {
    cqe.phase = !cqe.phase;
  }
  const std::array<uint8_t, kCqeSize> raw = EncodeCqe(cqe);
  const Iova slot{queue.cfg.cq_base.value +
                  static_cast<uint64_t>(queue.cq_tail) * kCqeSize};
  Status written = port_.Write(slot, raw);
  if (!written.ok()) {
    ++stats_.cqe_post_errors;
    return written;
  }
  ++stats_.cqes_posted;
  queue.cq_tail = next;
  if (queue.cq_tail == 0) {
    queue.phase = !queue.phase;
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> NvmeController::PeekMedia(uint64_t slba,
                                                       uint64_t blocks) const {
  if (slba + blocks > config_.capacity_blocks) {
    return InvalidArgument("PeekMedia out of range");
  }
  const uint64_t off = slba << kLbaShift;
  const uint64_t len = blocks << kLbaShift;
  return std::vector<uint8_t>(media_.begin() + off, media_.begin() + off + len);
}

}  // namespace spv::nvme
